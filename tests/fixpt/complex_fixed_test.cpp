// Tests for complex_fixed (the reconstruction of the authors' sc_complex):
// arithmetic against std::complex<double>, sign_conj in all quadrants, and
// the adaptation-step idiom from Figure 4.
#include "fixpt/complex_fixed.h"

#include <gtest/gtest.h>

#include <complex>
#include <random>

namespace hlsw::fixpt {
namespace {

using C10 = complex_fixed<10, 0>;

TEST(ComplexFixed, ConstructAndAccess) {
  complex_fixed<8, 3> v(1.5, -2.25);
  EXPECT_DOUBLE_EQ(v.r().to_double(), 1.5);
  EXPECT_DOUBLE_EQ(v.i().to_double(), -2.25);
  complex_fixed<8, 3> z(0);
  EXPECT_DOUBLE_EQ(z.r().to_double(), 0.0);
  EXPECT_DOUBLE_EQ(z.i().to_double(), 0.0);
}

TEST(ComplexFixed, ArithmeticMatchesStdComplex) {
  std::mt19937_64 rng(321);
  for (int iter = 0; iter < 3000; ++iter) {
    auto draw = [&]() {
      return C10::scalar::from_raw(
          wide_int<10>(static_cast<int>(rng() % 1024) - 512));
    };
    const C10 a(draw(), draw()), b(draw(), draw());
    const std::complex<double> ad = a.to_complex_double();
    const std::complex<double> bd = b.to_complex_double();
    const auto sum = a + b;
    EXPECT_DOUBLE_EQ(sum.r().to_double(), (ad + bd).real());
    EXPECT_DOUBLE_EQ(sum.i().to_double(), (ad + bd).imag());
    const auto diff = a - b;
    EXPECT_DOUBLE_EQ(diff.r().to_double(), (ad - bd).real());
    EXPECT_DOUBLE_EQ(diff.i().to_double(), (ad - bd).imag());
    const auto prod = a * b;  // full precision, must be exact
    EXPECT_DOUBLE_EQ(prod.r().to_double(), (ad * bd).real());
    EXPECT_DOUBLE_EQ(prod.i().to_double(), (ad * bd).imag());
  }
}

TEST(ComplexFixed, SignConjQuadrants) {
  auto sc = [](double re, double im) {
    return complex_fixed<10, 1>(re, im).sign_conj().to_complex_double();
  };
  EXPECT_EQ(sc(0.5, 0.5), std::complex<double>(1, -1));
  EXPECT_EQ(sc(-0.5, 0.5), std::complex<double>(-1, -1));
  EXPECT_EQ(sc(-0.5, -0.5), std::complex<double>(-1, 1));
  EXPECT_EQ(sc(0.5, -0.5), std::complex<double>(1, 1));
  // Zero counts as non-negative in the hardware sign convention.
  EXPECT_EQ(sc(0.0, 0.0), std::complex<double>(1, -1));
}

TEST(ComplexFixed, SignConjIsConjugateOfSign) {
  // For any x: sign_conj(x) == conj(sign(re) + j*sign(im)).
  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    const double re = (static_cast<int>(rng() % 200) - 100) / 100.0;
    const double im = (static_cast<int>(rng() % 200) - 100) / 100.0;
    complex_fixed<12, 2> x(re, im);
    const auto sc = x.sign_conj().to_complex_double();
    const std::complex<double> s(re >= 0 ? 1 : -1, im >= 0 ? 1 : -1);
    EXPECT_EQ(sc, std::conj(s));
  }
}

TEST(ComplexFixed, ConjNegatesImaginary) {
  complex_fixed<8, 3> v(1.5, -2.25);
  const auto c = v.conj();
  EXPECT_DOUBLE_EQ(c.r().to_double(), 1.5);
  EXPECT_DOUBLE_EQ(c.i().to_double(), 2.25);
}

TEST(ComplexFixed, MagSqr) {
  complex_fixed<8, 3> v(3.0, -4.0);
  EXPECT_DOUBLE_EQ(v.mag_sqr().to_double(), 25.0);
}

TEST(ComplexFixed, ScalarTimesComplex) {
  fixed<10, 0> mu(0.25);
  complex_fixed<10, 0> e(0.125, -0.25);
  const auto p = mu * e;
  EXPECT_DOUBLE_EQ(p.r().to_double(), 0.03125);
  EXPECT_DOUBLE_EQ(p.i().to_double(), -0.0625);
  const auto p2 = e * mu;
  EXPECT_TRUE(p == p2);
}

TEST(ComplexFixed, AdaptationStepIdiom) {
  // Figure 4: ffe_c[k] += mu_ffe * e * x[k].sign_conj().
  complex_fixed<10, 0> coeff(0.125, 0.125);
  fixed<10, 0> mu(std::pow(2.0, -8));
  complex_fixed<10, 0> e(-0.25, 0.25);
  complex_fixed<10, 0> x(-0.3, 0.2);
  coeff += mu * e * x.sign_conj();
  // mu*e = (-2^-10, 2^-10); sign_conj(x) = (-1, -1).
  // re = (-2^-10)(-1) - (2^-10)(-1) = 2^-9;  im = (2^-10) + (-2^-10) = 0.
  EXPECT_DOUBLE_EQ(coeff.r().to_double(), 0.125 + std::pow(2, -9));
  EXPECT_DOUBLE_EQ(coeff.i().to_double(), 0.125);
}

TEST(ComplexFixed, MultiplyBySignConjCostsOnlyAdds) {
  // Multiplying by sign_conj() output must equal the explicitly-negated
  // component combination (what the hardware implements with adders).
  std::mt19937_64 rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    auto draw = [&]() {
      return fixed<10, 0>::from_raw(
          wide_int<10>(static_cast<int>(rng() % 1024) - 512));
    };
    complex_fixed<10, 0> e(draw(), draw());
    complex_fixed<10, 0> x(draw(), draw());
    const auto full = e * x.sign_conj();
    const double sr = x.r().is_neg() ? -1 : 1;
    const double si = x.i().is_neg() ? 1 : -1;
    EXPECT_DOUBLE_EQ(full.r().to_double(),
                     e.r().to_double() * sr - e.i().to_double() * si);
    EXPECT_DOUBLE_EQ(full.i().to_double(),
                     e.r().to_double() * si + e.i().to_double() * sr);
  }
}

TEST(ComplexFixed, AssignmentQuantizesComponents) {
  complex_fixed<16, 2> wide(1.2345678, -0.7654321);
  complex_fixed<6, 2, Quant::kRnd, Ovf::kSat> narrow(wide);
  EXPECT_NEAR(narrow.r().to_double(), 1.2345678, std::pow(2.0, -5));
  EXPECT_NEAR(narrow.i().to_double(), -0.7654321, std::pow(2.0, -5));
}

}  // namespace
}  // namespace hlsw::fixpt
