// Cross-validation of the deliberately slow bitref_int against wide_int.
// bitref_int exists only as the "slow sc_bigint" comparator for experiment
// D1; these tests establish it computes the same values as wide_int so the
// speed benchmark compares equivalent work.
#include "fixpt/bitref_int.h"

#include <gtest/gtest.h>

#include <random>

#include "fixpt/wide_int.h"

namespace hlsw::fixpt {
namespace {

TEST(BitrefInt, ConstructRoundTrip) {
  EXPECT_EQ(bitref_int(16, 1234).to_int64(), 1234);
  EXPECT_EQ(bitref_int(16, -1234).to_int64(), -1234);
  EXPECT_EQ(bitref_int(8, 200).to_int64(), -56) << "wraps modulo 2^8";
  EXPECT_EQ(bitref_int(80, -5).to_int64(), -5);
}

TEST(BitrefInt, AddSubKnown) {
  EXPECT_EQ(add(bitref_int(8, 100), bitref_int(8, 27)).to_int64(), 127);
  EXPECT_EQ(add(bitref_int(8, -100), bitref_int(8, -28)).to_int64(), -128);
  EXPECT_EQ(sub(bitref_int(8, 100), bitref_int(8, 27)).to_int64(), 73);
  EXPECT_EQ(negate(bitref_int(8, -128)).to_int64(), 128);
}

TEST(BitrefInt, MulKnown) {
  EXPECT_EQ(mul(bitref_int(8, 12), bitref_int(8, -11)).to_int64(), -132);
  EXPECT_EQ(mul(bitref_int(8, -128), bitref_int(8, -128)).to_int64(), 16384);
  EXPECT_EQ(mul(bitref_int(8, 0), bitref_int(8, 99)).to_int64(), 0);
}

class BitrefCross : public ::testing::TestWithParam<int> {};

TEST_P(BitrefCross, AgreesWithWideInt) {
  const int w = GetParam();
  std::mt19937_64 rng(1000 + w);
  for (int iter = 0; iter < 300; ++iter) {
    const long long a = static_cast<long long>(rng()) >> (64 - w);
    const long long b = static_cast<long long>(rng()) >> (64 - w);
    const bitref_int ba(w, a), bb(w, b);
    EXPECT_EQ(add(ba, bb).to_int64(), a + b);
    EXPECT_EQ(sub(ba, bb).to_int64(), a - b);
    const __int128 prod = static_cast<__int128>(a) * b;
    EXPECT_EQ(mul(ba, bb).to_int64(), static_cast<long long>(prod));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitrefCross,
                         ::testing::Values(8, 10, 17, 24, 31));

TEST(BitrefCross, WideWidthsAgreeWithWideInt) {
  std::mt19937_64 rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    const long long a = static_cast<long long>(rng()) >> 4;
    const long long b = static_cast<long long>(rng()) >> 4;
    const bitref_int ba(80, a), bb(80, b);
    const wide_int<80> wa(a), wb(b);
    EXPECT_EQ(add(ba, bb).to_int64(), (wa + wb).to_int64());
    const auto wp = wa * wb;
    const auto bp = mul(ba, bb);
    // Compare all 160 bits limb by limb.
    for (int bit = 0; bit < 160; ++bit)
      ASSERT_EQ(bp.bit(bit), wp.bit(bit)) << "bit " << bit;
  }
}

}  // namespace
}  // namespace hlsw::fixpt
