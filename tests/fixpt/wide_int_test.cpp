// Unit and property tests for wide_int: cross-checked against native
// __int128 arithmetic on randomized operands, plus targeted tests for
// multi-limb (>64 bit) behaviour, canonical form, and string conversion.
#include "fixpt/wide_int.h"

#include <gtest/gtest.h>

#include <climits>
#include <cstdint>
#include <random>

namespace hlsw::fixpt {
namespace {

TEST(WideInt, ConstructAndRoundTripSmall) {
  EXPECT_EQ(wide_int<8>(0).to_int64(), 0);
  EXPECT_EQ(wide_int<8>(127).to_int64(), 127);
  EXPECT_EQ(wide_int<8>(-128).to_int64(), -128);
  EXPECT_EQ(wide_int<8>(-1).to_int64(), -1);
  EXPECT_EQ(wide_int<1>(1).to_int64(), -1) << "1-bit signed: 1 wraps to -1";
  EXPECT_EQ((wide_int<1, false>(1).to_uint64()), 1u);
}

TEST(WideInt, WrapsModuloWidth) {
  EXPECT_EQ(wide_int<8>(128).to_int64(), -128);
  EXPECT_EQ(wide_int<8>(256).to_int64(), 0);
  EXPECT_EQ(wide_int<8>(257).to_int64(), 1);
  EXPECT_EQ((wide_int<6, false>(64).to_uint64()), 0u);
  EXPECT_EQ((wide_int<6, false>(65).to_uint64()), 1u);
  EXPECT_EQ((wide_int<6, false>(-1).to_uint64()), 63u);
}

TEST(WideInt, ConversionPreservesValueWhenWideEnough) {
  wide_int<10> a(-300);
  wide_int<32> b(a);
  EXPECT_EQ(b.to_int64(), -300);
  wide_int<100> c(a);
  EXPECT_EQ(c.to_int64(), -300);
  EXPECT_TRUE(c.is_neg());
}

TEST(WideInt, UnsignedToSignedConversion) {
  wide_int<8, false> u(200);
  wide_int<16, true> s(u);
  EXPECT_EQ(s.to_int64(), 200) << "zero extension from unsigned";
  wide_int<8, true> narrow(u);
  EXPECT_EQ(narrow.to_int64(), -56) << "same-width reinterpretation wraps";
}

TEST(WideInt, AdditionGrowsByOneBit) {
  wide_int<8> a(127), b(127);
  auto c = a + b;
  static_assert(decltype(c)::kWidth == 9);
  EXPECT_EQ(c.to_int64(), 254);
}

TEST(WideInt, MixedSignAdditionPromotes) {
  wide_int<8, false> u(255);
  wide_int<8, true> s(-128);
  auto c = u + s;
  static_assert(decltype(c)::kSigned);
  static_assert(decltype(c)::kWidth == 10);
  EXPECT_EQ(c.to_int64(), 127);
}

TEST(WideInt, MultiplicationFullPrecision) {
  wide_int<8> a(-128), b(-128);
  auto c = a * b;
  static_assert(decltype(c)::kWidth == 16);
  EXPECT_EQ(c.to_int64(), 16384);
}

TEST(WideInt, UnaryMinusOfMostNegativeIsExact) {
  wide_int<8> a(-128);
  auto b = -a;
  static_assert(decltype(b)::kWidth == 9);
  EXPECT_EQ(b.to_int64(), 128);
}

TEST(WideInt, MultiLimbShiftAndBits) {
  wide_int<130> a(1);
  a <<= 100;
  EXPECT_TRUE(a.bit(100));
  EXPECT_FALSE(a.bit(99));
  EXPECT_FALSE(a.bit(101));
  a >>= 37;
  EXPECT_TRUE(a.bit(63));
  EXPECT_EQ(a.min_width(), 65);
}

TEST(WideInt, ArithmeticShiftRightPropagatesSign) {
  wide_int<100> a(-1);
  a <<= 90;  // -2^90
  a >>= 95;
  EXPECT_EQ(a.to_int64(), -1) << "shifting a negative past its msb gives -1";
}

TEST(WideInt, MultiLimbMultiplication) {
  // (2^70 + 3) * (2^70 - 3) == 2^140 - 9
  wide_int<80> p70(1);
  p70 <<= 70;
  auto a = p70 + wide_int<3>(3);
  auto b = p70 - wide_int<3>(3);
  auto prod = a * b;
  wide_int<170> expect(1);
  expect <<= 140;
  expect -= wide_int<5>(9);
  EXPECT_EQ(prod.compare(expect), 0);
}

TEST(WideInt, ToStringDecimal) {
  EXPECT_EQ(wide_int<8>(0).to_string(), "0");
  EXPECT_EQ(wide_int<8>(-128).to_string(), "-128");
  EXPECT_EQ(wide_int<64>(1234567890123456789LL).to_string(),
            "1234567890123456789");
  wide_int<130> big(1);
  big <<= 100;
  EXPECT_EQ(big.to_string(), "1267650600228229401496703205376");  // 2^100
}

TEST(WideInt, ToHexString) {
  EXPECT_EQ(wide_int<16>(0x1a2b).to_hex_string(), "0x1a2b");
  EXPECT_EQ(wide_int<8>(0).to_hex_string(), "0x0");
}

TEST(WideInt, FromDoubleTruncatesTowardZero) {
  EXPECT_EQ(wide_int<32>::from_double(3.9).to_int64(), 3);
  EXPECT_EQ(wide_int<32>::from_double(-3.9).to_int64(), -3);
  EXPECT_EQ(wide_int<96>::from_double(std::ldexp(1.0, 80)).to_string(),
            "1208925819614629174706176");  // 2^80
}

TEST(WideInt, ToDoubleLarge) {
  wide_int<130> a(1);
  a <<= 100;
  EXPECT_DOUBLE_EQ(a.to_double(), std::ldexp(1.0, 100));
  EXPECT_DOUBLE_EQ(wide_int<130>(-a).to_double(), -std::ldexp(1.0, 100));
}

TEST(WideInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ((wide_int<16>(7) / wide_int<16>(2)).to_int64(), 3);
  EXPECT_EQ((wide_int<16>(-7) / wide_int<16>(2)).to_int64(), -3);
  EXPECT_EQ((wide_int<16>(7) / wide_int<16>(-2)).to_int64(), -3);
  EXPECT_EQ((wide_int<16>(-7) / wide_int<16>(-2)).to_int64(), 3);
  EXPECT_EQ((wide_int<16>(7) % wide_int<16>(2)).to_int64(), 1);
  EXPECT_EQ((wide_int<16>(-7) % wide_int<16>(2)).to_int64(), -1);
}

TEST(WideInt, SliceExtraction) {
  wide_int<32> v(0x12345678);
  EXPECT_EQ((v.slc<8>(8).to_uint64()), 0x56u);
  EXPECT_EQ((v.slc<16>(16).to_uint64()), 0x1234u);
  auto sl = v.slc<4, true>(4);  // nibble 7 -> signed -> -9
  EXPECT_EQ(sl.to_int64(), 7);
}

TEST(WideInt, BitwiseOps) {
  wide_int<12, false> a(0xF0F), b(0x0FF);
  EXPECT_EQ((a & b).to_uint64(), 0x00Fu);
  EXPECT_EQ((a | b).to_uint64(), 0xFFFu);
  EXPECT_EQ((a ^ b).to_uint64(), 0xFF0u);
  EXPECT_EQ((~a).to_uint64(), 0x0F0u);
}

TEST(WideInt, MinWidth) {
  EXPECT_EQ(wide_int<32>(0).min_width(), 1);
  EXPECT_EQ(wide_int<32>(1).min_width(), 2);
  EXPECT_EQ(wide_int<32>(-1).min_width(), 1);
  EXPECT_EQ(wide_int<32>(-2).min_width(), 2);
  EXPECT_EQ(wide_int<32>(127).min_width(), 8);
  EXPECT_EQ(wide_int<32>(-128).min_width(), 8);
  EXPECT_EQ((wide_int<32, false>(255).min_width()), 8);
}

TEST(WideInt, ComparisonAcrossWidths) {
  EXPECT_TRUE(wide_int<8>(-5) < wide_int<100>(3));
  EXPECT_TRUE(wide_int<100>(3) > wide_int<8>(-5));
  EXPECT_TRUE((wide_int<8, false>(200) > wide_int<16, true>(100)));
  EXPECT_TRUE(wide_int<8>(5) == wide_int<64>(5));
  EXPECT_TRUE(wide_int<8>(5) == 5);
  EXPECT_TRUE(wide_int<8>(-5) < 0);
}

// Randomized property check against __int128 for widths that fit.
class WideIntRandom : public ::testing::TestWithParam<int> {};

TEST_P(WideIntRandom, MatchesInt128Reference) {
  const int bits = GetParam();
  std::mt19937_64 rng(0xC0FFEE + bits);
  auto draw = [&]() -> long long {
    const uint64_t raw = rng();
    // Random value within `bits` bits, signed.
    const long long v = static_cast<long long>(raw);
    return v >> (64 - bits);
  };
  for (int iter = 0; iter < 2000; ++iter) {
    const long long a = draw(), b = draw();
    const wide_int<40> wa(a), wb(b);
    EXPECT_EQ((wa + wb).to_int64(), a + b);
    EXPECT_EQ((wa - wb).to_int64(), a - b);
    const __int128 prod = static_cast<__int128>(a) * b;
    EXPECT_EQ((wa * wb).to_int64(), static_cast<long long>(prod));
    if (b != 0) {
      EXPECT_EQ((wa / wb).to_int64(), a / b);
      EXPECT_EQ((wa % wb).to_int64(), a % b);
    }
    EXPECT_EQ(wa < wb, a < b);
    const int sh = static_cast<int>(rng() % 17);
    EXPECT_EQ((wa >> sh).to_int64(), a >> sh);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WideIntRandom,
                         ::testing::Values(8, 12, 17, 24, 31, 40));

// Multi-limb randomized check: verify a*b via reconstruction from halves.
TEST(WideIntRandom, MultiLimbMulMatchesSchoolbookReference) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 500; ++iter) {
    const uint64_t a_lo = rng(), a_hi = rng() >> 32;  // 96-bit operand
    const uint64_t b_lo = rng(), b_hi = rng() >> 32;
    wide_int<96, false> a(a_lo);
    wide_int<96, false> hi_part(a_hi);
    hi_part <<= 64;
    a += hi_part;
    wide_int<96, false> b(b_lo);
    wide_int<96, false> bh(b_hi);
    bh <<= 64;
    b += bh;
    auto p = a * b;  // 192 bits, exact
    // Reference: (a_hi*2^64 + a_lo)(b_hi*2^64 + b_lo) recomposed limb-wise.
    auto part = [&](uint64_t x, uint64_t y, int shift) {
      wide_int<192, false> t(wide_int<64, false>(x) * wide_int<64, false>(y));
      t <<= shift;
      return t;
    };
    wide_int<192, false> ref(0);
    ref += part(a_lo, b_lo, 0);
    ref += part(a_hi, b_lo, 64);
    ref += part(a_lo, b_hi, 64);
    ref += part(a_hi, b_hi, 128);
    EXPECT_EQ(p.compare(ref), 0) << "iter " << iter;
  }
}

TEST(WideIntRandom, StringRoundTripViaDouble) {
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const long long v = static_cast<long long>(rng()) >> 20;
    EXPECT_EQ(wide_int<50>(v).to_string(), std::to_string(v));
  }
}

TEST(WideIntEdge, ShiftByZeroAndBeyondWidth) {
  wide_int<20> v(-12345);
  EXPECT_EQ((v << 0).to_int64(), -12345);
  EXPECT_EQ((v >> 0).to_int64(), -12345);
  EXPECT_EQ((v << 64).to_int64(), 0) << "shift past width clears";
  EXPECT_EQ((v >> 64).to_int64(), -1) << "arithmetic shift saturates to sign";
  wide_int<20, false> u(12345);
  EXPECT_EQ((u >> 64).to_uint64(), 0u) << "logical shift clears unsigned";
}

TEST(WideIntEdge, DivisionOfMostNegative) {
  // |INT_MIN| is representable because the quotient grows one bit.
  wide_int<8> min8(-128);
  EXPECT_EQ((min8 / wide_int<8>(-1)).to_int64(), 128);
  EXPECT_EQ((min8 / wide_int<8>(1)).to_int64(), -128);
  EXPECT_EQ((min8 % wide_int<8>(-1)).to_int64(), 0);
}

TEST(WideIntEdge, CompareEqualValuesAcrossSignedness) {
  EXPECT_TRUE((wide_int<8, false>(127) == wide_int<8, true>(127)));
  EXPECT_FALSE((wide_int<8, false>(128) == wide_int<8, true>(-128)))
      << "value comparison, not bit-pattern comparison";
  EXPECT_TRUE((wide_int<8, false>(128) > wide_int<8, true>(-128)));
}

TEST(WideIntEdge, MinWidthRoundTripsThroughNarrowing) {
  // Any value narrowed to its own min_width and widened back is unchanged.
  std::mt19937_64 rng(55);
  for (int iter = 0; iter < 500; ++iter) {
    const long long v = static_cast<long long>(rng()) >> (rng() % 40 + 20);
    const wide_int<48> w(v);
    const int mw = w.min_width();
    // Narrow via slc into exactly mw bits (signed), then widen.
    ASSERT_LE(mw, 48);
    const auto narrowed = w.slc<48, true>(0);  // same width sanity
    EXPECT_EQ(narrowed.to_int64(), v);
    // Represent in min width using a runtime check: value must fit.
    const long long hi = (1LL << (mw - 1)) - 1;
    const long long lo = mw >= 63 ? LLONG_MIN : -(1LL << (mw - 1));
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(WideIntEdge, DumpAndHexStable) {
  EXPECT_EQ(wide_int<12>(-1).to_hex_string(), "0xfff");
  EXPECT_EQ((wide_int<12, false>(0xABC).to_hex_string()), "0xabc");
}

}  // namespace
}  // namespace hlsw::fixpt
