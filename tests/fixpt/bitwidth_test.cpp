// Tests for the Figure 2 bitwidth-inference arithmetic.
#include "fixpt/bitwidth.h"

#include <gtest/gtest.h>

namespace hlsw::fixpt {
namespace {

TEST(Bitwidth, Clog2) {
  EXPECT_EQ(clog2(1), 0);
  EXPECT_EQ(clog2(2), 1);
  EXPECT_EQ(clog2(3), 2);
  EXPECT_EQ(clog2(8), 3);
  EXPECT_EQ(clog2(9), 4);
  EXPECT_EQ(clog2(1024), 10);
  EXPECT_EQ(clog2(1025), 11);
}

TEST(Bitwidth, BitsForUnsigned) {
  EXPECT_EQ(bits_for_unsigned(0), 1);
  EXPECT_EQ(bits_for_unsigned(1), 1);
  EXPECT_EQ(bits_for_unsigned(2), 2);
  EXPECT_EQ(bits_for_unsigned(255), 8);
  EXPECT_EQ(bits_for_unsigned(256), 9);
}

TEST(Bitwidth, Figure2LoopCounter) {
  // Figure 2: for (i = 0; i < N; i++) — the counter must hold N itself for
  // the exit comparison. For N=1024 Catapult infers an 11-bit counter.
  EXPECT_EQ(loop_counter_width(1024), 11);
  EXPECT_EQ(loop_counter_width(8), 4);
  EXPECT_EQ(loop_counter_width(16), 5);
  EXPECT_EQ(loop_counter_width(1), 1);
}

TEST(Bitwidth, Figure2Accumulator) {
  // Summing N 10-bit values needs 10 + clog2(N) bits; for the paper's int
  // accumulator `a` this is how synthesis narrows 32 bits down.
  EXPECT_EQ(accumulator_width(10, 8), 13);
  EXPECT_EQ(accumulator_width(10, 1024), 20);
  EXPECT_EQ(accumulator_width(32, 1), 32);
}

TEST(Bitwidth, BitsForRange) {
  EXPECT_EQ(bits_for_range(0, 0), 1);
  EXPECT_EQ(bits_for_range(-1, 0), 1);
  EXPECT_EQ(bits_for_range(-8, 7), 4);
  EXPECT_EQ(bits_for_range(-9, 7), 5);
  EXPECT_EQ(bits_for_range(0, 7), 4) << "signed range includes sign bit";
  EXPECT_EQ(bits_for_range(-128, 127), 8);
}

// Property sweep: the counter must be able to hold the bound `n` itself
// (the exit comparison evaluates i == n), and be the minimal such width.
class CounterWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(CounterWidthSweep, WidthIsMinimal) {
  const unsigned long long n = GetParam();
  const int w = loop_counter_width(n);
  EXPECT_GE((1ULL << w), n + 1) << "must hold the bound value itself";
  if (w > 1) {
    EXPECT_LT((1ULL << (w - 1)), n + 1) << "must be minimal";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CounterWidthSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 9, 15, 16, 17,
                                           1023, 1024, 1025, 4096));

}  // namespace
}  // namespace hlsw::fixpt
