// Tests for the fixpt stream/value helpers: ostream formats, abs, clamp,
// and caller-precision division.
#include "fixpt/io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

namespace hlsw::fixpt {
namespace {

TEST(Io, StreamWideInt) {
  std::ostringstream os;
  os << wide_int<16>(-1234) << " " << wide_int<80>(7);
  EXPECT_EQ(os.str(), "-1234 7");
}

TEST(Io, StreamFixed) {
  std::ostringstream os;
  os << fixed<8, 3>(2.5);
  EXPECT_EQ(os.str(), "2.5");
}

TEST(Io, StreamComplex) {
  std::ostringstream os;
  os << complex_fixed<8, 3>(1.5, -0.25);
  EXPECT_EQ(os.str(), "1.5-j0.25");
  std::ostringstream os2;
  os2 << complex_fixed<8, 3>(0.5, 0.75);
  EXPECT_EQ(os2.str(), "0.5+j0.75");
}

TEST(Io, Describe) {
  EXPECT_EQ(describe(fixed<10, 0>(0.4375)), "0.4375 <10,0>");
}

TEST(Io, AbsIsExactIncludingMin) {
  EXPECT_DOUBLE_EQ(abs(fixed<8, 4>(-3.25)).to_double(), 3.25);
  EXPECT_DOUBLE_EQ(abs(fixed<8, 4>(3.25)).to_double(), 3.25);
  // |most negative| would overflow the same width; abs grows one bit.
  EXPECT_DOUBLE_EQ(abs(fixed<8, 4>(-8.0)).to_double(), 8.0);
}

TEST(Io, Clamp) {
  const fixed<10, 2> lo(-1.0), hi(1.0);
  EXPECT_DOUBLE_EQ(clamp(fixed<10, 2>(1.75), lo, hi).to_double(), 1.0);
  EXPECT_DOUBLE_EQ(clamp(fixed<10, 2>(-1.75), lo, hi).to_double(), -1.0);
  EXPECT_DOUBLE_EQ(clamp(fixed<10, 2>(0.25), lo, hi).to_double(), 0.25);
}

TEST(Io, DivideKnownValues) {
  const auto q = divide<16, 4>(fixed<10, 2>(1.5), fixed<10, 2>(0.5));
  EXPECT_DOUBLE_EQ(q.to_double(), 3.0);
  const auto t = divide<16, 4>(fixed<10, 2>(1.0), fixed<10, 2>(1.5));
  // 2/3 truncated to 12 fractional bits.
  EXPECT_NEAR(t.to_double(), 2.0 / 3, std::pow(2.0, -12));
  EXPECT_LE(t.to_double(), 2.0 / 3);
}

TEST(Io, DivideSignsTruncateTowardZero) {
  const auto a = divide<12, 6>(fixed<10, 4>(7.0), fixed<10, 4>(2.0));
  const auto b = divide<12, 6>(fixed<10, 4>(-7.0), fixed<10, 4>(2.0));
  const auto c = divide<12, 6>(fixed<10, 4>(7.0), fixed<10, 4>(-2.0));
  EXPECT_DOUBLE_EQ(a.to_double(), 3.5);
  EXPECT_DOUBLE_EQ(b.to_double(), -3.5);
  EXPECT_DOUBLE_EQ(c.to_double(), -3.5);
}

TEST(Io, DivideRandomizedAgainstDouble) {
  std::mt19937_64 rng(8);
  for (int iter = 0; iter < 2000; ++iter) {
    const int ra = static_cast<int>(rng() % 1024) - 512;
    const int rb = static_cast<int>(rng() % 1024) - 512;
    if (rb == 0) continue;
    const auto a = fixed<10, 4>::from_raw(wide_int<10>(ra));
    const auto b = fixed<10, 4>::from_raw(wide_int<10>(rb));
    const auto q = divide<24, 10>(a, b);
    const double expect = a.to_double() / b.to_double();
    EXPECT_NEAR(q.to_double(), expect, std::pow(2.0, -14) + 1e-12)
        << ra << "/" << rb;
    // Truncation toward zero: |q| <= |expect|.
    EXPECT_LE(std::abs(q.to_double()), std::abs(expect) + 1e-12);
  }
}

}  // namespace
}  // namespace hlsw::fixpt
