// Tests for the fixed-point datatype: quantization/overflow mode semantics
// (exhaustively, against a rational-arithmetic reference), full-precision
// operator results, and the exact idioms Figure 4 of the paper relies on.
#include "fixpt/fixed.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>

namespace hlsw::fixpt {
namespace {

TEST(Fixed, BasicValueRoundTrip) {
  fixed<8, 3> v(2.5);  // bbb.bbbbb
  EXPECT_DOUBLE_EQ(v.to_double(), 2.5);
  fixed<8, 3> n(-2.5);
  EXPECT_DOUBLE_EQ(n.to_double(), -2.5);
  fixed<10, 0> f(0.25);
  EXPECT_DOUBLE_EQ(f.to_double(), 0.25);
}

TEST(Fixed, PaperRangeConventions) {
  // sc_fixed<3,0>: .bbb, range [-0.5, 0.375], lsb 1/8 — the slicer output.
  fixed<3, 0> lo(-0.5), hi(0.375);
  EXPECT_DOUBLE_EQ(lo.to_double(), -0.5);
  EXPECT_DOUBLE_EQ(hi.to_double(), 0.375);
}

TEST(Fixed, Figure4OffsetIdiom) {
  // Figure 4: sc_fixed<4,0> offset = 0; offset[0] = 1;  => 2^-4.
  fixed<4, 0> offset(0LL);
  offset[0] = 1;
  EXPECT_DOUBLE_EQ(offset.to_double(), 0.0625);
}

TEST(Fixed, Figure4MuIdiom) {
  // Figure 4: mu = (sc_fixed<FFE_W+2,2>)1 >> 8 with FFE_W=10  => 2^-8.
  fixed<12, 2> mu = fixed<12, 2>(1LL) >> 8;
  EXPECT_DOUBLE_EQ(mu.to_double(), std::pow(2.0, -8));
  fixed<10, 0> mu_c(mu);  // assignment into the coefficient step type
  EXPECT_DOUBLE_EQ(mu_c.to_double(), std::pow(2.0, -8));
}

TEST(Fixed, NegativeIntegerWidthsAndWideIW) {
  // IW > W: lsb above 1. fixed<4,6>: values are multiples of 4, range
  // [-32, 28].
  fixed<4, 6> v(12LL);
  EXPECT_DOUBLE_EQ(v.to_double(), 12.0);
  fixed<4, 6, Quant::kRnd, Ovf::kSat> sat(100.0);
  EXPECT_DOUBLE_EQ(sat.to_double(), 28.0);
  // IW < 0: all bits below 2^-1. fixed<4,-2>: lsb 2^-6, max 7/64.
  fixed<4, -2> tiny(0.109375);  // 7 * 2^-6
  EXPECT_DOUBLE_EQ(tiny.to_double(), 0.109375);
}

// -- Quantization modes, exhaustively against a rational reference ----------

double ref_round(Quant q, double x) {
  const double fl = std::floor(x);
  const double frac = x - fl;
  const bool msb = frac >= 0.5;
  const bool rest = frac != 0.0 && frac != 0.5;
  const bool lsb = std::fmod(fl, 2.0) != 0.0;
  return fl + (round_increment(q, msb, rest, x < 0, lsb) ? 1.0 : 0.0);
}

class QuantModeTest : public ::testing::TestWithParam<Quant> {};

TEST_P(QuantModeTest, MatchesReferenceExhaustively) {
  const Quant q = GetParam();
  // Source: fixed<10,2> (fw=8); destination fw=3 => drop 5 bits.
  for (int raw = -512; raw < 512; ++raw) {
    const double val = raw / 256.0;
    const double expect = ref_round(q, val * 8.0) / 8.0;
    fixed<10, 2> src = fixed<10, 2>::from_raw(wide_int<10>(raw));
    double got = NAN;
    switch (q) {
      case Quant::kRnd:
        got = fixed<8, 5, Quant::kRnd>(src).to_double();
        break;
      case Quant::kRndZero:
        got = fixed<8, 5, Quant::kRndZero>(src).to_double();
        break;
      case Quant::kRndMinInf:
        got = fixed<8, 5, Quant::kRndMinInf>(src).to_double();
        break;
      case Quant::kRndInf:
        got = fixed<8, 5, Quant::kRndInf>(src).to_double();
        break;
      case Quant::kRndConv:
        got = fixed<8, 5, Quant::kRndConv>(src).to_double();
        break;
      case Quant::kTrn:
        got = fixed<8, 5, Quant::kTrn>(src).to_double();
        break;
      case Quant::kTrnZero:
        got = fixed<8, 5, Quant::kTrnZero>(src).to_double();
        break;
    }
    EXPECT_DOUBLE_EQ(got, expect)
        << to_string(q) << " of " << val << " (raw " << raw << ")";
  }
}

TEST_P(QuantModeTest, DoubleCtorAgreesWithFixedConversion) {
  const Quant q = GetParam();
  for (int raw = -512; raw < 512; ++raw) {
    const double val = raw / 256.0;
    fixed<10, 2> src = fixed<10, 2>::from_raw(wide_int<10>(raw));
    double via_fixed = NAN, via_double = NAN;
    switch (q) {
      case Quant::kRnd:
        via_fixed = fixed<8, 5, Quant::kRnd>(src).to_double();
        via_double = fixed<8, 5, Quant::kRnd>(val).to_double();
        break;
      case Quant::kRndZero:
        via_fixed = fixed<8, 5, Quant::kRndZero>(src).to_double();
        via_double = fixed<8, 5, Quant::kRndZero>(val).to_double();
        break;
      case Quant::kRndMinInf:
        via_fixed = fixed<8, 5, Quant::kRndMinInf>(src).to_double();
        via_double = fixed<8, 5, Quant::kRndMinInf>(val).to_double();
        break;
      case Quant::kRndInf:
        via_fixed = fixed<8, 5, Quant::kRndInf>(src).to_double();
        via_double = fixed<8, 5, Quant::kRndInf>(val).to_double();
        break;
      case Quant::kRndConv:
        via_fixed = fixed<8, 5, Quant::kRndConv>(src).to_double();
        via_double = fixed<8, 5, Quant::kRndConv>(val).to_double();
        break;
      case Quant::kTrn:
        via_fixed = fixed<8, 5, Quant::kTrn>(src).to_double();
        via_double = fixed<8, 5, Quant::kTrn>(val).to_double();
        break;
      case Quant::kTrnZero:
        via_fixed = fixed<8, 5, Quant::kTrnZero>(src).to_double();
        via_double = fixed<8, 5, Quant::kTrnZero>(val).to_double();
        break;
    }
    EXPECT_DOUBLE_EQ(via_fixed, via_double) << to_string(q) << " of " << val;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, QuantModeTest,
    ::testing::Values(Quant::kRnd, Quant::kRndZero, Quant::kRndMinInf,
                      Quant::kRndInf, Quant::kRndConv, Quant::kTrn,
                      Quant::kTrnZero),
    [](const auto& info) { return to_string(info.param); });

TEST(Quantization, KnownTieCases) {
  // Value 2.5 quantized to integer grid under each mode.
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRnd>(2.5).to_double()), 3.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRndZero>(2.5).to_double()), 2.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRndMinInf>(2.5).to_double()), 2.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRndInf>(2.5).to_double()), 3.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRndConv>(2.5).to_double()), 2.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRndConv>(3.5).to_double()), 4.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kTrn>(2.5).to_double()), 2.0);
  // And at -2.5:
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRnd>(-2.5).to_double()), -2.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRndZero>(-2.5).to_double()), -2.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRndMinInf>(-2.5).to_double()), -3.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRndInf>(-2.5).to_double()), -3.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kRndConv>(-2.5).to_double()), -2.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kTrn>(-2.5).to_double()), -3.0);
  EXPECT_DOUBLE_EQ((fixed<8, 8, Quant::kTrnZero>(-2.5).to_double()), -2.0);
}

// -- Overflow modes ----------------------------------------------------------

TEST(Overflow, Saturate) {
  using Sat = fixed<4, 4, Quant::kTrn, Ovf::kSat>;  // integer range [-8, 7]
  EXPECT_EQ(Sat(100LL).to_int(), 7);
  EXPECT_EQ(Sat(-100LL).to_int(), -8);
  EXPECT_EQ(Sat(7LL).to_int(), 7);
  EXPECT_EQ(Sat(-8LL).to_int(), -8);
}

TEST(Overflow, SaturateSymmetric) {
  using SatSym = fixed<4, 4, Quant::kTrn, Ovf::kSatSym>;
  EXPECT_EQ(SatSym(-100LL).to_int(), -7);
  EXPECT_EQ(SatSym(-8LL).to_int(), -7) << "-8 overflows the symmetric range";
  EXPECT_EQ(SatSym(100LL).to_int(), 7);
}

TEST(Overflow, SaturateZero) {
  using SatZ = fixed<4, 4, Quant::kTrn, Ovf::kSatZero>;
  EXPECT_EQ(SatZ(100LL).to_int(), 0);
  EXPECT_EQ(SatZ(-100LL).to_int(), 0);
  EXPECT_EQ(SatZ(5LL).to_int(), 5);
}

TEST(Overflow, Wrap) {
  using Wrap = fixed<4, 4, Quant::kTrn, Ovf::kWrap>;
  EXPECT_EQ(Wrap(8LL).to_int(), -8);
  EXPECT_EQ(Wrap(17LL).to_int(), 1);
  EXPECT_EQ(Wrap(-9LL).to_int(), 7);
}

TEST(Overflow, UnsignedSaturate) {
  using USat = fixed<4, 4, Quant::kTrn, Ovf::kSat, false>;  // [0, 15]
  EXPECT_EQ(USat(100LL).to_int(), 15);
  EXPECT_EQ(USat(-3LL).to_int(), 0);
}

TEST(Overflow, PaperSlicerMode) {
  // Figure 4 slicer: (sc_fixed<FFE_W,0,SC_RND_ZERO,SC_SAT>)(y.r() - offset)
  // then assigned into sc_fixed<3,0>. An out-of-range equalizer output must
  // clamp to the outermost constellation row, not wrap.
  using SliceT = fixed<3, 0, Quant::kRndZero, Ovf::kSat>;
  EXPECT_DOUBLE_EQ(SliceT(0.9).to_double(), 0.375);
  EXPECT_DOUBLE_EQ(SliceT(-0.9).to_double(), -0.5);
}

// -- Full-precision arithmetic ------------------------------------------------

TEST(FixedArith, AdditionIsExact) {
  fixed<8, 3> a(3.96875), b(3.96875);  // max value
  auto c = a + b;
  static_assert(decltype(c)::kW == 9 && decltype(c)::kIW == 4);
  EXPECT_DOUBLE_EQ(c.to_double(), 7.9375);
}

TEST(FixedArith, MultiplicationIsExact) {
  fixed<8, 3> a(-4.0), b(-4.0);
  auto c = a * b;
  static_assert(decltype(c)::kW == 16 && decltype(c)::kIW == 6);
  EXPECT_DOUBLE_EQ(c.to_double(), 16.0);
}

TEST(FixedArith, MixedSignednessPromotion) {
  ufixed<8, 4> u(15.9375);
  sfixed<8, 4> s(-8.0);
  auto c = u + s;
  static_assert(decltype(c)::kS);
  EXPECT_DOUBLE_EQ(c.to_double(), 7.9375);
  auto p = u * s;
  EXPECT_DOUBLE_EQ(p.to_double(), -127.5);
}

TEST(FixedArith, RandomizedAgainstDouble) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 5000; ++iter) {
    const int ra = static_cast<int>(rng() % 4096) - 2048;
    const int rb = static_cast<int>(rng() % 4096) - 2048;
    fixed<12, 4> a = fixed<12, 4>::from_raw(wide_int<12>(ra));
    fixed<12, 6> b = fixed<12, 6>::from_raw(wide_int<12>(rb));
    EXPECT_DOUBLE_EQ((a + b).to_double(), a.to_double() + b.to_double());
    EXPECT_DOUBLE_EQ((a - b).to_double(), a.to_double() - b.to_double());
    EXPECT_DOUBLE_EQ((a * b).to_double(), a.to_double() * b.to_double());
    EXPECT_EQ(a < b, a.to_double() < b.to_double());
    EXPECT_DOUBLE_EQ((-a).to_double(), -a.to_double());
  }
}

TEST(FixedArith, CompoundAccumulateMatchesPaperFilterPattern) {
  // The FIR accumulation in Figure 4: acc is wider than the products; the
  // += wraps into acc's own type each step.
  fixed<11, 1> acc(0LL);  // sc_complex<FFE_W+1,1>-style accumulator (scalar)
  double ref = 0;
  std::mt19937_64 rng(5);
  for (int k = 0; k < 8; ++k) {
    const int xr = static_cast<int>(rng() % 512) - 256;
    const int cr = static_cast<int>(rng() % 512) - 256;
    fixed<10, 0> x = fixed<10, 0>::from_raw(wide_int<10>(xr));
    fixed<10, 0> c = fixed<10, 0>::from_raw(wide_int<10>(cr));
    acc += x * c;
    ref += x.to_double() * c.to_double();
    // fixed<11,1> has fw=10; products have fw=20 -> truncation may occur.
    EXPECT_NEAR(acc.to_double(), ref, 8 * std::pow(2.0, -10));
  }
}

TEST(FixedArith, ToIntTruncatesTowardZero) {
  EXPECT_EQ((fixed<8, 4>(3.75).to_int()), 3);
  EXPECT_EQ((fixed<8, 4>(-3.75).to_int()), -3);
  EXPECT_EQ((fixed<8, 4>(-0.25).to_int()), 0);
  EXPECT_EQ((fixed<6, 6>(-17LL).to_int()), -17);
}

TEST(FixedArith, IntegerMixedOps) {
  // Figure 4: data_f = r*64 + i*8 with fixed<3,0> r, i.
  fixed<3, 0> r(-0.5), i(0.375);  // raws -4 and 3
  auto data_f = fixed<6, 6>(r * 64 + i * 8);
  // -0.5*64 + 0.375*8 = -32 + 3 = -29; 6-bit wrap keeps -29.
  EXPECT_EQ(data_f.to_int(), -29);
}

TEST(FixedArith, ComparisonAcrossFormats) {
  EXPECT_TRUE((fixed<8, 4>(1.5) == fixed<16, 2>(1.5)));
  EXPECT_TRUE((fixed<8, 4>(1.25) < fixed<16, 2>(1.5)));
  EXPECT_TRUE((fixed<8, 4>(-1.25) >= fixed<4, 2>(-1.5)));
  EXPECT_TRUE((fixed<8, 4>(2.0) == 2));
  EXPECT_TRUE((fixed<8, 4>(-2.5) < 0));
}

TEST(Fixed, BitAccessReadBack) {
  fixed<8, 4> v(0LL);
  v[7] = 1;  // sign bit => -8.0
  EXPECT_DOUBLE_EQ(v.to_double(), -8.0);
  EXPECT_TRUE(v[7]);
  v[7] = 0;
  EXPECT_DOUBLE_EQ(v.to_double(), 0.0);
}

TEST(Fixed, InfAndNanSaturate) {
  using Sat = fixed<8, 4, Quant::kRnd, Ovf::kSat>;
  EXPECT_DOUBLE_EQ(Sat(1e30).to_double(), 7.9375);
  EXPECT_DOUBLE_EQ(Sat(-1e30).to_double(), -8.0);
  EXPECT_DOUBLE_EQ(Sat(std::numeric_limits<double>::infinity()).to_double(),
                   7.9375);
}

}  // namespace
}  // namespace hlsw::fixpt
