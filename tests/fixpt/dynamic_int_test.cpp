// Cross-validation of dynamic_int (the word-based sc_bigint analogue)
// against native arithmetic and wide_int.
#include "fixpt/dynamic_int.h"

#include <gtest/gtest.h>

#include <random>

#include "fixpt/wide_int.h"

namespace hlsw::fixpt {
namespace {

TEST(DynamicInt, RoundTripAndWrap) {
  EXPECT_EQ(dynamic_int(16, 1234).to_int64(), 1234);
  EXPECT_EQ(dynamic_int(16, -1234).to_int64(), -1234);
  EXPECT_EQ(dynamic_int(8, 200).to_int64(), -56);
  EXPECT_TRUE(dynamic_int(80, -5).is_neg());
}

TEST(DynamicInt, KnownArithmetic) {
  EXPECT_EQ(add(dynamic_int(8, 100), dynamic_int(8, 27)).to_int64(), 127);
  EXPECT_EQ(sub(dynamic_int(8, -100), dynamic_int(8, 28)).to_int64(), -128);
  EXPECT_EQ(mul(dynamic_int(8, -128), dynamic_int(8, -128)).to_int64(),
            16384);
}

class DynIntCross : public ::testing::TestWithParam<int> {};

TEST_P(DynIntCross, AgreesWithNative) {
  const int w = GetParam();
  std::mt19937_64 rng(500 + static_cast<uint64_t>(w));
  for (int iter = 0; iter < 500; ++iter) {
    const long long a = static_cast<long long>(rng()) >> (64 - w);
    const long long b = static_cast<long long>(rng()) >> (64 - w);
    const dynamic_int da(w, a), db(w, b);
    EXPECT_EQ(add(da, db).to_int64(), a + b);
    EXPECT_EQ(sub(da, db).to_int64(), a - b);
    EXPECT_EQ(mul(da, db).to_int64(),
              static_cast<long long>(static_cast<__int128>(a) * b));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DynIntCross,
                         ::testing::Values(8, 17, 24, 31));

TEST(DynIntCross, WideWidthsAgreeWithWideInt) {
  std::mt19937_64 rng(31337);
  for (int iter = 0; iter < 100; ++iter) {
    const long long a = static_cast<long long>(rng()) >> 2;
    const long long b = static_cast<long long>(rng()) >> 2;
    const dynamic_int da(96, a), db(96, b);
    const wide_int<96> wa(a), wb(b);
    const auto dp = mul(da, db);
    const auto wp = wa * wb;
    for (std::size_t i = 0; i < 3; ++i)
      ASSERT_EQ(dp.limb(i), wp.ext_limb(static_cast<int>(i))) << "limb " << i;
  }
}

}  // namespace
}  // namespace hlsw::fixpt
