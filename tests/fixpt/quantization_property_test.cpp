// Property tests over the quantization/overflow machinery — the invariants
// every rounding mode must satisfy regardless of width combination:
//
//   * bounded error: |Q(x) - x| < 1 ulp (truncation) or <= 1/2 ulp
//     (round-to-nearest), when x is in range;
//   * idempotence: re-converting a converted value changes nothing;
//   * monotonicity: x <= y implies Q(x) <= Q(y) for saturating modes;
//   * saturation clamps exactly to the representable extremes;
//   * WRAP is exact arithmetic modulo 2^W.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fixpt/fixed.h"

namespace hlsw::fixpt {
namespace {

template <Quant Q, Ovf O>
void check_properties() {
  using Src = fixed<14, 4>;   // fw = 10
  using Dst = fixed<9, 4, Q, O>;  // fw = 5: drops 5 bits
  const double ulp = std::pow(2.0, -5);
  const double dst_max = Dst::from_raw(wide_int<9>(255)).to_double();
  // SAT_SYM's legal range is symmetric: min = -max.
  const double dst_min = O == Ovf::kSatSym
                             ? -dst_max
                             : Dst::from_raw(wide_int<9>(-256)).to_double();

  std::mt19937_64 rng(static_cast<uint64_t>(static_cast<int>(Q)) * 31 +
                      static_cast<uint64_t>(static_cast<int>(O)));
  double prev_in = -1e9, prev_out = -1e9;
  bool have_prev = false;
  for (int raw = -8192; raw < 8192; raw += 3) {
    const Src s = Src::from_raw(wide_int<14>(raw));
    const Dst d(s);
    const double x = s.to_double();
    const double q = d.to_double();

    const bool in_range = x <= dst_max + ulp / 2 && x >= dst_min - ulp / 2;
    if (in_range && x <= dst_max && x >= dst_min) {
      // Bounded error.
      const bool nearest = Q != Quant::kTrn && Q != Quant::kTrnZero;
      EXPECT_LE(std::abs(q - x), nearest ? ulp / 2 + 1e-12 : ulp - 1e-12)
          << "mode " << to_string(Q) << " raw " << raw;
      // Idempotence.
      EXPECT_DOUBLE_EQ(Dst(d).to_double(), q);
    }
    // Monotonicity for clamping modes (WRAP legitimately wraps and
    // SAT_ZERO legitimately jumps to zero on overflow).
    if (O != Ovf::kWrap && O != Ovf::kSatZero && have_prev) {
      EXPECT_LE(prev_out, q + 1e-12)
          << "mode " << to_string(Q) << "/" << to_string(O) << ": Q("
          << prev_in << ")=" << prev_out << " > Q(" << x << ")=" << q;
    }
    prev_in = x;
    prev_out = q;
    have_prev = true;
  }

  // Saturation extremes.
  if (O == Ovf::kSat) {
    EXPECT_DOUBLE_EQ(Dst(Src(7.96875)).to_double(), dst_max);
    EXPECT_DOUBLE_EQ(Dst(Src(-8.0)).to_double(), dst_min);
  }
}

TEST(QuantProperty, AllModeCombinations) {
  check_properties<Quant::kRnd, Ovf::kSat>();
  check_properties<Quant::kRndZero, Ovf::kSat>();
  check_properties<Quant::kRndMinInf, Ovf::kSat>();
  check_properties<Quant::kRndInf, Ovf::kSat>();
  check_properties<Quant::kRndConv, Ovf::kSat>();
  check_properties<Quant::kTrn, Ovf::kSat>();
  check_properties<Quant::kTrnZero, Ovf::kSat>();
  check_properties<Quant::kRnd, Ovf::kWrap>();
  check_properties<Quant::kTrn, Ovf::kWrap>();
  check_properties<Quant::kRnd, Ovf::kSatZero>();
  check_properties<Quant::kRnd, Ovf::kSatSym>();
}

TEST(QuantProperty, WrapIsExactModulo) {
  // WRAP: Q(x) === x (mod 2^IW-range) at the destination scale, after
  // truncation of the dropped bits.
  using Src = fixed<16, 8>;
  using Dst = fixed<8, 8, Quant::kTrn, Ovf::kWrap>;  // integers mod 256
  std::mt19937_64 rng(3);
  for (int iter = 0; iter < 2000; ++iter) {
    const int raw = static_cast<int>(rng() % 65536) - 32768;
    const Src s = Src::from_raw(wide_int<16>(raw));
    const Dst d(s);
    const long long floor_x =
        static_cast<long long>(std::floor(s.to_double()));
    long long wrapped = ((floor_x % 256) + 256 + 128) % 256 - 128;
    EXPECT_EQ(d.to_int(), wrapped) << "raw " << raw;
  }
}

TEST(QuantProperty, TruncationNeverIncreasesMagnitudeTowardZero) {
  // kTrnZero: |Q(x)| <= |x| always (it truncates toward zero).
  using Src = fixed<14, 4>;
  using Dst = fixed<9, 4, Quant::kTrnZero, Ovf::kSat>;
  for (int raw = -8192; raw < 8192; raw += 7) {
    const Src s = Src::from_raw(wide_int<14>(raw));
    const Dst d(s);
    EXPECT_LE(std::abs(d.to_double()), std::abs(s.to_double()) + 1e-12)
        << "raw " << raw;
  }
}

TEST(QuantProperty, RoundConvIsTieFreeUnbiased) {
  // Over all exact ties, RND_CONV rounds half of them up and half down
  // (ties-to-even): the mean tie error is zero.
  using Src = fixed<12, 4>;  // fw 8
  using Dst = fixed<8, 4, Quant::kRndConv, Ovf::kSat>;  // fw 4: tie at 8
  double sum_err = 0;
  int ties = 0;
  // Stay inside [-4, 4): no saturation at the extremes, and an equal count
  // of odd and even kept-LSBs so the cancellation is exact.
  for (int raw = -1024; raw < 1024; ++raw) {
    if ((raw & 15) != 8) continue;  // exact half-ulp ties only
    const Src s = Src::from_raw(wide_int<12>(raw));
    const Dst d(s);
    sum_err += d.to_double() - s.to_double();
    ++ties;
  }
  ASSERT_GT(ties, 100);
  EXPECT_NEAR(sum_err / ties, 0.0, 1e-12)
      << "convergent rounding must be unbiased on ties";
}

TEST(QuantProperty, RndIsBiasedOnTiesButTrnIsBiasedEverywhere) {
  // The bias ranking that matters for LMS accumulators (finding F4-bias):
  // TRN has a -1/2 ulp mean error, RND only biases on exact ties, RND_CONV
  // has no tie bias at all.
  using Src = fixed<12, 4>;
  auto mean_err = [](auto dst_tag) {
    using Dst = decltype(dst_tag);
    double sum = 0;
    int n = 0;
    for (int raw = -2048; raw < 2048; ++raw) {
      const Src s = Src::from_raw(wide_int<12>(raw));
      const Dst d(s);
      sum += d.to_double() - s.to_double();
      ++n;
    }
    return sum / n;
  };
  const double ulp = std::pow(2.0, -4);
  const double e_trn = mean_err(fixed<8, 4, Quant::kTrn, Ovf::kSat>{});
  const double e_rnd = mean_err(fixed<8, 4, Quant::kRnd, Ovf::kSat>{});
  const double e_conv = mean_err(fixed<8, 4, Quant::kRndConv, Ovf::kSat>{});
  EXPECT_NEAR(e_trn, -ulp / 2 * (15.0 / 16), ulp / 8)
      << "truncation bias ~ -ulp/2";
  EXPECT_LT(std::abs(e_rnd), std::abs(e_trn) / 4);
  EXPECT_LT(std::abs(e_conv), std::abs(e_rnd) + 1e-12);
}

}  // namespace
}  // namespace hlsw::fixpt
