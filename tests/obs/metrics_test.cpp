// obs::MetricsRegistry — counter accumulation (including across threads),
// gauge last-write-wins, nearest-rank histogram quantiles, and the two
// export surfaces (summary table, JSON snapshot).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace hlsw::obs {
namespace {

// The registry is process-wide: isolate each test with a reset.
class obs_metrics : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::instance().reset(); }
  void TearDown() override { MetricsRegistry::instance().reset(); }
};

TEST_F(obs_metrics, CountersAccumulate) {
  auto& m = MetricsRegistry::instance();
  EXPECT_EQ(m.counter_value("c"), 0.0);
  m.add("c");
  m.add("c", 2.5);
  EXPECT_EQ(m.counter_value("c"), 3.5);
}

TEST_F(obs_metrics, CountersAccumulateAcrossThreads) {
  auto& m = MetricsRegistry::instance();
  constexpr int kThreads = 8, kAdds = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&m] {
      for (int i = 0; i < kAdds; ++i) m.add("parallel.count");
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(m.counter_value("parallel.count"),
            static_cast<double>(kThreads * kAdds));
}

TEST_F(obs_metrics, GaugeLastWriteWins) {
  auto& m = MetricsRegistry::instance();
  m.set_gauge("g", 1.0);
  m.set_gauge("g", 7.5);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "g");
  EXPECT_EQ(snap.gauges[0].second, 7.5);
}

TEST_F(obs_metrics, HistogramNearestRankQuantiles) {
  auto& m = MetricsRegistry::instance();
  // 1..100 in scrambled order: nearest-rank pXX of N=100 samples is
  // exactly the XXth smallest.
  for (int i = 0; i < 100; ++i) m.observe("h", static_cast<double>((i * 37) % 100 + 1));
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& [name, h] = snap.histograms[0];
  EXPECT_EQ(name, "h");
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.min, 1.0);
  EXPECT_EQ(h.max, 100.0);
  EXPECT_DOUBLE_EQ(h.mean, 50.5);
  EXPECT_EQ(h.p50, 50.0);
  EXPECT_EQ(h.p95, 95.0);
  EXPECT_EQ(h.p99, 99.0);
}

TEST_F(obs_metrics, SingleSampleHistogramIsItsOwnQuantile) {
  auto& m = MetricsRegistry::instance();
  m.observe("one", 3.25);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& h = snap.histograms[0].second;
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.p50, 3.25);
  EXPECT_EQ(h.p95, 3.25);
  EXPECT_EQ(h.p99, 3.25);
}

TEST_F(obs_metrics, SnapshotIsNameSorted) {
  auto& m = MetricsRegistry::instance();
  m.add("zz");
  m.add("aa");
  m.add("mm");
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "aa");
  EXPECT_EQ(snap.counters[1].first, "mm");
  EXPECT_EQ(snap.counters[2].first, "zz");
}

TEST_F(obs_metrics, SummaryTableListsEveryMetric) {
  auto& m = MetricsRegistry::instance();
  m.add("runs", 3);
  m.set_gauge("depth", 2);
  m.observe("lat", 10);
  const std::string table = m.summary_table();
  EXPECT_NE(table.find("== Metrics =="), std::string::npos);
  EXPECT_NE(table.find("runs"), std::string::npos);
  EXPECT_NE(table.find("depth"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);
}

TEST_F(obs_metrics, ToJsonRoundTripsThroughParse) {
  auto& m = MetricsRegistry::instance();
  m.add("c", 2);
  m.set_gauge("g", 1.5);
  m.observe("h", 4);
  m.observe("h", 8);
  Json doc;
  std::string err;
  ASSERT_TRUE(Json::parse(m.to_json().dump(), &doc, &err)) << err;
  EXPECT_EQ(doc.find("counters")->find("c")->as_double(), 2.0);
  EXPECT_EQ(doc.find("gauges")->find("g")->as_double(), 1.5);
  const Json* h = doc.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_int(), 2);
  EXPECT_EQ(h->find("mean")->as_double(), 6.0);
}

TEST_F(obs_metrics, ResetClearsEverything) {
  auto& m = MetricsRegistry::instance();
  m.add("c");
  m.set_gauge("g", 1);
  m.observe("h", 1);
  m.reset();
  const auto snap = m.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

}  // namespace
}  // namespace hlsw::obs
