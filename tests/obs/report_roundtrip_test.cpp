// Every StructuredReport producer in the repo must emit a document that
// strict-parses back through obs::Json and carries the {tool,
// schema_version} envelope: dse_run.json (hls::explore), the rtl
// simulator's sim_stats_json, the bench harness artifact (bench_main.h)
// and the profile_run.json of the instrumentation loop. A producer whose
// output the repo's own parser rejects is a broken artifact, found here
// instead of in a downstream dashboard.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "../../bench/bench_main.h"
#include "hls/dse.h"
#include "hls/report.h"
#include "obs/json.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "vsim/profile.h"

namespace hlsw {
namespace {

std::string slurp(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) return "";
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, fp)) > 0;)
    text.append(buf, n);
  std::fclose(fp);
  return text;
}

// Strict-parses `text` and checks the report envelope; returns the parsed
// document for producer-specific assertions.
obs::Json parse_enveloped(const std::string& text, const std::string& tool,
                          long long schema_version) {
  obs::Json doc;
  std::string err;
  EXPECT_TRUE(obs::Json::parse(text, &doc, &err)) << err;
  EXPECT_TRUE(doc.is_object());
  const obs::Json* t = doc.find("tool");
  const obs::Json* v = doc.find("schema_version");
  EXPECT_NE(t, nullptr);
  EXPECT_NE(v, nullptr);
  if (t != nullptr) {
    EXPECT_EQ(t->as_string(), tool);
  }
  if (v != nullptr) {
    EXPECT_EQ(v->as_int(), schema_version);
  }
  return doc;
}

TEST(ReportRoundtrip, DseRunJson) {
  const std::string path = ::testing::TempDir() + "/roundtrip_dse_run.json";
  hls::DseOptions opts;
  opts.unroll_factors = {1, 2};
  opts.threads = 1;
  opts.report_path = path;
  const auto r =
      hls::explore(qam::build_qam_decoder_ir(), opts, hls::TechLibrary::asic90());
  ASSERT_FALSE(r.points.empty());
  const obs::Json doc = parse_enveloped(slurp(path), "hlsw.dse", 2);
  std::remove(path.c_str());
  const obs::Json* points = doc.find("points");
  ASSERT_NE(points, nullptr);
  EXPECT_EQ(points->size(), r.points.size());
}

TEST(ReportRoundtrip, SimStatsJson) {
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(),
                                    qam::table1_architectures()[0].dir,
                                    hls::TechLibrary::asic90());
  rtl::Simulator sim(r.transformed, r.schedule);
  qam::LinkStimulus stim((qam::LinkConfig()));
  sim.run_stream(qam::link_input_batch(&stim, 3));
  const obs::Json doc =
      parse_enveloped(sim_stats_json(sim).dump(2), "hlsw.rtl_sim", 2);
  EXPECT_NE(doc.find("regions"), nullptr);
  EXPECT_NE(doc.find("arrays"), nullptr);
}

TEST(ReportRoundtrip, BenchArtifactJson) {
  const std::string path = ::testing::TempDir() + "/roundtrip_bench.json";
  {
    // Simulate the flag-parsed entry: --json <path> --metrics, so the
    // artifact embeds the MetricsRegistry snapshot alongside the timings.
    std::string a0 = "prog", a1 = "--json", a2 = path, a3 = "--metrics";
    char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), nullptr};
    int argc = 4;
    bench::Harness h("roundtrip", &argc, argv);
    EXPECT_EQ(argc, 1) << "harness flags must be stripped";
    EXPECT_TRUE(h.embed_metrics());
    h.measure("busy_work", [] {
      volatile int x = 0;
      for (int i = 0; i < 1000; ++i) x = x + i;
    });
    h.note("answer", 42);
    h.write();
  }
  const obs::Json doc = parse_enveloped(slurp(path), "hlsw.bench", 1);
  std::remove(path.c_str());
  const obs::Json* m = doc.find("measurements");
  ASSERT_NE(m, nullptr);
  ASSERT_NE(m->find("busy_work"), nullptr);
  EXPECT_NE(m->find("busy_work")->find("min_ms"), nullptr);
  EXPECT_NE(doc.find("metrics"), nullptr)
      << "--metrics must embed the registry snapshot";
}

TEST(ReportRoundtrip, BenchArtifactOmitsMetricsByDefault) {
  const std::string path =
      ::testing::TempDir() + "/roundtrip_bench_plain.json";
  {
    std::string a0 = "prog", a1 = "--json", a2 = path;
    char* argv[] = {a0.data(), a1.data(), a2.data(), nullptr};
    int argc = 3;
    bench::Harness h("roundtrip_plain", &argc, argv);
    EXPECT_FALSE(h.embed_metrics());
    h.write();
  }
  const obs::Json doc = parse_enveloped(slurp(path), "hlsw.bench", 1);
  std::remove(path.c_str());
  EXPECT_EQ(doc.find("metrics"), nullptr);
}

TEST(ReportRoundtrip, ProfileRunJson) {
  const std::string path =
      ::testing::TempDir() + "/roundtrip_profile_run.json";
  qam::LinkStimulus stim((qam::LinkConfig()));
  vsim::ProfileRunOptions opts;
  opts.report_path = path;
  const auto res = vsim::profile_run(
      qam::build_qam_decoder_ir(), qam::table1_architectures()[0].dir,
      hls::TechLibrary::asic90(), qam::link_input_batch(&stim, 3), opts);
  ASSERT_TRUE(res.ok());
  const obs::Json doc = parse_enveloped(slurp(path), "hlsw.profile", 3);
  std::remove(path.c_str());
  EXPECT_NE(doc.find("counter_map"), nullptr);
  EXPECT_NE(doc.find("legs"), nullptr);
  EXPECT_NE(doc.find("feasibility"), nullptr);
}

}  // namespace
}  // namespace hlsw
