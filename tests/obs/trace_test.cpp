// obs::TraceSession / ScopedSpan — enable gating, span nesting, the
// deterministic multi-thread merge, and the Chrome trace_event export
// (parsed back with obs::Json to validate the schema Perfetto expects).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace hlsw::obs {
namespace {

// Every test runs against the process-wide session: start from a clean
// slate and leave tracing disabled for whoever runs next.
class obs_trace : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    TraceSession::instance().clear();
  }
  void TearDown() override {
    set_enabled(false);
    TraceSession::instance().clear();
  }
};

TEST_F(obs_trace, DisabledScopedSpanRecordsNothing) {
  auto& s = TraceSession::instance();
  const std::size_t before = s.event_count();
  {
    ScopedSpan span("noop", "test");
    EXPECT_FALSE(span.active());
    span.arg("ignored", Json(1));  // must be a no-op, not a crash
  }
  EXPECT_EQ(s.event_count(), before);
}

TEST_F(obs_trace, EnableDisableToggles) {
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST_F(obs_trace, NestedSpansRecordContainedDurations) {
  set_enabled(true);
  auto& s = TraceSession::instance();
  {
    ScopedSpan outer("outer", "test");
    ASSERT_TRUE(outer.active());
    outer.arg("k", Json("v"));
    {
      ScopedSpan inner("inner", "test");
      ASSERT_TRUE(inner.active());
    }
  }
  const auto events = s.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction: inner closes first but starts later.
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    ASSERT_EQ(e.kind, TraceEvent::Kind::kSpan);
    (e.name == "outer" ? outer : inner) = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_LE(outer->ts_us, inner->ts_us);
  EXPECT_GE(outer->ts_us + outer->dur_us, inner->ts_us + inner->dur_us);
  ASSERT_NE(outer->args.find("k"), nullptr);
  EXPECT_EQ(outer->args.find("k")->as_string(), "v");
}

TEST_F(obs_trace, SnapshotMergeIsDeterministic) {
  set_enabled(true);
  auto& s = TraceSession::instance();
  // Several threads, each emitting spans at explicit timestamps so the
  // merged order is fully determined by (ts, tid, seq) — not by scheduling.
  constexpr int kThreads = 4, kPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&s, t] {
      for (int i = 0; i < kPerThread; ++i)
        s.span("w" + std::to_string(t), "test", /*ts_us=*/i * 10.0,
               /*dur_us=*/5.0);
    });
  for (auto& w : workers) w.join();

  const auto a = s.snapshot();
  const auto b = s.snapshot();
  ASSERT_EQ(a.size(), static_cast<std::size_t>(kThreads * kPerThread));
  ASSERT_EQ(s.event_count(), a.size());
  // Two snapshots of the same session are identical...
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].tid, b[i].tid);
    EXPECT_EQ(a[i].seq, b[i].seq);
  }
  // ...and sorted by (ts, tid, seq).
  for (std::size_t i = 1; i < a.size(); ++i) {
    const bool ordered =
        a[i - 1].ts_us < a[i].ts_us ||
        (a[i - 1].ts_us == a[i].ts_us &&
         (a[i - 1].tid < a[i].tid ||
          (a[i - 1].tid == a[i].tid && a[i - 1].seq < a[i].seq)));
    EXPECT_TRUE(ordered) << "events " << i - 1 << " and " << i;
  }
}

TEST_F(obs_trace, ClearKeepsTidAssignments) {
  set_enabled(true);
  auto& s = TraceSession::instance();
  s.instant("first", "test");
  const auto before = s.snapshot();
  ASSERT_FALSE(before.empty());
  const std::uint32_t my_tid = before.back().tid;
  s.clear();
  EXPECT_EQ(s.event_count(), 0u);
  s.instant("second", "test");
  const auto after = s.snapshot();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].tid, my_tid);
}

TEST_F(obs_trace, ChromeTraceParsesBackWithAllPhases) {
  set_enabled(true);
  auto& s = TraceSession::instance();
  s.span("work", "cat", 10.0, 4.0, Json::object().set("x", 1));
  s.instant("mark", "cat");
  s.counter("gauge", 42.0);

  Json doc;
  std::string err;
  ASSERT_TRUE(Json::parse(s.chrome_trace_json(), &doc, &err)) << err;
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int spans = 0, instants = 0, counters = 0, metadata = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    ASSERT_NE(e.find("ph"), nullptr);
    const std::string ph = e.find("ph")->as_string();
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph == "X") {
      ++spans;
      EXPECT_EQ(e.find("name")->as_string(), "work");
      EXPECT_EQ(e.find("ts")->as_double(), 10.0);
      EXPECT_EQ(e.find("dur")->as_double(), 4.0);
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_EQ(e.find("args")->find("x")->as_int(), 1);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.find("name")->as_string(), "mark");
    } else if (ph == "C") {
      ++counters;
      EXPECT_EQ(e.find("args")->find("value")->as_double(), 42.0);
    }
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_GE(metadata, 1);  // process_name metadata record
}

TEST_F(obs_trace, WriteChromeTraceProducesParseableFile) {
  set_enabled(true);
  auto& s = TraceSession::instance();
  s.instant("evt", "test");
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(s.write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  Json doc;
  ASSERT_TRUE(Json::parse(text, &doc));
  ASSERT_NE(doc.find("traceEvents"), nullptr);
}

}  // namespace
}  // namespace hlsw::obs
