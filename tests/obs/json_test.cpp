// obs::Json — the value type every observability artifact is built from
// and parsed back with. Covers dump/parse round-trips, insertion-order
// preservation, number formatting, escaping, and strict error reporting.
#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"

namespace hlsw::obs {
namespace {

Json parse_ok(const std::string& text) {
  Json out;
  std::string err;
  EXPECT_TRUE(Json::parse(text, &out, &err)) << text << " : " << err;
  return out;
}

TEST(obs_json, ScalarsDumpCompactly) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(obs_json, IntegralDoublesPrintWithoutExponent) {
  EXPECT_EQ(Json(1000000.0).dump(), "1000000");
  EXPECT_EQ(Json(-250000.0).dump(), "-250000");
  // 2^53, the largest exactly-representable integer, still prints exactly.
  EXPECT_EQ(Json(9007199254740992.0).dump(), "9007199254740992");
}

TEST(obs_json, NonIntegralNumbersRoundTrip) {
  for (double v : {0.5, -3.25, 1e-9, 123.456789012345, 2.2250738585072014e-308}) {
    const Json parsed = parse_ok(Json(v).dump());
    EXPECT_EQ(parsed.as_double(), v) << Json(v).dump();
  }
}

TEST(obs_json, CompactObjectHasNoSpaces) {
  const Json j = Json::object().set("a", 1).set("b", "x");
  // hls::to_json() consumers substring-match on "key":value — the compact
  // form must never insert spaces after ':' or ','.
  EXPECT_EQ(j.dump(), "{\"a\":1,\"b\":\"x\"}");
}

TEST(obs_json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", 1).set("apple", 2).set("mango", 3);
  ASSERT_EQ(j.size(), 3u);
  EXPECT_EQ(j.items()[0].first, "zebra");
  EXPECT_EQ(j.items()[1].first, "apple");
  EXPECT_EQ(j.items()[2].first, "mango");
  // Overwriting keeps the original position.
  j.set("apple", 99);
  ASSERT_EQ(j.size(), 3u);
  EXPECT_EQ(j.items()[1].first, "apple");
  EXPECT_EQ(j.items()[1].second.as_int(), 99);
}

TEST(obs_json, FindReturnsNullForMissingKeys) {
  const Json j = Json::object().set("present", 1);
  ASSERT_NE(j.find("present"), nullptr);
  EXPECT_EQ(j.find("absent"), nullptr);
  EXPECT_EQ(Json(5).find("x"), nullptr);  // non-objects have no keys
}

TEST(obs_json, StringEscapingRoundTrips) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
  const Json parsed = parse_ok(Json(nasty).dump());
  EXPECT_EQ(parsed.as_string(), nasty);
}

TEST(obs_json, ParseDecodesUnicodeEscapes) {
  const Json j = parse_ok("\"\\u0041\\u00e9\\u20ac\"");
  EXPECT_EQ(j.as_string(), "A\xc3\xa9\xe2\x82\xac");  // A, é, €
}

TEST(obs_json, NestedDocumentRoundTrips) {
  Json doc = Json::object()
                 .set("tool", "hlsw.test")
                 .set("counts", Json::array().push(1).push(2).push(3))
                 .set("nested", Json::object().set("ok", true).set("v", 1.5));
  for (int indent : {-1, 0, 2}) {
    const Json back = parse_ok(doc.dump(indent));
    ASSERT_TRUE(back.is_object());
    EXPECT_EQ(back.find("tool")->as_string(), "hlsw.test");
    ASSERT_EQ(back.find("counts")->size(), 3u);
    EXPECT_EQ(back.find("counts")->at(2).as_int(), 3);
    EXPECT_TRUE(back.find("nested")->find("ok")->as_bool());
    EXPECT_EQ(back.find("nested")->find("v")->as_double(), 1.5);
  }
}

TEST(obs_json, PrettyDumpIndentsAndParsesBack) {
  const Json doc =
      Json::object().set("a", Json::array().push(1)).set("b", Json::object());
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find("\n"), std::string::npos);
  EXPECT_NE(pretty.find("  \"a\""), std::string::npos);
  const Json back = parse_ok(pretty);
  EXPECT_EQ(back.dump(), doc.dump());
}

TEST(obs_json, ParseRejectsMalformedInput) {
  Json out;
  std::string err;
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1} trailing", "[1 2]", "{\"a\" 1}", "nul", "+5"}) {
    EXPECT_FALSE(Json::parse(bad, &out, &err)) << "accepted: " << bad;
  }
}

TEST(obs_json, ParseAcceptsWhitespaceAroundTokens) {
  const Json j = parse_ok("  { \"a\" : [ 1 , 2 ] , \"b\" : null }  ");
  EXPECT_EQ(j.find("a")->size(), 2u);
  EXPECT_TRUE(j.find("b")->is_null());
}

TEST(obs_json, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\n"), "\\n");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace hlsw::obs
