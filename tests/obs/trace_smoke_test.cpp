// End-to-end observability smoke test: a tracing-enabled explore() on the
// paper's QAM decoder IR must produce (a) a trace whose per-candidate and
// per-synthesis event totals equal the DseResult's memoization counters,
// (b) a Chrome trace_event JSON artifact with the record shape Perfetto
// loads, and (c) a dse_run.json structured report consistent with the
// in-memory result.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "hls/dse.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qam/decoder_ir.h"

namespace hlsw::hls {
namespace {

class trace_smoke : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::TraceSession::instance().clear();
    obs::MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::TraceSession::instance().clear();
    obs::MetricsRegistry::instance().reset();
  }

  static std::string read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f) return {};
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
    return text;
  }
};

DseResult explore_decoder(unsigned threads, const std::string& report_path = "") {
  DseOptions opts;
  opts.threads = threads;
  opts.unroll_factors = {1, 2};
  opts.report_path = report_path;
  return explore(qam::build_qam_decoder_ir(), opts, TechLibrary::asic90());
}

TEST_F(trace_smoke, SpanAndCounterTotalsMatchCacheCounters) {
  for (unsigned threads : {1u, 4u}) {
    obs::TraceSession::instance().clear();
    const DseResult r = explore_decoder(threads);
    ASSERT_FALSE(r.points.empty());

    std::size_t candidates = 0, synth_spans = 0;
    double last_hits = -1, last_misses = -1;
    for (const auto& e : obs::TraceSession::instance().snapshot()) {
      if (e.cat == "dse.candidate") ++candidates;
      if (e.cat == "dse.synth") ++synth_spans;
      if (e.name == "dse.cache_hits") last_hits = e.value;
      if (e.name == "dse.cache_misses") last_misses = e.value;
    }
    // One candidate event per cache resolution, one synth span per schedule
    // actually run — the invariant the acceptance criterion names.
    EXPECT_EQ(candidates, r.cache_hits + r.cache_misses)
        << "threads=" << threads;
    EXPECT_EQ(synth_spans, r.cache_misses) << "threads=" << threads;
    EXPECT_EQ(last_hits, static_cast<double>(r.cache_hits));
    EXPECT_EQ(last_misses, static_cast<double>(r.cache_misses));
  }
}

TEST_F(trace_smoke, WorkerSynthSpansLandOnWorkerTids) {
  const DseResult r = explore_decoder(4);
  const auto events = obs::TraceSession::instance().snapshot();
  // The calling thread registered first (it opened the "explore" span), so
  // pooled synthesis spans must carry other tids.
  std::uint32_t caller_tid = 0;
  for (const auto& e : events)
    if (e.name == "explore" && e.cat == "dse") caller_tid = e.tid;
  ASSERT_NE(caller_tid, 0u);
  std::size_t synth_spans = 0, off_caller = 0;
  for (const auto& e : events)
    if (e.cat == "dse.synth") {
      ++synth_spans;
      if (e.tid != caller_tid) ++off_caller;
    }
  EXPECT_EQ(synth_spans, r.cache_misses);
  EXPECT_EQ(off_caller, synth_spans) << "synth ran on the calling thread";
}

TEST_F(trace_smoke, ChromeTraceArtifactIsPerfettoLoadable) {
  const DseResult r = explore_decoder(2);
  const std::string path = ::testing::TempDir() + "trace_smoke_chrome.json";
  ASSERT_TRUE(obs::TraceSession::instance().write_chrome_trace(path));

  obs::Json doc;
  std::string err;
  ASSERT_TRUE(obs::Json::parse(read_file(path), &doc, &err)) << err;
  std::remove(path.c_str());

  const obs::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->size(), 0u);

  std::size_t candidates = 0, synth_spans = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const obs::Json& e = events->at(i);
    // Minimum record shape Perfetto/about:tracing requires.
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") continue;
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    const obs::Json* cat = e.find("cat");
    if (ph == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
    }
    if (ph == "i" && cat && cat->as_string() == "dse.candidate") ++candidates;
    if (ph == "X" && cat && cat->as_string() == "dse.synth") ++synth_spans;
  }
  // The exported artifact carries the same totals as the live session.
  EXPECT_EQ(candidates, r.cache_hits + r.cache_misses);
  EXPECT_EQ(synth_spans, r.cache_misses);
}

TEST_F(trace_smoke, DseRunReportMatchesResult) {
  const std::string path = ::testing::TempDir() + "trace_smoke_dse_run.json";
  const DseResult r = explore_decoder(2, path);

  obs::Json doc;
  std::string err;
  ASSERT_TRUE(obs::Json::parse(read_file(path), &doc, &err)) << err;
  std::remove(path.c_str());

  EXPECT_EQ(doc.find("tool")->as_string(), "hlsw.dse");
  EXPECT_EQ(doc.find("schema_version")->as_int(), 2);
  EXPECT_EQ(doc.find("threads")->as_int(), 2);
  EXPECT_GT(doc.find("wall_ms")->as_double(), 0.0);
  EXPECT_EQ(doc.find("cache_hits")->as_int(),
            static_cast<long long>(r.cache_hits));
  EXPECT_EQ(doc.find("cache_misses")->as_int(),
            static_cast<long long>(r.cache_misses));
  EXPECT_EQ(doc.find("seed")->as_string().substr(0, 2), "0x");

  const obs::Json* points = doc.find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->size(), r.points.size());
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const obs::Json& p = points->at(i);
    EXPECT_EQ(p.find("name")->as_string(), r.points[i].name);
    EXPECT_EQ(p.find("latency_cycles")->as_int(), r.points[i].latency_cycles);
    EXPECT_EQ(p.find("area")->as_double(), r.points[i].area);
    EXPECT_EQ(p.find("pareto")->as_bool(), r.points[i].pareto);
  }

  const obs::Json* front = doc.find("pareto_front");
  ASSERT_NE(front, nullptr);
  const auto expect_front = r.pareto_front();
  ASSERT_EQ(front->size(), expect_front.size());
  for (std::size_t i = 0; i < expect_front.size(); ++i)
    EXPECT_EQ(front->at(i).as_string(), expect_front[i]->name);
}

TEST_F(trace_smoke, DisabledTracingRecordsNoDseEvents) {
  obs::set_enabled(false);
  const DseResult r = explore_decoder(2);
  ASSERT_FALSE(r.points.empty());
  EXPECT_EQ(obs::TraceSession::instance().event_count(), 0u);
}

}  // namespace
}  // namespace hlsw::hls
