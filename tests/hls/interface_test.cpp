// Tests for interface synthesis (paper section 2.1) and automatic loop
// merging ("default architectural constraints: loop merging enabled").
#include <gtest/gtest.h>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"

namespace hlsw::hls {
namespace {

using qam::build_qam_decoder_ir;

TEST(AutoMerge, DerivesThePaperDefaultGroups) {
  // With auto_merge, the engine must find exactly the groups the paper
  // reports Catapult chose: {ffe, dfe} and {ffe_adapt, dfe_adapt,
  // ffe_shift, dfe_shift} — producing the same 35-cycle schedule.
  Directives dir;
  dir.auto_merge = true;
  const auto r = run_synthesis(build_qam_decoder_ir(), dir,
                               TechLibrary::asic90());
  EXPECT_EQ(r.latency_cycles(), 35);
  ASSERT_EQ(r.transformed.regions.size(), 4u);
  const Loop& l1 = r.transformed.regions[1].loop;
  ASSERT_EQ(l1.merged_labels.size(), 2u);
  EXPECT_EQ(l1.merged_labels[0], "ffe");
  EXPECT_EQ(l1.merged_labels[1], "dfe");
  const Loop& l2 = r.transformed.regions[3].loop;
  ASSERT_EQ(l2.merged_labels.size(), 4u);
  EXPECT_EQ(l2.merged_labels[0], "ffe_adapt");
  EXPECT_EQ(l2.merged_labels[3], "dfe_shift");
}

TEST(AutoMerge, ExplicitGroupsTakePrecedence) {
  Directives dir;
  dir.auto_merge = true;
  dir.merge_groups = {{"ffe", "dfe"}};  // only the filter loops
  const auto r = run_synthesis(build_qam_decoder_ir(), dir,
                               TechLibrary::asic90());
  // 1 + 16 + 2 + 8 + 16 + 3 + 15 = 61.
  EXPECT_EQ(r.latency_cycles(), 61);
}

TEST(AutoMerge, MatchesExplicitTable1Row) {
  Directives autod;
  autod.auto_merge = true;
  const auto ra = run_synthesis(build_qam_decoder_ir(), autod,
                                TechLibrary::asic90());
  const auto re = run_synthesis(build_qam_decoder_ir(),
                                qam::table1_architectures()[0].dir,
                                TechLibrary::asic90());
  EXPECT_EQ(ra.latency_cycles(), re.latency_cycles());
  EXPECT_DOUBLE_EQ(ra.area.total, re.area.total);
}

// -- Interface synthesis ---------------------------------------------------------

TEST(Interface, RegisteredPortAddsRegisterArea) {
  Directives plain;
  Directives reg;
  reg.interfaces["x_in"] = InterfaceKind::kRegistered;
  const auto f = build_qam_decoder_ir();
  const auto rp = run_synthesis(f, plain, TechLibrary::asic90());
  const auto rr = run_synthesis(f, reg, TechLibrary::asic90());
  EXPECT_EQ(rp.latency_cycles(), rr.latency_cycles());
  EXPECT_GT(rr.area.reg, rp.area.reg);
  EXPECT_EQ(rr.bind.io_reg_bits, 2 * 2 * 10) << "2 complex 10-bit samples";
}

TEST(Interface, HandshakePortAddsControlWires) {
  Directives hs;
  hs.interfaces["data"] = InterfaceKind::kHandshake;
  const auto f = build_qam_decoder_ir();
  const auto r = run_synthesis(f, hs, TechLibrary::asic90());
  const auto base = run_synthesis(f, Directives{}, TechLibrary::asic90());
  EXPECT_EQ(r.bind.io_bits, base.bind.io_bits + 2);
  EXPECT_EQ(r.bind.io_reg_bits, 6);
}

TEST(Interface, StreamedArrayPortSerializesTransfers) {
  // Streaming the x_in array (2 elements): one element-wide lane instead of
  // both samples in parallel, at the cost of 2 transfer cycles.
  Directives stream;
  stream.interfaces["x_in"] = InterfaceKind::kStream;
  const auto f = build_qam_decoder_ir();
  const auto rs = run_synthesis(f, stream, TechLibrary::asic90());
  const auto rb = run_synthesis(f, Directives{}, TechLibrary::asic90());
  EXPECT_EQ(rs.latency_cycles(), rb.latency_cycles() + 2);
  EXPECT_LT(rs.bind.io_bits, rb.bind.io_bits)
      << "one lane is narrower than the full array";
  bool note = false;
  for (const auto& w : rs.warnings)
    if (w.find("streamed port") != std::string::npos) note = true;
  EXPECT_TRUE(note);
}

TEST(Interface, GlobalHandshakeAddsIdleState) {
  Directives hs;
  hs.handshake = true;
  const auto f = build_qam_decoder_ir();
  const auto r = run_synthesis(f, hs, TechLibrary::asic90());
  const auto base = run_synthesis(f, Directives{}, TechLibrary::asic90());
  EXPECT_EQ(r.bind.fsm_states, base.bind.fsm_states + 1);
  EXPECT_GT(r.area.fsm, base.area.fsm);
}

}  // namespace
}  // namespace hlsw::hls
