// Differential soundness oracle for the static feasibility analysis
// (hls/feasibility.h). The analysis makes three kinds of claims and every
// one is checked here against the scheduler itself — the ground truth it
// is supposed to predict without running:
//
//  - kInfeasible("redirect"): the candidate synthesizes *identically* to
//    its clamped canonical form. We force-schedule both and require equal
//    latency and area, exactly — a single divergence is a false prune.
//  - bounds: min_latency_cycles / min_area are true lower bounds on the
//    scheduled metrics for every verdict kind.
//  - kBounded("dominated"): the resolved point named by dominated_by must
//    strictly dominate the candidate's *actual* scheduled metrics, not
//    just its bounds.
//
// The oracle runs over thirteen architectures — the ten from
// qam::exploration_architectures() plus three built here to force the
// bandwidth and recurrence floors — each perturbed by a deterministic
// randomized directive mutator that deliberately produces degenerate
// spellings (over-unrolling, sub-floor IIs, unknown labels, port
// starvation, conflicting merge groups).
//
// The second half checks the end-to-end guarantee explore() relies on:
// pruning never changes the Pareto front, only the amount of scheduler
// work — prune-on and prune-off sweeps of the same space produce the same
// front, name for name, and every prune-on row exists in the prune-off
// sweep with identical metrics.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "hls/dse.h"
#include "hls/feasibility.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"

namespace hlsw::hls {
namespace {

// The ten stock exploration architectures plus three that exercise the II
// floors: memory-port oversubscription, a multiplier cap, and a clock too
// tight for the adaptation recurrence to close in one cycle.
std::vector<qam::Architecture> oracle_architectures() {
  std::vector<qam::Architecture> out = qam::exploration_architectures();
  {
    qam::Architecture a;
    a.name = "mem+pipe+U4";
    a.description = "SRAM coefficients, unrolled and pipelined at II=1 "
                    "(oversubscribes the single read port)";
    a.dir.clock_period_ns = 10.0;
    a.dir.arrays["ffe_c"].mapping = ArrayMapping::kMemory;
    a.dir.arrays["dfe_c"].mapping = ArrayMapping::kMemory;
    a.dir.loops["ffe"].unroll = 4;
    a.dir.loops["ffe"].pipeline_ii = 1;
    a.dir.loops["dfe"].unroll = 4;
    a.dir.loops["dfe"].pipeline_ii = 1;
    out.push_back(std::move(a));
  }
  {
    qam::Architecture a;
    a.name = "mul2+pipe+U4";
    a.description = "two real multipliers, unrolled MACs pipelined at II=1";
    a.dir.clock_period_ns = 10.0;
    a.dir.max_real_multipliers = 2;
    a.dir.loops["ffe"].unroll = 4;
    a.dir.loops["ffe"].pipeline_ii = 1;
    a.dir.loops["dfe"].unroll = 4;
    a.dir.loops["dfe"].pipeline_ii = 1;
    out.push_back(std::move(a));
  }
  {
    qam::Architecture a;
    a.name = "macpipe@3ns+U4";
    a.description = "300+ MHz clock, unrolled MACs pipelined at II=1: the "
                    "accumulator chain spans cycles, so the request sits "
                    "below the recurrence floor";
    a.dir.clock_period_ns = 3.0;
    a.dir.loops["ffe"].unroll = 4;
    a.dir.loops["ffe"].pipeline_ii = 1;
    a.dir.loops["dfe"].unroll = 4;
    a.dir.loops["dfe"].pipeline_ii = 1;
    out.push_back(std::move(a));
  }
  return out;
}

const std::vector<std::string>& qam_loop_labels() {
  static const std::vector<std::string> labels = {
      "ffe", "dfe", "ffe_adapt", "dfe_adapt", "ffe_shift", "dfe_shift"};
  return labels;
}

// Applies one random degenerate (or merely aggressive) mutation to `dir`.
void mutate(Directives& dir, std::mt19937& rng) {
  const auto pick_label = [&]() -> const std::string& {
    const auto& l = qam_loop_labels();
    return l[rng() % l.size()];
  };
  switch (rng() % 8) {
    case 0: {  // over- or oddly-unroll a loop (trips are 3..16)
      static const int factors[] = {0, 3, 5, 7, 16, 17, 100};
      dir.loops[pick_label()].unroll = factors[rng() % 7];
      break;
    }
    case 1: {  // request an II, possibly below a floor or negative
      static const int iis[] = {-2, 1, 1, 2, 5};
      dir.loops[pick_label()].pipeline_ii = iis[rng() % 5];
      break;
    }
    case 2:  // directive for a loop the design does not have
      dir.loops["no_such_loop"].unroll = 4;
      break;
    case 3:  // directive for an array the design does not have
      dir.arrays["no_such_array"].mapping = ArrayMapping::kMemory;
      break;
    case 4: {  // starve or bless a memory's ports
      dir.arrays["ffe_c"].mapping = ArrayMapping::kMemory;
      dir.arrays["ffe_c"].mem_read_ports = static_cast<int>(rng() % 3) - 1;
      break;
    }
    case 5:  // non-consecutive merge group: a conflict the sim rejects
      dir.merge_groups.push_back({"ffe", "dfe_adapt"});
      break;
    case 6:
      dir.auto_merge = !dir.auto_merge;
      break;
    default:  // pipeline a loop that merging will fold away
      dir.merge_groups = qam::default_merge_groups();
      dir.loops["dfe"].pipeline_ii = 1 + static_cast<int>(rng() % 2);
      break;
  }
}

TEST(Feasibility, DifferentialOracleOverThirteenArchitectures) {
  const Function f = qam::build_qam_decoder_ir();
  const TechLibrary tech = TechLibrary::asic90();
  const auto archs = oracle_architectures();
  ASSERT_EQ(archs.size(), 13u);

  std::vector<ResolvedPoint> resolved;
  std::size_t infeasible_seen = 0;
  std::size_t bandwidth_seen = 0, recurrence_seen = 0;

  for (std::size_t ai = 0; ai < archs.size(); ++ai) {
    std::mt19937 rng(0xfea51b1eu + static_cast<std::uint32_t>(ai));
    for (int sample = 0; sample < 6; ++sample) {
      Directives dir = archs[ai].dir;
      // Sample 0 is the architecture itself; later samples stack 1..3
      // random mutations on top of it.
      for (int m = 0; m < sample % 4; ++m) mutate(dir, rng);
      SCOPED_TRACE(archs[ai].name + " sample " + std::to_string(sample));

      const FeasibilityVerdict v = check_feasibility(f, dir, tech, resolved);
      const SynthesisResult actual = run_synthesis(f, dir, tech);

      // Claim 1: bounds are true lower bounds, whatever the verdict.
      EXPECT_LE(v.bounds.min_latency_cycles, actual.latency_cycles());
      EXPECT_LE(v.bounds.min_area, actual.area.total + 1e-9);

      if (v.status == FeasibilityStatus::kInfeasible) {
        ++infeasible_seen;
        if (v.kind == InfeasibleKind::kIiBelowBandwidth) ++bandwidth_seen;
        if (v.kind == InfeasibleKind::kIiBelowRecurrence) ++recurrence_seen;
        EXPECT_NE(v.kind, InfeasibleKind::kNone);
        EXPECT_FALSE(v.reason.empty());
        // Claim 2: the clamped form is metrics-identical — scheduling the
        // original buys nothing. Any divergence here is a false prune.
        const SynthesisResult clamped = run_synthesis(f, v.clamped, tech);
        EXPECT_EQ(actual.latency_cycles(), clamped.latency_cycles());
        EXPECT_DOUBLE_EQ(actual.area.total, clamped.area.total);
        // The clamped form is a fixpoint of the analysis.
        const FeasibilityVerdict again = check_feasibility(f, v.clamped, tech);
        EXPECT_NE(again.status, FeasibilityStatus::kInfeasible)
            << "clamping must converge in one step, got: " << again.reason;
        EXPECT_EQ(again.bounds.min_latency_cycles,
                  v.bounds.min_latency_cycles);
        EXPECT_DOUBLE_EQ(again.bounds.min_area, v.bounds.min_area);
      } else {
        EXPECT_EQ(v.kind, InfeasibleKind::kNone);
        EXPECT_TRUE(v.reason.empty());
      }

      if (v.status == FeasibilityStatus::kBounded) {
        // Claim 3: the cited point strictly dominates the *scheduled*
        // metrics, so skipping this candidate cannot lose a front member.
        ASSERT_GE(v.dominated_by, 0);
        ASSERT_LT(static_cast<std::size_t>(v.dominated_by), resolved.size());
        const ResolvedPoint& q = resolved[v.dominated_by];
        EXPECT_LE(q.latency_cycles, actual.latency_cycles());
        EXPECT_LE(q.area, actual.area.total + 1e-9);
        EXPECT_TRUE(q.latency_cycles < actual.latency_cycles() ||
                    q.area < actual.area.total)
            << "dominated verdict without strict improvement";
      }

      resolved.push_back({actual.latency_cycles(), actual.area.total});
    }
  }

  // The sweep must actually exercise the analysis: redirects of both II
  // floors. (The three extra architectures exist precisely to force
  // them.) Domination verdicts cannot occur organically on this design
  // space — every fast QAM configuration is also big — and are covered by
  // the crafted-resolved-set test below.
  EXPECT_GT(infeasible_seen, 0u);
  EXPECT_GT(bandwidth_seen, 0u);
  EXPECT_GT(recurrence_seen, 0u);
}

// Domination verdicts, exercised with resolved sets crafted from each
// architecture's own bounds: a point one area unit inside the candidate's
// lower-bound box forces kBounded, and claim 3 — the cited point strictly
// dominates the *actual* scheduled metrics — must then hold, because the
// bounds are true lower bounds. Points outside the box must never trigger
// a skip.
TEST(Feasibility, DominatedVerdictCitesATrulyDominatingPoint) {
  const Function f = qam::build_qam_decoder_ir();
  const TechLibrary tech = TechLibrary::asic90();

  for (const auto& arch : oracle_architectures()) {
    SCOPED_TRACE(arch.name);
    const FeasibilityVerdict base = check_feasibility(f, arch.dir, tech);
    if (base.status == FeasibilityStatus::kInfeasible) continue;

    const SynthesisResult actual = run_synthesis(f, arch.dir, tech);
    const ResolvedPoint inside{base.bounds.min_latency_cycles,
                               base.bounds.min_area - 1.0};
    const ResolvedPoint outside{base.bounds.min_latency_cycles + 1,
                                base.bounds.min_area + 1.0};

    const FeasibilityVerdict hit =
        check_feasibility(f, arch.dir, tech, {outside, inside});
    ASSERT_EQ(hit.status, FeasibilityStatus::kBounded);
    EXPECT_EQ(hit.dominated_by, 1) << "must cite the dominating point";
    // The cited point beats what the scheduler would actually produce:
    // skipping this candidate loses nothing.
    EXPECT_LE(inside.latency_cycles, actual.latency_cycles());
    EXPECT_LT(inside.area, actual.area.total);

    const FeasibilityVerdict miss =
        check_feasibility(f, arch.dir, tech, {outside});
    EXPECT_EQ(miss.status, FeasibilityStatus::kFeasible)
        << "a point outside the bound box must never cause a skip";
  }
}

TEST(Feasibility, VerdictTaxonomy) {
  const Function f = qam::build_qam_decoder_ir();
  const TechLibrary tech = TechLibrary::asic90();

  {  // unroll beyond the trip count clamps to the trip count
    Directives d;
    d.loops["ffe"].unroll = 100;  // trip is 8
    const auto v = check_feasibility(f, d, tech);
    EXPECT_EQ(v.status, FeasibilityStatus::kInfeasible);
    EXPECT_EQ(v.kind, InfeasibleKind::kUnrollOverTrip);
    EXPECT_EQ(v.clamped.loop_directive("ffe").unroll, 8);
  }
  {  // directives naming unknown loops are key-visible noise: redirected
    Directives d;
    d.loops["no_such_loop"].unroll = 2;
    const auto v = check_feasibility(f, d, tech);
    EXPECT_EQ(v.status, FeasibilityStatus::kInfeasible);
    EXPECT_EQ(v.kind, InfeasibleKind::kMergeConflict);
    EXPECT_EQ(v.clamped.loops.count("no_such_loop"), 0u);
  }
  {  // zero memory ports is degenerate (the scheduler clamps to 1)
    Directives d;
    d.arrays["ffe_c"].mapping = ArrayMapping::kMemory;
    d.arrays["ffe_c"].mem_read_ports = 0;
    const auto v = check_feasibility(f, d, tech);
    EXPECT_EQ(v.status, FeasibilityStatus::kInfeasible);
    EXPECT_EQ(v.kind, InfeasibleKind::kDegenerateDirective);
    EXPECT_EQ(v.clamped.arrays.at("ffe_c").mem_read_ports, 1);
  }
  {  // II=1 with four reads through one SRAM port: bandwidth floor
    Directives d;
    d.arrays["ffe_c"].mapping = ArrayMapping::kMemory;
    d.loops["ffe"].unroll = 4;
    d.loops["ffe"].pipeline_ii = 1;
    const auto v = check_feasibility(f, d, tech);
    EXPECT_EQ(v.status, FeasibilityStatus::kInfeasible);
    EXPECT_EQ(v.kind, InfeasibleKind::kIiBelowBandwidth);
    EXPECT_GT(v.clamped.loop_directive("ffe").pipeline_ii, 1);
  }
  {  // a feasible verdict carries usable bounds and an unchanged spelling
    Directives d;
    d.loops["ffe"].unroll = 2;
    const auto v = check_feasibility(f, d, tech);
    EXPECT_EQ(v.status, FeasibilityStatus::kFeasible);
    EXPECT_GT(v.bounds.min_latency_cycles, 0);
    EXPECT_GT(v.bounds.min_area, 0.0);
    EXPECT_EQ(v.clamped.loop_directive("ffe").unroll, 2);
  }
  // to_string covers every kind with a stable spelling (the dse_run.json
  // "pruned" records depend on these).
  EXPECT_STREQ(to_string(InfeasibleKind::kNone), "none");
  EXPECT_STREQ(to_string(InfeasibleKind::kUnrollOverTrip), "unroll_over_trip");
  EXPECT_STREQ(to_string(InfeasibleKind::kMergeConflict), "merge_conflict");
  EXPECT_STREQ(to_string(InfeasibleKind::kDegenerateDirective),
               "degenerate_directive");
  EXPECT_STREQ(to_string(InfeasibleKind::kIiBelowRecurrence),
               "ii_below_recurrence");
  EXPECT_STREQ(to_string(InfeasibleKind::kIiBelowBandwidth),
               "ii_below_bandwidth");
}

// Pruning is a pure work-saver: the front must be identical name-for-name
// with pruning on and off, and every row the pruned sweep produced must
// exist in the unpruned sweep with the same metrics. A tight clock makes
// the II axis hit recurrence floors, so the redirect path is live here.
TEST(Feasibility, ExploreFrontIsIdenticalWithPruningOnAndOff) {
  const Function f = qam::build_qam_decoder_ir();
  const TechLibrary tech = TechLibrary::asic90();
  DseOptions base;
  base.clock_period_ns = 3.0;
  base.unroll_factors = {1, 2, 4};
  base.threads = 2;
  base.max_configs = 1 << 20;  // non-binding: both sweeps run to completion

  DseOptions on = base;
  on.prune = true;
  DseOptions off = base;
  off.prune = false;

  const DseResult r_on = explore(f, on, tech);
  const DseResult r_off = explore(f, off, tech);

  // Prune-off does no feasibility work at all.
  EXPECT_EQ(r_off.pruned_infeasible, 0u);
  EXPECT_EQ(r_off.pruned_dominated, 0u);
  EXPECT_TRUE(r_off.pruned.empty());

  // Counter bookkeeping on the pruned run.
  EXPECT_EQ(r_on.scheduled, r_on.points.size());
  EXPECT_EQ(r_on.pruned.size(),
            r_on.pruned_infeasible + r_on.pruned_dominated);
  EXPECT_GT(r_on.pruned_infeasible, 0u)
      << "a 3ns sweep with the II axis must hit recurrence floors";

  // Every pruned-sweep row appears in the unpruned sweep, same metrics.
  std::map<std::string, const DsePoint*> off_rows;
  for (const auto& p : r_off.points) off_rows.emplace(p.name, &p);
  for (const auto& p : r_on.points) {
    const auto it = off_rows.find(p.name);
    ASSERT_NE(it, off_rows.end()) << "row missing unpruned: " << p.name;
    EXPECT_EQ(p.latency_cycles, it->second->latency_cycles) << p.name;
    EXPECT_DOUBLE_EQ(p.area, it->second->area) << p.name;
  }

  // The headline guarantee: identical Pareto fronts, in order.
  const auto front_on = r_on.pareto_front();
  const auto front_off = r_off.pareto_front();
  ASSERT_EQ(front_on.size(), front_off.size());
  for (std::size_t i = 0; i < front_on.size(); ++i) {
    EXPECT_EQ(front_on[i]->name, front_off[i]->name);
    EXPECT_EQ(front_on[i]->latency_cycles, front_off[i]->latency_cycles);
    EXPECT_DOUBLE_EQ(front_on[i]->area, front_off[i]->area);
  }

  // And pruning saved scheduler work (or at worst matched it).
  EXPECT_LE(r_on.cache_misses, r_off.cache_misses);
}

TEST(Feasibility, DseOptionsValidationRejectsDegenerateSweeps) {
  const Function f = qam::build_qam_decoder_ir();
  const TechLibrary tech = TechLibrary::asic90();
  const auto expect_throws = [&](void (*tweak)(DseOptions&)) {
    DseOptions o;
    o.threads = 1;
    tweak(o);
    EXPECT_THROW(explore(f, o, tech), std::invalid_argument);
  };
  expect_throws([](DseOptions& o) { o.max_configs = 0; });
  expect_throws([](DseOptions& o) { o.max_configs = -7; });
  expect_throws([](DseOptions& o) { o.clock_period_ns = 0.0; });
  expect_throws([](DseOptions& o) { o.unroll_factors = {}; });
  expect_throws([](DseOptions& o) { o.unroll_factors = {1, 0}; });
  expect_throws([](DseOptions& o) { o.unroll_factors = {2, 4, 2}; });
  expect_throws([](DseOptions& o) { o.pipeline_iis = {}; });
  expect_throws([](DseOptions& o) { o.pipeline_iis = {0, -1}; });
  expect_throws([](DseOptions& o) { o.pipeline_iis = {0, 1, 1}; });
  expect_throws([](DseOptions& o) {
    o.try_merge = false;
    o.try_no_merge = false;
  });

  // The messages say what is wrong, not just that something is.
  DseOptions bad;
  bad.max_configs = -3;
  try {
    explore(f, bad, tech);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max_configs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

}  // namespace
}  // namespace hlsw::hls
