// Property-style tests for the DseResult views over randomized point
// clouds: mark_pareto() must flag exactly the non-dominated set,
// pareto_front() must be sorted and complete, fastest()/smallest() must be
// true extremes, and smallest_within() must respect its latency bound and
// return nullptr when the bound is infeasible.
#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "hls/dse.h"

namespace hlsw::hls {
namespace {

bool dominates(const DsePoint& a, const DsePoint& b) {
  return a.latency_cycles <= b.latency_cycles && a.area <= b.area &&
         (a.latency_cycles < b.latency_cycles || a.area < b.area);
}

DseResult random_cloud(std::mt19937_64& rng, int n) {
  // Small ranges on purpose: collisions and exact ties must occur so the
  // tie-break paths are exercised.
  std::uniform_int_distribution<int> lat(1, 40);
  std::uniform_int_distribution<int> area(1, 30);
  DseResult r;
  r.seed = rng();
  for (int i = 0; i < n; ++i) {
    DsePoint p;
    p.name = "p" + std::to_string(i);
    p.latency_cycles = lat(rng);
    p.latency_ns = p.latency_cycles * 10.0;
    p.area = 100.0 * area(rng);
    r.points.push_back(std::move(p));
  }
  mark_pareto(r.points);
  return r;
}

TEST(ParetoProperty, FrontMembersAreUndominatedAndNonMembersAreDominated) {
  std::mt19937_64 rng(20260805);
  for (int iter = 0; iter < 60; ++iter) {
    const DseResult r = random_cloud(rng, 3 + iter);
    for (const auto& p : r.points) {
      bool dominated = false;
      for (const auto& q : r.points)
        if (&p != &q && dominates(q, p)) dominated = true;
      EXPECT_EQ(p.pareto, !dominated) << p.name << " iter " << iter;
    }
  }
}

TEST(ParetoProperty, FrontIsCompleteSortedAndDeterministic) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 40; ++iter) {
    const DseResult r = random_cloud(rng, 50);
    const auto front = r.pareto_front();
    std::size_t flagged = 0;
    for (const auto& p : r.points)
      if (p.pareto) ++flagged;
    EXPECT_EQ(front.size(), flagged) << "front must contain every flagged point";
    for (std::size_t i = 1; i < front.size(); ++i) {
      EXPECT_GE(front[i]->latency_cycles, front[i - 1]->latency_cycles);
      if (front[i]->latency_cycles == front[i - 1]->latency_cycles) {
        EXPECT_GE(front[i]->area, front[i - 1]->area);
      }
    }
    // Same seed, same order — calling twice is identical.
    const auto again = r.pareto_front();
    ASSERT_EQ(front.size(), again.size());
    for (std::size_t i = 0; i < front.size(); ++i)
      EXPECT_EQ(front[i], again[i]);
  }
}

TEST(ParetoProperty, FastestAndSmallestAreTrueExtremes) {
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 40; ++iter) {
    const DseResult r = random_cloud(rng, 30);
    const DsePoint* fastest = r.fastest();
    const DsePoint* smallest = r.smallest();
    ASSERT_NE(fastest, nullptr);
    ASSERT_NE(smallest, nullptr);
    for (const auto& p : r.points) {
      EXPECT_GE(p.latency_cycles, fastest->latency_cycles);
      if (p.latency_cycles == fastest->latency_cycles) {
        EXPECT_GE(p.area, fastest->area) << "fastest breaks ties on area";
      }
      EXPECT_GE(p.area, smallest->area);
    }
  }
}

TEST(ParetoProperty, SmallestWithinRespectsTheBound) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    const DseResult r = random_cloud(rng, 25);
    std::uniform_int_distribution<int> bound_dist(0, 45);
    const int bound = bound_dist(rng);
    const DsePoint* pick = r.smallest_within(bound);
    // Reference: linear scan.
    const DsePoint* expect = nullptr;
    for (const auto& p : r.points) {
      if (p.latency_cycles > bound) continue;
      if (!expect || p.area < expect->area) expect = &p;
    }
    if (!expect) {
      EXPECT_EQ(pick, nullptr) << "infeasible bound must return nullptr";
    } else {
      ASSERT_NE(pick, nullptr);
      EXPECT_LE(pick->latency_cycles, bound);
      EXPECT_EQ(pick->area, expect->area);
    }
  }
}

TEST(ParetoProperty, EmptyAndDegenerateClouds) {
  DseResult empty;
  EXPECT_TRUE(empty.pareto_front().empty());
  EXPECT_EQ(empty.fastest(), nullptr);
  EXPECT_EQ(empty.smallest(), nullptr);
  EXPECT_EQ(empty.smallest_within(std::numeric_limits<int>::max()), nullptr);

  // All-identical points: nobody dominates anybody, everyone is pareto.
  DseResult same;
  for (int i = 0; i < 5; ++i) {
    DsePoint p;
    p.name = "s" + std::to_string(i);
    p.latency_cycles = 10;
    p.area = 500.0;
    same.points.push_back(std::move(p));
  }
  mark_pareto(same.points);
  for (const auto& p : same.points) EXPECT_TRUE(p.pareto);
  EXPECT_EQ(same.pareto_front().size(), 5u);
  EXPECT_EQ(same.smallest_within(9), nullptr);
  ASSERT_NE(same.smallest_within(10), nullptr);
}

}  // namespace
}  // namespace hlsw::hls
