// Performance and coverage guard for feasibility pruning in explore()
// (labeled bench_smoke in ctest), on the redirect-heavy axes: a tight
// clock, unrolled MAC loops and a dense pipeline-II axis. The guard pins
// what pruning is contracted to deliver:
//
//   * the Pareto front is identical with pruning on and off;
//   * pruning never schedules MORE configurations (redirects collapse
//     below-floor II requests onto their clamped twins, domination skips
//     never cost a schedule);
//   * the full-width pruned sweep covers the whole space — strictly more
//     rows than the truncated 256-row sweep reaches;
//   * the candidate analysis is cheap: the pruned full-width sweep stays
//     within 2x the wall of the unpruned one (measured ~1.3x; the slack
//     absorbs CI noise while still catching the analysis regressing to
//     schedule-like cost — a real schedule per candidate would be >5x).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>

#include "hls/dse.h"
#include "hls/synth_cache.h"
#include "hls/tech.h"
#include "qam/decoder_ir.h"

namespace hlsw::hls {
namespace {

DseOptions axes(int max_configs, bool prune) {
  DseOptions o;
  o.clock_period_ns = 3.0;
  o.unroll_factors = {1, 2, 4, 8, 16};
  o.pipeline_iis = {0, 1, 2, 3};
  o.threads = 1;
  o.max_configs = max_configs;
  o.prune = prune;
  return o;
}

double best_of_3_ms(const Function& f, const TechLibrary& tech,
                    DseOptions opts, DseResult* out) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    opts.cache = std::make_shared<SynthesisCache>();  // cold every rep
    const auto t0 = std::chrono::steady_clock::now();
    *out = explore(f, opts, tech);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

void expect_same_front(const DseResult& a, const DseResult& b) {
  const auto fa = a.pareto_front();
  const auto fb = b.pareto_front();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i]->name, fb[i]->name);
    EXPECT_EQ(fa[i]->latency_cycles, fb[i]->latency_cycles);
    EXPECT_EQ(fa[i]->area, fb[i]->area);
  }
}

TEST(DsePruneGuard, PruningKeepsTheFrontCutsSchedulesAndStaysCheap) {
  const Function f = qam::build_qam_decoder_ir();
  const TechLibrary tech = TechLibrary::asic90();

  DseResult off256, on256, off1024, on1024;
  best_of_3_ms(f, tech, axes(256, false), &off256);
  best_of_3_ms(f, tech, axes(256, true), &on256);
  const double wall_off = best_of_3_ms(f, tech, axes(1024, false), &off1024);
  const double wall_on = best_of_3_ms(f, tech, axes(1024, true), &on1024);

  // Pruning is metrics-invisible: identical fronts at both widths.
  expect_same_front(off256, on256);
  expect_same_front(off1024, on1024);

  // These axes exercise the redirect path; the sweep must stay capped at
  // the narrow width and overflow it at the full width (the extra rows
  // are exactly what the unpruned 256-row sweep never reaches).
  EXPECT_EQ(off256.points.size(), 256u);
  EXPECT_GT(on1024.points.size(), 256u);
  EXPECT_GT(on1024.pruned_infeasible, 0u);

  // Redirects collapse schedules, never add them.
  EXPECT_LE(on256.cache_misses, off256.cache_misses);
  EXPECT_LE(on1024.cache_misses, off1024.cache_misses);
  EXPECT_LT(on256.cache_misses, 256u);  // at least one collapse happened

  // The candidate analysis must stay far below schedule cost.
  EXPECT_LE(wall_on, wall_off * 2.0)
      << "pruned full sweep " << wall_on << " ms vs unpruned " << wall_off
      << " ms";
}

}  // namespace
}  // namespace hlsw::hls
