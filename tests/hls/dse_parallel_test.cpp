// Parallel/serial equivalence of explore(): any thread count must return
// the same point set — names, latencies, areas, pareto flags, order — and
// the same memoization counters as the legacy serial path, on the paper's
// QAM decoder IR and on a synthetic multi-loop function. The progress
// callback must fire deterministically on the calling thread.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hls/builder.h"
#include "hls/dse.h"
#include "obs/trace.h"
#include "qam/decoder_ir.h"
#include "util/thread_pool.h"

namespace hlsw::hls {
namespace {

// A three-loop function with distinct trip counts so uniform sweep and
// per-loop refinement produce a rich, asymmetric space.
Function make_multi_loop() {
  FunctionBuilder fb("multi_loop");
  const int xin = fb.add_var("x_in", fx(10, 0), false, PortDir::kIn);
  const int x = fb.add_array("x", 16, fx(10, 0), true);
  const int c = fb.add_array("c", 16, fx(10, 0), true);
  const int acc = fb.add_var("acc", fx(28, 8), false, PortDir::kOut);
  {
    auto b0 = fb.block("in");
    b0.array_write(x, {0, 0}, b0.var_read(xin));
    b0.var_write(acc, b0.cnst(fx(28, 8), 0.0));
  }
  {
    auto mac = fb.loop("mac", 16);
    const int p = mac.mul(mac.array_read(x, {1, 0}), mac.array_read(c, {1, 0}));
    mac.var_write(acc, mac.add(mac.var_read(acc), p));
  }
  {
    auto adapt = fb.loop("adapt", 8);
    const int cv = adapt.array_read(c, {1, 0});
    adapt.array_write(c, {1, 0}, adapt.add(cv, adapt.cnst(fx(10, 0), 0.0)));
  }
  {
    auto sh = fb.loop("shift", 4);
    const int v = sh.array_read(x, {-1, 2});
    sh.array_write(x, {-1, 3}, v);
  }
  return fb.build();
}

void expect_identical(const DseResult& a, const DseResult& b,
                      const std::string& what,
                      bool same_cache_counters = true) {
  ASSERT_EQ(a.points.size(), b.points.size()) << what;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const DsePoint& p = a.points[i];
    const DsePoint& q = b.points[i];
    EXPECT_EQ(p.name, q.name) << what << " point " << i;
    EXPECT_EQ(p.latency_cycles, q.latency_cycles) << what << " " << p.name;
    EXPECT_EQ(p.latency_ns, q.latency_ns) << what << " " << p.name;
    EXPECT_EQ(p.area, q.area) << what << " " << p.name;
    EXPECT_EQ(p.pareto, q.pareto) << what << " " << p.name;
  }
  if (same_cache_counters) {
    EXPECT_EQ(a.cache_hits, b.cache_hits) << what;
    EXPECT_EQ(a.cache_misses, b.cache_misses) << what;
  }
  // Prune decisions happen during enumeration on the calling thread, so
  // the counters and the per-decision records are deterministic too.
  EXPECT_EQ(a.pruned_infeasible, b.pruned_infeasible) << what;
  EXPECT_EQ(a.pruned_dominated, b.pruned_dominated) << what;
  EXPECT_EQ(a.scheduled, b.scheduled) << what;
  ASSERT_EQ(a.pruned.size(), b.pruned.size()) << what;
  for (std::size_t i = 0; i < a.pruned.size(); ++i) {
    EXPECT_EQ(a.pruned[i].name, b.pruned[i].name) << what << " prune " << i;
    EXPECT_EQ(a.pruned[i].kind, b.pruned[i].kind) << what << " prune " << i;
    EXPECT_EQ(a.pruned[i].reason, b.pruned[i].reason) << what;
  }
  // Derived views agree as well (same order, same picks).
  const auto fa = a.pareto_front(), fb = b.pareto_front();
  ASSERT_EQ(fa.size(), fb.size()) << what;
  for (std::size_t i = 0; i < fa.size(); ++i)
    EXPECT_EQ(fa[i]->name, fb[i]->name) << what;
}

DseResult run_with_threads(const Function& f, unsigned threads) {
  DseOptions opts;
  opts.threads = threads;
  return explore(f, opts, TechLibrary::asic90());
}

TEST(DseParallel, QamDecoderIsBitIdenticalAcrossThreadCounts) {
  const Function ir = qam::build_qam_decoder_ir();
  const DseResult serial = run_with_threads(ir, 1);
  ASSERT_FALSE(serial.points.empty());
  expect_identical(serial, run_with_threads(ir, 2), "threads=2");
  expect_identical(serial, run_with_threads(ir, 8), "threads=8");
}

TEST(DseParallel, MultiLoopFunctionIsBitIdenticalAcrossThreadCounts) {
  const Function f = make_multi_loop();
  DseOptions opts;
  opts.unroll_factors = {1, 2, 4, 8};
  opts.threads = 1;
  const DseResult serial = explore(f, opts, TechLibrary::asic90());
  ASSERT_FALSE(serial.points.empty());
  opts.threads = 2;
  expect_identical(serial, explore(f, opts, TechLibrary::asic90()),
                   "threads=2");
  opts.threads = 8;
  expect_identical(serial, explore(f, opts, TechLibrary::asic90()),
                   "threads=8");
}

TEST(DseParallel, DefaultThreadsMatchesSerial) {
  const Function ir = qam::build_qam_decoder_ir();
  const DseResult serial = run_with_threads(ir, 1);
  expect_identical(serial, run_with_threads(ir, 0), "threads=default");
}

TEST(DseParallel, SharedPoolIsReusableAcrossCalls) {
  const Function ir = qam::build_qam_decoder_ir();
  const DseResult serial = run_with_threads(ir, 1);
  DseOptions opts;
  opts.threads = 4;
  opts.pool = std::make_shared<util::ThreadPool>(4);
  expect_identical(serial, explore(ir, opts, TechLibrary::asic90()),
                   "shared pool, call 1");
  expect_identical(serial, explore(ir, opts, TechLibrary::asic90()),
                   "shared pool, call 2");
}

TEST(DseParallel, ProgressFiresDeterministicallyOnCallerThread) {
  const Function ir = qam::build_qam_decoder_ir();
  struct Event {
    std::string name;
    std::size_t done;
    std::size_t planned;
  };
  auto run = [&](unsigned threads) {
    std::vector<Event> events;
    const auto caller = std::this_thread::get_id();
    bool off_thread = false;
    DseOptions opts;
    opts.threads = threads;
    opts.progress = [&](const DsePoint& p, const DseProgress& pr) {
      if (std::this_thread::get_id() != caller) off_thread = true;
      events.push_back({p.name, pr.done, pr.planned});
    };
    const DseResult r = explore(ir, opts, TechLibrary::asic90());
    EXPECT_FALSE(off_thread) << "progress ran on a worker thread";
    EXPECT_EQ(events.size(), r.points.size());
    return events;
  };
  const auto serial = run(1);
  const auto threaded = run(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].name, threaded[i].name);
    EXPECT_EQ(serial[i].done, threaded[i].done);
    EXPECT_EQ(serial[i].planned, threaded[i].planned);
  }
  // done is 1..N within each phase's planned horizon.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].done, i + 1);
    EXPECT_LE(serial[i].done, serial[i].planned);
  }
}

// With tracing enabled, the merged trace must account for every candidate
// the engine resolved: one "dse.candidate" event per resolution (scheduled
// candidates + cache hits) and one "dse.synth" span per schedule actually
// run — at any thread count.
TEST(DseParallel, TraceEventTotalsMatchCacheCountersAtAnyThreadCount) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const Function ir = qam::build_qam_decoder_ir();
  for (unsigned threads : {1u, 4u}) {
    obs::TraceSession::instance().clear();
    const DseResult r = run_with_threads(ir, threads);
    ASSERT_FALSE(r.points.empty());
    std::size_t candidates = 0, synth_spans = 0;
    for (const auto& e : obs::TraceSession::instance().snapshot()) {
      if (e.cat == "dse.candidate") ++candidates;
      if (e.cat == "dse.synth") ++synth_spans;
    }
    EXPECT_EQ(candidates, r.cache_hits + r.cache_misses)
        << "threads=" << threads;
    EXPECT_EQ(synth_spans, r.cache_misses) << "threads=" << threads;
  }
  obs::TraceSession::instance().clear();
  obs::set_enabled(was_enabled);
}

// With pruning live (a 3ns sweep hits recurrence floors, so candidates
// really are redirected), points, order and every prune counter must stay
// bit-identical across thread counts — on a cold cache and again on a
// warm one, where every row resolves as a hit but the prune decisions
// replay identically.
TEST(DseParallel, PruneCountersAreBitIdenticalAcrossThreadCountsAndWarmth) {
  const Function ir = qam::build_qam_decoder_ir();
  const auto tech = TechLibrary::asic90();
  const auto run = [&](unsigned threads,
                       std::shared_ptr<SynthesisCache> cache) {
    DseOptions opts;
    opts.clock_period_ns = 3.0;
    opts.unroll_factors = {1, 2, 4};
    opts.threads = threads;
    opts.cache = std::move(cache);
    return explore(ir, opts, tech);
  };

  const DseResult serial = run(1, nullptr);
  ASSERT_FALSE(serial.points.empty());
  EXPECT_GT(serial.pruned_infeasible, 0u)
      << "the 3ns II sweep must exercise the redirect path";
  EXPECT_EQ(serial.scheduled, serial.points.size());
  expect_identical(serial, run(2, nullptr), "cold threads=2");
  expect_identical(serial, run(8, nullptr), "cold threads=8");

  for (unsigned threads : {1u, 2u, 8u}) {
    auto cache = std::make_shared<SynthesisCache>();
    const DseResult cold = run(threads, cache);
    expect_identical(serial, cold,
                     "cold shared cache threads=" + std::to_string(threads));
    const DseResult warm = run(threads, cache);
    EXPECT_EQ(warm.cache_misses, 0u)
        << "warm threads=" << threads << ": nothing left to schedule";
    expect_identical(serial, warm, "warm threads=" + std::to_string(threads),
                     /*same_cache_counters=*/false);
  }
}

TEST(DseParallel, MaxConfigsRespectedAtAnyThreadCount) {
  const Function ir = qam::build_qam_decoder_ir();
  for (unsigned threads : {1u, 4u}) {
    DseOptions opts;
    opts.threads = threads;
    opts.max_configs = 3;
    const DseResult r = explore(ir, opts, TechLibrary::asic90());
    EXPECT_EQ(r.points.size(), 3u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace hlsw::hls
