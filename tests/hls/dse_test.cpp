// Tests for automated design-space exploration: the sweep must contain the
// paper's design points, the Pareto front must be consistent, and the
// "smallest design meeting the 20-cycle throughput goal" query must
// reproduce the paper's design decision (section 5: "the algorithm should
// take 20 or fewer cycles").
#include <gtest/gtest.h>

#include "hls/dse.h"
#include "qam/decoder_ir.h"

namespace hlsw::hls {
namespace {

using qam::build_qam_decoder_ir;

TEST(Dse, SweepCoversThePaperDesignPoints) {
  DseOptions opts;
  const DseResult r = explore(build_qam_decoder_ir(), opts,
                              TechLibrary::asic90());
  ASSERT_FALSE(r.points.empty());
  // The paper's 69- and 35-cycle points must appear.
  bool found69 = false, found35 = false;
  for (const auto& p : r.points) {
    if (p.latency_cycles == 69) found69 = true;
    if (p.latency_cycles == 35) found35 = true;
  }
  EXPECT_TRUE(found69) << "sequential baseline missing from the sweep";
  EXPECT_TRUE(found35) << "merged default missing from the sweep";
}

TEST(Dse, ParetoFrontIsConsistent) {
  const DseResult r = explore(build_qam_decoder_ir(), DseOptions{},
                              TechLibrary::asic90());
  const auto front = r.pareto_front();
  ASSERT_GE(front.size(), 2u);
  // Front must be strictly improving in latency and strictly degrading in
  // area when sorted by latency.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i]->latency_cycles, front[i - 1]->latency_cycles);
    EXPECT_LT(front[i]->area, front[i - 1]->area);
  }
  // No non-pareto point may dominate a pareto point.
  for (const auto& p : r.points) {
    if (p.pareto) continue;
    for (const auto* q : front) {
      const bool dominates = p.latency_cycles <= q->latency_cycles &&
                             p.area <= q->area &&
                             (p.latency_cycles < q->latency_cycles ||
                              p.area < q->area);
      EXPECT_FALSE(dominates) << p.name << " dominates " << q->name;
    }
  }
}

TEST(Dse, ReproducesThePaperDesignDecision) {
  // Paper section 5: the 5 MBaud target needs <= 20 cycles; the chosen
  // implementation is the merged+U2 19-cycle design. The DSE query must
  // return a design meeting the bound, cheaper than the fastest point.
  const DseResult r = explore(build_qam_decoder_ir(), DseOptions{},
                              TechLibrary::asic90());
  const DsePoint* pick = r.smallest_within(20);
  ASSERT_NE(pick, nullptr);
  EXPECT_LE(pick->latency_cycles, 20);
  const DsePoint* fastest = r.fastest();
  ASSERT_NE(fastest, nullptr);
  EXPECT_LE(fastest->latency_cycles, pick->latency_cycles);
  EXPECT_LE(pick->area, fastest->area)
      << "the throughput-constrained pick must not cost more than the "
         "fastest design";
}

TEST(Dse, FastestAndSmallestAreExtremes) {
  const DseResult r = explore(build_qam_decoder_ir(), DseOptions{},
                              TechLibrary::asic90());
  const DsePoint* fastest = r.fastest();
  const DsePoint* smallest = r.smallest();
  for (const auto& p : r.points) {
    EXPECT_GE(p.latency_cycles, fastest->latency_cycles);
    EXPECT_GE(p.area, smallest->area);
  }
}

TEST(Dse, RespectsConfigCap) {
  DseOptions opts;
  opts.max_configs = 3;
  const DseResult r = explore(build_qam_decoder_ir(), opts,
                              TechLibrary::asic90());
  EXPECT_LE(r.points.size(), 3u);
}

}  // namespace
}  // namespace hlsw::hls
