// Tests for the synthesis side of the HLS engine: unrolling and merging
// (semantics + legality analysis), scheduling rules (chaining, the
// array-commit cycle boundary, resource constraints, pipelining), binding
// and the bitwidth-reduction pass.
#include <gtest/gtest.h>

#include <random>

#include "fixpt/bitwidth.h"
#include "hls/bitwidth_pass.h"
#include "hls/builder.h"
#include "hls/interp.h"
#include "hls/report.h"

namespace hlsw::hls {
namespace {

using fixpt::Ovf;
using fixpt::Quant;

// A two-loop function: MAC over x/c, then a shift of x — a miniature of
// Figure 4's structure with the same dependence patterns.
Function make_mac_shift(int taps = 8) {
  FunctionBuilder fb("mac_shift");
  const int xin = fb.add_var("x_in", fx(10, 0), false, PortDir::kIn);
  const int x = fb.add_array("x", taps, fx(10, 0), true);
  const int c = fb.add_array("c", taps, fx(10, 0), true);
  const int acc = fb.add_var("acc", fx(26, 6), false, PortDir::kOut);
  {
    auto b0 = fb.block("in");
    b0.array_write(x, {0, 0}, b0.var_read(xin));
    b0.var_write(acc, b0.cnst(fx(26, 6), 0.0));
  }
  {
    auto mac = fb.loop("mac", taps);
    const int p = mac.mul(mac.array_read(x, {1, 0}), mac.array_read(c, {1, 0}));
    mac.var_write(acc, mac.add(mac.var_read(acc), p));
  }
  {
    // shift: for k = taps-2 .. 0 descending: x[k+1] = x[k].
    // Canonical ascending k' with source k = taps-2-k'.
    auto sh = fb.loop("shift", taps - 1);
    const int v = sh.array_read(x, {-1, taps - 2});
    sh.array_write(x, {-1, taps - 1}, v);
  }
  return fb.build();
}

PortIo mac_inputs(uint64_t seed) {
  std::mt19937_64 rng(seed);
  PortIo io;
  io.vars["x_in"] = FxValue{static_cast<int>(rng() % 1024) - 512, 0, 10, false};
  return io;
}

// Runs `n` invocations and returns the sequence of acc outputs.
std::vector<long long> run_sequence(const Function& f, int n) {
  Interpreter in(f);
  // Seed the coefficient array state once (statics persist).
  std::vector<long long> out;
  for (int i = 0; i < n; ++i) {
    const PortIo o = in.run(mac_inputs(100 + static_cast<uint64_t>(i)));
    out.push_back(static_cast<long long>(o.vars.at("acc").re));
  }
  return out;
}

// -- Unrolling -----------------------------------------------------------------

class UnrollFactor : public ::testing::TestWithParam<int> {};

TEST_P(UnrollFactor, PreservesSemanticsOnMacShift) {
  const int u = GetParam();
  Function base = make_mac_shift();
  Directives dir;
  dir.loops["mac"].unroll = u;
  dir.loops["shift"].unroll = u;
  TransformResult t = apply_transforms(base, dir);
  EXPECT_TRUE(t.warnings.empty());
  EXPECT_EQ(run_sequence(base, 12), run_sequence(t.func, 12))
      << "unroll=" << u;
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollFactor, ::testing::Values(2, 3, 4, 8));

TEST(Unroll, TripBecomesCeil) {
  Function f = make_mac_shift();  // shift has trip 7
  Directives dir;
  dir.loops["shift"].unroll = 2;
  TransformResult t = apply_transforms(f, dir);
  const Region* shift = t.func.find_loop("shift");
  ASSERT_NE(shift, nullptr);
  EXPECT_EQ(shift->loop.trip, 4);  // ceil(7/2)
  EXPECT_EQ(shift->loop.unroll_applied, 2);
  // The second copy of the last iteration must be guarded off.
  int guarded = 0;
  for (const Op& op : shift->loop.body.ops)
    if (op.guard_trip == 3) ++guarded;
  EXPECT_GT(guarded, 0);
}

// -- Merging --------------------------------------------------------------------

TEST(Merge, IndependentLoopsMergeWithoutWarnings) {
  // Two MAC loops over disjoint arrays.
  FunctionBuilder fb("two_macs");
  const int a = fb.add_array("a", 8, fx(10, 0), true);
  const int b_ = fb.add_array("b", 16, fx(10, 0), true);
  const int s1 = fb.add_var("s1", fx(26, 6), false, PortDir::kOut);
  const int s2 = fb.add_var("s2", fx(26, 6), false, PortDir::kOut);
  {
    auto l1 = fb.loop("l1", 8);
    l1.var_write(s1, l1.add(l1.var_read(s1), l1.array_read(a, {1, 0})));
  }
  {
    auto l2 = fb.loop("l2", 16);
    l2.var_write(s2, l2.add(l2.var_read(s2), l2.array_read(b_, {1, 0})));
  }
  Function f = fb.build();
  Directives dir;
  dir.merge_groups = {{"l1", "l2"}};
  TransformResult t = apply_transforms(f, dir);
  EXPECT_TRUE(t.warnings.empty());
  ASSERT_EQ(t.func.regions.size(), 1u);
  EXPECT_EQ(t.func.regions[0].loop.trip, 16);
  // Semantics unchanged.
  Interpreter i1(f), i2(t.func);
  PortIo empty;
  const PortIo o1 = i1.run(empty), o2 = i2.run(empty);
  EXPECT_EQ(o1.vars.at("s1"), o2.vars.at("s1"));
  EXPECT_EQ(o1.vars.at("s2"), o2.vars.at("s2"));
  // The shorter member must be guarded to its own trip.
  int guarded = 0;
  for (const Op& op : t.func.regions[0].loop.body.ops)
    if (op.guard_trip == 8) ++guarded;
  EXPECT_GT(guarded, 0);
}

TEST(Merge, ReportsHazardWhenOrderChanges) {
  // mac reads x[k]; shift writes x[k'] for later-read elements: merging
  // changes which values the tail of mac sees (the Figure 4 situation).
  Function f = make_mac_shift();
  Directives dir;
  dir.merge_groups = {{"mac", "shift"}};
  TransformResult t = apply_transforms(f, dir);
  ASSERT_FALSE(t.warnings.empty());
  EXPECT_NE(t.warnings[0].find("reorders accesses to array 'x'"),
            std::string::npos);
}

TEST(Merge, NonConsecutiveLoopsRejected) {
  Function f = make_mac_shift();
  // Insert "in" block between by merging mac with a loop that is not
  // adjacent: build a function with block between two loops.
  FunctionBuilder fb("gap");
  fb.add_array("a", 4, fx(8, 0), true);
  { auto l1 = fb.loop("l1", 4); (void)l1; }
  { auto blk = fb.block("between"); (void)blk; }
  { auto l2 = fb.loop("l2", 4); (void)l2; }
  Function g = fb.build();
  std::vector<std::string> warnings;
  merge_loops(&g, {"l1", "l2"}, &warnings);
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("not consecutive"), std::string::npos);
  EXPECT_EQ(g.regions.size(), 3u) << "merge must be skipped";
}

// -- Scheduling -------------------------------------------------------------------

TEST(Schedule, SingleCycleLoopBodyGivesTripCycles) {
  Function f = make_mac_shift();
  Directives dir;  // 10 ns clock
  const TechLibrary tech = TechLibrary::asic90();
  Schedule s = schedule_function(f, dir, tech);
  // mac body: read, read, mul, read-acc, add, write => chains in one cycle.
  ASSERT_EQ(s.regions.size(), 3u);
  EXPECT_EQ(s.regions[1].body.cycles, 1);
  EXPECT_EQ(s.regions[1].total_cycles, 8);
  EXPECT_EQ(s.regions[2].body.cycles, 1);
  EXPECT_EQ(s.regions[2].total_cycles, 7);
}

TEST(Schedule, ArrayWriteThenReadCrossesCycle) {
  FunctionBuilder fb("war");
  const int a = fb.add_array("a", 4, fx(8, 0), true);
  const int out = fb.add_var("o", fx(8, 0), false, PortDir::kOut);
  auto blk = fb.block("b");
  blk.array_write(a, {0, 2}, blk.cnst(fx(8, 0), 0.25));
  blk.var_write(out, blk.array_read(a, {0, 2}));
  Function f = fb.build();
  Schedule s = schedule_function(f, Directives{}, TechLibrary::asic90());
  EXPECT_EQ(s.regions[0].body.cycles, 2)
      << "register commit forces the read into the next cycle";
}

TEST(Schedule, VarWriteForwardsSameCycle) {
  FunctionBuilder fb("fwd");
  const int v = fb.add_var("v", fx(8, 0));
  const int out = fb.add_var("o", fx(8, 0), false, PortDir::kOut);
  auto blk = fb.block("b");
  blk.var_write(v, blk.cnst(fx(8, 0), 0.25));
  blk.var_write(out, blk.var_read(v));
  Function f = fb.build();
  Schedule s = schedule_function(f, Directives{}, TechLibrary::asic90());
  EXPECT_EQ(s.regions[0].body.cycles, 1) << "scalar values forward as wires";
}

TEST(Schedule, ChainingSplitsWhenClockTightens) {
  Function f = make_mac_shift();
  Directives fast;
  fast.clock_period_ns = 3.0;  // mul alone ~2.5 ns: mul + add cannot chain
  Schedule s = schedule_function(f, fast, TechLibrary::asic90());
  EXPECT_GE(s.regions[1].body.cycles, 2)
      << "MAC must split across cycles at a 3 ns clock";
  Directives slow;
  slow.clock_period_ns = 20.0;
  Schedule s2 = schedule_function(f, slow, TechLibrary::asic90());
  EXPECT_EQ(s2.regions[1].body.cycles, 1);
}

TEST(Schedule, MultiplierCapSerializes) {
  // Two independent multiplies in one block: with a cap of 1 real
  // multiplier they must occupy different cycles.
  FunctionBuilder fb("mulcap");
  const int a = fb.add_var("a", fx(10, 0), false, PortDir::kIn);
  const int o1 = fb.add_var("o1", fx(20, 0), false, PortDir::kOut);
  const int o2 = fb.add_var("o2", fx(20, 0), false, PortDir::kOut);
  auto blk = fb.block("b");
  const int av = blk.var_read(a);
  blk.var_write(o1, blk.mul(av, av));
  blk.var_write(o2, blk.mul(av, av));
  Function f = fb.build();
  Directives unlimited;
  EXPECT_EQ(schedule_function(f, unlimited, TechLibrary::asic90())
                .regions[0].body.cycles,
            1);
  Directives capped;
  capped.max_real_multipliers = 1;
  EXPECT_EQ(schedule_function(f, capped, TechLibrary::asic90())
                .regions[0].body.cycles,
            2);
}

TEST(Schedule, MemoryPortLimitSerializes) {
  FunctionBuilder fb("memports");
  const int a = fb.add_array("a", 16, fx(10, 0), true);
  const int o = fb.add_var("o", fx(12, 2), false, PortDir::kOut);
  auto blk = fb.block("b");
  const int r1 = blk.array_read(a, {0, 0});
  const int r2 = blk.array_read(a, {0, 5});
  blk.var_write(o, blk.add(r1, r2));
  Function f = fb.build();
  Directives reg_mapped;
  EXPECT_EQ(schedule_function(f, reg_mapped, TechLibrary::asic90())
                .regions[0].body.cycles,
            1)
      << "register-mapped arrays have unlimited read ports";
  Directives mem;
  mem.arrays["a"].mapping = ArrayMapping::kMemory;
  mem.arrays["a"].mem_read_ports = 1;
  Function f2 = apply_transforms(f, mem).func;
  EXPECT_GE(schedule_function(f2, mem, TechLibrary::asic90())
                .regions[0].body.cycles,
            2)
      << "single-port memory allows one read per cycle";
}

TEST(Schedule, PipeliningOverlapsIterations) {
  // A loop whose body takes 2 cycles (memory-mapped reads serialized):
  // pipelined at II=1 the latency approaches trip + depth.
  Function f = make_mac_shift(8);
  Directives dir;
  dir.clock_period_ns = 4.0;  // splits the MAC into >= 2 cycles
  Schedule base = schedule_function(f, dir, TechLibrary::asic90());
  const int body_cycles = base.regions[1].body.cycles;
  ASSERT_GE(body_cycles, 2);
  Directives piped = dir;
  piped.loops["mac"].pipeline_ii = 1;
  Schedule s = schedule_function(f, piped, TechLibrary::asic90());
  // Recurrence through acc: write at the last body cycle, read at cycle 0
  // of the next iteration => II is raised to body depth.
  EXPECT_GE(s.regions[1].ii, 1);
  EXPECT_LE(s.regions[1].total_cycles, base.regions[1].total_cycles);
  EXPECT_FALSE(s.notes.empty());
}

TEST(Schedule, PipeliningNoGainForSingleCycleBody) {
  // The paper's observation (section 5): when each iteration already
  // executes in one cycle, pipelining cannot improve on unrolling.
  Function f = make_mac_shift(8);
  Directives dir;
  dir.loops["mac"].pipeline_ii = 1;
  Schedule s = schedule_function(f, dir, TechLibrary::asic90());
  EXPECT_EQ(s.regions[1].body.cycles, 1);
  EXPECT_EQ(s.regions[1].total_cycles, 8) << "II=1 over a 1-cycle body";
}

// -- Binding / area ---------------------------------------------------------------

TEST(Bind, SharesMultipliersAcrossRegions) {
  // Two MAC loops in sequence: they can share one multiplier set.
  FunctionBuilder fb("share");
  const int x = fb.add_array("x", 8, fx(10, 0), true);
  const int s1 = fb.add_var("s1", fx(26, 6), false, PortDir::kOut);
  const int s2 = fb.add_var("s2", fx(26, 6), false, PortDir::kOut);
  {
    auto l = fb.loop("l1", 8);
    const int xv = l.array_read(x, {1, 0});
    l.var_write(s1, l.add(l.var_read(s1), l.mul(xv, xv)));
  }
  {
    auto l = fb.loop("l2", 8);
    const int xv = l.array_read(x, {1, 0});
    l.var_write(s2, l.add(l.var_read(s2), l.mul(xv, xv)));
  }
  Function f = fb.build();
  const TechLibrary tech = TechLibrary::asic90();
  Directives dir;
  SynthesisResult r = run_synthesis(f, dir, tech);
  int mults = 0;
  for (const auto& fu : r.bind.fus)
    if (fu.kind == "mul") ++mults;
  EXPECT_EQ(mults, 1) << "sequential loops share the multiplier";
  // The shared unit serves two ops => it needs input muxes.
  EXPECT_GT(r.area.mux, 0);
}

TEST(Bind, UnrollingAddsMultipliers) {
  Function f = make_mac_shift();
  const TechLibrary tech = TechLibrary::asic90();
  Directives base;
  Directives u4;
  u4.loops["mac"].unroll = 4;
  const SynthesisResult rb = run_synthesis(f, base, tech);
  const SynthesisResult ru = run_synthesis(f, u4, tech);
  auto count_mults = [](const SynthesisResult& r) {
    int n = 0;
    for (const auto& fu : r.bind.fus)
      if (fu.kind == "mul") ++n;
    return n;
  };
  EXPECT_EQ(count_mults(rb), 1);
  EXPECT_EQ(count_mults(ru), 4);
  EXPECT_GT(ru.area.total, rb.area.total);
  EXPECT_LT(ru.schedule.latency_cycles, rb.schedule.latency_cycles);
}

TEST(Area, MemoryMappingTradesRegistersForRam) {
  FunctionBuilder fb("arr");
  const int a = fb.add_array("big", 64, fx(16, 0), true);
  const int o = fb.add_var("o", fx(16, 0), false, PortDir::kOut);
  auto l = fb.loop("sum", 64);
  l.var_write(o, l.add(l.var_read(o), l.array_read(a, {1, 0})));
  Function f = fb.build();
  const TechLibrary tech = TechLibrary::asic90();
  Directives regs;
  Directives mem;
  mem.arrays["big"].mapping = ArrayMapping::kMemory;
  const SynthesisResult rr = run_synthesis(f, regs, tech);
  const SynthesisResult rm = run_synthesis(f, mem, tech);
  EXPECT_GT(rr.area.reg, rm.area.reg);
  EXPECT_GT(rm.area.mem, 0.0);
  EXPECT_LT(rm.area.total, rr.area.total)
      << "a 1024-bit array is cheaper as SRAM than as flops";
}

// -- Reports -----------------------------------------------------------------------

TEST(Report, SummaryAndBomRender) {
  Function f = make_mac_shift();
  const TechLibrary tech = TechLibrary::asic90();
  SynthesisResult r = run_synthesis(f, Directives{}, tech);
  const std::string sum = synthesis_summary(r, tech);
  EXPECT_NE(sum.find("latency"), std::string::npos);
  EXPECT_NE(sum.find("mac"), std::string::npos);
  const std::string bom = bill_of_materials(r);
  EXPECT_NE(bom.find("mul"), std::string::npos);
  const std::string gantt = gantt_chart(r);
  EXPECT_NE(gantt.find("loop mac"), std::string::npos);
  const std::string cp = critical_path_report(r, tech);
  EXPECT_NE(cp.find("Critical path"), std::string::npos);
}

TEST(Report, JsonIsWellFormedAndComplete) {
  Function f = make_mac_shift();
  const TechLibrary tech = TechLibrary::asic90();
  SynthesisResult r = run_synthesis(f, Directives{}, tech);
  const std::string j = to_json(r, tech);
  // Structural sanity: balanced braces/brackets, key fields present.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const char c = j[i];
    if (c == '"' && (i == 0 || j[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  for (const char* key :
       {"\"function\":\"mac_shift\"", "\"latency_cycles\":", "\"area\":",
        "\"regions\":", "\"functional_units\":", "\"warnings\":",
        "\"label\":\"mac\""})
    EXPECT_NE(j.find(key), std::string::npos) << key;
}

// -- Bitwidth reduction (Figure 2) ---------------------------------------------------

TEST(Bitwidth, Figure2AccumulatorNarrows) {
  // Figure 2 with N=8: int (32-bit) accumulator over 10-bit data narrows
  // to 10 + clog2(8) = 13 bits.
  FunctionBuilder fb("fig2");
  const int x = fb.add_array("x", 8, fx(10, 10), false, PortDir::kIn);
  const int a = fb.add_var("a", fx(32, 32), false, PortDir::kOut);
  {
    auto b0 = fb.block("init");
    b0.var_write(a, b0.cnst(fx(32, 32), 0.0));
  }
  {
    auto l = fb.loop("sum", 8);
    l.var_write(a, l.add(l.var_read(a), l.array_read(x, {1, 0})));
  }
  Function f = fb.build();
  Function narrowed = f;
  const BitwidthResult res = reduce_bitwidths(&narrowed);
  EXPECT_GT(res.bits_saved, 0);
  // Find the add op in the loop.
  const Region* loop = narrowed.find_loop("sum");
  ASSERT_NE(loop, nullptr);
  int add_w = 0;
  for (const Op& op : loop->loop.body.ops)
    if (op.kind == OpKind::kAdd) add_w = op.type.w;
  EXPECT_EQ(add_w, 13) << "10-bit data, 8 terms -> 13-bit adder";

  // Behaviour unchanged: run both on random inputs. The output port var 'a'
  // keeps its declared width; only internal arithmetic narrowed.
  std::mt19937_64 rng(4);
  Interpreter i1(f), i2(narrowed);
  for (int iter = 0; iter < 50; ++iter) {
    PortIo io;
    std::vector<FxValue> xs(8);
    for (auto& e : xs) {
      e.fw = 0;
      e.re = static_cast<int>(rng() % 1024) - 512;
    }
    io.arrays["x"] = xs;
    EXPECT_EQ(static_cast<long long>(i1.run(io).vars.at("a").re),
              static_cast<long long>(i2.run(io).vars.at("a").re));
  }
}

TEST(Bitwidth, LoopCounterWidthMatchesFigure2Claim) {
  // The paper's Figure 2 point: counter width follows the template
  // parameter N. Verified via the fixpt helper used by the engine.
  EXPECT_EQ(fixpt::loop_counter_width(8), 4);
  EXPECT_EQ(fixpt::loop_counter_width(1024), 11);
}

TEST(Bitwidth, SaturatedCastDoesNotNarrowBeyondReachable) {
  // A cast with saturation bounds the range; downstream ops narrow to the
  // saturated range, not the input range.
  FunctionBuilder fb("sat");
  const int a = fb.add_var("a", fx(16, 8), false, PortDir::kIn);
  const int o = fb.add_var("o", fx(32, 24), false, PortDir::kOut);
  auto blk = fb.block("b");
  const int cast = blk.cast(fx(4, 4, false, Quant::kTrn, Ovf::kSat),
                            blk.var_read(a));
  blk.var_write(o, blk.add(cast, cast));
  Function f = fb.build();
  const BitwidthResult res = reduce_bitwidths(&f);
  (void)res;
  int add_w = 0;
  for (const Op& op : f.regions[0].straight.ops)
    if (op.kind == OpKind::kAdd) add_w = op.type.w;
  EXPECT_EQ(add_w, 5) << "[-8,7] + [-8,7] = [-16,14] needs 5 bits";
}

}  // namespace
}  // namespace hlsw::hls
