// Core HLS IR tests: builder type promotion, the runtime fixed-point
// conversion (cross-checked bit-for-bit against the static fixpt::fixed
// datatype), and interpreter execution semantics including statics,
// guards, and port handling.
#include <gtest/gtest.h>

#include <random>

#include "fixpt/complex_fixed.h"
#include "hls/builder.h"
#include "hls/interp.h"

namespace hlsw::hls {
namespace {

using fixpt::Ovf;
using fixpt::Quant;

// -- fx_convert vs the static datatype ---------------------------------------

template <int W, int IW, Quant Q, Ovf O>
void check_convert_agreement(int src_w, int src_iw) {
  std::mt19937_64 rng(static_cast<uint64_t>(W * 131 + IW * 17 + src_w));
  const FxType dst{W, IW, true, false, Q, O};
  for (int iter = 0; iter < 400; ++iter) {
    const long long raw =
        static_cast<long long>(rng()) >> (64 - src_w);  // src_w-bit value
    // Static path: fixed<src_w, src_iw> -> fixed<W, IW, Q, O>.
    using Src = fixpt::fixed<20, 8>;  // fixed format for src_w=20, src_iw=8
    static_assert(Src::kW == 20);
    (void)src_iw;
    const Src s = Src::from_raw(fixpt::wide_int<20>(raw));
    const fixpt::fixed<W, IW, Q, O> expect(s);
    // Runtime path.
    const __int128 got = fx_convert_component(raw, Src::kFW, dst);
    EXPECT_EQ(static_cast<long long>(got), expect.raw().to_int64())
        << "raw=" << raw << " dst=" << dst.to_string();
  }
}

TEST(FxConvert, AgreesWithStaticFixedAllModes) {
  check_convert_agreement<8, 3, Quant::kRnd, Ovf::kSat>(20, 8);
  check_convert_agreement<8, 3, Quant::kRndZero, Ovf::kSat>(20, 8);
  check_convert_agreement<8, 3, Quant::kRndMinInf, Ovf::kWrap>(20, 8);
  check_convert_agreement<8, 3, Quant::kRndInf, Ovf::kSatZero>(20, 8);
  check_convert_agreement<8, 3, Quant::kRndConv, Ovf::kSatSym>(20, 8);
  check_convert_agreement<8, 3, Quant::kTrn, Ovf::kWrap>(20, 8);
  check_convert_agreement<8, 3, Quant::kTrnZero, Ovf::kSat>(20, 8);
  check_convert_agreement<12, 12, Quant::kRnd, Ovf::kSat>(20, 8);
  check_convert_agreement<16, 2, Quant::kTrn, Ovf::kWrap>(20, 8);
}

TEST(FxConvert, WideningIsExact) {
  const FxType dst{20, 4, true, false, Quant::kRnd, Ovf::kSat};
  EXPECT_EQ(static_cast<long long>(fx_convert_component(-37, 4, dst)),
            -37LL << 12);
}

// -- Builder type promotion ----------------------------------------------------

TEST(Builder, PromotionMirrorsFixedTemplates) {
  const FxType a = fx(10, 0), b = fx(10, 0);
  const FxType s = promote_add(a, b);
  EXPECT_EQ(s.w, 11);
  EXPECT_EQ(s.iw, 1);
  const FxType m = promote_mul(a, b);
  EXPECT_EQ(m.w, 20);
  EXPECT_EQ(m.iw, 0);
  // Complex x complex grows one extra bit for the cross add.
  const FxType cm = promote_mul(cfx(10, 0), cfx(10, 0));
  EXPECT_EQ(cm.w, 21);
  EXPECT_EQ(cm.iw, 1);
  EXPECT_TRUE(cm.cplx);
  // Mixed signedness: unsigned operand needs one more integer bit.
  FxType u = fx(8, 4);
  u.sgn = false;
  const FxType mixed = promote_add(u, fx(8, 4));
  EXPECT_EQ(mixed.iw, 6);
  EXPECT_TRUE(mixed.sgn);
}

// -- Interpreter ----------------------------------------------------------------

// Builds sum = Σ x[k]*c[k] over 8 taps: the ffe loop of Figure 4 in scalar
// form.
Function make_dot8() {
  FunctionBuilder fb("dot8");
  const int x = fb.add_array("x", 8, fx(10, 0), false, PortDir::kIn);
  const int c = fb.add_array("c", 8, fx(10, 0), false, PortDir::kIn);
  const int acc = fb.add_var("acc", fx(24, 4), false, PortDir::kOut);
  {
    auto b0 = fb.block("init");
    const int zero = b0.cnst(fx(24, 4), 0.0);
    b0.var_write(acc, zero);
  }
  {
    auto body = fb.loop("mac", 8);
    const int xv = body.array_read(x, {1, 0});
    const int cv = body.array_read(c, {1, 0});
    const int p = body.mul(xv, cv);
    const int a = body.var_read(acc);
    const int s = body.add(a, p);
    body.var_write(acc, s);
  }
  return fb.build();
}

PortIo dot8_inputs(uint64_t seed) {
  std::mt19937_64 rng(seed);
  PortIo io;
  auto randvec = [&] {
    std::vector<FxValue> v(8);
    for (auto& e : v) {
      e.fw = 10;
      e.re = static_cast<int>(rng() % 1024) - 512;
    }
    return v;
  };
  io.arrays["x"] = randvec();
  io.arrays["c"] = randvec();
  return io;
}

TEST(Interp, DotProductMatchesReference) {
  Function f = make_dot8();
  Interpreter in(f);
  const PortIo io = dot8_inputs(7);
  const PortIo out = in.run(io);
  double ref = 0;
  for (int k = 0; k < 8; ++k)
    ref += io.arrays.at("x")[static_cast<size_t>(k)].re_double() *
           io.arrays.at("c")[static_cast<size_t>(k)].re_double();
  EXPECT_DOUBLE_EQ(out.vars.at("acc").re_double(), ref)
      << "24-bit accumulator holds the exact 20+3 bit sum";
}

TEST(Interp, StaticsPersistAcrossInvocations) {
  FunctionBuilder fb("counter");
  const int n = fb.add_var("n", fx(16, 16), true, PortDir::kOut);
  auto b = fb.block("inc");
  const int one = b.cnst(fx(16, 16), 1.0);
  const int v = b.var_read(n);
  const int s = b.add(v, one);
  b.var_write(n, s);
  Function f = fb.build();
  Interpreter in(f);
  PortIo empty;
  EXPECT_EQ(static_cast<long long>(in.run(empty).vars.at("n").re), 1);
  EXPECT_EQ(static_cast<long long>(in.run(empty).vars.at("n").re), 2);
  EXPECT_EQ(static_cast<long long>(in.run(empty).vars.at("n").re), 3);
  in.reset();
  EXPECT_EQ(static_cast<long long>(in.run(empty).vars.at("n").re), 1);
}

TEST(Interp, GuardsSuppressExecution) {
  FunctionBuilder fb("guarded");
  const int n = fb.add_var("n", fx(16, 16), false, PortDir::kOut);
  {
    auto b0 = fb.block("init");
    b0.var_write(n, b0.cnst(fx(16, 16), 0.0));
  }
  {
    auto body = fb.loop("l", 10);
    const int one = body.cnst(fx(16, 16), 1.0);
    const int v = body.var_read(n);
    const int s = body.add(v, one);
    body.var_write(n, s);
  }
  // Guard the whole body to the first 4 iterations.
  Function f = fb.build();
  for (Op& op : f.regions[1].loop.body.ops) op.guard_trip = 4;
  Interpreter in(f);
  PortIo empty;
  EXPECT_EQ(static_cast<long long>(in.run(empty).vars.at("n").re), 4);
}

TEST(Interp, ComplexMultiplyMatchesComplexFixed) {
  FunctionBuilder fb("cmul");
  const int a = fb.add_var("a", cfx(10, 0), false, PortDir::kIn);
  const int b_ = fb.add_var("b", cfx(10, 0), false, PortDir::kIn);
  const int p = fb.add_var("p", cfx(21, 1), false, PortDir::kOut);
  auto blk = fb.block("main");
  blk.var_write(p, blk.mul(blk.var_read(a), blk.var_read(b_)));
  Function f = fb.build();
  Interpreter in(f);
  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    PortIo io;
    const int ar = static_cast<int>(rng() % 1024) - 512;
    const int ai = static_cast<int>(rng() % 1024) - 512;
    const int br = static_cast<int>(rng() % 1024) - 512;
    const int bi = static_cast<int>(rng() % 1024) - 512;
    io.vars["a"] = FxValue{ar, ai, 10, true};
    io.vars["b"] = FxValue{br, bi, 10, true};
    const PortIo out = in.run(io);
    using CF = fixpt::complex_fixed<10, 0>;
    const CF ca(fixpt::fixed<10, 0>::from_raw(fixpt::wide_int<10>(ar)),
                fixpt::fixed<10, 0>::from_raw(fixpt::wide_int<10>(ai)));
    const CF cb(fixpt::fixed<10, 0>::from_raw(fixpt::wide_int<10>(br)),
                fixpt::fixed<10, 0>::from_raw(fixpt::wide_int<10>(bi)));
    const auto prod = ca * cb;
    EXPECT_EQ(static_cast<long long>(out.vars.at("p").re),
              prod.r().raw().to_int64());
    EXPECT_EQ(static_cast<long long>(out.vars.at("p").im),
              prod.i().raw().to_int64());
  }
}

TEST(Interp, SignConjMatchesComplexFixed) {
  FunctionBuilder fb("sc");
  const int a = fb.add_var("a", cfx(10, 0), false, PortDir::kIn);
  const int s = fb.add_var("s", cfx(2, 2), false, PortDir::kOut);
  auto blk = fb.block("main");
  blk.var_write(s, blk.sign_conj(blk.var_read(a)));
  Function f = fb.build();
  Interpreter in(f);
  for (int quad = 0; quad < 4; ++quad) {
    PortIo io;
    io.vars["a"] = FxValue{quad & 1 ? -100 : 100, quad & 2 ? -100 : 100, 10,
                           true};
    const PortIo out = in.run(io);
    EXPECT_EQ(static_cast<long long>(out.vars.at("s").re), quad & 1 ? -1 : 1);
    EXPECT_EQ(static_cast<long long>(out.vars.at("s").im), quad & 2 ? 1 : -1);
  }
}

TEST(Interp, OutOfBoundsArrayAccessThrows) {
  FunctionBuilder fb("oob");
  const int x = fb.add_array("x", 4, fx(8, 0));
  auto body = fb.loop("l", 8);
  body.array_read(x, {1, 0});  // k reaches 7 > 3
  Function f = fb.build();
  Interpreter in(f);
  PortIo empty;
  EXPECT_THROW(in.run(empty), std::out_of_range);
}

TEST(Interp, MissingInputPortThrows) {
  Function f = make_dot8();
  Interpreter in(f);
  PortIo incomplete;
  incomplete.arrays["x"] = std::vector<FxValue>(8);
  EXPECT_THROW(in.run(incomplete), std::invalid_argument);
}

TEST(Ir, DumpContainsStructure) {
  Function f = make_dot8();
  const std::string d = f.dump();
  EXPECT_NE(d.find("function dot8"), std::string::npos);
  EXPECT_NE(d.find("loop mac trip=8"), std::string::npos);
  EXPECT_NE(d.find("array x[8]"), std::string::npos);
  EXPECT_NE(d.find("mul"), std::string::npos);
}

}  // namespace
}  // namespace hlsw::hls
