// Tests for the independent schedule verifier: every schedule the engine
// produces (all architectures, all clocks, all technologies) must verify
// clean, and deliberately corrupted schedules must be caught.
#include <gtest/gtest.h>

#include "hls/report.h"
#include "hls/verify.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"

namespace hlsw::hls {
namespace {

using qam::build_qam_decoder_ir;

TEST(VerifySchedule, AllExplorationArchitecturesVerifyClean) {
  const auto ir = build_qam_decoder_ir();
  for (const auto& arch : qam::exploration_architectures()) {
    const auto r = run_synthesis(ir, arch.dir, TechLibrary::asic90());
    const auto v =
        verify_schedule(r.transformed, arch.dir, TechLibrary::asic90(),
                        r.schedule);
    EXPECT_TRUE(v.empty()) << arch.name << ": " << (v.empty() ? "" : v[0]);
  }
}

TEST(VerifySchedule, FpgaSchedulesVerifyClean) {
  const auto ir = build_qam_decoder_ir();
  for (const auto& arch : qam::table1_architectures()) {
    Directives d = arch.dir;
    d.clock_period_ns = 14.0;
    const auto r = run_synthesis(ir, d, TechLibrary::fpga_lut4());
    const auto v =
        verify_schedule(r.transformed, d, TechLibrary::fpga_lut4(),
                        r.schedule);
    EXPECT_TRUE(v.empty()) << arch.name << ": " << (v.empty() ? "" : v[0]);
  }
}

TEST(VerifySchedule, CatchesCorruptedDataDependence) {
  const auto arch = qam::table1_architectures()[1];
  auto r = run_synthesis(build_qam_decoder_ir(), arch.dir,
                         TechLibrary::asic90());
  // Move a consumer before its producer: the ffe MAC's add (op order:
  // read, read, mul, read, add, write) — push the mul into cycle 1 while
  // its consumer stays in cycle 0... instead simply hoist a later op's
  // cycle below a producer's.
  auto& body = r.schedule.regions[1].body;
  // Find an op with args and displace its producer to a later cycle.
  const auto& ops = r.transformed.regions[1].loop.body.ops;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].args.empty()) {
      body.place[static_cast<size_t>(ops[i].args[0])].cycle =
          body.place[i].cycle + 1;
      break;
    }
  }
  const auto v = verify_schedule(r.transformed, arch.dir,
                                 TechLibrary::asic90(), r.schedule);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("later cycle"), std::string::npos);
}

TEST(VerifySchedule, CatchesArrayForwardingViolation) {
  const auto arch = qam::table1_architectures()[1];
  auto r = run_synthesis(build_qam_decoder_ir(), arch.dir,
                         TechLibrary::asic90());
  // The slicer block writes SV[0] in cycle 0 and reads it in cycle 1;
  // force the read into cycle 0.
  auto& slicer = r.schedule.regions[3];
  const auto& ops = r.transformed.regions[3].straight.ops;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kArrayRead && ops[i].idx.scale == 0 &&
        ops[i].idx.offset == 0 && slicer.body.place[i].cycle == 1) {
      slicer.body.place[i].cycle = 0;
      slicer.body.place[i].start = 9.0;
      slicer.body.place[i].end = 9.0;
    }
  }
  const auto v = verify_schedule(r.transformed, arch.dir,
                                 TechLibrary::asic90(), r.schedule);
  bool found = false;
  for (const auto& msg : v)
    if (msg.find("registers cannot forward") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(VerifySchedule, CatchesChainOverrun) {
  const auto arch = qam::table1_architectures()[0];
  auto r = run_synthesis(build_qam_decoder_ir(), arch.dir,
                         TechLibrary::asic90());
  // Stretch one op's end time past the budget.
  auto& body = r.schedule.regions[1].body;
  body.place[2].end = 99.0;
  const auto v = verify_schedule(r.transformed, arch.dir,
                                 TechLibrary::asic90(), r.schedule);
  bool found = false;
  for (const auto& msg : v)
    if (msg.find("exceeds the cycle budget") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(VerifySchedule, CatchesResourceOverrun) {
  Directives capped;
  capped.max_real_multipliers = 4;
  capped.merge_groups = qam::default_merge_groups();
  auto r = run_synthesis(build_qam_decoder_ir(), capped,
                         TechLibrary::asic90());
  // The scheduler respected the cap; force two cmuls into the same cycle.
  auto& body = r.schedule.regions[1].body;
  const auto& ops = r.transformed.regions[1].loop.body.ops;
  int moved = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kMul) {
      body.place[i].cycle = 0;
      if (++moved == 2) break;
    }
  }
  const auto v = verify_schedule(r.transformed, capped,
                                 TechLibrary::asic90(), r.schedule);
  bool found = false;
  for (const auto& msg : v)
    if (msg.find("multipliers (cap") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hlsw::hls
