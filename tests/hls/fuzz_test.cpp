// Randomized end-to-end property test of the whole engine: generate random
// loop-structured programs (random arrays, vars, arithmetic DAGs, loops
// with affine accesses), push them through random directive sets, and check
// the two invariants that define correctness:
//
//   1. the schedule passes the independent verifier;
//   2. the cycle-accurate RTL simulation of the scheduled design matches
//      the untimed interpreter of the same transformed IR bit for bit.
//
// Unroll-only transforms are additionally checked against the ORIGINAL
// program (unrolling must preserve sequential semantics exactly); merges
// are excluded from that check since iteration-aligned merging legitimately
// reorders memory traffic (the engine warns).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>
#include <regex>

#include "hls/builder.h"
#include "hls/dse.h"
#include "hls/feasibility.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "hls/verify.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"

namespace hlsw::hls {
namespace {

// Iteration budget, overridable for soak runs: HLSW_FUZZ_ITERS=20000
// ctest -L fuzz. The value scales every trial loop proportionally to its
// default so relative coverage stays the same.
int fuzz_iters(int dflt) {
  if (const char* s = std::getenv("HLSW_FUZZ_ITERS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0)
      return static_cast<int>(
          std::max(1L, v * dflt / 400));  // 400 = the largest default
  }
  return dflt;
}

struct RandomProgram {
  Function func;
  std::vector<std::string> in_vars;
  std::vector<std::string> loop_labels;
};

RandomProgram make_random_program(std::mt19937_64* rng) {
  RandomProgram out;
  FunctionBuilder fb("fuzz");
  auto rnd = [&](int n) { return static_cast<int>((*rng)() % static_cast<uint64_t>(n)); };

  const int n_arrays = 1 + rnd(3);
  std::vector<int> arrays, lengths;
  for (int a = 0; a < n_arrays; ++a) {
    const int len = 4 + rnd(12);
    arrays.push_back(fb.add_array("arr" + std::to_string(a), len,
                                  fx(8 + rnd(8), rnd(4)), true));
    lengths.push_back(len);
  }
  const int n_in = 1 + rnd(2);
  std::vector<int> invars;
  for (int v = 0; v < n_in; ++v) {
    const std::string name = "in" + std::to_string(v);
    invars.push_back(fb.add_var(name, fx(10, 2), false, PortDir::kIn));
    out.in_vars.push_back(name);
  }
  const int acc = fb.add_var("acc", fx(30, 12), false, PortDir::kOut);

  {
    auto b = fb.block("init");
    b.var_write(acc, b.cnst(fx(30, 12), 0.0));
    // Seed one array slot from an input.
    b.array_write(arrays[0], {0, 0}, b.var_read(invars[0]));
  }

  const int n_loops = 1 + rnd(3);
  for (int l = 0; l < n_loops; ++l) {
    const int which = rnd(n_arrays);
    const int len = lengths[static_cast<size_t>(which)];
    const int trip = 2 + rnd(len - 1);
    const std::string label = "loop" + std::to_string(l);
    out.loop_labels.push_back(label);
    auto b = fb.loop(label, trip);
    // Random small DAG: reads, arithmetic, accumulate, optional writeback.
    std::vector<int> vals;
    vals.push_back(b.array_read(arrays[static_cast<size_t>(which)],
                                {1, rnd(len - trip + 1)}));
    vals.push_back(b.var_read(invars[static_cast<size_t>(rnd(n_in))]));
    const int n_ops = 1 + rnd(4);
    for (int o = 0; o < n_ops; ++o) {
      const int a = vals[static_cast<size_t>(rnd(static_cast<int>(vals.size())))];
      const int c = vals[static_cast<size_t>(rnd(static_cast<int>(vals.size())))];
      switch (rnd(4)) {
        case 0: vals.push_back(b.add(a, c)); break;
        case 1: vals.push_back(b.sub(a, c)); break;
        case 2: vals.push_back(b.mul(a, c)); break;
        case 3:
          vals.push_back(b.cast(fx(9 + rnd(6), 2 + rnd(3), false,
                                   fixpt::Quant::kRnd, fixpt::Ovf::kSat),
                                a));
          break;
      }
    }
    b.var_write(acc, b.add(b.var_read(acc), vals.back()));
    if (rnd(2) == 0) {
      // Writeback to a different offset of the same array (in range for
      // every k: offset_w in [0, len - trip]).
      b.array_write(arrays[static_cast<size_t>(which)],
                    {1, rnd(len - trip + 1)}, vals.back());
    }
  }
  out.func = fb.build();
  return out;
}

Directives random_directives(const RandomProgram& p, std::mt19937_64* rng,
                             bool allow_merge) {
  auto rnd = [&](int n) { return static_cast<int>((*rng)() % static_cast<uint64_t>(n)); };
  Directives dir;
  dir.clock_period_ns = 4.0 + rnd(9);
  for (const auto& label : p.loop_labels) {
    const int u = 1 << rnd(3);
    if (u > 1) dir.loops[label].unroll = u;
    if (rnd(3) == 0) dir.loops[label].pipeline_ii = 1;
  }
  if (allow_merge && rnd(2) == 0) dir.auto_merge = true;
  if (rnd(4) == 0) dir.max_real_multipliers = 1 + rnd(4);
  return dir;
}

PortIo random_inputs(const RandomProgram& p, std::mt19937_64* rng) {
  PortIo io;
  for (const auto& name : p.in_vars) {
    FxValue v;
    v.fw = 8;
    v.re = static_cast<int>((*rng)() % 1024) - 512;
    io.vars[name] = v;
  }
  return io;
}

TEST(Fuzz, ScheduleVerifiesAndRtlMatchesInterpreter) {
  std::mt19937_64 rng(20260707);
  const TechLibrary tech = TechLibrary::asic90();
  const int trials = fuzz_iters(400);
  for (int trial = 0; trial < trials; ++trial) {
    RandomProgram p = make_random_program(&rng);
    const Directives dir = random_directives(p, &rng, /*allow_merge=*/true);
    const SynthesisResult r = run_synthesis(p.func, dir, tech);

    const auto violations = verify_schedule(r.transformed, dir, tech,
                                            r.schedule);
    ASSERT_TRUE(violations.empty())
        << "trial " << trial << ": " << violations[0] << "\n"
        << r.transformed.dump();

    Interpreter golden(r.transformed);
    rtl::Simulator sim(r.transformed, r.schedule);
    for (int n = 0; n < 12; ++n) {
      const PortIo io = random_inputs(p, &rng);
      const PortIo a = golden.run(io);
      const PortIo b = sim.run(io);
      ASSERT_EQ(static_cast<long long>(a.vars.at("acc").re),
                static_cast<long long>(b.vars.at("acc").re))
          << "trial " << trial << " invocation " << n << "\n"
          << r.transformed.dump();
    }
  }
}

TEST(Fuzz, EmittedVerilogIsStructurallySound) {
  // Every random scheduled program must emit Verilog where each declared
  // wire has exactly one driver and the module structure is balanced.
  std::mt19937_64 rng(777);
  const TechLibrary tech = TechLibrary::asic90();
  const std::regex decl_re(R"(wire signed \[\d+:0\] (\w+);)");
  const std::regex assign_re(R"(assign (\w+) =)");
  const int trials = fuzz_iters(50);
  for (int trial = 0; trial < trials; ++trial) {
    RandomProgram p = make_random_program(&rng);
    const Directives dir = random_directives(p, &rng, /*allow_merge=*/true);
    const SynthesisResult r = run_synthesis(p.func, dir, tech);
    const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
    ASSERT_NE(v.find("module fuzz ("), std::string::npos);
    ASSERT_NE(v.find("endmodule"), std::string::npos);
    std::map<std::string, int> declared, driven;
    for (auto it = std::sregex_iterator(v.begin(), v.end(), decl_re);
         it != std::sregex_iterator(); ++it)
      ++declared[(*it)[1]];
    for (auto it = std::sregex_iterator(v.begin(), v.end(), assign_re);
         it != std::sregex_iterator(); ++it)
      ++driven[(*it)[1]];
    for (const auto& [name, n] : declared) {
      ASSERT_EQ(n, 1) << "trial " << trial << ": duplicate wire " << name;
      ASSERT_EQ(driven[name], 1)
          << "trial " << trial << ": wire " << name << " has "
          << driven[name] << " drivers";
    }
    for (const auto& [name, n] : driven)
      ASSERT_TRUE(declared.count(name))
          << "trial " << trial << ": assign to undeclared " << name;
  }
}

TEST(Fuzz, UnrollingPreservesSequentialSemantics) {
  std::mt19937_64 rng(424242);
  const TechLibrary tech = TechLibrary::asic90();
  const int trials = fuzz_iters(250);
  for (int trial = 0; trial < trials; ++trial) {
    RandomProgram p = make_random_program(&rng);
    Directives dir = random_directives(p, &rng, /*allow_merge=*/false);
    const TransformResult t = apply_transforms(p.func, dir);
    ASSERT_TRUE(t.warnings.empty()) << t.warnings[0];

    Interpreter orig(p.func);
    Interpreter xform(t.func);
    for (int n = 0; n < 12; ++n) {
      const PortIo io = random_inputs(p, &rng);
      ASSERT_EQ(static_cast<long long>(orig.run(io).vars.at("acc").re),
                static_cast<long long>(xform.run(io).vars.at("acc").re))
          << "trial " << trial << " invocation " << n << "\n"
          << p.func.dump();
    }
  }
}

// A directive set deliberately aimed at the degenerate corners the
// feasibility canonicalizer claims to handle: unrolls past (or below) the
// trip count, negative or sub-floor pipeline IIs, pipelining on loops a
// merge folds away, zero/negative/oversubscribed memory ports, directives
// naming loops and arrays the design does not have, and junk merge groups.
Directives degenerate_directives(const RandomProgram& p,
                                 std::mt19937_64* rng) {
  auto rnd = [&](int n) {
    return static_cast<int>((*rng)() % static_cast<uint64_t>(n));
  };
  const auto label = [&]() -> const std::string& {
    return p.loop_labels[static_cast<size_t>(
        rnd(static_cast<int>(p.loop_labels.size())))];
  };
  Directives dir;
  dir.clock_period_ns = 3.0 + rnd(8);
  const int n_mut = 1 + rnd(3);
  for (int m = 0; m < n_mut; ++m) {
    switch (rnd(9)) {
      case 0:  // way past any trip count (trips are <= 15)
        dir.loops[label()].unroll = 17 + rnd(100);
        break;
      case 1:  // zero or negative unroll
        dir.loops[label()].unroll = -2 + rnd(3);
        break;
      case 2:  // negative II request
        dir.loops[label()].pipeline_ii = -3 + rnd(3);
        break;
      case 3:  // II on loops auto-merge may fold away
        dir.auto_merge = true;
        dir.loops[label()].pipeline_ii = 1 + rnd(2);
        break;
      case 4: {  // starved memory ports
        auto& ad = dir.arrays["arr" + std::to_string(rnd(3))];
        ad.mapping = ArrayMapping::kMemory;
        ad.mem_read_ports = -1 + rnd(3);
        ad.mem_write_ports = -1 + rnd(3);
        break;
      }
      case 5: {  // oversubscribed: unrolled reads through one port, II=1
        auto& ad = dir.arrays["arr0"];
        ad.mapping = ArrayMapping::kMemory;
        const std::string& l = label();
        dir.loops[l].unroll = 2 + rnd(3);
        dir.loops[l].pipeline_ii = 1;
        break;
      }
      case 6:  // unknown loop
        dir.loops["ghost_loop"].unroll = 2 + rnd(4);
        break;
      case 7:  // unknown array
        dir.arrays["ghost_array"].mapping = ArrayMapping::kMemory;
        break;
      default:  // junk merge group: maybe duplicated, reversed, unknown
        dir.merge_groups.push_back(
            {label(), rnd(3) == 0 ? "ghost_loop" : label()});
        break;
    }
  }
  return dir;
}

// Robustness of the feasibility analysis under hostile directives: never
// crashes, returns the same verdict on repeated calls, its clamped form
// synthesizes to the same metrics as the original (terminating in the
// process), and its bounds stay true lower bounds.
TEST(Fuzz, FeasibilityVerdictsAreStableAndSoundOnDegenerateDirectives) {
  std::mt19937_64 rng(0xde9e7e4a7e);
  const TechLibrary tech = TechLibrary::asic90();
  const int trials = fuzz_iters(200);
  for (int trial = 0; trial < trials; ++trial) {
    RandomProgram p = make_random_program(&rng);
    const Directives dir = degenerate_directives(p, &rng);
    const std::uint64_t fp = function_fingerprint(p.func);

    const FeasibilityVerdict v1 = check_feasibility(p.func, dir, tech);
    const FeasibilityVerdict v2 = check_feasibility(p.func, dir, tech);
    ASSERT_EQ(v1.status, v2.status) << "trial " << trial;
    ASSERT_EQ(v1.kind, v2.kind) << "trial " << trial;
    ASSERT_EQ(v1.reason, v2.reason) << "trial " << trial;
    ASSERT_EQ(v1.bounds.min_latency_cycles, v2.bounds.min_latency_cycles);
    ASSERT_EQ(v1.bounds.min_area, v2.bounds.min_area);
    ASSERT_EQ(dse_cache_key(fp, v1.clamped, tech),
              dse_cache_key(fp, v2.clamped, tech))
        << "trial " << trial << ": clamped form not deterministic";

    if (v1.status == FeasibilityStatus::kInfeasible) {
      ASSERT_NE(v1.kind, InfeasibleKind::kNone) << "trial " << trial;
      ASSERT_FALSE(v1.reason.empty()) << "trial " << trial;
    } else {
      ASSERT_EQ(v1.kind, InfeasibleKind::kNone) << "trial " << trial;
    }

    // Both spellings must terminate and agree — the redirect soundness
    // contract, under directives far outside the explore() sweep.
    const SynthesisResult orig = run_synthesis(p.func, dir, tech);
    const SynthesisResult clamp = run_synthesis(p.func, v1.clamped, tech);
    ASSERT_EQ(orig.latency_cycles(), clamp.latency_cycles())
        << "trial " << trial << "\n"
        << v1.reason << "\n"
        << p.func.dump();
    ASSERT_DOUBLE_EQ(orig.area.total, clamp.area.total) << "trial " << trial;
    ASSERT_LE(v1.bounds.min_latency_cycles, orig.latency_cycles())
        << "trial " << trial;
    ASSERT_LE(v1.bounds.min_area, orig.area.total + 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace hlsw::hls
