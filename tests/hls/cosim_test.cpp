// Parallel co-simulation sweep (hls::cosim_sweep): golden-vs-DUT replay
// sharded into blocks across a thread pool, with fresh model instances per
// block and a deterministic merge. The tests pin three properties: serial
// and parallel sweeps produce identical results (including the mismatch
// list, byte for byte), real divergences are reported deterministically,
// and a stateful design verifies end-to-end when replayed as one block.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "hls/builder.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "hls/verify.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "util/thread_pool.h"

namespace hlsw::hls {
namespace {

// A design with NO cross-invocation state (acc is rewritten from a
// constant every run), so test-vector blocks are independent by
// construction and the sweep may shard freely.
Function build_stateless_mac() {
  FunctionBuilder fb("sqmac");
  const int x = fb.add_array("x", 16, fx(10, 0), false, PortDir::kIn);
  const int acc = fb.add_var("acc", fx(28, 8), false, PortDir::kOut);
  {
    auto b0 = fb.block("init");
    b0.var_write(acc, b0.cnst(fx(28, 8), 0.0));
  }
  {
    auto l = fb.loop("mac", 16);
    const int xv = l.array_read(x, {1, 0});
    l.var_write(acc, l.add(l.var_read(acc), l.mul(xv, xv)));
  }
  return fb.build();
}

std::vector<PortIo> random_mac_vectors(int n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<PortIo> out;
  for (int i = 0; i < n; ++i) {
    PortIo io;
    std::vector<FxValue> xs(16);
    for (auto& e : xs) {
      e.fw = 10;
      e.re = static_cast<int>(rng() % 1024) - 512;
    }
    io.arrays["x"] = xs;
    out.push_back(std::move(io));
  }
  return out;
}

TEST(CosimSweep, SerialAndParallelSweepsAgree) {
  const Function f = build_stateless_mac();
  Directives dir;
  dir.loops["mac"].pipeline_ii = 1;
  const auto r = run_synthesis(f, dir, TechLibrary::asic90());

  const CosimFactory golden = [&] {
    return [in = std::make_shared<Interpreter>(r.transformed)](
               const std::vector<PortIo>& v) { return in->run_stream(v); };
  };
  const CosimFactory dut = [&] {
    return [sim = std::make_shared<rtl::Simulator>(r.transformed, r.schedule)](
               const std::vector<PortIo>& v) { return sim->run_stream(v); };
  };

  const auto vectors = random_mac_vectors(1000, 7);
  const CosimResult serial =
      cosim_sweep(golden, dut, vectors, {.threads = 0, .block_size = 64});
  const CosimResult parallel =
      cosim_sweep(golden, dut, vectors, {.threads = 4, .block_size = 64});

  EXPECT_TRUE(serial.ok());
  EXPECT_TRUE(parallel.ok());
  EXPECT_EQ(serial.vectors, 1000u);
  EXPECT_EQ(serial.blocks, 16u);  // ceil(1000 / 64)
  EXPECT_EQ(parallel.vectors, serial.vectors);
  EXPECT_EQ(parallel.blocks, serial.blocks);
  EXPECT_EQ(parallel.mismatches, serial.mismatches);

  // An externally owned pool shared across sweeps behaves the same.
  util::ThreadPool pool(3);
  const CosimResult pooled =
      cosim_sweep(golden, dut, vectors, {.block_size = 64, .pool = &pool});
  EXPECT_TRUE(pooled.ok());
  EXPECT_EQ(pooled.blocks, serial.blocks);
}

TEST(CosimSweep, ReportsMismatchesDeterministically) {
  const Function f = build_stateless_mac();
  Directives dir;
  const auto r = run_synthesis(f, dir, TechLibrary::asic90());

  const CosimFactory golden = [&] {
    return [in = std::make_shared<Interpreter>(r.transformed)](
               const std::vector<PortIo>& v) { return in->run_stream(v); };
  };
  // DUT corrupts the accumulator of every 97th result — a sparse, known
  // divergence the sweep must localize by absolute vector index.
  const CosimFactory bad_dut = [&] {
    auto sim = std::make_shared<rtl::Simulator>(r.transformed, r.schedule);
    auto count = std::make_shared<int>(0);
    return [sim, count](const std::vector<PortIo>& v) {
      std::vector<PortIo> outs = sim->run_stream(v);
      for (auto& o : outs)
        if ((*count)++ % 97 == 0) o.vars.at("acc").re += 1;
      return outs;
    };
  };

  const auto vectors = random_mac_vectors(400, 11);
  // Serial run: one DUT instance sees all vectors in order, so corruption
  // lands on absolute indices 0, 97, 194, 291, 388.
  const CosimResult serial = cosim_sweep(golden, bad_dut, vectors,
                                         {.threads = 0, .block_size = 4096});
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(serial.mismatches.size(), 5u);
  // Two serial runs are byte-identical.
  const CosimResult again = cosim_sweep(golden, bad_dut, vectors,
                                        {.threads = 0, .block_size = 4096});
  EXPECT_EQ(serial.mismatches, again.mismatches);
  // Mismatch reports carry the absolute vector index.
  for (const auto& m : serial.mismatches)
    EXPECT_NE(m.find("vector"), std::string::npos) << m;
  EXPECT_NE(serial.mismatches[0].find("0"), std::string::npos);
  EXPECT_NE(serial.mismatches[1].find("97"), std::string::npos);

  // Parallel with per-block replay: each block's DUT restarts its counter,
  // so vector 0 of EVERY block mismatches — still deterministic across
  // worker schedules.
  const CosimResult par1 = cosim_sweep(golden, bad_dut, vectors,
                                       {.threads = 4, .block_size = 50});
  const CosimResult par2 = cosim_sweep(golden, bad_dut, vectors,
                                       {.threads = 2, .block_size = 50});
  ASSERT_FALSE(par1.ok());
  EXPECT_EQ(par1.blocks, 8u);
  EXPECT_EQ(par1.mismatches.size(), 8u);  // one corrupted vector per block
  EXPECT_EQ(par1.mismatches, par2.mismatches);
}

TEST(CosimSweep, StatefulDecoderVerifiesAsOneSequentialBlock) {
  // The QAM decoder carries state across symbols (delay lines, adapting
  // coefficients), so the documented recipe is block_size >= vectors:
  // one sequential replay from reset, still through the sweep machinery.
  const qam::Architecture arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  qam::LinkStimulus stim((qam::LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 500);

  const CosimFactory golden = [&] {
    return [in = std::make_shared<Interpreter>(r.transformed)](
               const std::vector<PortIo>& v) { return in->run_stream(v); };
  };
  const CosimFactory dut = [&] {
    return [sim = std::make_shared<rtl::Simulator>(r.transformed, r.schedule)](
               const std::vector<PortIo>& v) { return sim->run_stream(v); };
  };
  const CosimResult res = cosim_sweep(
      golden, dut, vectors, {.threads = 2, .block_size = vectors.size()});
  EXPECT_TRUE(res.ok()) << (res.mismatches.empty() ? ""
                                                   : res.mismatches.front());
  EXPECT_EQ(res.blocks, 1u);
  EXPECT_EQ(res.vectors, 500u);
}

TEST(CosimSweep, EmptyVectorSetIsTriviallyOk) {
  const CosimFactory none = [] {
    return [](const std::vector<PortIo>& v) { return v; };
  };
  const CosimResult res = cosim_sweep(none, none, {});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.vectors, 0u);
  EXPECT_EQ(res.blocks, 0u);
}

}  // namespace
}  // namespace hlsw::hls
