// Memoization cache tests: canonical key construction (distinct directives
// get distinct keys, semantically identical directives get equal keys),
// hit/miss behavior of SynthesisCache, refinement-phase hits inside a
// single explore(), and the cache-warm guarantee — a second explore() call
// sharing the cache performs zero new schedules.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "hls/dse.h"
#include "qam/decoder_ir.h"

namespace hlsw::hls {
namespace {

std::uint64_t qam_fp() {
  static const std::uint64_t fp =
      function_fingerprint(qam::build_qam_decoder_ir());
  return fp;
}

TEST(DseCacheKey, DistinctDirectivesGetDistinctKeys) {
  const auto tech = TechLibrary::asic90();
  Directives base;
  const std::string k0 = dse_cache_key(qam_fp(), base, tech);

  Directives unrolled = base;
  unrolled.loops["ffe"].unroll = 2;
  Directives merged = base;
  merged.auto_merge = true;
  Directives clocked = base;
  clocked.clock_period_ns = 5.0;
  Directives piped = base;
  piped.loops["ffe"].pipeline_ii = 1;
  Directives memd = base;
  memd.arrays["x"].mapping = ArrayMapping::kMemory;
  Directives iface = base;
  iface.interfaces["x_in"] = InterfaceKind::kHandshake;
  Directives grouped = base;
  grouped.merge_groups = {{"ffe", "dfe"}};
  Directives capped = base;
  capped.max_real_multipliers = 2;

  for (const auto* d :
       {&unrolled, &merged, &clocked, &piped, &memd, &iface, &grouped, &capped})
    EXPECT_NE(dse_cache_key(qam_fp(), *d, tech), k0);
  // And pairwise distinct among themselves.
  EXPECT_NE(dse_cache_key(qam_fp(), unrolled, tech),
            dse_cache_key(qam_fp(), merged, tech));
  EXPECT_NE(dse_cache_key(qam_fp(), piped, tech),
            dse_cache_key(qam_fp(), unrolled, tech));
}

TEST(DseCacheKey, SemanticallyIdenticalDirectivesGetEqualKeys) {
  const auto tech = TechLibrary::asic90();
  Directives a;  // no loop entries at all
  Directives b;
  b.loops["ffe"];             // default entry: unroll = 1, no pipelining
  b.loops["dfe"].unroll = 0;  // 0 means "no unrolling", same as 1
  Directives c;
  c.arrays["x"];  // default array directive
  EXPECT_EQ(dse_cache_key(qam_fp(), a, tech), dse_cache_key(qam_fp(), b, tech));
  EXPECT_EQ(dse_cache_key(qam_fp(), a, tech), dse_cache_key(qam_fp(), c, tech));
}

TEST(DseCacheKey, FunctionAndTechChangesInvalidate) {
  Directives d;
  EXPECT_NE(dse_cache_key(qam_fp(), d, TechLibrary::asic90()),
            dse_cache_key(qam_fp(), d, TechLibrary::fpga_lut4()));
  EXPECT_NE(dse_cache_key(qam_fp() ^ 1, d, TechLibrary::asic90()),
            dse_cache_key(qam_fp(), d, TechLibrary::asic90()));
  EXPECT_NE(tech_fingerprint(TechLibrary::asic90()),
            tech_fingerprint(TechLibrary::fpga_lut4()));
}

TEST(SynthesisCache, RepeatedKeysHitAndComputeOnce) {
  SynthesisCache cache;
  std::atomic<int> computes{0};
  const auto compute = [&] {
    ++computes;
    return SynthesisCache::Metrics{19, 190.0, 12345.0};
  };
  bool hit = true;
  const auto m1 = cache.get_or_compute("k", compute, &hit);
  EXPECT_FALSE(hit);
  const auto m2 = cache.get_or_compute("k", compute, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(m1.latency_cycles, m2.latency_cycles);
  EXPECT_EQ(m1.area, m2.area);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains("k"));
  EXPECT_FALSE(cache.contains("other"));
}

TEST(SynthesisCache, ThrowingComputeIsRetriable) {
  SynthesisCache cache;
  EXPECT_THROW(cache.get_or_compute(
                   "k",
                   []() -> SynthesisCache::Metrics {
                     throw std::runtime_error("synthesis failed");
                   }),
               std::runtime_error);
  EXPECT_FALSE(cache.contains("k"));  // entry removed, retry allowed
  bool hit = true;
  const auto m = cache.get_or_compute(
      "k", [] { return SynthesisCache::Metrics{1, 10.0, 2.0}; }, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(m.latency_cycles, 1);
}

TEST(DseCache, RefinementPhaseHitsWithinASingleExplore) {
  // With both merge modes swept, the refinement phase's merge-flip of
  // every Pareto base re-derives a configuration the common-factor sweep
  // already visited — served by the cache, never re-scheduled. And with
  // feasibility pruning redirecting infeasible candidates onto their
  // clamped canonical form, some rows resolve as hits too: the schedule
  // count is the number of distinct canonical configurations, never the
  // row count.
  DseOptions opts;
  opts.threads = 1;
  opts.cache = std::make_shared<SynthesisCache>();
  const DseResult r =
      explore(qam::build_qam_decoder_ir(), opts, TechLibrary::asic90());
  EXPECT_GT(r.cache_hits, 0u);
  EXPECT_LE(r.cache_misses, r.points.size());
  EXPECT_EQ(r.cache_misses, opts.cache->size())
      << "every distinct canonical configuration cost exactly one schedule "
         "on a cold cache";
}

TEST(DseCache, WarmSecondExploreRunsZeroNewSchedules) {
  const Function ir = qam::build_qam_decoder_ir();
  DseOptions opts;
  opts.threads = 2;
  opts.cache = std::make_shared<SynthesisCache>();
  const DseResult cold = explore(ir, opts, TechLibrary::asic90());
  EXPECT_GT(cold.cache_misses, 0u);
  const std::size_t cached = opts.cache->size();
  EXPECT_EQ(cached, cold.cache_misses);

  const DseResult warm = explore(ir, opts, TechLibrary::asic90());
  EXPECT_EQ(warm.cache_misses, 0u) << "warm cache must schedule nothing";
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(opts.cache->size(), cached) << "no new entries on a warm sweep";
  // And the warm result is the same exploration.
  ASSERT_EQ(warm.points.size(), cold.points.size());
  for (std::size_t i = 0; i < warm.points.size(); ++i) {
    EXPECT_EQ(warm.points[i].name, cold.points[i].name);
    EXPECT_EQ(warm.points[i].latency_cycles, cold.points[i].latency_cycles);
    EXPECT_EQ(warm.points[i].area, cold.points[i].area);
    EXPECT_EQ(warm.points[i].pareto, cold.points[i].pareto);
  }
}

TEST(DseCache, CacheIsSharedAcrossTechTargetsWithoutAliasing) {
  const Function ir = qam::build_qam_decoder_ir();
  DseOptions opts;
  opts.threads = 1;
  opts.cache = std::make_shared<SynthesisCache>();
  const DseResult asic = explore(ir, opts, TechLibrary::asic90());
  const DseResult fpga = explore(ir, opts, TechLibrary::fpga_lut4());
  EXPECT_EQ(opts.cache->size(), asic.cache_misses + fpga.cache_misses)
      << "a different tech library must not hit the asic entries: the two "
         "runs' schedules must occupy disjoint cache keys";
  EXPECT_GT(fpga.cache_misses, 0u);
  // The common-factor sweep exists in both runs; the shared baseline must
  // have been re-measured under the fpga model, not served from the asic
  // entry.
  const auto baseline = [](const DseResult& r) -> const DsePoint* {
    for (const auto& p : r.points)
      if (p.name == "flat+U1") return &p;
    return nullptr;
  };
  const DsePoint* a = baseline(asic);
  const DsePoint* b = baseline(fpga);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->latency_ns, b->latency_ns)
      << "fpga timing should differ from asic";
}

}  // namespace
}  // namespace hlsw::hls
