// Unit coverage for util::ThreadPool: task completion, exception
// propagation through futures, drain-on-destruction, the zero- and
// one-thread edge cases, and a many-small-tasks stress run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace hlsw::util {
namespace {

TEST(ThreadPool, CompletesTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptionsThroughTheFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, InlinePoolPropagatesExceptionsToo) {
  ThreadPool pool(0);
  auto fut = pool.submit([]() -> int { throw std::logic_error("inline"); });
  EXPECT_THROW(fut.get(), std::logic_error);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      futs.push_back(pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1, std::memory_order_relaxed);
      }));
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(done.load(), 64);
  for (auto& f : futs) EXPECT_NO_THROW(f.get());  // no broken promises
}

TEST(ThreadPool, ZeroThreadsRunsInlineOnTheCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const auto caller = std::this_thread::get_id();
  auto fut = pool.submit([caller] { return std::this_thread::get_id() == caller; });
  // Inline execution finishes before submit returns.
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPool, OneThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i)
    futs.push_back(pool.submit([&order, i] { order.push_back(i); }));
  for (auto& f : futs) f.get();
  std::vector<int> expect(50);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);  // single worker: strict FIFO
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<long long> sum{0};
  std::vector<std::future<void>> futs;
  futs.reserve(5000);
  for (int i = 1; i <= 5000; ++i)
    futs.push_back(pool.submit([&sum, i] {
      sum.fetch_add(i, std::memory_order_relaxed);
    }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 5000LL * 5001 / 2);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(MapOrdered, ReturnsResultsInIndexOrder) {
  ThreadPool pool(4);
  // Make late indices finish first so completion order differs from index
  // order — the merge must still come back 0..n-1.
  const auto res = map_ordered(&pool, 64, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds((64 - i) * 20));
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(res.size(), 64u);
  for (std::size_t i = 0; i < res.size(); ++i)
    EXPECT_EQ(res[i], static_cast<int>(i * i));
}

TEST(MapOrdered, NullPoolRunsInlineInOrder) {
  std::vector<std::size_t> seen;
  const auto res = map_ordered(nullptr, 10, [&seen](std::size_t i) {
    seen.push_back(i);  // safe: inline path is sequential on this thread
    return i + 1;
  });
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(seen, expect);
  ASSERT_EQ(res.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(res[i], i + 1);
}

TEST(MapOrdered, PropagatesTheLowestIndexException) {
  ThreadPool pool(4);
  try {
    map_ordered(&pool, 16, [](std::size_t i) -> int {
      if (i == 3 || i == 12) throw std::runtime_error("task " + std::to_string(i));
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");  // futures drained in index order
  }
}

TEST(MapOrdered, ZeroTasksYieldsEmptyResult) {
  ThreadPool pool(2);
  EXPECT_TRUE(map_ordered(&pool, 0, [](std::size_t) { return 1; }).empty());
  EXPECT_TRUE(map_ordered(nullptr, 0, [](std::size_t) { return 1; }).empty());
}

}  // namespace
}  // namespace hlsw::util
