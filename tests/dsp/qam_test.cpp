// Tests for the M-QAM constellation: mapper/slicer inverse property, gray
// adjacency, the paper's 8x8 grid geometry, and noise tolerance bounds.
#include "dsp/qam.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hlsw::dsp {
namespace {

TEST(Qam, Paper64QamGridGeometry) {
  QamConstellation q(64);
  EXPECT_EQ(q.levels(), 8);
  EXPECT_EQ(q.bits_per_symbol(), 6);
  // Levels are odd multiples of 1/16 spanning (-0.5, 0.5) — the scaling that
  // makes every Figure 4 signal fit sc_fixed<*,0>.
  for (int k = 0; k < 8; ++k) {
    EXPECT_DOUBLE_EQ(q.level(k), (2 * k - 7) / 16.0);
  }
  EXPECT_DOUBLE_EQ(q.level(0), -7.0 / 16);
  EXPECT_DOUBLE_EQ(q.level(7), 7.0 / 16);
}

class QamRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, QamMapping>> {};

TEST_P(QamRoundTrip, MapThenSliceIsIdentity) {
  const auto [m, mapping] = GetParam();
  QamConstellation q(m, mapping);
  for (int s = 0; s < m; ++s) {
    EXPECT_EQ(q.slice(q.map(s)), s) << "symbol " << s;
    EXPECT_EQ(q.slice_point(q.map(s)), q.map(s));
  }
}

TEST_P(QamRoundTrip, MappingIsBijective) {
  const auto [m, mapping] = GetParam();
  QamConstellation q(m, mapping);
  std::set<std::pair<double, double>> points;
  for (int s = 0; s < m; ++s) {
    const auto p = q.map(s);
    points.insert({p.real(), p.imag()});
  }
  EXPECT_EQ(static_cast<int>(points.size()), m);
}

TEST_P(QamRoundTrip, SliceToleratesHalfSpacingNoise) {
  const auto [m, mapping] = GetParam();
  QamConstellation q(m, mapping);
  const double spacing = 1.0 / q.levels();
  for (int s = 0; s < m; ++s) {
    const auto p = q.map(s);
    // Perturb by just under half the grid spacing in the worst direction.
    const std::complex<double> noisy(p.real() + 0.49 * spacing,
                                     p.imag() - 0.49 * spacing);
    EXPECT_EQ(q.slice(noisy), s) << "symbol " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Constellations, QamRoundTrip,
    ::testing::Combine(::testing::Values(4, 16, 64, 256),
                       ::testing::Values(QamMapping::kGray,
                                         QamMapping::kTwosComplement)),
    [](const auto& info) {
      return "Qam" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == QamMapping::kGray ? "Gray" : "Twos");
    });

TEST(Qam, GrayAdjacencyProperty) {
  // Horizontally or vertically adjacent constellation points must differ in
  // exactly one bit under gray mapping.
  QamConstellation q(64, QamMapping::kGray);
  for (int r = 0; r < 8; ++r) {
    for (int i = 0; i < 8; ++i) {
      const int s = q.slice({q.level(r), q.level(i)});
      if (r + 1 < 8) {
        const int s2 = q.slice({q.level(r + 1), q.level(i)});
        EXPECT_EQ(QamConstellation::bit_errors(s, s2), 1);
      }
      if (i + 1 < 8) {
        const int s2 = q.slice({q.level(r), q.level(i + 1)});
        EXPECT_EQ(QamConstellation::bit_errors(s, s2), 1);
      }
    }
  }
}

TEST(Qam, TwosComplementFieldComposition) {
  // The DSP library's two's-complement mapping is per-axis bit fields:
  // data = {(kr-4) mod 8 : 3 bits}{(ki-4) mod 8 : 3 bits}. (Figure 4's
  // decoder uses the *arithmetic* composition r*64 + i*8 instead, where a
  // negative i borrows into the r field — that convention lives in
  // qam/link.h as paper_word/paper_map and is tested there.)
  QamConstellation q(64, QamMapping::kTwosComplement);
  for (int kr = 0; kr < 8; ++kr) {
    for (int ki = 0; ki < 8; ++ki) {
      const int expected = (((kr - 4) & 7) << 3) | ((ki - 4) & 7);
      EXPECT_EQ(q.slice({q.level(kr), q.level(ki)}), expected);
    }
  }
}

TEST(Qam, SliceSaturatesOutsideGrid) {
  QamConstellation q(64, QamMapping::kGray);
  const int corner = q.slice({10.0, -10.0});
  EXPECT_EQ(corner, q.slice({q.level(7), q.level(0)}));
}

TEST(Qam, AverageEnergy) {
  QamConstellation q(4);
  // QPSK at levels +-1/4: energy = 2 * (1/16) = 1/8.
  EXPECT_DOUBLE_EQ(q.average_energy(), 0.125);
  QamConstellation q64(64);
  double e = 0;
  for (int s = 0; s < 64; ++s) e += std::norm(q64.map(s));
  EXPECT_NEAR(q64.average_energy(), e / 64, 1e-12);
}

TEST(Qam, BitErrors) {
  EXPECT_EQ(QamConstellation::bit_errors(0b101010, 0b101010), 0);
  EXPECT_EQ(QamConstellation::bit_errors(0b101010, 0b101011), 1);
  EXPECT_EQ(QamConstellation::bit_errors(0, 63), 6);
}

}  // namespace
}  // namespace hlsw::dsp
