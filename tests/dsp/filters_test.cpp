// Tests for the FIR filter, adaptive algorithms, PRBS source, channel
// model, and metrics — the DSP substrate under the equalizer.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numeric>
#include <vector>

#include "dsp/channel.h"
#include "dsp/fir.h"
#include "dsp/lms.h"
#include "dsp/metrics.h"
#include "dsp/prbs.h"

namespace hlsw::dsp {
namespace {

using cplx = std::complex<double>;

TEST(Fir, ImpulseResponseIsCoefficients) {
  FirFilter<cplx> f({{1, 0}, {0.5, -0.5}, {0, 0.25}});
  std::vector<cplx> got;
  got.push_back(f.step({1, 0}));
  got.push_back(f.step({0, 0}));
  got.push_back(f.step({0, 0}));
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(got[k], f.coeffs()[k]);
}

TEST(Fir, KnownConvolution) {
  FirFilter<double> f(std::vector<double>{1, 2, 3});
  EXPECT_DOUBLE_EQ(f.step(1), 1);       // 1*1
  EXPECT_DOUBLE_EQ(f.step(10), 12);     // 1*10 + 2*1
  EXPECT_DOUBLE_EQ(f.step(100), 123);   // 1*100 + 2*10 + 3*1
  EXPECT_DOUBLE_EQ(f.step(0), 230);     // 2*100 + 3*10
}

TEST(Fir, ResetClearsState) {
  FirFilter<double> f(std::vector<double>{1, 1});
  f.step(5);
  f.reset();
  EXPECT_DOUBLE_EQ(f.step(0), 0);
}

// -- LMS family: system identification converges -----------------------------

class AdaptAlgoTest : public ::testing::TestWithParam<AdaptAlgo> {};

TEST_P(AdaptAlgoTest, IdentifiesUnknownFir) {
  const AdaptAlgo algo = GetParam();
  // Unknown plant: 4-tap complex FIR. Adaptive filter must converge to it.
  const std::vector<cplx> plant = {
      {0.9, 0.1}, {-0.3, 0.2}, {0.1, -0.1}, {0.05, 0.0}};
  FirFilter<cplx> unknown(plant);
  std::vector<cplx> w(4, cplx{0, 0});
  std::vector<cplx> line(4, cplx{0, 0});
  GaussianNoise src(123, 0.5);
  const double mu = algo == AdaptAlgo::kNlms ? 0.2 : 0.01;
  for (int n = 0; n < 20000; ++n) {
    const cplx x = src.next_complex();
    for (int k = 3; k > 0; --k) line[k] = line[k - 1];
    line[0] = x;
    const cplx d = unknown.step(x);
    cplx y{0, 0};
    for (int k = 0; k < 4; ++k) y += w[k] * line[k];
    const cplx e = d - y;
    adapt_taps(algo, w, line, e, mu);
  }
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(w[k].real(), plant[k].real(), 0.05) << "tap " << k;
    EXPECT_NEAR(w[k].imag(), plant[k].imag(), 0.05) << "tap " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, AdaptAlgoTest,
                         ::testing::Values(AdaptAlgo::kLms, AdaptAlgo::kSignLms,
                                           AdaptAlgo::kSignSign,
                                           AdaptAlgo::kNlms),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdaptAlgo::kLms: return "Lms";
                             case AdaptAlgo::kSignLms: return "SignLms";
                             case AdaptAlgo::kSignSign: return "SignSign";
                             case AdaptAlgo::kNlms: return "Nlms";
                           }
                           return "?";
                         });

TEST(Lms, SignLmsStepIsQuantizedToMu) {
  // Every sign-LMS tap update moves each component by exactly ±mu or ±2mu
  // (sum of two ±mu terms) scaled by |e| components — with sign regressor
  // the update is mu * e * (\pm1 \mp j), so each real component changes by
  // mu*(±e_r ± e_i).
  std::vector<cplx> w(1, cplx{0, 0});
  std::vector<cplx> x(1, cplx{-0.7, 0.3});
  const cplx e{0.5, -0.25};
  adapt_taps(AdaptAlgo::kSignLms, w, x, e, 1.0 / 256);
  // sign_conj(x) = conj(csign(x)) = conj(-1, 1) = (-1, -j... ) = (-1,-1j)*...
  const cplx expected = (1.0 / 256) * e * std::conj(csign(x[0]));
  EXPECT_DOUBLE_EQ(w[0].real(), expected.real());
  EXPECT_DOUBLE_EQ(w[0].imag(), expected.imag());
}

TEST(Lms, CsignConvention) {
  EXPECT_EQ(csign({0.0, 0.0}), cplx(1, 1)) << "zero counts as non-negative";
  EXPECT_EQ(csign({-0.1, 0.1}), cplx(-1, 1));
}

// -- PRBS ---------------------------------------------------------------------

TEST(Prbs, Prbs7HasMaximalPeriod) {
  Prbs p(Prbs::kPrbs7, 1);
  const uint32_t start = p.state();
  int period = 0;
  do {
    p.next_bit();
    ++period;
  } while (p.state() != start && period < 1000);
  EXPECT_EQ(period, 127);
}

TEST(Prbs, BitsAreBalanced) {
  Prbs p(Prbs::kPrbs15, 0x1234);
  int ones = 0;
  const int n = 32767;
  for (int i = 0; i < n; ++i) ones += p.next_bit();
  // Maximal-length LFSR: exactly 2^(n-1) ones per period.
  EXPECT_EQ(ones, 16384);
}

TEST(Prbs, NextWordComposesBits) {
  Prbs a(Prbs::kPrbs15, 77), b(Prbs::kPrbs15, 77);
  const int w = a.next_word(6);
  int ref = 0;
  for (int i = 0; i < 6; ++i) ref = (ref << 1) | b.next_bit();
  EXPECT_EQ(w, ref);
  EXPECT_LT(w, 64);
  EXPECT_GE(w, 0);
}

// -- Channel ------------------------------------------------------------------

TEST(Channel, DeterministicForSameSeed) {
  ChannelConfig cfg;
  MultipathChannel a(cfg), b(cfg);
  for (int i = 0; i < 100; ++i) {
    const auto pa = a.send({0.3, -0.2});
    const auto pb = b.send({0.3, -0.2});
    EXPECT_EQ(pa.s0, pb.s0);
    EXPECT_EQ(pa.s1, pb.s1);
  }
}

TEST(Channel, ImpulseRevealsTapsWhenNoiseless) {
  ChannelConfig cfg;
  cfg.snr_db = 300;  // effectively noiseless
  MultipathChannel ch(cfg);
  const auto p0 = ch.send({1, 0});
  const auto p1 = ch.send({0, 0});
  EXPECT_NEAR(std::abs(p0.s0 - cfg.taps[0]), 0, 1e-10);
  EXPECT_NEAR(std::abs(p0.s1 - cfg.taps[1]), 0, 1e-10);
  EXPECT_NEAR(std::abs(p1.s0 - cfg.taps[2]), 0, 1e-10);
  EXPECT_NEAR(std::abs(p1.s1 - cfg.taps[3]), 0, 1e-10);
}

TEST(Channel, NoiseVarianceMatchesSnr) {
  ChannelConfig cfg;
  cfg.taps = {{1.0, 0.0}};
  cfg.snr_db = 10.0;
  cfg.symbol_energy = 1.0;
  MultipathChannel ch(cfg);
  double sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto p = ch.send({0, 0});  // pure noise
    sum2 += std::norm(p.s0) + std::norm(p.s1);
  }
  const double measured = sum2 / (2 * n);
  EXPECT_NEAR(measured, 0.1, 0.005) << "complex noise power per sample";
}

TEST(GaussianNoiseTest, MomentsAreGaussian) {
  GaussianNoise g(999, 2.0);
  double m1 = 0, m2 = 0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    const double v = g.next();
    m1 += v;
    m2 += v * v;
  }
  m1 /= n;
  m2 /= n;
  EXPECT_NEAR(m1, 0.0, 0.02);
  EXPECT_NEAR(m2, 4.0, 0.05);
}

// -- Metrics --------------------------------------------------------------------

TEST(Metrics, MseTrackerWindowedMean) {
  MseTracker t(0.5, 4);
  t.update({1.0, 0.0});  // |e|^2 = 1
  t.update({0.0, 1.0});  // 1
  t.update({1.0, 1.0});  // 2
  EXPECT_DOUBLE_EQ(t.windowed_mse(), 4.0 / 3.0);
  t.update({0.0, 0.0});
  t.update({0.0, 0.0});  // window of 4 drops the first sample
  EXPECT_DOUBLE_EQ(t.windowed_mse(), 3.0 / 4.0);
  EXPECT_EQ(t.count(), 5u);
}

TEST(Metrics, ErrorCounter) {
  ErrorCounter c;
  c.update(0b101010, 0b101010, 6);
  c.update(0b101010, 0b101000, 6);
  c.update(0b111111, 0b000000, 6);
  EXPECT_EQ(c.symbols(), 3u);
  EXPECT_EQ(c.symbol_errors(), 2u);
  EXPECT_EQ(c.bit_errors(), 7u);
  EXPECT_DOUBLE_EQ(c.ser(), 2.0 / 3);
  EXPECT_DOUBLE_EQ(c.ber(), 7.0 / 18);
}

}  // namespace
}  // namespace hlsw::dsp
