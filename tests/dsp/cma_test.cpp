// Tests for CMA blind equalization — the adaptation mode the paper leaves
// out of scope. CMA must open the eye (reduce the modulus dispersion) from
// a cold start with no training symbols; it is phase-blind, so the test
// measures dispersion, not SER.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "dsp/channel.h"
#include "dsp/lms.h"
#include "dsp/prbs.h"
#include "dsp/qam.h"

namespace hlsw::dsp {
namespace {

TEST(Cma, R2Constants) {
  // QPSK at levels +-1/4: |a|^2 = 1/8 always -> R2 = E|a|^4/E|a|^2 = 1/8.
  EXPECT_NEAR(cma_r2(4), 0.125, 1e-12);
  // 64-QAM: per-axis m2 = 21/256, m4 = 777/65536.
  const double m2 = 21.0 / 256, m4 = 777.0 / 65536;
  EXPECT_NEAR(cma_r2(64), (2 * m4 + 2 * m2 * m2) / (2 * m2), 1e-12);
}

TEST(Cma, ErrorVanishesOnModulusCircle) {
  const double r2 = cma_r2(4);
  const std::complex<double> on_circle =
      std::sqrt(r2) * std::exp(std::complex<double>(0, 0.7));
  EXPECT_NEAR(std::abs(cma_error(on_circle, r2)), 0.0, 1e-12);
  // Inside the circle the error pushes outward, outside it pulls inward.
  const std::complex<double> inside(0.1, 0.0);
  EXPECT_GT(cma_error(inside, r2).real(), 0);
  const std::complex<double> outside(0.9, 0.0);
  EXPECT_LT(cma_error(outside, r2).real(), 0);
}

// Mean CMA cost E[(|y|^2 - R2)^2] of a T/2 FFE over the link channel.
double dispersion_after(int train_symbols, double mu) {
  QamConstellation qam(64);
  const double r2 = cma_r2(64);
  ChannelConfig ccfg;
  ccfg.taps = {{1.10, 0.0}, {1.06, 0.0}, {0.08, 0.05}, {-0.04, 0.02}};
  ccfg.snr_db = 34;
  ccfg.symbol_energy = qam.average_energy();
  MultipathChannel ch(ccfg);
  Prbs prbs(Prbs::kPrbs15, 0x7B);

  const int taps = 8;
  std::vector<std::complex<double>> c(taps, {0, 0});
  c[taps / 2] = {0.45, 0};  // blind-friendly center spike
  std::vector<std::complex<double>> line(taps, {0, 0});

  double cost = 0;
  int counted = 0;
  const int measure = 2000;
  for (int n = 0; n < train_symbols + measure; ++n) {
    const auto pt = qam.map(prbs.next_word(6));
    const auto pair = ch.send(pt);
    for (int k = taps - 1; k >= 2; --k) line[static_cast<size_t>(k)] =
        line[static_cast<size_t>(k - 2)];
    line[0] = pair.s0;
    line[1] = pair.s1;
    std::complex<double> y{0, 0};
    for (int k = 0; k < taps; ++k)
      y += c[static_cast<size_t>(k)] * line[static_cast<size_t>(k)];
    if (n < train_symbols) {
      adapt_taps(AdaptAlgo::kLms, c, line, cma_error(y, r2), mu);
    } else {
      const double d = std::norm(y) - r2;
      cost += d * d;
      ++counted;
    }
  }
  return cost / counted;
}

TEST(Cma, BlindAdaptationOpensTheEye) {
  const double before = dispersion_after(0, 0.0);
  const double after = dispersion_after(30000, 0.05);
  EXPECT_LT(after, before * 0.5)
      << "CMA must at least halve the modulus dispersion from cold start";
}

TEST(Cma, LongerBlindTrainingKeepsImproving) {
  const double mid = dispersion_after(5000, 0.05);
  const double late = dispersion_after(40000, 0.05);
  EXPECT_LE(late, mid * 1.05) << "dispersion must not regress with training";
}

}  // namespace
}  // namespace hlsw::dsp
