// Tests for the timing-recovery extension: Farrow interpolator accuracy,
// Gardner S-curve polarity, and closed-loop lock onto a static fractional
// timing offset.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "dsp/prbs.h"
#include "dsp/qam.h"
#include "dsp/timing.h"

namespace hlsw::dsp {
namespace {

TEST(Farrow, ExactOnCubicPolynomials) {
  // Cubic Lagrange interpolation reproduces any cubic exactly.
  auto poly = [](double t) { return 0.3 * t * t * t - t * t + 2 * t - 0.5; };
  FarrowInterpolator<std::complex<double>> f;
  // Push samples at t = -2..1 relative to the interpolation interval
  // (push order: oldest first ends deepest).
  for (int t = -2; t <= 1; ++t) f.push({poly(t), -poly(t)});
  for (double mu = 0.0; mu < 1.0; mu += 0.125) {
    const auto v = f.at(mu);
    EXPECT_NEAR(v.real(), poly(-1 + mu), 1e-12) << mu;
    EXPECT_NEAR(v.imag(), -poly(-1 + mu), 1e-12) << mu;
  }
}

TEST(Farrow, EndpointsHitSamples) {
  FarrowInterpolator<std::complex<double>> f;
  f.push({1, 0});
  f.push({2, 0});
  f.push({3, 0});
  f.push({4, 0});  // line: [4,3,2,1] newest-first
  EXPECT_NEAR(f.at(0.0).real(), 2.0, 1e-12) << "mu=0 is the older midpoint";
  EXPECT_NEAR(f.at(1.0).real(), 3.0, 1e-12) << "mu=1 is the newer midpoint";
}

TEST(Gardner, SCurvePolarityOnSinusoid) {
  // Sample a raised-cosine-like pulse train: late sampling gives a positive
  // product with the falling transition. Use a simple BPSK square wave
  // through a half-sine pulse to check the error sign flips with offset.
  auto wave = [](double t) { return std::sin(M_PI * t); };  // one pulse/2
  auto ted_at = [&](double tau) {
    // Strobes at t = k + tau, halves at t = k + tau - 0.5 over alternating
    // symbols +1, -1 -> y(t) = sin(pi t).
    const std::complex<double> strobe(wave(1.0 + tau), 0);
    const std::complex<double> half(wave(0.5 + tau), 0);
    const std::complex<double> prev(wave(0.0 + tau), 0);
    return gardner_ted(strobe, half, prev);
  };
  EXPECT_NEAR(ted_at(0.0), 0.0, 1e-12) << "zero error at perfect timing";
  EXPECT_LT(ted_at(0.1), 0) << "late sampling drives mu down";
  EXPECT_GT(ted_at(-0.1), 0) << "early sampling drives mu up";
}

// Runs the closed loop over a T/2 QPSK stream delayed by `tau`
// half-samples; returns the settled mu (mean of the last 1000 strobes).
double settled_mu(double tau, uint32_t seed) {
  QamConstellation qpsk(4);
  Prbs prbs(Prbs::kPrbs15, seed);
  // Linear-transition pulse: on-time sample = symbol, half-symbol sample =
  // midpoint of adjacent symbols. Piecewise-linear signals interpolate
  // cleanly and give the Gardner TED its textbook S-curve.
  std::vector<std::complex<double>> syms;
  for (int n = 0; n < 12001; ++n) syms.push_back(qpsk.map(prbs.next_word(2)));
  FarrowInterpolator<> delayer;
  TimingLoopConfig cfg;
  cfg.kp = 0.05;
  cfg.ki = 0.001;
  TimingRecovery loop(cfg);
  std::vector<double> mus;
  for (std::size_t n = 0; n + 1 < syms.size(); ++n) {
    const std::complex<double> samples[2] = {syms[n],
                                             0.5 * (syms[n] + syms[n + 1])};
    for (const auto& x : samples) {
      delayer.push(x);
      const auto out = loop.push(delayer.at(tau));
      if (out.strobe) mus.push_back(out.mu);
    }
  }
  // Circular mean (mu is a phase: values straddling the 0/1 wrap must not
  // average to 0.5).
  double cs = 0, sn = 0;
  for (std::size_t i = mus.size() - 1000; i < mus.size(); ++i) {
    cs += std::cos(2 * M_PI * mus[i]);
    sn += std::sin(2 * M_PI * mus[i]);
  }
  double mean = std::atan2(sn, cs) / (2 * M_PI);
  if (mean < 0) mean += 1.0;
  return mean;
}

TEST(TimingLoop, SettledPhaseTracksTheInjectedOffset) {
  // A signal delayed by tau is re-timed by interpolating tau earlier, so
  // the loop must settle at mu = 1 - tau: the loop ESTIMATES tau, it does
  // not merely settle somewhere. (tau = 0 is excluded: its lock point sits
  // exactly on the mu wrap boundary, a degenerate marginal equilibrium.)
  for (double tau : {0.15, 0.35, 0.6, 0.8}) {
    const double mu = settled_mu(tau, 0x51);
    double diff = mu - (1.0 - tau);
    diff -= std::round(diff);  // wrap to [-0.5, 0.5)
    EXPECT_LT(std::abs(diff), 0.05) << "tau=" << tau << " mu=" << mu;
  }
}

TEST(TimingLoop, MuSettlesToAStableLockPoint) {
  // With an interior lock point (tau = 0.35 -> mu = 0.65) the settled mu
  // must stop moving: tiny tail variance.
  QamConstellation qpsk(4);
  Prbs prbs(Prbs::kPrbs15, 0x33);
  std::vector<std::complex<double>> syms;
  for (int n = 0; n < 8001; ++n) syms.push_back(qpsk.map(prbs.next_word(2)));
  FarrowInterpolator<> delayer;
  TimingLoopConfig cfg;
  cfg.kp = 0.05;
  cfg.ki = 0.001;
  TimingRecovery loop(cfg);
  std::vector<double> mus;
  for (std::size_t n = 0; n + 1 < syms.size(); ++n) {
    const std::complex<double> samples[2] = {syms[n],
                                             0.5 * (syms[n] + syms[n + 1])};
    for (const auto& x : samples) {
      delayer.push(x);
      const auto out = loop.push(delayer.at(0.35));
      if (out.strobe) mus.push_back(out.mu);
    }
  }
  double mean = 0, var = 0;
  const std::size_t n = mus.size();
  for (std::size_t i = n - 1000; i < n; ++i) mean += mus[i];
  mean /= 1000;
  for (std::size_t i = n - 1000; i < n; ++i)
    var += (mus[i] - mean) * (mus[i] - mean);
  var /= 1000;
  EXPECT_LT(std::sqrt(var), 0.02) << "mu must stop moving once locked";
  EXPECT_NEAR(mean, 0.65, 0.05);
}

}  // namespace
}  // namespace hlsw::dsp
