// Tests for RRC pulse design: symmetry, unit energy, the Nyquist
// (zero-ISI) property of the matched cascade, and an end-to-end link over
// an RRC-shaped channel.
#include "dsp/pulse.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/channel.h"
#include "dsp/equalizer.h"
#include "dsp/metrics.h"
#include "dsp/prbs.h"

namespace hlsw::dsp {
namespace {

TEST(Rrc, SymmetricAndUnitEnergy) {
  for (double beta : {0.2, 0.35, 0.5, 1.0}) {
    const auto h = rrc_taps(4, 6, beta);
    ASSERT_EQ(h.size(), 2u * 6 * 4 + 1);
    double energy = 0;
    for (std::size_t i = 0; i < h.size(); ++i) {
      energy += h[i] * h[i];
      EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12) << "beta " << beta;
    }
    EXPECT_NEAR(energy, 1.0, 1e-12);
    // Peak at the center.
    for (double v : h) EXPECT_LE(std::abs(v), h[h.size() / 2] + 1e-12);
  }
}

TEST(Rrc, MatchedCascadeIsNyquist) {
  // RRC convolved with itself = raised cosine: zero crossings at every
  // nonzero symbol-spaced offset (no ISI after the matched filter).
  const int sps = 4;
  const auto h = rrc_taps(sps, 8, 0.35);
  const auto rc = convolve(h, h);
  const std::size_t center = rc.size() / 2;
  for (int k = 1; k <= 6; ++k) {
    EXPECT_NEAR(rc[center + static_cast<size_t>(k * sps)], 0.0, 5e-3)
        << "ISI at offset " << k;
    EXPECT_NEAR(rc[center - static_cast<size_t>(k * sps)], 0.0, 5e-3);
  }
  EXPECT_NEAR(rc[center], 1.0, 5e-3) << "unit gain at the symbol point";
}

TEST(Rrc, ConvolveKnownValues) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {3, 4, 5};
  const auto c = convolve(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 3);
  EXPECT_DOUBLE_EQ(c[1], 10);
  EXPECT_DOUBLE_EQ(c[2], 13);
  EXPECT_DOUBLE_EQ(c[3], 10);
}

TEST(Rrc, ShapedChannelLinkConverges) {
  // The reference equalizer must converge over an RRC-shaped multipath
  // channel (longer, smoother impulse response than the default profile).
  EqualizerConfig ecfg;
  ecfg.mapping = QamMapping::kTwosComplement;
  ChannelConfig ccfg;
  ccfg.taps = shaped_channel({{1.0, 0.0}, {0.0, 0.0}, {0.25, 0.1}}, 0.35, 4,
                             1.5);
  ccfg.snr_db = 36;
  ccfg.symbol_energy = QamConstellation(64).average_energy();
  DfeEqualizer eq(ecfg);
  MultipathChannel ch(ccfg);
  Prbs prbs(Prbs::kPrbs15, 0x41);
  MseTracker mse(0.02, 1 << 30);
  std::vector<std::complex<double>> hist;
  // The shaped response delays the signal by span_symbols*2 half-samples;
  // train with a generous decision delay.
  const int delay = 6;
  for (int n = 0; n < 12000; ++n) {
    const auto pt = eq.constellation().map(prbs.next_word(6));
    hist.push_back(pt);
    const auto pair = ch.send(pt);
    const std::complex<double>* tr =
        static_cast<int>(hist.size()) > delay
            ? &hist[hist.size() - 1 - static_cast<size_t>(delay)]
            : nullptr;
    const auto out = eq.step(pair.s0, pair.s1, tr);
    if (n >= 10000) mse.update(out.error);
  }
  EXPECT_LT(std::sqrt(mse.windowed_mse()), 0.5 / 16)
      << "RMS error must stay inside the 64-QAM decision margin";
}

}  // namespace
}  // namespace hlsw::dsp
