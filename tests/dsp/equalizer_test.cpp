// Tests for the floating-point FFE+DFE reference model (Figure 3): identity
// behaviour on a clean channel, convergence on ISI channels under every
// adaptation algorithm, and error-free decision-directed tracking after
// training — the behaviour the paper's case study presumes.
#include "dsp/equalizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/channel.h"
#include "dsp/metrics.h"
#include "dsp/prbs.h"

namespace hlsw::dsp {
namespace {

// Drives symbols from a PRBS through the channel into the equalizer.
struct Link {
  explicit Link(const EqualizerConfig& ecfg, const ChannelConfig& ccfg)
      : eq(ecfg), ch(ccfg), prbs(Prbs::kPrbs15, 0x3FF) {}

  // Returns sent symbol index; fills `out`.
  int step(EqualizerOutput* out, bool training) {
    const int sym = prbs.next_word(eq.constellation().bits_per_symbol());
    const auto point = eq.constellation().map(sym);
    const auto pair = ch.send(point);
    const std::complex<double>* ref = training ? &point : nullptr;
    // The channel has a one-sample group delay of zero; the FFE's center
    // tap initialization absorbs the alignment.
    *out = eq.step(pair.s0, pair.s1, ref);
    return sym;
  }

  DfeEqualizer eq;
  MultipathChannel ch;
  Prbs prbs;
};

TEST(Equalizer, CleanChannelIsDelayedPassThrough) {
  // Ideal channel, adaptation frozen (mu = 0): the center-tap FFE is a pure
  // delay of ffe_taps/2 half-symbols = 2 symbols, so decisions must equal
  // the sent stream delayed by exactly 2 with zero errors.
  EqualizerConfig ecfg;
  ecfg.mu_ffe = 0;
  ecfg.mu_dfe = 0;
  ChannelConfig ccfg;
  ccfg.taps = {{1.0, 0.0}};
  ccfg.snr_db = 300;
  Link link(ecfg, ccfg);
  EqualizerOutput out;
  std::vector<int> sent;
  ErrorCounter errs;
  for (int n = 0; n < 500; ++n) {
    sent.push_back(link.step(&out, false));
    if (n >= 2) errs.update(sent[static_cast<size_t>(n) - 2], out.symbol, 6);
  }
  EXPECT_EQ(errs.symbol_errors(), 0u);
  EXPECT_EQ(errs.symbols(), 498u);
}

// Measures post-convergence windowed MSE on the default ISI channel.
double converged_mse(AdaptAlgo algo, double snr_db, int train = 4000,
                     int measure = 2000) {
  EqualizerConfig ecfg;
  ecfg.algo = algo;
  ChannelConfig ccfg;
  ccfg.snr_db = snr_db;
  ccfg.symbol_energy = QamConstellation(64).average_energy();
  Link link(ecfg, ccfg);
  EqualizerOutput out;
  for (int n = 0; n < train; ++n) link.step(&out, true);
  MseTracker mse(0.02, 1 << 30);
  for (int n = 0; n < measure; ++n) {
    link.step(&out, true);
    mse.update(out.error);
  }
  return mse.windowed_mse();
}

class EqConvergence : public ::testing::TestWithParam<AdaptAlgo> {};

TEST_P(EqConvergence, TrainingDrivesMseBelowSlicerMargin) {
  // 64-QAM decision regions have half-spacing 1/16; the converged RMS error
  // must be well inside that for reliable slicing.
  const double mse = converged_mse(GetParam(), 35.0);
  EXPECT_LT(std::sqrt(mse), 0.5 / 16)
      << "rms error exceeds half the decision distance";
}

INSTANTIATE_TEST_SUITE_P(Algos, EqConvergence,
                         ::testing::Values(AdaptAlgo::kLms, AdaptAlgo::kSignLms,
                                           AdaptAlgo::kNlms),
                         [](const auto& info) {
                           switch (info.param) {
                             case AdaptAlgo::kLms: return "Lms";
                             case AdaptAlgo::kSignLms: return "SignLms";
                             case AdaptAlgo::kSignSign: return "SignSign";
                             case AdaptAlgo::kNlms: return "Nlms";
                           }
                           return "?";
                         });

TEST(Equalizer, MseDecreasesDuringTraining) {
  EqualizerConfig ecfg;  // sign-LMS default, as the paper uses
  ChannelConfig ccfg;
  ccfg.snr_db = 35;
  ccfg.symbol_energy = QamConstellation(64).average_energy();
  Link link(ecfg, ccfg);
  EqualizerOutput out;
  MseTracker early(0.05, 200), late(0.05, 200);
  for (int n = 0; n < 400; ++n) {
    link.step(&out, true);
    if (n >= 200) early.update(out.error);
  }
  for (int n = 0; n < 6000; ++n) {
    link.step(&out, true);
    if (n >= 5800) late.update(out.error);
  }
  EXPECT_LT(late.windowed_mse(), early.windowed_mse() * 0.5)
      << "adaptation should reduce MSE substantially";
}

TEST(Equalizer, DecisionDirectedTrackingIsErrorFreeAtHighSnr) {
  EqualizerConfig ecfg;
  ChannelConfig ccfg;
  ccfg.snr_db = 40;
  ccfg.symbol_energy = QamConstellation(64).average_energy();
  Link link(ecfg, ccfg);
  EqualizerOutput out;
  for (int n = 0; n < 6000; ++n) link.step(&out, true);
  // Switch to decision-directed: the slicer error must stay small, meaning
  // decisions equal what training would have provided.
  MseTracker mse(0.02, 1 << 30);
  for (int n = 0; n < 3000; ++n) {
    link.step(&out, false);
    mse.update(out.error);
  }
  EXPECT_LT(std::sqrt(mse.windowed_mse()), 0.5 / 16);
}

TEST(Equalizer, DfeCancelsPostCursorIsi) {
  // A channel with a strong T-spaced post-cursor that a linear FFE alone
  // would struggle with; the DFE must absorb it.
  EqualizerConfig ecfg;
  ChannelConfig ccfg;
  ccfg.taps = {{1.0, 0.0}, {0.0, 0.0}, {0.5, 0.2}};  // echo at exactly T
  ccfg.snr_db = 38;
  ccfg.symbol_energy = QamConstellation(64).average_energy();
  Link link(ecfg, ccfg);
  EqualizerOutput out;
  for (int n = 0; n < 8000; ++n) link.step(&out, true);
  MseTracker mse(0.02, 1 << 30);
  for (int n = 0; n < 2000; ++n) {
    link.step(&out, true);
    mse.update(out.error);
  }
  EXPECT_LT(std::sqrt(mse.windowed_mse()), 0.5 / 16);
  // The DFE should have picked up a significant tap for the echo.
  double dfe_energy = 0;
  for (const auto& c : link.eq.dfe_coeffs()) dfe_energy += std::norm(c);
  EXPECT_GT(dfe_energy, 0.01) << "DFE did not engage on post-cursor ISI";
}

TEST(Equalizer, ResetRestoresColdStart) {
  EqualizerConfig ecfg;
  DfeEqualizer eq(ecfg);
  eq.step({0.3, 0.1}, {-0.2, 0.05});
  eq.reset();
  const auto& c = eq.ffe_coeffs();
  for (int k = 0; k < ecfg.ffe_taps; ++k) {
    if (k == ecfg.ffe_taps / 2) {
      EXPECT_EQ(c[k], std::complex<double>(1, 0));
    } else {
      EXPECT_EQ(c[k], std::complex<double>(0, 0));
    }
  }
}

}  // namespace
}  // namespace hlsw::dsp
