// Tests for decision-directed carrier phase recovery: static phase lock,
// frequency-offset tracking, and QPSK-assisted acquisition.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dsp/metrics.h"
#include "dsp/phase.h"
#include "dsp/prbs.h"
#include "dsp/qam.h"

namespace hlsw::dsp {
namespace {

// Runs the loop over rotated QPSK symbols; returns residual |theta error|.
double run_loop(double theta, double freq, int symbols,
                CarrierPhaseLoop* loop) {
  QamConstellation qpsk(4);
  Prbs prbs(Prbs::kPrbs15, 0x99);
  double rot = theta;
  for (int n = 0; n < symbols; ++n) {
    const auto a = qpsk.map(prbs.next_word(2));
    const auto y = a * std::exp(std::complex<double>(0, rot));
    const auto yc = loop->correct(y);
    const auto dec = qpsk.slice_point(yc);
    loop->update(yc, dec);
    rot += freq;
  }
  double err = rot - loop->theta();
  while (err > M_PI) err -= 2 * M_PI;
  while (err <= -M_PI) err += 2 * M_PI;
  // Phase ambiguity of pi/2 for QPSK: fold into [-pi/4, pi/4].
  while (err > M_PI / 4) err -= M_PI / 2;
  while (err < -M_PI / 4) err += M_PI / 2;
  return std::abs(err);
}

TEST(PhaseLoop, LocksOnStaticOffsets) {
  for (double theta : {0.1, 0.3, -0.25, 0.6}) {
    CarrierPhaseLoop loop;
    const double err = run_loop(theta, 0.0, 3000, &loop);
    EXPECT_LT(err, 0.02) << "theta=" << theta;
  }
}

TEST(PhaseLoop, TracksFrequencyOffset) {
  CarrierPhaseLoop loop;
  const double err = run_loop(0.2, 0.001, 8000, &loop);
  EXPECT_LT(err, 0.03) << "loop must track 1 mrad/symbol CFO";
  EXPECT_NEAR(loop.freq(), 0.001, 3e-4) << "integrator estimates the CFO";
}

TEST(PhaseLoop, CorrectedSymbolsAreDecodable) {
  QamConstellation qam(64);
  Prbs prbs(Prbs::kPrbs15, 0x7);
  CarrierPhaseLoop loop;
  ErrorCounter errs;
  double rot = 0.15;  // within 64-QAM pull-in range
  for (int n = 0; n < 4000; ++n) {
    const int sym = prbs.next_word(6);
    const auto y = qam.map(sym) * std::exp(std::complex<double>(0, rot));
    const auto yc = loop.correct(y);
    loop.update(yc, qam.slice_point(yc));
    if (n > 500) errs.update(sym, qam.slice(yc), 6);
  }
  EXPECT_LT(errs.ser(), 1e-3)
      << "after acquisition every 64-QAM symbol slices correctly";
}

TEST(PhaseLoop, ZeroErrorLeavesEstimateUntouched) {
  CarrierPhaseLoop loop;
  loop.update({0.25, 0.0}, {0.25, 0.0});
  EXPECT_DOUBLE_EQ(loop.theta(), 0.0);
  loop.update({0, 0}, {0, 0});  // degenerate decision: must not blow up
  EXPECT_DOUBLE_EQ(loop.theta(), 0.0);
}

}  // namespace
}  // namespace hlsw::dsp
