// The acceptance gate of the instrumentation PR: for every Table 1 and
// exploration architecture — and for randomized directive sets from the
// DSE space — profile_run() closes the predicted-vs-measured loop. The
// instrumented cosim (rtl::Simulator plus both vsim backends, which must
// agree counter for counter) yields measured per-loop II and total latency
// that match the predictions: the rtl leg reproduces the schedule model
// exactly, the vsim legs land on the schedule model or the documented
// serialized-emission model (an EXPLAINED deviation, never dropped), every
// measured latency respects the certified feasibility lower bounds, and
// the whole join round-trips through profile_run.json.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "hls/builder.h"
#include "hls/profile.h"
#include "obs/json.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/verilog.h"
#include "vsim/codegen.h"
#include "vsim/harness.h"
#include "vsim/profile.h"

namespace hlsw::vsim {
namespace {

using hls::Directives;
using hls::PortIo;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkStimulus;

// Full three-leg profile run for one directive set; asserts the acceptance
// criteria on the result and returns it for extra checks.
ProfileRunResult run_profile(const Directives& dir, const std::string& name,
                             int symbols) {
  LinkStimulus stim((LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, symbols);
  const ProfileRunResult res =
      profile_run(qam::build_qam_decoder_ir(), dir, TechLibrary::asic90(),
                  vectors);

  EXPECT_TRUE(res.ok()) << name << ": "
                        << (res.cross_issues.empty()
                                ? res.to_json().dump(2)
                                : res.cross_issues.front());
  EXPECT_EQ(res.counters.size(), 3u) << name;
  EXPECT_EQ(res.reports.size(), 3u) << name;
  for (const long long mm : res.output_mismatches) EXPECT_EQ(mm, 0) << name;
  EXPECT_TRUE(res.cross_issues.empty())
      << name << ": " << res.cross_issues.front();

  for (const hls::ProfileReport& rep : res.reports) {
    EXPECT_TRUE(rep.ok) << name << " leg " << rep.source;
    EXPECT_EQ(rep.invocations, symbols) << name << " leg " << rep.source;
    EXPECT_TRUE(rep.bounds_checked) << name;
    EXPECT_TRUE(rep.bounds_respected) << name << " leg " << rep.source;
    EXPECT_GE(rep.measured_active_cycles,
              static_cast<long long>(res.feasibility.bounds.min_latency_cycles))
        << name << " leg " << rep.source;
    if (rep.source == "rtl_sim") {
      // The rtl::Simulator executes the schedule model: measurements match
      // the predictions exactly, with no deviations of any kind.
      EXPECT_TRUE(rep.deviations.empty())
          << name << ": " << rep.deviations.front().what;
      EXPECT_EQ(rep.measured_active_cycles, rep.predicted_latency_cycles)
          << name;
      for (const auto& l : rep.loops) {
        EXPECT_EQ(l.measured_cycles, l.predicted_cycles)
            << name << " loop " << l.label;
        EXPECT_DOUBLE_EQ(l.measured_ii, l.predicted_ii)
            << name << " loop " << l.label;
      }
    } else {
      // The emitted FSM serializes pipelined iterations: legs measuring it
      // land on the emitted model, and any difference from the schedule
      // model must be EXPLAINED (flagged, not dropped, not failing).
      EXPECT_EQ(rep.measured_active_cycles, rep.emitted_latency_cycles)
          << name << " leg " << rep.source;
      for (const auto& d : rep.deviations)
        EXPECT_TRUE(d.explained)
            << name << " leg " << rep.source << ": " << d.what;
      for (const auto& l : rep.loops)
        EXPECT_EQ(l.measured_cycles, l.emitted_cycles)
            << name << " leg " << rep.source << " loop " << l.label;
    }
    // Iteration and memory-port counts are timing-model independent.
    for (const auto& l : rep.loops) {
      if (l.is_loop) {
        EXPECT_EQ(l.measured_iters, l.trip)
            << name << " leg " << rep.source << " loop " << l.label;
      }
    }
    for (const auto& m : rep.mem) {
      EXPECT_EQ(m.measured_reads, m.predicted_reads)
          << name << " leg " << rep.source << " array " << m.name;
      EXPECT_EQ(m.measured_writes, m.predicted_writes)
          << name << " leg " << rep.source << " array " << m.name;
    }
  }
  return res;
}

class ProfileAllArchitectures : public ::testing::TestWithParam<int> {};

TEST_P(ProfileAllArchitectures, MeasuredMatchesPredictedWithinModels) {
  const auto archs = qam::exploration_architectures();
  const auto& a = archs[static_cast<size_t>(GetParam())];
  run_profile(a.dir, a.name, 8);
}

std::string arch_name(const ::testing::TestParamInfo<int>& info) {
  auto n = qam::exploration_architectures()[static_cast<size_t>(info.param)]
               .name;
  std::string out;
  for (char c : n)
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Exploration, ProfileAllArchitectures,
                         ::testing::Range(0, 9), arch_name);

TEST(ProfileRun, Table1Rows) {
  for (const auto& a : qam::table1_architectures())
    run_profile(a.dir, a.name, 6);
}

TEST(ProfileRun, RandomizedDirectiveSets) {
  // Random points from the DSE candidate space, same generator idiom as
  // the equivalence battery. Seeded for replay.
  const char* labels[] = {"ffe",       "dfe",       "ffe_adapt",
                          "dfe_adapt", "ffe_shift", "dfe_shift"};
  std::mt19937 rng(20260805);
  auto pick = [&](auto... v) {
    const int vals[] = {v...};
    return vals[rng() % (sizeof...(v))];
  };
  for (int cfg = 0; cfg < 4; ++cfg) {
    Directives dir;
    dir.clock_period_ns = pick(10, 10, 5);
    const bool merged = (rng() % 2) != 0;
    if (merged) dir.merge_groups = qam::default_merge_groups();
    for (const char* l : labels) {
      const int u = pick(1, 1, 2, 4);
      if (u > 1) dir.loops[l].unroll = u;
    }
    if (merged && (rng() % 2) != 0) {
      dir.loops["ffe"].pipeline_ii = 1;
      dir.loops["ffe_adapt"].pipeline_ii = 1;
      dir.loops["ffe"].unroll = 1;
      dir.loops["ffe_adapt"].unroll = 1;
      dir.loops["dfe"].unroll = 1;
      dir.loops["dfe_adapt"].unroll = 1;
    }
    run_profile(dir, "random#" + std::to_string(cfg), 5);
  }
}

TEST(ProfileRun, DivergentPipelineReportsSerializationAsExplained) {
  // The qam decoder's pipelined loops achieve ii == depth (the accumulator
  // recurrence), so the schedule and emitted timing models coincide there.
  // This recurrence-free pipelined scaler achieves II 1 at depth 2 under a
  // 5 ns clock — the schedule genuinely overlaps iterations, the emitted
  // FSM genuinely serializes them, and the profile loop must tell the two
  // apart: the rtl leg measures the schedule latency with no deviations,
  // the vsim legs measure the serialized latency with EXPLAINED deviations
  // (measured II above scheduled II, bubbles in the stall counters), and
  // the run as a whole still reconciles ok.
  hls::FunctionBuilder fb("scaler8");
  const int a =
      fb.add_array("a", 8, hls::fx(12, 0), false, hls::PortDir::kIn);
  const int c = fb.add_array("c", 8, hls::fx(12, 0), true);
  const int b =
      fb.add_array("b", 8, hls::fx(24, 2), false, hls::PortDir::kOut);
  {
    auto l = fb.loop("scale", 8);
    const int p = l.mul(l.array_read(a, {1, 0}), l.array_read(c, {1, 0}));
    const int q = l.mul(p, l.array_read(a, {1, 0}));
    l.array_write(b, {1, 0}, l.cast(hls::fx(24, 2), q));
  }
  const hls::Function f = fb.build();
  Directives dir;
  dir.clock_period_ns = 5;
  dir.loops["scale"].pipeline_ii = 1;

  std::mt19937_64 rng(20260808);
  std::vector<PortIo> vectors;
  for (int n = 0; n < 5; ++n) {
    PortIo io;
    auto& arr = io.arrays["a"];
    arr.resize(8);
    for (auto& v : arr) {
      v.fw = 0;
      v.re = static_cast<long long>(rng() % 4096) - 2048;
    }
    vectors.push_back(std::move(io));
  }
  const ProfileRunResult res =
      profile_run(f, dir, TechLibrary::asic90(), vectors);

  const auto& rs = res.synthesis.schedule.regions[0];
  ASSERT_GT(rs.ii, 0);
  ASSERT_LT(rs.ii, rs.body.cycles) << "schedule must genuinely overlap";

  EXPECT_TRUE(res.ok()) << res.to_json().dump(2);
  ASSERT_EQ(res.reports.size(), 3u);
  for (const hls::ProfileReport& rep : res.reports) {
    if (rep.source == "rtl_sim") {
      EXPECT_TRUE(rep.deviations.empty())
          << rep.deviations.front().what;
      EXPECT_EQ(rep.measured_active_cycles, rep.predicted_latency_cycles);
      continue;
    }
    EXPECT_EQ(rep.measured_active_cycles, rep.emitted_latency_cycles)
        << rep.source;
    EXPECT_GT(rep.emitted_latency_cycles, rep.predicted_latency_cycles)
        << rep.source;
    EXPECT_FALSE(rep.deviations.empty()) << rep.source;
    bool ii_flagged = false;
    for (const auto& d : rep.deviations) {
      EXPECT_TRUE(d.explained) << rep.source << ": " << d.what;
      ii_flagged = ii_flagged ||
                   d.what.find("measured II") != std::string::npos;
    }
    EXPECT_TRUE(ii_flagged) << rep.source;
    // The serialized bubbles show up in the stall counters.
    bool stalled = false;
    for (const auto& l : rep.loops)
      stalled = stalled || l.measured_stall > 0;
    EXPECT_TRUE(stalled) << rep.source;
  }
}

TEST(ProfileRun, ReportJsonRoundTripsWithEnvelope) {
  const qam::Architecture a = qam::table1_architectures()[0];
  LinkStimulus stim((LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 4);
  const std::string path =
      ::testing::TempDir() + "/profile_run_roundtrip.json";
  ProfileRunOptions opts;
  opts.report_path = path;
  const ProfileRunResult res = profile_run(
      qam::build_qam_decoder_ir(), a.dir, TechLibrary::asic90(), vectors,
      opts);
  ASSERT_TRUE(res.ok());

  std::FILE* fp = std::fopen(path.c_str(), "rb");
  ASSERT_NE(fp, nullptr) << path;
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, fp)) > 0;)
    text.append(buf, n);
  std::fclose(fp);
  std::remove(path.c_str());

  obs::Json doc;
  std::string err;
  ASSERT_TRUE(obs::Json::parse(text, &doc, &err)) << err;
  EXPECT_EQ(doc.find("tool")->as_string(), "hlsw.profile");
  EXPECT_EQ(doc.find("schema_version")->as_int(), 3);
  EXPECT_EQ(doc.find("ok")->as_bool(), true);
  EXPECT_EQ(doc.find("legs")->size(), 3u);
  EXPECT_EQ(doc.find("counter_map")->size(), res.counter_map.size());
  // Every leg embeds its raw counters and its reconciled report.
  for (std::size_t i = 0; i < doc.find("legs")->size(); ++i) {
    const obs::Json& leg = doc.find("legs")->at(i);
    EXPECT_NE(leg.find("source"), nullptr);
    EXPECT_EQ(leg.find("counters")->size(), res.counter_map.size());
    EXPECT_NE(leg.find("report")->find("deviations"), nullptr);
  }
}

TEST(ProfileRun, ReadbackMuxReturnsEveryCounterByIndex) {
  // With readback_mux on, real hardware reads the counters through
  // perf_sel/perf_rdata. Drive the mux in the simulated design and check
  // it returns exactly what the registers hold.
  const qam::Architecture a = qam::table1_architectures()[0];
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                                    TechLibrary::asic90());
  hls::InstrumentOptions inst;
  inst.enabled = true;
  inst.readback_mux = true;
  const auto map = hls::instrument_map(r.transformed, r.schedule, inst);
  rtl::VerilogOptions vopts;
  vopts.instrument = inst;
  const std::string v = rtl::emit_verilog(r.transformed, r.schedule, vopts);
  DutHarness dut(r.transformed, load_design(v, r.transformed.name));

  LinkStimulus stim((LinkConfig()));
  for (const auto& in : qam::link_input_batch(&stim, 3)) dut.run(in);

  const hls::CounterValues direct = dut.read_counters(map);
  EXPECT_GT(direct.values.at("perf_invocations"), 0);
  for (const hls::PerfCounter& c : map) {
    dut.sim().poke("perf_sel",
                   static_cast<unsigned long long>(c.index));
    dut.sim().settle();
    EXPECT_EQ(static_cast<long long>(dut.sim().peek("perf_rdata")),
              direct.values.at(c.name))
        << c.name;
  }
}

// Stateless pipelined design + stimulus for the packed auto-selection
// tests: nothing written survives an invocation, so splitting the vector
// stream into per-lane blocks (each replayed from reset) is equivalent to
// one sequential replay — the precondition the packed compiled leg needs.
hls::Function build_scaler8() {
  hls::FunctionBuilder fb("scaler8");
  const int a =
      fb.add_array("a", 8, hls::fx(12, 0), false, hls::PortDir::kIn);
  const int c = fb.add_array("c", 8, hls::fx(12, 0), true);
  const int b =
      fb.add_array("b", 8, hls::fx(24, 2), false, hls::PortDir::kOut);
  {
    auto l = fb.loop("scale", 8);
    const int p = l.mul(l.array_read(a, {1, 0}), l.array_read(c, {1, 0}));
    const int q = l.mul(p, l.array_read(a, {1, 0}));
    l.array_write(b, {1, 0}, l.cast(hls::fx(24, 2), q));
  }
  return fb.build();
}

std::vector<PortIo> scaler8_vectors(int n) {
  std::mt19937_64 rng(20260808);
  std::vector<PortIo> vectors;
  for (int k = 0; k < n; ++k) {
    PortIo io;
    auto& arr = io.arrays["a"];
    arr.resize(8);
    for (auto& v : arr) {
      v.fw = 0;
      v.re = static_cast<long long>(rng() % 4096) - 2048;
    }
    vectors.push_back(std::move(io));
  }
  return vectors;
}

TEST(ProfileRun, PackedAutoSelectionMatchesScalarBitForBit) {
  const hls::Function f = build_scaler8();
  Directives dir;
  dir.clock_period_ns = 5;
  dir.loops["scale"].pipeline_ii = 1;
  const auto vectors = scaler8_vectors(8);

  ProfileRunOptions packed_opts;
  packed_opts.lanes = 4;
  const ProfileRunResult packed =
      profile_run(f, dir, TechLibrary::asic90(), vectors, packed_opts);
  const ProfileRunResult scalar =
      profile_run(f, dir, TechLibrary::asic90(), vectors);

  ASSERT_TRUE(scalar.ok()) << scalar.to_json().dump(2);
  // ok() on the packed run is the load-bearing assertion: it includes the
  // cross-leg check that the packed compiled leg's lane-SUMMED counters
  // agree bit for bit with the scalar event leg on every counter.
  ASSERT_TRUE(packed.ok()) << packed.to_json().dump(2);

  ASSERT_EQ(packed.counters.size(), 3u);
  // The packed leg prefers the generated lane-major engine when a host
  // toolchain exists and degrades to the interpreted tier otherwise.
  const std::string want_packed_backend =
      codegen_available() ? "packed_codegen" : "compiled";
  ASSERT_EQ(packed.leg_backends[2], want_packed_backend);
  EXPECT_EQ(packed.leg_lanes[2], 4);
  EXPECT_EQ(packed.leg_lanes[0], 1);
  EXPECT_EQ(packed.leg_lanes[1], 1);
  EXPECT_EQ(scalar.leg_lanes[2], 1);

  // Lane-summed counters equal the scalar sequential measurement exactly.
  ASSERT_EQ(scalar.leg_backends[2], "compiled");
  EXPECT_EQ(packed.counters[2].values, scalar.counters[2].values);

  bool noted = false;
  for (const std::string& n : packed.notes)
    noted = noted || n.find("auto-selected the packed backend") !=
                         std::string::npos;
  EXPECT_TRUE(noted);

  // The selection is surfaced in profile_run.json per leg.
  const obs::Json doc = packed.to_json();
  EXPECT_EQ(doc.find("schema_version")->as_int(), 3);
  const obs::Json& legs = *doc.find("legs");
  ASSERT_EQ(legs.size(), 3u);
  EXPECT_EQ(legs.at(2).find("lanes")->as_int(), 4);
  EXPECT_EQ(legs.at(0).find("lanes")->as_int(), 1);
}

TEST(ProfileRun, PackedAutoSelectionRequiresEnoughVectors) {
  const hls::Function f = build_scaler8();
  Directives dir;
  dir.clock_period_ns = 5;
  const auto vectors = scaler8_vectors(3);

  // Lane budget above the vector count: the compiled leg must stay scalar.
  ProfileRunOptions opts;
  opts.lanes = 8;
  const ProfileRunResult res =
      profile_run(f, dir, TechLibrary::asic90(), vectors, opts);
  ASSERT_TRUE(res.ok()) << res.to_json().dump(2);
  ASSERT_EQ(res.counters.size(), 3u);
  EXPECT_EQ(res.leg_backends[2], "compiled");
  EXPECT_EQ(res.leg_lanes[2], 1);
  for (const std::string& n : res.notes)
    EXPECT_EQ(n.find("auto-selected the packed backend"), std::string::npos)
        << n;
}

TEST(ProfileRun, LegSelectionIsHonored) {
  const qam::Architecture a = qam::table1_architectures()[0];
  LinkStimulus stim((LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 3);
  ProfileRunOptions opts;
  opts.run_vsim_event = false;
  opts.run_vsim_compiled = false;
  const ProfileRunResult res = profile_run(
      qam::build_qam_decoder_ir(), a.dir, TechLibrary::asic90(), vectors,
      opts);
  ASSERT_EQ(res.counters.size(), 1u);
  EXPECT_EQ(res.counters[0].source, "rtl_sim");
  EXPECT_TRUE(res.ok());
}

}  // namespace
}  // namespace hlsw::vsim
