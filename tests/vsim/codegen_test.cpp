// Codegen-backend tests that REQUIRE a working host toolchain: the backend
// must actually run natively (no silent degradation to the compiled
// interpreter), the on-disk shared-object cache must hit when the same
// design fingerprint is rebuilt, and profile_run's opt-in codegen leg must
// record which backend executed. Registered under the `codegen` ctest
// label (CMake option HLSW_CODEGEN_TESTS, configure-time toolchain probe);
// each test also GTEST_SKIPs visibly if the toolchain disappeared between
// configure and run, so a toolchain-less machine never reports a silent
// pass. The cache directory is pointed at the build tree via
// HLSW_VSIM_CODEGEN_CACHE (set per test by ctest) and removed by a cleanup
// fixture, so test artifacts never leak into the user's tmp cache.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/verilog.h"
#include "vsim/codegen.h"
#include "vsim/harness.h"
#include "vsim/parser.h"
#include "vsim/profile.h"

namespace hlsw::vsim {
namespace {

using hls::PortIo;
using hls::TechLibrary;

#define REQUIRE_TOOLCHAIN()                                              \
  do {                                                                   \
    if (!codegen_available())                                            \
      GTEST_SKIP() << "no host C++ toolchain (HLSW_CODEGEN_CXX/CXX)";    \
  } while (0)

hls::SynthesisResult synth_merge() {
  return hls::run_synthesis(qam::build_qam_decoder_ir(),
                            qam::table1_architectures()[0].dir,
                            TechLibrary::asic90());
}

TEST(VsimCodegen, BackendRunsNativelyAndMatchesGolden) {
  REQUIRE_TOOLCHAIN();
  const auto r = synth_merge();
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);

  SimConfig cfg;
  cfg.backend = Backend::kCodegen;
  DutHarness dut(r.transformed, design, cfg);
  ASSERT_STREQ(dut.sim().backend(), "codegen")
      << dut.sim().fallback_reason();
  EXPECT_TRUE(dut.sim().fallback_reason().empty());

  hls::Interpreter golden(r.transformed);
  qam::LinkStimulus stim((qam::LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 8);
  const auto want = golden.run_stream(vectors);
  const auto got = dut.run_stream(vectors);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].vars, want[i].vars) << "symbol " << i;
    EXPECT_EQ(got[i].arrays, want[i].arrays) << "symbol " << i;
  }
  // The generated engine keeps the interpreter's accounting contract.
  EXPECT_GT(dut.sim().stats().events, 0);
  EXPECT_GT(dut.sim().stats().nba_commits, 0);
}

TEST(VsimCodegen, GeneratedSourceIsSelfContained) {
  REQUIRE_TOOLCHAIN();
  const auto r = synth_merge();
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);
  const auto plan = compiled_plan(design, nullptr);
  ASSERT_NE(plan, nullptr);
  const std::string src = codegen_source(*plan);
  // The ABI the loader resolves, all emitted with C linkage.
  for (const char* sym : {"hlsw_cg_create", "hlsw_cg_destroy",
                          "hlsw_cg_poke", "hlsw_cg_peek",
                          "hlsw_cg_settle", "hlsw_cg_stats"})
    EXPECT_NE(src.find(sym), std::string::npos) << sym;
  EXPECT_NE(src.find("extern \"C\""), std::string::npos);
}

TEST(VsimCodegen, SharedObjectCacheHitsOnRebuiltFingerprint) {
  REQUIRE_TOOLCHAIN();
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  auto& m = obs::MetricsRegistry::instance();

  const auto r = synth_merge();
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);

  // First build through the normal path (may compile or hit a prior run's
  // on-disk artifact — either way the module loads).
  {
    SimConfig cfg;
    cfg.backend = Backend::kCodegen;
    Simulation sim(load_design(verilog, r.transformed.name), cfg);
    ASSERT_STREQ(sim.backend(), "codegen") << sim.fallback_reason();
  }

  // A FRESH elaboration of the same text bypasses both the design cache
  // and the per-plan memo, so codegen_plan re-fingerprints — and must find
  // the .so on disk instead of invoking the toolchain again.
  const double hits0 = m.counter_value("vsim.codegen.so_cache.hits");
  const double compiles0 = m.counter_value("vsim.codegen.compiles");
  auto fresh = elaborate(parse(verilog), r.transformed.name);
  std::string why;
  const auto mod = codegen_plan(fresh, &why);
  ASSERT_NE(mod, nullptr) << why;
  EXPECT_GE(m.counter_value("vsim.codegen.so_cache.hits"), hits0 + 1.0)
      << "rebuilt fingerprint missed the on-disk cache";
  EXPECT_EQ(m.counter_value("vsim.codegen.compiles"), compiles0)
      << "rebuilt fingerprint re-invoked the toolchain";
  EXPECT_FALSE(mod->fingerprint.empty());
  EXPECT_FALSE(mod->so_path.empty());

  obs::set_enabled(was_enabled);
}

TEST(VsimCodegen, PackedGeneratedSourceIsSelfContained) {
  REQUIRE_TOOLCHAIN();
  const auto r = synth_merge();
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);
  const auto plan = compiled_plan(design, nullptr);
  ASSERT_NE(plan, nullptr);
  const std::string src = packed_codegen_source(*plan, 8);
  for (const char* sym :
       {"hlsw_cg_pk_lanes", "hlsw_cg_pk_create", "hlsw_cg_pk_destroy",
        "hlsw_cg_pk_poke", "hlsw_cg_pk_poke_plane", "hlsw_cg_pk_peek",
        "hlsw_cg_pk_nonzero", "hlsw_cg_pk_settle", "hlsw_cg_pk_stats"})
    EXPECT_NE(src.find(sym), std::string::npos) << sym;
  EXPECT_NE(src.find("constexpr int kL = 8;"), std::string::npos);
}

// The .so cache is keyed by a fingerprint over the generated text; the
// lane count and the packed-vs-scalar ABI are both part of that text, so
// one design at different lane counts (or scalar vs packed) must never
// alias to the same artifact in $HLSW_VSIM_CODEGEN_CACHE.
TEST(VsimCodegen, PackedFingerprintsDoNotCollideAcrossLanesOrAbi) {
  REQUIRE_TOOLCHAIN();
  const auto r = synth_merge();
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);
  std::string why;
  const auto plan = compiled_plan(design, &why);
  ASSERT_NE(plan, nullptr) << why;

  const auto scalar = codegen_plan(design, &why);
  ASSERT_NE(scalar, nullptr) << why;
  const auto pk4 = packed_codegen_plan(plan, 4, &why);
  ASSERT_NE(pk4, nullptr) << why;
  const auto pk8 = packed_codegen_plan(plan, 8, &why);
  ASSERT_NE(pk8, nullptr) << why;

  EXPECT_NE(pk4->fingerprint, pk8->fingerprint);
  EXPECT_NE(pk4->fingerprint, scalar->fingerprint);
  EXPECT_NE(pk8->fingerprint, scalar->fingerprint);
  EXPECT_NE(pk4->so_path, pk8->so_path);
  EXPECT_NE(pk4->so_path, scalar->so_path);
  EXPECT_EQ(pk4->lanes, 4);
  EXPECT_EQ(pk8->lanes, 8);

  // Re-requesting the same (plan, lanes) pair shares the memoized module.
  EXPECT_EQ(packed_codegen_plan(plan, 4, &why).get(), pk4.get());
}

TEST(VsimCodegen, PackedBackendRunsNativelyAndMatchesGolden) {
  REQUIRE_TOOLCHAIN();
  const auto r = synth_merge();
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);
  std::string why;
  const auto plan = compiled_plan(design, &why);
  ASSERT_NE(plan, nullptr) << why;

  SimConfig cfg;
  cfg.backend = Backend::kPackedCodegen;
  constexpr int kLanes = 4;
  PackedDutHarness dut(r.transformed, plan, kLanes, cfg);
  ASSERT_STREQ(dut.backend(), "packed_codegen") << dut.fallback_reason();
  EXPECT_TRUE(dut.fallback_reason().empty());

  qam::LinkStimulus stim((qam::LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 8);
  std::vector<std::vector<PortIo>> streams(kLanes);
  for (std::size_t i = 0; i < vectors.size(); ++i)
    streams[i % kLanes].push_back(vectors[i]);
  const auto got = dut.run_streams(streams);

  hls::Interpreter golden(r.transformed);
  for (int l = 0; l < kLanes; ++l) {
    golden.reset();
    const auto want = golden.run_stream(streams[static_cast<std::size_t>(l)]);
    ASSERT_EQ(got[static_cast<std::size_t>(l)].size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(l)][i].vars, want[i].vars)
          << "lane " << l << " symbol " << i;
      EXPECT_EQ(got[static_cast<std::size_t>(l)][i].arrays, want[i].arrays)
          << "lane " << l << " symbol " << i;
    }
  }
  EXPECT_GT(dut.sim().stats().events, 0);
  EXPECT_GT(dut.sim().stats().nba_commits, 0);
}

TEST(VsimCodegen, ProfileRunRecordsCodegenLegAndBackend) {
  REQUIRE_TOOLCHAIN();
  const qam::Architecture a = qam::table1_architectures()[0];
  qam::LinkStimulus stim((qam::LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 3);

  ProfileRunOptions opts;
  opts.run_rtl_sim = false;
  opts.run_vsim_event = false;
  opts.run_vsim_compiled = true;
  opts.run_vsim_codegen = true;
  const ProfileRunResult res =
      profile_run(qam::build_qam_decoder_ir(), a.dir, TechLibrary::asic90(),
                  vectors, opts);
  EXPECT_TRUE(res.ok()) << (res.cross_issues.empty()
                                ? "leg deviation"
                                : res.cross_issues.front());
  ASSERT_EQ(res.leg_backends.size(), 2u);
  EXPECT_EQ(res.leg_backends[0], "compiled");
  EXPECT_EQ(res.leg_backends[1], "codegen");
  EXPECT_EQ(res.leg_fallbacks[1], "");

  // The serialized report names the backend per leg, so a downgrade would
  // be visible in profile_run.json, not only in counters.
  const std::string json = res.to_json().dump();
  EXPECT_NE(json.find("\"backend\":\"codegen\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"fallback_reason\""), std::string::npos);
}

}  // namespace
}  // namespace hlsw::vsim
