// Parallel vsim_sweep on the compiled cycle-based backend: the ONE
// elaborated Design and the ONE memoized execution plan (compiled_plan's
// process-wide cache) are shared read-only across worker threads while
// every shard builds its own CompiledSim state. Serial and parallel sweeps
// must agree byte for byte, and the compiled sweep must agree with the
// event-driven sweep of the same design. This file is also compiled into a
// ThreadSanitizer variant (vsim_compiled_sweep_test_tsan), which is what
// actually certifies the shared-plan claim.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "hls/builder.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "hls/verify.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/verilog.h"
#include "util/thread_pool.h"
#include "vsim/compile.h"
#include "vsim/harness.h"

namespace hlsw::vsim {
namespace {

using hls::CosimResult;
using hls::Directives;
using hls::FxValue;
using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;

// Stateless squared-MAC (the sweep_test idiom): acc is rewritten from a
// constant every invocation, so vector blocks are independent and the
// sweep may shard freely.
hls::Function build_stateless_mac() {
  hls::FunctionBuilder fb("sqmac");
  const int x = fb.add_array("x", 16, hls::fx(10, 0), false,
                             hls::PortDir::kIn);
  const int acc =
      fb.add_var("acc", hls::fx(28, 8), false, hls::PortDir::kOut);
  {
    auto b0 = fb.block("init");
    b0.var_write(acc, b0.cnst(hls::fx(28, 8), 0.0));
  }
  {
    auto l = fb.loop("mac", 16);
    const int xv = l.array_read(x, {1, 0});
    l.var_write(acc, l.add(l.var_read(acc), l.mul(xv, xv)));
  }
  return fb.build();
}

std::vector<PortIo> random_mac_vectors(int n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<PortIo> out;
  for (int i = 0; i < n; ++i) {
    PortIo io;
    std::vector<FxValue> xs(16);
    for (auto& e : xs) {
      e.fw = 10;
      e.re = static_cast<int>(rng() % 1024) - 512;
    }
    io.arrays["x"] = xs;
    out.push_back(std::move(io));
  }
  return out;
}

TEST(VsimCompiledSweep, SerialAndParallelCompiledSweepsAgree) {
  const hls::Function f = build_stateless_mac();
  Directives dir;
  dir.loops["mac"].pipeline_ii = 1;
  const auto r = run_synthesis(f, dir, TechLibrary::asic90());

  const auto vectors = random_mac_vectors(96, 11);
  const SimConfig compiled_cfg{};  // compiled defaults to true
  const CosimResult serial =
      vsim_sweep(r.transformed, r.schedule, vectors,
                 {.threads = 0, .block_size = 16}, compiled_cfg);
  const CosimResult parallel =
      vsim_sweep(r.transformed, r.schedule, vectors,
                 {.threads = 4, .block_size = 16}, compiled_cfg);
  EXPECT_TRUE(serial.ok())
      << (serial.mismatches.empty() ? "" : serial.mismatches.front());
  EXPECT_TRUE(parallel.ok());
  EXPECT_EQ(serial.vectors, 96u);
  EXPECT_EQ(serial.blocks, 6u);
  EXPECT_EQ(parallel.blocks, serial.blocks);
  EXPECT_EQ(parallel.mismatches, serial.mismatches);

  // An externally owned pool shared across sweeps behaves the same.
  util::ThreadPool pool(3);
  const CosimResult pooled =
      vsim_sweep(r.transformed, r.schedule, vectors,
                 {.block_size = 16, .pool = &pool}, compiled_cfg);
  EXPECT_TRUE(pooled.ok());
  EXPECT_EQ(pooled.blocks, serial.blocks);
}

TEST(VsimCompiledSweep, CompiledAndEventSweepsAgreeOnStatefulDecoder) {
  // The QAM decoder carries state across symbols; block_size >= vectors
  // keeps one sequential replay from reset. Both backends execute the same
  // parsed text against the same interpreter golden — and both must pass.
  const qam::Architecture arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  qam::LinkStimulus stim((qam::LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 20);
  const hls::CosimOptions opts{.threads = 2,
                               .block_size = vectors.size()};
  SimConfig event_cfg;
  event_cfg.compiled = false;
  const CosimResult compiled =
      vsim_sweep(r.transformed, r.schedule, vectors, opts, SimConfig{});
  const CosimResult event =
      vsim_sweep(r.transformed, r.schedule, vectors, opts, event_cfg);
  EXPECT_TRUE(compiled.ok())
      << (compiled.mismatches.empty() ? "" : compiled.mismatches.front());
  EXPECT_TRUE(event.ok())
      << (event.mismatches.empty() ? "" : event.mismatches.front());
  EXPECT_EQ(compiled.vectors, 20u);
  EXPECT_EQ(compiled.blocks, 1u);
  EXPECT_EQ(event.blocks, compiled.blocks);
  EXPECT_EQ(event.mismatches, compiled.mismatches);
}

TEST(VsimCompiledSweep, ConcurrentConstructionSharesOnePlan) {
  // Many threads racing Simulation construction on the same Design must
  // all land on the compiled backend with one memoized plan between them
  // (compiled_plan's cache) — and every simulation must compute the same
  // answer. This is the test TSan watches for plan-cache races.
  const hls::Function f = build_stateless_mac();
  const auto r = run_synthesis(f, Directives(), TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  auto design = load_design(verilog, r.transformed.name);

  const auto plan = compiled_plan(design, nullptr);
  ASSERT_NE(plan, nullptr);

  const auto vectors = random_mac_vectors(4, 3);
  hls::Interpreter interp(r.transformed);
  const auto golden = interp.run_stream(vectors);

  constexpr int kThreads = 8;
  std::vector<std::string> backends(kThreads);
  std::vector<std::vector<PortIo>> outs(kThreads);
  {
    std::vector<std::thread> ts;
    ts.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        DutHarness h(r.transformed, design);
        backends[t] = h.sim().backend();
        outs[t] = h.run_stream(vectors);
      });
    }
    for (auto& th : ts) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(backends[t], "compiled") << "thread " << t;
    ASSERT_EQ(outs[t].size(), golden.size()) << "thread " << t;
    for (std::size_t i = 0; i < golden.size(); ++i) {
      EXPECT_EQ(outs[t][i].vars.at("acc").re, golden[i].vars.at("acc").re)
          << "thread " << t << " vector " << i;
    }
  }
  // The memo handed back the same plan it compiled up front.
  EXPECT_EQ(compiled_plan(design, nullptr).get(), plan.get());
}

}  // namespace
}  // namespace hlsw::vsim
