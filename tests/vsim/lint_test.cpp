// The vsim lint pass: each rule firing on a minimal offender, each
// documented exemption honored, and — the structural guarantee this PR
// adds — rtl::emit_verilog output linting CLEAN for every Table 1 and
// exploration architecture. Before the lint pass the emitter shipped
// dead pipeline registers and an unsized `k + 1` increment; this test is
// what keeps those from coming back.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "rtl/verilog.h"
#include "vsim/harness.h"
#include "vsim/lint.h"

namespace hlsw::vsim {
namespace {

std::vector<LintIssue> lint_src(const std::string& src,
                                const std::string& top) {
  return lint(*load_design(src, top));
}

TEST(VsimLint, CleanDesignReportsClean) {
  const auto issues = lint_src(R"(
module m (input wire clk, input wire signed [7:0] a,
          output reg signed [7:0] q);
  wire signed [7:0] t0;
  assign t0 = a + 8'sd1;
  always @(posedge clk) q <= t0;
endmodule
)",
                               "m");
  EXPECT_TRUE(issues.empty()) << lint_report(issues);
  EXPECT_EQ(lint_report(issues), "clean");
}

TEST(VsimLint, FlagsAssignedButNeverReadReg) {
  const auto issues = lint_src(R"(
module m (input wire clk, input wire signed [7:0] a);
  reg signed [7:0] dead;
  always @(posedge clk) dead <= a;
endmodule
)",
                               "m");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "never-read");
  EXPECT_EQ(issues[0].signal, "dead");
}

TEST(VsimLint, OutputPortsAreNotDeadState) {
  // A top-level output is read by the outside world by definition.
  const auto issues = lint_src(R"(
module m (input wire clk, output reg signed [7:0] q);
  always @(posedge clk) q <= 8'sd1;
endmodule
)",
                               "m");
  EXPECT_TRUE(issues.empty()) << lint_report(issues);
}

TEST(VsimLint, FlagsWidthTruncation) {
  const auto issues = lint_src(R"(
module m (input wire clk, input wire signed [15:0] wide,
          output reg signed [7:0] q);
  always @(posedge clk) q <= wide;
endmodule
)",
                               "m");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "width-truncation");
  EXPECT_EQ(issues[0].signal, "q");
}

TEST(VsimLint, ConstantsThatFitAreNotTruncation) {
  // `state <= 35` (unsized 32-bit literal into reg [15:0]) is idiomatic.
  const auto issues = lint_src(R"(
module m (input wire clk, output reg signed [7:0] q);
  reg [15:0] state;
  always @(posedge clk) begin
    state <= 35;
    q <= -8'sd128;
    if (state == 0) q <= 8'sd0;
  end
endmodule
)",
                               "m");
  EXPECT_TRUE(issues.empty()) << lint_report(issues);
}

TEST(VsimLint, FlagsMultiplyDrivenNets) {
  const auto two_assigns = lint_src(R"(
module m (input wire a, output wire q);
  assign q = a;
  assign q = !a;
endmodule
)",
                                    "m");
  ASSERT_EQ(two_assigns.size(), 1u);
  EXPECT_EQ(two_assigns[0].rule, "multi-driven");
  EXPECT_EQ(two_assigns[0].signal, "q");

  const auto two_procs = lint_src(R"(
module m (input wire clk, input wire a, output reg sink);
  reg r;
  always @(posedge clk) r <= a;
  always @(negedge clk) r <= !a;
  always @(posedge clk) sink <= r;
endmodule
)",
                                  "m");
  ASSERT_EQ(two_procs.size(), 1u);
  EXPECT_EQ(two_procs[0].rule, "multi-driven");
  EXPECT_EQ(two_procs[0].signal, "r");
}

TEST(VsimLint, TaskArgumentSignalsAreExemptFromMultiDriven) {
  // Task inlining synthesizes one argument signal written by every call
  // site — even call sites in different processes. That is the inlining
  // mechanism, not a multiple-driver bug.
  const auto issues = lint_src(R"(
module m;
  task show(input integer v);
    begin
      $display("v=%0d", v);
    end
  endtask
  initial show(1);
  initial show(2);
endmodule
)",
                               "m");
  EXPECT_TRUE(issues.empty()) << lint_report(issues);
}

TEST(VsimLint, IssuesAreOrderedByRule) {
  const auto issues = lint_src(R"(
module m (input wire clk, input wire signed [15:0] wide);
  reg signed [7:0] dead;
  wire w;
  assign w = clk;
  assign w = !clk;
  always @(posedge clk) dead <= wide;
endmodule
)",
                               "m");
  ASSERT_EQ(issues.size(), 3u);
  EXPECT_EQ(issues[0].rule, "never-read");
  EXPECT_EQ(issues[1].rule, "width-truncation");
  EXPECT_EQ(issues[2].rule, "multi-driven");
}

TEST(VsimLint, PerfCountersAreExemptFromNeverRead) {
  // Instrumentation counters are write-only inside the module by design
  // (read back via harness peek or the perf_rdata mux); the reserved
  // perf_ namespace is exempt, a sibling reg with any other name is not.
  const auto issues = lint_src(R"(
module m (input wire clk, input wire signed [7:0] a);
  reg [31:0] perf_invocations;
  reg signed [7:0] dead;
  always @(posedge clk) begin
    perf_invocations <= perf_invocations + 32'd1;
    dead <= a;
  end
endmodule
)",
                               "m");
  ASSERT_EQ(issues.size(), 1u) << lint_report(issues);
  EXPECT_EQ(issues[0].rule, "never-read");
  EXPECT_EQ(issues[0].signal, "dead");
}

TEST(VsimLint, InstrumentedEmissionLintsClean) {
  // The real thing the exemption exists for: an instrumented emitted
  // module (no readback mux, so every counter is genuinely write-only)
  // must lint clean — and so must the same module with the mux, where the
  // counters ARE read.
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(),
                                    qam::table1_architectures()[0].dir,
                                    hls::TechLibrary::asic90());
  rtl::VerilogOptions opts;
  opts.instrument.enabled = true;
  for (const bool mux : {false, true}) {
    opts.instrument.readback_mux = mux;
    const std::string v = rtl::emit_verilog(r.transformed, r.schedule, opts);
    const auto issues = lint(*load_design(v, r.transformed.name));
    EXPECT_TRUE(issues.empty())
        << (mux ? "mux" : "no mux") << ":\n" << lint_report(issues);
  }
}

// ---- Structural guarantee: the emitter lints clean ------------------------

class EmitterLintsClean : public ::testing::TestWithParam<int> {};

TEST_P(EmitterLintsClean, AllExplorationArchitectures) {
  const auto archs = qam::exploration_architectures();
  const auto& a = archs[static_cast<size_t>(GetParam())];
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                                    hls::TechLibrary::asic90());
  const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(v, r.transformed.name);
  const auto issues = lint(*design);
  EXPECT_TRUE(issues.empty()) << a.name << ":\n" << lint_report(issues);
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, EmitterLintsClean,
                         ::testing::Range(0, 9));

TEST(VsimLint, Table1ArchitecturesLintClean) {
  for (const auto& a : qam::table1_architectures()) {
    const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                                      hls::TechLibrary::asic90());
    const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
    const auto issues = lint(*load_design(v, r.transformed.name));
    EXPECT_TRUE(issues.empty()) << a.name << ":\n" << lint_report(issues);
  }
}

}  // namespace
}  // namespace hlsw::vsim
