// Lane-packing semantics: running N stimulus streams through one PackedSim
// must be bit-identical to N scalar CompiledSim runs of the same streams —
// values, array state AND the event/NBA accounting summed over lanes. The
// stimulus is deliberately divergent (a data-dependent if, a case dispatch
// and per-lane memory indices all disagree across lanes), so the masked
// context-splitting path is exercised, not just lockstep execution. The
// sweep-level variant proves vsim_sweep with lanes > 1 returns the same
// CosimResult (ok, blocks, mismatch list) as the scalar sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hls/report.h"
#include "hls/verify.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "vsim/codegen.h"
#include "vsim/compile.h"
#include "vsim/harness.h"
#include "vsim/pack.h"

namespace hlsw::vsim {
namespace {

using hls::PortIo;

// A small FSM whose control flow depends on the data: lanes fed different
// x/y take different branches of the if AND different case arms, write
// different memory elements, and flip q[0] every cycle (a bit-select NBA).
const char* kDivergeSrc = R"(
module diverge(input wire clk, input wire rst,
               input wire [7:0] x, input wire [7:0] y,
               output reg [15:0] q, output reg [7:0] mem_out);
  reg [7:0] mem [0:7];
  reg [2:0] state;
  wire [15:0] sum;
  assign sum = q + {8'b0, x};
  always @(posedge clk) begin
    if (rst) begin
      q <= 0; state <= 0; mem_out <= 0;
    end else begin
      case (state)
        0: begin
          if (x > 8'd5) q <= sum;
          else q <= q - 16'd1;
          state <= 1;
        end
        1: begin
          mem[x[2:0]] <= y;
          state <= 2;
        end
        2: begin
          mem_out <= mem[y[2:0]];
          if (y[0]) state <= 0;
          else state <= 1;
        end
        default: state <= 0;
      endcase
      q[0] <= ~q[0];
    end
  end
endmodule
)";

// Deterministic per-lane stimulus that disagrees across lanes every step.
std::uint64_t stim(int lane, int step, int which) {
  return static_cast<std::uint64_t>((lane * 37 + step * 13 + which * 7) %
                                    256);
}

TEST(PackedLanes, DivergentStimulusBitIdenticalToScalarRuns) {
  auto design = load_design(kDivergeSrc, "diverge");
  std::string why;
  auto plan = compiled_plan(design, &why);
  ASSERT_NE(plan, nullptr) << why;

  const int kLanes = 8, kSteps = 50;
  const int h_clk = design->find("clk"), h_rst = design->find("rst");
  const int h_x = design->find("x"), h_y = design->find("y");
  const int h_q = design->find("q"), h_mo = design->find("mem_out");
  const int h_mem = design->find("mem");

  // Scalar reference: one fresh CompiledSim per lane.
  std::vector<std::uint64_t> sq(kLanes), smo(kLanes);
  std::vector<std::vector<std::uint64_t>> smem(
      kLanes, std::vector<std::uint64_t>(8));
  long long sum_ev = 0, sum_nba = 0;
  for (int l = 0; l < kLanes; ++l) {
    CompiledSim sim(plan, {});
    auto tick = [&] {
      sim.poke(h_clk, 1);
      sim.settle();
      sim.poke(h_clk, 0);
      sim.settle();
    };
    sim.poke(h_clk, 0);
    sim.poke(h_rst, 1);
    tick();
    sim.poke(h_rst, 0);
    for (int s = 0; s < kSteps; ++s) {
      sim.poke(h_x, stim(l, s, 0));
      sim.poke(h_y, stim(l, s, 1));
      tick();
    }
    sq[static_cast<std::size_t>(l)] = sim.peek(h_q);
    smo[static_cast<std::size_t>(l)] = sim.peek(h_mo);
    for (int e = 0; e < 8; ++e)
      smem[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] =
          sim.peek_elem(h_mem, e);
    sum_ev += sim.stats().events;
    sum_nba += sim.stats().nba_commits;
  }

  // Packed run of the same streams, per-lane pokes through one engine.
  PackedSim ps(plan, kLanes, {});
  auto ptick = [&] {
    ps.poke(h_clk, 1, ps.full_mask());
    ps.settle();
    ps.poke(h_clk, 0, ps.full_mask());
    ps.settle();
  };
  ps.poke(h_clk, 0, ps.full_mask());
  ps.poke(h_rst, 1, ps.full_mask());
  ptick();
  ps.poke(h_rst, 0, ps.full_mask());
  for (int s = 0; s < kSteps; ++s) {
    for (int l = 0; l < kLanes; ++l) {
      ps.poke_lane(h_x, l, stim(l, s, 0));
      ps.poke_lane(h_y, l, stim(l, s, 1));
    }
    ptick();
  }

  for (int l = 0; l < kLanes; ++l) {
    EXPECT_EQ(ps.peek(h_q, l), sq[static_cast<std::size_t>(l)])
        << "lane " << l << " q diverged";
    EXPECT_EQ(ps.peek(h_mo, l), smo[static_cast<std::size_t>(l)])
        << "lane " << l << " mem_out diverged";
    for (int e = 0; e < 8; ++e)
      EXPECT_EQ(ps.peek_elem(h_mem, e, l),
                smem[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)])
          << "lane " << l << " mem[" << e << "] diverged";
  }
  // The accounting is part of the contract: packed stats are the SUM of
  // the per-lane scalar stats (delta_cycles is shared, so excluded).
  EXPECT_EQ(ps.stats().events, sum_ev);
  EXPECT_EQ(ps.stats().nba_commits, sum_nba);
  // The stimulus disagrees across lanes, so the masked-context machinery
  // must actually have split — lockstep-only execution would be vacuous.
  EXPECT_GT(ps.divergence_splits(), 0);
}

// The generated lane-major engine (packed_codegen) must be bit-identical
// to the interpreted context-splitting engine — not just outputs and array
// state, but the full accounting contract: events, NBA commits, executed
// instructions AND the divergence-split count. Any drift here means the
// mask-predicated generated code resolves branches differently than the
// interpreter's explicit context splits.
TEST(PackedLanes, PackedCodegenBitIdenticalToInterpretedOracle) {
  if (!codegen_available())
    GTEST_SKIP() << "no host C++ toolchain (HLSW_CODEGEN_CXX/CXX)";
  auto design = load_design(kDivergeSrc, "diverge");
  std::string why;
  auto plan = compiled_plan(design, &why);
  ASSERT_NE(plan, nullptr) << why;

  const int kLanes = 8, kSteps = 50;
  const int h_clk = design->find("clk"), h_rst = design->find("rst");
  const int h_x = design->find("x"), h_y = design->find("y");
  const int h_q = design->find("q"), h_mo = design->find("mem_out");
  const int h_mem = design->find("mem");

  // Force each tier explicitly: kCompiled pins the interpreted packed
  // engine as the oracle; kPackedCodegen demands the generated one (a
  // fallback would show up as backend() != "packed_codegen").
  SimConfig interp_cfg;
  interp_cfg.backend = Backend::kCompiled;
  PackedSim oracle(plan, kLanes, interp_cfg);

  auto mod = packed_codegen_plan(plan, kLanes, &why);
  ASSERT_NE(mod, nullptr) << why;
  SimConfig cg_cfg;
  cg_cfg.backend = Backend::kPackedCodegen;
  PackedCodegenSim cg(mod, cg_cfg);
  ASSERT_STREQ(cg.backend(), "packed_codegen");

  auto drive = [&](PackedEngine& ps) {
    auto ptick = [&] {
      ps.poke(h_clk, 1, ps.full_mask());
      ps.settle();
      ps.poke(h_clk, 0, ps.full_mask());
      ps.settle();
    };
    ps.poke(h_clk, 0, ps.full_mask());
    ps.poke(h_rst, 1, ps.full_mask());
    ptick();
    ps.poke(h_rst, 0, ps.full_mask());
    for (int s = 0; s < kSteps; ++s) {
      for (int l = 0; l < kLanes; ++l) {
        ps.poke_lane(h_x, l, stim(l, s, 0));
        ps.poke_lane(h_y, l, stim(l, s, 1));
      }
      ptick();
    }
  };
  drive(oracle);
  drive(cg);

  for (int l = 0; l < kLanes; ++l) {
    EXPECT_EQ(cg.peek(h_q, l), oracle.peek(h_q, l))
        << "lane " << l << " q diverged from the interpreted oracle";
    EXPECT_EQ(cg.peek(h_mo, l), oracle.peek(h_mo, l))
        << "lane " << l << " mem_out diverged from the interpreted oracle";
    for (int e = 0; e < 8; ++e)
      EXPECT_EQ(cg.peek_elem(h_mem, e, l), oracle.peek_elem(h_mem, e, l))
          << "lane " << l << " mem[" << e << "] diverged";
  }
  EXPECT_EQ(cg.peek_nonzero_mask(h_q), oracle.peek_nonzero_mask(h_q));
  EXPECT_EQ(cg.stats().events, oracle.stats().events);
  EXPECT_EQ(cg.stats().nba_commits, oracle.stats().nba_commits);
  EXPECT_EQ(cg.stats().instrs, oracle.stats().instrs);
  EXPECT_EQ(cg.divergence_splits(), oracle.divergence_splits());
  EXPECT_GT(cg.divergence_splits(), 0);
}

TEST(PackedLanes, PlanePokesAndNonzeroMaskMatchLaneAccessors) {
  auto design = load_design(kDivergeSrc, "diverge");
  auto plan = compiled_plan(design, nullptr);
  ASSERT_NE(plan, nullptr);
  const int h_x = design->find("x"), h_clk = design->find("clk");

  const int kLanes = 5;  // odd count: the partial-mask paths
  PackedSim a(plan, kLanes, {});
  PackedSim b(plan, kLanes, {});
  std::uint64_t plane[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    plane[l] = stim(l, 3, 0);
    a.poke_lane(h_x, l, plane[l]);
  }
  b.poke_plane(h_x, plane, b.full_mask());
  a.poke(h_clk, 1, a.full_mask());
  b.poke(h_clk, 1, b.full_mask());
  a.settle();
  b.settle();

  std::uint64_t want_nz = 0;
  for (int l = 0; l < kLanes; ++l) {
    EXPECT_EQ(a.peek(h_x, l), b.peek(h_x, l)) << "lane " << l;
    if (a.peek(h_x, l) != 0) want_nz |= 1ULL << l;
  }
  EXPECT_EQ(b.peek_nonzero_mask(h_x), want_nz);
  EXPECT_EQ(a.stats().events, b.stats().events);
}

// Sweep-level contract: lanes > 1 must be invisible in the CosimResult.
TEST(PackedLanes, PackedSweepMatchesScalarSweepOnDecoder) {
  const qam::Architecture arch = qam::table1_architectures()[0];
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                                    hls::TechLibrary::asic90());
  qam::LinkStimulus s((qam::LinkConfig()));
  const auto vectors = qam::link_input_batch(&s, 70);

  // 7 blocks of 10 symbols over 5 lanes: one full batch plus a partial
  // one, so the tail path (fewer blocks than lanes) is covered too.
  const hls::CosimResult scalar = vsim_sweep(
      r.transformed, r.schedule, vectors, {.block_size = 10, .lanes = 1});
  const hls::CosimResult packed = vsim_sweep(
      r.transformed, r.schedule, vectors, {.block_size = 10, .lanes = 5});
  EXPECT_TRUE(scalar.ok())
      << (scalar.mismatches.empty() ? "" : scalar.mismatches.front());
  EXPECT_TRUE(packed.ok())
      << (packed.mismatches.empty() ? "" : packed.mismatches.front());
  EXPECT_EQ(packed.vectors, scalar.vectors);
  EXPECT_EQ(packed.blocks, scalar.blocks);
  EXPECT_EQ(packed.mismatches, scalar.mismatches);

  // Thread-pooled packed sweep: batches shard across workers, results must
  // still merge deterministically.
  const hls::CosimResult pooled =
      vsim_sweep(r.transformed, r.schedule, vectors,
                 {.threads = 2, .block_size = 10, .lanes = 4});
  EXPECT_TRUE(pooled.ok());
  EXPECT_EQ(pooled.blocks, scalar.blocks);
  EXPECT_EQ(pooled.mismatches, scalar.mismatches);
}

TEST(PackedLanes, PackedSweepCountsDivergenceSplitsInMetrics) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  auto& m = obs::MetricsRegistry::instance();
  const double splits0 =
      m.counter_value("vsim.packed.divergence_splits");

  auto design = load_design(kDivergeSrc, "diverge");
  auto plan = compiled_plan(design, nullptr);
  ASSERT_NE(plan, nullptr);
  {
    PackedSim ps(plan, 4, {});
    const int h_clk = design->find("clk"), h_rst = design->find("rst");
    const int h_x = design->find("x"), h_y = design->find("y");
    ps.poke(h_rst, 1, ps.full_mask());
    ps.poke(h_clk, 1, ps.full_mask());
    ps.settle();
    ps.poke(h_clk, 0, ps.full_mask());
    ps.settle();
    ps.poke(h_rst, 0, ps.full_mask());
    for (int s = 0; s < 10; ++s) {
      for (int l = 0; l < 4; ++l) {
        ps.poke_lane(h_x, l, stim(l, s, 0));
        ps.poke_lane(h_y, l, stim(l, s, 1));
      }
      ps.poke(h_clk, 1, ps.full_mask());
      ps.settle();
      ps.poke(h_clk, 0, ps.full_mask());
      ps.settle();
    }
    EXPECT_GT(ps.divergence_splits(), 0);
  }  // metrics flush on destruction
  EXPECT_GT(m.counter_value("vsim.packed.divergence_splits"), splits0);
  obs::set_enabled(was_enabled);
}

}  // namespace
}  // namespace hlsw::vsim
