// The acceptance gate of the compiled-, codegen- and packed-codegen-backend
// PRs: for every exploration and Table 1 architecture — and randomized
// directive sets — the emitted Verilog TEXT executed by the compiled
// cycle-based backend, the generated-native codegen backend and the
// lane-major packed-codegen backend must match the event-driven backend,
// the untimed interpreter golden and the cycle-accurate rtl::Simulator
// bit-for-bit (cosim_sweep_nway over all six legs), and the VCD bytes a
// dumping session records must be identical between the event kernel and
// the compiled interpreter. The compiled leg must actually BE compiled:
// every architecture's emitted module is required to cycle-schedule with no
// fallback. The codegen legs run natively where a host toolchain exists and
// silently degrade to the compiled interpreter / interpreted packed engine
// otherwise — either way they participate, so the battery passes on
// toolchain-less machines too (the codegen-REQUIRED assertions live in
// codegen_test.cpp).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/report.h"
#include "hls/verify.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"
#include "vsim/codegen.h"
#include "vsim/harness.h"
#include "vsim/pack.h"

namespace hlsw::vsim {
namespace {

using hls::Directives;
using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkStimulus;

// Six-way differential for one directive set: golden interpreter,
// rtl::Simulator, vsim-event, vsim-compiled, vsim-codegen and
// vsim-packed-codegen all execute the same link symbols (one sequential
// block — the decoder is stateful). Any divergence fails named by leg. The
// shared elaborated Design is load_design()ed ONCE and every vsim leg
// reuses it — the battery never re-parses per leg. The packed leg runs the
// block twice through a 2-lane engine and returns lane 0, so lane masking
// itself is inside the differential, not just the scalar ABI.
void run_six_way_battery(const Directives& dir, const std::string& name,
                         int symbols) {
  const auto r =
      run_synthesis(qam::build_qam_decoder_ir(), dir, TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);

  // The compiled backend must take this design — fallback would silently
  // degrade the whole suite to event-vs-event.
  {
    Simulation probe(design);
    ASSERT_STREQ(probe.backend(), "compiled")
        << name << ": fell back: " << probe.fallback_reason();
  }
  // Where a toolchain exists the codegen leg must actually run natively;
  // without one it degrades to the compiled interpreter with a typed
  // reason — the leg still participates below either way.
  SimConfig codegen_cfg;
  codegen_cfg.backend = Backend::kCodegen;
  {
    Simulation probe(design, codegen_cfg);
    if (codegen_available())
      ASSERT_STREQ(probe.backend(), "codegen")
          << name << ": fell back: " << probe.fallback_reason();
    else
      ASSERT_STREQ(probe.backend(), "compiled") << name;
  }
  // The packed leg needs the shared compiled plan; with a toolchain it must
  // run the generated lane-major engine, without one the interpreted packed
  // tier — both stay in the differential.
  std::string plan_why;
  const auto plan = compiled_plan(design, &plan_why);
  ASSERT_NE(plan, nullptr) << name << ": " << plan_why;
  SimConfig packed_cfg;
  packed_cfg.backend = Backend::kPackedCodegen;
  {
    PackedDutHarness probe(r.transformed, plan, 2, packed_cfg);
    if (codegen_available())
      ASSERT_STREQ(probe.backend(), "packed_codegen")
          << name << ": fell back: " << probe.fallback_reason();
    else
      ASSERT_STREQ(probe.backend(), "compiled") << name;
  }

  SimConfig event_cfg;
  event_cfg.compiled = false;
  const hls::CosimFactory golden = [&] {
    return [in = std::make_shared<hls::Interpreter>(r.transformed)](
               const std::vector<PortIo>& ins) { return in->run_stream(ins); };
  };
  const hls::CosimFactory rtl_leg = [&] {
    return [s = std::make_shared<rtl::Simulator>(r.transformed, r.schedule)](
               const std::vector<PortIo>& ins) { return s->run_stream(ins); };
  };
  const hls::CosimFactory vsim_event = [&] {
    return [h = std::make_shared<DutHarness>(r.transformed, design,
                                             event_cfg)](
               const std::vector<PortIo>& ins) { return h->run_stream(ins); };
  };
  const hls::CosimFactory vsim_compiled = [&] {
    return [h = std::make_shared<DutHarness>(r.transformed, design)](
               const std::vector<PortIo>& ins) { return h->run_stream(ins); };
  };
  const hls::CosimFactory vsim_codegen = [&] {
    return [h = std::make_shared<DutHarness>(r.transformed, design,
                                             codegen_cfg)](
               const std::vector<PortIo>& ins) { return h->run_stream(ins); };
  };
  // Packed leg: duplicate the block across both lanes of a 2-lane engine
  // and report lane 0. Lane 1 running the identical stream keeps the full
  // execution mask populated, so masked stores, NBA lane planes and the
  // divergence machinery are all live while the observable contract stays
  // "one sequential block".
  const hls::CosimFactory vsim_packed = [&] {
    return [&r, plan, packed_cfg](const std::vector<PortIo>& ins) {
      PackedDutHarness h(r.transformed, plan, 2, packed_cfg);
      auto out = h.run_streams({ins, ins});
      return out[0];
    };
  };

  LinkStimulus stim((LinkConfig()));
  const auto vectors =
      qam::link_input_batch(&stim, symbols);
  const hls::CosimResult res = hls::cosim_sweep_nway(
      {{"golden", golden},
       {"rtl", rtl_leg},
       {"vsim-event", vsim_event},
       {"vsim-compiled", vsim_compiled},
       {"vsim-codegen", vsim_codegen},
       {"vsim-packed-codegen", vsim_packed}},
      vectors, {.block_size = vectors.size(), .mismatch_limit = 8});
  EXPECT_TRUE(res.ok()) << name << ": "
                        << (res.mismatches.empty() ? ""
                                                   : res.mismatches.front());
  EXPECT_EQ(res.vectors, static_cast<std::size_t>(symbols)) << name;

  // VCD byte-identity for the same architecture: a dumping session of the
  // emitted module must record identical bytes on the event kernel and the
  // compiled interpreter (codegen refuses dumping designs by construction
  // and is covered by the fallback tests). The dump is injected into the
  // module text, so this also proves the levelized plan preserves the
  // declared signal set and ordering the VCD header serializes.
  const std::size_t mod_end = verilog.rfind("endmodule");
  ASSERT_NE(mod_end, std::string::npos) << name;
  std::string dumped = verilog;
  dumped.insert(mod_end,
                "  initial begin $dumpfile(\"wave.vcd\"); $dumpvars; end\n");
  const auto dump_design = load_design(dumped, r.transformed.name);
  auto drive = [&](const SimConfig& cfg) {
    DutHarness dut(r.transformed, dump_design, cfg);
    LinkStimulus vstim((LinkConfig()));
    for (const auto& in : qam::link_input_batch(&vstim, 3)) dut.run(in);
    return dut.sim().run();
  };
  const RunResult rc = drive({});
  const RunResult re = drive(event_cfg);
  ASSERT_EQ(rc.vcd_name, "wave.vcd") << name;
  EXPECT_EQ(rc.vcd_text, re.vcd_text) << name << ": VCD bytes diverged";
  EXPECT_NE(rc.vcd_text.find("$enddefinitions"), std::string::npos) << name;
}

class CompiledEquiv : public ::testing::TestWithParam<int> {};

TEST_P(CompiledEquiv, CompiledMatchesEventGoldenAndRtlBitForBit) {
  const auto archs = qam::exploration_architectures();
  const auto& a = archs[static_cast<size_t>(GetParam())];
  run_six_way_battery(a.dir, a.name, 15);
}

std::string equiv_name(const ::testing::TestParamInfo<int>& info) {
  auto n = qam::exploration_architectures()[static_cast<size_t>(info.param)]
               .name;
  std::string out;
  for (char c : n)
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, CompiledEquiv,
                         ::testing::Range(0, 9), equiv_name);

TEST(CompiledEquiv, Table1Rows) {
  for (const auto& a : qam::table1_architectures())
    run_six_way_battery(a.dir, a.name, 12);
}

TEST(CompiledEquiv, RandomizedDirectiveSets) {
  // Random points from the DSE candidate space (the equiv_test generator
  // idiom, different seed): merge on/off x unroll {1,2,4} x optional
  // pipelining of merged loop heads x clock period. Seeded for replay.
  const char* labels[] = {"ffe",       "dfe",       "ffe_adapt",
                          "dfe_adapt", "ffe_shift", "dfe_shift"};
  std::mt19937 rng(20260806);
  auto pick = [&](auto... v) {
    const int vals[] = {v...};
    return vals[rng() % (sizeof...(v))];
  };
  for (int cfg = 0; cfg < 3; ++cfg) {
    Directives dir;
    dir.clock_period_ns = pick(10, 10, 5);
    const bool merged = (rng() % 2) != 0;
    if (merged) dir.merge_groups = qam::default_merge_groups();
    for (const char* l : labels) {
      const int u = pick(1, 1, 2, 4);
      if (u > 1) dir.loops[l].unroll = u;
    }
    if (merged && (rng() % 2) != 0) {
      dir.loops["ffe"].pipeline_ii = 1;
      dir.loops["ffe_adapt"].pipeline_ii = 1;
      dir.loops["ffe"].unroll = 1;
      dir.loops["ffe_adapt"].unroll = 1;
      dir.loops["dfe"].unroll = 1;
      dir.loops["dfe_adapt"].unroll = 1;
    }
    run_six_way_battery(dir, "random#" + std::to_string(cfg), 10);
  }
}

TEST(CompiledEquiv, HarnessCycleCountMatchesScheduleOnCompiledBackend) {
  // The compiled backend must preserve the cycle-level protocol exactly:
  // start->done posedges still land on latency + 1, every symbol.
  const auto archs = qam::exploration_architectures();
  const qam::Architecture* pipe = nullptr;
  for (const auto& a : archs)
    if (a.name == "merge+pipe") pipe = &a;
  ASSERT_NE(pipe, nullptr);
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), pipe->dir,
                               TechLibrary::asic90());
  const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
  DutHarness dut(r.transformed, load_design(v, r.transformed.name));
  ASSERT_STREQ(dut.sim().backend(), "compiled");

  LinkStimulus stim((LinkConfig()));
  for (const auto& in : qam::link_input_batch(&stim, 10)) {
    dut.run(in);
    EXPECT_EQ(dut.last_cycles(), r.schedule.latency_cycles + 1);
  }
}

TEST(CompiledEquiv, CodegenWithoutToolchainFallsBackToCompiled) {
  // HLSW_CODEGEN_CXX=none simulates a toolchain-less machine: requesting
  // the codegen backend must silently land on the compiled interpreter
  // with a typed "codegen: " reason — and still produce correct outputs.
  const char* prev = getenv("HLSW_CODEGEN_CXX");
  const std::string saved = prev ? prev : "";
  setenv("HLSW_CODEGEN_CXX", "none", 1);
  EXPECT_FALSE(codegen_available());

  const qam::Architecture a = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                               TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);

  SimConfig cfg;
  cfg.backend = Backend::kCodegen;
  DutHarness dut(r.transformed, design, cfg);
  EXPECT_STREQ(dut.sim().backend(), "compiled");
  EXPECT_EQ(dut.sim().fallback_reason().rfind("codegen: ", 0), 0u)
      << dut.sim().fallback_reason();

  hls::Interpreter golden(r.transformed);
  LinkStimulus stim((LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 5);
  const auto want = golden.run_stream(vectors);
  const auto got = dut.run_stream(vectors);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].vars, want[i].vars) << "symbol " << i;
    EXPECT_EQ(got[i].arrays, want[i].arrays) << "symbol " << i;
  }

  if (prev)
    setenv("HLSW_CODEGEN_CXX", saved.c_str(), 1);
  else
    unsetenv("HLSW_CODEGEN_CXX");
}

TEST(CompiledEquiv, CodegenRefusesDumpingDesignsWithTypedReason) {
  // $dumpvars designs keep the interpreter tiers (they own the VCD
  // writer): the codegen request degrades with the construct named —
  // exercised regardless of whether a toolchain is present.
  const qam::Architecture a = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                               TechLibrary::asic90());
  std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const std::size_t mod_end = verilog.rfind("endmodule");
  ASSERT_NE(mod_end, std::string::npos);
  verilog.insert(mod_end,
                 "  initial begin $dumpfile(\"w.vcd\"); $dumpvars; end\n");
  SimConfig cfg;
  cfg.backend = Backend::kCodegen;
  Simulation sim(load_design(verilog, r.transformed.name), cfg);
  EXPECT_STREQ(sim.backend(), "compiled");
  EXPECT_EQ(sim.fallback_reason().rfind("codegen: ", 0), 0u)
      << sim.fallback_reason();
}

TEST(CompiledEquiv, GeneratedTestbenchStillRunsViaEventFallback) {
  // The generated self-checking testbench uses # delays and $finish, so
  // run_testbench lands on the event backend even with compiled enabled —
  // and still passes.
  const qam::Architecture a = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                               TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  LinkStimulus stim((LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 6);
  const auto tvs = rtl::capture_vectors(r.transformed, r.schedule, vectors);
  const std::string tb =
      rtl::emit_testbench(r.transformed, tvs, r.transformed.name);
  const TestbenchResult res =
      run_testbench(verilog + "\n" + tb, r.transformed.name + "_tb");
  EXPECT_TRUE(res.passed) << (res.display.empty() ? "<empty>"
                                                  : res.display.back());
}

}  // namespace
}  // namespace hlsw::vsim
