// The acceptance gate of the compiled-backend PR: for every exploration and
// Table 1 architecture — and randomized directive sets — the emitted
// Verilog TEXT executed by the compiled cycle-based backend must match the
// event-driven backend, the untimed interpreter golden and the
// cycle-accurate rtl::Simulator bit-for-bit (cosim_sweep_nway over all four
// legs). The compiled leg must actually BE compiled: every architecture's
// emitted module is required to cycle-schedule with no fallback.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/report.h"
#include "hls/verify.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"
#include "vsim/harness.h"

namespace hlsw::vsim {
namespace {

using hls::Directives;
using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkStimulus;

// Four-way differential for one directive set: golden interpreter,
// rtl::Simulator, vsim-event and vsim-compiled all execute the same link
// symbols (one sequential block — the decoder is stateful). Any divergence
// fails named by leg.
void run_three_way_battery(const Directives& dir, const std::string& name,
                           int symbols) {
  const auto r =
      run_synthesis(qam::build_qam_decoder_ir(), dir, TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);

  // The compiled backend must take this design — fallback would silently
  // degrade the whole suite to event-vs-event.
  {
    Simulation probe(design);
    ASSERT_STREQ(probe.backend(), "compiled")
        << name << ": fell back: " << probe.fallback_reason();
  }

  SimConfig event_cfg;
  event_cfg.compiled = false;
  const hls::CosimFactory golden = [&] {
    return [in = std::make_shared<hls::Interpreter>(r.transformed)](
               const std::vector<PortIo>& ins) { return in->run_stream(ins); };
  };
  const hls::CosimFactory rtl_leg = [&] {
    return [s = std::make_shared<rtl::Simulator>(r.transformed, r.schedule)](
               const std::vector<PortIo>& ins) { return s->run_stream(ins); };
  };
  const hls::CosimFactory vsim_event = [&] {
    return [h = std::make_shared<DutHarness>(r.transformed, design,
                                             event_cfg)](
               const std::vector<PortIo>& ins) { return h->run_stream(ins); };
  };
  const hls::CosimFactory vsim_compiled = [&] {
    return [h = std::make_shared<DutHarness>(r.transformed, design)](
               const std::vector<PortIo>& ins) { return h->run_stream(ins); };
  };

  LinkStimulus stim((LinkConfig()));
  const auto vectors =
      qam::link_input_batch(&stim, symbols);
  const hls::CosimResult res = hls::cosim_sweep_nway(
      {{"golden", golden},
       {"rtl", rtl_leg},
       {"vsim-event", vsim_event},
       {"vsim-compiled", vsim_compiled}},
      vectors, {.block_size = vectors.size(), .mismatch_limit = 8});
  EXPECT_TRUE(res.ok()) << name << ": "
                        << (res.mismatches.empty() ? ""
                                                   : res.mismatches.front());
  EXPECT_EQ(res.vectors, static_cast<std::size_t>(symbols)) << name;
}

class CompiledEquiv : public ::testing::TestWithParam<int> {};

TEST_P(CompiledEquiv, CompiledMatchesEventGoldenAndRtlBitForBit) {
  const auto archs = qam::exploration_architectures();
  const auto& a = archs[static_cast<size_t>(GetParam())];
  run_three_way_battery(a.dir, a.name, 15);
}

std::string equiv_name(const ::testing::TestParamInfo<int>& info) {
  auto n = qam::exploration_architectures()[static_cast<size_t>(info.param)]
               .name;
  std::string out;
  for (char c : n)
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, CompiledEquiv,
                         ::testing::Range(0, 9), equiv_name);

TEST(CompiledEquiv, Table1Rows) {
  for (const auto& a : qam::table1_architectures())
    run_three_way_battery(a.dir, a.name, 12);
}

TEST(CompiledEquiv, RandomizedDirectiveSets) {
  // Random points from the DSE candidate space (the equiv_test generator
  // idiom, different seed): merge on/off x unroll {1,2,4} x optional
  // pipelining of merged loop heads x clock period. Seeded for replay.
  const char* labels[] = {"ffe",       "dfe",       "ffe_adapt",
                          "dfe_adapt", "ffe_shift", "dfe_shift"};
  std::mt19937 rng(20260806);
  auto pick = [&](auto... v) {
    const int vals[] = {v...};
    return vals[rng() % (sizeof...(v))];
  };
  for (int cfg = 0; cfg < 3; ++cfg) {
    Directives dir;
    dir.clock_period_ns = pick(10, 10, 5);
    const bool merged = (rng() % 2) != 0;
    if (merged) dir.merge_groups = qam::default_merge_groups();
    for (const char* l : labels) {
      const int u = pick(1, 1, 2, 4);
      if (u > 1) dir.loops[l].unroll = u;
    }
    if (merged && (rng() % 2) != 0) {
      dir.loops["ffe"].pipeline_ii = 1;
      dir.loops["ffe_adapt"].pipeline_ii = 1;
      dir.loops["ffe"].unroll = 1;
      dir.loops["ffe_adapt"].unroll = 1;
      dir.loops["dfe"].unroll = 1;
      dir.loops["dfe_adapt"].unroll = 1;
    }
    run_three_way_battery(dir, "random#" + std::to_string(cfg), 10);
  }
}

TEST(CompiledEquiv, HarnessCycleCountMatchesScheduleOnCompiledBackend) {
  // The compiled backend must preserve the cycle-level protocol exactly:
  // start->done posedges still land on latency + 1, every symbol.
  const auto archs = qam::exploration_architectures();
  const qam::Architecture* pipe = nullptr;
  for (const auto& a : archs)
    if (a.name == "merge+pipe") pipe = &a;
  ASSERT_NE(pipe, nullptr);
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), pipe->dir,
                               TechLibrary::asic90());
  const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
  DutHarness dut(r.transformed, load_design(v, r.transformed.name));
  ASSERT_STREQ(dut.sim().backend(), "compiled");

  LinkStimulus stim((LinkConfig()));
  for (const auto& in : qam::link_input_batch(&stim, 10)) {
    dut.run(in);
    EXPECT_EQ(dut.last_cycles(), r.schedule.latency_cycles + 1);
  }
}

TEST(CompiledEquiv, GeneratedTestbenchStillRunsViaEventFallback) {
  // The generated self-checking testbench uses # delays and $finish, so
  // run_testbench lands on the event backend even with compiled enabled —
  // and still passes.
  const qam::Architecture a = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                               TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  LinkStimulus stim((LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 6);
  const auto tvs = rtl::capture_vectors(r.transformed, r.schedule, vectors);
  const std::string tb =
      rtl::emit_testbench(r.transformed, tvs, r.transformed.name);
  const TestbenchResult res =
      run_testbench(verilog + "\n" + tb, r.transformed.name + "_tb");
  EXPECT_TRUE(res.passed) << (res.display.empty() ? "<empty>"
                                                  : res.display.back());
}

}  // namespace
}  // namespace hlsw::vsim
