// Backend selection and fallback behavior of the compiled cycle-based
// vsim engine (compile.h): cycle-schedulable designs silently get the
// levelized backend, anything with time control / $finish / zero-delay
// feedback silently keeps the event kernel — and the two backends are
// observably identical (values, $display text, VCD bytes, stats-visible
// protocol) wherever both can run.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "vsim/compile.h"
#include "vsim/harness.h"
#include "vsim/parser.h"
#include "vsim/sim.h"

namespace hlsw::vsim {
namespace {

std::unique_ptr<Simulation> make_sim(const std::string& src,
                                     const std::string& top,
                                     const SimConfig& cfg = {}) {
  return std::make_unique<Simulation>(load_design(src, top), cfg);
}

SimConfig event_cfg() {
  SimConfig cfg;
  cfg.compiled = false;
  return cfg;
}

// A small synchronous design exercising assigns, NBAs, bit-selects and a
// register file — everything the compiled backend must levelize.
const char* kSyncDesign = R"(
module m (input wire clk, input wire rst,
          input wire signed [7:0] x, output wire signed [9:0] q);
  reg signed [9:0] acc;
  reg [3:0] idx;
  reg signed [7:0] mem [0:15];
  wire signed [9:0] nxt;
  wire msb;
  assign nxt = acc + {x[7], x[7], x};
  assign msb = acc[9];
  assign q = msb ? -nxt : nxt;
  always @(posedge clk) begin
    if (rst) begin
      acc <= 10'sd0;
      idx <= 4'd0;
    end else begin
      acc <= nxt;
      mem[idx] <= x;
      idx <= idx + 4'd1;
    end
  end
endmodule
)";

TEST(VsimCompiled, SynchronousDesignSelectsCompiledBackend) {
  auto sim = make_sim(kSyncDesign, "m");
  EXPECT_STREQ(sim->backend(), "compiled");
  EXPECT_EQ(sim->fallback_reason(), "");
}

TEST(VsimCompiled, CompiledAndEventAgreeCycleByCycle) {
  auto c = make_sim(kSyncDesign, "m");
  auto e = make_sim(kSyncDesign, "m", event_cfg());
  ASSERT_STREQ(c->backend(), "compiled");
  ASSERT_STREQ(e->backend(), "event");

  auto drive = [](Simulation& s, unsigned long long rst,
                  unsigned long long x) {
    s.poke("rst", rst);
    s.poke("x", x);
    s.poke("clk", 1);
    s.settle();
    s.poke("clk", 0);
    s.settle();
  };
  const unsigned long long xs[] = {5, 0xf3 /* -13 */, 127, 0x80 /* -128 */,
                                   1, 0xff /* -1 */};
  drive(*c, 1, 0);
  drive(*e, 1, 0);
  for (unsigned long long x : xs) {
    drive(*c, 0, x);
    drive(*e, 0, x);
    EXPECT_EQ(c->peek("acc"), e->peek("acc"));
    EXPECT_EQ(c->peek_signed("q"), e->peek_signed("q"));
    EXPECT_EQ(c->peek("idx"), e->peek("idx"));
  }
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(c->peek_elem("mem", i), e->peek_elem("mem", i)) << "mem[" << i
                                                              << "]";
}

TEST(VsimCompiled, HandleApiMatchesNameApi) {
  auto sim = make_sim(kSyncDesign, "m");
  const int h_x = sim->signal_handle("x");
  const int h_q = sim->signal_handle("q");
  sim->poke("rst", 0);
  sim->poke(h_x, 42);
  sim->settle();
  EXPECT_EQ(sim->peek("x"), 42u);
  EXPECT_EQ(sim->peek(h_q), sim->peek("q"));
  EXPECT_EQ(sim->peek_signed(h_q), sim->peek_signed("q"));
  EXPECT_THROW(sim->signal_handle("no_such_signal"), std::runtime_error);
}

// ---- Fallback triggers ------------------------------------------------------

TEST(VsimCompiled, HashDelayFallsBackToEventSilently) {
  auto sim = make_sim(R"(
module m;
  reg [7:0] r;
  initial begin
    r = 1;
    #5 r = 2;
  end
endmodule
)",
                      "m");
  EXPECT_STREQ(sim->backend(), "event");
  EXPECT_NE(sim->fallback_reason().find("delay"), std::string::npos)
      << sim->fallback_reason();
  const RunResult rr = sim->run();  // the event engine still runs it fine
  EXPECT_EQ(sim->peek("r"), 2u);
  EXPECT_EQ(rr.end_time, 5);
}

TEST(VsimCompiled, FinishFallsBackToEvent) {
  auto sim = make_sim(R"(
module m;
  initial $finish;
endmodule
)",
                      "m");
  EXPECT_STREQ(sim->backend(), "event");
  const RunResult rr = sim->run();
  EXPECT_TRUE(rr.finished);
}

TEST(VsimCompiled, ZeroDelayFeedbackFallsBackToEvent) {
  // assign p = q; assign q = p + 1 can never settle — the levelizer's
  // topological sort detects the cycle and hands the design to the event
  // kernel, whose combinational-loop guard reports it (at the time-0 flush
  // inside the constructor) exactly as before.
  auto design = load_design(R"(
module m (input wire x);
  wire [3:0] p, q;
  assign p = q;
  assign q = p + 4'd1;
endmodule
)",
                            "m");
  std::string why;
  EXPECT_EQ(compiled_plan(design, &why), nullptr);
  EXPECT_NE(why.find("feedback"), std::string::npos) << why;
  EXPECT_THROW(Simulation sim(design), std::runtime_error);
}

TEST(VsimCompiled, CompiledFalseForcesEventBackend) {
  auto sim = make_sim(kSyncDesign, "m", event_cfg());
  EXPECT_STREQ(sim->backend(), "event");
  EXPECT_EQ(sim->fallback_reason(), "");
}

// ---- Observable-output equivalence -----------------------------------------

TEST(VsimCompiled, DisplayOutputMatchesEventBackend) {
  const char* src = R"(
module m;
  reg signed [7:0] a;
  reg [11:0] u;
  initial begin
    a = -8'sd5;
    u = 12'hABC;
    $display("a=%d u=%h b=%b", a, u, u[3:0]);
    $display(a, u);
    $display("100%% done");
  end
endmodule
)";
  auto c = make_sim(src, "m");
  auto e = make_sim(src, "m", event_cfg());
  ASSERT_STREQ(c->backend(), "compiled");
  const RunResult rc = c->run();
  const RunResult re = e->run();
  EXPECT_EQ(rc.display, re.display);
  ASSERT_EQ(rc.display.size(), 3u);
  EXPECT_EQ(rc.display[0], "a=-5 u=abc b=1100");
  EXPECT_EQ(rc.display[2], "100% done");
}

TEST(VsimCompiled, VcdBytesIdenticalAcrossBackends) {
  // External-driver session with $dumpvars: both backends must record the
  // same signals in the same order with the same value-change bytes.
  const char* src = R"(
module m (input wire clk, input wire [3:0] x);
  reg [3:0] a;
  wire [3:0] b;
  assign b = x ^ a;
  initial begin
    $dumpfile("wave.vcd");
    $dumpvars;
    a = 4'd3;
  end
  always @(posedge clk) a <= a + x;
endmodule
)";
  auto drive = [](Simulation& s) {
    for (unsigned long long x : {1ull, 7ull, 2ull}) {
      s.poke("x", x);
      s.poke("clk", 1);
      s.settle();
      s.poke("clk", 0);
      s.settle();
    }
    return s.run();
  };
  auto c = make_sim(src, "m");
  auto e = make_sim(src, "m", event_cfg());
  ASSERT_STREQ(c->backend(), "compiled");
  const RunResult rc = drive(*c);
  const RunResult re = drive(*e);
  EXPECT_EQ(rc.vcd_name, "wave.vcd");
  EXPECT_EQ(rc.vcd_name, re.vcd_name);
  EXPECT_EQ(rc.vcd_text, re.vcd_text) << "VCD bytes diverged";
  EXPECT_NE(rc.vcd_text.find("$var"), std::string::npos);
}

// ---- Cache observability ----------------------------------------------------

TEST(VsimCompiled, PlanAndDesignCachesCountHits) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  auto& m = obs::MetricsRegistry::instance();
  const double d_hits0 = m.counter_value("vsim.design_cache.hits");
  const double p_hits0 = m.counter_value("vsim.plan_cache.hits");

  // Unique text (per-test suffix comment) so the first load is a miss.
  const std::string src = std::string(kSyncDesign) + "// cache-probe\n";
  auto d1 = load_design(src, "m");
  auto d2 = load_design(src, "m");
  EXPECT_EQ(d1.get(), d2.get()) << "second load must share the elaboration";
  EXPECT_GE(m.counter_value("vsim.design_cache.hits"), d_hits0 + 1.0);

  Simulation s1(d1);
  Simulation s2(d1);  // same Design* -> memoized plan
  ASSERT_STREQ(s1.backend(), "compiled");
  ASSERT_STREQ(s2.backend(), "compiled");
  EXPECT_GE(m.counter_value("vsim.plan_cache.hits"), p_hits0 + 1.0);

  obs::set_enabled(was_enabled);
}

TEST(VsimCompiled, FailedCompilationIsMemoizedToo) {
  auto design = load_design(R"(
module m;
  reg r;
  initial #1 r = 1;
endmodule
)",
                            "m");
  std::string why1, why2;
  EXPECT_EQ(compiled_plan(design, &why1), nullptr);
  EXPECT_EQ(compiled_plan(design, &why2), nullptr);
  EXPECT_EQ(why1, why2);
  EXPECT_FALSE(why1.empty());
}

TEST(VsimCompiled, StatsCountEventsAndCommitsOnCompiledBackend) {
  auto sim = make_sim(kSyncDesign, "m");
  ASSERT_STREQ(sim->backend(), "compiled");
  const SimStats before = sim->stats();
  sim->poke("rst", 0);
  sim->poke("x", 9);
  sim->poke("clk", 1);
  sim->settle();
  const SimStats after = sim->stats();
  EXPECT_GT(after.events, before.events);
  EXPECT_GT(after.nba_commits, before.nba_commits);
  EXPECT_GT(after.delta_cycles, before.delta_cycles);
}

}  // namespace
}  // namespace hlsw::vsim
