// The acceptance gate of the vsim PR: for every Table 1 and exploration
// architecture — and for randomized directive sets from the DSE design
// space — the emitted Verilog TEXT, parsed and executed by vsim, must match
// the untimed interpreter golden and the cycle-accurate rtl::Simulator
// bit-for-bit (verify_emitted: three-way differential + lint + the
// generated self-checking testbench run in-process). The legacy
// interpretive simulator joins as a fourth leg, and the DutHarness cycle
// count is pinned to the schedule's latency.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/report.h"
#include "hls/verify.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"
#include "vsim/harness.h"

namespace hlsw::vsim {
namespace {

using hls::Directives;
using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkStimulus;

// Full verify_emitted battery for one directive set: three-way cosim over
// `symbols` link symbols (one sequential block — the decoder is stateful),
// lint-clean, and a passing in-process testbench.
void run_battery(const Directives& dir, const std::string& name,
                 int symbols) {
  const auto r =
      run_synthesis(qam::build_qam_decoder_ir(), dir, TechLibrary::asic90());
  LinkStimulus stim((LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, symbols);

  const VerifyEmittedResult res = verify_emitted(
      r.transformed, r.schedule, vectors, {.block_size = vectors.size()});

  EXPECT_TRUE(res.cosim.ok())
      << name << ": "
      << (res.cosim.mismatches.empty() ? "" : res.cosim.mismatches.front());
  EXPECT_EQ(res.cosim.vectors, static_cast<std::size_t>(symbols)) << name;
  EXPECT_TRUE(res.lint_issues.empty())
      << name << ": " << lint_report(res.lint_issues);
  EXPECT_TRUE(res.testbench.passed)
      << name << ": testbench display log:\n"
      << (res.testbench.display.empty() ? "<empty>"
                                        : res.testbench.display.back());
  EXPECT_TRUE(res.ok()) << name;
}

class EmittedEquiv : public ::testing::TestWithParam<int> {};

TEST_P(EmittedEquiv, VsimMatchesGoldenAndRtlBitForBit) {
  const auto archs = qam::exploration_architectures();
  const auto& a = archs[static_cast<size_t>(GetParam())];
  run_battery(a.dir, a.name, 25);
}

std::string equiv_name(const ::testing::TestParamInfo<int>& info) {
  auto n = qam::exploration_architectures()[static_cast<size_t>(info.param)]
               .name;
  std::string out;
  for (char c : n)
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, EmittedEquiv,
                         ::testing::Range(0, 9), equiv_name);

TEST(EmittedEquiv, Table1Rows) {
  for (const auto& a : qam::table1_architectures())
    run_battery(a.dir, a.name, 20);
}

TEST(EmittedEquiv, RandomizedDirectiveSets) {
  // Random points from the DSE candidate space, same generator idiom (and
  // spirit) as sim_equiv_test: merge on/off x unroll {1,2,4} x optional
  // pipelining of merged loop heads x clock period. Seeded for replay.
  const char* labels[] = {"ffe",       "dfe",       "ffe_adapt",
                          "dfe_adapt", "ffe_shift", "dfe_shift"};
  std::mt19937 rng(20260805);
  auto pick = [&](auto... v) {
    const int vals[] = {v...};
    return vals[rng() % (sizeof...(v))];
  };
  for (int cfg = 0; cfg < 4; ++cfg) {
    Directives dir;
    dir.clock_period_ns = pick(10, 10, 5);
    const bool merged = (rng() % 2) != 0;
    if (merged) dir.merge_groups = qam::default_merge_groups();
    for (const char* l : labels) {
      const int u = pick(1, 1, 2, 4);
      if (u > 1) dir.loops[l].unroll = u;
    }
    if (merged && (rng() % 2) != 0) {
      dir.loops["ffe"].pipeline_ii = 1;
      dir.loops["ffe_adapt"].pipeline_ii = 1;
      dir.loops["ffe"].unroll = 1;
      dir.loops["ffe_adapt"].unroll = 1;
      dir.loops["dfe"].unroll = 1;
      dir.loops["dfe_adapt"].unroll = 1;
    }
    run_battery(dir, "random#" + std::to_string(cfg), 15);
  }
}

TEST(EmittedEquiv, HarnessCycleCountMatchesSchedule) {
  // The emitted FSM takes latency_cycles through the states plus the done
  // posedge: DutHarness counts start->done posedges and must land exactly
  // on latency + 1, every symbol, on a pipelined architecture.
  const auto archs = qam::exploration_architectures();
  const qam::Architecture* pipe = nullptr;
  for (const auto& a : archs)
    if (a.name == "merge+pipe") pipe = &a;
  ASSERT_NE(pipe, nullptr);
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), pipe->dir,
                               TechLibrary::asic90());
  const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
  DutHarness dut(r.transformed, load_design(v, r.transformed.name));

  LinkStimulus stim((LinkConfig()));
  for (const auto& in : qam::link_input_batch(&stim, 10)) {
    dut.run(in);
    EXPECT_EQ(dut.last_cycles(), r.schedule.latency_cycles + 1);
  }
}

TEST(EmittedEquiv, LegacySimulatorJoinsAsFourthLeg) {
  // cosim_sweep_nway with golden / compiled-rtl / legacy-rtl / vsim: any
  // divergence between the four models fails, named by leg.
  const qam::Architecture a = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                               TechLibrary::asic90());
  const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(v, r.transformed.name);

  const hls::CosimFactory golden = [&] {
    return [in = std::make_shared<hls::Interpreter>(r.transformed)](
               const std::vector<PortIo>& ins) { return in->run_stream(ins); };
  };
  const hls::CosimFactory compiled = [&] {
    return [s = std::make_shared<rtl::Simulator>(r.transformed, r.schedule)](
               const std::vector<PortIo>& ins) { return s->run_stream(ins); };
  };
  const hls::CosimFactory legacy = [&] {
    return [s = std::make_shared<rtl::Simulator>(r.transformed, r.schedule,
                                                 rtl::SimOptions{
                                                     .compiled = false})](
               const std::vector<PortIo>& ins) { return s->run_stream(ins); };
  };
  const hls::CosimFactory vsim_leg = [&] {
    return [h = std::make_shared<DutHarness>(r.transformed, design)](
               const std::vector<PortIo>& ins) { return h->run_stream(ins); };
  };

  LinkStimulus stim((LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 25);
  const hls::CosimResult res = hls::cosim_sweep_nway(
      {{"golden", golden},
       {"rtl", compiled},
       {"rtl-legacy", legacy},
       {"vsim", vsim_leg}},
      vectors, {.block_size = vectors.size()});
  EXPECT_TRUE(res.ok()) << (res.mismatches.empty() ? ""
                                                   : res.mismatches.front());
  EXPECT_EQ(res.vectors, 25u);
}

TEST(EmittedEquiv, NwayMismatchesNameTheDivergingLeg) {
  const qam::Architecture a = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                               TechLibrary::asic90());
  const hls::CosimFactory golden = [&] {
    return [in = std::make_shared<hls::Interpreter>(r.transformed)](
               const std::vector<PortIo>& ins) { return in->run_stream(ins); };
  };
  // A leg that corrupts one output of the very first vector.
  const hls::CosimFactory bad = [&] {
    auto in = std::make_shared<hls::Interpreter>(r.transformed);
    return [in](const std::vector<PortIo>& ins) {
      auto outs = in->run_stream(ins);
      if (!outs.empty()) {
        if (!outs[0].vars.empty())
          outs[0].vars.begin()->second.re ^= 1;
        else if (!outs[0].arrays.empty())
          outs[0].arrays.begin()->second[0].re ^= 1;
      }
      return outs;
    };
  };
  LinkStimulus stim((LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 5);
  const hls::CosimResult res = hls::cosim_sweep_nway(
      {{"golden", golden}, {"crooked", bad}}, vectors,
      {.block_size = vectors.size()});
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.mismatches.front().find("crooked vs golden"),
            std::string::npos)
      << res.mismatches.front();
}

TEST(EmittedEquiv, NwayNeedsAtLeastTwoLegs) {
  const hls::CosimFactory id = [] {
    return [](const std::vector<PortIo>& ins) { return ins; };
  };
  const hls::CosimResult res = hls::cosim_sweep_nway({{"only", id}}, {});
  EXPECT_FALSE(res.ok());
}

}  // namespace
}  // namespace hlsw::vsim
