// Execution semantics of the vsim kernel, pinned against IEEE 1364-2001:
// the stratified event queue (blocking-now vs NBA-at-end-of-slot, delta
// cycles through continuous assigns), expression evaluation (context
// width/signedness propagation, self-determined boundaries, arithmetic
// shift), the behavioral layer the testbench needs ($display formatting,
// tasks, repeat, timers, $finish) and the VCD dump path.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "vsim/harness.h"
#include "vsim/parser.h"
#include "vsim/sim.h"

namespace hlsw::vsim {
namespace {

std::unique_ptr<Simulation> make_sim(const std::string& src,
                                     const std::string& top,
                                     const SimConfig& cfg = {}) {
  return std::make_unique<Simulation>(load_design(src, top), cfg);
}

TEST(VsimExec, NonblockingSwapAndLastWriteWins) {
  // The two classics: a <= b / b <= a swaps (old values are read before any
  // NBA commit), and two NBAs to one reg in a single activation commit in
  // program order — the emitter's `done <= 0; ... done <= 1` idiom.
  auto sim = make_sim(R"(
module m (input wire clk);
  reg signed [7:0] a = 1, b = 2;
  reg flag;
  always @(posedge clk) begin
    a <= b;
    b <= a;
    flag <= 0;
    if (a == 8'sd1) flag <= 1;
  end
endmodule
)",
                      "m");
  sim->poke("clk", 1);
  sim->settle();
  EXPECT_EQ(sim->peek("a"), 2u);
  EXPECT_EQ(sim->peek("b"), 1u);
  EXPECT_EQ(sim->peek("flag"), 1u) << "later NBA in the same slot wins";
  sim->poke("clk", 0);
  sim->settle();
  sim->poke("clk", 1);
  sim->settle();
  EXPECT_EQ(sim->peek("a"), 1u);
  EXPECT_EQ(sim->peek("b"), 2u);
  EXPECT_EQ(sim->peek("flag"), 0u);
}

TEST(VsimExec, BlockingAssignsAreVisibleImmediately) {
  auto sim = make_sim(R"(
module m (input wire clk);
  reg signed [7:0] a = 1, b = 2, c;
  always @(posedge clk) begin
    a = b;
    b = a;    // reads the NEW a
    c = a + b;
  end
endmodule
)",
                      "m");
  sim->poke("clk", 1);
  sim->settle();
  EXPECT_EQ(sim->peek("a"), 2u);
  EXPECT_EQ(sim->peek("b"), 2u);
  EXPECT_EQ(sim->peek("c"), 4u);
}

TEST(VsimExec, ContinuousAssignChainsSettleInDeltas) {
  auto sim = make_sim(R"(
module m (input wire signed [7:0] x, output wire signed [7:0] q);
  wire signed [7:0] t0, t1;
  assign t0 = x + 8'sd1;
  assign t1 = t0 <<< 1;
  assign q = t1 - 8'sd2;
endmodule
)",
                      "m");
  sim->poke("x", 5);
  sim->settle();
  EXPECT_EQ(sim->peek_signed("q"), (5 + 1) * 2 - 2);
  sim->poke("x", static_cast<unsigned long long>(-9) & 0xff);
  sim->settle();
  EXPECT_EQ(sim->peek_signed("q"), (-9 + 1) * 2 - 2);
}

TEST(VsimExec, ArithmeticShiftAndSignedness) {
  // >>> is arithmetic only in a signed context; an unsigned operand in the
  // expression demotes the context and degrades it to a logical shift —
  // exactly the trap the emitter's rounding increment had to $signed() out.
  auto sim = make_sim(R"(
module m;
  reg signed [63:0] a;
  reg signed [63:0] keep, lost;
  reg [3:0] u;
  initial begin
    a = -64'sd8;
    keep = (a >>> 1) + $signed({{63{1'b0}}, 1'b1});
    lost = (a + {60'd0, u}) >>> 1;
  end
endmodule
)",
                      "m");
  EXPECT_EQ(sim->peek_signed("keep"), -4 + 1);
  // {60'd0,u} is unsigned, so the whole RHS context is unsigned: -8 >>> 1
  // becomes a logical shift of the 64-bit pattern.
  EXPECT_EQ(sim->peek("lost"),
            (static_cast<unsigned long long>(-8) >> 1));
}

TEST(VsimExec, WidthContextPropagatesThroughTruncationAndExtension) {
  auto sim = make_sim(R"(
module m;
  reg signed [7:0] narrow, trunc;
  reg signed [15:0] wide;
  reg [7:0] uns;
  reg signed [15:0] sext, zext;
  initial begin
    wide = 16'sd300;
    trunc = wide;           // truncates to 8 bits: 300 & 0xff = 44
    narrow = -8'sd1;
    sext = narrow;          // sign-extends: -1
    uns = 8'hff;
    zext = uns;             // zero-extends: 255
  end
endmodule
)",
                      "m");
  EXPECT_EQ(sim->peek_signed("trunc"), 44);
  EXPECT_EQ(sim->peek_signed("narrow"), -1);
  EXPECT_EQ(sim->peek_signed("sext"), -1);
  EXPECT_EQ(sim->peek_signed("zext"), 255);
}

TEST(VsimExec, SelectsConcatsReplication) {
  auto sim = make_sim(R"(
module m;
  reg signed [15:0] v;
  reg [3:0] nib;
  reg [15:0] swapped;
  reg bit7;
  reg [7:0] rep;
  initial begin
    v = 16'shab3c;
    nib = v[7:4];
    swapped = {v[7:0], v[15:8]};
    bit7 = v[7];
    rep = {2{v[3:0]}};
  end
endmodule
)",
                      "m");
  EXPECT_EQ(sim->peek("nib"), 0x3u);
  EXPECT_EQ(sim->peek("swapped"), 0x3cabu);
  EXPECT_EQ(sim->peek("bit7"), 0u);
  EXPECT_EQ(sim->peek("rep"), 0xccu);
}

TEST(VsimExec, RegisterFilesReadAndWriteByIndex) {
  auto sim = make_sim(R"(
module m (input wire clk, input wire [2:0] wa, input wire signed [9:0] wd,
          input wire [2:0] ra, output wire signed [9:0] rd);
  reg signed [9:0] mem [0:7];
  always @(posedge clk) mem[wa] <= wd;
  assign rd = mem[ra];
endmodule
)",
                      "m");
  sim->poke("wa", 3);
  sim->poke("wd", static_cast<unsigned long long>(-17) & 0x3ff);
  sim->poke("clk", 1);
  sim->settle();
  sim->poke("clk", 0);
  sim->poke("ra", 3);
  sim->settle();
  EXPECT_EQ(sim->peek_signed("rd"), -17);
  EXPECT_EQ(sim->peek_elem("mem", 3),
            static_cast<unsigned long long>(-17) & 0x3ff);
  EXPECT_EQ(sim->peek_elem("mem", 5), 0u) << "untouched elements stay 0";
}

TEST(VsimExec, CaseDispatchMatchesFsmStates) {
  auto sim = make_sim(R"(
module m (input wire clk, input wire rst);
  reg [15:0] state;
  reg [7:0] trace;
  localparam S_IDLE = 0;
  always @(posedge clk) begin
    if (rst) begin state <= S_IDLE; trace <= 0; end
    else begin
      case (state)
        S_IDLE: begin state <= 1; trace <= trace + 8'd1; end
        1: begin state <= 2; trace <= trace + 8'd10; end
        default: state <= S_IDLE;
      endcase
    end
  end
endmodule
)",
                      "m");
  auto tick = [&] {
    sim->poke("clk", 1);
    sim->settle();
    sim->poke("clk", 0);
    sim->settle();
  };
  sim->poke("rst", 1);
  tick();
  sim->poke("rst", 0);
  tick();  // S_IDLE -> 1
  tick();  // 1 -> 2
  tick();  // default -> S_IDLE
  EXPECT_EQ(sim->peek("state"), 0u);
  EXPECT_EQ(sim->peek("trace"), 11u);
}

TEST(VsimExec, TestbenchFreeRunWithTimersTasksAndDisplay) {
  auto sim = make_sim(R"(
module tb;
  reg clk = 0;
  integer n = 0;
  always #5 clk = ~clk;
  task bump(input integer by);
    begin
      n = n + by;
    end
  endtask
  initial begin
    repeat (4) @(posedge clk);
    bump(2);
    bump(40);
    $display("n=%0d at %0t", n, $time);
    if (n == 42) $display("PASS: counted");
    else $display("FAIL: n=%0d", n);
    $finish;
  end
endmodule
)",
                      "tb");
  const RunResult r = sim->run();
  EXPECT_TRUE(r.finished);
  EXPECT_FALSE(r.timed_out);
  // Posedges at t=5,15,25,35 (clk toggles every 5).
  EXPECT_EQ(r.end_time, 35);
  ASSERT_EQ(r.display.size(), 2u);
  EXPECT_EQ(r.display[0], "n=42 at 35");
  EXPECT_EQ(r.display[1], "PASS: counted");
}

TEST(VsimExec, DisplayFormatsHexBinaryStringPercent) {
  auto sim = make_sim(R"(
module tb;
  reg signed [15:0] v;
  initial begin
    v = -16'sd2;
    $display("h=%h b=%b d=%0d 100%%", v[7:0], v[3:0], v);
    $finish;
  end
endmodule
)",
                      "tb");
  const RunResult r = sim->run();
  ASSERT_EQ(r.display.size(), 1u);
  EXPECT_EQ(r.display[0], "h=fe b=1110 d=-2 100%");
}

TEST(VsimExec, StopHaltsWithoutFinish) {
  auto sim = make_sim(
      "module tb;\n  initial begin $stop; $display(\"after\"); end\n"
      "endmodule\n",
      "tb");
  const RunResult r = sim->run();
  EXPECT_FALSE(r.finished);
  EXPECT_TRUE(r.stopped);
  EXPECT_TRUE(r.display.empty());
}

TEST(VsimExec, MaxTimeStopsRunawayClocks) {
  auto sim = make_sim(
      "module tb;\n  reg clk = 0;\n  always #5 clk = ~clk;\nendmodule\n",
      "tb", SimConfig{.max_time = 100});
  const RunResult r = sim->run();
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.finished);
  EXPECT_LE(r.end_time, 100);
}

TEST(VsimExec, ZeroDelayLoopIsCaught) {
  // The spin hits the per-slot instruction budget during the time-0 active
  // region, i.e. already inside the Simulation constructor.
  EXPECT_THROW(make_sim(R"(
module tb;
  reg a = 0;
  initial forever a = !a;  // no wait: would spin at t=0 forever
endmodule
)",
                        "tb", SimConfig{.max_instrs_per_slot = 10'000}),
               std::runtime_error);
}

TEST(VsimExec, AlwaysWithoutWaitIsRejectedAtCompile) {
  EXPECT_THROW(make_sim("module m;\n  reg a;\n  always a = !a;\nendmodule\n",
                        "m"),
               std::runtime_error);
}

TEST(VsimExec, DumpvarsProducesVcd) {
  auto sim = make_sim(R"(
module tb;
  reg clk = 0;
  reg [3:0] n = 0;
  always #5 clk = ~clk;
  always @(posedge clk) n <= n + 4'd1;
  initial begin
    $dumpfile("wave.vcd");
    $dumpvars;
    repeat (3) @(posedge clk);
    $finish;
  end
endmodule
)",
                      "tb");
  const RunResult r = sim->run();
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.vcd_name, "wave.vcd");
  EXPECT_NE(r.vcd_text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(r.vcd_text.find("clk"), std::string::npos);
  EXPECT_NE(r.vcd_text.find("#5"), std::string::npos)
      << "first clk edge recorded at t=5";
  EXPECT_NE(r.vcd_text.find("b0001 "), std::string::npos)
      << "multi-bit change records of n";
}

TEST(VsimExec, StatsCountEventsAndCommits) {
  auto sim = make_sim(R"(
module tb;
  reg clk = 0;
  reg [7:0] n = 0;
  always #5 clk = ~clk;
  always @(posedge clk) n <= n + 8'd1;
  initial begin
    repeat (10) @(posedge clk);
    $finish;
  end
endmodule
)",
                      "tb");
  sim->run();
  const SimStats& st = sim->stats();
  // 10 posedges; the n <= n+1 NBA of the final one is still queued when
  // $finish ends the slot, so 9 are committed.
  EXPECT_GE(st.nba_commits, 9);
  EXPECT_GT(st.events, 0);
  EXPECT_GT(st.time_slots, 10);
  EXPECT_GT(st.instrs, 0);
}

TEST(VsimExec, PokeUnknownSignalThrows) {
  auto sim = make_sim("module m;\n  wire w;\nendmodule\n", "m");
  EXPECT_THROW(sim->poke("ghost", 1), std::runtime_error);
  EXPECT_THROW(sim->peek("ghost"), std::runtime_error);
}

}  // namespace
}  // namespace hlsw::vsim
