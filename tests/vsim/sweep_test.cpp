// Parallel vsim_sweep: the ONE elaborated Design is shared read-only across
// worker threads while every shard builds its own Simulation — serial and
// parallel sweeps must agree byte for byte (results AND mismatch lists),
// merged deterministically via util::map_ordered. This file is also
// compiled into a ThreadSanitizer variant (vsim_sweep_test_tsan), which is
// what actually certifies the shared-Design claim.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "hls/builder.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "hls/verify.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "util/thread_pool.h"
#include "vsim/harness.h"

namespace hlsw::vsim {
namespace {

using hls::CosimResult;
using hls::Directives;
using hls::FxValue;
using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;

// Stateless squared-MAC (the cosim_test idiom): acc is rewritten from a
// constant every invocation, so vector blocks are independent and the
// sweep may shard freely.
hls::Function build_stateless_mac() {
  hls::FunctionBuilder fb("sqmac");
  const int x = fb.add_array("x", 16, hls::fx(10, 0), false,
                             hls::PortDir::kIn);
  const int acc =
      fb.add_var("acc", hls::fx(28, 8), false, hls::PortDir::kOut);
  {
    auto b0 = fb.block("init");
    b0.var_write(acc, b0.cnst(hls::fx(28, 8), 0.0));
  }
  {
    auto l = fb.loop("mac", 16);
    const int xv = l.array_read(x, {1, 0});
    l.var_write(acc, l.add(l.var_read(acc), l.mul(xv, xv)));
  }
  return fb.build();
}

std::vector<PortIo> random_mac_vectors(int n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<PortIo> out;
  for (int i = 0; i < n; ++i) {
    PortIo io;
    std::vector<FxValue> xs(16);
    for (auto& e : xs) {
      e.fw = 10;
      e.re = static_cast<int>(rng() % 1024) - 512;
    }
    io.arrays["x"] = xs;
    out.push_back(std::move(io));
  }
  return out;
}

TEST(VsimSweep, SerialAndParallelSweepsAgree) {
  const hls::Function f = build_stateless_mac();
  Directives dir;
  dir.loops["mac"].pipeline_ii = 1;
  const auto r = run_synthesis(f, dir, TechLibrary::asic90());

  const auto vectors = random_mac_vectors(96, 7);
  const CosimResult serial = vsim_sweep(r.transformed, r.schedule, vectors,
                                        {.threads = 0, .block_size = 16});
  const CosimResult parallel = vsim_sweep(r.transformed, r.schedule, vectors,
                                          {.threads = 4, .block_size = 16});
  EXPECT_TRUE(serial.ok())
      << (serial.mismatches.empty() ? "" : serial.mismatches.front());
  EXPECT_TRUE(parallel.ok());
  EXPECT_EQ(serial.vectors, 96u);
  EXPECT_EQ(serial.blocks, 6u);
  EXPECT_EQ(parallel.blocks, serial.blocks);
  EXPECT_EQ(parallel.mismatches, serial.mismatches);

  // An externally owned pool shared across sweeps behaves the same.
  util::ThreadPool pool(3);
  const CosimResult pooled = vsim_sweep(r.transformed, r.schedule, vectors,
                                        {.block_size = 16, .pool = &pool});
  EXPECT_TRUE(pooled.ok());
  EXPECT_EQ(pooled.blocks, serial.blocks);
}

TEST(VsimSweep, StatefulDecoderSweepsAsOneBlock) {
  // The QAM decoder carries state across symbols; block_size >= vectors
  // keeps one sequential replay from reset — still through the pool, still
  // executing parsed Verilog text on a worker thread.
  const qam::Architecture arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  qam::LinkStimulus stim((qam::LinkConfig()));
  const auto vectors = qam::link_input_batch(&stim, 20);
  const CosimResult res =
      vsim_sweep(r.transformed, r.schedule, vectors,
                 {.threads = 2, .block_size = vectors.size()});
  EXPECT_TRUE(res.ok()) << (res.mismatches.empty() ? ""
                                                   : res.mismatches.front());
  EXPECT_EQ(res.blocks, 1u);
  EXPECT_EQ(res.vectors, 20u);
}

TEST(VsimSweep, RepeatSweepsShareOneParsedDesign) {
  // Every sweep entry point — vsim_sweep, the nway battery legs, the
  // packed multi-lane path — funnels through load_design's process-wide
  // LRU, so re-sweeping the same emitted text must be all cache hits: the
  // module is parsed and elaborated at most once, never once per leg.
  const hls::Function f = build_stateless_mac();
  Directives dir;
  dir.loops["mac"].pipeline_ii = 1;
  const auto r = run_synthesis(f, dir, TechLibrary::asic90());
  const auto vectors = random_mac_vectors(32, 11);

  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  auto& m = obs::MetricsRegistry::instance();

  // Prime the cache (first contact may miss), then measure a re-sweep.
  vsim_sweep(r.transformed, r.schedule, vectors, {.block_size = 8});
  const double hits0 = m.counter_value("vsim.design_cache.hits");
  const double misses0 = m.counter_value("vsim.design_cache.misses");
  const CosimResult again = vsim_sweep(r.transformed, r.schedule, vectors,
                                       {.threads = 2, .block_size = 8});
  EXPECT_TRUE(again.ok());
  EXPECT_GE(m.counter_value("vsim.design_cache.hits"), hits0 + 1.0)
      << "re-sweeping the same design did not hit the design cache";
  EXPECT_EQ(m.counter_value("vsim.design_cache.misses"), misses0)
      << "re-sweeping the same design re-parsed it";

  // The packed multi-lane path funnels through the same LRU: a lanes > 1
  // re-sweep of the same text must also be pure cache hits, not a
  // per-lane or per-batch re-elaboration.
  const double hits1 = m.counter_value("vsim.design_cache.hits");
  const double misses1 = m.counter_value("vsim.design_cache.misses");
  const CosimResult packed = vsim_sweep(r.transformed, r.schedule, vectors,
                                        {.block_size = 8, .lanes = 4});
  EXPECT_TRUE(packed.ok());
  EXPECT_GE(m.counter_value("vsim.design_cache.hits"), hits1 + 1.0)
      << "packed re-sweep of the same design did not hit the design cache";
  EXPECT_EQ(m.counter_value("vsim.design_cache.misses"), misses1)
      << "packed re-sweep of the same design re-parsed it";

  obs::set_enabled(was_enabled);
}

TEST(VsimSweep, EmptyVectorSetIsTriviallyOk) {
  const hls::Function f = build_stateless_mac();
  const auto r = run_synthesis(f, Directives(), TechLibrary::asic90());
  const CosimResult res = vsim_sweep(r.transformed, r.schedule, {});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.vectors, 0u);
}

}  // namespace
}  // namespace hlsw::vsim
