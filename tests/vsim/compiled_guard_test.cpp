// Performance ratio guard for the compiled vsim backend (labeled
// bench_smoke in ctest): on the merge architecture the compiled backend
// must beat the event-driven backend by at least 2x per-symbol — far below
// the measured gap, so CI noise cannot flake it, but tight enough to catch
// the compiled path silently falling back or regressing to event speed.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/verilog.h"
#include "vsim/harness.h"

namespace hlsw::vsim {
namespace {

using hls::PortIo;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkStimulus;

double run_symbols_ms(DutHarness& dut, const std::vector<PortIo>& batch) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& in : batch) dut.run(in);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

TEST(VsimCompiledGuard, CompiledBeatsEventByAtLeast2xOnMergeArch) {
  const qam::Architecture arch = qam::table1_architectures()[0];  // merge
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                                    TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);

  LinkStimulus stim((LinkConfig()));
  const auto batch = qam::link_input_batch(&stim, 60);

  SimConfig event_cfg;
  event_cfg.compiled = false;
  DutHarness event_dut(r.transformed, design, event_cfg);
  DutHarness compiled_dut(r.transformed, design);
  ASSERT_STREQ(event_dut.sim().backend(), "event");
  ASSERT_STREQ(compiled_dut.sim().backend(), "compiled")
      << compiled_dut.sim().fallback_reason();

  // Warm both paths (plan compile, allocator), then take best-of-3 per
  // backend so a scheduler hiccup on one run cannot fail the guard.
  run_symbols_ms(compiled_dut, batch);
  run_symbols_ms(event_dut, batch);
  double t_compiled = 1e300, t_event = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t_compiled = std::min(t_compiled, run_symbols_ms(compiled_dut, batch));
    t_event = std::min(t_event, run_symbols_ms(event_dut, batch));
  }

  ASSERT_GT(t_compiled, 0.0);
  const double ratio = t_event / t_compiled;
  EXPECT_GE(ratio, 2.0) << "compiled backend only " << ratio
                        << "x faster than event (event " << t_event
                        << " ms vs compiled " << t_compiled << " ms)";
}

}  // namespace
}  // namespace hlsw::vsim
