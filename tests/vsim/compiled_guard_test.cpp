// Performance ratio guards for the vsim backend ladder (labeled
// bench_smoke in ctest): on the merge architecture the compiled backend
// must beat the event-driven backend by at least 2x per-symbol, the
// codegen backend must beat the compiled interpreter by at least 2x, and
// the packed 64-lane engine must beat per-block scalar replay by at least
// 2x in DUT throughput. Every floor sits far below the measured gap
// (BENCH_vsim.json: ~15x, ~7x and ~5x respectively), so CI noise cannot
// flake the guards, but they are tight enough to catch a backend silently
// falling back or regressing to the tier below.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/verilog.h"
#include "vsim/codegen.h"
#include "vsim/harness.h"
#include "vsim/pack.h"

namespace hlsw::vsim {
namespace {

using hls::PortIo;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkStimulus;

double run_symbols_ms(DutHarness& dut, const std::vector<PortIo>& batch) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& in : batch) dut.run(in);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

TEST(VsimCompiledGuard, CompiledBeatsEventByAtLeast2xOnMergeArch) {
  const qam::Architecture arch = qam::table1_architectures()[0];  // merge
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                                    TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);

  LinkStimulus stim((LinkConfig()));
  const auto batch = qam::link_input_batch(&stim, 60);

  SimConfig event_cfg;
  event_cfg.compiled = false;
  DutHarness event_dut(r.transformed, design, event_cfg);
  DutHarness compiled_dut(r.transformed, design);
  ASSERT_STREQ(event_dut.sim().backend(), "event");
  ASSERT_STREQ(compiled_dut.sim().backend(), "compiled")
      << compiled_dut.sim().fallback_reason();

  // Warm both paths (plan compile, allocator), then take best-of-3 per
  // backend so a scheduler hiccup on one run cannot fail the guard.
  run_symbols_ms(compiled_dut, batch);
  run_symbols_ms(event_dut, batch);
  double t_compiled = 1e300, t_event = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t_compiled = std::min(t_compiled, run_symbols_ms(compiled_dut, batch));
    t_event = std::min(t_event, run_symbols_ms(event_dut, batch));
  }

  ASSERT_GT(t_compiled, 0.0);
  const double ratio = t_event / t_compiled;
  EXPECT_GE(ratio, 2.0) << "compiled backend only " << ratio
                        << "x faster than event (event " << t_event
                        << " ms vs compiled " << t_compiled << " ms)";
}

TEST(VsimCodegenGuard, CodegenBeatsCompiledByAtLeast2xOnMergeArch) {
  if (!codegen_available())
    GTEST_SKIP() << "no host C++ toolchain — codegen backend unavailable";
  const qam::Architecture arch = qam::table1_architectures()[0];  // merge
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                                    TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);

  LinkStimulus stim((LinkConfig()));
  const auto batch = qam::link_input_batch(&stim, 60);

  SimConfig codegen_cfg;
  codegen_cfg.backend = Backend::kCodegen;
  DutHarness compiled_dut(r.transformed, design);
  DutHarness codegen_dut(r.transformed, design, codegen_cfg);
  ASSERT_STREQ(compiled_dut.sim().backend(), "compiled")
      << compiled_dut.sim().fallback_reason();
  ASSERT_STREQ(codegen_dut.sim().backend(), "codegen")
      << codegen_dut.sim().fallback_reason();

  // Warmup absorbs the one-time generate+compile+dlopen, then best-of-3.
  run_symbols_ms(codegen_dut, batch);
  run_symbols_ms(compiled_dut, batch);
  double t_codegen = 1e300, t_compiled = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t_codegen = std::min(t_codegen, run_symbols_ms(codegen_dut, batch));
    t_compiled = std::min(t_compiled, run_symbols_ms(compiled_dut, batch));
  }

  ASSERT_GT(t_codegen, 0.0);
  const double ratio = t_compiled / t_codegen;
  EXPECT_GE(ratio, 2.0) << "codegen backend only " << ratio
                        << "x faster than compiled (compiled " << t_compiled
                        << " ms vs codegen " << t_codegen << " ms)";
}

TEST(VsimPackedGuard, Packed64BeatsScalarReplayByAtLeast2xDutThroughput) {
  // 64 independent 10-symbol blocks: per-block scalar DutHarness replay vs
  // one 64-lane PackedDutHarness over the same streams — the DUT-side work
  // a packed sweep saves (the golden interpreter leg is identical on both
  // sides of a full sweep, so it is excluded here).
  const qam::Architecture arch = qam::table1_architectures()[0];
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                                    TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);
  std::string why;
  const auto plan = compiled_plan(design, &why);
  ASSERT_NE(plan, nullptr) << why;

  const int kLanes = 64, kBlock = 10;
  LinkStimulus stim((LinkConfig()));
  const auto batch = qam::link_input_batch(&stim, kLanes * kBlock);
  std::vector<std::vector<PortIo>> streams(kLanes);
  for (int b = 0; b < kLanes; ++b)
    streams[static_cast<std::size_t>(b)].assign(
        batch.begin() + b * kBlock, batch.begin() + (b + 1) * kBlock);

  const auto scalar_ms = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& s : streams) {
      DutHarness dut(r.transformed, design);
      dut.run_stream(s);
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  const auto packed_ms = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    PackedDutHarness dut(r.transformed, plan, kLanes);
    dut.run_streams(streams);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  scalar_ms();  // warm the plan memo and allocator on both paths
  packed_ms();
  double t_scalar = 1e300, t_packed = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t_scalar = std::min(t_scalar, scalar_ms());
    t_packed = std::min(t_packed, packed_ms());
  }

  ASSERT_GT(t_packed, 0.0);
  const double ratio = t_scalar / t_packed;
  EXPECT_GE(ratio, 2.0) << "packed 64-lane engine only " << ratio
                        << "x faster than scalar replay (scalar " << t_scalar
                        << " ms vs packed " << t_packed << " ms)";
}

TEST(VsimPackedGuard, PackedCodegenBeatsInterpretedPackedByAtLeast2x) {
  // The tentpole ratio of the packed-codegen PR: the generated lane-major
  // engine vs the interpreted packed engine on the same 64-lane sweep DUT
  // leg (identical streams, identical lane count — only the execution tier
  // differs). Measured ~2.4x at 64 lanes and ~5x at 8 (the generated
  // engine's dispatch-elimination gain shrinks as the interpreter amortizes
  // its per-op dispatch over more lanes; see EXPERIMENTS.md). best-of-3
  // minima keep the 2x floor stable under CI load; the guard exists so the
  // packed kAuto path can never silently regress to op-by-op dispatch
  // while tests still pass bit-for-bit.
  if (!codegen_available())
    GTEST_SKIP() << "no host C++ toolchain — packed codegen unavailable";
  const qam::Architecture arch = qam::table1_architectures()[0];
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                                    TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  const auto design = load_design(verilog, r.transformed.name);
  std::string why;
  const auto plan = compiled_plan(design, &why);
  ASSERT_NE(plan, nullptr) << why;

  const int kLanes = 64, kBlock = 10;
  LinkStimulus stim((LinkConfig()));
  const auto batch = qam::link_input_batch(&stim, kLanes * kBlock);
  std::vector<std::vector<PortIo>> streams(kLanes);
  for (int b = 0; b < kLanes; ++b)
    streams[static_cast<std::size_t>(b)].assign(
        batch.begin() + b * kBlock, batch.begin() + (b + 1) * kBlock);

  SimConfig interp_cfg;
  interp_cfg.backend = Backend::kCompiled;  // pin the interpreted tier
  SimConfig cg_cfg;
  cg_cfg.backend = Backend::kPackedCodegen;
  {
    PackedDutHarness probe(r.transformed, plan, kLanes, cg_cfg);
    ASSERT_STREQ(probe.backend(), "packed_codegen")
        << probe.fallback_reason();
  }

  const auto run_ms = [&](const SimConfig& cfg) {
    const auto t0 = std::chrono::steady_clock::now();
    PackedDutHarness dut(r.transformed, plan, kLanes, cfg);
    dut.run_streams(streams);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  run_ms(cg_cfg);  // warm: generate+compile+dlopen lands in the .so cache
  run_ms(interp_cfg);
  double t_cg = 1e300, t_interp = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t_cg = std::min(t_cg, run_ms(cg_cfg));
    t_interp = std::min(t_interp, run_ms(interp_cfg));
  }

  ASSERT_GT(t_cg, 0.0);
  const double ratio = t_interp / t_cg;
  EXPECT_GE(ratio, 2.0) << "packed codegen only " << ratio
                        << "x faster than the interpreted packed engine "
                        << "(interpreted " << t_interp << " ms vs generated "
                        << t_cg << " ms)";
}

}  // namespace
}  // namespace hlsw::vsim
