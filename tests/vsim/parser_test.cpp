// Front-end contract of the vsim Verilog subset: well-formed emitter/
// testbench constructs parse into the expected AST shape, and malformed
// input fails loudly (std::runtime_error carrying a line number) instead of
// mis-parsing — the negative half is what makes the structural "emitter
// output parses" tests meaningful.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "vsim/elab.h"
#include "vsim/parser.h"

namespace hlsw::vsim {
namespace {

TEST(VsimParser, ModuleHeaderAndDeclarations) {
  const auto su = parse(R"(
module m (
  input wire clk,
  input wire signed [15:0] a,
  output reg signed [15:0] q
);
  reg signed [63:0] acc;
  wire signed [63:0] w0;
  reg [15:0] state;
  localparam S_IDLE = 0;
  reg signed [9:0] mem [0:7];
  assign w0 = acc + {{48{a[15]}}, a};
  always @(posedge clk) q <= w0[15:0];
endmodule
)");
  ASSERT_EQ(su.modules.size(), 1u);
  const Module& m = su.modules[0];
  EXPECT_EQ(m.name, "m");
  ASSERT_EQ(m.port_order.size(), 3u);
  EXPECT_EQ(m.port_order[0], "clk");
  const NetDecl *clk = nullptr, *a = nullptr, *q = nullptr, *mem = nullptr;
  for (const auto& n : m.nets) {
    if (n.name == "clk") clk = &n;
    if (n.name == "a") a = &n;
    if (n.name == "q") q = &n;
    if (n.name == "mem") mem = &n;
  }
  ASSERT_TRUE(clk && a && q && mem);
  EXPECT_TRUE(clk->is_input);
  EXPECT_FALSE(clk->is_output);
  EXPECT_EQ(a->width, 16);
  EXPECT_TRUE(a->is_signed);
  EXPECT_TRUE(q->is_output);
  EXPECT_TRUE(q->is_reg);
  EXPECT_EQ(mem->array_len, 8);
  EXPECT_EQ(mem->width, 10);
  EXPECT_EQ(m.assigns.size(), 1u);
  EXPECT_EQ(m.always.size(), 1u);
}

TEST(VsimParser, TestbenchConstructs) {
  // The behavioral subset the generated testbench leans on: init values,
  // always with an intra-assignment delay, tasks, repeat, event controls,
  // system tasks with string arguments, integer declarations.
  const auto su = parse(R"(
module tb;
  reg clk = 0, rst = 1, start = 0;
  wire done;
  integer errors = 0;
  always #5 clk = ~clk;
  task run_vector(input integer idx);
    begin
      @(negedge clk); start = 1;
      @(negedge clk); start = 0;
      @(posedge done);
    end
  endtask
  initial begin
    repeat (3) @(negedge clk); rst = 0;
    run_vector(0);
    if (errors == 0) $display("PASS: all %0d vectors matched", errors);
    $finish;
  end
endmodule
)");
  ASSERT_EQ(su.modules.size(), 1u);
  const Module& m = su.modules[0];
  EXPECT_EQ(m.tasks.size(), 1u);
  EXPECT_EQ(m.tasks[0].name, "run_vector");
  ASSERT_EQ(m.always.size(), 1u);
  EXPECT_EQ(m.always[0]->kind, StmtKind::kDelay);
  ASSERT_EQ(m.initials.size(), 1u);
}

TEST(VsimParser, InstancesByNamedConnection) {
  const auto su = parse(R"(
module leaf (input wire a, output wire b);
  assign b = !a;
endmodule
module top;
  wire x, y;
  leaf u0 (.a(x), .b(y));
endmodule
)");
  ASSERT_EQ(su.modules.size(), 2u);
  ASSERT_EQ(su.modules[1].instances.size(), 1u);
  const Instance& inst = su.modules[1].instances[0];
  EXPECT_EQ(inst.module_name, "leaf");
  EXPECT_EQ(inst.inst_name, "u0");
  ASSERT_EQ(inst.conns.size(), 2u);
  EXPECT_EQ(inst.conns[0].port, "a");
}

TEST(VsimParser, SizedLiteralsAndOperators) {
  // Exercises the emitter's expression grammar end to end; shape-checking
  // one nested case is enough — execution tests pin the semantics.
  const auto su = parse(R"(
module e (input wire signed [63:0] a, output wire signed [63:0] q);
  wire signed [63:0] t0, t1;
  assign t0 = (a <<< 3) + -64'sd12 - $signed({{63{1'b0}}, a[5]});
  assign t1 = (a >= 64'sd0 ? t0 : {a[62:0], 1'b0});
  assign q = t1 >>> 2;
endmodule
)");
  ASSERT_EQ(su.modules[0].assigns.size(), 3u);
  const Expr& rhs = *su.modules[0].assigns[1].rhs;
  EXPECT_EQ(rhs.kind, ExprKind::kTernary);
}

// ---- Negative tests: the parser must throw, with a line number ------------

void expect_parse_error(const std::string& src, const std::string& needle) {
  try {
    parse(src);
    FAIL() << "expected parse failure for: " << src;
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line"), std::string::npos) << msg;
    if (!needle.empty()) {
      EXPECT_NE(msg.find(needle), std::string::npos) << msg;
    }
  }
}

TEST(VsimParser, RejectsMalformedInput) {
  expect_parse_error("module m (input wire a;\nendmodule\n", "");
  expect_parse_error("module m;\n  wire w\nendmodule\n", "");       // no ';'
  expect_parse_error("module m;\n  assign = 1;\nendmodule\n", "");  // no lhs
  expect_parse_error("module m;\n  wire [3:0 w;\nendmodule\n", "");
  expect_parse_error("module m;\n  initial begin $finish;\n", "");  // EOF
  expect_parse_error("module m;\n  wire w = ;\nendmodule\n", "");
}

TEST(VsimParser, RejectsPartSelectOfComposite) {
  // `(a + b)[3:0]` is not legal Verilog-2001 — this pin is what forced the
  // emitter to materialize composite sources into fresh wires.
  expect_parse_error(
      "module m (input wire signed [7:0] a, output wire q);\n"
      "  assign q = (a + 8'sd1)[0];\nendmodule\n",
      "");
}

TEST(VsimParser, RejectsUnterminatedString) {
  expect_parse_error("module m;\n  initial $display(\"oops);\nendmodule\n",
                     "");
}

TEST(VsimParser, RejectsStrayCharacters) {
  expect_parse_error("module m;\n  wire w; #@!\nendmodule\n", "");
}

// ---- Elaboration negatives -------------------------------------------------

TEST(VsimElab, UndeclaredIdentifierFails) {
  const auto su = parse(
      "module m (output wire q);\n  assign q = ghost;\nendmodule\n");
  EXPECT_THROW(elaborate(su, "m"), std::runtime_error);
}

TEST(VsimElab, UnknownTopModuleFails) {
  const auto su = parse("module m;\n  wire w;\nendmodule\n");
  EXPECT_THROW(elaborate(su, "nope"), std::runtime_error);
}

TEST(VsimElab, OverwideSignalFails) {
  // The >64-bit limit is enforced at the front door: the parser only
  // accepts [msb:0] ranges with msb <= 63.
  expect_parse_error(
      "module m;\n  reg signed [64:0] monster;\n"
      "  initial monster = 0;\nendmodule\n",
      "msb");
}

TEST(VsimElab, FlattensInstancesAndFoldsLocalparams) {
  const auto su = parse(R"(
module leaf (input wire signed [7:0] a, output wire signed [7:0] b);
  localparam K = 3;
  assign b = a + K;
endmodule
module top (input wire signed [7:0] x, output wire signed [7:0] y);
  leaf u0 (.a(x), .b(y));
endmodule
)");
  const auto d = elaborate(su, "top");
  EXPECT_EQ(d->top, "top");
  EXPECT_GE(d->find("x"), 0);
  EXPECT_EQ(d->assigns.size(), 1u);  // leaf's assign, aliased onto y
  EXPECT_EQ(d->find("K"), -1) << "localparams fold away";
}

}  // namespace
}  // namespace hlsw::vsim
