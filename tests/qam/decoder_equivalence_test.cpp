// Bit-exactness of the verification chain (experiment F4): the native
// fixpt-based Figure 4 model and the IR interpreter must produce identical
// 6-bit outputs AND identical internal state (coefficients, delay lines,
// decisions) for thousands of symbols of real channel stimulus. This is
// the "verify the generated RTL against the original functional C" story
// of the paper's Figure 1, at the first link of the chain.
#include <gtest/gtest.h>

#include "hls/interp.h"
#include "qam/decoder_fixed.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"

namespace hlsw::qam {
namespace {

using fixpt::complex_fixed;
using fixpt::fixed;
using fixpt::wide_int;
using hls::FxValue;
using hls::Interpreter;
using hls::PortIo;

complex_fixed<10, 0> from_fxvalue(const FxValue& v) {
  return complex_fixed<10, 0>(
      fixed<10, 0>::from_raw(wide_int<10>(static_cast<long long>(v.re))),
      fixed<10, 0>::from_raw(wide_int<10>(static_cast<long long>(v.im))));
}

void expect_state_equal(const QamDecoderFixed<>& dec, const Interpreter& ir,
                        int step) {
  const auto& ffe = ir.array_state("ffe_c");
  for (int k = 0; k < 8; ++k) {
    ASSERT_EQ(dec.ffe_coeff(k).r().raw().to_int64(),
              static_cast<long long>(ffe[static_cast<size_t>(k)].re))
        << "ffe_c[" << k << "].re at step " << step;
    ASSERT_EQ(dec.ffe_coeff(k).i().raw().to_int64(),
              static_cast<long long>(ffe[static_cast<size_t>(k)].im))
        << "ffe_c[" << k << "].im at step " << step;
  }
  const auto& dfe = ir.array_state("dfe_c");
  for (int k = 0; k < 16; ++k) {
    ASSERT_EQ(dec.dfe_coeff(k).r().raw().to_int64(),
              static_cast<long long>(dfe[static_cast<size_t>(k)].re))
        << "dfe_c[" << k << "].re at step " << step;
  }
  const auto& sv = ir.array_state("SV");
  for (int k = 0; k < 16; ++k) {
    ASSERT_EQ(dec.sv(k).r().raw().to_int64(),
              static_cast<long long>(sv[static_cast<size_t>(k)].re))
        << "SV[" << k << "].re at step " << step;
    ASSERT_EQ(dec.sv(k).i().raw().to_int64(),
              static_cast<long long>(sv[static_cast<size_t>(k)].im))
        << "SV[" << k << "].im at step " << step;
  }
  const auto& x = ir.array_state("x");
  for (int k = 0; k < 8; ++k) {
    ASSERT_EQ(dec.x_tap(k).r().raw().to_int64(),
              static_cast<long long>(x[static_cast<size_t>(k)].re))
        << "x[" << k << "].re at step " << step;
  }
}

TEST(DecoderEquivalence, NativeFixedMatchesIrInterpreterBitForBit) {
  QamDecoderFixed<> native;
  Interpreter ir(build_qam_decoder_ir());
  LinkStimulus stim((LinkConfig()));

  for (int n = 0; n < 3000; ++n) {
    const LinkSample s = stim.next();
    // Native path.
    const complex_fixed<10, 0> x_in[2] = {from_fxvalue(s.q0),
                                          from_fxvalue(s.q1)};
    wide_int<6, false> data_native;
    native.decode(x_in, &data_native);
    // IR path, identical raw inputs.
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    const PortIo out = ir.run(io);
    ASSERT_EQ(data_native.to_uint64(),
              static_cast<unsigned long long>(
                  static_cast<long long>(out.vars.at("data").re)))
        << "decoded word diverged at symbol " << n;
    if (n % 100 == 0) expect_state_equal(native, ir, n);
  }
  expect_state_equal(native, ir, 3000);
}

TEST(DecoderEquivalence, HoldsAcrossWidthVariants) {
  // The parameterized widths of section 4.1: both models re-parameterize
  // consistently. 12-bit data path / coefficients.
  QamDecoderFixed<10, 12, 12, 12, 12> native;
  DecoderWidths w;
  w.ffe_w = w.dfe_w = w.ffe_c_w = w.dfe_c_w = 12;
  Interpreter ir(build_qam_decoder_ir(w));
  LinkStimulus stim((LinkConfig()));
  for (int n = 0; n < 500; ++n) {
    const LinkSample s = stim.next();
    const complex_fixed<10, 0> x_in[2] = {from_fxvalue(s.q0),
                                          from_fxvalue(s.q1)};
    wide_int<6, false> data_native;
    native.decode(x_in, &data_native);
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    const PortIo out = ir.run(io);
    ASSERT_EQ(static_cast<long long>(data_native.to_uint64()),
              static_cast<long long>(out.vars.at("data").re))
        << "diverged at symbol " << n;
  }
}

TEST(DecoderEquivalence, CoefficientPreloadMatches) {
  // Download the same trained coefficients into both models; they must
  // remain bit-identical while tracking decision-directed.
  LinkConfig cfg;
  LinkStimulus train_stim(cfg);
  const QamDecoderFloat trained = train_float_reference(&train_stim, 4000);

  QamDecoderFixed<> native;
  Interpreter ir(build_qam_decoder_ir());
  for (int k = 0; k < 8; ++k)
    native.set_ffe_coeff(k, quantize_coeff<10>(trained.ffe_coeff(k)));
  for (int k = 0; k < 16; ++k)
    native.set_dfe_coeff(k, quantize_coeff<10>(trained.dfe_coeff(k)));
  ir.set_array_state("ffe_c", coeffs_to_fxvalues(trained, true, 10));
  ir.set_array_state("dfe_c", coeffs_to_fxvalues(trained, false, 10));

  // Verify the two preload paths agree before running.
  const auto& ffe = ir.array_state("ffe_c");
  for (int k = 0; k < 8; ++k)
    ASSERT_EQ(native.ffe_coeff(k).r().raw().to_int64(),
              static_cast<long long>(ffe[static_cast<size_t>(k)].re));

  LinkStimulus stim(cfg);
  for (int n = 0; n < 1000; ++n) {
    const LinkSample s = stim.next();
    const complex_fixed<10, 0> x_in[2] = {from_fxvalue(s.q0),
                                          from_fxvalue(s.q1)};
    wide_int<6, false> data_native;
    native.decode(x_in, &data_native);
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    const PortIo out = ir.run(io);
    ASSERT_EQ(static_cast<long long>(data_native.to_uint64()),
              static_cast<long long>(out.vars.at("data").re))
        << "diverged at symbol " << n;
  }
  expect_state_equal(native, ir, 1000);
}

}  // namespace
}  // namespace hlsw::qam
