// The parameterized-decoder claim of section 4.1 ("facilitates future
// reuse of the algorithm"): the same Figure 4 structure re-instantiated at
// 16-QAM and 256-QAM. Checks the word mapping generalizes, the float and
// fixed models agree, and the link decodes error-free at a suitable SNR.
#include <gtest/gtest.h>

#include <set>

#include "dsp/metrics.h"
#include "qam/decoder_fixed.h"
#include "qam/link.h"

namespace hlsw::qam {
namespace {

using fixpt::fixed;
using fixpt::wide_int;

TEST(Mqam, PaperWordBijectionAtAllSizes) {
  for (int bits : {2, 3, 4}) {
    const int m = 1 << (2 * bits);
    std::set<int> seen;
    for (int w = 0; w < m; ++w) {
      const auto p = paper_map(w, bits);
      const int levels = 1 << bits;
      const int ri =
          static_cast<int>(std::lround(p.real() * 2 * levels - 1)) / 2;
      const int ii =
          static_cast<int>(std::lround(p.imag() * 2 * levels - 1)) / 2;
      EXPECT_EQ(paper_word(ri, ii, bits), w) << "bits=" << bits;
      seen.insert(w);
    }
    EXPECT_EQ(static_cast<int>(seen.size()), m);
  }
}

template <int B, int W = 10>
void run_mqam_link(double snr_db, double max_ser) {
  LinkConfig cfg;
  cfg.qam_bits = B;
  cfg.x_w = W;
  cfg.channel.snr_db = snr_db;
  LinkStimulus stim(cfg);
  const QamDecoderFloat trained = train_float_reference(&stim, 8000);

  QamDecoderFixed<W, W, W, W, W, B> dec;
  for (int k = 0; k < 8; ++k)
    dec.set_ffe_coeff(k, quantize_coeff<W>(trained.ffe_coeff(k)));
  for (int k = 0; k < 16; ++k)
    dec.set_dfe_coeff(k, quantize_coeff<W>(trained.dfe_coeff(k)));

  dsp::ErrorCounter errs_fixed, errs_float;
  QamDecoderFloat fdec = trained;
  for (int n = 0; n < 8000; ++n) {
    const LinkSample s = stim.next();
    using Dec = QamDecoderFixed<W, W, W, W, W, B>;
    const typename Dec::input_type x_in[2] = {
        {fixed<W, 0>::from_raw(wide_int<W>(static_cast<long long>(s.q0.re))),
         fixed<W, 0>::from_raw(wide_int<W>(static_cast<long long>(s.q0.im)))},
        {fixed<W, 0>::from_raw(wide_int<W>(static_cast<long long>(s.q1.re))),
         fixed<W, 0>::from_raw(
             wide_int<W>(static_cast<long long>(s.q1.im)))}};
    typename Dec::output_type word;
    dec.decode(x_in, &word);
    const int got_float = fdec.decode(s.s0, s.s1);
    const int want = stim.sent_delayed(cfg.decision_delay);
    if (want >= 0 && n > 16) {
      errs_fixed.update(want, static_cast<int>(word.to_uint64()), 2 * B);
      errs_float.update(want, got_float, 2 * B);
    }
  }
  EXPECT_LE(errs_float.ser(), max_ser) << "float, B=" << B;
  EXPECT_LE(errs_fixed.ser(), max_ser) << "fixed, B=" << B;
}

TEST(Mqam, SixteenQamLinkDecodesCleanly) {
  // 16-QAM has 4x the decision distance of 64-QAM: clean at 30 dB.
  run_mqam_link<2>(30.0, 1e-3);
}

TEST(Mqam, TwoFiftySixQamLinkDecodesAtHighSnr) {
  // 256-QAM halves the decision margin vs 64-QAM: it needs ~6 dB more SNR
  // AND a wider datapath — at the paper's 10 bits the fixed decoder's
  // quantization floor already costs ~0.7% SER (demonstrated below), while
  // 12 bits restore clean decoding. Exactly section 4.1's point that the
  // required widths follow the target error rate.
  run_mqam_link<4, 12>(44.0, 2e-3);
}

TEST(Mqam, TwoFiftySixQamAtTenBitsHitsTheQuantizationFloor) {
  LinkConfig cfg;
  cfg.qam_bits = 4;
  cfg.channel.snr_db = 44.0;
  LinkStimulus stim(cfg);
  const QamDecoderFloat trained = train_float_reference(&stim, 8000);
  QamDecoderFixed<10, 10, 10, 10, 10, 4> dec;
  for (int k = 0; k < 8; ++k)
    dec.set_ffe_coeff(k, quantize_coeff<10>(trained.ffe_coeff(k)));
  for (int k = 0; k < 16; ++k)
    dec.set_dfe_coeff(k, quantize_coeff<10>(trained.dfe_coeff(k)));
  dsp::ErrorCounter errs;
  for (int n = 0; n < 8000; ++n) {
    const LinkSample s = stim.next();
    using Dec = QamDecoderFixed<10, 10, 10, 10, 10, 4>;
    const Dec::input_type x_in[2] = {
        {fixed<10, 0>::from_raw(
             wide_int<10>(static_cast<long long>(s.q0.re))),
         fixed<10, 0>::from_raw(
             wide_int<10>(static_cast<long long>(s.q0.im)))},
        {fixed<10, 0>::from_raw(
             wide_int<10>(static_cast<long long>(s.q1.re))),
         fixed<10, 0>::from_raw(
             wide_int<10>(static_cast<long long>(s.q1.im)))}};
    Dec::output_type word;
    dec.decode(x_in, &word);
    const int want = stim.sent_delayed(cfg.decision_delay);
    if (want >= 0 && n > 16)
      errs.update(want, static_cast<int>(word.to_uint64()), 8);
  }
  EXPECT_GT(errs.ser(), 1e-3)
      << "at 256-QAM the 10-bit datapath quantization floor must show";
  EXPECT_LT(errs.ser(), 0.05) << "but the link still mostly decodes";
}

TEST(Mqam, PaperSixtyFourRemainsTheDefault) {
  static_assert(QamDecoderFixed<>::kQamBits == 6);
  static_assert(std::is_same_v<QamDecoderFixed<>::output_type,
                               wide_int<6, false>>);
}

}  // namespace
}  // namespace hlsw::qam
