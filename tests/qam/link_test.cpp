// Link-level tests of the Figure 3 system (experiment F3/D2) and the three
// Figure 4 listing defects documented in EXPERIMENTS.md: the slicer
// boundary placement (F4-slicer), the coefficient truncation bias
// (F4-bias), and the arithmetic data-word composition (F4-word).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dsp/metrics.h"
#include "qam/decoder_fixed.h"
#include "qam/link.h"

namespace hlsw::qam {
namespace {

using fixpt::fixed;
using fixpt::wide_int;

QamDecoderFixed<>::input_type to_input(const hls::FxValue& v) {
  return {fixed<10, 0>::from_raw(wide_int<10>(static_cast<long long>(v.re))),
          fixed<10, 0>::from_raw(wide_int<10>(static_cast<long long>(v.im)))};
}

// -- F4-word: the arithmetic composition --------------------------------------

TEST(PaperWord, MapAndWordAreInverseBijections) {
  std::set<int> seen;
  for (int w = 0; w < 64; ++w) {
    const auto p = paper_map(w);
    const int ri = static_cast<int>(std::lround(p.real() * 16 - 1)) / 2;
    const int ii = static_cast<int>(std::lround(p.imag() * 16 - 1)) / 2;
    EXPECT_EQ(paper_word(ri, ii), w);
    seen.insert(paper_word(ri, ii));
  }
  EXPECT_EQ(seen.size(), 64u) << "encode must be a bijection";
}

TEST(PaperWord, ArithmeticBorrowDiffersFromBitFields) {
  // ri = -4, ii = -4: arithmetic word is -36 mod 64 = 28; the bit-field
  // concatenation would be (4<<3)|4 = 36. Figure 4 produces 28.
  EXPECT_EQ(paper_word(-4, -4), 28);
  EXPECT_NE(paper_word(-4, -4), ((-4 & 7) << 3) | (-4 & 7));
  // Non-borrowing case: both conventions agree.
  EXPECT_EQ(paper_word(2, 3), (2 << 3) | 3);
}

TEST(PaperWord, DecoderOutputUsesArithmeticConvention) {
  // Feed the fixed decoder an exact constellation point through an ideal
  // channel with converged pass-through coefficients and check the word.
  QamDecoderFixed<> dec;
  // Pass-through: coefficient on tap 0 = 1 is not representable; instead
  // drive x_in directly at slicer scale with c0+c1 splitting the gain.
  dec.set_ffe_coeff(0, quantize_coeff<10>({0.499, 0}));
  dec.set_ffe_coeff(1, quantize_coeff<10>({0.499, 0}));
  // Decide the point (-7/16, -7/16) = word 28 under the paper convention.
  const auto pt = paper_map(28);
  EXPECT_DOUBLE_EQ(pt.real(), -7.0 / 16);
  for (int n = 0; n < 4; ++n) {
    const QamDecoderFixed<>::input_type x_in[2] = {
        {fixed<10, 0>(pt.real() / 0.998), fixed<10, 0>(pt.imag() / 0.998)},
        {fixed<10, 0>(pt.real() / 0.998), fixed<10, 0>(pt.imag() / 0.998)}};
    wide_int<6, false> word;
    dec.decode(x_in, &word);
    if (n > 0) {
      EXPECT_EQ(word.to_uint64(), 28u);
    }
  }
}

// -- F4-slicer: boundary placement ---------------------------------------------

TEST(Slicer, BoundariesSitMidwayBetweenLevels) {
  // Slightly below a level must still decide that level (the as-printed
  // truncating slicer would fall to the level below).
  QamDecoderFixed<> dec;
  dec.set_ffe_coeff(0, quantize_coeff<10>({0.499, 0}));
  dec.set_ffe_coeff(1, quantize_coeff<10>({0.499, 0}));
  auto decide = [&](double level) {
    QamDecoderFixed<> d2 = dec;
    wide_int<6, false> word;
    for (int n = 0; n < 3; ++n) {
      const QamDecoderFixed<>::input_type x_in[2] = {
          {fixed<10, 0>(level), fixed<10, 0>(level)},
          {fixed<10, 0>(level), fixed<10, 0>(level)}};
      d2.decode(x_in, &word);
    }
    return paper_map(static_cast<int>(word.to_uint64())).real();
  };
  // y ~ 0.998*level lands just below each level.
  EXPECT_DOUBLE_EQ(decide(-0.3125), -0.3125);
  EXPECT_DOUBLE_EQ(decide(0.4375), 0.4375);
  EXPECT_DOUBLE_EQ(decide(0.0625), 0.0625);
  EXPECT_DOUBLE_EQ(decide(-0.4375), -0.4375);
}

// -- Coefficient feasibility of the default channel ----------------------------

TEST(Link, TrainedCoefficientsFitTheCoefficientFormat) {
  LinkConfig cfg;
  LinkStimulus stim(cfg);
  const QamDecoderFloat trained = train_float_reference(&stim, 8000);
  double maxc = 0;
  for (int k = 0; k < 8; ++k) {
    maxc = std::max({maxc, std::abs(trained.ffe_coeff(k).real()),
                     std::abs(trained.ffe_coeff(k).imag())});
  }
  for (int k = 0; k < 16; ++k) {
    maxc = std::max({maxc, std::abs(trained.dfe_coeff(k).real()),
                     std::abs(trained.dfe_coeff(k).imag())});
  }
  EXPECT_LT(maxc, 0.499) << "sc_fixed<10,0> coefficients must not saturate";
  EXPECT_GT(maxc, 0.25) << "channel should actually exercise the range";
}

// -- F4-bias: truncating coefficient storage diverges ---------------------------

// A variant decoder with the paper's literal TRN/WRAP coefficient storage,
// to demonstrate the drift. Only the pieces needed for the experiment.
class TruncCoeffDecoder {
 public:
  void load(const QamDecoderFloat& t) {
    for (int k = 0; k < 8; ++k) {
      ffe_c_[k] = fixpt::complex_fixed<10, 0>(
          quantize_coeff<10>(t.ffe_coeff(k)));
    }
    for (int k = 0; k < 16; ++k)
      dfe_c_[k] = fixpt::complex_fixed<10, 0>(
          quantize_coeff<10>(t.dfe_coeff(k)));
  }
  // Same data path as QamDecoderFixed but TRN/WRAP coefficient updates.
  int decode(const QamDecoderFixed<>::input_type x_in[2]) {
    using namespace hlsw::fixpt;
    const fixed<10, 0> mu(fixed<12, 2>(1LL) >> 8);
    x_[0] = x_in[0];
    x_[1] = x_in[1];
    complex_fixed<11, 1> yffe(0), ydfe(0);
    for (int k = 0; k < 8; ++k) yffe += x_[k] * ffe_c_[k];
    for (int k = 0; k < 16; ++k) ydfe += sv_[k] * dfe_c_[k];
    const complex_fixed<11, 1> y(yffe - ydfe);
    fixed<4, 0> offset(0LL);
    offset[0] = 1;
    const fixed<3, 0, Quant::kRndZero, Ovf::kSat> r(
        fixed<10, 0, Quant::kRndZero, Ovf::kSat>(y.r() - offset));
    const fixed<3, 0, Quant::kRndZero, Ovf::kSat> i(
        fixed<10, 0, Quant::kRndZero, Ovf::kSat>(y.i() - offset));
    sv_[0] = complex_fixed<3, 0>(r, i) + complex_fixed<4, 0>(offset, offset);
    const complex_fixed<10, 0> e(sv_[0] - y);
    const fixed<6, 6> data_f(r * 64 + i * 8);
    for (int k = 0; k < 8; ++k) ffe_c_[k] += mu * e * x_[k].sign_conj();
    for (int k = 0; k < 16; ++k) dfe_c_[k] -= mu * e * sv_[k].sign_conj();
    for (int k = 4; k >= 0; k -= 2) {
      x_[k + 3] = x_[k + 1];
      x_[k + 2] = x_[k];
    }
    for (int k = 14; k >= 0; --k) sv_[k + 1] = sv_[k];
    return static_cast<int>(
        wide_int<6, false>(static_cast<long long>(data_f.to_int()))
            .to_uint64());
  }
  double ffe0() const { return ffe_c_[5].r().to_double(); }

 private:
  fixpt::complex_fixed<10, 0> ffe_c_[8]{};  // TRN/WRAP: the paper's literal
  fixpt::complex_fixed<10, 0> dfe_c_[16]{};
  fixpt::complex_fixed<10, 0> x_[8]{};
  fixpt::complex_fixed<4, 0> sv_[16]{};
};

TEST(Link, TruncatingCoefficientsDriftAndDiverge) {
  LinkConfig cfg;
  LinkStimulus stim(cfg);
  const QamDecoderFloat trained = train_float_reference(&stim, 6000);

  TruncCoeffDecoder bad;
  bad.load(trained);
  QamDecoderFixed<> good;
  for (int k = 0; k < 8; ++k)
    good.set_ffe_coeff(k, quantize_coeff<10>(trained.ffe_coeff(k)));
  for (int k = 0; k < 16; ++k)
    good.set_dfe_coeff(k, quantize_coeff<10>(trained.dfe_coeff(k)));

  dsp::ErrorCounter errs_bad, errs_good;
  for (int n = 0; n < 8000; ++n) {
    const LinkSample s = stim.next();
    const QamDecoderFixed<>::input_type x_in[2] = {to_input(s.q0),
                                                   to_input(s.q1)};
    const int want = stim.sent_delayed(cfg.decision_delay);
    const int got_bad = bad.decode(x_in);
    wide_int<6, false> word;
    good.decode(x_in, &word);
    if (want >= 0 && n > 2000) {  // well past the drift onset
      errs_bad.update(want, got_bad, 6);
      errs_good.update(want, static_cast<int>(word.to_uint64()), 6);
    }
  }
  EXPECT_GT(errs_bad.ser(), 0.5)
      << "TRN/WRAP coefficients must drift into divergence (finding F4-bias)";
  EXPECT_LT(errs_good.ser(), 1e-3)
      << "RND/SAT coefficients must track error-free";
}

// -- End-to-end SER across SNR ---------------------------------------------------

class SnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(SnrSweep, FixedDecoderTracksAfterDownload) {
  LinkConfig cfg;
  cfg.channel.snr_db = GetParam();
  LinkStimulus stim(cfg);
  const QamDecoderFloat trained = train_float_reference(&stim, 6000);
  QamDecoderFixed<> dec;
  for (int k = 0; k < 8; ++k)
    dec.set_ffe_coeff(k, quantize_coeff<10>(trained.ffe_coeff(k)));
  for (int k = 0; k < 16; ++k)
    dec.set_dfe_coeff(k, quantize_coeff<10>(trained.dfe_coeff(k)));
  dsp::ErrorCounter errs;
  for (int n = 0; n < 10000; ++n) {
    const LinkSample s = stim.next();
    const QamDecoderFixed<>::input_type x_in[2] = {to_input(s.q0),
                                                   to_input(s.q1)};
    wide_int<6, false> word;
    dec.decode(x_in, &word);
    const int want = stim.sent_delayed(cfg.decision_delay);
    if (want >= 0 && n > 16)
      errs.update(want, static_cast<int>(word.to_uint64()), 6);
  }
  if (GetParam() >= 30)
    EXPECT_LT(errs.ser(), 1e-3);
  else
    EXPECT_LT(errs.ser(), 0.2) << "even at low SNR the eye stays open";
}

INSTANTIATE_TEST_SUITE_P(Points, SnrSweep, ::testing::Values(22.0, 30.0, 38.0),
                         [](const auto& info) {
                           return "Snr" +
                                  std::to_string(static_cast<int>(info.param));
                         });

TEST(Link, StimulusIsDeterministic) {
  LinkConfig cfg;
  LinkStimulus a(cfg), b(cfg);
  for (int n = 0; n < 100; ++n) {
    const LinkSample sa = a.next(), sb = b.next();
    EXPECT_EQ(sa.sent, sb.sent);
    EXPECT_EQ(static_cast<long long>(sa.q0.re),
              static_cast<long long>(sb.q0.re));
    EXPECT_EQ(static_cast<long long>(sa.q1.im),
              static_cast<long long>(sb.q1.im));
  }
}

TEST(Link, QuantizeSampleMatchesFixedConstruction) {
  // quantize_sample (used for IR stimulus) and fixed<10,0,kRnd,kSat>
  // construction from double (used for the native model) must agree.
  for (double v = -0.7; v <= 0.7; v += 0.0137) {
    const auto q = quantize_sample({v, -v}, 10);
    const fixed<10, 0, fixpt::Quant::kRnd, fixpt::Ovf::kSat> f(v);
    EXPECT_EQ(static_cast<long long>(q.re), f.raw().to_int64()) << v;
  }
}

}  // namespace
}  // namespace hlsw::qam
