// The paper's Section 5 latency arithmetic, reproduced exactly (experiment
// S5a in DESIGN.md): the four Table 1 architectures must yield 35, 69, 19,
// and 15 cycles at a 10 ns clock, with the per-loop breakdown the paper
// describes ("3+16+16", "3+8+16+8+16+3+15", "3+8+8", "3+8+4").
#include <gtest/gtest.h>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"

namespace hlsw::qam {
namespace {

using hls::run_synthesis;
using hls::SynthesisResult;
using hls::TechLibrary;

SynthesisResult synth(const Architecture& a) {
  return run_synthesis(build_qam_decoder_ir(), a.dir, TechLibrary::asic90());
}

TEST(Table1Latency, SequentialBaselineIs69Cycles) {
  const auto archs = table1_architectures();
  const SynthesisResult r = synth(archs[1]);  // "none"
  // Paper: 3 + 8 + 16 + 8 + 16 + 3 + 15 = 69 cycles = 690 ns.
  EXPECT_EQ(r.latency_cycles(), 69);
  EXPECT_DOUBLE_EQ(r.latency_ns(), 690.0);
  // Per-region breakdown.
  ASSERT_EQ(r.schedule.regions.size(), 8u);
  EXPECT_EQ(r.schedule.regions[0].total_cycles, 1);   // input block
  EXPECT_EQ(r.schedule.regions[1].total_cycles, 8);   // ffe
  EXPECT_EQ(r.schedule.regions[2].total_cycles, 16);  // dfe
  EXPECT_EQ(r.schedule.regions[3].total_cycles, 2);   // slicer
  EXPECT_EQ(r.schedule.regions[4].total_cycles, 8);   // ffe_adapt
  EXPECT_EQ(r.schedule.regions[5].total_cycles, 16);  // dfe_adapt
  EXPECT_EQ(r.schedule.regions[6].total_cycles, 3);   // ffe_shift
  EXPECT_EQ(r.schedule.regions[7].total_cycles, 15);  // dfe_shift
}

TEST(Table1Latency, LoopBodiesExecuteInOneCycleAt100MHz) {
  // The paper's premise for "unrolling beats pipelining" (section 5): every
  // loop body is simple enough to execute in a single 10 ns cycle.
  const SynthesisResult r = synth(table1_architectures()[1]);
  for (const auto& rs : r.schedule.regions) {
    if (rs.is_loop) {
      EXPECT_EQ(rs.body.cycles, 1) << "loop " << rs.label;
    }
  }
}

TEST(Table1Latency, MergedDefaultIs35Cycles) {
  const SynthesisResult r = synth(table1_architectures()[0]);  // "merge"
  // Paper: 3 + 16 + 16 = 35 cycles = 350 ns.
  EXPECT_EQ(r.latency_cycles(), 35);
  ASSERT_EQ(r.schedule.regions.size(), 4u);
  EXPECT_EQ(r.schedule.regions[1].total_cycles, 16);  // merged filter loop
  EXPECT_EQ(r.schedule.regions[3].total_cycles, 16);  // merged adapt loop
}

TEST(Table1Latency, MergeU2Is19Cycles) {
  const SynthesisResult r = synth(table1_architectures()[2]);
  // Paper: 3 + 8 + 8 = 19 cycles = 190 ns.
  EXPECT_EQ(r.latency_cycles(), 19);
}

TEST(Table1Latency, MergeU2U4Is15Cycles) {
  const SynthesisResult r = synth(table1_architectures()[3]);
  // Paper: 3 + 8 + 4 = 15 cycles = 150 ns.
  EXPECT_EQ(r.latency_cycles(), 15);
}

TEST(Table1Latency, DataRatesMatchPaper) {
  // Data rate = 6 bits per invocation / latency. Paper: 17.1, 8.6, 31.5,
  // 40 Mbps (one rounds 8.70 down to 8.6; we allow 0.15 Mbps slack).
  const auto archs = table1_architectures();
  const double expected[] = {17.1, 8.7, 31.6, 40.0};
  for (std::size_t i = 0; i < archs.size(); ++i) {
    const SynthesisResult r = synth(archs[i]);
    EXPECT_NEAR(r.data_rate_mbps(6), expected[i], 0.15) << archs[i].name;
  }
}

TEST(Table1Latency, NaiveSequentialLoopSumIs66) {
  // Section 5's inspection: "a sequential execution of the six loops alone
  // would take 8+16+8+16+3+15 = 66 cycles".
  const SynthesisResult r = synth(table1_architectures()[1]);
  int loop_cycles = 0;
  for (const auto& rs : r.schedule.regions)
    if (rs.is_loop) loop_cycles += rs.total_cycles;
  EXPECT_EQ(loop_cycles, 66);
}

TEST(Table1Latency, MergeEmitsReorderingWarnings) {
  // The adapt/shift merge genuinely reorders accesses to x[] and SV[]
  // relative to the sequential source (reproduction finding S5a-h,
  // EXPERIMENTS.md); the engine must surface this rather than stay silent.
  const SynthesisResult r = synth(table1_architectures()[0]);
  bool x_warn = false, sv_warn = false;
  for (const auto& w : r.warnings) {
    if (w.find("array 'x'") != std::string::npos) x_warn = true;
    if (w.find("array 'SV'") != std::string::npos) sv_warn = true;
  }
  EXPECT_TRUE(x_warn);
  EXPECT_TRUE(sv_warn);
}

TEST(Table1Latency, AreaOrderingMatchesPaper) {
  // Normalized to the sequential baseline, the paper reports 1.17 (merge),
  // 1.00 (none), 1.61 (U2), 1.88 (U2/U4): area strictly grows with
  // parallelism and the sequential design is smallest.
  const auto archs = table1_architectures();
  const double a_merge = synth(archs[0]).area.total;
  const double a_none = synth(archs[1]).area.total;
  const double a_u2 = synth(archs[2]).area.total;
  const double a_u4 = synth(archs[3]).area.total;
  EXPECT_LT(a_none, a_merge);
  EXPECT_LT(a_merge, a_u2);
  EXPECT_LT(a_u2, a_u4);
}

TEST(Exploration, ExtendedSetSynthesizesClean) {
  for (const auto& a : exploration_architectures()) {
    const SynthesisResult r = synth(a);
    EXPECT_GT(r.latency_cycles(), 0) << a.name;
    EXPECT_GT(r.area.total, 0) << a.name;
    // No schedule diagnostics about unachievable clocks.
    for (const auto& w : r.warnings)
      EXPECT_EQ(w.find("unachievable"), std::string::npos) << a.name << ": " << w;
  }
}

TEST(Exploration, PipeliningNoBetterThanUnrolling) {
  // Paper section 5: for 1-cycle bodies pipelining cannot beat unrolling.
  const auto all = exploration_architectures();
  const Architecture* pipe = nullptr;
  const Architecture* u2 = nullptr;
  for (const auto& a : all) {
    if (a.name == "merge+pipe") pipe = &a;
    if (a.name == "merge+U2") u2 = &a;
  }
  ASSERT_NE(pipe, nullptr);
  ASSERT_NE(u2, nullptr);
  const int lat_pipe = synth(*pipe).latency_cycles();
  const int lat_u2 = synth(*u2).latency_cycles();
  EXPECT_EQ(lat_pipe, 35) << "II=1 over 1-cycle bodies changes nothing";
  EXPECT_LT(lat_u2, lat_pipe);
}

}  // namespace
}  // namespace hlsw::qam
