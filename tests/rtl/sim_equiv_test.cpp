// Bit-equivalence battery for the compiled execution plan (the perf PR's
// safety net): the compiled simulator, the legacy interpretive simulator
// (SimOptions::compiled = false) and the untimed hls::Interpreter on the
// same transformed IR must agree on EVERYTHING observable — per-symbol
// PortIo outputs (all arrays and vars), cycle counts, the full SimStats
// instrument panel and the final architectural state — across every Table 1
// and exploration architecture plus randomized directive sets in the spirit
// of the DSE candidate generator. The batched run_stream() forms are pinned
// to the per-symbol run() loop the same way.
#include <gtest/gtest.h>

#include <cctype>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"

namespace hlsw::rtl {
namespace {

using hls::Directives;
using hls::Interpreter;
using hls::PortIo;
using hls::PortStream;
using hls::run_synthesis;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkStimulus;

// Full-map PortIo comparison (every port, both components, widths and
// complex flags — FxValue equality is member-wise).
void expect_same_io(const PortIo& a, const PortIo& b, const std::string& what,
                    int symbol) {
  ASSERT_TRUE(a.arrays == b.arrays && a.vars == b.vars)
      << what << " diverged at symbol " << symbol;
}

// Drives `symbols` link symbols through compiled, legacy and interpreter
// models of one synthesized design and asserts bit-identity everywhere.
void run_battery(const Directives& dir, const std::string& name,
                 int symbols) {
  const auto r =
      run_synthesis(qam::build_qam_decoder_ir(), dir, TechLibrary::asic90());
  Interpreter golden(r.transformed);
  Simulator compiled(r.transformed, r.schedule);
  Simulator legacy(r.transformed, r.schedule, {.compiled = false});
  ASSERT_TRUE(compiled.options().compiled);
  ASSERT_FALSE(legacy.options().compiled);

  LinkStimulus stim((LinkConfig()));
  for (int n = 0; n < symbols; ++n) {
    const auto s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    const PortIo want = golden.run(io);
    const PortIo got_c = compiled.run(io);
    const PortIo got_l = legacy.run(io);
    expect_same_io(want, got_c, name + " interpreter-vs-compiled", n);
    expect_same_io(got_c, got_l, name + " compiled-vs-legacy", n);
    ASSERT_EQ(compiled.cycles(), legacy.cycles()) << name << " symbol " << n;
  }
  // The instrument panels must be indistinguishable: same cycles, same op
  // counts, same per-region activity, same commit-queue peaks.
  EXPECT_TRUE(compiled.stats() == legacy.stats()) << name;
  EXPECT_EQ(compiled.cycles(), symbols * r.schedule.latency_cycles) << name;
  // Final architectural state (coefficients, delay lines) bit-identical.
  for (const char* arr : {"ffe_c", "dfe_c", "x", "SV"}) {
    ASSERT_TRUE(compiled.array_state(arr) == legacy.array_state(arr))
        << name << " state " << arr;
    ASSERT_TRUE(compiled.array_state(arr) == golden.array_state(arr))
        << name << " state " << arr << " vs interpreter";
  }
}

class ArchitectureEquiv : public ::testing::TestWithParam<int> {};

TEST_P(ArchitectureEquiv, CompiledLegacyInterpreterBitIdentical) {
  const auto archs = qam::exploration_architectures();
  const auto& a = archs[static_cast<size_t>(GetParam())];
  run_battery(a.dir, a.name, 300);
}

std::string arch_equiv_name(const ::testing::TestParamInfo<int>& info) {
  auto n = qam::exploration_architectures()[static_cast<size_t>(info.param)]
               .name;
  std::string out;
  for (char c : n)
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ArchitectureEquiv,
                         ::testing::Range(0, 9), arch_equiv_name);

TEST(SimEquiv, RandomizedDirectiveSets) {
  // Random points from the same design space the DSE candidate generator
  // walks: merge on/off x unroll {1,2,4} per loop x optional pipelining of
  // the (possibly merged) loop heads x clock period. Seeded, so failures
  // reproduce.
  const char* labels[] = {"ffe",       "dfe",       "ffe_adapt",
                          "dfe_adapt", "ffe_shift", "dfe_shift"};
  std::mt19937 rng(20260805);
  auto pick = [&](auto... v) {
    const int vals[] = {v...};
    return vals[rng() % (sizeof...(v))];
  };
  for (int cfg = 0; cfg < 8; ++cfg) {
    Directives dir;
    dir.clock_period_ns = pick(10, 10, 5);
    const bool merged = (rng() % 2) != 0;
    if (merged) dir.merge_groups = qam::default_merge_groups();
    for (const char* l : labels) {
      const int u = pick(1, 1, 2, 4);
      if (u > 1) dir.loops[l].unroll = u;
    }
    if (merged && (rng() % 2) != 0) {
      // Pipeline the merged loop heads (the architectures.cpp idiom).
      dir.loops["ffe"].pipeline_ii = 1;
      dir.loops["ffe_adapt"].pipeline_ii = 1;
      dir.loops["ffe"].unroll = 1;
      dir.loops["ffe_adapt"].unroll = 1;
      dir.loops["dfe"].unroll = 1;
      dir.loops["dfe_adapt"].unroll = 1;
    }
    run_battery(dir, "random#" + std::to_string(cfg), 120);
  }
}

TEST(SimEquiv, StreamFormsMatchPerSymbolRun) {
  // Batched APIs vs the per-symbol loop, identical stimulus in all three
  // formats: outputs, cycle counts and SimStats must be bit-identical, on
  // the pipelined architecture where the plan is most intricate.
  const auto archs = qam::exploration_architectures();
  const qam::Architecture* pipe = nullptr;
  for (const auto& a : archs)
    if (a.name == "merge+pipe") pipe = &a;
  ASSERT_NE(pipe, nullptr);
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), pipe->dir,
                               TechLibrary::asic90());

  const int kSymbols = 500;
  LinkStimulus sa((LinkConfig())), sb((LinkConfig())), sc((LinkConfig()));
  const std::vector<PortIo> batch = qam::link_input_batch(&sa, kSymbols);
  const PortStream flat = qam::link_input_stream(&sb, kSymbols);

  Simulator per_symbol(r.transformed, r.schedule);
  Simulator batched(r.transformed, r.schedule);
  Simulator streamed(r.transformed, r.schedule);

  std::vector<PortIo> ref;
  for (int n = 0; n < kSymbols; ++n) {
    const auto s = sc.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    ref.push_back(per_symbol.run(io));
  }
  const std::vector<PortIo> got_batch = batched.run_stream(batch);
  const PortStream got_flat = streamed.run_stream(flat);

  ASSERT_EQ(got_batch.size(), ref.size());
  ASSERT_EQ(got_flat.symbols, kSymbols);
  for (int n = 0; n < kSymbols; ++n) {
    expect_same_io(ref[static_cast<size_t>(n)],
                   got_batch[static_cast<size_t>(n)], "run_stream(batch)", n);
    expect_same_io(ref[static_cast<size_t>(n)], got_flat.symbol(n),
                   "run_stream(flat)", n);
  }
  EXPECT_TRUE(per_symbol.stats() == batched.stats());
  EXPECT_TRUE(per_symbol.stats() == streamed.stats());
  EXPECT_EQ(per_symbol.cycles(), batched.cycles());
  EXPECT_EQ(per_symbol.cycles(), streamed.cycles());
}

TEST(SimEquiv, StreamFormsWorkOnLegacyPathToo) {
  // run_stream is an API of the simulator, not of the compiled plan: the
  // legacy path must produce the same batched results.
  const qam::Architecture a = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                               TechLibrary::asic90());
  const int kSymbols = 200;
  LinkStimulus sa((LinkConfig())), sb((LinkConfig()));
  const PortStream flat = qam::link_input_stream(&sa, kSymbols);
  const std::vector<PortIo> batch = qam::link_input_batch(&sb, kSymbols);

  Simulator legacy(r.transformed, r.schedule, {.compiled = false});
  Simulator compiled(r.transformed, r.schedule);
  const PortStream out_l = legacy.run_stream(flat);
  const std::vector<PortIo> out_c = compiled.run_stream(batch);
  ASSERT_EQ(out_l.symbols, kSymbols);
  for (int n = 0; n < kSymbols; ++n)
    expect_same_io(out_l.symbol(n), out_c[static_cast<size_t>(n)],
                   "legacy-stream vs compiled-batch", n);
  EXPECT_TRUE(legacy.stats() == compiled.stats());
}

TEST(SimEquiv, MissingStreamPortThrows) {
  const qam::Architecture a = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                               TechLibrary::asic90());
  Simulator sim(r.transformed, r.schedule);
  PortStream in;
  in.symbols = 3;  // no "x_in" channel bound
  EXPECT_THROW(sim.run_stream(in), std::invalid_argument);
}

}  // namespace
}  // namespace hlsw::rtl
