// Guard for the instrumentation feature's zero-cost-when-off contract,
// labeled bench_smoke with the other perf-sensitive guards:
//  * with instrumentation off, emit_verilog through a VerilogOptions that
//    merely CONTAINS an InstrumentOptions is byte-identical to the
//    pre-instrumentation emission path, for every Table 1 and exploration
//    architecture — the feature must be invisible until asked for;
//  * emitting WITH counters stays within 2x of the plain emission wall
//    time (best-of-N), so instrumenting a design never dominates the
//    synthesis loop it is meant to observe.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "rtl/verilog.h"

namespace hlsw::rtl {
namespace {

std::vector<qam::Architecture> all_architectures() {
  auto archs = qam::exploration_architectures();
  for (const auto& a : qam::table1_architectures()) archs.push_back(a);
  return archs;
}

TEST(InstrumentGuard, OffEmissionByteIdenticalAcrossAllArchitectures) {
  const auto ir = qam::build_qam_decoder_ir();
  for (const auto& a : all_architectures()) {
    const auto r = hls::run_synthesis(ir, a.dir, hls::TechLibrary::asic90());
    const std::string bare = emit_verilog(r.transformed, r.schedule);
    VerilogOptions off;
    ASSERT_FALSE(off.instrument.enabled);
    EXPECT_EQ(emit_verilog(r.transformed, r.schedule, off), bare) << a.name;
  }
}

TEST(InstrumentGuard, InstrumentedEmissionWallWithinTwiceOfPlain) {
  const auto ir = qam::build_qam_decoder_ir();
  const auto archs = all_architectures();
  using clock = std::chrono::steady_clock;
  // Whole-suite emission sweep, best of 5: coarse enough to be stable in
  // CI, tight enough to catch the instrumentation path going quadratic.
  auto sweep = [&](bool instrumented) {
    double best_ms = 0;
    VerilogOptions opts;
    opts.instrument.enabled = instrumented;
    std::vector<hls::SynthesisResult> synth;
    for (const auto& a : archs)
      synth.push_back(hls::run_synthesis(ir, a.dir,
                                         hls::TechLibrary::asic90()));
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = clock::now();
      std::size_t bytes = 0;
      for (const auto& r : synth)
        bytes += emit_verilog(r.transformed, r.schedule, opts).size();
      const double ms =
          std::chrono::duration<double, std::milli>(clock::now() - t0)
              .count();
      EXPECT_GT(bytes, 0u);
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };
  const double plain_ms = sweep(false);
  const double inst_ms = sweep(true);
  // +1ms absolute slack keeps sub-millisecond sweeps from flaking on
  // scheduler noise.
  EXPECT_LE(inst_ms, 2.0 * plain_ms + 1.0)
      << "plain " << plain_ms << " ms, instrumented " << inst_ms << " ms";
}

}  // namespace
}  // namespace hlsw::rtl
