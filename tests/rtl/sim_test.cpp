// RTL-simulator verification (the paper's "verify generated RTL against the
// original C" step, experiment F4): for every Table 1 architecture the
// cycle-accurate simulation of the scheduled design must match the untimed
// interpreter of the same transformed IR bit for bit — outputs and full
// internal state — over thousands of symbols, while consuming exactly the
// scheduled number of cycles.
#include <gtest/gtest.h>

#include <random>

#include "hls/builder.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"

namespace hlsw::rtl {
namespace {

using hls::Interpreter;
using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;
using qam::Architecture;
using qam::build_qam_decoder_ir;
using qam::LinkConfig;
using qam::LinkSample;
using qam::LinkStimulus;

class Table1RtlSim : public ::testing::TestWithParam<int> {};

TEST_P(Table1RtlSim, MatchesInterpreterBitForBit) {
  const Architecture arch =
      qam::table1_architectures()[static_cast<size_t>(GetParam())];
  const auto r = run_synthesis(build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  Interpreter golden(r.transformed);
  Simulator sim(r.transformed, r.schedule);

  LinkStimulus stim((LinkConfig()));
  for (int n = 0; n < 2000; ++n) {
    const LinkSample s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    const long long c0 = sim.cycles();
    const PortIo a = golden.run(io);
    const PortIo b = sim.run(io);
    ASSERT_EQ(static_cast<long long>(a.vars.at("data").re),
              static_cast<long long>(b.vars.at("data").re))
        << arch.name << " diverged at symbol " << n;
    ASSERT_EQ(sim.cycles() - c0, r.schedule.latency_cycles)
        << "simulated cycles must equal the scheduled latency";
  }
  // Full state must agree at the end.
  for (const char* arr : {"ffe_c", "dfe_c", "x", "SV"}) {
    const auto& ga = golden.array_state(arr);
    const auto& sa = sim.array_state(arr);
    ASSERT_EQ(ga.size(), sa.size());
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_EQ(static_cast<long long>(ga[i].re),
                static_cast<long long>(sa[i].re))
          << arch.name << " " << arr << "[" << i << "].re";
      EXPECT_EQ(static_cast<long long>(ga[i].im),
                static_cast<long long>(sa[i].im))
          << arch.name << " " << arr << "[" << i << "].im";
    }
  }
}

std::string table1_row_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"Merge", "None", "MergeU2", "MergeU2U4"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1RtlSim, ::testing::Values(0, 1, 2, 3),
                         table1_row_name);

TEST(RtlSim, ExplorationSetMatchesInterpreter) {
  // Every extended architecture (pipelined, memory-mapped, resource-capped,
  // tight-clock) must also verify — shorter stimulus, full sweep.
  for (const auto& arch : qam::exploration_architectures()) {
    const auto r = run_synthesis(build_qam_decoder_ir(), arch.dir,
                                 TechLibrary::asic90());
    Interpreter golden(r.transformed);
    Simulator sim(r.transformed, r.schedule);
    LinkStimulus stim((LinkConfig()));
    for (int n = 0; n < 200; ++n) {
      const LinkSample s = stim.next();
      PortIo io;
      io.arrays["x_in"] = {s.q0, s.q1};
      const PortIo a = golden.run(io);
      const PortIo b = sim.run(io);
      ASSERT_EQ(static_cast<long long>(a.vars.at("data").re),
                static_cast<long long>(b.vars.at("data").re))
          << arch.name << " diverged at symbol " << n;
    }
  }
}

TEST(RtlSim, UntransformedDesignMatchesNativeChain) {
  // End-to-end: original IR scheduled without directives must equal the
  // original-IR interpreter (which equals the native fixpt model per
  // tests/qam/decoder_equivalence_test.cpp) — closing the whole
  // C -> IR -> schedule -> RTL verification chain.
  const auto f = build_qam_decoder_ir();
  hls::Directives dir;
  const auto r = run_synthesis(f, dir, TechLibrary::asic90());
  Interpreter original(f);
  Simulator sim(r.transformed, r.schedule);
  LinkStimulus stim((LinkConfig()));
  for (int n = 0; n < 1000; ++n) {
    const LinkSample s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    ASSERT_EQ(static_cast<long long>(original.run(io).vars.at("data").re),
              static_cast<long long>(sim.run(io).vars.at("data").re))
        << "diverged at symbol " << n;
  }
}

TEST(RtlSim, PipelinedLoopMatchesSequentialSemantics) {
  // A pipelined MAC whose recurrence raises II: overlapping iterations in
  // the simulator must still produce the sequential result.
  hls::FunctionBuilder fb("pipemac");
  const int x = fb.add_array("x", 16, hls::fx(10, 0), false,
                             hls::PortDir::kIn);
  const int acc = fb.add_var("acc", hls::fx(28, 8), false, hls::PortDir::kOut);
  {
    auto b0 = fb.block("init");
    b0.var_write(acc, b0.cnst(hls::fx(28, 8), 0.0));
  }
  {
    auto l = fb.loop("mac", 16);
    const int xv = l.array_read(x, {1, 0});
    l.var_write(acc, l.add(l.var_read(acc), l.mul(xv, xv)));
  }
  const hls::Function f = fb.build();
  hls::Directives dir;
  dir.clock_period_ns = 4.0;  // multi-cycle body
  dir.loops["mac"].pipeline_ii = 1;
  const auto r = run_synthesis(f, dir, TechLibrary::asic90());
  ASSERT_GE(r.schedule.regions[1].ii, 1);
  Interpreter golden(r.transformed);
  Simulator sim(r.transformed, r.schedule);
  std::mt19937_64 rng(17);
  for (int iter = 0; iter < 100; ++iter) {
    PortIo io;
    std::vector<hls::FxValue> xs(16);
    for (auto& e : xs) {
      e.fw = 10;
      e.re = static_cast<int>(rng() % 1024) - 512;
    }
    io.arrays["x"] = xs;
    ASSERT_EQ(static_cast<long long>(golden.run(io).vars.at("acc").re),
              static_cast<long long>(sim.run(io).vars.at("acc").re));
  }
}

// The simulator's always-on activity counters must stay consistent with
// the observable run: cycles equals the cycle counter, per-region activity
// sums to the op total, and the JSON export round-trips the same numbers.
TEST(RtlSim, SimStatsAreConsistentAndExportAsJson) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  Simulator sim(r.transformed, r.schedule);
  LinkStimulus stim((LinkConfig()));
  constexpr int kRuns = 5;
  for (int n = 0; n < kRuns; ++n) {
    const LinkSample s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    sim.run(io);
  }
  const SimStats& st = sim.stats();
  EXPECT_EQ(st.invocations, kRuns);
  EXPECT_EQ(st.cycles, sim.cycles());
  EXPECT_EQ(st.cycles, kRuns * r.schedule.latency_cycles);
  EXPECT_GT(st.ops_executed, 0);
  EXPECT_GT(st.array_commits, 0);
  EXPECT_GE(st.max_commit_queue, 1);
  ASSERT_EQ(st.region_labels.size(), r.transformed.regions.size());
  ASSERT_EQ(st.region_ops.size(), st.region_labels.size());
  long long region_sum = 0;
  for (long long ops : st.region_ops) region_sum += ops;
  EXPECT_EQ(region_sum, st.ops_executed);

  obs::Json doc;
  std::string err;
  ASSERT_TRUE(obs::Json::parse(sim_stats_json(sim).dump(), &doc, &err)) << err;
  EXPECT_EQ(doc.find("tool")->as_string(), "hlsw.rtl_sim");
  EXPECT_EQ(doc.find("function")->as_string(), r.transformed.name);
  EXPECT_EQ(doc.find("cycles")->as_int(), st.cycles);
  EXPECT_EQ(doc.find("ops_executed")->as_int(), st.ops_executed);
  ASSERT_EQ(doc.find("regions")->size(), st.region_ops.size());
  for (std::size_t i = 0; i < st.region_ops.size(); ++i) {
    EXPECT_EQ(doc.find("regions")->at(i).find("label")->as_string(),
              st.region_labels[i]);
    EXPECT_EQ(doc.find("regions")->at(i).find("ops")->as_int(),
              st.region_ops[i]);
  }

  // reset() zeroes the instrument panel but keeps the region axis.
  sim.reset();
  EXPECT_EQ(sim.stats().invocations, 0);
  EXPECT_EQ(sim.stats().ops_executed, 0);
  ASSERT_EQ(sim.stats().region_labels.size(), st.region_labels.size());
}

}  // namespace
}  // namespace hlsw::rtl
