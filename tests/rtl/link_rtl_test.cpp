// Link-level verification through the generated hardware: the RTL
// simulation of every Table 1 architecture must decode the noisy channel
// with the same SER as the C model — including the merged designs whose
// adaptation order differs from the sequential source (finding S5a-h):
// the reordering must be harmless at link level, not just flagged.
// Also covers the simulator's error paths.
#include <gtest/gtest.h>

#include "dsp/metrics.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"

namespace hlsw::rtl {
namespace {

using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;

class LinkThroughRtl : public ::testing::TestWithParam<int> {};

TEST_P(LinkThroughRtl, MergedHardwareTracksWithZeroSer) {
  const auto arch =
      qam::table1_architectures()[static_cast<size_t>(GetParam())];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  qam::LinkConfig cfg;
  qam::LinkStimulus stim(cfg);
  const auto trained = qam::train_float_reference(&stim, 6000);
  Simulator dut(r.transformed, r.schedule);
  dut.set_array_state("ffe_c", qam::coeffs_to_fxvalues(trained, true, 10));
  dut.set_array_state("dfe_c", qam::coeffs_to_fxvalues(trained, false, 10));
  dsp::ErrorCounter errs;
  for (int n = 0; n < 6000; ++n) {
    const qam::LinkSample s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    const auto out = dut.run(io);
    const int want = stim.sent_delayed(cfg.decision_delay);
    if (want >= 0 && n > 16)
      errs.update(want, static_cast<int>(out.vars.at("data").re), 6);
  }
  EXPECT_LT(errs.ser(), 1e-3)
      << arch.name << ": hardware tracking must stay error-free; the merge "
      << "reordering (if any) must be harmless at link level";
  EXPECT_EQ(dut.cycles(), 6000LL * r.latency_cycles());
}

std::string row_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"Merge", "None", "MergeU2", "MergeU2U4"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllRows, LinkThroughRtl, ::testing::Values(0, 1, 2, 3),
                         row_name);

TEST(RtlErrors, MissingInputPortThrows) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  Simulator sim(r.transformed, r.schedule);
  PortIo empty;
  EXPECT_THROW(sim.run(empty), std::invalid_argument);
}

TEST(RtlErrors, SimulatorRecoversAfterReset) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  Simulator sim(r.transformed, r.schedule);
  qam::LinkStimulus stim((qam::LinkConfig()));
  const auto s = stim.next();
  PortIo io;
  io.arrays["x_in"] = {s.q0, s.q1};
  sim.run(io);
  EXPECT_GT(sim.cycles(), 0);
  sim.reset();
  EXPECT_EQ(sim.cycles(), 0);
  for (const auto& v : sim.array_state("ffe_c"))
    EXPECT_EQ(static_cast<long long>(v.re), 0);
  // Still functional after reset.
  const auto out = sim.run(io);
  EXPECT_EQ(sim.cycles(), r.schedule.latency_cycles);
  (void)out;
}

}  // namespace
}  // namespace hlsw::rtl
