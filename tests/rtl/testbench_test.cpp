// Tests for the self-checking testbench generator: vectors come from the
// RTL simulator (so they are bit-exact with the golden chain), the emitted
// text drives every input pin and checks every output pin per vector.
#include <gtest/gtest.h>

#include <regex>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/testbench.h"

namespace hlsw::rtl {
namespace {

using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;

std::vector<PortIo> decoder_inputs(int n) {
  qam::LinkStimulus stim((qam::LinkConfig()));
  std::vector<PortIo> out;
  for (int i = 0; i < n; ++i) {
    const auto s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    out.push_back(std::move(io));
  }
  return out;
}

TEST(Testbench, CapturedVectorsMatchSimulatorState) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  const auto inputs = decoder_inputs(16);
  const auto vectors = capture_vectors(r.transformed, r.schedule, inputs);
  ASSERT_EQ(vectors.size(), 16u);
  // Re-running the simulator over the same inputs must reproduce the
  // expected outputs (statefulness is part of the vectors).
  Simulator sim(r.transformed, r.schedule);
  for (const auto& tv : vectors) {
    const PortIo out = sim.run(tv.inputs);
    EXPECT_EQ(static_cast<long long>(out.vars.at("data").re),
              static_cast<long long>(tv.outputs.vars.at("data").re));
  }
}

TEST(Testbench, EmitsOneCheckPerOutputPerVector) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  const auto vectors =
      capture_vectors(r.transformed, r.schedule, decoder_inputs(8));
  const std::string tb = emit_testbench(r.transformed, vectors, "qam_decoder");
  EXPECT_NE(tb.find("module qam_decoder_tb;"), std::string::npos);
  EXPECT_NE(tb.find("qam_decoder dut ("), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // One output check per vector (the decoder has one output pin, 'data').
  std::size_t checks = 0;
  const std::regex check_re(R"(if \(data !==)");
  for (auto it = std::sregex_iterator(tb.begin(), tb.end(), check_re);
       it != std::sregex_iterator(); ++it)
    ++checks;
  EXPECT_EQ(checks, 8u);
  // All four complex input pins driven per vector.
  std::size_t drives = 0;
  const std::regex drive_re(R"(x_in_\d_(re|im) = 10'h)");
  for (auto it = std::sregex_iterator(tb.begin(), tb.end(), drive_re);
       it != std::sregex_iterator(); ++it)
    ++drives;
  EXPECT_EQ(drives, 8u * 4u);
}

TEST(Testbench, LiteralsAreMaskedToPinWidth) {
  const auto arch = qam::table1_architectures()[1];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  const auto vectors =
      capture_vectors(r.transformed, r.schedule, decoder_inputs(4));
  const std::string tb = emit_testbench(r.transformed, vectors, "qam_decoder");
  // A negative 10-bit sample must appear as a 10-bit hex literal (<= 0x3ff),
  // never as a 64-bit pattern.
  const std::regex lit_re(R"(10'h([0-9a-f]+))");
  for (auto it = std::sregex_iterator(tb.begin(), tb.end(), lit_re);
       it != std::sregex_iterator(); ++it) {
    const unsigned long v = std::stoul((*it)[1], nullptr, 16);
    EXPECT_LE(v, 0x3FFu);
  }
}

}  // namespace
}  // namespace hlsw::rtl
