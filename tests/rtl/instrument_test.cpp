// On-chip perf-counter instrumentation: the counter map is deterministic
// schedule metadata, emission with instrumentation OFF is byte-identical
// to an uninstrumented module, the rtl::Simulator readback leg reproduces
// the schedule's predictions exactly, and the reconciler flags tampered
// or impossible measurements instead of dropping them.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "hls/builder.h"
#include "hls/profile.h"
#include "hls/report.h"
#include "obs/json.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"

namespace hlsw::rtl {
namespace {

using hls::CounterKind;
using hls::InstrumentOptions;
using hls::PerfCounter;
using hls::run_synthesis;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkStimulus;

hls::SynthesisResult synth(const std::string& arch_name) {
  for (const auto& a : qam::exploration_architectures())
    if (a.name == arch_name)
      return run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                           TechLibrary::asic90());
  ADD_FAILURE() << "no architecture named " << arch_name;
  return run_synthesis(qam::build_qam_decoder_ir(), hls::Directives{},
                       TechLibrary::asic90());
}

TEST(InstrumentMap, EmptyWhenDisabled) {
  const auto r = synth("merge");
  EXPECT_TRUE(
      hls::instrument_map(r.transformed, r.schedule, InstrumentOptions{})
          .empty());
}

TEST(InstrumentMap, DeterministicOrderIndicesAndCoverage) {
  const auto r = synth("merge+pipe");
  InstrumentOptions opts;
  opts.enabled = true;
  const auto map = hls::instrument_map(r.transformed, r.schedule, opts);
  const auto again = hls::instrument_map(r.transformed, r.schedule, opts);
  ASSERT_GE(map.size(), 2u);
  // Pure function of (f, s, opts): two calls agree entry for entry.
  ASSERT_EQ(map.size(), again.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    EXPECT_EQ(map[i].name, again[i].name);
    EXPECT_EQ(map[i].index, static_cast<int>(i));
    EXPECT_EQ(map[i].width, 32);
  }
  EXPECT_EQ(map[0].name, "perf_invocations");
  EXPECT_EQ(map[0].kind, CounterKind::kInvocations);
  EXPECT_EQ(map[1].name, "perf_active_cycles");
  EXPECT_EQ(map[1].kind, CounterKind::kActiveCycles);

  std::set<std::string> names;
  for (const PerfCounter& c : map) names.insert(c.name);
  EXPECT_EQ(names.size(), map.size()) << "counter names must be unique";

  // Every region has a cycle counter, every loop an iteration counter,
  // every pipelined loop a stall counter, every array both port counters.
  for (std::size_t reg = 0; reg < r.transformed.regions.size(); ++reg) {
    int cycles = 0, iters = 0, stall = 0;
    for (const PerfCounter& c : map) {
      if (c.region != static_cast<int>(reg)) continue;
      cycles += c.kind == CounterKind::kRegionCycles;
      iters += c.kind == CounterKind::kLoopIters;
      stall += c.kind == CounterKind::kLoopStall;
    }
    EXPECT_EQ(cycles, 1);
    EXPECT_EQ(iters, r.transformed.regions[reg].is_loop ? 1 : 0);
    EXPECT_EQ(stall, r.schedule.regions[reg].ii > 0 ? 1 : 0);
  }
  bool any_stall = false;
  for (const PerfCounter& c : map)
    any_stall = any_stall || c.kind == CounterKind::kLoopStall;
  EXPECT_TRUE(any_stall) << "merge+pipe pipelines loops";
  for (std::size_t a = 0; a < r.transformed.arrays.size(); ++a) {
    int reads = 0, writes = 0;
    for (const PerfCounter& c : map) {
      if (c.array != static_cast<int>(a)) continue;
      reads += c.kind == CounterKind::kMemReads;
      writes += c.kind == CounterKind::kMemWrites;
    }
    EXPECT_EQ(reads, 1) << r.transformed.arrays[a].name;
    EXPECT_EQ(writes, 1) << r.transformed.arrays[a].name;
  }

  // The machine-readable map mirrors the list, in order.
  const obs::Json j = hls::instrument_map_json(map);
  ASSERT_EQ(j.size(), map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    EXPECT_EQ(j.at(i).find("name")->as_string(), map[i].name);
    EXPECT_EQ(j.at(i).find("index")->as_int(), map[i].index);
  }
}

TEST(InstrumentMap, CounterWidthIsClamped) {
  const auto r = synth("merge");
  InstrumentOptions opts;
  opts.enabled = true;
  opts.counter_width = 4;
  EXPECT_EQ(hls::instrument_map(r.transformed, r.schedule, opts)[0].width, 8);
  opts.counter_width = 128;
  EXPECT_EQ(hls::instrument_map(r.transformed, r.schedule, opts)[0].width,
            64);
}

TEST(InstrumentEmit, OffEmissionIsByteIdentical) {
  const auto r = synth("merge+U2");
  const std::string plain = emit_verilog(r.transformed, r.schedule);
  VerilogOptions off;  // instrument present but disabled (the default)
  EXPECT_EQ(emit_verilog(r.transformed, r.schedule, off), plain);

  VerilogOptions on;
  on.instrument.enabled = true;
  const std::string inst = emit_verilog(r.transformed, r.schedule, on);
  EXPECT_NE(inst, plain);
  EXPECT_NE(inst.find("perf_invocations"), std::string::npos);
  EXPECT_NE(inst.find("perf_active_cycles"), std::string::npos);
  // No readback mux unless asked for.
  EXPECT_EQ(inst.find("perf_sel"), std::string::npos);
  on.instrument.readback_mux = true;
  const std::string muxed = emit_verilog(r.transformed, r.schedule, on);
  EXPECT_NE(muxed.find("perf_sel"), std::string::npos);
  EXPECT_NE(muxed.find("perf_rdata"), std::string::npos);
}

TEST(InstrumentGuardedExecutions, HonorsGuardTrip) {
  hls::Op op;
  op.guard_trip = -1;  // unguarded
  EXPECT_EQ(hls::guarded_executions(op, 7), 7);
  op.guard_trip = 3;
  EXPECT_EQ(hls::guarded_executions(op, 7), 3);
  op.guard_trip = 0;
  EXPECT_EQ(hls::guarded_executions(op, 7), 0);
  op.guard_trip = 12;
  EXPECT_EQ(hls::guarded_executions(op, 7), 7);
}

// ---- rtl::Simulator readback + reconciliation ------------------------------

hls::CounterValues measure_rtl(const hls::SynthesisResult& r,
                               const std::vector<PerfCounter>& map,
                               int symbols) {
  Simulator sim(r.transformed, r.schedule);
  LinkStimulus stim((LinkConfig()));
  sim.run_stream(qam::link_input_batch(&stim, symbols));
  return read_counters(sim, map);
}

TEST(InstrumentReconcile, RtlSimMatchesSchedulePredictionsExactly) {
  const auto r = synth("merge+pipe");
  InstrumentOptions opts;
  opts.enabled = true;
  const auto map = hls::instrument_map(r.transformed, r.schedule, opts);
  const int kSymbols = 6;
  const auto values = measure_rtl(r, map, kSymbols);
  EXPECT_EQ(values.source, "rtl_sim");
  EXPECT_EQ(values.values.at("perf_invocations"), kSymbols);
  EXPECT_EQ(values.values.at("perf_active_cycles"),
            static_cast<long long>(kSymbols) * r.schedule.latency_cycles);

  const auto rep =
      hls::reconcile_profile(r.transformed, r.schedule, map, values);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.deviations.empty()) << rep.deviations.front().what;
  EXPECT_EQ(rep.invocations, kSymbols);
  EXPECT_EQ(rep.measured_active_cycles, rep.predicted_latency_cycles);
  for (const auto& l : rep.loops) {
    EXPECT_EQ(l.measured_cycles, l.predicted_cycles) << l.label;
    if (l.is_loop) {
      EXPECT_EQ(l.measured_iters, l.trip) << l.label;
    }
  }
  for (const auto& m : rep.mem) {
    EXPECT_EQ(m.measured_reads, m.predicted_reads) << m.name;
    EXPECT_EQ(m.measured_writes, m.predicted_writes) << m.name;
  }
}

// A design where the two timing models genuinely diverge: a pipelined
// elementwise loop with no loop-carried recurrence achieves II 1 at body
// depth 2 under a 5 ns clock, so the schedule model takes
// (trip-1)*ii+depth = 9 cycles where the serialized emission takes
// trip*depth = 16. (The qam decoder's pipelined loops all achieve
// ii == depth — the accumulator recurrence — so the models coincide
// there; this is the divergent case.)
hls::Function make_divergent_scaler() {
  hls::FunctionBuilder fb("scaler8");
  const int a =
      fb.add_array("a", 8, hls::fx(12, 0), false, hls::PortDir::kIn);
  const int c = fb.add_array("c", 8, hls::fx(12, 0), true);
  const int b =
      fb.add_array("b", 8, hls::fx(24, 2), false, hls::PortDir::kOut);
  auto l = fb.loop("scale", 8);
  const int p = l.mul(l.array_read(a, {1, 0}), l.array_read(c, {1, 0}));
  const int q = l.mul(p, l.array_read(a, {1, 0}));
  l.array_write(b, {1, 0}, l.cast(hls::fx(24, 2), q));
  return fb.build();
}

hls::Directives divergent_directives() {
  hls::Directives dir;
  dir.clock_period_ns = 5;
  dir.loops["scale"].pipeline_ii = 1;
  return dir;
}

// CounterValues a leg measuring `model` would report: "schedule" follows
// the overlap timing, "emitted" the serialized FSM.
hls::CounterValues model_values(const hls::Function& f,
                                const hls::Schedule& s,
                                const std::vector<PerfCounter>& map,
                                const std::string& model, int invocations) {
  hls::CounterValues out;
  out.source = model;
  const bool emitted = model == "emitted";
  long long active = 0;
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const auto& rs = s.regions[r];
    const int trip = f.regions[r].is_loop ? rs.trip : 1;
    active += emitted ? static_cast<long long>(trip) * rs.body.cycles
                      : rs.total_cycles;
  }
  for (const PerfCounter& c : map) {
    long long v = 0;
    const auto& rs = c.region >= 0
                         ? s.regions[static_cast<size_t>(c.region)]
                         : s.regions[0];
    const int trip =
        c.region >= 0 && f.regions[static_cast<size_t>(c.region)].is_loop
            ? rs.trip
            : 1;
    switch (c.kind) {
      case CounterKind::kInvocations: v = 1; break;
      case CounterKind::kActiveCycles: v = active; break;
      case CounterKind::kRegionCycles:
        v = emitted ? static_cast<long long>(trip) * rs.body.cycles
                    : rs.total_cycles;
        break;
      case CounterKind::kLoopIters: v = trip; break;
      case CounterKind::kLoopStall:
        v = emitted ? static_cast<long long>(trip - 1) *
                          std::max(0, rs.body.cycles - rs.ii)
                    : 0;
        break;
      case CounterKind::kMemReads:
      case CounterKind::kMemWrites:
        for (std::size_t r = 0; r < f.regions.size(); ++r) {
          const auto& region = f.regions[r];
          const int t = region.is_loop ? s.regions[r].trip : 1;
          const auto& ops =
              region.is_loop ? region.loop.body.ops : region.straight.ops;
          for (const auto& op : ops) {
            if (op.array != c.array) continue;
            if ((c.kind == CounterKind::kMemReads &&
                 op.kind == hls::OpKind::kArrayRead) ||
                (c.kind == CounterKind::kMemWrites &&
                 op.kind == hls::OpKind::kArrayWrite))
              v += hls::guarded_executions(op, t);
          }
        }
        break;
    }
    out.values[c.name] = v * invocations;
  }
  return out;
}

TEST(InstrumentReconcile, SerializedEmissionTimingIsExplainedNotDropped) {
  const auto r = hls::run_synthesis(make_divergent_scaler(),
                                    divergent_directives(),
                                    TechLibrary::asic90());
  const auto& rs = r.schedule.regions[0];
  ASSERT_GT(rs.ii, 0);
  ASSERT_LT(rs.ii, rs.body.cycles) << "schedule must genuinely overlap";
  ASSERT_NE(rs.trip * rs.body.cycles, rs.total_cycles);

  InstrumentOptions opts;
  opts.enabled = true;
  const auto map = hls::instrument_map(r.transformed, r.schedule, opts);

  // A leg measuring the schedule model reconciles with no deviations.
  const auto sched_rep = hls::reconcile_profile(
      r.transformed, r.schedule, map,
      model_values(r.transformed, r.schedule, map, "schedule", 3));
  EXPECT_TRUE(sched_rep.ok);
  EXPECT_TRUE(sched_rep.deviations.empty())
      << sched_rep.deviations.front().what;

  // A leg measuring the serialized emission reconciles ok with EXPLAINED
  // deviations only — flagged, never dropped, never failing.
  const auto emit_rep = hls::reconcile_profile(
      r.transformed, r.schedule, map,
      model_values(r.transformed, r.schedule, map, "emitted", 3));
  EXPECT_TRUE(emit_rep.ok) << "explained deviations must not fail";
  ASSERT_FALSE(emit_rep.deviations.empty());
  for (const auto& d : emit_rep.deviations) EXPECT_TRUE(d.explained) << d.what;
  ASSERT_FALSE(emit_rep.loops.empty());
  EXPECT_EQ(emit_rep.loops[0].measured_cycles,
            emit_rep.loops[0].emitted_cycles);
  EXPECT_GT(emit_rep.loops[0].measured_stall, 0);
  EXPECT_GT(emit_rep.loops[0].measured_ii, emit_rep.loops[0].predicted_ii);
}

TEST(InstrumentReconcile, TamperedCounterIsAHardDeviation) {
  const auto r = synth("merge+U2");
  InstrumentOptions opts;
  opts.enabled = true;
  const auto map = hls::instrument_map(r.transformed, r.schedule, opts);
  auto values = measure_rtl(r, map, 2);
  for (const PerfCounter& c : map)
    if (c.kind == CounterKind::kLoopIters) {
      values.values[c.name] += 2;  // one extra iteration per invocation
      break;
    }
  const auto rep =
      hls::reconcile_profile(r.transformed, r.schedule, map, values);
  EXPECT_FALSE(rep.ok);
  bool hard = false;
  for (const auto& d : rep.deviations) hard = hard || !d.explained;
  EXPECT_TRUE(hard);
}

TEST(InstrumentReconcile, MissingAndNonDivisibleCountersAreHard) {
  const auto r = synth("merge");
  InstrumentOptions opts;
  opts.enabled = true;
  const auto map = hls::instrument_map(r.transformed, r.schedule, opts);
  auto values = measure_rtl(r, map, 3);
  values.values.erase("perf_active_cycles");       // map promises it
  bool nudged = false;
  for (const PerfCounter& c : map)
    if (c.kind == CounterKind::kRegionCycles && !nudged) {
      values.values[c.name] += 1;  // 3 invocations can't divide it evenly
      nudged = true;
    }
  ASSERT_TRUE(nudged);
  const auto rep =
      hls::reconcile_profile(r.transformed, r.schedule, map, values);
  EXPECT_FALSE(rep.ok);
  bool missing = false, indivisible = false;
  for (const auto& d : rep.deviations) {
    missing = missing || d.what.find("missing") != std::string::npos;
    indivisible =
        indivisible || d.what.find("not a multiple") != std::string::npos;
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(indivisible);
}

TEST(InstrumentReconcile, FeasibilityFloorViolationFailsTheReport) {
  const auto r = synth("merge");
  InstrumentOptions opts;
  opts.enabled = true;
  const auto map = hls::instrument_map(r.transformed, r.schedule, opts);
  const auto values = measure_rtl(r, map, 2);

  hls::DesignBounds fine;
  fine.min_latency_cycles = 1;  // every real design clears this
  const auto ok_rep = hls::reconcile_profile(r.transformed, r.schedule, map,
                                             values, &fine);
  EXPECT_TRUE(ok_rep.bounds_checked);
  EXPECT_TRUE(ok_rep.bounds_respected);
  EXPECT_TRUE(ok_rep.ok);

  hls::DesignBounds impossible;
  impossible.min_latency_cycles = r.schedule.latency_cycles * 100;
  const auto bad_rep = hls::reconcile_profile(r.transformed, r.schedule, map,
                                              values, &impossible);
  EXPECT_TRUE(bad_rep.bounds_checked);
  EXPECT_FALSE(bad_rep.bounds_respected);
  EXPECT_FALSE(bad_rep.ok);
}

TEST(InstrumentStats, SimStatsJsonRoundTripsAtSchemaV2) {
  const auto r = synth("merge+U2");
  Simulator sim(r.transformed, r.schedule);
  LinkStimulus stim((LinkConfig()));
  sim.run_stream(qam::link_input_batch(&stim, 4));

  const obs::Json doc = sim_stats_json(sim);
  obs::Json back;
  std::string err;
  ASSERT_TRUE(obs::Json::parse(doc.dump(2), &back, &err)) << err;
  EXPECT_EQ(back.find("tool")->as_string(), "hlsw.rtl_sim");
  EXPECT_EQ(back.find("schema_version")->as_int(), 2);
  const obs::Json* regions = back.find("regions");
  ASSERT_NE(regions, nullptr);
  ASSERT_GT(regions->size(), 0u);
  for (std::size_t i = 0; i < regions->size(); ++i) {
    EXPECT_NE(regions->at(i).find("cycles"), nullptr);
    EXPECT_NE(regions->at(i).find("iters"), nullptr);
  }
  const obs::Json* arrays = back.find("arrays");
  ASSERT_NE(arrays, nullptr);
  ASSERT_GT(arrays->size(), 0u);
  for (std::size_t i = 0; i < arrays->size(); ++i) {
    EXPECT_NE(arrays->at(i).find("reads"), nullptr);
    EXPECT_NE(arrays->at(i).find("writes"), nullptr);
  }
}

}  // namespace
}  // namespace hlsw::rtl
