// Structural tests for the Verilog emitter: module shape, port list,
// storage declarations, FSM states, guard conditions, and basic electrical
// hygiene (every declared wire driven exactly once by an assign; balanced
// begin/end; no dangling references). We have no Verilog simulator in this
// environment, so rtl::Simulator is the executable semantics and these
// tests keep the emitted text consistent with it.
#include <gtest/gtest.h>

#include <regex>
#include <set>
#include <map>
#include <sstream>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "rtl/verilog.h"

namespace hlsw::rtl {
namespace {

using hls::run_synthesis;
using hls::TechLibrary;
using qam::build_qam_decoder_ir;

std::string emit_row(int row) {
  const auto arch = qam::table1_architectures()[static_cast<size_t>(row)];
  const auto r = run_synthesis(build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  return emit_verilog(r.transformed, r.schedule);
}

TEST(Verilog, ModuleInterface) {
  const std::string v = emit_row(1);  // sequential baseline
  EXPECT_NE(v.find("module qam_decoder ("), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire start"), std::string::npos);
  EXPECT_NE(v.find("output reg done"), std::string::npos);
  // Complex input samples, flattened.
  EXPECT_NE(v.find("input wire signed [9:0] x_in_0_re"), std::string::npos);
  EXPECT_NE(v.find("input wire signed [9:0] x_in_1_im"), std::string::npos);
  // 6-bit data output.
  EXPECT_NE(v.find("output reg signed [5:0] data"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, StorageDeclarations) {
  const std::string v = emit_row(1);
  EXPECT_NE(v.find("reg signed [9:0] m_ffe_c_re [0:7];"), std::string::npos);
  EXPECT_NE(v.find("reg signed [9:0] m_dfe_c_re [0:15];"), std::string::npos);
  EXPECT_NE(v.find("reg signed [3:0] m_SV_re [0:15];"), std::string::npos);
  EXPECT_NE(v.find("v_yffe_re"), std::string::npos);
}

TEST(Verilog, FsmStatesAndLoopCounters) {
  const std::string v = emit_row(1);
  EXPECT_NE(v.find("localparam S_IDLE = 0;"), std::string::npos);
  EXPECT_NE(v.find("localparam S_ffe"), std::string::npos);
  EXPECT_NE(v.find("localparam S_dfe_shift"), std::string::npos);
  EXPECT_NE(v.find("k <= k + 1"), std::string::npos);
  EXPECT_NE(v.find("done <= 1'b1"), std::string::npos);
}

TEST(Verilog, MergedDesignEmitsGuards) {
  const std::string v = emit_row(0);  // merged: ffe body guarded to k < 8
  EXPECT_NE(v.find("if (k < 8)"), std::string::npos);
}

TEST(Verilog, BalancedBeginEnd) {
  for (int row = 0; row < 4; ++row) {
    const std::string v = emit_row(row);
    std::size_t begins = 0, ends = 0, pos = 0;
    const std::regex word_begin("\\bbegin\\b"), word_end("\\bend\\b");
    (void)pos;
    for (auto it = std::sregex_iterator(v.begin(), v.end(), word_begin);
         it != std::sregex_iterator(); ++it)
      ++begins;
    for (auto it = std::sregex_iterator(v.begin(), v.end(), word_end);
         it != std::sregex_iterator(); ++it)
      ++ends;
    EXPECT_EQ(begins, ends) << "row " << row;
  }
}

TEST(Verilog, EveryDeclaredWireIsDrivenOnce) {
  const std::string v = emit_row(1);
  // Collect declared wire names.
  std::set<std::string> wires;
  const std::regex decl_re(R"(wire signed \[\d+:0\] (\w+);)");
  for (auto it = std::sregex_iterator(v.begin(), v.end(), decl_re);
       it != std::sregex_iterator(); ++it)
    wires.insert((*it)[1]);
  ASSERT_FALSE(wires.empty());
  // Count assigns per wire.
  std::map<std::string, int> driven;
  const std::regex assign_re(R"(assign (\w+) =)");
  for (auto it = std::sregex_iterator(v.begin(), v.end(), assign_re);
       it != std::sregex_iterator(); ++it)
    ++driven[(*it)[1]];
  for (const auto& w : wires) {
    EXPECT_EQ(driven[w], 1) << "wire " << w
                            << " must have exactly one driver";
  }
  // And no assign drives an undeclared name.
  for (const auto& [name, cnt] : driven)
    EXPECT_TRUE(wires.count(name)) << "assign to undeclared wire " << name;
}

TEST(Verilog, RoundingLogicForSlicerCast) {
  // The slicer's RND_ZERO/SAT cast must produce rounding and saturation
  // logic, not a plain truncation.
  const std::string v = emit_row(1);
  EXPECT_NE(v.find("_rnd_"), std::string::npos);
  EXPECT_NE(v.find("_fit_"), std::string::npos);
  // Saturation compares against the 10-bit bounds 511 / -512.
  EXPECT_NE(v.find("64'sd511"), std::string::npos);
  EXPECT_NE(v.find("-64'sd512"), std::string::npos);
}

TEST(Verilog, LatencyCommentMatchesSchedule) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  const std::string v = emit_verilog(r.transformed, r.schedule);
  std::ostringstream expect;
  expect << "latency " << r.schedule.latency_cycles << " cycles";
  EXPECT_NE(v.find(expect.str()), std::string::npos);
}

TEST(Verilog, PipelinedLoopsEmitSequentialFallbackNote) {
  // The FSM emitter initiates loop iterations sequentially; a pipelined
  // schedule is emitted functionally identical but slower, and the header
  // must say so rather than silently claim the pipelined latency.
  hls::Directives dir;
  dir.clock_period_ns = 4.0;
  dir.merge_groups = qam::default_merge_groups();
  dir.loops["ffe"].pipeline_ii = 1;
  const auto r = run_synthesis(build_qam_decoder_ir(), dir,
                               TechLibrary::asic90());
  ASSERT_GT(r.schedule.regions[1].ii, 0);
  const std::string v = emit_verilog(r.transformed, r.schedule);
  EXPECT_NE(v.find("initiates iterations"), std::string::npos);
  EXPECT_NE(v.find("functionally identical"), std::string::npos);
}

TEST(Verilog, CustomModuleName) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  VerilogOptions opts;
  opts.module_name = "qam_decoder_merged";
  const std::string v = emit_verilog(r.transformed, r.schedule, opts);
  EXPECT_NE(v.find("module qam_decoder_merged ("), std::string::npos);
}

}  // namespace
}  // namespace hlsw::rtl
