// Tests for the VCD waveform writer: header format, signal declarations,
// change-only encoding, and a full decoder run producing a well-formed
// dump.
#include "rtl/vcd.h"

#include <gtest/gtest.h>

#include <regex>
#include <set>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"

namespace hlsw::rtl {
namespace {

using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;

TEST(Vcd, DeclaresEverySignal) {
  const auto f = qam::build_qam_decoder_ir();
  VcdWriter vcd(f, 10.0);
  // Complex vars: 2 each; arrays: 2 per element for complex elements.
  // vars: data(1) + yffe/ydfe/y/e (2 each) = 9.
  // arrays: x_in 2*2 + ffe_c 8*2 + dfe_c 16*2 + x 8*2 + SV 16*2 = 100.
  EXPECT_EQ(vcd.signal_count(), 109);
  const std::string text = vcd.str();
  EXPECT_NE(text.find("$timescale 10000ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 6 "), std::string::npos);   // data
  EXPECT_NE(text.find(" yffe_re $end"), std::string::npos);
  EXPECT_NE(text.find(" SV[15]_im $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, EmitsChangesOnly) {
  const auto f = qam::build_qam_decoder_ir();
  VcdWriter vcd(f, 10.0);
  std::vector<hls::FxValue> vars(f.vars.size());
  std::vector<std::vector<hls::FxValue>> arrays;
  for (const auto& a : f.arrays)
    arrays.emplace_back(static_cast<size_t>(a.length));
  vcd.sample(0, vars, arrays);
  const std::size_t after_first = vcd.str().size();
  // Same state again: no new change records, only the final timestamp.
  vcd.sample(1, vars, arrays);
  EXPECT_LE(vcd.str().size(), after_first + 8);
  // One var changes: exactly one new change record.
  vars[0].re = 42;
  vcd.sample(2, vars, arrays);
  const std::string text = vcd.str();
  EXPECT_NE(text.find("#2\nb101010 "), std::string::npos);
}

TEST(Vcd, FullDecoderRunIsWellFormed) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  Simulator sim(r.transformed, r.schedule);
  VcdWriter vcd(r.transformed, r.schedule.clock_ns);
  sim.set_trace([&](long long cycle, const auto& vars, const auto& arrays) {
    vcd.sample(cycle, vars, arrays);
  });
  qam::LinkStimulus stim((qam::LinkConfig()));
  for (int n = 0; n < 4; ++n) {
    const auto s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    sim.run(io);
  }
  const std::string text = vcd.str();
  // 4 invocations x 35 cycles = 140 cycles: the closing timestamp is #140.
  EXPECT_NE(text.find("\n#140\n"), std::string::npos);
  // Every change record references a declared identifier.
  std::set<std::string> ids;
  const std::regex var_re(R"(\$var wire \d+ (\S+) )");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), var_re);
       it != std::sregex_iterator(); ++it)
    ids.insert((*it)[1]);
  const std::regex chg_re(R"(\nb[01]+ (\S+))");
  int changes = 0;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), chg_re);
       it != std::sregex_iterator(); ++it) {
    EXPECT_TRUE(ids.count((*it)[1])) << "undeclared id " << (*it)[1];
    ++changes;
  }
  EXPECT_GT(changes, 200) << "a real run toggles plenty of state";
}

}  // namespace
}  // namespace hlsw::rtl
