// FairScheduler semantics: deterministic weighted round-robin order,
// typed backpressure, the push_unbounded bypass for job-internal shards,
// and the drain contract (every accepted unit runs, then poppers exit).
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.h"

namespace hlsw::serve {
namespace {

// Single-consumer pops observe the WRR schedule exactly: tenant A (weight
// 2) and B (weight 1), four units each, pre-queued, must interleave as
// A A B | A A B | B B (A drains inside round 3's visit).
TEST(FairScheduler, WeightedRoundRobinOrderIsDeterministic) {
  FairScheduler sched;
  sched.set_weight("A", 2);
  sched.set_weight("B", 1);
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(sched.push("A", [&order] { order.push_back("A"); }),
              PushStatus::kAccepted);
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(sched.push("B", [&order] { order.push_back("B"); }),
              PushStatus::kAccepted);
  }
  std::function<void()> unit;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sched.pop(&unit));
    unit();
  }
  EXPECT_EQ(order, (std::vector<std::string>{"A", "A", "B", "A", "A", "B",
                                             "B", "B"}));
  EXPECT_EQ(sched.total_depth(), 0u);
}

TEST(FairScheduler, EqualWeightsAlternate) {
  FairScheduler sched;
  std::vector<std::string> order;
  for (int i = 0; i < 3; ++i)
    sched.push("x", [&order] { order.push_back("x"); });
  for (int i = 0; i < 3; ++i)
    sched.push("y", [&order] { order.push_back("y"); });
  std::function<void()> unit;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(sched.pop(&unit));
    unit();
  }
  EXPECT_EQ(order,
            (std::vector<std::string>{"x", "y", "x", "y", "x", "y"}));
}

TEST(FairScheduler, PushRefusesBeyondDepthCapWithTypedStatus) {
  SchedulerOptions opts;
  opts.max_queue_depth = 2;
  FairScheduler sched(opts);
  EXPECT_EQ(sched.push("t", [] {}), PushStatus::kAccepted);
  EXPECT_EQ(sched.push("t", [] {}), PushStatus::kAccepted);
  EXPECT_EQ(sched.push("t", [] {}), PushStatus::kBusy);
  // Another tenant's budget is untouched — backpressure is per tenant.
  EXPECT_EQ(sched.push("u", [] {}), PushStatus::kAccepted);
  // Draining one unit frees one slot.
  std::function<void()> unit;
  ASSERT_TRUE(sched.pop(&unit));
  EXPECT_EQ(sched.push("t", [] {}), PushStatus::kAccepted);
}

TEST(FairScheduler, PushUnboundedBypassesTheCap) {
  SchedulerOptions opts;
  opts.max_queue_depth = 1;
  FairScheduler sched(opts);
  EXPECT_EQ(sched.push("t", [] {}), PushStatus::kAccepted);
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(sched.push_unbounded("t", [] {}));
  EXPECT_EQ(sched.total_depth(), 65u);
  EXPECT_EQ(sched.push("t", [] {}), PushStatus::kBusy);
}

TEST(FairScheduler, DrainRunsEveryAcceptedUnitThenReleasesPoppers) {
  FairScheduler sched;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i)
    sched.push("t", [&ran] { ran.fetch_add(1); });
  sched.drain();
  EXPECT_EQ(sched.push("t", [] {}), PushStatus::kStopped);
  EXPECT_FALSE(sched.push_unbounded("t", [] {}));
  std::function<void()> unit;
  int popped = 0;
  while (sched.pop(&unit)) {
    unit();
    ++popped;
  }
  EXPECT_EQ(popped, 10);
  EXPECT_EQ(ran.load(), 10);
  EXPECT_FALSE(sched.pop(&unit));  // stays drained
}

// Many producers and consumers: every accepted unit runs exactly once —
// nothing lost, nothing duplicated — and blocked poppers exit on drain.
TEST(FairScheduler, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  SchedulerOptions opts;
  opts.max_queue_depth = kPerProducer * 2;
  FairScheduler sched(opts);

  std::vector<std::atomic<int>> runs(kProducers * kPerProducer);
  for (auto& r : runs) r.store(0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&sched] {
      std::function<void()> unit;
      while (sched.pop(&unit)) unit();
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&sched, &runs, p] {
      const std::string tenant = "tenant" + std::to_string(p);
      for (int i = 0; i < kPerProducer; ++i) {
        auto* slot = &runs[p * kPerProducer + i];
        ASSERT_EQ(sched.push(tenant, [slot] { slot->fetch_add(1); }),
                  PushStatus::kAccepted);
      }
    });
  for (auto& t : producers) t.join();
  sched.drain();
  for (auto& t : consumers) t.join();

  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
  EXPECT_EQ(sched.total_depth(), 0u);
}

TEST(FairScheduler, QueueDepthsSnapshotPerTenant) {
  FairScheduler sched;
  sched.push("a", [] {});
  sched.push("a", [] {});
  sched.push("b", [] {});
  const auto depths = sched.queue_depths();
  ASSERT_EQ(depths.size(), 2u);
  EXPECT_EQ(depths.at("a"), 2u);
  EXPECT_EQ(depths.at("b"), 1u);
}

}  // namespace
}  // namespace hlsw::serve
