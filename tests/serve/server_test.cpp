// End-to-end daemon tests over a real unix socket: protocol hardening
// (every malformed input maps to a typed error and leaves the daemon
// healthy), worker-side failure isolation (a throwing tenant design fails
// only its own job), deterministic backpressure, and graceful shutdown.
#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <sys/socket.h>
#include <unistd.h>

#include "hls/builder.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/proto.h"
#include "serve/server.h"

namespace hlsw::serve {
namespace {

using obs::Json;

std::string test_socket(const std::string& name) {
  return "/tmp/hlsw_serve_test_" + std::to_string(::getpid()) + "_" + name +
         ".sock";
}

// A deliberately small design so job bodies are cheap; the tests here
// exercise the daemon, not the scheduler math.
hls::Function build_tiny() {
  hls::FunctionBuilder fb("tiny");
  const int a = fb.add_array("a", 4, hls::fx(12, 0), false, hls::PortDir::kIn);
  const int b = fb.add_array("b", 4, hls::fx(24, 2), false, hls::PortDir::kOut);
  {
    auto l = fb.loop("scale", 4);
    const int p = l.mul(l.array_read(a, {1, 0}), l.array_read(a, {1, 0}));
    l.array_write(b, {1, 0}, l.cast(hls::fx(24, 2), p));
  }
  return fb.build();
}

const Json* error_code(const Json& resp) {
  const Json* e = resp.find("error");
  return e ? e->find("code") : nullptr;
}

void expect_error(const Json& resp, const std::string& code, long long id) {
  ASSERT_NE(resp.find("ok"), nullptr) << resp.dump();
  EXPECT_FALSE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("id")->as_int(), id) << resp.dump();
  ASSERT_NE(error_code(resp), nullptr) << resp.dump();
  EXPECT_EQ(error_code(resp)->as_string(), code) << resp.dump();
}

TEST(Server, PingEchoesIdsAndSynthHitsTheSharedCache) {
  ServerOptions opts;
  opts.unix_path = test_socket("ping");
  opts.workers = 2;
  Server server(opts);
  server.register_design("tiny", build_tiny);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client client;
  ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;

  Json resp;
  ASSERT_TRUE(client.call("ping", Json(), &resp, &err));
  EXPECT_TRUE(resp.find("ok")->as_bool());
  EXPECT_EQ(resp.find("id")->as_int(), 1);
  EXPECT_TRUE(resp.find("result")->find("pong")->as_bool());

  const Json params = Json::object().set("design", "tiny");
  ASSERT_TRUE(client.call("synth", params, &resp, &err));
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  const Json* first = resp.find("result");
  EXPECT_FALSE(first->find("cached")->as_bool());
  const long long cycles = first->find("latency_cycles")->as_int();
  const double area = first->find("area")->as_double();
  EXPECT_GT(cycles, 0);
  EXPECT_GT(area, 0.0);

  // Second identical request: served from the process-wide cache with the
  // same metrics, and flagged as such.
  ASSERT_TRUE(client.call("synth", params, &resp, &err));
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_TRUE(resp.find("result")->find("cached")->as_bool());
  EXPECT_EQ(resp.find("result")->find("latency_cycles")->as_int(), cycles);
  EXPECT_EQ(resp.find("result")->find("area")->as_double(), area);

  // metrics reflects the traffic: job counters, cache hit rate, and the
  // latency histogram with p50/p95/p99 (the registry is process-global so
  // assertions are lower bounds, not exact counts).
  ASSERT_TRUE(client.call("metrics", Json(), &resp, &err));
  const Json* m = resp.find("result");
  ASSERT_NE(m, nullptr);
  EXPECT_GE(m->find("server")->find("jobs")->find("ok")->as_int(), 2);
  EXPECT_EQ(m->find("server")->find("jobs")->find("failed")->as_int(), 0);
  EXPECT_GT(
      m->find("server")->find("synth_cache")->find("hit_rate")->as_double(),
      0.0);
  const Json* hist = m->find("registry")->find("histograms");
  ASSERT_NE(hist, nullptr);
  const Json* job_ms = hist->find("serve.job_ms");
  ASSERT_NE(job_ms, nullptr) << m->dump(2);
  EXPECT_GE(job_ms->find("count")->as_int(), 2);
  EXPECT_NE(job_ms->find("p50"), nullptr);
  EXPECT_NE(job_ms->find("p95"), nullptr);
  EXPECT_NE(job_ms->find("p99"), nullptr);

  server.stop();
}

// Satellite: protocol hardening. Every malformed payload earns a typed
// error on the SAME connection, which must remain usable afterwards.
TEST(Server, PayloadErrorsAreTypedAndLeaveTheConnectionUsable) {
  ServerOptions opts;
  opts.unix_path = test_socket("proto_errors");
  opts.workers = 1;
  Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  const int fd = connect_unix(opts.unix_path, &err);
  ASSERT_GE(fd, 0) << err;

  auto roundtrip = [&](const std::string& payload) {
    EXPECT_TRUE(write_frame(fd, payload));
    std::string raw;
    EXPECT_EQ(read_frame(fd, &raw), FrameStatus::kOk);
    Json resp;
    std::string perr;
    EXPECT_TRUE(Json::parse(raw, &resp, &perr)) << perr;
    return resp;
  };

  expect_error(roundtrip("{nope"), "bad_json", 0);
  expect_error(roundtrip("[1, 2, 3]"), "not_object", 0);
  expect_error(roundtrip("\"ping\""), "not_object", 0);
  expect_error(roundtrip("{\"op\": \"ping\", \"id\": \"seven\"}"),
               "bad_params", 0);
  expect_error(roundtrip("{\"id\": 3}"), "bad_params", 3);
  expect_error(roundtrip("{\"op\": 12, \"id\": 4}"), "bad_params", 4);
  expect_error(roundtrip("{\"op\": \"ping\", \"id\": 5, \"tenant\": 9}"),
               "bad_params", 5);
  expect_error(roundtrip("{\"op\": \"frobnicate\", \"id\": 7}"), "unknown_op",
               7);
  // Directive payloads go through the strict wire codec: unknown keys are
  // a bad_params, not silently ignored.
  expect_error(
      roundtrip("{\"op\": \"synth\", \"id\": 8, \"design\": \"qam_decoder\","
                " \"directives\": {\"warp_factor\": 9}}"),
      "bad_params", 8);
  // cosim without vectors is a typed parameter error.
  expect_error(
      roundtrip("{\"op\": \"cosim\", \"id\": 9, \"design\": \"qam_decoder\"}"),
      "bad_params", 9);

  // After ten straight protocol errors the connection still works.
  const Json pong = roundtrip("{\"op\": \"ping\", \"id\": 99}");
  EXPECT_TRUE(pong.find("ok")->as_bool());
  EXPECT_EQ(pong.find("id")->as_int(), 99);

  close_fd(fd);
  server.stop();
}

TEST(Server, TruncatedFrameGetsTypedReplyThenConnectionCloses) {
  ServerOptions opts;
  opts.unix_path = test_socket("truncated");
  opts.workers = 1;
  Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  const int fd = connect_unix(opts.unix_path, &err);
  ASSERT_GE(fd, 0) << err;
  // Two bytes of length prefix, then half-close: the server must answer
  // with a typed truncated_frame error (we can still read) and stop
  // processing the connection.
  const char partial[2] = {0, 0};
  ASSERT_EQ(::send(fd, partial, 2, 0), 2);
  ::shutdown(fd, SHUT_WR);

  std::string raw;
  ASSERT_EQ(read_frame(fd, &raw), FrameStatus::kOk);
  Json resp;
  std::string perr;
  ASSERT_TRUE(Json::parse(raw, &resp, &perr)) << perr;
  expect_error(resp, "truncated_frame", 0);

  server.stop();  // releases the connection: the next read sees EOF
  EXPECT_EQ(read_frame(fd, &raw), FrameStatus::kClosed);
  close_fd(fd);
}

TEST(Server, OversizedFrameGetsTypedReplyThenConnectionCloses) {
  ServerOptions opts;
  opts.unix_path = test_socket("oversized");
  opts.workers = 1;
  opts.max_frame_bytes = 256;
  Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  const int fd = connect_unix(opts.unix_path, &err);
  ASSERT_GE(fd, 0) << err;
  // Announce 64 KiB against a 256-byte limit; the refusal must come from
  // the prefix alone, before any payload bytes exist to read.
  const unsigned char prefix[4] = {0, 1, 0, 0};
  ASSERT_EQ(::send(fd, prefix, 4, 0), 4);

  std::string raw;
  ASSERT_EQ(read_frame(fd, &raw), FrameStatus::kOk);
  Json resp;
  std::string perr;
  ASSERT_TRUE(Json::parse(raw, &resp, &perr)) << perr;
  expect_error(resp, "oversized_frame", 0);

  server.stop();
  EXPECT_EQ(read_frame(fd, &raw), FrameStatus::kClosed);
  close_fd(fd);
}

// Satellite: a worker-side exception — here a design factory that throws —
// fails exactly that job with a structured payload. The daemon, the
// connection, and the next job are untouched.
TEST(Server, ThrowingDesignFactoryFailsTheJobNotTheDaemon) {
  ServerOptions opts;
  opts.unix_path = test_socket("job_failed");
  opts.workers = 2;
  Server server(opts);
  server.register_design("tiny", build_tiny);
  server.register_design("explodes", []() -> hls::Function {
    throw std::runtime_error("boom in tenant design factory");
  });
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client client;
  ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;

  Json resp;
  ASSERT_TRUE(client.call("synth", Json::object().set("design", "explodes"),
                          &resp, &err));
  expect_error(resp, "job_failed", 1);
  EXPECT_NE(resp.find("error")->find("what")->as_string().find(
                "boom in tenant design factory"),
            std::string::npos)
      << resp.dump();
  EXPECT_EQ(resp.find("error")->find("where")->as_string(), "serve.synth");

  // An unregistered design is the same story with a more precise code.
  ASSERT_TRUE(client.call("synth", Json::object().set("design", "nope"),
                          &resp, &err));
  expect_error(resp, "unknown_design", 2);

  // The daemon shrugs it off: same connection, next job succeeds.
  ASSERT_TRUE(client.call("synth", Json::object().set("design", "tiny"),
                          &resp, &err));
  EXPECT_TRUE(resp.find("ok")->as_bool()) << resp.dump();

  ASSERT_TRUE(client.call("metrics", Json(), &resp, &err));
  EXPECT_GE(resp.find("result")
                ->find("server")
                ->find("jobs")
                ->find("failed")
                ->as_int(),
            2);

  server.stop();
}

// Deterministic backpressure: one worker wedged in a gated job, a queue
// depth of one — the third request MUST see `busy`, and nothing is lost.
TEST(Server, FullTenantQueueAnswersBusyWithoutDroppingAnything) {
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;
  };
  auto gate = std::make_shared<Gate>();

  ServerOptions opts;
  opts.unix_path = test_socket("busy");
  opts.workers = 1;
  opts.sched.max_queue_depth = 1;
  Server server(opts);
  server.register_design("tiny", build_tiny);
  server.register_design("gated", [gate] {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->entered = true;
    gate->cv.notify_all();
    gate->cv.wait(lock, [&] { return gate->release; });
    return build_tiny();
  });
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client client;
  ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;

  // Job A occupies the only worker (the factory blocks on the gate).
  const long long a =
      client.submit("synth", Json::object().set("design", "gated"), "", &err);
  ASSERT_GT(a, 0) << err;
  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->entered; });
  }
  // Job B fills the tenant queue (depth 1); job C must bounce.
  const long long b =
      client.submit("synth", Json::object().set("design", "tiny"), "", &err);
  ASSERT_GT(b, 0) << err;
  const long long c =
      client.submit("synth", Json::object().set("design", "tiny"), "", &err);
  ASSERT_GT(c, 0) << err;

  Json resp;
  ASSERT_TRUE(client.wait(c, &resp, &err)) << err;
  expect_error(resp, "busy", c);

  // Open the gate: A and B complete normally — backpressure rejected C
  // without corrupting the queued work.
  {
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->release = true;
  }
  gate->cv.notify_all();
  ASSERT_TRUE(client.wait(a, &resp, &err)) << err;
  EXPECT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  ASSERT_TRUE(client.wait(b, &resp, &err)) << err;
  EXPECT_TRUE(resp.find("ok")->as_bool()) << resp.dump();

  ASSERT_TRUE(client.call("metrics", Json(), &resp, &err));
  EXPECT_GE(resp.find("result")
                ->find("server")
                ->find("jobs")
                ->find("busy_rejections")
                ->as_int(),
            1);

  server.stop();
}

TEST(Server, ShutdownOpIsForbiddenUnlessEnabled) {
  ServerOptions opts;
  opts.unix_path = test_socket("forbidden");
  opts.workers = 1;
  Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client client;
  ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;
  Json resp;
  ASSERT_TRUE(client.call("shutdown", Json(), &resp, &err));
  expect_error(resp, "forbidden", 1);
  // The refusal is advisory, not fatal: the connection still answers.
  ASSERT_TRUE(client.call("ping", Json(), &resp, &err));
  EXPECT_TRUE(resp.find("ok")->as_bool());
  server.stop();
}

TEST(Server, ShutdownOpDrainsInFlightWorkThenReleasesWait) {
  ServerOptions opts;
  opts.unix_path = test_socket("shutdown");
  opts.workers = 2;
  opts.allow_shutdown_op = true;
  Server server(opts);
  server.register_design("tiny", build_tiny);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client client;
  ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;
  // Pipeline a real job and the shutdown: the job's response must still
  // arrive — graceful drain, not the axe.
  const long long job =
      client.submit("synth", Json::object().set("design", "tiny"), "", &err);
  ASSERT_GT(job, 0) << err;
  const long long down = client.submit("shutdown", Json(), "", &err);
  ASSERT_GT(down, 0) << err;

  Json resp;
  ASSERT_TRUE(client.wait(job, &resp, &err)) << err;
  EXPECT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  ASSERT_TRUE(client.wait(down, &resp, &err)) << err;
  EXPECT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_TRUE(resp.find("result")->find("draining")->as_bool());

  server.wait();  // released by the shutdown op
  server.stop();
}

TEST(Server, StartRequiresAListenerAndReportsBindFailures) {
  Server none{ServerOptions{}};
  std::string err;
  EXPECT_FALSE(none.start(&err));
  EXPECT_NE(err.find("no listener"), std::string::npos) << err;

  ServerOptions opts;
  opts.unix_path = "/nonexistent-dir/hlsw.sock";
  Server bad(opts);
  err.clear();
  EXPECT_FALSE(bad.start(&err));
  EXPECT_FALSE(err.empty());
}

TEST(Server, TcpListenerServesTheSameProtocol) {
  ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  opts.workers = 1;
  Server server(opts);
  server.register_design("tiny", build_tiny);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  ASSERT_GT(server.tcp_port(), 0);

  Client client;
  ASSERT_TRUE(client.connect_tcp("127.0.0.1", server.tcp_port(), &err)) << err;
  Json resp;
  ASSERT_TRUE(client.call("synth", Json::object().set("design", "tiny"),
                          &resp, &err));
  EXPECT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  server.stop();
}

}  // namespace
}  // namespace hlsw::serve
