// The acceptance gate for the daemon: eight concurrent clients pipeline a
// thousand jobs through one server and every single response comes back —
// none lost, none duplicated, all correct — while the shared cache turns
// the storm into lookups. Also the concurrency worst case: sharded DSE
// sweeps competing with synth traffic from other tenants. This test (and
// its TSan build, serve_stress_test_tsan) is where scheduler, connection
// and cache races would surface.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "hls/builder.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/server.h"

namespace hlsw::serve {
namespace {

using obs::Json;

hls::Function build_tiny() {
  hls::FunctionBuilder fb("tiny");
  const int a = fb.add_array("a", 4, hls::fx(12, 0), false, hls::PortDir::kIn);
  const int b = fb.add_array("b", 4, hls::fx(24, 2), false, hls::PortDir::kOut);
  {
    auto l = fb.loop("scale", 4);
    const int p = l.mul(l.array_read(a, {1, 0}), l.array_read(a, {1, 0}));
    l.array_write(b, {1, 0}, l.cast(hls::fx(24, 2), p));
  }
  return fb.build();
}

Json synth_params(int unroll) {
  Json dir = Json::object();
  if (unroll > 1)
    dir.set("loops",
            Json::object().set("scale",
                               Json::object().set("unroll", unroll)));
  return Json::object().set("design", "tiny").set("directives",
                                                  std::move(dir));
}

TEST(ServerStress, ThousandPipelinedJobsFromEightClientsLoseNothing) {
  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 125;

  ServerOptions opts;
  opts.unix_path =
      "/tmp/hlsw_stress_test_" + std::to_string(::getpid()) + ".sock";
  opts.workers = 4;
  // Deep enough that a full burst of pipelined submissions cannot trip
  // backpressure — this test wants 1000 accepted jobs, exactly.
  opts.sched.max_queue_depth = 2 * kJobsPerClient;
  Server server(opts);
  server.register_design("tiny", build_tiny);
  std::string serr;
  ASSERT_TRUE(server.start(&serr)) << serr;

  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kClients, 0);
  for (int cidx = 0; cidx < kClients; ++cidx) {
    threads.emplace_back([cidx, &ok_counts, &opts] {
      Client client;
      std::string err;
      ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;
      const std::string tenant = "client" + std::to_string(cidx);

      // Submit the whole batch pipelined, interleaving pings (answered
      // immediately on the connection thread) so responses genuinely
      // arrive out of submission order and exercise the reorder buffer.
      std::vector<long long> ids;
      std::vector<long long> pings;
      for (int k = 0; k < kJobsPerClient; ++k) {
        const int unroll = 1 << (k % 3);  // 1, 2, 4
        const long long id =
            client.submit("synth", synth_params(unroll), tenant, &err);
        ASSERT_GT(id, 0) << err;
        ids.push_back(id);
        if (k % 10 == 0) {
          const long long p = client.submit("ping", Json(), tenant, &err);
          ASSERT_GT(p, 0) << err;
          pings.push_back(p);
        }
      }
      // Collect in REVERSE submission order — the parking map must hold
      // and replay every earlier response without loss.
      for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
        Json resp;
        ASSERT_TRUE(client.wait(*it, &resp, &err)) << err;
        ASSERT_EQ(resp.find("id")->as_int(), *it);
        ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
        ASSERT_GT(resp.find("result")->find("latency_cycles")->as_int(), 0);
        ++ok_counts[cidx];
      }
      for (const long long p : pings) {
        Json resp;
        ASSERT_TRUE(client.wait(p, &resp, &err)) << err;
        ASSERT_TRUE(resp.find("result")->find("pong")->as_bool());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int cidx = 0; cidx < kClients; ++cidx)
    EXPECT_EQ(ok_counts[cidx], kJobsPerClient) << "client " << cidx;

  // Server-side ledger: exactly 1000 jobs accepted and completed ok. Any
  // duplicate or dropped response would break either this or the per-id
  // checks above.
  Client probe;
  std::string err;
  ASSERT_TRUE(probe.connect_unix(opts.unix_path, &err)) << err;
  Json resp;
  ASSERT_TRUE(probe.call("metrics", Json(), &resp, &err)) << err;
  const Json* jobs = resp.find("result")->find("server")->find("jobs");
  EXPECT_EQ(jobs->find("accepted")->as_int(), kClients * kJobsPerClient);
  EXPECT_EQ(jobs->find("ok")->as_int(), kClients * kJobsPerClient);
  EXPECT_EQ(jobs->find("failed")->as_int(), 0);
  EXPECT_EQ(jobs->find("busy_rejections")->as_int(), 0);

  // Only 3 distinct configurations exist among 1000 jobs: the shared
  // cache must have absorbed nearly everything.
  const Json* cache = resp.find("result")->find("server")->find("synth_cache");
  EXPECT_GT(cache->find("hit_rate")->as_double(), 0.9);

  server.stop();
}

// Sharded DSE sweeps racing synth traffic from other tenants: every job
// completes, and both sweeps return identical documents (determinism is
// scheduling-independent).
TEST(ServerStress, ConcurrentDseAndSynthTenantsAllComplete) {
  ServerOptions opts;
  opts.unix_path =
      "/tmp/hlsw_stress_dse_" + std::to_string(::getpid()) + ".sock";
  opts.workers = 4;
  opts.sched.max_queue_depth = 256;
  Server server(opts);
  server.register_design("tiny", build_tiny);
  std::string serr;
  ASSERT_TRUE(server.start(&serr)) << serr;

  const Json dse_params =
      Json::object()
          .set("design", "tiny")
          .set("options",
               Json::object()
                   .set("unroll_factors", Json::array().push(1).push(2))
                   .set("pipeline_iis", Json::array().push(0).push(1)));

  std::vector<std::string> dse_dumps(2);
  std::vector<std::thread> threads;
  for (int d = 0; d < 2; ++d) {
    threads.emplace_back([d, &dse_dumps, &dse_params, &opts] {
      Client client;
      std::string err;
      ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;
      Json resp;
      ASSERT_TRUE(client.call("dse", dse_params, &resp, &err,
                              "sweeper" + std::to_string(d)))
          << err;
      ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
      dse_dumps[d] = resp.find("result")->find("points")->dump();
    });
  }
  for (int s = 0; s < 4; ++s) {
    threads.emplace_back([s, &opts] {
      Client client;
      std::string err;
      ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;
      const std::string tenant = "synther" + std::to_string(s);
      for (int k = 0; k < 50; ++k) {
        Json resp;
        ASSERT_TRUE(
            client.call("synth", synth_params(1 << (k % 3)), &resp, &err,
                        tenant))
            << err;
        ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(dse_dumps[0].empty());
  EXPECT_EQ(dse_dumps[0], dse_dumps[1]);
  server.stop();
}

}  // namespace
}  // namespace hlsw::serve
