// The daemon's core contract: a job submitted over the socket produces
// results BIT-IDENTICAL to calling the library directly in-process. Synth
// metrics, full DSE sweeps (sharded through the fair scheduler), cosim,
// verify and three-leg profile runs all round-trip through the wire codec
// and come back exactly equal — plus the codec's own exactness proof on
// extreme fixed-point raw values that a double-typed JSON number would
// silently corrupt.
#include <gtest/gtest.h>

#include <string>
#include <unistd.h>
#include <vector>

#include "hls/dse.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "hls/verify.h"
#include "obs/json.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "vsim/harness.h"
#include "vsim/profile.h"

namespace hlsw::serve {
namespace {

using obs::Json;

std::string test_socket(const std::string& name) {
  return "/tmp/hlsw_equiv_test_" + std::to_string(::getpid()) + "_" + name +
         ".sock";
}

hls::Directives table1_merge_unroll2() {
  hls::Directives dir;
  dir.auto_merge = true;
  dir.loops["ffe"].unroll = 2;
  dir.loops["dfe"].unroll = 2;
  return dir;
}

std::vector<hls::PortIo> link_vectors(int symbols) {
  qam::LinkStimulus stim((qam::LinkConfig()));
  return qam::link_input_batch(&stim, symbols);
}

class EquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    opts_.unix_path = test_socket(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    opts_.workers = 4;
    server_ = std::make_unique<Server>(opts_);
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;
    ASSERT_TRUE(client_.connect_unix(opts_.unix_path, &err)) << err;
  }
  void TearDown() override { server_->stop(); }

  // Sends the job and returns the `result` object, asserting ok.
  Json call_ok(const std::string& op, Json params) {
    Json resp;
    std::string err;
    EXPECT_TRUE(client_.call(op, std::move(params), &resp, &err)) << err;
    EXPECT_TRUE(resp.find("ok")->as_bool()) << resp.dump(2);
    return *resp.find("result");
  }

  ServerOptions opts_;
  std::unique_ptr<Server> server_;
  Client client_;
};

// The codec itself must be exact where doubles are not: raw fixed-point
// components near the 128-bit extremes survive the round trip untouched.
TEST(WireCodec, VectorsRoundTripFullWidthRawValuesExactly) {
  const __int128 kInt128Min = static_cast<__int128>(1) << 127;
  std::vector<hls::PortIo> vectors(2);
  auto& arr = vectors[0].arrays["a"];
  arr.resize(4);
  arr[0] = {static_cast<__int128>(1) << 100, 0, 12, false};
  arr[1] = {kInt128Min, ~kInt128Min, 3, true};  // min and max
  arr[2] = {(static_cast<__int128>(1) << 53) + 1, 0, 0, false};  // > 2^53
  arr[3] = {-1, -1, 31, true};
  vectors[1].vars["gain"] = {9007199254740993ll, 0, 15, false};

  const Json j = vectors_to_json(vectors);
  // The double-hostile values must have gone out as strings.
  EXPECT_TRUE(
      j.at(0).find("arrays")->find("a")->at(2).find("re")->is_string());

  std::vector<hls::PortIo> back;
  std::string err;
  ASSERT_TRUE(vectors_from_json(j, &back, &err)) << err;
  ASSERT_EQ(back.size(), vectors.size());
  EXPECT_TRUE(back[0].arrays.at("a") == vectors[0].arrays.at("a"));
  EXPECT_TRUE(back[1].vars.at("gain") == vectors[1].vars.at("gain"));

  // And a second trip through TEXT (the actual wire) changes nothing.
  Json reparsed;
  ASSERT_TRUE(Json::parse(j.dump(), &reparsed, &err)) << err;
  std::vector<hls::PortIo> back2;
  ASSERT_TRUE(vectors_from_json(reparsed, &back2, &err)) << err;
  EXPECT_TRUE(back2[0].arrays.at("a") == vectors[0].arrays.at("a"));
}

TEST_F(EquivalenceTest, SynthMetricsMatchDirectCallExactly) {
  const hls::Directives dir = table1_merge_unroll2();
  const hls::SynthesisResult direct = hls::run_synthesis(
      qam::build_qam_decoder_ir(), dir, hls::TechLibrary::asic90());

  const Json result = call_ok("synth", Json::object()
                                           .set("design", "qam_decoder")
                                           .set("directives",
                                                directives_to_json(dir)));
  EXPECT_EQ(result.find("latency_cycles")->as_int(), direct.latency_cycles());
  // Json prints doubles with shortest-round-trip precision, so exact
  // equality is the honest assertion, not a tolerance.
  EXPECT_EQ(result.find("latency_ns")->as_double(), direct.latency_ns());
  EXPECT_EQ(result.find("area")->as_double(), direct.area.total);

  // emit_verilog returns the same text rtl::emit_verilog produces.
  const Json with_v = call_ok("synth", Json::object()
                                           .set("design", "qam_decoder")
                                           .set("directives",
                                                directives_to_json(dir))
                                           .set("emit_verilog", true));
  EXPECT_EQ(with_v.find("verilog")->as_string(),
            rtl::emit_verilog(direct.transformed, direct.schedule));
}

TEST_F(EquivalenceTest, DseSweepShardedThroughTheSchedulerIsBitIdentical) {
  hls::DseOptions o;
  o.unroll_factors = {1, 2};
  o.pipeline_iis = {0, 1};
  const hls::DseResult direct =
      hls::explore(qam::build_qam_decoder_ir(), o, hls::TechLibrary::asic90());
  const Json direct_json = hls::dse_run_json(direct, o, 0.0);

  const Json options = Json::object()
                           .set("unroll_factors", Json::array().push(1).push(2))
                           .set("pipeline_iis", Json::array().push(0).push(1));
  const Json served = call_ok("dse", Json::object()
                                         .set("design", "qam_decoder")
                                         .set("options", options));

  // Everything except wall-clock must match field for field: the sweep was
  // sharded into fair-scheduled units across 4 workers, yet enumeration
  // order, prune decisions, cache counters and the Pareto front are the
  // serial path's exactly.
  for (const char* key :
       {"points", "pareto_front", "pruned", "cache_hits", "cache_misses",
        "pruned_infeasible", "pruned_dominated", "scheduled", "seed",
        "schema_version"}) {
    ASSERT_NE(served.find(key), nullptr) << key;
    ASSERT_NE(direct_json.find(key), nullptr) << key;
    EXPECT_EQ(served.find(key)->dump(), direct_json.find(key)->dump()) << key;
  }

  // A repeat of the same sweep is served WARM from the shared cache: zero
  // new schedules, identical points.
  const Json warm = call_ok("dse", Json::object()
                                       .set("design", "qam_decoder")
                                       .set("options", options));
  EXPECT_EQ(warm.find("points")->dump(), direct_json.find("points")->dump());
  EXPECT_EQ(warm.find("cache_misses")->as_int(), 0) << warm.dump(2);
}

TEST_F(EquivalenceTest, CosimAndVerifyMatchDirectCalls) {
  const hls::Directives dir = table1_merge_unroll2();
  const std::vector<hls::PortIo> vectors = link_vectors(20);
  const hls::SynthesisResult r = hls::run_synthesis(
      qam::build_qam_decoder_ir(), dir, hls::TechLibrary::asic90());

  hls::CosimOptions copt;
  copt.threads = 0;
  copt.block_size = vectors.size();
  auto golden = [&r] {
    auto interp = std::make_shared<hls::Interpreter>(r.transformed);
    return [interp](const std::vector<hls::PortIo>& v) {
      return interp->run_stream(v);
    };
  };
  auto dut = [&r] {
    auto sim = std::make_shared<rtl::Simulator>(r.transformed, r.schedule);
    return [sim](const std::vector<hls::PortIo>& v) {
      return sim->run_stream(v);
    };
  };
  const Json direct_cosim =
      cosim_result_to_json(hls::cosim_sweep(golden, dut, vectors, copt));

  const Json params = Json::object()
                          .set("design", "qam_decoder")
                          .set("directives", directives_to_json(dir))
                          .set("vectors", vectors_to_json(vectors));
  const Json served_cosim = call_ok("cosim", params);
  EXPECT_EQ(served_cosim.dump(), direct_cosim.dump());
  EXPECT_TRUE(served_cosim.find("ok")->as_bool()) << served_cosim.dump(2);

  const vsim::VerifyEmittedResult direct_verify =
      vsim::verify_emitted(r.transformed, r.schedule, vectors, copt);
  const Json served_verify = call_ok("verify", params);
  EXPECT_EQ(served_verify.find("ok")->as_bool(), direct_verify.ok());
  EXPECT_EQ(served_verify.find("cosim")->dump(),
            cosim_result_to_json(direct_verify.cosim).dump());
  EXPECT_EQ(served_verify.find("testbench")->find("passed")->as_bool(),
            direct_verify.testbench.passed);
  EXPECT_EQ(served_verify.find("lint_issues")->size(),
            direct_verify.lint_issues.size());
}

TEST_F(EquivalenceTest, ProfileRunMatchesDirectCallDocumentForDocument) {
  const hls::Directives dir = table1_merge_unroll2();
  const std::vector<hls::PortIo> vectors = link_vectors(6);
  const Json direct =
      vsim::profile_run(qam::build_qam_decoder_ir(), dir,
                        hls::TechLibrary::asic90(), vectors)
          .to_json();

  const Json served = call_ok("profile", Json::object()
                                             .set("design", "qam_decoder")
                                             .set("directives",
                                                  directives_to_json(dir))
                                             .set("vectors",
                                                  vectors_to_json(vectors)));
  // profile_run.json carries no wall-clock fields: the whole document —
  // predictions, measured counters, deviations, cross-leg checks — must be
  // byte-identical after a trip through the wire.
  EXPECT_EQ(served.dump(), direct.dump());
}

}  // namespace
}  // namespace hlsw::serve
