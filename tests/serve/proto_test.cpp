// Frame codec over real sockets: every row of proto.h's error taxonomy is
// driven through a socketpair — clean close, EOF mid-prefix, EOF
// mid-payload, hostile oversized prefixes — plus round-trips of empty,
// small and multi-frame payloads.
#include <gtest/gtest.h>

#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "serve/proto.h"

namespace hlsw::serve {
namespace {

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    close_fd(a);
    close_fd(b);
  }
  int fds[2] = {-1, -1};
};

#define MAKE_PAIR()     \
  SocketPair sp;        \
  const int a = sp.fds[0]; \
  const int b = sp.fds[1]; \
  sp.a = a;             \
  sp.b = b

TEST(Proto, RoundTripsPayloads) {
  MAKE_PAIR();
  for (const std::string& payload :
       {std::string(""), std::string("{}"), std::string("{\"op\":\"ping\"}"),
        std::string(4096, 'x')}) {
    ASSERT_TRUE(write_frame(a, payload));
    std::string got;
    ASSERT_EQ(read_frame(b, &got), FrameStatus::kOk);
    EXPECT_EQ(got, payload);
  }
}

TEST(Proto, PipelinedFramesKeepBoundaries) {
  MAKE_PAIR();
  ASSERT_TRUE(write_frame(a, "first"));
  ASSERT_TRUE(write_frame(a, ""));
  ASSERT_TRUE(write_frame(a, "third"));
  std::string got;
  ASSERT_EQ(read_frame(b, &got), FrameStatus::kOk);
  EXPECT_EQ(got, "first");
  ASSERT_EQ(read_frame(b, &got), FrameStatus::kOk);
  EXPECT_EQ(got, "");
  ASSERT_EQ(read_frame(b, &got), FrameStatus::kOk);
  EXPECT_EQ(got, "third");
}

TEST(Proto, CleanCloseAtBoundaryIsClosedNotError) {
  MAKE_PAIR();
  ASSERT_TRUE(write_frame(a, "last"));
  ::shutdown(a, SHUT_WR);
  std::string got;
  ASSERT_EQ(read_frame(b, &got), FrameStatus::kOk);
  EXPECT_EQ(got, "last");
  EXPECT_EQ(read_frame(b, &got), FrameStatus::kClosed);
}

TEST(Proto, EofInsidePrefixIsTruncated) {
  MAKE_PAIR();
  const char two[2] = {0, 0};
  ASSERT_EQ(::send(a, two, 2, 0), 2);
  ::shutdown(a, SHUT_WR);
  std::string got, err;
  EXPECT_EQ(read_frame(b, &got, kDefaultMaxFrameBytes, &err),
            FrameStatus::kTruncated);
  EXPECT_NE(err.find("length prefix"), std::string::npos) << err;
}

TEST(Proto, EofInsidePayloadIsTruncated) {
  MAKE_PAIR();
  // Announce 100 bytes, deliver 3, half-close. The reader must report a
  // truncation (with byte counts), not hang and not return garbage.
  const unsigned char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(a, prefix, 4, 0), 4);
  ASSERT_EQ(::send(a, "abc", 3, 0), 3);
  ::shutdown(a, SHUT_WR);
  std::string got, err;
  EXPECT_EQ(read_frame(b, &got, kDefaultMaxFrameBytes, &err),
            FrameStatus::kTruncated);
  EXPECT_NE(err.find("3 of 100"), std::string::npos) << err;
}

TEST(Proto, OversizedPrefixIsRefusedBeforeAllocation) {
  MAKE_PAIR();
  // 0xFFFFFFFF announced: must be refused by the limit check, long before
  // any attempt to read (or allocate) 4 GiB.
  const unsigned char prefix[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::send(a, prefix, 4, 0), 4);
  std::string got, err;
  EXPECT_EQ(read_frame(b, &got, /*max_bytes=*/1024, &err),
            FrameStatus::kOversized);
  EXPECT_NE(err.find("limit is 1024"), std::string::npos) << err;
}

TEST(Proto, PeerCanStillReadAfterHalfClose) {
  // The shutdown(WR) idiom the server's truncated_frame reply depends on:
  // a peer that half-closed its write side still receives frames.
  MAKE_PAIR();
  ::shutdown(a, SHUT_WR);
  ASSERT_TRUE(write_frame(b, "reply"));
  std::string got;
  ASSERT_EQ(read_frame(a, &got), FrameStatus::kOk);
  EXPECT_EQ(got, "reply");
}

TEST(Proto, UnixListenConnectRoundTrip) {
  const std::string path =
      "/tmp/hlsw_proto_test_" + std::to_string(::getpid()) + ".sock";
  std::string err;
  const int lfd = listen_unix(path, &err);
  ASSERT_GE(lfd, 0) << err;
  std::thread peer([&] {
    const int cfd = connect_unix(path, nullptr);
    ASSERT_GE(cfd, 0);
    EXPECT_TRUE(write_frame(cfd, "hello"));
    close_fd(cfd);
  });
  const int afd = accept_fd(lfd);
  ASSERT_GE(afd, 0);
  std::string got;
  EXPECT_EQ(read_frame(afd, &got), FrameStatus::kOk);
  EXPECT_EQ(got, "hello");
  peer.join();
  close_fd(afd);
  close_fd(lfd);
  ::unlink(path.c_str());
}

TEST(Proto, TcpEphemeralPortRoundTrip) {
  std::string err;
  int port = -1;
  const int lfd = listen_tcp("127.0.0.1", 0, &port, &err);
  ASSERT_GE(lfd, 0) << err;
  ASSERT_GT(port, 0);
  std::thread peer([&] {
    const int cfd = connect_tcp("127.0.0.1", port, nullptr);
    ASSERT_GE(cfd, 0);
    EXPECT_TRUE(write_frame(cfd, "tcp"));
    close_fd(cfd);
  });
  const int afd = accept_fd(lfd);
  ASSERT_GE(afd, 0);
  std::string got;
  EXPECT_EQ(read_frame(afd, &got), FrameStatus::kOk);
  EXPECT_EQ(got, "tcp");
  peer.join();
  close_fd(afd);
  close_fd(lfd);
}

}  // namespace
}  // namespace hlsw::serve
