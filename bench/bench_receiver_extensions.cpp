// Receiver-extension experiments: the three subsystems the paper's case
// study explicitly leaves out — blind adaptation (CMA), symbol timing
// recovery (Farrow + Gardner), and carrier phase recovery — implemented in
// src/dsp and characterized here: CMA dispersion convergence, Gardner lock
// accuracy across injected offsets, phase-loop pull-in and CFO estimation,
// plus per-symbol throughput of each block.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "dsp/channel.h"
#include "dsp/lms.h"
#include "dsp/phase.h"
#include "dsp/prbs.h"
#include "dsp/qam.h"
#include "dsp/timing.h"

namespace {

using namespace hlsw::dsp;

// -- CMA convergence -----------------------------------------------------------

double cma_dispersion(int train, double mu, uint64_t seed) {
  QamConstellation qam(64);
  const double r2 = cma_r2(64);
  ChannelConfig ccfg;
  ccfg.taps = {{1.10, 0.0}, {1.06, 0.0}, {0.08, 0.05}, {-0.04, 0.02}};
  ccfg.snr_db = 34;
  ccfg.symbol_energy = qam.average_energy();
  MultipathChannel ch(ccfg);
  Prbs prbs(Prbs::kPrbs15, static_cast<uint32_t>(seed));
  std::vector<std::complex<double>> c(8, {0, 0});
  c[4] = {0.45, 0};
  std::vector<std::complex<double>> line(8, {0, 0});
  double cost = 0;
  int cnt = 0;
  for (int n = 0; n < train + 2000; ++n) {
    const auto pt = qam.map(prbs.next_word(6));
    const auto pair = ch.send(pt);
    for (int k = 7; k >= 2; --k) line[static_cast<size_t>(k)] =
        line[static_cast<size_t>(k - 2)];
    line[0] = pair.s0;
    line[1] = pair.s1;
    std::complex<double> y{0, 0};
    for (int k = 0; k < 8; ++k)
      y += c[static_cast<size_t>(k)] * line[static_cast<size_t>(k)];
    if (n < train) {
      adapt_taps(AdaptAlgo::kLms, c, line, cma_error(y, r2), mu);
    } else {
      const double d = std::norm(y) - r2;
      cost += d * d;
      ++cnt;
    }
  }
  return cost / cnt;
}

void print_cma() {
  std::printf("\n== Blind adaptation (CMA) — paper leaves this out of scope "
              "==\n");
  std::printf("modulus dispersion E[(|y|^2-R2)^2] after N blind symbols "
              "(64-QAM, 34 dB):\n");
  for (int n : {0, 1000, 5000, 20000, 50000})
    std::printf("  N=%6d: %.5f\n", n, cma_dispersion(n, 0.05, 0x7B));
}

// -- Timing recovery -------------------------------------------------------------

double settled_mu(double tau) {
  QamConstellation qpsk(4);
  Prbs prbs(Prbs::kPrbs15, 0x51);
  std::vector<std::complex<double>> syms;
  for (int n = 0; n < 12001; ++n) syms.push_back(qpsk.map(prbs.next_word(2)));
  FarrowInterpolator<> delayer;
  TimingLoopConfig cfg;
  cfg.kp = 0.05;
  cfg.ki = 0.001;
  TimingRecovery loop(cfg);
  std::vector<double> mus;
  for (std::size_t n = 0; n + 1 < syms.size(); ++n) {
    const std::complex<double> samples[2] = {syms[n],
                                             0.5 * (syms[n] + syms[n + 1])};
    for (const auto& x : samples) {
      delayer.push(x);
      const auto out = loop.push(delayer.at(tau));
      if (out.strobe) mus.push_back(out.mu);
    }
  }
  double cs = 0, sn = 0;
  for (std::size_t i = mus.size() - 1000; i < mus.size(); ++i) {
    cs += std::cos(2 * M_PI * mus[i]);
    sn += std::sin(2 * M_PI * mus[i]);
  }
  double mean = std::atan2(sn, cs) / (2 * M_PI);
  if (mean < 0) mean += 1;
  return mean;
}

void print_timing() {
  std::printf("\n== Symbol timing recovery (Gardner + Farrow) ==\n");
  std::printf("injected fractional delay tau -> recovered phase (expect "
              "1 - tau):\n");
  for (double tau : {0.1, 0.25, 0.35, 0.5, 0.65, 0.8})
    std::printf("  tau=%.2f: settled mu=%.3f (expected %.3f)\n", tau,
                settled_mu(tau), 1.0 - tau);
}

// -- Carrier phase ----------------------------------------------------------------

void print_phase() {
  std::printf("\n== Carrier phase recovery (decision-directed PLL) ==\n");
  QamConstellation qpsk(4);
  for (double cfo : {0.0, 0.0005, 0.002}) {
    Prbs prbs(Prbs::kPrbs15, 0x99);
    CarrierPhaseLoop loop;
    double rot = 0.3;
    int locked_at = -1;
    for (int n = 0; n < 6000; ++n) {
      const auto a = qpsk.map(prbs.next_word(2));
      const auto y = a * std::exp(std::complex<double>(0, rot));
      const auto yc = loop.correct(y);
      loop.update(yc, qpsk.slice_point(yc));
      rot += cfo;
      double err = rot - loop.theta();
      while (err > M_PI / 4) err -= M_PI / 2;
      while (err < -M_PI / 4) err += M_PI / 2;
      if (locked_at < 0 && std::abs(err) < 0.02) locked_at = n;
    }
    std::printf("  CFO %.4f rad/sym: locked after %d symbols, estimated "
                "CFO %.4f\n",
                cfo, locked_at, loop.freq());
  }
  std::printf("\n");
}

// -- Throughput ------------------------------------------------------------------

void BM_CmaUpdateSymbol(benchmark::State& state) {
  std::vector<std::complex<double>> c(8, {0.1, 0}), line(8, {0.2, -0.1});
  const double r2 = cma_r2(64);
  for (auto _ : state) {
    std::complex<double> y{0.3, 0.2};
    adapt_taps(AdaptAlgo::kLms, c, line, cma_error(y, r2), 0.01);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CmaUpdateSymbol);

void BM_TimingRecoverySample(benchmark::State& state) {
  TimingRecovery loop;
  double t = 0;
  for (auto _ : state) {
    t += 0.3;
    benchmark::DoNotOptimize(loop.push({std::sin(t), std::cos(t)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingRecoverySample);

void BM_PhaseLoopSymbol(benchmark::State& state) {
  CarrierPhaseLoop loop;
  QamConstellation qam(64);
  double t = 0;
  for (auto _ : state) {
    t += 0.7;
    const std::complex<double> y(0.4 * std::sin(t), 0.4 * std::cos(t));
    const auto yc = loop.correct(y);
    loop.update(yc, qam.slice_point(yc));
    benchmark::DoNotOptimize(loop.theta());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhaseLoopSymbol);

}  // namespace

int main(int argc, char** argv) {
  print_cma();
  print_timing();
  print_phase();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
