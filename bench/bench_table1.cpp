// Experiment T1 + S5a (DESIGN.md): regenerates the paper's Table 1 —
// "Comparison of architectures generated from C synthesis" — from the
// qam_decoder IR and the four directive sets, printing measured latency,
// data rate and normalized area next to the paper's reported values.
// Google-benchmark timings measure the synthesis flow itself (the paper's
// claim that exploration takes "a matter of minutes" — here microseconds
// per architecture).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <future>
#include <vector>

#include "bench_main.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "util/thread_pool.h"

namespace {

using hlsw::hls::run_synthesis;
using hlsw::hls::SynthesisResult;
using hlsw::hls::TechLibrary;

void print_table1(hlsw::bench::Harness& h) {
  const auto archs = hlsw::qam::table1_architectures();
  const auto tech = TechLibrary::asic90();
  const auto ir = hlsw::qam::build_qam_decoder_ir();

  // Synthesize every architecture once, concurrently, and reuse the
  // results across all three report sections below (the old harness
  // re-ran synthesis per section, per row). The harness times the pooled
  // batch and records it in BENCH_table1.json.
  hlsw::util::ThreadPool pool(hlsw::util::ThreadPool::default_thread_count());
  std::vector<SynthesisResult> results;
  h.measure("table1_synthesis_pooled", [&] {
    std::vector<std::future<SynthesisResult>> futs;
    futs.reserve(archs.size());
    for (const auto& a : archs)
      futs.push_back(pool.submit(
          [&ir, &a, &tech] { return run_synthesis(ir, a.dir, tech); }));
    std::vector<SynthesisResult> batch;
    batch.reserve(archs.size());
    for (auto& f : futs) batch.push_back(f.get());
    results = std::move(batch);
  });

  double base_area = 0;
  for (std::size_t i = 0; i < archs.size(); ++i)
    if (archs[i].name == "none") base_area = results[i].area.total;

  std::printf(
      "\n== Table 1: Comparison of architectures generated from C synthesis "
      "==\n");
  std::printf("%-14s %-52s | %8s %8s | %7s %7s | %6s %6s\n", "arch",
              "loop constraints", "lat(ns)", "paper", "Mbps", "paper", "area",
              "paper");
  hlsw::obs::Json rows = hlsw::obs::Json::array();
  for (std::size_t i = 0; i < archs.size(); ++i) {
    const auto& a = archs[i];
    const SynthesisResult& r = results[i];
    std::printf("%-14s %-52s | %8.0f %8.0f | %7.1f %7.1f | %6.2f %6.2f\n",
                a.name.c_str(), a.description.c_str(), r.latency_ns(),
                a.paper_latency_ns, r.data_rate_mbps(6), a.paper_rate_mbps,
                r.area.total / base_area, a.paper_area_norm);
    rows.push(hlsw::obs::Json::object()
                  .set("arch", a.name)
                  .set("latency_ns", r.latency_ns())
                  .set("paper_latency_ns", a.paper_latency_ns)
                  .set("rate_mbps", r.data_rate_mbps(6))
                  .set("paper_rate_mbps", a.paper_rate_mbps)
                  .set("area_norm", r.area.total / base_area)
                  .set("paper_area_norm", a.paper_area_norm));
  }
  h.note("table1", std::move(rows));

  std::printf(
      "\n-- Section 5 cycle arithmetic (paper: 69 = 3+8+16+8+16+3+15, "
      "35 = 3+16+16, 19 = 3+8+8, 15 = 3+8+4) --\n");
  for (std::size_t i = 0; i < archs.size(); ++i) {
    const SynthesisResult& r = results[i];
    std::printf("%-14s %3d cycles =", archs[i].name.c_str(),
                r.latency_cycles());
    for (const auto& rs : r.schedule.regions)
      std::printf(" %d", rs.total_cycles);
    std::printf("\n");
  }

  std::printf("\n-- Area breakdown (gates) --\n");
  for (std::size_t i = 0; i < archs.size(); ++i) {
    const SynthesisResult& r = results[i];
    std::printf(
        "%-14s total %7.0f  [fu %6.0f, reg %6.0f, mux %6.0f, fsm %5.0f, io "
        "%5.0f]\n",
        archs[i].name.c_str(), r.area.total, r.area.fu, r.area.reg, r.area.mux,
        r.area.fsm, r.area.io);
  }
  std::printf("\n");
}

void BM_SynthesizeArchitecture(benchmark::State& state) {
  const auto archs = hlsw::qam::table1_architectures();
  const auto& arch = archs[static_cast<size_t>(state.range(0))];
  const auto tech = TechLibrary::asic90();
  const auto ir = hlsw::qam::build_qam_decoder_ir();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_synthesis(ir, arch.dir, tech));
  }
  state.SetLabel(arch.name);
}
BENCHMARK(BM_SynthesizeArchitecture)->DenseRange(0, 3);

void BM_BuildDecoderIr(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(hlsw::qam::build_qam_decoder_ir());
}
BENCHMARK(BM_BuildDecoderIr);

}  // namespace

int main(int argc, char** argv) {
  hlsw::bench::Harness harness("table1", &argc, argv);
  print_table1(harness);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  harness.write();
  return 0;
}
