// Experiment F3 (Figure 3): convergence behaviour of the equalized QAM
// decoder. Prints the MSE trajectory of the sign-LMS FFE+DFE during
// training and the post-convergence SER in decision-directed mode, for the
// float reference, the Figure 4 float twin, and the bit-accurate fixed
// decoder (quantization penalty visible as an MSE floor). Benchmarks
// measure the simulation throughput of each model — the "C is preferred
// over MATLAB for speed" point of the paper's introduction.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dsp/equalizer.h"
#include "dsp/metrics.h"
#include "qam/decoder_fixed.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"

namespace {

using namespace hlsw;
using qam::LinkConfig;
using qam::LinkSample;
using qam::LinkStimulus;

qam::QamDecoderFixed<>::input_type to_input(const hls::FxValue& v) {
  using fixpt::complex_fixed;
  using fixpt::fixed;
  using fixpt::wide_int;
  return complex_fixed<10, 0>(
      fixed<10, 0>::from_raw(wide_int<10>(static_cast<long long>(v.re))),
      fixed<10, 0>::from_raw(wide_int<10>(static_cast<long long>(v.im))));
}

void print_convergence() {
  std::printf(
      "\n== Equalizer convergence (experiment F3, Figure 3 system) ==\n");
  std::printf("channel: 5-tap T/2 multipath, SNR %.0f dB, 64-QAM, sign-LMS "
              "mu=2^-8\n\n",
              LinkConfig().channel.snr_db);

  // --- Float Figure 4 twin: training then decision-directed. ---
  LinkConfig cfg;
  LinkStimulus stim(cfg);
  qam::QamDecoderFloat dec;
  dsp::MseTracker mse(0.05, 200);
  std::vector<std::complex<double>> sent;
  std::printf("%-10s %-14s\n", "symbol", "MSE(dB) train");
  for (int n = 0; n < 6000; ++n) {
    const LinkSample s = stim.next();
    sent.push_back(s.point);
    const std::complex<double>* tr =
        static_cast<int>(sent.size()) > cfg.decision_delay
            ? &sent[sent.size() - 1 - static_cast<size_t>(cfg.decision_delay)]
            : nullptr;
    dec.decode(s.s0, s.s1, tr);
    mse.update(dec.last_error());
    if (n > 0 && (n & (n - 1)) == 0)  // powers of two
      std::printf("%-10d %8.1f\n", n, mse.windowed_mse_db());
  }
  std::printf("%-10d %8.1f  (converged)\n", 6000, mse.windowed_mse_db());

  // --- Decision-directed SER: float twin vs bit-accurate fixed. ---
  auto run_dd = [&](auto&& decode_fn, const char* name) {
    LinkStimulus s2(cfg);
    const qam::QamDecoderFloat trained = qam::train_float_reference(&s2, 6000);
    dsp::ErrorCounter errs;
    dsp::MseTracker m2(0.02, 1 << 30);
    decode_fn(trained, &s2, &errs, &m2);
    std::printf("  %-22s SER %.2e (%llu / %llu symbols), residual MSE %.1f "
                "dB\n",
                name, errs.ser(),
                static_cast<unsigned long long>(errs.symbol_errors()),
                static_cast<unsigned long long>(errs.symbols()),
                m2.windowed_mse_db());
  };

  std::printf("\n-- decision-directed tracking after coefficient download "
              "(20000 symbols) --\n");
  run_dd(
      [&](const qam::QamDecoderFloat& trained, LinkStimulus* s2,
          dsp::ErrorCounter* errs, dsp::MseTracker* m2) {
        qam::QamDecoderFloat dd = trained;
        for (int n = 0; n < 20000; ++n) {
          const LinkSample s = s2->next();
          const int got = dd.decode(s.s0, s.s1);
          const int want = s2->sent_delayed(s2->config().decision_delay);
          if (want >= 0) errs->update(want, got, 6);
          m2->update(dd.last_error());
        }
      },
      "float (Figure 4 twin)");
  run_dd(
      [&](const qam::QamDecoderFloat& trained, LinkStimulus* s2,
          dsp::ErrorCounter* errs, dsp::MseTracker* m2) {
        qam::QamDecoderFixed<> dd;
        for (int k = 0; k < 8; ++k)
          dd.set_ffe_coeff(k, qam::quantize_coeff<10>(trained.ffe_coeff(k)));
        for (int k = 0; k < 16; ++k)
          dd.set_dfe_coeff(k, qam::quantize_coeff<10>(trained.dfe_coeff(k)));
        for (int n = 0; n < 20000; ++n) {
          const LinkSample s = s2->next();
          const qam::QamDecoderFixed<>::input_type x_in[2] = {
              to_input(s.q0), to_input(s.q1)};
          fixpt::wide_int<6, false> data;
          dd.decode(x_in, &data);
          const int want = s2->sent_delayed(s2->config().decision_delay);
          if (want >= 0)
            errs->update(want, static_cast<int>(data.to_uint64()), 6);
          // Error signal isn't exported by Figure 4; track slicer distance
          // via the float twin run above instead.
          m2->update({0, 0});
        }
      },
      "fixed (Figure 4, 10b)");

  // --- Textbook-ordered reference (dsp::DfeEqualizer) for comparison. ---
  {
    dsp::EqualizerConfig ecfg;
    ecfg.mapping = dsp::QamMapping::kTwosComplement;
    dsp::ChannelConfig ccfg = cfg.channel;
    dsp::DfeEqualizer eq(ecfg);
    dsp::MultipathChannel ch(ccfg);
    dsp::Prbs prbs(dsp::Prbs::kPrbs15, 0x2A5);
    dsp::MseTracker m3(0.02, 1 << 30);
    std::vector<std::complex<double>> hist;
    for (int n = 0; n < 8000; ++n) {
      const int sym = prbs.next_word(6);
      const auto pt = eq.constellation().map(sym);
      hist.push_back(pt);
      const auto pair = ch.send(pt);
      const std::complex<double>* tr =
          hist.size() > 2 ? &hist[hist.size() - 3] : nullptr;
      const auto out = eq.step(pair.s0, pair.s1, tr);
      if (n >= 6000) m3.update(out.error);
    }
    std::printf("  %-22s residual MSE %.1f dB (textbook update ordering)\n",
                "dsp::DfeEqualizer", m3.windowed_mse_db());
  }
  std::printf("\n");
}

void BM_FloatDecoderSymbol(benchmark::State& state) {
  LinkConfig cfg;
  LinkStimulus stim(cfg);
  qam::QamDecoderFloat dec;
  for (auto _ : state) {
    const LinkSample s = stim.next();
    benchmark::DoNotOptimize(dec.decode(s.s0, s.s1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FloatDecoderSymbol);

void BM_FixedDecoderSymbol(benchmark::State& state) {
  LinkConfig cfg;
  LinkStimulus stim(cfg);
  qam::QamDecoderFixed<> dec;
  for (auto _ : state) {
    const LinkSample s = stim.next();
    const qam::QamDecoderFixed<>::input_type x_in[2] = {to_input(s.q0),
                                                        to_input(s.q1)};
    fixpt::wide_int<6, false> data;
    dec.decode(x_in, &data);
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FixedDecoderSymbol);

void BM_ChannelSymbol(benchmark::State& state) {
  LinkConfig cfg;
  LinkStimulus stim(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(stim.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSymbol);

}  // namespace

int main(int argc, char** argv) {
  print_convergence();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
