// Shared harness for the custom (non-google-benchmark) sections of the
// bench binaries: warmup + repeated timing of named sections, and a
// machine-readable BENCH_<name>.json artifact so the perf trajectory is
// diffable across PRs (google-benchmark's stdout tables are not).
//
// Flags (parsed and stripped before benchmark::Initialize sees argv):
//   --json <path>   artifact destination (default BENCH_<name>.json in cwd;
//                   "none" disables the artifact)
//   --reps <n>      timed repetitions per measured section (default 3)
//   --warmup <n>    untimed warmup runs per measured section (default 1)
//   --metrics       embed the process-wide obs::MetricsRegistry snapshot
//                   (counters/gauges/histograms accumulated by the measured
//                   code, e.g. cache hit rates and hw.* profile metrics) as
//                   a "metrics" section of the artifact, so timings and
//                   counters land in one diffable document
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace hlsw::bench {

struct Timing {
  double min_ms = 0;
  double mean_ms = 0;
  double max_ms = 0;
  int reps = 0;
};

class Harness {
 public:
  // Strips the harness flags from argc/argv (so the remainder can go to
  // benchmark::Initialize) and prepares the artifact document.
  Harness(std::string name, int* argc, char** argv)
      : name_(std::move(name)), json_path_("BENCH_" + name_ + ".json") {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      const char* a = argv[i];
      const auto take_value = [&](const char* flag, std::string* dst) {
        const std::size_t n = std::strlen(flag);
        if (std::strncmp(a, flag, n) != 0) return false;
        if (a[n] == '=') {
          *dst = a + n + 1;
          return true;
        }
        if (a[n] == '\0' && i + 1 < *argc) {
          *dst = argv[++i];
          return true;
        }
        return false;
      };
      std::string value;
      if (std::strcmp(a, "--metrics") == 0) {
        embed_metrics_ = true;
        continue;
      }
      if (take_value("--json", &json_path_)) continue;
      if (take_value("--reps", &value)) {
        reps_ = std::max(1, std::atoi(value.c_str()));
        continue;
      }
      if (take_value("--warmup", &value)) {
        warmup_ = std::max(0, std::atoi(value.c_str()));
        continue;
      }
      argv[out++] = argv[i];
    }
    *argc = out;
  }

  int reps() const { return reps_; }
  int warmup() const { return warmup_; }

  // Embed a MetricsRegistry snapshot in the artifact (also enabled by the
  // --metrics flag). Callers that know their run populates interesting
  // counters can turn it on unconditionally.
  void set_embed_metrics(bool on) { embed_metrics_ = on; }
  bool embed_metrics() const { return embed_metrics_; }

  // Times fn over warmup + reps runs and records min/mean/max milliseconds
  // under `label`. Returns the timing (min is the headline number).
  template <typename Fn>
  Timing measure(const std::string& label, Fn&& fn) {
    using clock = std::chrono::steady_clock;
    for (int i = 0; i < warmup_; ++i) fn();
    Timing t;
    t.reps = reps_;
    for (int i = 0; i < reps_; ++i) {
      const auto t0 = clock::now();
      fn();
      const double ms =
          std::chrono::duration<double, std::milli>(clock::now() - t0).count();
      t.mean_ms += ms;
      if (i == 0 || ms < t.min_ms) t.min_ms = ms;
      if (i == 0 || ms > t.max_ms) t.max_ms = ms;
    }
    t.mean_ms /= reps_;
    measurements_.set(label, obs::Json::object()
                                 .set("min_ms", t.min_ms)
                                 .set("mean_ms", t.mean_ms)
                                 .set("max_ms", t.max_ms)
                                 .set("reps", t.reps));
    return t;
  }

  // Records a non-timing scalar or structured value under `label`.
  void note(const std::string& label, obs::Json value) {
    notes_.set(label, std::move(value));
  }

  // Writes the artifact (call at the end of main; also invoked by the
  // destructor so early returns still produce a file).
  void write() {
    if (written_ || json_path_ == "none" || json_path_.empty()) return;
    written_ = true;
    obs::Json doc =
        obs::Json::object()
            .set("tool", "hlsw.bench")
            .set("schema_version", 1)
            .set("bench", name_)
            .set("reps", reps_)
            .set("warmup", warmup_)
            .set("timestamp", static_cast<long long>(std::time(nullptr)))
            .set("measurements", measurements_)
            .set("notes", notes_);
    if (embed_metrics_)
      doc.set("metrics", obs::MetricsRegistry::instance().to_json());
    if (obs::StructuredReport::write_json_file(json_path_, doc))
      std::printf("bench artifact written: %s\n", json_path_.c_str());
    else
      std::fprintf(stderr, "bench artifact write FAILED: %s\n",
                   json_path_.c_str());
  }

  ~Harness() { write(); }

 private:
  std::string name_;
  std::string json_path_;
  int reps_ = 3;
  int warmup_ = 1;
  bool embed_metrics_ = false;
  bool written_ = false;
  obs::Json measurements_ = obs::Json::object();
  obs::Json notes_ = obs::Json::object();
};

}  // namespace hlsw::bench
