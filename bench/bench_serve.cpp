// Daemon service latency and throughput: protocol floor (ping), cold vs
// warm-cache synth job latency, and pipelined sweep throughput at 1 / 8 /
// 64 concurrent clients against one in-process server — the shared-cache
// and fair-scheduling story of hlsw::serve in numbers. Artifact:
// BENCH_serve.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_main.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using hlsw::obs::Json;

Json synth_params(int unroll) {
  Json dir = Json::object().set("auto_merge", true);
  if (unroll > 1) {
    Json loops = Json::object();
    for (const char* label : {"ffe", "dfe"})
      loops.set(label, Json::object().set("unroll", unroll));
    dir.set("loops", std::move(loops));
  }
  return Json::object().set("design", "qam_decoder")
      .set("directives", std::move(dir));
}

void run_harness_sections(hlsw::bench::Harness* h) {
  const std::string socket =
      "/tmp/hlsw_bench_serve_" + std::to_string(::getpid()) + ".sock";
  hlsw::serve::ServerOptions opts;
  opts.unix_path = socket;
  opts.workers = 4;
  opts.sched.max_queue_depth = 1024;
  hlsw::serve::Server server(opts);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "bench_serve: server failed to start: %s\n",
                 err.c_str());
    return;
  }
  h->note("config", Json::object()
                        .set("workers", 4)
                        .set("design", "qam_decoder")
                        .set("transport", "unix"));

  hlsw::serve::Client client;
  if (!client.connect_unix(socket, &err)) {
    std::fprintf(stderr, "bench_serve: connect failed: %s\n", err.c_str());
    return;
  }
  Json resp;

  // The protocol floor: frame + parse + dispatch + frame back, no job.
  h->measure("ping", [&] { client.call("ping", Json(), &resp); });

  // Cold job latency: every rep flushes the shared cache first, so the
  // synth pays a full schedule. The (cheap) flush round-trip is included;
  // the ping section above bounds its contribution.
  h->measure("synth_cold", [&] {
    client.call("flush_caches", Json(), &resp);
    client.call("synth", synth_params(1), &resp);
  });

  // Warm job latency: the same configuration served from the process-wide
  // SynthesisCache — the daemon's whole reason to exist.
  h->measure("synth_warm",
             [&] { client.call("synth", synth_params(1), &resp); });

  // Pipelined sweep throughput: a fixed total of warm-cache synth jobs
  // split across 1 / 8 / 64 concurrent client connections, each client
  // submitting its whole batch before collecting responses.
  constexpr int kTotalJobs = 192;
  for (const int clients : {1, 8, 64}) {
    const int per_client = kTotalJobs / clients;
    const std::string label =
        "sweep_" + std::to_string(clients) + "_clients";
    const hlsw::bench::Timing t = h->measure(label, [&] {
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          hlsw::serve::Client cl;
          if (!cl.connect_unix(socket)) return;
          const std::string tenant = "client" + std::to_string(c);
          std::vector<long long> ids;
          for (int k = 0; k < per_client; ++k)
            ids.push_back(
                cl.submit("synth", synth_params(1 << (k % 3)), tenant));
          Json r;
          for (const long long id : ids) cl.wait(id, &r);
        });
      }
      for (std::thread& th : threads) th.join();
    });
    h->note(label + "_throughput",
            Json::object()
                .set("jobs", kTotalJobs)
                .set("jobs_per_sec", kTotalJobs / (t.min_ms / 1000.0)));
  }

  // Close with the server's own ledger: job counts, queue depths, cache
  // hit rate, p50/p95/p99 job latency — the metrics op's snapshot lands in
  // the artifact next to the wall-clock sections.
  if (client.call("metrics", Json(), &resp) && resp.find("result"))
    h->note("server_metrics", *resp.find("result")->find("server"));
  server.stop();
}

}  // namespace

int main(int argc, char** argv) {
  hlsw::bench::Harness harness("serve", &argc, argv);
  run_harness_sections(&harness);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  harness.write();
  return 0;
}
