// Experiment F4 (verification performance): the paper notes RTL simulation
// "is too slow to perform functional verification of the system", which is
// why FPGA prototyping exists in the flow. This harness quantifies the gap
// in our stack: symbols/second through (a) the native fixed-point C model,
// (b) the untimed IR interpreter, and (c) the cycle-accurate RTL simulator
// for each Table 1 architecture — and verifies bit-exactness while doing
// so.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "hls/interp.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_fixed.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"

namespace {

using namespace hlsw;
using hls::Interpreter;
using hls::PortIo;
using hls::run_synthesis;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkSample;
using qam::LinkStimulus;

void print_speed_ladder() {
  std::printf("\n== Model speed ladder (experiment F4): why the paper "
              "verifies on FPGA, not in RTL simulation ==\n");
  const int symbols = 3000;
  auto rate = [&](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return symbols / dt;
  };

  // Native C model.
  const double r_native = rate([&] {
    LinkStimulus stim((LinkConfig()));
    qam::QamDecoderFixed<> dec;
    for (int n = 0; n < symbols; ++n) {
      const LinkSample s = stim.next();
      const qam::QamDecoderFixed<>::input_type x_in[2] = {
          {fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q0.re))),
           fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q0.im)))},
          {fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q1.re))),
           fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q1.im)))}};
      fixpt::wide_int<6, false> data;
      dec.decode(x_in, &data);
      benchmark::DoNotOptimize(data);
    }
  });
  std::printf("  %-34s %12.0f symbols/s\n", "native C model (fixpt)",
              r_native);

  // IR interpreter.
  const auto ir = qam::build_qam_decoder_ir();
  const double r_interp = rate([&] {
    LinkStimulus stim((LinkConfig()));
    Interpreter in(ir);
    for (int n = 0; n < symbols; ++n) {
      const LinkSample s = stim.next();
      PortIo io;
      io.arrays["x_in"] = {s.q0, s.q1};
      benchmark::DoNotOptimize(in.run(io));
    }
  });
  std::printf("  %-34s %12.0f symbols/s  (%.1fx slower than C)\n",
              "untimed IR interpreter", r_interp, r_native / r_interp);

  // RTL simulation per architecture.
  for (const auto& a : qam::table1_architectures()) {
    const auto r = run_synthesis(ir, a.dir, TechLibrary::asic90());
    const double r_rtl = rate([&] {
      LinkStimulus stim((LinkConfig()));
      rtl::Simulator sim(r.transformed, r.schedule);
      for (int n = 0; n < symbols; ++n) {
        const LinkSample s = stim.next();
        PortIo io;
        io.arrays["x_in"] = {s.q0, s.q1};
        benchmark::DoNotOptimize(sim.run(io));
      }
    });
    std::printf("  %-34s %12.0f symbols/s  (%.1fx slower than C)\n",
                ("RTL simulation, " + a.name).c_str(), r_rtl,
                r_native / r_rtl);
  }
  std::printf("\n(an FPGA prototype at 5 MBaud would run 5e6 symbols/s — "
              "orders of magnitude above any software model here, which is "
              "the paper's point)\n\n");
}

void BM_RtlSimSymbol(benchmark::State& state) {
  const auto arch =
      qam::table1_architectures()[static_cast<size_t>(state.range(0))];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  rtl::Simulator sim(r.transformed, r.schedule);
  LinkStimulus stim((LinkConfig()));
  for (auto _ : state) {
    const LinkSample s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    benchmark::DoNotOptimize(sim.run(io));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(arch.name);
}
BENCHMARK(BM_RtlSimSymbol)->DenseRange(0, 3);

void BM_InterpreterSymbol(benchmark::State& state) {
  Interpreter in(qam::build_qam_decoder_ir());
  LinkStimulus stim((LinkConfig()));
  for (auto _ : state) {
    const LinkSample s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    benchmark::DoNotOptimize(in.run(io));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterSymbol);

void BM_VerilogEmit(benchmark::State& state) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  for (auto _ : state)
    benchmark::DoNotOptimize(rtl::emit_verilog(r.transformed, r.schedule));
}
BENCHMARK(BM_VerilogEmit);

}  // namespace

int main(int argc, char** argv) {
  print_speed_ladder();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
