// Experiment F4 (verification performance): the paper notes RTL simulation
// "is too slow to perform functional verification of the system", which is
// why FPGA prototyping exists in the flow. This harness quantifies the gap
// in our stack: symbols/second through (a) the native fixed-point C model,
// (b) the untimed IR interpreter, and (c) the cycle-accurate RTL simulator
// for each Table 1 architecture — and verifies bit-exactness while doing
// so.
//
// The harness-measured sections additionally track the compiled-plan
// simulator against its legacy interpretive path (SimOptions::compiled =
// false) and the batched symbol-stream APIs, producing BENCH_rtl_sim.json
// (--reps/--warmup/--json; see bench_main.h). Regenerate the committed
// baseline from the repo root with:
//   ./build/bench/bench_rtl_sim --reps 5 --warmup 1
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "bench_main.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_fixed.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"

namespace {

using namespace hlsw;
using hls::Interpreter;
using hls::PortIo;
using hls::PortStream;
using hls::run_synthesis;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkSample;
using qam::LinkStimulus;

void print_speed_ladder() {
  std::printf("\n== Model speed ladder (experiment F4): why the paper "
              "verifies on FPGA, not in RTL simulation ==\n");
  const int symbols = 3000;
  auto rate = [&](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return symbols / dt;
  };

  // Native C model.
  const double r_native = rate([&] {
    LinkStimulus stim((LinkConfig()));
    qam::QamDecoderFixed<> dec;
    for (int n = 0; n < symbols; ++n) {
      const LinkSample s = stim.next();
      const qam::QamDecoderFixed<>::input_type x_in[2] = {
          {fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q0.re))),
           fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q0.im)))},
          {fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q1.re))),
           fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q1.im)))}};
      fixpt::wide_int<6, false> data;
      dec.decode(x_in, &data);
      benchmark::DoNotOptimize(data);
    }
  });
  std::printf("  %-34s %12.0f symbols/s\n", "native C model (fixpt)",
              r_native);

  // IR interpreter.
  const auto ir = qam::build_qam_decoder_ir();
  const double r_interp = rate([&] {
    LinkStimulus stim((LinkConfig()));
    Interpreter in(ir);
    for (int n = 0; n < symbols; ++n) {
      const LinkSample s = stim.next();
      PortIo io;
      io.arrays["x_in"] = {s.q0, s.q1};
      benchmark::DoNotOptimize(in.run(io));
    }
  });
  std::printf("  %-34s %12.0f symbols/s  (%.1fx slower than C)\n",
              "untimed IR interpreter", r_interp, r_native / r_interp);

  // RTL simulation per architecture (compiled plan — the default).
  for (const auto& a : qam::table1_architectures()) {
    const auto r = run_synthesis(ir, a.dir, TechLibrary::asic90());
    const double r_rtl = rate([&] {
      LinkStimulus stim((LinkConfig()));
      rtl::Simulator sim(r.transformed, r.schedule);
      for (int n = 0; n < symbols; ++n) {
        const LinkSample s = stim.next();
        PortIo io;
        io.arrays["x_in"] = {s.q0, s.q1};
        benchmark::DoNotOptimize(sim.run(io));
      }
    });
    std::printf("  %-34s %12.0f symbols/s  (%.1fx slower than C)\n",
                ("RTL simulation, " + a.name).c_str(), r_rtl,
                r_native / r_rtl);
  }
  std::printf("\n(an FPGA prototype at 5 MBaud would run 5e6 symbols/s — "
              "orders of magnitude above any software model here, which is "
              "the paper's point)\n\n");
}

// Interpretive vs compiled vs batched-stream series on the pipelined
// (ii=1) equalizer — the configuration where the interpretive path's
// O(trip x total_cycles x ops) rescan hurts most — plus a 10k-symbol link
// sweep comparing per-symbol run() against batched run_stream().
void run_harness_sections(bench::Harness* h) {
  const auto archs = qam::exploration_architectures();
  const qam::Architecture* pipe = nullptr;
  for (const auto& a : archs)
    if (a.name == "merge+pipe") pipe = &a;
  if (pipe == nullptr) throw std::logic_error("merge+pipe arch not found");

  const auto ir = qam::build_qam_decoder_ir();
  const auto r = run_synthesis(ir, pipe->dir, TechLibrary::asic90());

  // Fixed stimulus generated once, outside every timed section, so each
  // series times simulation only (identical inputs in all three formats).
  const int kSymbols = 2000;
  LinkStimulus stim_a((LinkConfig()));
  const std::vector<PortIo> batch = qam::link_input_batch(&stim_a, kSymbols);
  LinkStimulus stim_b((LinkConfig()));
  const PortStream flat = qam::link_input_stream(&stim_b, kSymbols);

  const auto t_interp = h->measure("interpretive_run", [&] {
    rtl::Simulator sim(r.transformed, r.schedule, {.compiled = false});
    for (const auto& in : batch) benchmark::DoNotOptimize(sim.run(in));
  });
  const auto t_comp = h->measure("compiled_run", [&] {
    rtl::Simulator sim(r.transformed, r.schedule);
    for (const auto& in : batch) benchmark::DoNotOptimize(sim.run(in));
  });
  const auto t_stream = h->measure("compiled_stream", [&] {
    rtl::Simulator sim(r.transformed, r.schedule);
    benchmark::DoNotOptimize(sim.run_stream(batch));
  });
  const auto t_flat = h->measure("compiled_stream_flat", [&] {
    rtl::Simulator sim(r.transformed, r.schedule);
    benchmark::DoNotOptimize(sim.run_stream(flat));
  });

  // Bit-identity audit of what was just timed: outputs, cycle counts and
  // SimStats must agree across all four series.
  bool identical = true;
  {
    rtl::Simulator legacy(r.transformed, r.schedule, {.compiled = false});
    rtl::Simulator comp(r.transformed, r.schedule);
    rtl::Simulator strm(r.transformed, r.schedule);
    std::vector<PortIo> comp_out;
    for (const auto& in : batch) comp_out.push_back(comp.run(in));
    std::vector<PortIo> legacy_out;
    for (const auto& in : batch) legacy_out.push_back(legacy.run(in));
    const PortStream flat_out = strm.run_stream(flat);
    for (int n = 0; n < kSymbols && identical; ++n) {
      identical = comp_out[static_cast<size_t>(n)].arrays ==
                      legacy_out[static_cast<size_t>(n)].arrays &&
                  comp_out[static_cast<size_t>(n)].vars ==
                      legacy_out[static_cast<size_t>(n)].vars;
      const PortIo row = flat_out.symbol(n);
      identical = identical &&
                  row.arrays == comp_out[static_cast<size_t>(n)].arrays &&
                  row.vars == comp_out[static_cast<size_t>(n)].vars;
    }
    identical = identical && legacy.stats() == comp.stats() &&
                legacy.stats() == strm.stats() &&
                legacy.cycles() == comp.cycles();
  }

  h->note("config", obs::Json::object()
                        .set("architecture", pipe->name)
                        .set("symbols", kSymbols)
                        .set("paths_bit_identical", identical));
  h->note("speedup_compiled_vs_interpretive",
          t_interp.min_ms / t_comp.min_ms);
  h->note("speedup_stream_batch_vs_interpretive",
          t_interp.min_ms / t_stream.min_ms);
  h->note("speedup_stream_vs_interpretive", t_interp.min_ms / t_flat.min_ms);

  // 10k-symbol link sweep: per-symbol run() vs the flat batched stream.
  const int kSweep = 10000;
  LinkStimulus stim_c((LinkConfig()));
  const std::vector<PortIo> sweep_batch =
      qam::link_input_batch(&stim_c, kSweep);
  LinkStimulus stim_d((LinkConfig()));
  const PortStream sweep_flat = qam::link_input_stream(&stim_d, kSweep);

  const auto t_sweep_run = h->measure("link10k_per_symbol_run", [&] {
    rtl::Simulator sim(r.transformed, r.schedule);
    for (const auto& in : sweep_batch) benchmark::DoNotOptimize(sim.run(in));
  });
  const auto t_sweep_stream = h->measure("link10k_run_stream", [&] {
    rtl::Simulator sim(r.transformed, r.schedule);
    benchmark::DoNotOptimize(sim.run_stream(sweep_flat));
  });
  h->note("speedup_stream_vs_per_symbol_10k",
          t_sweep_run.min_ms / t_sweep_stream.min_ms);
}

void BM_RtlSimSymbol(benchmark::State& state) {
  const auto arch =
      qam::table1_architectures()[static_cast<size_t>(state.range(0))];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  rtl::Simulator sim(r.transformed, r.schedule);
  LinkStimulus stim((LinkConfig()));
  for (auto _ : state) {
    const LinkSample s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    benchmark::DoNotOptimize(sim.run(io));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(arch.name);
}
BENCHMARK(BM_RtlSimSymbol)->DenseRange(0, 3);

void BM_InterpreterSymbol(benchmark::State& state) {
  Interpreter in(qam::build_qam_decoder_ir());
  LinkStimulus stim((LinkConfig()));
  for (auto _ : state) {
    const LinkSample s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    benchmark::DoNotOptimize(in.run(io));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterSymbol);

void BM_VerilogEmit(benchmark::State& state) {
  const auto arch = qam::table1_architectures()[0];
  const auto r = run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                               TechLibrary::asic90());
  for (auto _ : state)
    benchmark::DoNotOptimize(rtl::emit_verilog(r.transformed, r.schedule));
}
BENCHMARK(BM_VerilogEmit);

}  // namespace

int main(int argc, char** argv) {
  hlsw::bench::Harness harness("rtl_sim", &argc, argv);
  run_harness_sections(&harness);
  print_speed_ladder();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  harness.write();
  return 0;
}
