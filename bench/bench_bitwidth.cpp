// Experiment F2 (paper section 3.2, Figure 2): automatic bit reduction.
// Rebuilds Figure 2's templated accumulator loop for a sweep of N, runs the
// engine's bitwidth-reduction pass, and prints inferred vs declared widths
// (counter width clog2(N)+..., accumulator width 10+clog2(N)); also shows
// the pass at work on the full QAM decoder IR.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "fixpt/bitwidth.h"
#include "hls/bitwidth_pass.h"
#include "hls/builder.h"
#include "qam/decoder_ir.h"

namespace {

using namespace hlsw;
using hls::FunctionBuilder;
using hls::fx;
using hls::PortDir;

// Figure 2: template<int N> int f(int* x) { int a=0; for i<N: a+=x[i]; }
hls::Function make_figure2(int n, int elem_bits) {
  FunctionBuilder fb("figure2_N" + std::to_string(n));
  const int x =
      fb.add_array("x", n, fx(elem_bits, elem_bits), false, PortDir::kIn);
  const int a = fb.add_var("a", fx(32, 32), false, PortDir::kOut);  // int
  {
    auto b0 = fb.block("init");
    b0.var_write(a, b0.cnst(fx(32, 32), 0.0));
  }
  {
    auto l = fb.loop("sum", n);
    l.var_write(a, l.add(l.var_read(a), l.array_read(x, {1, 0})));
  }
  return fb.build();
}

void print_figure2() {
  std::printf("\n== Automatic bit reduction (experiment F2, Figure 2) ==\n");
  std::printf("Figure 2 loop: int a = 0; for (i = 0; i < N; i++) a += x[i]; "
              "with 10-bit x[i]\n");
  std::printf("%-6s | %-14s %-14s | %-13s\n", "N", "adder (declared)",
              "adder (inferred)", "counter bits");
  for (int n : {2, 4, 8, 16, 64, 256, 1024}) {
    hls::Function f = make_figure2(n, 10);
    const auto res = hls::reduce_bitwidths(&f);
    int add_w = 0;
    for (const auto& op : f.regions[1].loop.body.ops)
      if (op.kind == hls::OpKind::kAdd) add_w = op.type.w;
    std::printf("%-6d | %-16d %-16d | %d (holds N itself)\n", n, 33, add_w,
                fixpt::loop_counter_width(static_cast<unsigned>(n)));
    benchmark::DoNotOptimize(res);
  }
  std::printf("(expected inferred adder width: 10 + clog2(N) + 1 sign "
              "headroom bound by exact interval analysis)\n");

  // The pass on the real decoder.
  {
    hls::Function f = qam::build_qam_decoder_ir();
    const auto res = hls::reduce_bitwidths(&f);
    std::printf("\n-- qam_decoder IR --\n");
    std::printf("  %zu op/var widths narrowed, %lld bits saved total\n",
                res.reductions.size(), res.bits_saved);
    int shown = 0;
    for (const auto& red : res.reductions) {
      if (shown++ >= 6) break;
      std::printf("    %-48s %2d -> %2d bits\n", red.where.c_str(),
                  red.old_width, red.new_width);
    }
    if (res.reductions.size() > 6)
      std::printf("    ... (%zu more)\n", res.reductions.size() - 6);
  }
  std::printf("\n");
}

void BM_BitwidthPassFigure2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    hls::Function f = make_figure2(n, 10);
    benchmark::DoNotOptimize(hls::reduce_bitwidths(&f));
  }
  state.SetLabel("N=" + std::to_string(n));
}
BENCHMARK(BM_BitwidthPassFigure2)->Arg(8)->Arg(64)->Arg(1024);

void BM_BitwidthPassDecoder(benchmark::State& state) {
  for (auto _ : state) {
    hls::Function f = hlsw::qam::build_qam_decoder_ir();
    benchmark::DoNotOptimize(hls::reduce_bitwidths(&f));
  }
}
BENCHMARK(BM_BitwidthPassDecoder);

}  // namespace

int main(int argc, char** argv) {
  print_figure2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
