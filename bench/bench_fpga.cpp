// Experiment S5c (paper sections 1 and 5): "We have also successfully
// targeted FPGA technologies. It is often possible to prototype the design
// at-speed with an FPGA." The same untouched source (IR) retargets by
// swapping the technology library: this harness finds the fastest feasible
// clock per architecture on the LUT4 fabric, reports the resulting data
// rates, and checks whether the FPGA prototype reaches the 5 MBaud ASIC
// speed ("at-speed" emulation) or needs the paper's fallback of a
// re-generated slower design.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"

namespace {

using namespace hlsw;
using hls::Directives;
using hls::run_synthesis;
using hls::TechLibrary;

// Smallest feasible clock (0.5 ns steps): every op must fit a cycle.
double min_clock(const hls::Function& ir, Directives dir,
                 const TechLibrary& tech) {
  for (double clk = 4.0; clk <= 40.0; clk += 0.5) {
    dir.clock_period_ns = clk;
    const auto r = run_synthesis(ir, dir, tech);
    bool feasible = true;
    for (const auto& w : r.warnings)
      if (w.find("unachievable") != std::string::npos) feasible = false;
    if (feasible) return clk;
  }
  return -1;
}

void print_fpga() {
  const auto ir = qam::build_qam_decoder_ir();
  const auto asic = TechLibrary::asic90();
  const auto fpga = TechLibrary::fpga_lut4();

  std::printf("\n== FPGA retargeting (experiment S5c): same source, "
              "different technology ==\n");
  std::printf("%-14s | %-21s | %-29s | %s\n", "arch",
              "ASIC @10ns", "FPGA @ fastest feasible", "at-speed?");
  for (const auto& a : qam::table1_architectures()) {
    const auto ra = run_synthesis(ir, a.dir, asic);
    Directives fd = a.dir;
    const double fclk = min_clock(ir, fd, fpga);
    fd.clock_period_ns = fclk;
    const auto rf = run_synthesis(ir, fd, fpga);
    const double asic_rate = ra.data_rate_mbps(6);
    const double fpga_rate = rf.data_rate_mbps(6);
    std::printf("%-14s | %3d cyc %7.1f Mbps | %3d cyc @%4.1f ns %7.1f Mbps "
                "| %s\n",
                a.name.c_str(), ra.latency_cycles(), asic_rate,
                rf.latency_cycles(), fclk, fpga_rate,
                fpga_rate >= asic_rate ? "yes" : "no (regenerate slower)");
  }

  std::printf("\n-- the paper's fallback: if the FPGA cannot run the ASIC "
              "architecture at speed, rapidly generate a more parallel FPGA "
              "design that does --\n");
  {
    // ASIC target: the paper's 5 MBaud / 30 Mbps design point (merge+U2,
    // 19 cycles @ 10 ns = 31.6 Mbps).
    const auto asic_r =
        run_synthesis(ir, qam::table1_architectures()[2].dir, asic);
    const double target = asic_r.data_rate_mbps(6);
    std::printf("  ASIC target (merge+U2): %.1f Mbps = %.2f MBaud\n", target,
                target / 6);
    // Walk the exploration set, most parallel first, until one makes speed.
    const auto all = qam::exploration_architectures();
    bool achieved = false;
    for (auto it = all.rbegin(); it != all.rend() && !achieved; ++it) {
      Directives fd = it->dir;
      const double fclk = min_clock(ir, fd, fpga);
      if (fclk < 0) continue;
      fd.clock_period_ns = fclk;
      const auto rf = run_synthesis(ir, fd, fpga);
      if (rf.data_rate_mbps(6) >= target) {
        std::printf("  FPGA '%s' @%.1f ns reaches %.1f Mbps -> at-speed "
                    "emulation achieved with a more parallel architecture\n",
                    it->name.c_str(), fclk, rf.data_rate_mbps(6));
        achieved = true;
      }
    }
    if (!achieved)
      std::printf("  no explored FPGA architecture reaches the target\n");
  }
  std::printf("\n");
}

void BM_FpgaRetarget(benchmark::State& state) {
  const auto ir = qam::build_qam_decoder_ir();
  const auto fpga = TechLibrary::fpga_lut4();
  Directives d = qam::table1_architectures()[0].dir;
  d.clock_period_ns = 20.0;
  for (auto _ : state) benchmark::DoNotOptimize(run_synthesis(ir, d, fpga));
}
BENCHMARK(BM_FpgaRetarget);

}  // namespace

int main(int argc, char** argv) {
  print_fpga();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
