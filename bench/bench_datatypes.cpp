// Experiment D1 (paper section 3.1): "Catapult C's mc_int: 3x to 100x
// faster simulation than SystemC integer types." Races the static-width
// wide_int (the mc_int analogue) against two sc_bigint stand-ins on
// identical add/mul/MAC mixes: dynamic_int (word-based, heap limbs,
// run-time width — structurally what sc_bigint was; this comparison lands
// inside the paper's 3x-100x band) and the deliberately bit-serial
// bitref_int (a slowness upper envelope). Also measures fixed-point and
// complex-MAC throughput, the C-model simulation speed the paper's flow
// depends on.
#include <benchmark/benchmark.h>

#include <chrono>
#include <complex>

#include <cstdio>
#include <random>
#include <vector>

#include "fixpt/bitref_int.h"
#include "fixpt/dynamic_int.h"
#include "fixpt/complex_fixed.h"
#include "fixpt/wide_int.h"

namespace {

using namespace hlsw::fixpt;

std::vector<long long> stimulus(int bits, std::size_t n) {
  std::mt19937_64 rng(12345);
  std::vector<long long> v(n);
  for (auto& x : v) x = static_cast<long long>(rng()) >> (64 - bits);
  return v;
}

template <int W>
void BM_WideIntMac(benchmark::State& state) {
  const auto xs = stimulus(std::min(W, 32), 256);
  const auto cs = stimulus(std::min(W, 32), 256);
  for (auto _ : state) {
    wide_int<2 * W + 8> acc(0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const wide_int<W> a(xs[i]), b(cs[i]);
      acc += a * b;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_WideIntMac<10>);
BENCHMARK(BM_WideIntMac<17>);
BENCHMARK(BM_WideIntMac<32>);
BENCHMARK(BM_WideIntMac<64>);
BENCHMARK(BM_WideIntMac<128>);

void BM_BitrefMac(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const auto xs = stimulus(std::min(w, 32), 256);
  const auto cs = stimulus(std::min(w, 32), 256);
  for (auto _ : state) {
    bitref_int acc(2 * w + 8, 0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const bitref_int a(w, xs[i]), b(w, cs[i]);
      acc = bitref_int(2 * w + 8, 0).assign(add(acc, mul(a, b)));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BitrefMac)->Arg(10)->Arg(17)->Arg(32)->Arg(64)->Arg(128);

void BM_DynamicIntMac(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const auto xs = stimulus(std::min(w, 32), 256);
  const auto cs = stimulus(std::min(w, 32), 256);
  for (auto _ : state) {
    dynamic_int acc(2 * w + 8, 0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      acc = dynamic_int(2 * w + 8, 0)
                .assign(add(acc, mul(dynamic_int(w, xs[i]),
                                     dynamic_int(w, cs[i]))));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DynamicIntMac)->Arg(10)->Arg(17)->Arg(32)->Arg(64)->Arg(128);

void BM_FixedSlicerChain(benchmark::State& state) {
  // The Figure 4 slicer data path on the static datatypes.
  const auto xs = stimulus(10, 256);
  for (auto _ : state) {
    long long sum = 0;
    for (auto raw : xs) {
      const fixed<11, 1> y = fixed<11, 1>::from_raw(wide_int<11>(raw));
      fixed<4, 0> offset(0LL);
      offset[0] = 1;
      const fixed<3, 0> r(
          fixed<10, 0, Quant::kRndZero, Ovf::kSat>(y - offset));
      sum += r.raw().to_int64();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FixedSlicerChain);

void BM_ComplexMacFixed(benchmark::State& state) {
  const auto xr = stimulus(10, 256), xi = stimulus(10, 256);
  const auto cr = stimulus(10, 256), ci = stimulus(10, 256);
  using C = complex_fixed<10, 0>;
  std::vector<C> x, c;
  for (std::size_t i = 0; i < xr.size(); ++i) {
    x.emplace_back(fixed<10, 0>::from_raw(wide_int<10>(xr[i])),
                   fixed<10, 0>::from_raw(wide_int<10>(xi[i])));
    c.emplace_back(fixed<10, 0>::from_raw(wide_int<10>(cr[i])),
                   fixed<10, 0>::from_raw(wide_int<10>(ci[i])));
  }
  for (auto _ : state) {
    complex_fixed<28, 8> acc(0);
    for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * c[i];
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ComplexMacFixed);

void BM_ComplexMacDouble(benchmark::State& state) {
  // Floating-point reference speed (what the paper says designers simulate
  // with before numeric refinement).
  const auto xr = stimulus(10, 256), xi = stimulus(10, 256);
  std::vector<std::complex<double>> x, c;
  for (std::size_t i = 0; i < xr.size(); ++i) {
    x.emplace_back(xr[i] / 1024.0, xi[i] / 1024.0);
    c.emplace_back(xi[i] / 1024.0, xr[i] / 1024.0);
  }
  for (auto _ : state) {
    std::complex<double> acc{0, 0};
    for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * c[i];
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ComplexMacDouble);

// Times one closure, repeating it for ~50 ms.
template <typename Fn>
double time_it(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(50)) {
    fn();
    ++reps;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() /
         reps;
}

template <int W>
double time_wide_mac(const std::vector<long long>& xs,
                     const std::vector<long long>& cs) {
  return time_it([&] {
    wide_int<2 * W + 8> acc(0);
    for (std::size_t i = 0; i < xs.size(); ++i)
      acc += wide_int<W>(xs[i]) * wide_int<W>(cs[i]);
    benchmark::DoNotOptimize(acc);
  });
}

// Prints the wide_int vs bitref_int speedup summary (the 3x-100x claim).
void print_speedup_summary() {
  std::printf(
      "\n== Datatype simulation speed (experiment D1; paper claims fast "
      "bit-accurate types run 3x-100x faster than sc_bigint-style types) "
      "==\n");
  for (int w : {10, 17, 32, 64, 128}) {
    const auto xs = stimulus(std::min(w, 32), 256);
    const auto cs = stimulus(std::min(w, 32), 256);
    const double t_slow = time_it([&] {
      bitref_int acc(2 * w + 8, 0);
      for (std::size_t i = 0; i < xs.size(); ++i)
        acc = bitref_int(2 * w + 8, 0)
                  .assign(add(acc, mul(bitref_int(w, xs[i]),
                                       bitref_int(w, cs[i]))));
      benchmark::DoNotOptimize(acc);
    });
    const double t_dyn = time_it([&] {
      dynamic_int acc(2 * w + 8, 0);
      for (std::size_t i = 0; i < xs.size(); ++i)
        acc = dynamic_int(2 * w + 8, 0)
                  .assign(add(acc, mul(dynamic_int(w, xs[i]),
                                       dynamic_int(w, cs[i]))));
      benchmark::DoNotOptimize(acc);
    });
    double t_fast = 0;
    switch (w) {
      case 10: t_fast = time_wide_mac<10>(xs, cs); break;
      case 17: t_fast = time_wide_mac<17>(xs, cs); break;
      case 32: t_fast = time_wide_mac<32>(xs, cs); break;
      case 64: t_fast = time_wide_mac<64>(xs, cs); break;
      case 128: t_fast = time_wide_mac<128>(xs, cs); break;
    }
    std::printf(
        "  width %3d: wide_int %7.2f ns | sc_bigint-like (word, heap) "
        "%8.2f ns -> %5.1fx | bit-serial %9.2f ns -> %6.1fx\n",
        w, t_fast * 1e9 / 256, t_dyn * 1e9 / 256, t_dyn / t_fast,
        t_slow * 1e9 / 256, t_slow / t_fast);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_speedup_summary();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
