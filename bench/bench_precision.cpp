// Experiment D2 (paper section 4.1): precision exploration. "The algorithm
// is written so that the various bitwidths can easily be set by changing
// the definition of a few constants" — this harness sweeps the coefficient
// width (the paper's FFE_C_W/DFE_C_W, both 10 in the paper) and reports the
// decision-directed SER after coefficient download, exposing the
// quantization-noise floor the paper's section 4.1 discusses.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dsp/metrics.h"
#include "qam/decoder_fixed.h"
#include "qam/link.h"

namespace {

using namespace hlsw;
using qam::LinkConfig;
using qam::LinkSample;
using qam::LinkStimulus;

template <int CW>
void run_width(const qam::QamDecoderFloat& trained, const LinkConfig& cfg,
               int symbols) {
  qam::QamDecoderFixed<10, 10, 10, CW, CW> dec;
  for (int k = 0; k < 8; ++k)
    dec.set_ffe_coeff(k, qam::quantize_coeff<CW>(trained.ffe_coeff(k)));
  for (int k = 0; k < 16; ++k)
    dec.set_dfe_coeff(k, qam::quantize_coeff<CW>(trained.dfe_coeff(k)));
  LinkStimulus stim(cfg);
  dsp::ErrorCounter errs;
  for (int n = 0; n < symbols; ++n) {
    const LinkSample s = stim.next();
    const typename qam::QamDecoderFixed<10, 10, 10, CW, CW>::input_type
        x_in[2] = {{fixpt::fixed<10, 0>::from_raw(fixpt::wide_int<10>(
                        static_cast<long long>(s.q0.re))),
                    fixpt::fixed<10, 0>::from_raw(fixpt::wide_int<10>(
                        static_cast<long long>(s.q0.im)))},
                   {fixpt::fixed<10, 0>::from_raw(fixpt::wide_int<10>(
                        static_cast<long long>(s.q1.re))),
                    fixpt::fixed<10, 0>::from_raw(fixpt::wide_int<10>(
                        static_cast<long long>(s.q1.im)))}};
    fixpt::wide_int<6, false> data;
    dec.decode(x_in, &data);
    const int want = stim.sent_delayed(cfg.decision_delay);
    if (want >= 0) errs.update(want, static_cast<int>(data.to_uint64()), 6);
  }
  std::printf("  coeff width %2d: SER %.3e  (%llu errors / %llu symbols)\n",
              CW, errs.ser(),
              static_cast<unsigned long long>(errs.symbol_errors()),
              static_cast<unsigned long long>(errs.symbols()));
}

// Input (ADC) width sweep: quantization noise at the receiver front end.
template <int XW>
void run_input_width(const qam::QamDecoderFloat& trained, LinkConfig cfg,
                     int symbols) {
  cfg.x_w = XW;
  qam::QamDecoderFixed<XW> dec;
  for (int k = 0; k < 8; ++k)
    dec.set_ffe_coeff(k, qam::quantize_coeff<10>(trained.ffe_coeff(k)));
  for (int k = 0; k < 16; ++k)
    dec.set_dfe_coeff(k, qam::quantize_coeff<10>(trained.dfe_coeff(k)));
  LinkStimulus stim(cfg);
  dsp::ErrorCounter errs;
  for (int n = 0; n < symbols; ++n) {
    const LinkSample s = stim.next();
    using FX = fixpt::fixed<XW, 0>;
    using WI = fixpt::wide_int<XW>;
    const typename qam::QamDecoderFixed<XW>::input_type x_in[2] = {
        {FX::from_raw(WI(static_cast<long long>(s.q0.re))),
         FX::from_raw(WI(static_cast<long long>(s.q0.im)))},
        {FX::from_raw(WI(static_cast<long long>(s.q1.re))),
         FX::from_raw(WI(static_cast<long long>(s.q1.im)))}};
    fixpt::wide_int<6, false> data;
    dec.decode(x_in, &data);
    const int want = stim.sent_delayed(cfg.decision_delay);
    if (want >= 0) errs.update(want, static_cast<int>(data.to_uint64()), 6);
  }
  std::printf("  input width %2d: SER %.3e  (%llu errors / %llu symbols)\n",
              XW, errs.ser(),
              static_cast<unsigned long long>(errs.symbol_errors()),
              static_cast<unsigned long long>(errs.symbols()));
}

void print_sweep() {
  std::printf(
      "\n== Precision exploration (experiment D2): SER vs bitwidths ==\n");
  std::printf("(paper's design point: 10-bit data and coefficients; "
              "mu = 2^-8 needs coefficient width >= 9 for a nonzero step)\n");
  LinkConfig cfg;
  cfg.channel.snr_db = 30.0;  // operating point where quantization matters
  LinkStimulus train_stim(cfg);
  const qam::QamDecoderFloat trained =
      qam::train_float_reference(&train_stim, 6000);
  const int symbols = 20000;
  std::printf("-- coefficient width sweep (SNR 30 dB; width < 9 freezes "
              "adaptation because mu underflows to zero) --\n");
  run_width<6>(trained, cfg, symbols);
  run_width<7>(trained, cfg, symbols);
  run_width<8>(trained, cfg, symbols);
  run_width<10>(trained, cfg, symbols);
  run_width<12>(trained, cfg, symbols);
  std::printf("-- input (ADC) width sweep, 10-bit coefficients (SNR 30 dB) "
              "--\n");
  run_input_width<4>(trained, cfg, symbols);
  run_input_width<5>(trained, cfg, symbols);
  run_input_width<6>(trained, cfg, symbols);
  run_input_width<8>(trained, cfg, symbols);
  run_input_width<10>(trained, cfg, symbols);

  std::printf("\n-- SNR sweep at the paper's 10-bit design point --\n");
  for (double snr : {18.0, 20.0, 22.0, 24.0, 26.0, 28.0, 32.0}) {
    LinkConfig c2;
    c2.channel.snr_db = snr;
    LinkStimulus ts(c2);
    const qam::QamDecoderFloat t2 = qam::train_float_reference(&ts, 6000);
    qam::QamDecoderFixed<> dec;
    for (int k = 0; k < 8; ++k)
      dec.set_ffe_coeff(k, qam::quantize_coeff<10>(t2.ffe_coeff(k)));
    for (int k = 0; k < 16; ++k)
      dec.set_dfe_coeff(k, qam::quantize_coeff<10>(t2.dfe_coeff(k)));
    LinkStimulus stim(c2);
    dsp::ErrorCounter errs;
    for (int n = 0; n < symbols; ++n) {
      const LinkSample s = stim.next();
      const qam::QamDecoderFixed<>::input_type x_in[2] = {
          {fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q0.re))),
           fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q0.im)))},
          {fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q1.re))),
           fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q1.im)))}};
      fixpt::wide_int<6, false> data;
      dec.decode(x_in, &data);
      const int want = stim.sent_delayed(c2.decision_delay);
      if (want >= 0) errs.update(want, static_cast<int>(data.to_uint64()), 6);
    }
    std::printf("  SNR %4.0f dB: SER %.3e  BER %.3e\n", snr, errs.ser(),
                errs.ber());
  }
  std::printf("\n");
}

void BM_PrecisionSweepPoint(benchmark::State& state) {
  LinkConfig cfg;
  LinkStimulus train_stim(cfg);
  const qam::QamDecoderFloat trained =
      qam::train_float_reference(&train_stim, 2000);
  for (auto _ : state) {
    qam::QamDecoderFixed<> dec;
    for (int k = 0; k < 8; ++k)
      dec.set_ffe_coeff(k, qam::quantize_coeff<10>(trained.ffe_coeff(k)));
    LinkStimulus stim(cfg);
    long long sum = 0;
    for (int n = 0; n < 100; ++n) {
      const LinkSample s = stim.next();
      const qam::QamDecoderFixed<>::input_type x_in[2] = {
          {fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q0.re))),
           fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q0.im)))},
          {fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q1.re))),
           fixpt::fixed<10, 0>::from_raw(
               fixpt::wide_int<10>(static_cast<long long>(s.q1.im)))}};
      fixpt::wide_int<6, false> data;
      dec.decode(x_in, &data);
      sum += static_cast<long long>(data.to_uint64());
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PrecisionSweepPoint);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
