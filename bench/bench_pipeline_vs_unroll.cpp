// Experiment S5b (paper section 5): "for this algorithm and the given
// performance goals, loop pipelining does not provide as much benefit as
// loop unrolling. The main reason is that the loop body is simple enough
// that each iteration of the loop can be executed in a single cycle."
//
// This harness sweeps unroll factors and pipeline IIs on the merged
// design at 10 ns (1-cycle bodies: pipelining is a no-op) and at 4 ns
// (multi-cycle bodies: pipelining recovers throughput, the regime where it
// does pay off), demonstrating both sides of the paper's argument.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"

namespace {

using namespace hlsw;
using hls::Directives;
using hls::run_synthesis;
using hls::TechLibrary;

Directives merged(double clock_ns) {
  Directives d;
  d.clock_period_ns = clock_ns;
  d.merge_groups = qam::default_merge_groups();
  return d;
}

void print_comparison() {
  const auto tech = TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();

  std::printf("\n== Pipelining vs unrolling (experiment S5b) ==\n");
  std::printf("\n-- 10 ns clock (paper's design point: 1-cycle bodies) --\n");
  std::printf("%-26s %7s %9s\n", "config", "cycles", "rate Mbps");
  {
    const auto r = run_synthesis(ir, merged(10.0), tech);
    std::printf("%-26s %7d %9.2f\n", "merged baseline",
                r.latency_cycles(), r.data_rate_mbps(6));
  }
  for (int ii : {1, 2}) {
    Directives d = merged(10.0);
    d.loops["ffe"].pipeline_ii = ii;
    d.loops["ffe_adapt"].pipeline_ii = ii;
    const auto r = run_synthesis(ir, d, tech);
    std::printf("%-26s %7d %9.2f\n",
                ("merged + pipeline II=" + std::to_string(ii)).c_str(),
                r.latency_cycles(), r.data_rate_mbps(6));
  }
  for (int u : {2, 4}) {
    Directives d = merged(10.0);
    d.loops["dfe"].unroll = u;
    d.loops["ffe"].unroll = u / 2;
    d.loops["dfe_adapt"].unroll = u;
    d.loops["ffe_adapt"].unroll = u / 2;
    d.loops["dfe_shift"].unroll = u;
    d.loops["ffe_shift"].unroll = u / 2;
    const auto r = run_synthesis(ir, d, tech);
    std::printf("%-26s %7d %9.2f\n",
                ("merged + unroll U=" + std::to_string(u)).c_str(),
                r.latency_cycles(), r.data_rate_mbps(6));
  }

  std::printf("\n-- 4 ns clock (multi-cycle MAC bodies: pipelining's "
              "regime) --\n");
  std::printf("%-26s %7s %9s %10s\n", "config", "cycles", "lat(ns)",
              "rate Mbps");
  {
    const auto r = run_synthesis(ir, merged(4.0), tech);
    std::printf("%-26s %7d %9.0f %10.2f\n", "merged baseline",
                r.latency_cycles(), r.latency_ns(), r.data_rate_mbps(6));
  }
  for (int ii : {1, 2}) {
    Directives d = merged(4.0);
    d.loops["ffe"].pipeline_ii = ii;
    d.loops["ffe_adapt"].pipeline_ii = ii;
    const auto r = run_synthesis(ir, d, tech);
    std::printf("%-26s %7d %9.0f %10.2f\n",
                ("merged + pipeline II=" + std::to_string(ii)).c_str(),
                r.latency_cycles(), r.latency_ns(), r.data_rate_mbps(6));
  }
  std::printf(
      "\n(paper: at 100 MHz the bodies already run one iteration per cycle, "
      "so II=1 pipelining changes nothing; unrolling is the lever)\n\n");
}

void BM_SynthPipelined(benchmark::State& state) {
  const auto tech = TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();
  Directives d = merged(4.0);
  d.loops["ffe"].pipeline_ii = 1;
  d.loops["ffe_adapt"].pipeline_ii = 1;
  for (auto _ : state) benchmark::DoNotOptimize(run_synthesis(ir, d, tech));
}
BENCHMARK(BM_SynthPipelined);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
