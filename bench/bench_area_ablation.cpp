// Area-model ablation (DESIGN.md section 5): how sensitive are the Table 1
// normalized-area ratios to the technology library's component weights?
// The paper reports 1.17 / 1.00 / 1.61 / 1.88; our calibrated asic90
// library lands near that. This harness perturbs each weight family
// (multiplier, adder, register, mux) by 2x in both directions and reports
// the resulting ratio spread — showing the *ordering* is robust even where
// the exact ratios move.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"

namespace {

using namespace hlsw;
using hls::run_synthesis;
using hls::TechLibrary;

struct Ratios {
  double merge, none, u2, u4;
  bool ordered() const { return none < merge && merge < u2 && u2 < u4; }
};

Ratios ratios_for(const TechLibrary& tech) {
  const auto archs = qam::table1_architectures();
  const auto ir = qam::build_qam_decoder_ir();
  double a[4];
  for (int i = 0; i < 4; ++i)
    a[i] = run_synthesis(ir, archs[static_cast<size_t>(i)].dir, tech)
               .area.total;
  return {a[0] / a[1], 1.0, a[2] / a[1], a[3] / a[1]};
}

void print_ablation() {
  std::printf("\n== Area-model ablation: Table 1 ratios under weight "
              "perturbations ==\n");
  std::printf("paper:               merge 1.17, none 1.00, U2 1.61, U4 "
              "1.88\n");
  struct Knob {
    const char* name;
    std::function<void(TechLibrary&, double)> apply;
  };
  const Knob knobs[] = {
      {"mul_area", [](TechLibrary& t, double f) { t.mul_area_per_bit2 *= f; }},
      {"add_area", [](TechLibrary& t, double f) { t.add_area_per_bit *= f; }},
      {"reg_area", [](TechLibrary& t, double f) { t.reg_area_per_bit *= f; }},
      {"mux_area", [](TechLibrary& t, double f) { t.mux_area_per_bit *= f; }},
  };
  {
    const Ratios r = ratios_for(TechLibrary::asic90());
    std::printf("%-18s merge %.2f, none 1.00, U2 %.2f, U4 %.2f  [ordering "
                "%s]\n",
                "calibrated", r.merge, r.u2, r.u4,
                r.ordered() ? "ok" : "VIOLATED");
  }
  for (const auto& k : knobs) {
    for (double f : {0.5, 2.0}) {
      TechLibrary t = TechLibrary::asic90();
      k.apply(t, f);
      const Ratios r = ratios_for(t);
      std::printf("%-10s x%-5.1f  merge %.2f, none 1.00, U2 %.2f, U4 %.2f  "
                  "[ordering %s]\n",
                  k.name, f, r.merge, r.u2, r.u4,
                  r.ordered() ? "ok" : "VIOLATED");
    }
  }
  std::printf("\n(the area ordering none < merge < U2 < U4 — the paper's "
              "qualitative result — should survive every 2x perturbation)\n\n");
}

void BM_AreaEstimation(benchmark::State& state) {
  const auto arch = qam::table1_architectures()[3];
  const auto ir = qam::build_qam_decoder_ir();
  const auto tech = TechLibrary::asic90();
  for (auto _ : state)
    benchmark::DoNotOptimize(run_synthesis(ir, arch.dir, tech).area.total);
}
BENCHMARK(BM_AreaEstimation);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
