// Verification-performance ladder for the in-process Verilog simulator:
// where does executing the emitted TEXT sit relative to the cycle-accurate
// rtl::Simulator and the untimed interpreter? Sections time the vsim
// front end (parse + elaborate of the emitted module), the generated
// self-checking testbench run, per-symbol DutHarness execution, and the
// serial vs thread-pooled vsim_sweep — producing BENCH_vsim.json
// (--reps/--warmup/--json; see bench_main.h). Regenerate the committed
// baseline from the repo root with:
//   ./build/bench/bench_vsim --reps 5 --warmup 1
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_main.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/testbench.h"
#include "rtl/verilog.h"
#include "vsim/codegen.h"
#include "vsim/compile.h"
#include "vsim/harness.h"
#include "vsim/lint.h"
#include "vsim/pack.h"
#include "vsim/parser.h"

namespace {

using namespace hlsw;
using hls::PortIo;
using hls::TechLibrary;
using qam::LinkConfig;
using qam::LinkStimulus;

void run_harness_sections(bench::Harness* h) {
  const auto ir = qam::build_qam_decoder_ir();
  const qam::Architecture arch = qam::table1_architectures()[0];  // merge
  const auto r = hls::run_synthesis(ir, arch.dir, TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);

  // Front end: source text -> AST -> elaborated netlist.
  h->measure("parse_emitted_module",
             [&] { benchmark::DoNotOptimize(vsim::parse(verilog)); });
  const auto su = vsim::parse(verilog);
  h->measure("elaborate_emitted_module", [&] {
    benchmark::DoNotOptimize(vsim::elaborate(su, r.transformed.name));
  });
  auto design = vsim::elaborate(su, r.transformed.name);
  h->measure("lint_emitted_module",
             [&] { benchmark::DoNotOptimize(vsim::lint(*design)); });

  // Compiling the levelized execution plan is part of the compiled
  // backend's cost story: measured cold (fresh Design each rep, so the
  // process-wide plan memo cannot hit).
  h->measure("compile_plan_cold", [&] {
    auto fresh = vsim::elaborate(su, r.transformed.name);
    benchmark::DoNotOptimize(vsim::compile_design(fresh, nullptr));
  });

  // Per-symbol execution ladder: rtl::Simulator vs both vsim backends on
  // the same stimulus (the event backend evaluates the stratified queue,
  // the compiled backend replays levelized tapes; rtl::Simulator replays a
  // pre-scheduled plan — the remaining gap is the price of executing text).
  const int kSymbols = 100;
  LinkStimulus stim((LinkConfig()));
  const std::vector<PortIo> batch = qam::link_input_batch(&stim, kSymbols);
  const auto t_rtl = h->measure("rtl_sim_100_symbols", [&] {
    rtl::Simulator sim(r.transformed, r.schedule);
    for (const auto& in : batch) benchmark::DoNotOptimize(sim.run(in));
  });
  const auto t_vsim = h->measure("vsim_harness_100_symbols", [&] {
    vsim::DutHarness dut(r.transformed, design);
    for (const auto& in : batch) benchmark::DoNotOptimize(dut.run(in));
  });
  vsim::SimConfig event_cfg;
  event_cfg.compiled = false;
  const auto t_vsim_event = h->measure("vsim_harness_100_symbols_event", [&] {
    vsim::DutHarness dut(r.transformed, design, event_cfg);
    for (const auto& in : batch) benchmark::DoNotOptimize(dut.run(in));
  });

  // Codegen backend: same harness loop through the generated .so. The
  // first construction pays generate+compile+dlopen (absorbed by warmup;
  // later reps hit the on-disk cache); on toolchain-less machines this
  // silently measures the compiled-interpreter fallback — the note records
  // which backend actually ran.
  vsim::SimConfig codegen_cfg;
  codegen_cfg.backend = vsim::Backend::kCodegen;
  std::string codegen_backend = "unknown";
  const auto t_vsim_codegen =
      h->measure("vsim_harness_100_symbols_codegen", [&] {
        vsim::DutHarness dut(r.transformed, design, codegen_cfg);
        codegen_backend = dut.sim().backend();
        for (const auto& in : batch) benchmark::DoNotOptimize(dut.run(in));
      });

  // Instrumentation overhead: the same 100 symbols through a module
  // emitted with on-chip perf counters (hls::InstrumentOptions) vs the
  // plain module — the cost of measuring the hardware while simulating it.
  rtl::VerilogOptions inst_opts;
  inst_opts.instrument.enabled = true;
  const std::string verilog_inst =
      rtl::emit_verilog(r.transformed, r.schedule, inst_opts);
  auto design_inst = vsim::load_design(verilog_inst, r.transformed.name);
  const auto t_vsim_inst =
      h->measure("vsim_harness_100_symbols_instrumented", [&] {
        vsim::DutHarness dut(r.transformed, design_inst);
        for (const auto& in : batch) benchmark::DoNotOptimize(dut.run(in));
      });

  // The end-to-end testbench path the examples use: module + generated
  // self-checking testbench, run to its PASS/FAIL summary in-process.
  const auto tvs = rtl::capture_vectors(r.transformed, r.schedule,
                                        {batch.begin(), batch.begin() + 8});
  const std::string tb =
      rtl::emit_testbench(r.transformed, tvs, r.transformed.name);
  bool tb_passed = true;
  h->measure("testbench_8_vectors", [&] {
    const auto res =
        vsim::run_testbench(verilog + "\n" + tb, r.transformed.name + "_tb");
    tb_passed = tb_passed && res.passed;
    benchmark::DoNotOptimize(res);
  });

  // Differential sweep, serial vs thread-pooled (stateless per-vector
  // replay is not valid for the stateful decoder, so shards are blocks),
  // on both backends — one elaborated Design and one memoized plan are
  // shared across every leg.
  const auto t_serial = h->measure("vsim_sweep_serial", [&] {
    benchmark::DoNotOptimize(vsim::vsim_sweep(
        r.transformed, r.schedule, batch,
        {.threads = 1, .block_size = batch.size()}));
  });
  const auto t_par = h->measure("vsim_sweep_pool4", [&] {
    benchmark::DoNotOptimize(
        vsim::vsim_sweep(r.transformed, r.schedule, batch,
                         {.threads = 4, .block_size = batch.size() / 4}));
  });
  const auto t_serial_event = h->measure("vsim_sweep_serial_event", [&] {
    benchmark::DoNotOptimize(vsim::vsim_sweep(
        r.transformed, r.schedule, batch,
        {.threads = 1, .block_size = batch.size()}, event_cfg));
  });
  const auto t_par_event = h->measure("vsim_sweep_pool4_event", [&] {
    benchmark::DoNotOptimize(vsim::vsim_sweep(
        r.transformed, r.schedule, batch,
        {.threads = 4, .block_size = batch.size() / 4}, event_cfg));
  });

  // Bit-packed multi-lane sweeps: 64 independent 25-symbol blocks (every
  // block its own burst, replayed from reset on both legs) through one
  // scalar compiled sweep vs 8- and 64-lane packed runs of the SAME
  // blocks. The interpreted-packed legs pin Backend::kCompiled (kAuto now
  // prefers the generated lane-major engine, which would silently change
  // this baseline); the packed-codegen legs request kPackedCodegen
  // explicitly. Every full-sweep leg shares the batched golden reference
  // (one interpreter context per batch, reset between lanes), so the
  // packed-vs-packed gap below is pure DUT-engine difference. Throughput
  // is reported per lane so the lane-scaling efficiency is visible next to
  // the raw speedup.
  vsim::SimConfig interp_packed_cfg;
  interp_packed_cfg.backend = vsim::Backend::kCompiled;
  vsim::SimConfig packed_cg_cfg;
  packed_cg_cfg.backend = vsim::Backend::kPackedCodegen;
  const int kSweepSymbols = 1600;
  const std::size_t kSweepBlock = 25;
  const std::vector<PortIo> sweep_batch =
      qam::link_input_batch(&stim, kSweepSymbols);
  const auto t_sweep1 = h->measure("vsim_sweep_blocks_scalar", [&] {
    benchmark::DoNotOptimize(
        vsim::vsim_sweep(r.transformed, r.schedule, sweep_batch,
                         {.block_size = kSweepBlock}));
  });
  const auto t_sweep8 = h->measure("vsim_sweep_blocks_packed8", [&] {
    benchmark::DoNotOptimize(vsim::vsim_sweep(
        r.transformed, r.schedule, sweep_batch,
        {.block_size = kSweepBlock, .lanes = 8}, interp_packed_cfg));
  });
  const auto t_sweep64 = h->measure("vsim_sweep_blocks_packed64", [&] {
    benchmark::DoNotOptimize(vsim::vsim_sweep(
        r.transformed, r.schedule, sweep_batch,
        {.block_size = kSweepBlock, .lanes = 64}, interp_packed_cfg));
  });
  const auto t_sweep8_cg = h->measure("vsim_sweep_blocks_packed8_codegen", [&] {
    benchmark::DoNotOptimize(vsim::vsim_sweep(
        r.transformed, r.schedule, sweep_batch,
        {.block_size = kSweepBlock, .lanes = 8}, packed_cg_cfg));
  });
  const auto t_sweep64_cg =
      h->measure("vsim_sweep_blocks_packed64_codegen", [&] {
        benchmark::DoNotOptimize(vsim::vsim_sweep(
            r.transformed, r.schedule, sweep_batch,
            {.block_size = kSweepBlock, .lanes = 64}, packed_cg_cfg));
      });
  // DUT-only throughput pair: the same 64 blocks replayed per-block
  // through scalar DutHarnesses vs one 64-lane PackedDutHarness. A full
  // differential sweep runs the golden interpreter leg identically on both
  // sides (an Amdahl floor the lane count cannot touch), so this pair
  // isolates what lane packing actually accelerates — the simulator-side
  // sweep work.
  std::string pack_why;
  const auto pack_plan = vsim::compiled_plan(design, &pack_why);
  const int kDutLanes = 64;
  std::vector<std::vector<PortIo>> dut_streams(kDutLanes);
  for (int b = 0; b < kDutLanes; ++b)
    dut_streams[static_cast<std::size_t>(b)]
        .assign(sweep_batch.begin() + b * static_cast<long>(kSweepBlock),
                sweep_batch.begin() + (b + 1) * static_cast<long>(kSweepBlock));
  const auto t_dut_scalar = h->measure("vsim_sweep_dut_scalar", [&] {
    for (const auto& s : dut_streams) {
      vsim::DutHarness dut(r.transformed, design);
      benchmark::DoNotOptimize(dut.run_stream(s));
    }
  });
  const auto t_dut_packed = h->measure("vsim_sweep_dut_packed64", [&] {
    vsim::PackedDutHarness dut(r.transformed, pack_plan, kDutLanes,
                               interp_packed_cfg);
    benchmark::DoNotOptimize(dut.run_streams(dut_streams));
  });
  // Same streams through the generated lane-major engine; the note records
  // which backend actually ran (toolchain-less machines degrade to the
  // interpreted packed tier, making this leg ~equal to the one above).
  std::string packed_cg_backend = "unknown";
  const auto t_dut_packed_cg =
      h->measure("vsim_sweep_dut_packed64_codegen", [&] {
        vsim::PackedDutHarness dut(r.transformed, pack_plan, kDutLanes,
                                   packed_cg_cfg);
        packed_cg_backend = dut.backend();
        benchmark::DoNotOptimize(dut.run_streams(dut_streams));
      });

  const auto throughput_note = [&](const std::string& label, int symbols,
                                   double min_ms, int lanes) {
    const double sym_per_sec = symbols / (min_ms / 1000.0);
    h->note(label, obs::Json::object()
                       .set("lanes", lanes)
                       .set("symbols_per_sec", sym_per_sec)
                       .set("symbols_per_sec_per_lane", sym_per_sec / lanes));
  };
  const auto sweep_note = [&](const std::string& label, double min_ms,
                              int lanes) {
    throughput_note(label, kSweepSymbols, min_ms, lanes);
  };
  sweep_note("sweep_blocks_scalar", t_sweep1.min_ms, 1);
  sweep_note("sweep_blocks_packed8", t_sweep8.min_ms, 8);
  sweep_note("sweep_blocks_packed64", t_sweep64.min_ms, 64);
  sweep_note("sweep_blocks_packed8_codegen", t_sweep8_cg.min_ms, 8);
  sweep_note("sweep_blocks_packed64_codegen", t_sweep64_cg.min_ms, 64);
  sweep_note("sweep_dut_scalar", t_dut_scalar.min_ms, 1);
  sweep_note("sweep_dut_packed64", t_dut_packed.min_ms, kDutLanes);
  sweep_note("sweep_dut_packed64_codegen", t_dut_packed_cg.min_ms, kDutLanes);
  throughput_note("harness_compiled", kSymbols, t_vsim.min_ms, 1);
  throughput_note("harness_codegen", kSymbols, t_vsim_codegen.min_ms, 1);

  h->note("config", obs::Json::object()
                        .set("architecture", arch.name)
                        .set("symbols", kSymbols)
                        .set("sweep_symbols", kSweepSymbols)
                        .set("sweep_block_size",
                             static_cast<long long>(kSweepBlock))
                        .set("codegen_backend", codegen_backend)
                        .set("packed_codegen_backend", packed_cg_backend)
                        .set("testbench_passed", tb_passed));
  h->note("slowdown_vsim_vs_rtl_sim", t_vsim.min_ms / t_rtl.min_ms);
  h->note("overhead_instrumented_vs_plain",
          t_vsim_inst.min_ms / t_vsim.min_ms);
  h->note("slowdown_vsim_event_vs_rtl_sim",
          t_vsim_event.min_ms / t_rtl.min_ms);
  h->note("speedup_compiled_vs_event", t_vsim_event.min_ms / t_vsim.min_ms);
  h->note("speedup_codegen_vs_compiled",
          t_vsim.min_ms / t_vsim_codegen.min_ms);
  h->note("speedup_packed8_vs_scalar_sweep", t_sweep1.min_ms / t_sweep8.min_ms);
  h->note("speedup_packed64_vs_scalar_sweep",
          t_sweep1.min_ms / t_sweep64.min_ms);
  h->note("speedup_packed8_codegen_vs_scalar_sweep",
          t_sweep1.min_ms / t_sweep8_cg.min_ms);
  h->note("speedup_packed64_codegen_vs_scalar_sweep",
          t_sweep1.min_ms / t_sweep64_cg.min_ms);
  h->note("speedup_packed8_codegen_vs_interp_sweep",
          t_sweep8.min_ms / t_sweep8_cg.min_ms);
  h->note("speedup_packed64_codegen_vs_interp_sweep",
          t_sweep64.min_ms / t_sweep64_cg.min_ms);
  h->note("speedup_packed64_dut_vs_scalar_dut",
          t_dut_scalar.min_ms / t_dut_packed.min_ms);
  h->note("speedup_packed64_codegen_dut_vs_scalar_dut",
          t_dut_scalar.min_ms / t_dut_packed_cg.min_ms);
  h->note("speedup_packed64_codegen_dut_vs_interp_dut",
          t_dut_packed.min_ms / t_dut_packed_cg.min_ms);
  h->note("speedup_sweep_pool4_vs_serial", t_serial.min_ms / t_par.min_ms);
  h->note("speedup_sweep_pool4_vs_serial_event",
          t_serial_event.min_ms / t_par_event.min_ms);
}

void BM_VsimSymbol(benchmark::State& state) {
  const auto arch =
      qam::table1_architectures()[static_cast<size_t>(state.range(0))];
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                                    TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  auto design = vsim::load_design(verilog, r.transformed.name);
  vsim::DutHarness dut(r.transformed, design);
  LinkStimulus stim((LinkConfig()));
  for (auto _ : state) {
    const auto s = stim.next();
    PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    benchmark::DoNotOptimize(dut.run(io));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(arch.name);
}
BENCHMARK(BM_VsimSymbol)->DenseRange(0, 3);

void BM_VsimLoadDesignCached(benchmark::State& state) {
  // load_design memoizes elaborated designs in a process-wide LRU; after
  // the first call this measures the cache-hit path (key build + lookup).
  const auto arch = qam::table1_architectures()[0];
  const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), arch.dir,
                                    TechLibrary::asic90());
  const std::string verilog = rtl::emit_verilog(r.transformed, r.schedule);
  for (auto _ : state)
    benchmark::DoNotOptimize(vsim::load_design(verilog, r.transformed.name));
}
BENCHMARK(BM_VsimLoadDesignCached);

}  // namespace

int main(int argc, char** argv) {
  hlsw::bench::Harness harness("vsim", &argc, argv);
  run_harness_sections(&harness);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  harness.write();
  return 0;
}
