// Experiment F1 (Figure 1): the C-based flow's speed claim — "architecture
// definition and RTL generation ... accomplished in a matter of days to
// weeks" vs months manually, and "the architectural exploration above was
// performed in a matter of minutes". This harness runs the complete
// exploration (Table 1 rows plus the extended set), including RTL text
// generation, and reports per-architecture and total wall time plus the
// latency/area Pareto points.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "hls/dse.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "rtl/verilog.h"
#include "util/thread_pool.h"

namespace {

using namespace hlsw;
using hls::run_synthesis;
using hls::TechLibrary;

void print_exploration() {
  const auto archs = qam::exploration_architectures();
  const auto tech = TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();

  std::printf(
      "\n== Architectural exploration (experiment F1): %zu architectures, "
      "synthesis + RTL generation ==\n",
      archs.size());
  std::printf("%-14s | %7s %8s %9s | %9s | %6s\n", "arch", "cycles",
              "lat(ns)", "rate Mbps", "area", "rtl KB");

  double base_area = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& a : archs) {
    const auto r = run_synthesis(ir, a.dir, tech);
    if (a.name == "none") base_area = r.area.total;
  }
  for (const auto& a : archs) {
    const auto r = run_synthesis(ir, a.dir, tech);
    const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
    std::printf("%-14s | %7d %8.0f %9.2f | %9.0f | %6.1f\n", a.name.c_str(),
                r.latency_cycles(), r.latency_ns(), r.data_rate_mbps(6),
                r.area.total, v.size() / 1024.0);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "\nfull exploration (synthesis x2 + Verilog for every architecture): "
      "%.3f s total\n",
      elapsed);
  std::printf("(the paper: \"performed in a matter of minutes without "
              "changing the source\"; a manual RTL rewrite per architecture "
              "would take weeks each)\n");

  // Pareto frontier in (latency, area).
  std::printf("\n-- Pareto-optimal points (latency vs area, normalized to "
              "'none') --\n");
  for (const auto& a : archs) {
    const auto r = run_synthesis(ir, a.dir, tech);
    bool dominated = false;
    for (const auto& b : archs) {
      if (&a == &b) continue;
      const auto rb = run_synthesis(ir, b.dir, tech);
      if (rb.latency_cycles() <= r.latency_cycles() &&
          rb.area.total < r.area.total)
        dominated = true;
      if (rb.latency_cycles() < r.latency_cycles() &&
          rb.area.total <= r.area.total)
        dominated = true;
    }
    if (!dominated)
      std::printf("  %-14s %3d cycles, %.2fx area\n", a.name.c_str(),
                  r.latency_cycles(), r.area.total / base_area);
  }
  std::printf("\n");
}

double time_explore(const hlsw::hls::Function& ir,
                    const hls::DseOptions& opts, hls::DseResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = hls::explore(ir, opts, hls::TechLibrary::asic90());
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_dse() {
  const auto ir = qam::build_qam_decoder_ir();
  hls::DseOptions opts;
  opts.unroll_factors = {1, 2, 4, 8, 16};

  // Legacy serial engine: one thread, cold private cache.
  opts.threads = 1;
  hls::DseResult serial;
  const double dt_serial = time_explore(ir, opts, &serial);

  // Pooled engine: 4 workers over a shared cache + reusable pool.
  hls::DseOptions par = opts;
  par.threads = 4;
  par.cache = std::make_shared<hls::SynthesisCache>();
  par.pool = std::make_shared<hlsw::util::ThreadPool>(4);
  hls::DseResult threaded;
  const double dt_par = time_explore(ir, par, &threaded);

  // Cache-warm re-exploration: the same sweep again, zero new schedules.
  hls::DseResult warm;
  const double dt_warm = time_explore(ir, par, &warm);

  bool identical = serial.points.size() == threaded.points.size();
  for (std::size_t i = 0; identical && i < serial.points.size(); ++i)
    identical = serial.points[i].name == threaded.points[i].name &&
                serial.points[i].latency_cycles ==
                    threaded.points[i].latency_cycles &&
                serial.points[i].area == threaded.points[i].area &&
                serial.points[i].pareto == threaded.points[i].pareto;

  std::printf("-- automated DSE (hls::explore): %zu configurations --\n",
              serial.points.size());
  std::printf("  serial (threads=1, cold):      %8.3f ms\n", dt_serial * 1e3);
  std::printf("  pooled (threads=4, cold):      %8.3f ms   speedup %.2fx\n",
              dt_par * 1e3, dt_serial / dt_par);
  std::printf("  memoized re-sweep (warm):      %8.3f ms   speedup %.2fx\n",
              dt_warm * 1e3, dt_serial / dt_warm);
  std::printf("  parallel result bit-identical to serial: %s\n",
              identical ? "yes" : "NO -- BUG");
  std::printf("  refinement-phase cache hits: %zu of %zu candidates "
              "(cold); warm sweep: %zu hits, %zu schedules\n",
              serial.cache_hits, serial.cache_hits + serial.cache_misses,
              warm.cache_hits, warm.cache_misses);
  std::printf("Pareto front (latency vs area):\n");
  for (const auto* p : threaded.pareto_front())
    std::printf("  %-24s %3d cycles  %8.0f gates\n", p->name.c_str(),
                p->latency_cycles, p->area);
  const auto* pick = threaded.smallest_within(20);
  if (pick)
    std::printf("smallest design meeting the paper's 20-cycle goal: %s (%d "
                "cycles, %.0f gates)\n\n",
                pick->name.c_str(), pick->latency_cycles, pick->area);
}

void BM_FullExploration(benchmark::State& state) {
  const auto archs = qam::exploration_architectures();
  const auto tech = TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();
  for (auto _ : state) {
    for (const auto& a : archs) {
      const auto r = run_synthesis(ir, a.dir, tech);
      benchmark::DoNotOptimize(rtl::emit_verilog(r.transformed, r.schedule));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(archs.size()));
}
BENCHMARK(BM_FullExploration);

// The DSE engine at 1/2/4 worker threads, cold cache every iteration:
// wall-clock scaling of the synthesis batch itself.
void BM_ExploreColdCache(benchmark::State& state) {
  const auto ir = qam::build_qam_decoder_ir();
  const auto tech = TechLibrary::asic90();
  hls::DseOptions opts;
  opts.unroll_factors = {1, 2, 4, 8, 16};
  opts.threads = static_cast<unsigned>(state.range(0));
  if (opts.threads > 1)
    opts.pool = std::make_shared<hlsw::util::ThreadPool>(opts.threads);
  for (auto _ : state) {
    opts.cache = std::make_shared<hls::SynthesisCache>();  // cold
    benchmark::DoNotOptimize(hls::explore(ir, opts, tech));
  }
}
BENCHMARK(BM_ExploreColdCache)->Arg(1)->Arg(2)->Arg(4);

// The memoized path: every configuration already cached, so an iteration
// costs key construction + lookups only.
void BM_ExploreWarmCache(benchmark::State& state) {
  const auto ir = qam::build_qam_decoder_ir();
  const auto tech = TechLibrary::asic90();
  hls::DseOptions opts;
  opts.unroll_factors = {1, 2, 4, 8, 16};
  opts.threads = 1;
  opts.cache = std::make_shared<hls::SynthesisCache>();
  benchmark::DoNotOptimize(hls::explore(ir, opts, tech));  // warm it
  for (auto _ : state)
    benchmark::DoNotOptimize(hls::explore(ir, opts, tech));
}
BENCHMARK(BM_ExploreWarmCache);

void BM_ReportGeneration(benchmark::State& state) {
  const auto arch = qam::table1_architectures()[0];
  const auto tech = TechLibrary::asic90();
  const auto r =
      run_synthesis(qam::build_qam_decoder_ir(), arch.dir, tech);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hls::synthesis_summary(r, tech));
    benchmark::DoNotOptimize(hls::bill_of_materials(r));
    benchmark::DoNotOptimize(hls::gantt_chart(r));
    benchmark::DoNotOptimize(hls::critical_path_report(r, tech));
  }
}
BENCHMARK(BM_ReportGeneration);

}  // namespace

int main(int argc, char** argv) {
  print_exploration();
  print_dse();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
