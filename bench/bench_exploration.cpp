// Experiment F1 (Figure 1): the C-based flow's speed claim — "architecture
// definition and RTL generation ... accomplished in a matter of days to
// weeks" vs months manually, and "the architectural exploration above was
// performed in a matter of minutes". This harness runs the complete
// exploration (Table 1 rows plus the extended set), including RTL text
// generation, and reports per-architecture and total wall time plus the
// latency/area Pareto points.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "hls/dse.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "rtl/verilog.h"

namespace {

using namespace hlsw;
using hls::run_synthesis;
using hls::TechLibrary;

void print_exploration() {
  const auto archs = qam::exploration_architectures();
  const auto tech = TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();

  std::printf(
      "\n== Architectural exploration (experiment F1): %zu architectures, "
      "synthesis + RTL generation ==\n",
      archs.size());
  std::printf("%-14s | %7s %8s %9s | %9s | %6s\n", "arch", "cycles",
              "lat(ns)", "rate Mbps", "area", "rtl KB");

  double base_area = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& a : archs) {
    const auto r = run_synthesis(ir, a.dir, tech);
    if (a.name == "none") base_area = r.area.total;
  }
  for (const auto& a : archs) {
    const auto r = run_synthesis(ir, a.dir, tech);
    const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
    std::printf("%-14s | %7d %8.0f %9.2f | %9.0f | %6.1f\n", a.name.c_str(),
                r.latency_cycles(), r.latency_ns(), r.data_rate_mbps(6),
                r.area.total, v.size() / 1024.0);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "\nfull exploration (synthesis x2 + Verilog for every architecture): "
      "%.3f s total\n",
      elapsed);
  std::printf("(the paper: \"performed in a matter of minutes without "
              "changing the source\"; a manual RTL rewrite per architecture "
              "would take weeks each)\n");

  // Pareto frontier in (latency, area).
  std::printf("\n-- Pareto-optimal points (latency vs area, normalized to "
              "'none') --\n");
  for (const auto& a : archs) {
    const auto r = run_synthesis(ir, a.dir, tech);
    bool dominated = false;
    for (const auto& b : archs) {
      if (&a == &b) continue;
      const auto rb = run_synthesis(ir, b.dir, tech);
      if (rb.latency_cycles() <= r.latency_cycles() &&
          rb.area.total < r.area.total)
        dominated = true;
      if (rb.latency_cycles() < r.latency_cycles() &&
          rb.area.total <= r.area.total)
        dominated = true;
    }
    if (!dominated)
      std::printf("  %-14s %3d cycles, %.2fx area\n", a.name.c_str(),
                  r.latency_cycles(), r.area.total / base_area);
  }
  std::printf("\n");
}

void print_dse() {
  const auto ir = qam::build_qam_decoder_ir();
  hls::DseOptions opts;
  opts.unroll_factors = {1, 2, 4, 8};
  const auto t0 = std::chrono::steady_clock::now();
  const hls::DseResult r = hls::explore(ir, opts, hls::TechLibrary::asic90());
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("-- automated DSE (hls::explore): %zu configurations in %.3f s "
              "--\n",
              r.points.size(), dt);
  std::printf("Pareto front (latency vs area):\n");
  for (const auto* p : r.pareto_front())
    std::printf("  %-24s %3d cycles  %8.0f gates\n", p->name.c_str(),
                p->latency_cycles, p->area);
  const auto* pick = r.smallest_within(20);
  if (pick)
    std::printf("smallest design meeting the paper's 20-cycle goal: %s (%d "
                "cycles, %.0f gates)\n\n",
                pick->name.c_str(), pick->latency_cycles, pick->area);
}

void BM_FullExploration(benchmark::State& state) {
  const auto archs = qam::exploration_architectures();
  const auto tech = TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();
  for (auto _ : state) {
    for (const auto& a : archs) {
      const auto r = run_synthesis(ir, a.dir, tech);
      benchmark::DoNotOptimize(rtl::emit_verilog(r.transformed, r.schedule));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(archs.size()));
}
BENCHMARK(BM_FullExploration);

void BM_ReportGeneration(benchmark::State& state) {
  const auto arch = qam::table1_architectures()[0];
  const auto tech = TechLibrary::asic90();
  const auto r =
      run_synthesis(qam::build_qam_decoder_ir(), arch.dir, tech);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hls::synthesis_summary(r, tech));
    benchmark::DoNotOptimize(hls::bill_of_materials(r));
    benchmark::DoNotOptimize(hls::gantt_chart(r));
    benchmark::DoNotOptimize(hls::critical_path_report(r, tech));
  }
}
BENCHMARK(BM_ReportGeneration);

}  // namespace

int main(int argc, char** argv) {
  print_exploration();
  print_dse();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
