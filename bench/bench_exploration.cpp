// Experiment F1 (Figure 1): the C-based flow's speed claim — "architecture
// definition and RTL generation ... accomplished in a matter of days to
// weeks" vs months manually, and "the architectural exploration above was
// performed in a matter of minutes". This harness runs the complete
// exploration (Table 1 rows plus the extended set), including RTL text
// generation, and reports per-architecture and total wall time plus the
// latency/area Pareto points.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_main.h"
#include "hls/dse.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "rtl/verilog.h"
#include "util/thread_pool.h"

namespace {

using namespace hlsw;
using hls::run_synthesis;
using hls::TechLibrary;

void print_exploration(hlsw::bench::Harness& h) {
  const auto archs = qam::exploration_architectures();
  const auto tech = TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();

  std::printf(
      "\n== Architectural exploration (experiment F1): %zu architectures, "
      "synthesis + RTL generation ==\n",
      archs.size());
  std::printf("%-14s | %7s %8s %9s | %9s | %6s\n", "arch", "cycles",
              "lat(ns)", "rate Mbps", "area", "rtl KB");

  double base_area = 0;
  for (const auto& a : archs) {
    const auto r = run_synthesis(ir, a.dir, tech);
    if (a.name == "none") base_area = r.area.total;
  }
  for (const auto& a : archs) {
    const auto r = run_synthesis(ir, a.dir, tech);
    const std::string v = rtl::emit_verilog(r.transformed, r.schedule);
    std::printf("%-14s | %7d %8.0f %9.2f | %9.0f | %6.1f\n", a.name.c_str(),
                r.latency_cycles(), r.latency_ns(), r.data_rate_mbps(6),
                r.area.total, v.size() / 1024.0);
  }
  // The headline timing: synthesis + Verilog text for every architecture,
  // repeated under the harness so BENCH_exploration.json carries it.
  const auto t = h.measure("exploration_synth_rtl", [&] {
    for (const auto& a : archs) {
      const auto r = run_synthesis(ir, a.dir, tech);
      benchmark::DoNotOptimize(rtl::emit_verilog(r.transformed, r.schedule));
    }
  });
  std::printf(
      "\nfull exploration (synthesis + Verilog for every architecture): "
      "%.3f ms min / %.3f ms mean over %d reps\n",
      t.min_ms, t.mean_ms, t.reps);
  std::printf("(the paper: \"performed in a matter of minutes without "
              "changing the source\"; a manual RTL rewrite per architecture "
              "would take weeks each)\n");
  h.note("architectures", obs::Json(static_cast<long long>(archs.size())));

  // Pareto frontier in (latency, area).
  std::printf("\n-- Pareto-optimal points (latency vs area, normalized to "
              "'none') --\n");
  obs::Json pareto = obs::Json::array();
  for (const auto& a : archs) {
    const auto r = run_synthesis(ir, a.dir, tech);
    bool dominated = false;
    for (const auto& b : archs) {
      if (&a == &b) continue;
      const auto rb = run_synthesis(ir, b.dir, tech);
      if (rb.latency_cycles() <= r.latency_cycles() &&
          rb.area.total < r.area.total)
        dominated = true;
      if (rb.latency_cycles() < r.latency_cycles() &&
          rb.area.total <= r.area.total)
        dominated = true;
    }
    if (!dominated) {
      std::printf("  %-14s %3d cycles, %.2fx area\n", a.name.c_str(),
                  r.latency_cycles(), r.area.total / base_area);
      pareto.push(obs::Json::object()
                      .set("arch", a.name)
                      .set("cycles", r.latency_cycles())
                      .set("area_norm", r.area.total / base_area));
    }
  }
  h.note("pareto_architectures", std::move(pareto));
  std::printf("\n");
}

void print_dse(hlsw::bench::Harness& h) {
  const auto ir = qam::build_qam_decoder_ir();
  const auto tech = TechLibrary::asic90();
  hls::DseOptions opts;
  opts.unroll_factors = {1, 2, 4, 8, 16};

  // Legacy serial engine: one thread, cold private cache every run.
  opts.threads = 1;
  hls::DseResult serial;
  const auto t_serial = h.measure(
      "dse_serial_cold", [&] { serial = hls::explore(ir, opts, tech); });

  // Pooled engine: 4 workers over a reusable pool, fresh cache per rep.
  hls::DseOptions par = opts;
  par.threads = 4;
  par.pool = std::make_shared<hlsw::util::ThreadPool>(4);
  hls::DseResult threaded;
  const auto t_par = h.measure("dse_pooled_cold", [&] {
    par.cache = std::make_shared<hls::SynthesisCache>();
    threaded = hls::explore(ir, par, tech);
  });

  // Cache-warm re-exploration: the same sweep again, zero new schedules.
  par.cache = std::make_shared<hls::SynthesisCache>();
  hls::DseResult warm = hls::explore(ir, par, tech);  // warm the cache
  const auto t_warm =
      h.measure("dse_warm", [&] { warm = hls::explore(ir, par, tech); });

  bool identical = serial.points.size() == threaded.points.size();
  for (std::size_t i = 0; identical && i < serial.points.size(); ++i)
    identical = serial.points[i].name == threaded.points[i].name &&
                serial.points[i].latency_cycles ==
                    threaded.points[i].latency_cycles &&
                serial.points[i].area == threaded.points[i].area &&
                serial.points[i].pareto == threaded.points[i].pareto;

  std::printf("-- automated DSE (hls::explore): %zu configurations --\n",
              serial.points.size());
  std::printf("  serial (threads=1, cold):      %8.3f ms\n", t_serial.min_ms);
  std::printf("  pooled (threads=4, cold):      %8.3f ms   speedup %.2fx\n",
              t_par.min_ms, t_serial.min_ms / t_par.min_ms);
  std::printf("  memoized re-sweep (warm):      %8.3f ms   speedup %.2fx\n",
              t_warm.min_ms, t_serial.min_ms / t_warm.min_ms);
  std::printf("  parallel result bit-identical to serial: %s\n",
              identical ? "yes" : "NO -- BUG");
  std::printf("  refinement-phase cache hits: %zu of %zu candidates "
              "(cold); warm sweep: %zu hits, %zu schedules\n",
              serial.cache_hits, serial.cache_hits + serial.cache_misses,
              warm.cache_hits, warm.cache_misses);
  std::printf("Pareto front (latency vs area):\n");
  obs::Json front = obs::Json::array();
  for (const auto* p : threaded.pareto_front()) {
    std::printf("  %-24s %3d cycles  %8.0f gates\n", p->name.c_str(),
                p->latency_cycles, p->area);
    front.push(p->name);
  }
  h.note("dse", obs::Json::object()
                    .set("configurations",
                         static_cast<long long>(serial.points.size()))
                    .set("parallel_identical", identical)
                    .set("cold_cache_hits",
                         static_cast<long long>(serial.cache_hits))
                    .set("cold_cache_misses",
                         static_cast<long long>(serial.cache_misses))
                    .set("warm_cache_hits",
                         static_cast<long long>(warm.cache_hits))
                    .set("warm_cache_misses",
                         static_cast<long long>(warm.cache_misses))
                    .set("pareto_front", std::move(front)));
  const auto* pick = threaded.smallest_within(20);
  if (pick)
    std::printf("smallest design meeting the paper's 20-cycle goal: %s (%d "
                "cycles, %.0f gates)\n\n",
                pick->name.c_str(), pick->latency_cycles, pick->area);
}

// Feasibility pruning on/off at both sweep widths, on the redirect-heavy
// axes (tight clock, unrolled MAC loops, a dense pipeline-II axis): the
// matrix EXPERIMENTS.md discusses. Pruning never changes the front; the
// candidate analysis costs a fraction of the schedules it stands beside,
// and redirects collapse below-floor II requests onto their clamped twins.
void print_prune(hlsw::bench::Harness& h) {
  const auto ir = qam::build_qam_decoder_ir();
  const auto tech = TechLibrary::asic90();
  hls::DseOptions base;
  base.clock_period_ns = 3.0;
  base.unroll_factors = {1, 2, 4, 8, 16};
  base.pipeline_iis = {0, 1, 2, 3};
  base.threads = 1;

  std::printf("-- feasibility pruning (clock 3.0 ns, unroll x{1,2,4,8,16}, "
              "II {0,1,2,3}) --\n");
  std::printf("%5s %6s | %5s %9s %6s %5s %6s | %9s\n", "cap", "prune",
              "rows", "schedules", "redir", "dom", "front", "min ms");
  obs::Json legs = obs::Json::array();
  double wall[2][2] = {};
  std::size_t fronts[2][2] = {};
  for (const int cap : {256, 1024}) {
    for (const bool prune : {false, true}) {
      hls::DseOptions opts = base;
      opts.max_configs = cap;
      opts.prune = prune;
      hls::DseResult r;
      char label[64];
      std::snprintf(label, sizeof label, "dse_prune_%d_%s", cap,
                    prune ? "on" : "off");
      const auto t = h.measure(label, [&] {
        opts.cache = std::make_shared<hls::SynthesisCache>();  // cold
        r = hls::explore(ir, opts, tech);
      });
      const auto front = r.pareto_front();
      std::printf("%5d %6s | %5zu %9zu %6zu %5zu %6zu | %9.3f\n", cap,
                  prune ? "on" : "off", r.points.size(), r.cache_misses,
                  r.pruned_infeasible, r.pruned_dominated, front.size(),
                  t.min_ms);
      wall[cap == 1024][prune] = t.min_ms;
      fronts[cap == 1024][prune] = front.size();
      legs.push(obs::Json::object()
                    .set("cap", static_cast<long long>(cap))
                    .set("prune", prune)
                    .set("rows", static_cast<long long>(r.points.size()))
                    .set("schedules", static_cast<long long>(r.cache_misses))
                    .set("pruned_infeasible",
                         static_cast<long long>(r.pruned_infeasible))
                    .set("pruned_dominated",
                         static_cast<long long>(r.pruned_dominated))
                    .set("front", static_cast<long long>(front.size()))
                    .set("min_ms", t.min_ms));
    }
  }
  std::printf("pruned full-width sweep vs unpruned: %.2fx wall at cap 1024, "
              "identical fronts: %s\n\n",
              wall[1][1] / wall[1][0],
              fronts[0][0] == fronts[0][1] && fronts[1][0] == fronts[1][1]
                  ? "yes"
                  : "NO -- BUG");
  h.note("prune", std::move(legs));
}

void BM_FullExploration(benchmark::State& state) {
  const auto archs = qam::exploration_architectures();
  const auto tech = TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();
  for (auto _ : state) {
    for (const auto& a : archs) {
      const auto r = run_synthesis(ir, a.dir, tech);
      benchmark::DoNotOptimize(rtl::emit_verilog(r.transformed, r.schedule));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(archs.size()));
}
BENCHMARK(BM_FullExploration);

// The DSE engine at 1/2/4 worker threads, cold cache every iteration:
// wall-clock scaling of the synthesis batch itself.
void BM_ExploreColdCache(benchmark::State& state) {
  const auto ir = qam::build_qam_decoder_ir();
  const auto tech = TechLibrary::asic90();
  hls::DseOptions opts;
  opts.unroll_factors = {1, 2, 4, 8, 16};
  opts.threads = static_cast<unsigned>(state.range(0));
  if (opts.threads > 1)
    opts.pool = std::make_shared<hlsw::util::ThreadPool>(opts.threads);
  for (auto _ : state) {
    opts.cache = std::make_shared<hls::SynthesisCache>();  // cold
    benchmark::DoNotOptimize(hls::explore(ir, opts, tech));
  }
}
BENCHMARK(BM_ExploreColdCache)->Arg(1)->Arg(2)->Arg(4);

// The memoized path: every configuration already cached, so an iteration
// costs key construction + lookups only.
void BM_ExploreWarmCache(benchmark::State& state) {
  const auto ir = qam::build_qam_decoder_ir();
  const auto tech = TechLibrary::asic90();
  hls::DseOptions opts;
  opts.unroll_factors = {1, 2, 4, 8, 16};
  opts.threads = 1;
  opts.cache = std::make_shared<hls::SynthesisCache>();
  benchmark::DoNotOptimize(hls::explore(ir, opts, tech));  // warm it
  for (auto _ : state)
    benchmark::DoNotOptimize(hls::explore(ir, opts, tech));
}
BENCHMARK(BM_ExploreWarmCache);

void BM_ReportGeneration(benchmark::State& state) {
  const auto arch = qam::table1_architectures()[0];
  const auto tech = TechLibrary::asic90();
  const auto r =
      run_synthesis(qam::build_qam_decoder_ir(), arch.dir, tech);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hls::synthesis_summary(r, tech));
    benchmark::DoNotOptimize(hls::bill_of_materials(r));
    benchmark::DoNotOptimize(hls::gantt_chart(r));
    benchmark::DoNotOptimize(hls::critical_path_report(r, tech));
  }
}
BENCHMARK(BM_ReportGeneration);

}  // namespace

int main(int argc, char** argv) {
  hlsw::bench::Harness harness("exploration", &argc, argv);
  print_exploration(harness);
  print_dse(harness);
  print_prune(harness);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  harness.write();
  return 0;
}
