// hlsw_client: command-line client for the hlsw_serve daemon.
//
//   ./build/examples/hlsw_client --socket /tmp/hlsw.sock ping
//   ./build/examples/hlsw_client --socket /tmp/hlsw.sock synth \
//       --unroll 2 --pipeline 1
//   ./build/examples/hlsw_client --socket /tmp/hlsw.sock sweep 8
//   ./build/examples/hlsw_client --socket /tmp/hlsw.sock dse
//   ./build/examples/hlsw_client --socket /tmp/hlsw.sock metrics
//   ./build/examples/hlsw_client --socket /tmp/hlsw.sock shutdown
//
// `sweep N` demonstrates pipelining: it submits N synth jobs across the
// unroll axis without waiting, then streams the responses back in
// submission order — one connection, N in-flight jobs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.h"
#include "serve/client.h"

using hlsw::obs::Json;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hlsw_client [--socket PATH | --tcp HOST PORT] "
               "[--tenant NAME]\n"
               "                   ping | metrics | shutdown | dse |\n"
               "                   synth [--unroll N] [--pipeline II] "
               "[--clock NS] [--no-merge] |\n"
               "                   sweep N\n");
  return 2;
}

Json synth_params(int unroll, int pipeline_ii, double clock_ns, bool merge) {
  Json loops = Json::object();
  // The paper's loop labels; a common factor across the filter loops.
  for (const char* label : {"ffe", "dfe"}) {
    Json d = Json::object();
    if (unroll > 1) d.set("unroll", unroll);
    if (pipeline_ii > 0) d.set("pipeline_ii", pipeline_ii);
    if (d.size() > 0) loops.set(label, std::move(d));
  }
  Json dir = Json::object().set("clock_period_ns", clock_ns);
  if (merge) dir.set("auto_merge", true);
  if (loops.size() > 0) dir.set("loops", std::move(loops));
  return Json::object().set("design", "qam_decoder").set("directives",
                                                         std::move(dir));
}

void print_response(const Json& resp) {
  std::printf("%s\n", resp.dump(2).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/hlsw.sock";
  std::string tcp_host;
  int tcp_port = -1;
  std::string tenant;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 2 < argc) {
      tcp_host = argv[++i];
      tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--tenant" && i + 1 < argc) {
      tenant = argv[++i];
    } else {
      break;
    }
  }
  if (i >= argc) return usage();
  const std::string cmd = argv[i++];

  hlsw::serve::Client client;
  std::string err;
  const bool ok = tcp_port >= 0 ? client.connect_tcp(tcp_host, tcp_port, &err)
                                : client.connect_unix(socket_path, &err);
  if (!ok) {
    std::fprintf(stderr, "hlsw_client: %s\n", err.c_str());
    return 1;
  }

  Json resp;
  if (cmd == "ping" || cmd == "metrics" || cmd == "shutdown") {
    if (!client.call(cmd, Json(), &resp, &err, tenant)) {
      std::fprintf(stderr, "hlsw_client: %s\n", err.c_str());
      return 1;
    }
    print_response(resp);
    return resp.find("ok")->as_bool() ? 0 : 1;
  }

  if (cmd == "synth") {
    int unroll = 1, pipeline_ii = 0;
    double clock_ns = 10.0;
    bool merge = true;
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--unroll" && i + 1 < argc) unroll = std::atoi(argv[++i]);
      else if (arg == "--pipeline" && i + 1 < argc)
        pipeline_ii = std::atoi(argv[++i]);
      else if (arg == "--clock" && i + 1 < argc)
        clock_ns = std::atof(argv[++i]);
      else if (arg == "--no-merge") merge = false;
      else return usage();
    }
    if (!client.call("synth", synth_params(unroll, pipeline_ii, clock_ns,
                                           merge),
                     &resp, &err, tenant)) {
      std::fprintf(stderr, "hlsw_client: %s\n", err.c_str());
      return 1;
    }
    print_response(resp);
    return resp.find("ok")->as_bool() ? 0 : 1;
  }

  if (cmd == "sweep") {
    const int n = i < argc ? std::atoi(argv[i]) : 4;
    // Submit the whole axis up front (pipelined), then stream results.
    std::vector<long long> ids;
    for (int k = 0; k < n; ++k) {
      const int unroll = 1 << (k % 4);  // 1,2,4,8,1,2,...
      const long long id = client.submit(
          "synth", synth_params(unroll, 0, 10.0, true), tenant, &err);
      if (id < 0) {
        std::fprintf(stderr, "hlsw_client: %s\n", err.c_str());
        return 1;
      }
      ids.push_back(id);
    }
    for (std::size_t k = 0; k < ids.size(); ++k) {
      if (!client.wait(ids[k], &resp, &err)) {
        std::fprintf(stderr, "hlsw_client: %s\n", err.c_str());
        return 1;
      }
      const Json* r = resp.find("result");
      if (r == nullptr) {
        std::printf("job %lld: error %s\n", ids[k], resp.dump().c_str());
        continue;
      }
      std::printf("job %lld: unroll %d -> %lld cycles, area %.0f%s\n",
                  ids[k], 1 << (k % 4), r->find("latency_cycles")->as_int(),
                  r->find("area")->as_double(),
                  r->find("cached")->as_bool() ? " (cached)" : "");
    }
    return 0;
  }

  if (cmd == "dse") {
    Json params = Json::object().set("design", "qam_decoder");
    if (!client.call("dse", std::move(params), &resp, &err, tenant)) {
      std::fprintf(stderr, "hlsw_client: %s\n", err.c_str());
      return 1;
    }
    const Json* r = resp.find("result");
    if (r == nullptr) {
      print_response(resp);
      return 1;
    }
    std::printf("dse: %zu points, %zu on the Pareto front\n",
                r->find("points")->size(), r->find("pareto_front")->size());
    for (std::size_t k = 0; k < r->find("pareto_front")->size(); ++k)
      std::printf("  %s\n", r->find("pareto_front")->at(k).as_string().c_str());
    return 0;
  }

  return usage();
}
