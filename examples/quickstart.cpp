// Quickstart: the five-minute tour of the library.
//
//   1. Bit-accurate datatypes (fixpt): the sc_fixed/sc_complex equivalents.
//   2. The paper's 64-QAM decoder (Figure 4) decoding real channel data.
//   3. One HLS synthesis run: directives in, latency/area report out.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "fixpt/complex_fixed.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_fixed.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"

int main() {
  using namespace hlsw;

  // --- 1. Fixed-point datatypes --------------------------------------------
  // sc_fixed<8,3,SC_RND,SC_SAT> equivalent: 8 bits, 3 integer bits.
  fixpt::fixed<8, 3, fixpt::Quant::kRnd, fixpt::Ovf::kSat> a(1.72);
  fixpt::fixed<8, 3> b(-0.875);
  const auto product = a * b;  // full precision: fixed<16,6>
  std::printf("fixpt: %.5f * %.5f = %.6f (exact, 16-bit product)\n",
              a.to_double(), b.to_double(), product.to_double());

  fixpt::complex_fixed<10, 0> c(0.25, -0.125), d(0.375, 0.4375);
  std::printf("fixpt: (%.3f%+.3fj)*(%.3f%+.3fj) = (%.5f%+.5fj)\n",
              c.r().to_double(), c.i().to_double(), d.r().to_double(),
              d.i().to_double(), (c * d).r().to_double(),
              (c * d).i().to_double());

  // --- 2. The paper's decoder on a noisy multipath channel -----------------
  qam::LinkConfig cfg;
  qam::LinkStimulus train(cfg);
  const qam::QamDecoderFloat reference = qam::train_float_reference(&train, 4000);

  qam::QamDecoderFixed<> decoder;
  for (int k = 0; k < 8; ++k)
    decoder.set_ffe_coeff(k, qam::quantize_coeff<10>(reference.ffe_coeff(k)));
  for (int k = 0; k < 16; ++k)
    decoder.set_dfe_coeff(k, qam::quantize_coeff<10>(reference.dfe_coeff(k)));

  std::printf("\n64-QAM decode over ISI+AWGN channel (SNR %.0f dB):\n",
              cfg.channel.snr_db);
  int shown = 0, correct = 0;
  for (int n = 0; n < 40; ++n) {
    const qam::LinkSample s = train.next();
    const qam::QamDecoderFixed<>::input_type x_in[2] = {
        {fixpt::fixed<10, 0>::from_raw(
             fixpt::wide_int<10>(static_cast<long long>(s.q0.re))),
         fixpt::fixed<10, 0>::from_raw(
             fixpt::wide_int<10>(static_cast<long long>(s.q0.im)))},
        {fixpt::fixed<10, 0>::from_raw(
             fixpt::wide_int<10>(static_cast<long long>(s.q1.re))),
         fixpt::fixed<10, 0>::from_raw(
             fixpt::wide_int<10>(static_cast<long long>(s.q1.im)))}};
    fixpt::wide_int<6, false> word;
    decoder.decode(x_in, &word);
    const int want = train.sent_delayed(cfg.decision_delay);
    if (n >= 8) {  // let the pipeline fill
      const bool ok = static_cast<int>(word.to_uint64()) == want;
      correct += ok;
      if (shown++ < 6)
        std::printf("  symbol %2d: decoded %2llu, sent %2d  %s\n", n,
                    word.to_uint64(), want, ok ? "ok" : "ERR");
    }
  }
  std::printf("  ... %d/32 correct after pipeline fill\n", correct);

  // --- 3. One synthesis run --------------------------------------------------
  const auto arch = qam::table1_architectures()[0];  // the merged default
  const auto result = hls::run_synthesis(qam::build_qam_decoder_ir(),
                                         arch.dir, hls::TechLibrary::asic90());
  std::printf("\nHLS synthesis of qam_decoder with '%s' directives:\n",
              arch.name.c_str());
  std::printf("%s", hls::synthesis_summary(result,
                                           hls::TechLibrary::asic90()).c_str());
  return 0;
}
