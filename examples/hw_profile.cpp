// The closed predicted-vs-measured loop, end to end: synthesize one
// architecture with on-chip perf counters, run the instrumented RTL
// through the cycle-accurate simulator and both vsim backends, read the
// counters back, and reconcile every measurement against the schedule's
// predictions and the certified feasibility lower bounds.
//
// Usage: hw_profile [arch-name] [symbols] [--report <path>]
//        (defaults: merge+pipe — the architecture where the schedule and
//        emitted timing models genuinely differ — 8 symbols, report to
//        profile_run.json; "none" disables the artifact)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hls/profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "vsim/profile.h"

int main(int argc, char** argv) {
  using namespace hlsw;
  std::string pick = "merge+pipe";
  int symbols = 8;
  std::string report = "profile_run.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report = argv[++i];
    } else if (std::atoi(argv[i]) > 0) {
      symbols = std::atoi(argv[i]);
    } else {
      pick = argv[i];
    }
  }
  obs::set_enabled(true);

  const qam::Architecture* arch = nullptr;
  auto archs = qam::exploration_architectures();
  for (const auto& a : qam::table1_architectures()) archs.push_back(a);
  for (const auto& a : archs)
    if (a.name == pick) arch = &a;
  if (arch == nullptr) {
    std::printf("no architecture named '%s'; known:\n", pick.c_str());
    for (const auto& a : archs) std::printf("  %s\n", a.name.c_str());
    return 1;
  }

  qam::LinkStimulus stim((qam::LinkConfig()));
  vsim::ProfileRunOptions opts;
  if (report != "none") opts.report_path = report;
  const vsim::ProfileRunResult res = vsim::profile_run(
      qam::build_qam_decoder_ir(), arch->dir, hls::TechLibrary::asic90(),
      qam::link_input_batch(&stim, symbols), opts);

  std::printf("%s: predicted %d cycles (schedule), feasibility floor %d, "
              "%zu counters, %zu legs\n\n",
              res.function.c_str(), res.synthesis.latency_cycles(),
              res.feasibility.bounds.min_latency_cycles,
              res.counter_map.size(), res.counters.size());
  for (const hls::ProfileReport& rep : res.reports) {
    std::printf("[%s] measured %lld active cycles/invocation "
                "(schedule predicts %lld, serialized emission %lld)\n",
                rep.source.c_str(), rep.measured_active_cycles,
                rep.predicted_latency_cycles, rep.emitted_latency_cycles);
    for (const auto& l : rep.loops) {
      if (!l.is_loop) continue;
      std::printf("  loop %-12s trip %2d  II sched %d  measured %.2f  "
                  "stall %lld\n",
                  l.label.c_str(), l.trip, l.scheduled_ii, l.measured_ii,
                  l.measured_stall);
    }
    for (const auto& d : rep.deviations)
      std::printf("  %s: %s\n", d.explained ? "explained" : "DEVIATION",
                  d.what.c_str());
  }
  for (const auto& s : res.cross_issues)
    std::printf("CROSS-LEG: %s\n", s.c_str());
  for (const auto& s : res.notes) std::printf("note: %s\n", s.c_str());

  std::printf("\n%s\n",
              obs::MetricsRegistry::instance().summary_table().c_str());
  if (!opts.report_path.empty())
    std::printf("profile run report written: %s\n",
                opts.report_path.c_str());
  std::printf("verdict: %s\n", res.ok() ? "MEASURED MATCHES PREDICTED"
                                        : "UNEXPLAINED DEVIATIONS");
  return res.ok() ? 0 : 1;
}
