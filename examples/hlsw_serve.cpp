// hlsw_serve: the synthesis-as-a-service daemon.
//
// Hosts the synthesis/DSE/cosim/verify/profile pipelines behind a unix
// socket (optionally TCP), sharing one warm synthesis cache across every
// client. See docs/SERVER.md for the protocol.
//
//   ./build/examples/hlsw_serve --socket /tmp/hlsw.sock --workers 4
//   ./build/examples/hlsw_serve --socket /tmp/hlsw.sock --tcp 7340 \
//       --trace /tmp/hlsw_trace.json --allow-shutdown
//   ./build/examples/hlsw_serve --demo        # self-contained smoke run
//
// The daemon drains gracefully on SIGINT/SIGTERM or (with
// --allow-shutdown) a client `shutdown` op: accepted jobs finish, every
// response is written, then trace buffers flush to --trace and the
// process exits 0.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "obs/json.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

hlsw::serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

// --demo: start the daemon on a private socket, run a short client session
// against it from this same process, and drain. Doubles as the example's
// smoke test: it exercises both halves of the protocol end to end.
int run_demo() {
  using hlsw::obs::Json;
  const std::string sock = "/tmp/hlsw_serve_demo.sock";
  hlsw::serve::ServerOptions opts;
  opts.unix_path = sock;
  opts.workers = 2;
  opts.allow_shutdown_op = true;
  hlsw::serve::Server server(opts);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "start failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("demo daemon listening on %s\n", sock.c_str());

  int rc = 1;
  std::thread client_thread([&] {
    hlsw::serve::Client client;
    std::string cerr;
    if (!client.connect_unix(sock, &cerr)) {
      std::fprintf(stderr, "connect failed: %s\n", cerr.c_str());
      return;
    }
    Json resp;
    // Pipelined synth: the paper's Table 1 "merge" and "merge+unroll2"
    // architectures, submitted back to back, collected in order.
    Json merge = Json::object().set(
        "directives", Json::object().set("auto_merge", true));
    Json unroll2 = Json::object().set(
        "directives",
        Json::object()
            .set("auto_merge", true)
            .set("loops",
                 Json::object()
                     .set("ffe", Json::object().set("unroll", 2))
                     .set("dfe", Json::object().set("unroll", 2))));
    merge.set("design", "qam_decoder");
    unroll2.set("design", "qam_decoder");
    const long long id1 = client.submit("synth", merge, "demo", &cerr);
    const long long id2 = client.submit("synth", unroll2, "demo", &cerr);
    if (id1 < 0 || id2 < 0) return;
    for (const long long id : {id1, id2}) {
      if (!client.wait(id, &resp, &cerr)) {
        std::fprintf(stderr, "wait failed: %s\n", cerr.c_str());
        return;
      }
      const Json* r = resp.find("result");
      if (r == nullptr) {
        std::fprintf(stderr, "job %lld failed: %s\n", id,
                     resp.dump().c_str());
        return;
      }
      std::printf("synth #%lld: latency %lld cycles, area %.0f%s\n", id,
                  r->find("latency_cycles")->as_int(),
                  r->find("area")->as_double(),
                  r->find("cached")->as_bool() ? " (cached)" : "");
    }
    // Same configuration again: must be a cache hit now.
    if (!client.call("synth", merge, &resp, &cerr, "demo")) return;
    std::printf("synth repeat: cached=%s\n",
                resp.find("result")->find("cached")->as_bool() ? "true"
                                                               : "false");
    if (!client.call("metrics", Json(), &resp, &cerr)) return;
    const Json& cache =
        *resp.find("result")->find("server")->find("synth_cache");
    std::printf("cache: size=%lld hits=%.0f misses=%.0f hit_rate=%.2f\n",
                cache.find("size")->as_int(), cache.find("hits")->as_double(),
                cache.find("misses")->as_double(),
                cache.find("hit_rate")->as_double());
    if (!client.call("shutdown", Json(), &resp, &cerr)) return;
    rc = 0;
  });

  server.wait();
  client_thread.join();
  server.stop();
  std::printf("demo daemon drained\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  hlsw::serve::ServerOptions opts;
  opts.unix_path = "/tmp/hlsw.sock";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") return run_demo();
    if (arg == "--socket" && i + 1 < argc) {
      opts.unix_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      opts.tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      opts.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--trace" && i + 1 < argc) {
      opts.trace_path = argv[++i];
      opts.enable_obs = true;
    } else if (arg == "--allow-shutdown") {
      opts.allow_shutdown_op = true;
    } else {
      std::fprintf(stderr,
                   "usage: hlsw_serve [--socket PATH] [--tcp PORT] "
                   "[--workers N] [--trace PATH] [--allow-shutdown] "
                   "[--demo]\n");
      return 2;
    }
  }

  hlsw::serve::Server server(opts);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "hlsw_serve: %s\n", err.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::printf("hlsw_serve listening on %s", opts.unix_path.c_str());
  if (opts.tcp_port >= 0)
    std::printf(" and %s:%d", opts.tcp_host.c_str(), server.tcp_port());
  std::printf(" (%u workers)\n",
              opts.workers ? opts.workers
                           : hlsw::util::ThreadPool::default_thread_count());
  server.wait();   // until SIGINT/SIGTERM or a shutdown op
  server.stop();   // graceful drain; flushes --trace
  g_server = nullptr;
  std::printf("hlsw_serve drained\n");
  return 0;
}
