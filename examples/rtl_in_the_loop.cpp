// RTL-in-the-loop link simulation: the complete Figure 1 verification
// story in one run. The receiver in the link is not a C model but the
// cycle-accurate simulation of the GENERATED hardware (scheduled FSM +
// datapath) for a chosen Table 1 architecture — while the untimed C model
// runs in lockstep as the checker. Prints SER, the number of hardware
// cycles simulated, and the emulated real-time data rate at 100 MHz.
//
// Usage: rtl_in_the_loop [arch-name] [symbols]   (default: merge+U2, 5000)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dsp/metrics.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/sim.h"
#include "rtl/testbench.h"
#include "rtl/verilog.h"
#include "vsim/harness.h"

int main(int argc, char** argv) {
  using namespace hlsw;
  const std::string pick = argc > 1 ? argv[1] : "merge+U2";
  const int symbols = argc > 2 ? std::atoi(argv[2]) : 5000;

  const qam::Architecture* arch = nullptr;
  for (const auto& a : qam::exploration_architectures())
    if (a.name == pick) {
      static qam::Architecture chosen;
      chosen = a;
      arch = &chosen;
    }
  if (!arch) {
    std::fprintf(stderr, "unknown architecture '%s'\n", pick.c_str());
    return 1;
  }

  const auto ir = qam::build_qam_decoder_ir();
  const auto r = hls::run_synthesis(ir, arch->dir, hls::TechLibrary::asic90());
  std::printf("architecture '%s': %d cycles/symbol @ %.0f ns -> %.2f Mbps "
              "in hardware\n\n",
              arch->name.c_str(), r.latency_cycles(), r.latency_ns(),
              r.data_rate_mbps(6));

  // Train the float reference, download coefficients into BOTH models.
  qam::LinkConfig cfg;
  qam::LinkStimulus stim(cfg);
  const auto trained = qam::train_float_reference(&stim, 6000);
  hls::Interpreter golden(r.transformed);
  rtl::Simulator dut(r.transformed, r.schedule);
  golden.set_array_state("ffe_c", qam::coeffs_to_fxvalues(trained, true, 10));
  golden.set_array_state("dfe_c", qam::coeffs_to_fxvalues(trained, false, 10));
  dut.set_array_state("ffe_c", qam::coeffs_to_fxvalues(trained, true, 10));
  dut.set_array_state("dfe_c", qam::coeffs_to_fxvalues(trained, false, 10));

  dsp::ErrorCounter errs;
  long long mismatches = 0;
  for (int n = 0; n < symbols; ++n) {
    const qam::LinkSample s = stim.next();
    hls::PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    const auto a = golden.run(io);
    const auto b = dut.run(io);
    const long long got = static_cast<long long>(b.vars.at("data").re);
    if (static_cast<long long>(a.vars.at("data").re) != got) ++mismatches;
    const int want = stim.sent_delayed(cfg.decision_delay);
    if (want >= 0 && n > 16) errs.update(want, static_cast<int>(got & 63), 6);
  }

  std::printf("simulated %lld hardware cycles for %d symbols\n",
              dut.cycles(), symbols);
  std::printf("RTL vs untimed C model: %lld mismatches (must be 0)\n",
              mismatches);
  std::printf("link SER through the generated hardware: %.3e (%llu errors)\n",
              errs.ser(),
              static_cast<unsigned long long>(errs.symbol_errors()));
  std::printf("emulated real time at 100 MHz: %.3f ms of air time\n",
              dut.cycles() * 10.0 / 1e6);

  // Close the loop on the emitted TEXT too: generate the self-checking
  // testbench and execute module + testbench with the in-process
  // event-driven Verilog simulator (vsim) — no external tools.
  std::vector<hls::PortIo> vecs;
  qam::LinkStimulus s2(cfg);
  for (int i = 0; i < 8; ++i) {
    const auto s = s2.next();
    hls::PortIo io;
    io.arrays["x_in"] = {s.q0, s.q1};
    vecs.push_back(std::move(io));
  }
  const auto vectors = rtl::capture_vectors(r.transformed, r.schedule, vecs);
  rtl::VerilogOptions vopts;
  vopts.module_name = "qam_decoder";
  const std::string module =
      rtl::emit_verilog(r.transformed, r.schedule, vopts);
  const std::string tb =
      rtl::emit_testbench(r.transformed, vectors, "qam_decoder");
  const auto tbres = vsim::run_testbench(module + "\n" + tb, "qam_decoder_tb");
  std::printf("\nemitted Verilog testbench (8 vectors) replayed in-process "
              "by vsim: %s\n",
              tbres.passed ? "PASS" : "FAIL");
  return mismatches == 0 && tbres.passed ? 0 : 2;
}
