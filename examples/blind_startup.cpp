// Blind receiver startup — the two pieces the paper's section 4 leaves out
// ("we have not implemented details of how the training sequence is
// generated or blind adaptation is performed"), composed end to end:
//
//   1. CMA blind equalization opens the eye with zero training symbols
//      (modulus dispersion drops by an order of magnitude);
//   2. a decision-directed carrier phase loop removes CMA's arbitrary
//      rotation;
//   3. decision-directed sign-LMS takes over and tracks.
//
// Usage: blind_startup [snr_db]   (default 34)
#include <cstdio>
#include <cstdlib>

#include "dsp/channel.h"
#include "dsp/lms.h"
#include "dsp/metrics.h"
#include "dsp/phase.h"
#include "dsp/prbs.h"
#include "dsp/qam.h"

int main(int argc, char** argv) {
  using namespace hlsw::dsp;
  QamConstellation qam(64);
  const double r2 = cma_r2(64);

  ChannelConfig ccfg;
  ccfg.taps = {{1.10, 0.0}, {1.06, 0.0}, {0.08, 0.05}, {-0.04, 0.02}};
  ccfg.snr_db = argc > 1 ? std::atof(argv[1]) : 34.0;
  ccfg.symbol_energy = qam.average_energy();
  MultipathChannel ch(ccfg);
  Prbs prbs(Prbs::kPrbs15, 0x155);

  const int taps = 8;
  std::vector<std::complex<double>> c(taps, {0, 0});
  c[taps / 2] = {0.45, 0};
  std::vector<std::complex<double>> line(taps, {0, 0});
  CarrierPhaseLoop phase;

  std::printf("64-QAM blind startup at %.0f dB SNR (no training symbols)\n\n",
              ccfg.snr_db);

  auto step = [&](bool adapt_cma, bool adapt_dd, double mu) {
    const auto pt = qam.map(prbs.next_word(6));
    const auto pair = ch.send(pt);
    for (int k = taps - 1; k >= 2; --k) line[static_cast<size_t>(k)] =
        line[static_cast<size_t>(k - 2)];
    line[0] = pair.s0;
    line[1] = pair.s1;
    std::complex<double> y{0, 0};
    for (int k = 0; k < taps; ++k)
      y += c[static_cast<size_t>(k)] * line[static_cast<size_t>(k)];
    if (adapt_cma) adapt_taps(AdaptAlgo::kLms, c, line, cma_error(y, r2), mu);
    const auto yc = phase.correct(y);
    const auto dec = qam.slice_point(yc);
    if (adapt_dd) {
      phase.update(yc, dec);
      // Rotate the decision error back into the equalizer's frame.
      const auto e =
          (dec - yc) * std::exp(std::complex<double>(0, phase.theta()));
      adapt_taps(AdaptAlgo::kSignLms, c, line, e, mu);
    }
    return std::make_pair(y, yc);
  };

  // Phase 1: CMA only.
  double disp = 0;
  int cnt = 0;
  for (int n = 0; n < 40000; ++n) {
    const auto [y, yc] = step(true, false, 0.05);
    if (n >= 38000) {
      const double d = std::norm(y) - r2;
      disp += d * d;
      ++cnt;
    }
  }
  std::printf("phase 1 (CMA, 40k symbols): modulus dispersion %.5f\n",
              disp / cnt);

  // Phase 2+3: carrier phase + decision-directed tracking.
  MseTracker mse(0.02, 2000);
  for (int n = 0; n < 20000; ++n) {
    const auto [y, yc] = step(false, true, 1.0 / 256);
    (void)y;
    mse.update(qam.slice_point(yc) - yc);
  }
  std::printf("phase 2 (DD + carrier loop, 20k symbols): residual MSE %.1f "
              "dB, theta %.3f rad\n",
              mse.windowed_mse_db(), phase.theta());
  std::printf("\n(decision MSE well below the -22 dB slicer margin means the "
              "blind chain closed without a single training symbol)\n");
  return 0;
}
