// Link-level simulation of the Figure 3 system: trains the adaptive
// FFE+DFE over a multipath channel, prints the MSE learning curve, then
// switches to decision-directed tracking and reports SER — first in
// floating point, then on the bit-accurate fixed-point decoder.
//
// Usage: equalizer_convergence [snr_db]     (default 36)
#include <cstdio>
#include <cstdlib>

#include "dsp/metrics.h"
#include "qam/decoder_fixed.h"
#include "qam/link.h"

int main(int argc, char** argv) {
  using namespace hlsw;
  qam::LinkConfig cfg;
  if (argc > 1) cfg.channel.snr_db = std::atof(argv[1]);

  std::printf("64-QAM over T/2 multipath (%zu taps), SNR %.1f dB, sign-LMS "
              "mu = 2^-8\n\n",
              cfg.channel.taps.size(), cfg.channel.snr_db);

  // --- Training (float reference) -----------------------------------------
  qam::LinkStimulus stim(cfg);
  qam::QamDecoderFloat dec;
  dsp::MseTracker mse(0.05, 256);
  std::vector<std::complex<double>> sent;
  std::printf("training (known symbols):\n  %-8s %s\n", "symbol", "MSE dB");
  for (int n = 0; n < 8000; ++n) {
    const qam::LinkSample s = stim.next();
    sent.push_back(s.point);
    const std::complex<double>* tr =
        static_cast<int>(sent.size()) > cfg.decision_delay
            ? &sent[sent.size() - 1 - static_cast<size_t>(cfg.decision_delay)]
            : nullptr;
    dec.decode(s.s0, s.s1, tr);
    mse.update(dec.last_error());
    if (n == 100 || n == 500 || n == 1000 || n == 2000 || n == 4000 ||
        n == 7999)
      std::printf("  %-8d %6.1f\n", n, mse.windowed_mse_db());
  }

  // --- Decision-directed tracking: float vs fixed --------------------------
  dsp::ErrorCounter ef, ex;
  qam::QamDecoderFixed<> fx;
  for (int k = 0; k < 8; ++k)
    fx.set_ffe_coeff(k, qam::quantize_coeff<10>(dec.ffe_coeff(k)));
  for (int k = 0; k < 16; ++k)
    fx.set_dfe_coeff(k, qam::quantize_coeff<10>(dec.dfe_coeff(k)));

  const int track = 30000;
  for (int n = 0; n < track; ++n) {
    const qam::LinkSample s = stim.next();
    const int want = stim.sent_delayed(cfg.decision_delay);
    const int got_f = dec.decode(s.s0, s.s1);
    const qam::QamDecoderFixed<>::input_type x_in[2] = {
        {fixpt::fixed<10, 0>::from_raw(
             fixpt::wide_int<10>(static_cast<long long>(s.q0.re))),
         fixpt::fixed<10, 0>::from_raw(
             fixpt::wide_int<10>(static_cast<long long>(s.q0.im)))},
        {fixpt::fixed<10, 0>::from_raw(
             fixpt::wide_int<10>(static_cast<long long>(s.q1.re))),
         fixpt::fixed<10, 0>::from_raw(
             fixpt::wide_int<10>(static_cast<long long>(s.q1.im)))}};
    fixpt::wide_int<6, false> word;
    fx.decode(x_in, &word);
    if (want >= 0 && n > 16) {
      ef.update(want, got_f, 6);
      ex.update(want, static_cast<int>(word.to_uint64()), 6);
    }
  }
  std::printf("\ndecision-directed tracking over %d symbols:\n", track);
  std::printf("  float reference : SER %.3e  BER %.3e\n", ef.ser(), ef.ber());
  std::printf("  fixed (10-bit)  : SER %.3e  BER %.3e\n", ex.ser(), ex.ber());
  std::printf("\n(at 30 dB and below the waterfall emerges; try "
              "`equalizer_convergence 22`)\n");
  return 0;
}
