// Using the HLS engine on your own algorithm: a 16-tap real FIR with
// coefficients in ROM-like registers, captured with the builder API,
// synthesized at three architectures, verified by executing the IR, and
// emitted as Verilog. Demonstrates the library as a general C-based
// hardware design flow, independent of the paper's case study.
#include <cstdio>
#include <random>

#include "hls/bitwidth_pass.h"
#include "hls/builder.h"
#include "hls/interp.h"
#include "hls/report.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"

namespace {

using namespace hlsw;
using hls::fx;
using hls::PortDir;

// y = sum c[k] * x[k] over a 16-deep delay line, one new sample per call.
hls::Function make_fir16() {
  hls::FunctionBuilder fb("fir16");
  const int x_in = fb.add_var("x_in", fx(12, 0), false, PortDir::kIn);
  const int y = fb.add_var("y", fx(16, 2), false, PortDir::kOut);
  const int line = fb.add_array("line", 16, fx(12, 0), true);
  const int coef = fb.add_array("coef", 16, fx(12, 0), true);
  {
    auto b = fb.block("in");
    b.array_write(line, {0, 0}, b.var_read(x_in));
    b.var_write(y, b.cnst(fx(16, 2), 0.0));
  }
  {
    auto l = fb.loop("mac", 16);
    const int p = l.mul(l.array_read(line, {1, 0}), l.array_read(coef, {1, 0}));
    l.var_write(y, l.add(l.var_read(y), p));
  }
  {
    // shift the delay line: line[k+1] = line[k], descending.
    auto l = fb.loop("shift", 15);
    l.array_write(line, {-1, 15}, l.array_read(line, {-1, 14}));
  }
  return fb.build();
}

}  // namespace

int main() {
  const hls::Function fir = make_fir16();
  const auto tech = hls::TechLibrary::asic90();

  std::printf("custom design: 16-tap FIR captured with the builder API\n\n");
  std::printf("%s\n", fir.dump().c_str());

  struct Config {
    const char* name;
    hls::Directives dir;
  };
  Config cfgs[3];
  cfgs[0].name = "sequential";
  cfgs[1].name = "merged+U4";
  cfgs[1].dir.merge_groups = {{"mac", "shift"}};
  cfgs[1].dir.loops["mac"].unroll = 4;
  cfgs[1].dir.loops["shift"].unroll = 4;
  cfgs[2].name = "pipelined(4ns)";
  cfgs[2].dir.clock_period_ns = 4.0;
  cfgs[2].dir.loops["mac"].pipeline_ii = 1;

  for (const auto& c : cfgs) {
    const auto r = hls::run_synthesis(fir, c.dir, tech);
    std::printf("%-15s latency %3d cycles @%.1f ns = %4.0f ns, area %.0f "
                "gates",
                c.name, r.latency_cycles(), r.schedule.clock_ns,
                r.latency_ns(), r.area.total);
    for (const auto& w : r.warnings) std::printf("\n  ! %s", w.c_str());
    std::printf("\n");
  }

  // Verify the merged+U4 hardware against the transformed IR (the engine's
  // guarantee). Note the merge warning above: mac+shift merging reorders
  // the delay-line accesses, so the merged design is intentionally NOT
  // bit-equivalent to the sequential source — the engine reports it.
  const auto rs = hls::run_synthesis(fir, cfgs[1].dir, tech);
  hls::Interpreter golden(rs.transformed);
  rtl::Simulator sim(rs.transformed, rs.schedule);
  // Preload matching coefficients (lowpass-ish ramp).
  std::vector<hls::FxValue> coefs(16);
  for (int k = 0; k < 16; ++k) {
    coefs[static_cast<size_t>(k)].fw = 12;
    coefs[static_cast<size_t>(k)].re = 64 + 8 * k;
  }
  golden.set_array_state("coef", coefs);
  sim.set_array_state("coef", coefs);
  std::mt19937_64 rng(42);
  bool all_match = true;
  for (int n = 0; n < 200; ++n) {
    hls::PortIo io;
    hls::FxValue v;
    v.fw = 12;
    v.re = static_cast<int>(rng() % 4096) - 2048;
    io.vars["x_in"] = v;
    const auto a = golden.run(io);
    const auto b = sim.run(io);
    all_match &= a.vars.at("y") == b.vars.at("y");
  }
  std::printf("\nmerged+U4 RTL simulation vs its scheduled-IR model over 200 "
              "samples: %s\n",
              all_match ? "bit-exact" : "MISMATCH");

  // Bitwidth reduction on the design.
  hls::Function narrowed = fir;
  const auto red = hls::reduce_bitwidths(&narrowed);
  std::printf("bitwidth pass: %zu widths narrowed, %lld bits saved\n",
              red.reductions.size(), red.bits_saved);

  // And the RTL hand-off.
  const std::string v = rtl::emit_verilog(rs.transformed, rs.schedule);
  std::printf("generated %zu bytes of Verilog (module fir16)\n", v.size());
  return 0;
}
