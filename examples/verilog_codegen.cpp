// RTL generation: synthesize an architecture of the paper's decoder and
// emit the synthesizable Verilog module (the flow's hand-off to RTL
// synthesis / FPGA prototyping).
//
// Usage: verilog_codegen [arch-name] [output.v]
//        (defaults: merge, stdout)
#include <cstdio>
#include <fstream>
#include <iostream>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "rtl/verilog.h"

int main(int argc, char** argv) {
  using namespace hlsw;
  const std::string pick = argc > 1 ? argv[1] : "merge";

  for (const auto& a : qam::exploration_architectures()) {
    if (a.name != pick) continue;
    const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                                      hls::TechLibrary::asic90());
    rtl::VerilogOptions opts;
    opts.module_name = "qam_decoder";
    const std::string v = rtl::emit_verilog(r.transformed, r.schedule, opts);
    if (argc > 2) {
      std::ofstream out(argv[2]);
      out << v;
      std::fprintf(stderr,
                   "wrote %zu bytes of Verilog for '%s' (%d cycles, %.0f "
                   "gates) to %s\n",
                   v.size(), pick.c_str(), r.latency_cycles(), r.area.total,
                   argv[2]);
    } else {
      std::cout << v;
    }
    return 0;
  }
  std::fprintf(stderr, "no architecture named '%s'\n", pick.c_str());
  return 1;
}
