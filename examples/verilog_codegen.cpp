// RTL generation, closed loop: synthesize an architecture of the paper's
// decoder, emit the synthesizable Verilog module plus its self-checking
// testbench, then execute both in-process with hlsw::vsim — no external
// Verilog simulator involved. Prints the testbench's own PASS/FAIL verdict.
//
// Usage: verilog_codegen [arch-name] [output.v]
//        (defaults: merge, stdout)
#include <cstdio>
#include <fstream>
#include <iostream>

#include "hls/report.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "qam/link.h"
#include "rtl/testbench.h"
#include "rtl/verilog.h"
#include "vsim/harness.h"

int main(int argc, char** argv) {
  using namespace hlsw;
  const std::string pick = argc > 1 ? argv[1] : "merge";

  for (const auto& a : qam::exploration_architectures()) {
    if (a.name != pick) continue;
    const auto r = hls::run_synthesis(qam::build_qam_decoder_ir(), a.dir,
                                      hls::TechLibrary::asic90());
    rtl::VerilogOptions opts;
    opts.module_name = "qam_decoder";
    const std::string v = rtl::emit_verilog(r.transformed, r.schedule, opts);
    if (argc > 2) {
      std::ofstream out(argv[2]);
      out << v;
      std::fprintf(stderr,
                   "wrote %zu bytes of Verilog for '%s' (%d cycles, %.0f "
                   "gates) to %s\n",
                   v.size(), pick.c_str(), r.latency_cycles(), r.area.total,
                   argv[2]);
    } else {
      std::cout << v;
    }

    // Verify the emitted text right here: capture expected outputs from the
    // cycle-accurate simulator, render the self-checking testbench, and run
    // module + testbench through the in-process event-driven simulator.
    std::vector<hls::PortIo> vecs;
    qam::LinkStimulus stim((qam::LinkConfig()));
    for (int i = 0; i < 8; ++i) {
      const auto s = stim.next();
      hls::PortIo io;
      io.arrays["x_in"] = {s.q0, s.q1};
      vecs.push_back(std::move(io));
    }
    const auto vectors = rtl::capture_vectors(r.transformed, r.schedule, vecs);
    const std::string tb =
        rtl::emit_testbench(r.transformed, vectors, "qam_decoder");
    const vsim::TestbenchResult res =
        vsim::run_testbench(v + "\n" + tb, "qam_decoder_tb");
    for (const auto& line : res.display)
      std::fprintf(stderr, "  tb| %s\n", line.c_str());
    std::fprintf(stderr, "vsim: testbench %s after %lld ns\n",
                 res.passed ? "PASS" : "FAIL",
                 static_cast<long long>(res.end_time));
    return res.passed ? 0 : 2;
  }
  std::fprintf(stderr, "no architecture named '%s'\n", pick.c_str());
  return 1;
}
