// Architecture exploration walkthrough: the designer loop of the paper's
// Figure 1 — pick directives, synthesize, inspect the reports (summary,
// Gantt chart, bill of materials, critical path), repeat. Runs the full
// Table 1 set plus the extended exploration set and then deep-dives one
// architecture chosen on the command line.
//
// Usage: architecture_explorer [arch-name] [--trace <path>]
//                              [--dse-report <path>]       (default arch:
//                              merge+U2)
//
// Runs with tracing on: at exit it prints the metrics summary and writes
// the Chrome trace (default explorer_trace.json; "none" disables it) —
// open it at https://ui.perfetto.dev (or chrome://tracing) to see the
// per-pass synthesis spans and the DSE candidate timeline. The automated
// sweep writes its dse_run StructuredReport to --dse-report (default
// explorer_dse_run.json; "none" disables it). See docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstring>
#include <string>

#include "hls/dse.h"
#include "hls/report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace hlsw;
  const char* pick = "merge+U2";
  std::string trace_path = "explorer_trace.json";
  std::string dse_report_path = "explorer_dse_run.json";
  for (int i = 1; i < argc; ++i) {
    const auto take = [&](const char* flag, std::string* dst) {
      if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    if (take("--trace", &trace_path)) continue;
    if (take("--dse-report", &dse_report_path)) continue;
    pick = argv[i];
  }
  obs::set_enabled(true);

  const auto tech = hls::TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();
  const auto archs = qam::exploration_architectures();

  std::printf("Exploring %zu architectures of qam_decoder (clock 10 ns, "
              "%s)\n\n",
              archs.size(), tech.name.c_str());
  std::printf("%-14s %8s %10s %10s\n", "name", "cycles", "rate Mbps",
              "area gates");
  for (const auto& a : archs) {
    const auto r = hls::run_synthesis(ir, a.dir, tech);
    std::printf("%-14s %8d %10.2f %10.0f%s\n", a.name.c_str(),
                r.latency_cycles(), r.data_rate_mbps(6), r.area.total,
                a.name == pick ? "   <-- detailed below" : "");
  }

  // Automated sweep of the same space, synthesized across a worker pool
  // with memoized synthesis. threads = 0 picks hardware concurrency; the
  // result is bit-identical to threads = 1, just faster.
  hls::DseOptions dse;
  dse.unroll_factors = {1, 2, 4, 8};
  dse.threads = 0;
  dse.cache = std::make_shared<hls::SynthesisCache>();
  dse.progress = [](const hls::DsePoint& p, const hls::DseProgress& pr) {
    std::printf("  [%2zu/%2zu] %-24s %3d cycles  %8.0f gates  %7.1f ms%s\n",
                pr.done, pr.planned, p.name.c_str(), p.latency_cycles, p.area,
                pr.wall_ms, pr.from_cache ? "  (cached)" : "");
  };
  dse.report_path = dse_report_path == "none" ? "" : dse_report_path;
  std::printf("\nAutomated exploration (hls::explore, %u worker threads):\n",
              dse.threads ? dse.threads
                          : hlsw::util::ThreadPool::default_thread_count());
  const hls::DseResult r = hls::explore(ir, dse, tech);
  std::printf("%zu configurations (%zu scheduled, %zu served from cache, "
              "%zu redirected as infeasible, %zu pruned as dominated); "
              "Pareto front:\n",
              r.points.size(), r.cache_misses, r.cache_hits,
              r.pruned_infeasible, r.pruned_dominated);
  for (const auto* p : r.pareto_front())
    std::printf("  %-24s %3d cycles  %8.0f gates\n", p->name.c_str(),
                p->latency_cycles, p->area);

  bool found = false;
  for (const auto& a : archs) {
    if (a.name != pick) continue;
    found = true;
    const auto r = hls::run_synthesis(ir, a.dir, tech);
    std::printf("\n%s\n", std::string(72, '=').c_str());
    std::printf("Detailed reports for '%s' (%s)\n", a.name.c_str(),
                a.description.c_str());
    std::printf("%s\n", std::string(72, '=').c_str());
    std::printf("\n%s\n", hls::synthesis_summary(r, tech).c_str());
    std::printf("%s\n", hls::bill_of_materials(r).c_str());
    std::printf("%s\n", hls::critical_path_report(r, tech).c_str());
    std::printf("%s\n", hls::gantt_chart(r).c_str());
  }
  if (!found)
    std::printf("\nno architecture named '%s'; pass one of the names above\n",
                pick);

  // Observability wrap-up: what the whole session did, and where.
  std::printf("%s\n", obs::MetricsRegistry::instance().summary_table().c_str());
  if (trace_path != "none" &&
      obs::TraceSession::instance().write_chrome_trace(trace_path))
    std::printf("trace written: %s (open in "
                "https://ui.perfetto.dev or chrome://tracing)\n",
                trace_path.c_str());
  if (!dse.report_path.empty())
    std::printf("dse run report written: %s\n", dse.report_path.c_str());
  return found ? 0 : 1;
}
