// Architecture exploration walkthrough: the designer loop of the paper's
// Figure 1 — pick directives, synthesize, inspect the reports (summary,
// Gantt chart, bill of materials, critical path), repeat. Runs the full
// Table 1 set plus the extended exploration set and then deep-dives one
// architecture chosen on the command line.
//
// Usage: architecture_explorer [arch-name]     (default: merge+U2)
//
// Runs with tracing on: at exit it prints the metrics summary and writes
// explorer_trace.json — open it at https://ui.perfetto.dev (or
// chrome://tracing) to see the per-pass synthesis spans and the DSE
// candidate timeline. See docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstring>

#include "hls/dse.h"
#include "hls/report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qam/architectures.h"
#include "qam/decoder_ir.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace hlsw;
  const char* pick = argc > 1 ? argv[1] : "merge+U2";
  obs::set_enabled(true);

  const auto tech = hls::TechLibrary::asic90();
  const auto ir = qam::build_qam_decoder_ir();
  const auto archs = qam::exploration_architectures();

  std::printf("Exploring %zu architectures of qam_decoder (clock 10 ns, "
              "%s)\n\n",
              archs.size(), tech.name.c_str());
  std::printf("%-14s %8s %10s %10s\n", "name", "cycles", "rate Mbps",
              "area gates");
  for (const auto& a : archs) {
    const auto r = hls::run_synthesis(ir, a.dir, tech);
    std::printf("%-14s %8d %10.2f %10.0f%s\n", a.name.c_str(),
                r.latency_cycles(), r.data_rate_mbps(6), r.area.total,
                a.name == pick ? "   <-- detailed below" : "");
  }

  // Automated sweep of the same space, synthesized across a worker pool
  // with memoized synthesis. threads = 0 picks hardware concurrency; the
  // result is bit-identical to threads = 1, just faster.
  hls::DseOptions dse;
  dse.unroll_factors = {1, 2, 4, 8};
  dse.threads = 0;
  dse.cache = std::make_shared<hls::SynthesisCache>();
  dse.progress = [](const hls::DsePoint& p, const hls::DseProgress& pr) {
    std::printf("  [%2zu/%2zu] %-24s %3d cycles  %8.0f gates  %7.1f ms%s\n",
                pr.done, pr.planned, p.name.c_str(), p.latency_cycles, p.area,
                pr.wall_ms, pr.from_cache ? "  (cached)" : "");
  };
  dse.report_path = "explorer_dse_run.json";
  std::printf("\nAutomated exploration (hls::explore, %u worker threads):\n",
              dse.threads ? dse.threads
                          : hlsw::util::ThreadPool::default_thread_count());
  const hls::DseResult r = hls::explore(ir, dse, tech);
  std::printf("%zu configurations (%zu scheduled, %zu served from cache, "
              "%zu redirected as infeasible, %zu pruned as dominated); "
              "Pareto front:\n",
              r.points.size(), r.cache_misses, r.cache_hits,
              r.pruned_infeasible, r.pruned_dominated);
  for (const auto* p : r.pareto_front())
    std::printf("  %-24s %3d cycles  %8.0f gates\n", p->name.c_str(),
                p->latency_cycles, p->area);

  bool found = false;
  for (const auto& a : archs) {
    if (a.name != pick) continue;
    found = true;
    const auto r = hls::run_synthesis(ir, a.dir, tech);
    std::printf("\n%s\n", std::string(72, '=').c_str());
    std::printf("Detailed reports for '%s' (%s)\n", a.name.c_str(),
                a.description.c_str());
    std::printf("%s\n", std::string(72, '=').c_str());
    std::printf("\n%s\n", hls::synthesis_summary(r, tech).c_str());
    std::printf("%s\n", hls::bill_of_materials(r).c_str());
    std::printf("%s\n", hls::critical_path_report(r, tech).c_str());
    std::printf("%s\n", hls::gantt_chart(r).c_str());
  }
  if (!found)
    std::printf("\nno architecture named '%s'; pass one of the names above\n",
                pick);

  // Observability wrap-up: what the whole session did, and where.
  std::printf("%s\n", obs::MetricsRegistry::instance().summary_table().c_str());
  if (obs::TraceSession::instance().write_chrome_trace("explorer_trace.json"))
    std::printf("trace written: explorer_trace.json (open in "
                "https://ui.perfetto.dev or chrome://tracing)\n");
  std::printf("dse run report written: explorer_dse_run.json\n");
  return found ? 0 : 1;
}
