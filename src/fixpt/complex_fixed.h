// complex_fixed: complex arithmetic over fixed-point components.
//
// The paper's authors wrote a templatized `sc_complex` class (section 4.1,
// "the sc_complex class was written by the authors ... not shown here due
// to space constraints"). This file is our reconstruction of that class: a
// pair of `fixed` components with full-precision complex arithmetic, plus
// the `sign_conj()` member Figure 4 uses for sign-LMS adaptation.
//
// sign_conj() returns sign(re) - j*sign(im) with sign(v) = +1 for v >= 0
// and -1 otherwise — the standard hardware convention for sign-LMS, where
// multiplying by the result costs only adders (conditional negation), not
// multipliers. The HLS cost model exploits exactly this (see hls/tech.h).
#pragma once

#include <complex>

#include "fixpt/fixed.h"

namespace hlsw::fixpt {

template <int W, int IW, Quant Q = Quant::kTrn, Ovf O = Ovf::kWrap,
          bool S = true>
class complex_fixed {
 public:
  using scalar = fixed<W, IW, Q, O, S>;
  static constexpr int kW = W;
  static constexpr int kIW = IW;
  static constexpr bool kS = S;

  constexpr complex_fixed() = default;
  constexpr complex_fixed(long long v) : re_(v), im_(0) {}  // NOLINT
  constexpr complex_fixed(int v) : re_(v), im_(0) {}        // NOLINT
  complex_fixed(double re, double im = 0.0) : re_(re), im_(im) {}  // NOLINT

  template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
            Quant Q2, Ovf O2, bool S2>
  constexpr complex_fixed(const fixed<W1, IW1, Q1, O1, S1>& re,
                          const fixed<W2, IW2, Q2, O2, S2>& im)
      : re_(re), im_(im) {}

  template <int W2, int IW2, Quant Q2, Ovf O2, bool S2>
  constexpr complex_fixed(  // NOLINT(google-explicit-constructor)
      const complex_fixed<W2, IW2, Q2, O2, S2>& v)
      : re_(v.r()), im_(v.i()) {}

  constexpr const scalar& r() const { return re_; }
  constexpr const scalar& i() const { return im_; }
  constexpr void set_r(const scalar& v) { re_ = v; }
  constexpr void set_i(const scalar& v) { im_ = v; }

  // sign(re) - j*sign(im), each component in {+1, -1} (2 integer bits).
  constexpr complex_fixed<2, 2> sign_conj() const {
    const fixed<2, 2> one(1LL), minus_one(-1LL);
    return complex_fixed<2, 2>(re_.is_neg() ? minus_one : one,
                               im_.is_neg() ? one : minus_one);
  }

  constexpr auto conj() const {
    using R = complex_fixed<W + 1, IW + 1, Quant::kTrn, Ovf::kWrap, true>;
    return R(fixed<W + 1, IW + 1>(re_), -im_);
  }

  constexpr auto mag_sqr() const { return re_ * re_ + im_ * im_; }

  std::complex<double> to_complex_double() const {
    return {re_.to_double(), im_.to_double()};
  }

  template <typename Rhs>
  constexpr complex_fixed& operator+=(const Rhs& rhs) {
    *this = complex_fixed(*this + rhs);
    return *this;
  }
  template <typename Rhs>
  constexpr complex_fixed& operator-=(const Rhs& rhs) {
    *this = complex_fixed(*this - rhs);
    return *this;
  }

 private:
  scalar re_{};
  scalar im_{};
};

namespace detail {
template <typename Scalar>
constexpr auto make_complex(const Scalar& re, const Scalar& im) {
  return complex_fixed<Scalar::kW, Scalar::kIW, Quant::kTrn, Ovf::kWrap,
                       Scalar::kS>(re, im);
}
}  // namespace detail

template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr auto operator+(const complex_fixed<W1, IW1, Q1, O1, S1>& a,
                         const complex_fixed<W2, IW2, Q2, O2, S2>& b) {
  return detail::make_complex(a.r() + b.r(), a.i() + b.i());
}
template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr auto operator-(const complex_fixed<W1, IW1, Q1, O1, S1>& a,
                         const complex_fixed<W2, IW2, Q2, O2, S2>& b) {
  return detail::make_complex(a.r() - b.r(), a.i() - b.i());
}
template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr auto operator*(const complex_fixed<W1, IW1, Q1, O1, S1>& a,
                         const complex_fixed<W2, IW2, Q2, O2, S2>& b) {
  return detail::make_complex(a.r() * b.r() - a.i() * b.i(),
                              a.r() * b.i() + a.i() * b.r());
}

// Scalar (fixed) times complex, both orders.
template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr auto operator*(const fixed<W1, IW1, Q1, O1, S1>& a,
                         const complex_fixed<W2, IW2, Q2, O2, S2>& b) {
  return detail::make_complex(a * b.r(), a * b.i());
}
template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr auto operator*(const complex_fixed<W1, IW1, Q1, O1, S1>& a,
                         const fixed<W2, IW2, Q2, O2, S2>& b) {
  return b * a;
}

template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr bool operator==(const complex_fixed<W1, IW1, Q1, O1, S1>& a,
                          const complex_fixed<W2, IW2, Q2, O2, S2>& b) {
  return a.r() == b.r() && a.i() == b.i();
}
template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr bool operator!=(const complex_fixed<W1, IW1, Q1, O1, S1>& a,
                          const complex_fixed<W2, IW2, Q2, O2, S2>& b) {
  return !(a == b);
}

}  // namespace hlsw::fixpt
