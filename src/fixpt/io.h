// Stream output and miscellaneous value helpers for the fixpt datatypes:
// ostream operators (decimal for wide_int, scaled decimal with format
// annotation for fixed/complex_fixed), absolute value, and clamping.
#pragma once

#include <algorithm>
#include <ostream>
#include <sstream>

#include "fixpt/complex_fixed.h"

namespace hlsw::fixpt {

template <int W, bool S>
std::ostream& operator<<(std::ostream& os, const wide_int<W, S>& v) {
  return os << v.to_string();
}

template <int W, int IW, Quant Q, Ovf O, bool S>
std::ostream& operator<<(std::ostream& os, const fixed<W, IW, Q, O, S>& v) {
  return os << v.to_double();
}

template <int W, int IW, Quant Q, Ovf O, bool S>
std::ostream& operator<<(std::ostream& os,
                         const complex_fixed<W, IW, Q, O, S>& v) {
  os << v.r().to_double();
  const double im = v.i().to_double();
  os << (im < 0 ? "-" : "+") << "j" << (im < 0 ? -im : im);
  return os;
}

// Formats a fixed value with its type annotation, e.g. "0.4375 <10,0>".
template <int W, int IW, Quant Q, Ovf O, bool S>
std::string describe(const fixed<W, IW, Q, O, S>& v) {
  std::ostringstream os;
  os << v.to_double() << " <" << W << "," << IW << ">";
  return os.str();
}

// |v|, one bit wider so |min| is exact (like unary minus).
template <int W, int IW, Quant Q, Ovf O, bool S>
constexpr auto abs(const fixed<W, IW, Q, O, S>& v) {
  using R = fixed<W + 1, IW + 1, Quant::kTrn, Ovf::kWrap, true>;
  return v.is_neg() ? R(-v) : R(v);
}

// Clamps v into [lo, hi] (value comparison across formats).
template <int W, int IW, Quant Q, Ovf O, bool S, typename Lo, typename Hi>
constexpr fixed<W, IW, Q, O, S> clamp(const fixed<W, IW, Q, O, S>& v,
                                      const Lo& lo, const Hi& hi) {
  if (v < lo) return fixed<W, IW, Q, O, S>(lo);
  if (v > hi) return fixed<W, IW, Q, O, S>(hi);
  return v;
}

// Fixed-point division at caller-chosen quotient precision (division has no
// finite exact width, so unlike +/-/*, the result format must be named):
//   divide<Wq, IWq>(a, b) = a / b truncated toward zero at 2^-(Wq-IWq).
template <int Wq, int IWq, int W1, int IW1, Quant Q1, Ovf O1, bool S1,
          int W2, int IW2, Quant Q2, Ovf O2, bool S2>
constexpr fixed<Wq, IWq> divide(const fixed<W1, IW1, Q1, O1, S1>& a,
                                const fixed<W2, IW2, Q2, O2, S2>& b) {
  // raw_q = trunc( a_raw * 2^(fwq - fw1 + fw2) / b_raw ).
  constexpr int kFwQ = Wq - IWq;
  constexpr int kShift = kFwQ - (W1 - IW1) + (W2 - IW2);
  constexpr int kNumW = W1 + (kShift > 0 ? kShift : 0) + 2;
  wide_int<kNumW, true> num(a.raw());
  if constexpr (kShift > 0) {
    num <<= kShift;
  } else if constexpr (kShift < 0) {
    num >>= -kShift;
  }
  const auto q = num / b.raw();
  return fixed<Wq, IWq>::from_raw(wide_int<Wq, true>(q));
}

}  // namespace hlsw::fixpt
