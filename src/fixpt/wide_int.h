// wide_int: arbitrary-width two's-complement integer.
//
// This is the reproduction of the paper's "arbitrary-length integer types"
// (Catapult C's mc_int, SystemC's sc_bigint/sc_biguint, paper section 3.1).
// Semantics follow the mc_int model the paper advocates: binary operations
// return *full integer precision* (the result width is large enough to hold
// every representable result exactly), while assignment back into a
// narrower wide_int wraps modulo 2^W, exactly as hardware registers do.
//
// Storage is a fixed array of 64-bit limbs, little-endian, kept in a
// canonical form where bits above W-1 in the top limb replicate the sign
// bit (signed) or are zero (unsigned). Canonical form makes limb-wise
// comparison and extension trivial and is re-established after every
// mutating operation.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <type_traits>

namespace hlsw::fixpt {

namespace detail {

constexpr int limbs_for(int width) { return (width + 63) / 64; }

// Number of bits needed for the result of a binary op under the mc_int
// promotion rules (see file comment). An unsigned operand combined with a
// signed one needs one extra bit to embed its value range in a signed type.
constexpr int add_result_width(int w1, bool s1, int w2, bool s2) {
  const bool sr = s1 || s2;
  const int e1 = w1 + ((sr && !s1) ? 1 : 0);
  const int e2 = w2 + ((sr && !s2) ? 1 : 0);
  return (e1 > e2 ? e1 : e2) + 1;
}
constexpr int mul_result_width(int w1, bool s1, int w2, bool s2) {
  const bool sr = s1 || s2;
  const int e1 = w1 + ((sr && !s1) ? 1 : 0);
  const int e2 = w2 + ((sr && !s2) ? 1 : 0);
  return e1 + e2;
}

}  // namespace detail

template <int W, bool Signed = true>
class wide_int {
  static_assert(W >= 1, "wide_int width must be positive");

 public:
  static constexpr int kWidth = W;
  static constexpr bool kSigned = Signed;
  static constexpr int kLimbs = detail::limbs_for(W);

  constexpr wide_int() = default;

  // Construct from a native integer; the value wraps modulo 2^W.
  constexpr wide_int(long long v) {  // NOLINT(google-explicit-constructor)
    const uint64_t fill = (v < 0) ? ~uint64_t{0} : 0;
    limb_[0] = static_cast<uint64_t>(v);
    for (int i = 1; i < kLimbs; ++i) limb_[i] = fill;
    canonicalize();
  }
  constexpr wide_int(unsigned long long v) {  // NOLINT
    limb_[0] = v;
    for (int i = 1; i < kLimbs; ++i) limb_[i] = 0;
    canonicalize();
  }
  constexpr wide_int(int v) : wide_int(static_cast<long long>(v)) {}        // NOLINT
  constexpr wide_int(unsigned v) : wide_int(static_cast<unsigned long long>(v)) {}  // NOLINT
  constexpr wide_int(long v) : wide_int(static_cast<long long>(v)) {}       // NOLINT
  constexpr wide_int(unsigned long v) : wide_int(static_cast<unsigned long long>(v)) {}  // NOLINT

  // Converting constructor from any other wide_int. Value-preserving when
  // this type can represent the source value; otherwise wraps modulo 2^W
  // (register-assignment semantics).
  template <int W2, bool S2>
  constexpr wide_int(const wide_int<W2, S2>& v) {  // NOLINT(google-explicit-constructor)
    for (int i = 0; i < kLimbs; ++i) limb_[i] = v.ext_limb(i);
    canonicalize();
  }

  // Construct from a double, truncating the fractional part toward zero.
  // The integer part wraps modulo 2^W if out of range.
  static wide_int from_double(double v) {
    wide_int r;
    const bool neg = v < 0;
    double mag = std::trunc(std::fabs(v));
    for (int i = 0; i < kLimbs && mag > 0; ++i) {
      const double lo = std::fmod(mag, 18446744073709551616.0);  // 2^64
      r.limb_[i] = static_cast<uint64_t>(lo);
      mag = std::trunc(mag / 18446744073709551616.0);
    }
    if (neg) r = wide_int(-r);
    r.canonicalize();
    return r;
  }

  // -- Observers ------------------------------------------------------------

  // Raw limb with sign/zero extension beyond storage; usable for any index.
  constexpr uint64_t ext_limb(int i) const {
    if (i < kLimbs) return limb_[i];
    return is_neg() ? ~uint64_t{0} : 0;
  }
  constexpr uint64_t limb(int i) const { return limb_[i]; }

  constexpr bool is_neg() const {
    if constexpr (!Signed) {
      return false;
    } else {
      return bit(W - 1);
    }
  }

  constexpr bool bit(int i) const {
    assert(i >= 0);
    if (i >= 64 * kLimbs) return is_neg();
    return (limb_[i / 64] >> (i % 64)) & 1u;
  }

  constexpr bool is_zero() const {
    for (int i = 0; i < kLimbs; ++i)
      if (limb_[i] != 0) return false;
    return true;
  }

  // True if any bit in [0, n) is set. n may exceed W.
  constexpr bool any_bit_below(int n) const {
    for (int i = 0; i < n && i < 64 * kLimbs; ++i)
      if (bit(i)) return true;
    return false;
  }

  // Index of the most significant bit that differs from the sign bit, plus
  // one for the sign itself: the minimum width that holds this value.
  constexpr int min_width() const {
    const bool neg = is_neg();
    int msb = -1;
    for (int i = W - 1; i >= 0; --i) {
      if (bit(i) != neg) {
        msb = i;
        break;
      }
    }
    if constexpr (Signed) return msb + 2;  // value bits + sign bit
    return msb + 1 > 0 ? msb + 1 : 1;
  }

  constexpr long long to_int64() const {
    if constexpr (Signed) {
      return static_cast<long long>(ext_limb(0));
    } else {
      return static_cast<long long>(limb_[0]);
    }
  }
  constexpr unsigned long long to_uint64() const { return limb_[0]; }

  double to_double() const {
    // Compute the magnitude in place (two's complement negate for negative
    // values) so no wider template type is instantiated.
    std::array<uint64_t, kLimbs> mag = limb_;
    const bool neg = is_neg();
    if (neg) {
      unsigned __int128 carry = 1;
      for (int i = 0; i < kLimbs; ++i) {
        const unsigned __int128 s =
            static_cast<unsigned __int128>(~limb_[i]) + carry;
        mag[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
      }
    }
    double acc = 0;
    for (int i = kLimbs - 1; i >= 0; --i)
      acc = acc * 18446744073709551616.0 + static_cast<double>(mag[i]);
    return neg ? -acc : acc;
  }

  std::string to_string() const {
    wide_int<W + 1, true> mag = is_neg() ? wide_int<W + 1, true>(-(*this))
                                         : wide_int<W + 1, true>(*this);
    std::string out;
    if (mag.is_zero()) return "0";
    while (!mag.is_zero()) {
      uint64_t rem = 0;
      for (int i = decltype(mag)::kLimbs - 1; i >= 0; --i) {
        const unsigned __int128 cur =
            (static_cast<unsigned __int128>(rem) << 64) | mag.limb(i);
        mag.set_limb(i, static_cast<uint64_t>(cur / 10));
        rem = static_cast<uint64_t>(cur % 10);
      }
      mag.canonicalize();
      out.insert(out.begin(), static_cast<char>('0' + rem));
    }
    if (is_neg()) out.insert(out.begin(), '-');
    return out;
  }

  // Hex dump of the W-bit pattern (ceil(W/4) nibbles at most; the storage's
  // sign-extension bits above W-1 are masked off).
  std::string to_hex_string() const {
    static const char* kHex = "0123456789abcdef";
    std::string out = "0x";
    bool started = false;
    const int top_nibble = (W - 1) / 4;
    for (int nib = top_nibble; nib >= 0; --nib) {
      unsigned d = static_cast<unsigned>((limb_[nib / 16] >> ((nib % 16) * 4)) & 0xF);
      const int bits_in_nibble = W - nib * 4;  // <4 only for the top nibble
      if (bits_in_nibble < 4) d &= (1u << bits_in_nibble) - 1;
      if (!started && d == 0 && nib != 0) continue;
      started = true;
      out.push_back(kHex[d]);
    }
    return out;
  }

  // -- Mutators ---------------------------------------------------------------

  constexpr void set_bit(int i, bool b) {
    assert(i >= 0 && i < W);
    if (b)
      limb_[i / 64] |= uint64_t{1} << (i % 64);
    else
      limb_[i / 64] &= ~(uint64_t{1} << (i % 64));
    canonicalize();
  }

  constexpr void set_limb(int i, uint64_t v) { limb_[i] = v; }

  constexpr void canonicalize() {
    constexpr int top_bits = W % 64;
    if constexpr (top_bits != 0) {
      constexpr uint64_t mask = (uint64_t{1} << top_bits) - 1;
      const bool neg = Signed && ((limb_[kLimbs - 1] >> (top_bits - 1)) & 1u);
      if (neg)
        limb_[kLimbs - 1] |= ~mask;
      else
        limb_[kLimbs - 1] &= mask;
    }
  }

  // Extract a slice of Wout bits starting at bit `lsb`, zero/sign extended
  // per the *result* signedness (ac_int-style slc).
  template <int Wout, bool Sout = false>
  constexpr wide_int<Wout, Sout> slc(int lsb) const {
    wide_int<Wout, Sout> r;
    for (int i = 0; i < wide_int<Wout, Sout>::kLimbs; ++i) {
      const int base = lsb + i * 64;
      uint64_t v = ext_limb(base / 64) >> (base % 64);
      if (base % 64 != 0) v |= ext_limb(base / 64 + 1) << (64 - base % 64);
      r.set_limb(i, v);
    }
    r.canonicalize();
    return r;
  }

  // -- Compound ops (wrap to own width, register semantics) -------------------

  template <int W2, bool S2>
  constexpr wide_int& operator+=(const wide_int<W2, S2>& rhs) {
    unsigned __int128 carry = 0;
    for (int i = 0; i < kLimbs; ++i) {
      const unsigned __int128 s =
          static_cast<unsigned __int128>(limb_[i]) + rhs.ext_limb(i) + carry;
      limb_[i] = static_cast<uint64_t>(s);
      carry = s >> 64;
    }
    canonicalize();
    return *this;
  }
  template <int W2, bool S2>
  constexpr wide_int& operator-=(const wide_int<W2, S2>& rhs) {
    unsigned __int128 borrow = 0;
    for (int i = 0; i < kLimbs; ++i) {
      const unsigned __int128 d = static_cast<unsigned __int128>(limb_[i]) -
                                  rhs.ext_limb(i) - borrow;
      limb_[i] = static_cast<uint64_t>(d);
      borrow = (d >> 64) ? 1 : 0;
    }
    canonicalize();
    return *this;
  }
  template <int W2, bool S2>
  constexpr wide_int& operator*=(const wide_int<W2, S2>& rhs) {
    *this = wide_int(mul_mod(*this, rhs));
    return *this;
  }

  // Multiply modulo 2^W (this type's width). Helper for operator*.
  template <int Wa, bool Sa, int Wb, bool Sb>
  static constexpr wide_int mul_mod(const wide_int<Wa, Sa>& a,
                                    const wide_int<Wb, Sb>& b) {
    wide_int r;
    std::array<uint64_t, kLimbs> acc{};
    for (int i = 0; i < kLimbs; ++i) {
      unsigned __int128 carry = 0;
      const uint64_t ai = a.ext_limb(i);
      for (int j = 0; i + j < kLimbs; ++j) {
        const unsigned __int128 cur =
            static_cast<unsigned __int128>(ai) * b.ext_limb(j) + acc[i + j] +
            carry;
        acc[i + j] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
    }
    for (int i = 0; i < kLimbs; ++i) r.limb_[i] = acc[i];
    r.canonicalize();
    return r;
  }

  constexpr wide_int& operator<<=(int n) {
    assert(n >= 0);
    if (n >= 64 * kLimbs) {
      limb_.fill(0);
    } else {
      const int ls = n / 64, bs = n % 64;
      for (int i = kLimbs - 1; i >= 0; --i) {
        uint64_t v = (i - ls >= 0) ? limb_[i - ls] << bs : 0;
        if (bs != 0 && i - ls - 1 >= 0) v |= limb_[i - ls - 1] >> (64 - bs);
        limb_[i] = v;
      }
    }
    canonicalize();
    return *this;
  }
  // Arithmetic right shift (sign-propagating when Signed).
  constexpr wide_int& operator>>=(int n) {
    assert(n >= 0);
    const uint64_t fill = is_neg() ? ~uint64_t{0} : 0;
    if (n >= 64 * kLimbs) {
      limb_.fill(fill);
    } else {
      const int ls = n / 64, bs = n % 64;
      for (int i = 0; i < kLimbs; ++i) {
        uint64_t v = (i + ls < kLimbs) ? limb_[i + ls] >> bs : fill >> bs;
        if (bs != 0) {
          const uint64_t hi = (i + ls + 1 < kLimbs) ? limb_[i + ls + 1] : fill;
          v |= hi << (64 - bs);
        }
        limb_[i] = v;
      }
    }
    canonicalize();
    return *this;
  }

  constexpr wide_int operator<<(int n) const {
    wide_int r = *this;
    r <<= n;
    return r;
  }
  constexpr wide_int operator>>(int n) const {
    wide_int r = *this;
    r >>= n;
    return r;
  }

  constexpr wide_int operator~() const {
    wide_int r;
    for (int i = 0; i < kLimbs; ++i) r.limb_[i] = ~limb_[i];
    r.canonicalize();
    return r;
  }

  // -- Comparison (value comparison across widths/signedness) -----------------

  template <int W2, bool S2>
  constexpr int compare(const wide_int<W2, S2>& rhs) const {
    const bool ln = is_neg(), rn = rhs.is_neg();
    if (ln != rn) return ln ? -1 : 1;
    const int n = (kLimbs > wide_int<W2, S2>::kLimbs)
                      ? kLimbs
                      : wide_int<W2, S2>::kLimbs;
    for (int i = n - 1; i >= 0; --i) {
      const uint64_t a = ext_limb(i), b = rhs.ext_limb(i);
      if (a != b) return a < b ? -1 : 1;
    }
    return 0;
  }

 private:
  std::array<uint64_t, kLimbs> limb_{};
};

// -- Non-member operators ------------------------------------------------------

template <int W1, bool S1, int W2, bool S2>
constexpr auto operator+(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  wide_int<detail::add_result_width(W1, S1, W2, S2), S1 || S2> r(a);
  r += b;
  return r;
}
template <int W1, bool S1, int W2, bool S2>
constexpr auto operator-(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  wide_int<detail::add_result_width(W1, S1, W2, S2), true> r(a);
  r -= b;
  return r;
}
template <int W1, bool S1, int W2, bool S2>
constexpr auto operator*(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  using R = wide_int<detail::mul_result_width(W1, S1, W2, S2), S1 || S2>;
  return R::mul_mod(a, b);
}
template <int W, bool S>
constexpr auto operator-(const wide_int<W, S>& a) {
  wide_int<W + 1, true> r(0);
  r -= a;
  return r;
}

template <int W1, bool S1, int W2, bool S2>
constexpr auto operator&(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  constexpr int Wr = (W1 > W2) ? W1 : W2;
  wide_int<Wr, S1 && S2> r;
  wide_int<Wr, S1> ea(a);
  wide_int<Wr, S2> eb(b);
  for (int i = 0; i < decltype(r)::kLimbs; ++i)
    r.set_limb(i, ea.ext_limb(i) & eb.ext_limb(i));
  r.canonicalize();
  return r;
}
template <int W1, bool S1, int W2, bool S2>
constexpr auto operator|(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  constexpr int Wr = (W1 > W2) ? W1 : W2;
  wide_int<Wr, S1 && S2> r;
  wide_int<Wr, S1> ea(a);
  wide_int<Wr, S2> eb(b);
  for (int i = 0; i < decltype(r)::kLimbs; ++i)
    r.set_limb(i, ea.ext_limb(i) | eb.ext_limb(i));
  r.canonicalize();
  return r;
}
template <int W1, bool S1, int W2, bool S2>
constexpr auto operator^(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  constexpr int Wr = (W1 > W2) ? W1 : W2;
  wide_int<Wr, S1 && S2> r;
  wide_int<Wr, S1> ea(a);
  wide_int<Wr, S2> eb(b);
  for (int i = 0; i < decltype(r)::kLimbs; ++i)
    r.set_limb(i, ea.ext_limb(i) ^ eb.ext_limb(i));
  r.canonicalize();
  return r;
}

// Division truncates toward zero (C semantics); remainder takes the sign of
// the dividend. Implemented by bit-serial long division on magnitudes.
namespace detail {
template <int Wn, int Wd>
struct divmod_result {
  wide_int<Wn + 1, true> quot;
  wide_int<Wd + 1, true> rem;
};
template <int Wn, bool Sn, int Wd, bool Sd>
constexpr divmod_result<Wn, Wd> divmod(const wide_int<Wn, Sn>& num,
                                       const wide_int<Wd, Sd>& den) {
  assert(!den.is_zero() && "wide_int division by zero");
  wide_int<Wn + 1, true> n = num.is_neg() ? wide_int<Wn + 1, true>(-num)
                                          : wide_int<Wn + 1, true>(num);
  wide_int<Wd + 1, true> d = den.is_neg() ? wide_int<Wd + 1, true>(-den)
                                          : wide_int<Wd + 1, true>(den);
  wide_int<Wn + 1, true> q(0);
  wide_int<Wd + 2, true> r(0);
  for (int i = Wn; i >= 0; --i) {
    r <<= 1;
    r.set_bit(0, n.bit(i));
    if (r.compare(d) >= 0) {
      r -= d;
      q.set_bit(i, true);
    }
  }
  divmod_result<Wn, Wd> out;
  out.quot = (num.is_neg() != den.is_neg()) ? wide_int<Wn + 1, true>(-q) : q;
  out.rem = num.is_neg() ? wide_int<Wd + 1, true>(-r) : wide_int<Wd + 1, true>(r);
  return out;
}
}  // namespace detail

template <int W1, bool S1, int W2, bool S2>
constexpr auto operator/(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  return detail::divmod(a, b).quot;
}
template <int W1, bool S1, int W2, bool S2>
constexpr auto operator%(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  return detail::divmod(a, b).rem;
}

template <int W1, bool S1, int W2, bool S2>
constexpr bool operator==(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  return a.compare(b) == 0;
}
template <int W1, bool S1, int W2, bool S2>
constexpr bool operator!=(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  return a.compare(b) != 0;
}
template <int W1, bool S1, int W2, bool S2>
constexpr bool operator<(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  return a.compare(b) < 0;
}
template <int W1, bool S1, int W2, bool S2>
constexpr bool operator<=(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  return a.compare(b) <= 0;
}
template <int W1, bool S1, int W2, bool S2>
constexpr bool operator>(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  return a.compare(b) > 0;
}
template <int W1, bool S1, int W2, bool S2>
constexpr bool operator>=(const wide_int<W1, S1>& a, const wide_int<W2, S2>& b) {
  return a.compare(b) >= 0;
}

// Mixed wide_int / native-integer operators, via conversion.
template <int W, bool S, typename I>
  requires std::is_integral_v<I>
constexpr auto operator+(const wide_int<W, S>& a, I b) {
  return a + wide_int<64, std::is_signed_v<I>>(static_cast<long long>(b));
}
template <int W, bool S, typename I>
  requires std::is_integral_v<I>
constexpr auto operator*(const wide_int<W, S>& a, I b) {
  return a * wide_int<64, std::is_signed_v<I>>(static_cast<long long>(b));
}
template <int W, bool S, typename I>
  requires std::is_integral_v<I>
constexpr bool operator==(const wide_int<W, S>& a, I b) {
  return a == wide_int<64, std::is_signed_v<I>>(static_cast<long long>(b));
}
template <int W, bool S, typename I>
  requires std::is_integral_v<I>
constexpr bool operator<(const wide_int<W, S>& a, I b) {
  return a < wide_int<64, std::is_signed_v<I>>(static_cast<long long>(b));
}

// Convenience aliases matching the paper's int17/uint6 style names.
template <int W>
using intN = wide_int<W, true>;
template <int W>
using uintN = wide_int<W, false>;

using uint6 = uintN<6>;
using int17 = intN<17>;

}  // namespace hlsw::fixpt
