// Quantization and overflow modes for fixed-point assignment, matching the
// SystemC sc_fixed modes the paper relies on (section 3.1-3.2): SC_RND,
// SC_RND_ZERO, SC_RND_MIN_INF, SC_RND_INF, SC_RND_CONV, SC_TRN, SC_TRN_ZERO
// and SC_SAT, SC_SAT_ZERO, SC_SAT_SYM, SC_WRAP.
//
// The rounding decision is factored into `round_increment` so the exact same
// rule is used by every consumer: the static `fixed<>` datatype, the dynamic
// fixed-point values inside the HLS IR interpreter, and the RTL simulator.
// Bit-exact agreement between those three is a core verification claim of
// the reproduction (paper Figure 1: "verify RTL against original C").
#pragma once

namespace hlsw::fixpt {

enum class Quant {
  kRnd,        // SC_RND: round half toward plus infinity
  kRndZero,    // SC_RND_ZERO: round to nearest, ties toward zero
  kRndMinInf,  // SC_RND_MIN_INF: round to nearest, ties toward minus infinity
  kRndInf,     // SC_RND_INF: round to nearest, ties away from zero
  kRndConv,    // SC_RND_CONV: round to nearest, ties to even
  kTrn,        // SC_TRN: truncate toward minus infinity (drop bits)
  kTrnZero,    // SC_TRN_ZERO: truncate toward zero
};

enum class Ovf {
  kSat,      // SC_SAT: saturate to min/max
  kSatZero,  // SC_SAT_ZERO: overflow produces zero
  kSatSym,   // SC_SAT_SYM: saturate symmetrically (min = -max)
  kWrap,     // SC_WRAP: wrap modulo 2^W
};

const char* to_string(Quant q);
const char* to_string(Ovf o);

inline const char* to_string(Quant q) {
  switch (q) {
    case Quant::kRnd: return "RND";
    case Quant::kRndZero: return "RND_ZERO";
    case Quant::kRndMinInf: return "RND_MIN_INF";
    case Quant::kRndInf: return "RND_INF";
    case Quant::kRndConv: return "RND_CONV";
    case Quant::kTrn: return "TRN";
    case Quant::kTrnZero: return "TRN_ZERO";
  }
  return "?";
}
inline const char* to_string(Ovf o) {
  switch (o) {
    case Ovf::kSat: return "SAT";
    case Ovf::kSatZero: return "SAT_ZERO";
    case Ovf::kSatSym: return "SAT_SYM";
    case Ovf::kWrap: return "WRAP";
  }
  return "?";
}

// Decides whether `floor(x / 2^d)` must be incremented by one to implement
// quantization mode `q`, given the discarded low bits of x:
//   msb_dropped  - the most significant discarded bit (weight 1/2 ulp)
//   rest_nonzero - whether any lower discarded bit is set
//   negative     - sign of the *value* being rounded
//   lsb_kept     - the least significant kept bit (for ties-to-even)
// This is the single source of truth for rounding across the library.
constexpr bool round_increment(Quant q, bool msb_dropped, bool rest_nonzero,
                               bool negative, bool lsb_kept) {
  switch (q) {
    case Quant::kTrn:
      return false;  // floor is truncation toward -inf already
    case Quant::kTrnZero:
      // Toward zero: negative values round up to approach zero.
      return negative && (msb_dropped || rest_nonzero);
    case Quant::kRnd:
      // Nearest, tie toward +inf: increment whenever the half bit is set.
      return msb_dropped;
    case Quant::kRndZero:
      // Nearest, tie toward zero: on an exact tie only negatives increment.
      return msb_dropped && (rest_nonzero || negative);
    case Quant::kRndMinInf:
      // Nearest, tie toward -inf: never increment on an exact tie.
      return msb_dropped && rest_nonzero;
    case Quant::kRndInf:
      // Nearest, tie away from zero: on an exact tie positives increment.
      return msb_dropped && (rest_nonzero || !negative);
    case Quant::kRndConv:
      // Nearest, tie to even: on an exact tie increment if kept LSB is odd.
      return msb_dropped && (rest_nonzero || lsb_kept);
  }
  return false;
}

}  // namespace hlsw::fixpt
