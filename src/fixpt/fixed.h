// fixed: arbitrary-length fixed-point datatype with SystemC-compatible
// quantization and overflow modes — the reproduction of sc_fixed/sc_ufixed
// as used throughout the paper (sections 3.1-3.2 and Figure 4).
//
// fixed<W, IW, Q, O, S> models a W-bit value with IW integer bits, i.e. the
// binary point sits IW bits below the MSB and the value equals
// raw * 2^(IW - W). IW may be negative or exceed W, exactly as in SystemC.
//
// Arithmetic follows the sc_fixed model the paper depends on for clean
// synthesis semantics: binary operators return *full precision* results (a
// type wide enough to hold every exact result); quantization (Q) and
// overflow handling (O) happen only on assignment/conversion into a
// concrete destination type. `fixed<8,3,Quant::kRnd,Ovf::kSat>` is the
// equivalent of the paper's sc_fixed<8,3,SC_RND,SC_SAT>.
#pragma once

#include <cmath>
#include <string>

#include "fixpt/quantization.h"
#include "fixpt/wide_int.h"

namespace hlsw::fixpt {

namespace detail {
constexpr int max_i(int a, int b) { return a > b ? a : b; }
}  // namespace detail

template <int W, int IW, Quant Q = Quant::kTrn, Ovf O = Ovf::kWrap,
          bool S = true>
class fixed {
  static_assert(W >= 1, "fixed width must be positive");

 public:
  static constexpr int kW = W;
  static constexpr int kIW = IW;
  static constexpr int kFW = W - IW;  // fractional bits (may be negative)
  static constexpr Quant kQ = Q;
  static constexpr Ovf kO = O;
  static constexpr bool kS = S;
  using raw_type = wide_int<W, S>;

  constexpr fixed() = default;

  // From another fixed type: align binary points, apply this type's
  // quantization mode on dropped LSBs and overflow mode on dropped MSBs.
  template <int W2, int IW2, Quant Q2, Ovf O2, bool S2>
  constexpr fixed(const fixed<W2, IW2, Q2, O2, S2>& v)  // NOLINT
      : raw_(convert_raw<wide_int<W2, S2>, W2 - IW2>(v.raw())) {}

  // From a native integer (value semantics: 3 means 3.0).
  constexpr fixed(long long v)  // NOLINT(google-explicit-constructor)
      : raw_(convert_raw<wide_int<65, true>, 0>(wide_int<65, true>(v))) {}
  constexpr fixed(int v) : fixed(static_cast<long long>(v)) {}  // NOLINT

  // From a double: quantize per Q, then fit per O. Values whose scaled
  // magnitude exceeds 2^(W+2) are treated as overflow even in WRAP mode
  // (wrapping a value that far out of range has no meaningful bit pattern).
  fixed(double v) {  // NOLINT(google-explicit-constructor)
    const double x = std::ldexp(v, kFW);
    const double lim = std::ldexp(1.0, W + 2);
    if (!(x < lim)) {  // catches +inf and NaN too
      raw_ = saturate_high();
      return;
    }
    if (x <= -lim) {
      raw_ = saturate_low();
      return;
    }
    const double fl = std::floor(x);
    const double frac = x - fl;
    const bool msb = frac >= 0.5;
    const bool rest = frac != 0.0 && frac != 0.5;
    const bool lsb_kept = std::fmod(fl, 2.0) != 0.0;
    wide_int<W + 4, true> base = wide_int<W + 4, true>::from_double(fl);
    if (round_increment(Q, msb, rest, v < 0, lsb_kept)) base += wide_int<2, true>(1);
    raw_ = fit(base);
  }

  static constexpr fixed from_raw(raw_type r) {
    fixed f;
    f.raw_ = r;
    return f;
  }

  constexpr const raw_type& raw() const { return raw_; }

  double to_double() const { return std::ldexp(raw_.to_double(), -kFW); }

  // Integer part, truncated toward zero (sc_fixed::to_int semantics).
  constexpr long long to_int() const {
    if constexpr (kFW <= 0) {
      return raw_.to_int64() << -kFW;
    } else {
      wide_int<W + 1, S> t(raw_);
      t >>= kFW;  // floor
      long long r = t.to_int64();
      if (raw_.is_neg() && raw_.any_bit_below(kFW)) r += 1;  // toward zero
      return r;
    }
  }

  std::string to_string() const { return std::to_string(to_double()); }

  constexpr bool is_neg() const { return raw_.is_neg(); }

  // -- Bit access (Figure 4 uses `offset[0] = 1` to build 2^-4) -------------
  class bit_ref {
   public:
    constexpr bit_ref(fixed& f, int i) : f_(f), i_(i) {}
    constexpr bit_ref& operator=(int b) {
      f_.raw_.set_bit(i_, b != 0);
      return *this;
    }
    constexpr operator bool() const { return f_.raw_.bit(i_); }  // NOLINT

   private:
    fixed& f_;
    int i_;
  };
  constexpr bit_ref operator[](int i) { return bit_ref(*this, i); }
  constexpr bool operator[](int i) const { return raw_.bit(i); }

  // -- Shifts: raw shifts within the same type (power-of-two scaling). ------
  constexpr fixed operator>>(int n) const { return from_raw(raw_ >> n); }
  constexpr fixed operator<<(int n) const { return from_raw(raw_ << n); }

  // Unary minus grows by one bit so negating the most negative value is
  // exact (full-precision semantics, like every other operator).
  constexpr auto operator-() const {
    return fixed<W + 1, IW + 1, Quant::kTrn, Ovf::kWrap, true>::from_raw(
        wide_int<W + 1, true>(-raw_));
  }

  template <typename Rhs>
  constexpr fixed& operator+=(const Rhs& rhs) {
    *this = fixed(*this + rhs);
    return *this;
  }
  template <typename Rhs>
  constexpr fixed& operator-=(const Rhs& rhs) {
    *this = fixed(*this - rhs);
    return *this;
  }

  // Converts a raw integer at source scale 2^-SrcFw into this type's raw,
  // applying quantization then overflow handling. Shared by all ctors.
  template <typename SrcRaw, int SrcFw>
  static constexpr raw_type convert_raw(const SrcRaw& src) {
    constexpr int kShift = kFW - SrcFw;
    if constexpr (kShift >= 0) {
      wide_int<SrcRaw::kWidth + kShift, SrcRaw::kSigned> widened(src);
      widened <<= kShift;
      return fit(widened);
    } else {
      constexpr int kDrop = -kShift;
      wide_int<SrcRaw::kWidth + 1, SrcRaw::kSigned> base(src);
      base >>= kDrop;  // floor
      const bool msb = src.bit(kDrop - 1);
      const bool rest = src.any_bit_below(kDrop - 1);
      const bool lsb_kept = src.bit(kDrop);
      if (round_increment(Q, msb, rest, src.is_neg(), lsb_kept))
        base += wide_int<2, true>(1);
      return fit(base);
    }
  }

 private:
  static constexpr wide_int<W + 2, true> limit_max() {
    wide_int<W + 2, true> m(1);
    m <<= (S ? W - 1 : W);
    m -= wide_int<2, true>(1);
    return m;
  }
  static constexpr wide_int<W + 2, true> limit_min() {
    if constexpr (!S) return wide_int<W + 2, true>(0);
    wide_int<W + 2, true> m(1);
    m <<= (W - 1);
    return wide_int<W + 2, true>(-m);
  }

  static constexpr raw_type saturate_high() {
    switch (O) {
      case Ovf::kSatZero: return raw_type(0);
      case Ovf::kSat:
      case Ovf::kSatSym:
      case Ovf::kWrap: return raw_type(limit_max());
    }
    return raw_type(0);
  }
  static constexpr raw_type saturate_low() {
    switch (O) {
      case Ovf::kSatZero: return raw_type(0);
      case Ovf::kSatSym: return raw_type(-limit_max());
      case Ovf::kSat:
      case Ovf::kWrap: return raw_type(limit_min());
    }
    return raw_type(0);
  }

  // Fit an exact integer value (at this type's scale) into W bits per O.
  template <int Wv, bool Sv>
  static constexpr raw_type fit(const wide_int<Wv, Sv>& v) {
    if constexpr (O == Ovf::kWrap) {
      return raw_type(v);  // modulo 2^W, hardware register semantics
    } else {
      if (v.compare(limit_max()) > 0) return saturate_high();
      // SAT_SYM restricts the legal range to [-max, max] (signed only).
      const auto lo =
          (O == Ovf::kSatSym && S) ? wide_int<W + 2, true>(-limit_max())
                                   : limit_min();
      if (v.compare(lo) < 0) return saturate_low();
      return raw_type(v);
    }
  }

  raw_type raw_{};
};

// -- Full-precision binary operators -----------------------------------------

namespace detail {
// Promotion rules for fixed binary ops (see file comment). Unsigned operands
// need one extra integer bit when the result is signed.
template <int IW1, bool S1, int IW2, bool S2, bool Sr>
constexpr int promoted_iw() {
  return max_i(IW1 + ((Sr && !S1) ? 1 : 0), IW2 + ((Sr && !S2) ? 1 : 0));
}
}  // namespace detail

template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr auto operator+(const fixed<W1, IW1, Q1, O1, S1>& a,
                         const fixed<W2, IW2, Q2, O2, S2>& b) {
  constexpr bool Sr = S1 || S2;
  constexpr int FWr = detail::max_i(W1 - IW1, W2 - IW2);
  constexpr int IWr = detail::promoted_iw<IW1, S1, IW2, S2, Sr>() + 1;
  constexpr int Wr = IWr + FWr;
  static_assert(Wr >= 1);
  wide_int<Wr, Sr> ar(a.raw());
  ar <<= (FWr - (W1 - IW1));
  wide_int<Wr, Sr> br(b.raw());
  br <<= (FWr - (W2 - IW2));
  ar += br;
  return fixed<Wr, IWr, Quant::kTrn, Ovf::kWrap, Sr>::from_raw(ar);
}

template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr auto operator-(const fixed<W1, IW1, Q1, O1, S1>& a,
                         const fixed<W2, IW2, Q2, O2, S2>& b) {
  constexpr int FWr = detail::max_i(W1 - IW1, W2 - IW2);
  constexpr int IWr = detail::promoted_iw<IW1, S1, IW2, S2, true>() + 1;
  constexpr int Wr = IWr + FWr;
  static_assert(Wr >= 1);
  wide_int<Wr, true> ar(a.raw());
  ar <<= (FWr - (W1 - IW1));
  wide_int<Wr, true> br(b.raw());
  br <<= (FWr - (W2 - IW2));
  ar -= br;
  return fixed<Wr, IWr, Quant::kTrn, Ovf::kWrap, true>::from_raw(ar);
}

template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr auto operator*(const fixed<W1, IW1, Q1, O1, S1>& a,
                         const fixed<W2, IW2, Q2, O2, S2>& b) {
  constexpr bool Sr = S1 || S2;
  constexpr int E1 = (Sr && !S1) ? 1 : 0;
  constexpr int E2 = (Sr && !S2) ? 1 : 0;
  constexpr int Wr = W1 + E1 + W2 + E2;
  constexpr int IWr = IW1 + E1 + IW2 + E2;
  using R = wide_int<Wr, Sr>;
  return fixed<Wr, IWr, Quant::kTrn, Ovf::kWrap, Sr>::from_raw(
      R::mul_mod(a.raw(), b.raw()));
}

// Mixed fixed / integer arithmetic (the paper writes `r * 64 + i * 8`).
template <int W, int IW, Quant Q, Ovf O, bool S>
constexpr auto operator*(const fixed<W, IW, Q, O, S>& a, int b) {
  return a * fixed<32, 32, Quant::kTrn, Ovf::kWrap, true>(
                 static_cast<long long>(b));
}
template <int W, int IW, Quant Q, Ovf O, bool S>
constexpr auto operator+(const fixed<W, IW, Q, O, S>& a, int b) {
  return a + fixed<32, 32, Quant::kTrn, Ovf::kWrap, true>(
                 static_cast<long long>(b));
}
template <int W, int IW, Quant Q, Ovf O, bool S>
constexpr auto operator-(const fixed<W, IW, Q, O, S>& a, int b) {
  return a - fixed<32, 32, Quant::kTrn, Ovf::kWrap, true>(
                 static_cast<long long>(b));
}

// -- Comparison (value comparison, any widths) --------------------------------

template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,
          Quant Q2, Ovf O2, bool S2>
constexpr int compare(const fixed<W1, IW1, Q1, O1, S1>& a,
                      const fixed<W2, IW2, Q2, O2, S2>& b) {
  constexpr int FWr = detail::max_i(W1 - IW1, W2 - IW2);
  constexpr int Wr =
      detail::max_i(W1 + (FWr - (W1 - IW1)), W2 + (FWr - (W2 - IW2))) + 1;
  wide_int<Wr, true> ar(a.raw());
  ar <<= (FWr - (W1 - IW1));
  wide_int<Wr, true> br(b.raw());
  br <<= (FWr - (W2 - IW2));
  return ar.compare(br);
}

#define HLSW_FIXED_CMP(op)                                                    \
  template <int W1, int IW1, Quant Q1, Ovf O1, bool S1, int W2, int IW2,      \
            Quant Q2, Ovf O2, bool S2>                                        \
  constexpr bool operator op(const fixed<W1, IW1, Q1, O1, S1>& a,             \
                             const fixed<W2, IW2, Q2, O2, S2>& b) {           \
    return compare(a, b) op 0;                                                \
  }
HLSW_FIXED_CMP(==)
HLSW_FIXED_CMP(!=)
HLSW_FIXED_CMP(<)
HLSW_FIXED_CMP(<=)
HLSW_FIXED_CMP(>)
HLSW_FIXED_CMP(>=)
#undef HLSW_FIXED_CMP

template <int W, int IW, Quant Q, Ovf O, bool S>
constexpr bool operator==(const fixed<W, IW, Q, O, S>& a, int b) {
  return compare(a, fixed<34, 34, Quant::kTrn, Ovf::kWrap, true>(
                        static_cast<long long>(b))) == 0;
}
template <int W, int IW, Quant Q, Ovf O, bool S>
constexpr bool operator<(const fixed<W, IW, Q, O, S>& a, int b) {
  return compare(a, fixed<34, 34, Quant::kTrn, Ovf::kWrap, true>(
                        static_cast<long long>(b))) < 0;
}
template <int W, int IW, Quant Q, Ovf O, bool S>
constexpr bool operator>=(const fixed<W, IW, Q, O, S>& a, int b) {
  return compare(a, fixed<34, 34, Quant::kTrn, Ovf::kWrap, true>(
                        static_cast<long long>(b))) >= 0;
}

// SystemC-style aliases.
template <int W, int IW, Quant Q = Quant::kTrn, Ovf O = Ovf::kWrap>
using sfixed = fixed<W, IW, Q, O, true>;
template <int W, int IW, Quant Q = Quant::kTrn, Ovf O = Ovf::kWrap>
using ufixed = fixed<W, IW, Q, O, false>;

}  // namespace hlsw::fixpt
