// dynamic_int: a word-based arbitrary-precision integer with heap-allocated
// limbs and run-time width — structurally faithful to SystemC's sc_bigint
// implementation (word arrays, dynamic storage, width checked at run time).
//
// Together with bitref_int this brackets the paper's section 3.1 claim from
// both sides: bitref_int (bit-serial) is slower than the historical
// sc_bigint, dynamic_int (word-serial but heap-based and width-dynamic) is
// close to it, and wide_int (static width, stack storage, widths resolved
// at compile time) is the mc_int analogue. bench_datatypes races all three;
// the paper's "3x to 100x" band falls between the dynamic_int and
// bitref_int comparisons.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hlsw::fixpt {

class dynamic_int {
 public:
  explicit dynamic_int(int width, long long v = 0)
      : width_(width),
        limbs_(static_cast<size_t>((width + 63) / 64),
               v < 0 ? ~uint64_t{0} : 0) {
    assert(width >= 1);
    limbs_[0] = static_cast<uint64_t>(v);
    canonicalize();
  }

  int width() const { return width_; }

  bool is_neg() const {
    const int top = (width_ - 1) % 64;
    return (limbs_.back() >> top) & 1u;
  }

  long long to_int64() const { return static_cast<long long>(limbs_[0]); }

  uint64_t limb(std::size_t i) const {
    if (i < limbs_.size()) return limbs_[i];
    return is_neg() ? ~uint64_t{0} : 0;
  }

  // Value-preserving addition: result width = max(w1, w2) + 1.
  friend dynamic_int add(const dynamic_int& a, const dynamic_int& b) {
    dynamic_int r(std::max(a.width_, b.width_) + 1);
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
      const unsigned __int128 s =
          static_cast<unsigned __int128>(a.limb(i)) + b.limb(i) + carry;
      r.limbs_[i] = static_cast<uint64_t>(s);
      carry = s >> 64;
    }
    r.canonicalize();
    return r;
  }

  friend dynamic_int sub(const dynamic_int& a, const dynamic_int& b) {
    dynamic_int r(std::max(a.width_, b.width_) + 1);
    unsigned __int128 borrow = 0;
    for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
      const unsigned __int128 d =
          static_cast<unsigned __int128>(a.limb(i)) - b.limb(i) - borrow;
      r.limbs_[i] = static_cast<uint64_t>(d);
      borrow = (d >> 64) ? 1 : 0;
    }
    r.canonicalize();
    return r;
  }

  // Schoolbook multiply, result width = w1 + w2 (sign-extended operands,
  // product taken modulo the result width — exact since it fits).
  friend dynamic_int mul(const dynamic_int& a, const dynamic_int& b) {
    dynamic_int r(a.width_ + b.width_);
    const std::size_t n = r.limbs_.size();
    std::vector<uint64_t> acc(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      unsigned __int128 carry = 0;
      const uint64_t ai = a.limb(i);
      if (ai == 0 && i >= a.limbs_.size()) {
        if (!a.is_neg()) continue;
      }
      for (std::size_t j = 0; i + j < n; ++j) {
        const unsigned __int128 cur =
            static_cast<unsigned __int128>(ai) * b.limb(j) + acc[i + j] +
            carry;
        acc[i + j] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
    }
    r.limbs_ = std::move(acc);
    r.canonicalize();
    return r;
  }

  // Truncating assignment into this object's width (register semantics).
  dynamic_int& assign(const dynamic_int& v) {
    for (std::size_t i = 0; i < limbs_.size(); ++i) limbs_[i] = v.limb(i);
    canonicalize();
    return *this;
  }

  friend bool operator==(const dynamic_int& a, const dynamic_int& b) {
    const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
    for (std::size_t i = 0; i < n; ++i)
      if (a.limb(i) != b.limb(i)) return false;
    return true;
  }

 private:
  void canonicalize() {
    const int top_bits = width_ % 64;
    if (top_bits == 0) return;
    const uint64_t mask = (uint64_t{1} << top_bits) - 1;
    const bool neg = (limbs_.back() >> (top_bits - 1)) & 1u;
    if (neg)
      limbs_.back() |= ~mask;
    else
      limbs_.back() &= mask;
  }

  int width_;
  std::vector<uint64_t> limbs_;
};

}  // namespace hlsw::fixpt
