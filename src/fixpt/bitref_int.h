// bitref_int: a deliberately bit-serial arbitrary-precision integer.
//
// The paper (section 3.1) claims Catapult's mc_int simulates "3x to 100x
// faster" than SystemC's sc_bigint/sc_biguint. We cannot ship SystemC, so
// this class stands in for the slow comparator: it stores one bit per byte
// and performs ripple-carry addition and shift-add multiplication bit by
// bit, with dynamically-sized storage — the same algorithmic structure that
// made the historical sc_bigint implementation slow. It is functionally
// cross-checked against wide_int in tests and raced against it in
// bench/bench_datatypes (experiment D1 in DESIGN.md).
//
// This type is intentionally not optimized. Do not use it outside the
// datatype-speed experiment and its correctness tests.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace hlsw::fixpt {

class bitref_int {
 public:
  // Value wraps modulo 2^width; stored two's complement, one bit per entry.
  explicit bitref_int(int width, long long v = 0) : bits_(width, 0) {
    assert(width >= 1);
    for (int i = 0; i < width; ++i)
      bits_[i] = static_cast<uint8_t>((static_cast<unsigned long long>(v) >> (i < 64 ? i : 63)) & 1u);
    if (v < 0)
      for (int i = 64; i < width; ++i) bits_[i] = 1;
  }

  int width() const { return static_cast<int>(bits_.size()); }
  bool sign() const { return bits_.back() != 0; }
  bool bit(int i) const { return i < width() ? bits_[i] != 0 : sign(); }

  bool is_zero() const {
    for (uint8_t b : bits_)
      if (b) return false;
    return true;
  }

  long long to_int64() const {
    unsigned long long v = 0;
    for (int i = 63; i >= 0; --i) v = (v << 1) | (bit(i) ? 1u : 0u);
    return static_cast<long long>(v);
  }

  // Ripple-carry addition, result width = max(w1, w2) + 1.
  friend bitref_int add(const bitref_int& a, const bitref_int& b) {
    const int w = (a.width() > b.width() ? a.width() : b.width()) + 1;
    bitref_int r(w);
    uint8_t carry = 0;
    for (int i = 0; i < w; ++i) {
      const uint8_t s = static_cast<uint8_t>((a.bit(i) ? 1 : 0) +
                                             (b.bit(i) ? 1 : 0) + carry);
      r.bits_[i] = s & 1u;
      carry = s >> 1;
    }
    return r;
  }

  friend bitref_int negate(const bitref_int& a) {
    bitref_int inv(a.width() + 1);
    for (int i = 0; i < inv.width(); ++i) inv.bits_[i] = a.bit(i) ? 0 : 1;
    return add(inv, bitref_int(2, 1));  // 2 bits wide: 1-bit '1' would be -1
  }

  friend bitref_int sub(const bitref_int& a, const bitref_int& b) {
    return add(a, negate(b));
  }

  // Shift-add multiplication, one partial product per multiplier bit;
  // result width = w1 + w2.
  friend bitref_int mul(const bitref_int& a, const bitref_int& b) {
    const int w = a.width() + b.width();
    bitref_int acc(w);
    bitref_int pa(w);
    for (int i = 0; i < w; ++i) pa.bits_[i] = a.bit(i) ? 1 : 0;
    // Handle signed b via Booth-free decomposition: b = low_bits - sign*2^(wb-1).
    for (int i = 0; i < b.width() - 1; ++i) {
      if (b.bit(i)) acc = bitref_int(w, 0).assign(add(acc, pa.shifted(i)));
    }
    if (b.sign())
      acc = bitref_int(w, 0).assign(sub(acc, pa.shifted(b.width() - 1)));
    return acc;
  }

  bitref_int shifted(int n) const {
    bitref_int r(width());
    for (int i = width() - 1; i >= n; --i) r.bits_[i] = bits_[i - n];
    return r;
  }

  // Truncate/sign-extend another value into this object's width.
  bitref_int& assign(const bitref_int& v) {
    for (int i = 0; i < width(); ++i) bits_[i] = v.bit(i) ? 1 : 0;
    return *this;
  }

  friend bool operator==(const bitref_int& a, const bitref_int& b) {
    const int w = a.width() > b.width() ? a.width() : b.width();
    for (int i = 0; i < w; ++i)
      if (a.bit(i) != b.bit(i)) return false;
    return true;
  }

 private:
  std::vector<uint8_t> bits_;
};

}  // namespace hlsw::fixpt
