// Static bitwidth inference helpers (paper section 3.2 and Figure 2).
//
// The paper's Figure 2 shows a loop whose counter's minimum bitwidth depends
// on a template constant N; Catapult derives that width automatically
// ("automatic bit reduction"). These constexpr helpers encode the same
// arithmetic and are used both by user code (to size counters and
// accumulators) and by the HLS engine's bitwidth reduction pass
// (hls/bitwidth_pass.*), which reproduces the analysis at the IR level.
#pragma once

#include <cstdint>

namespace hlsw::fixpt {

// ceil(log2(v)) for v >= 1; clog2(1) == 0.
constexpr int clog2(unsigned long long v) {
  int n = 0;
  unsigned long long p = 1;
  while (p < v) {
    p <<= 1;
    ++n;
  }
  return n;
}

// Bits needed to represent the unsigned value v exactly.
constexpr int bits_for_unsigned(unsigned long long v) {
  return v == 0 ? 1 : clog2(v + 1);
}

// Minimum unsigned width for a loop counter iterating i = 0 .. trip-1 and
// whose exit test evaluates i == trip (the counter must also hold `trip`).
// This is exactly the width Catapult infers for Figure 2's `i < N` loop.
constexpr int loop_counter_width(unsigned long long trip) {
  return bits_for_unsigned(trip);
}

// Minimum signed width for a value in the closed range [lo, hi].
constexpr int bits_for_range(long long lo, long long hi) {
  const int neg =
      lo < 0 ? clog2(static_cast<unsigned long long>(-lo)) + 1 : 1;
  const int pos = hi > 0 ? bits_for_unsigned(static_cast<unsigned long long>(hi)) + 1 : 1;
  return neg > pos ? neg : pos;
}

// Width of a sum of n terms each of elem_width bits (signed or unsigned):
// the accumulator in Figure 2 grows by clog2(n) bits.
constexpr int accumulator_width(int elem_width, unsigned long long n) {
  return elem_width + clog2(n);
}

}  // namespace hlsw::fixpt
