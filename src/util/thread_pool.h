// A small fixed-size work pool for CPU-bound batch jobs (design-space
// exploration synthesizes dozens of independent configurations; the pool
// lets them run concurrently while the caller keeps deterministic control
// of submission and collection order).
//
// Semantics:
//  * submit() returns a std::future for the task's result; exceptions
//    thrown by the task are captured and rethrown from future::get().
//  * A pool constructed with 0 threads runs every task inline inside
//    submit() — the degenerate serial pool, useful for tests and for
//    forcing the legacy single-threaded path without special-casing.
//  * The destructor drains all queued tasks and joins every worker, so
//    futures obtained from submit() never dangle or break.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace hlsw::util {

class ThreadPool {
 public:
  // Spawns `threads` workers. 0 = inline execution (no workers).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of worker threads (0 for an inline pool).
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Tasks queued but not yet started (diagnostics).
  std::size_t pending() const;

  // max(1, std::thread::hardware_concurrency()).
  static unsigned default_thread_count();

  // Enqueues a nullary callable; the result (or exception) is delivered
  // through the returned future. Throws std::runtime_error if called after
  // shutdown began (i.e. from a task outliving the destructor's drain).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr because std::function requires a copyable callable and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline pool: run now; exceptions land in the future
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Applies fn(i) for i in [0, n) across the pool and returns the results in
// index order, regardless of completion order — the deterministic-merge
// primitive behind the parallel sweeps (DSE, co-simulation). A null pool
// runs everything inline in order. Exceptions propagate from the first
// (lowest-index) failing task.
template <typename Fn>
auto map_ordered(ThreadPool* pool, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<std::decay_t<Fn>, std::size_t>> {
  using R = std::invoke_result_t<std::decay_t<Fn>, std::size_t>;
  std::vector<R> results;
  results.reserve(n);
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) results.push_back(fn(i));
    return results;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(pool->submit([&fn, i] { return fn(i); }));
  for (auto& fut : futures) results.push_back(fut.get());
  return results;
}

}  // namespace hlsw::util
