#include "util/thread_pool.h"

namespace hlsw::util {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

unsigned ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured by the packaged_task inside
  }
}

}  // namespace hlsw::util
