#include "hls/bind.h"

#include <algorithm>
#include <map>
#include <set>

#include "fixpt/bitwidth.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hlsw::hls {

namespace {

int value_bits(const FxType& t) { return t.w * (t.cplx ? 2 : 1); }

// One functional-unit request from a scheduled op.
struct FuRequest {
  std::string kind;
  int wa = 0, wb = 0;  // operand widths (adders: wa = width, wb = 0)
  double area = 0;
};

// Expands an op into its primitive FU requests.
void expand_requests(const OpCost& c, const TechLibrary& tech,
                     std::vector<FuRequest>* out) {
  for (int m = 0; m < c.real_mults; ++m)
    out->push_back({"mul", c.wa, c.wb, tech.mul_area(c.wa, c.wb)});
  for (int a = 0; a < c.real_adds; ++a)
    out->push_back({"add", c.add_w, 0, tech.add_area(c.add_w)});
}

}  // namespace

BindResult bind_design(const Function& f, const Schedule& s,
                       const Directives& dir, const TechLibrary& tech) {
  obs::ScopedSpan span("bind", "hls");
  BindResult out;

  // ---- Collect per-(region, cycle) FU requests and bind to pools. ----
  // Pools keyed by kind; each slot contributes a descending-area list.
  std::map<std::string, std::vector<std::vector<FuRequest>>> slots_by_kind;

  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const Region& region = f.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const RegionSchedule& rs = s.regions[r];
    std::map<int, std::vector<FuRequest>> per_cycle;
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      const OpCost c = op_cost(f, b, static_cast<int>(i), tech);
      if (c.real_mults == 0 && c.real_adds == 0) continue;
      expand_requests(c, tech, &per_cycle[rs.body.place[i].cycle]);
    }
    for (auto& [cycle, reqs] : per_cycle) {
      (void)cycle;
      std::map<std::string, std::vector<FuRequest>> by_kind;
      for (auto& req : reqs) by_kind[req.kind].push_back(req);
      for (auto& [kind, list] : by_kind) {
        std::sort(list.begin(), list.end(),
                  [](const FuRequest& a, const FuRequest& b2) {
                    return a.area > b2.area;
                  });
        slots_by_kind[kind].push_back(std::move(list));
      }
    }
  }

  for (auto& [kind, slots] : slots_by_kind) {
    std::size_t min_pool = 0;
    std::size_t total_reqs = 0;
    double max_unit_area = 0;
    int max_wa = 0, max_wb = 0;
    for (const auto& slot : slots) {
      min_pool = std::max(min_pool, slot.size());
      total_reqs += slot.size();
      for (const auto& r : slot)
        if (r.area > max_unit_area) {
          max_unit_area = r.area;
          max_wa = r.wa;
          max_wb = r.wb;
        }
    }
    if (min_pool == 0) continue;

    // Cost-aware allocation: sharing a unit across n ops costs a mux leg
    // per extra op on both operand ports; beyond a point another unit is
    // cheaper than deeper muxing (what a real binder does — maximal
    // sharing would charge absurd selector trees to sequential designs).
    const int in_bits = max_wa + (max_wb > 0 ? max_wb : max_wa);
    auto pool_cost = [&](std::size_t pool) {
      const double fu_cost = static_cast<double>(pool) * max_unit_area;
      // Requests distribute evenly; each unit with n ops needs n-1 legs.
      const double legs =
          static_cast<double>(total_reqs) - static_cast<double>(pool);
      return fu_cost + (legs > 0 ? tech.mux_area(2, in_bits) * legs : 0.0);
    };
    std::size_t pool = min_pool;
    for (std::size_t p = min_pool; p <= total_reqs; ++p)
      if (pool_cost(p) < pool_cost(pool)) pool = p;

    for (std::size_t i = 0; i < pool; ++i) {
      FuInstance fu;
      fu.kind = kind;
      fu.area = max_unit_area;
      fu.wa = max_wa;
      fu.wb = max_wb;
      fu.n_ops = static_cast<int>((total_reqs + pool - 1) / pool);
      out.fu_area += fu.area;
      out.mux_area += tech.mux_area(fu.n_ops, in_bits);
      out.fus.push_back(std::move(fu));
    }
  }

  // ---- Storage: architectural registers and memories. ----
  for (const auto& v : f.vars) out.storage_bits += value_bits(v.type);
  for (const auto& a : f.arrays) {
    const long long bits =
        static_cast<long long>(a.length) * value_bits(a.elem);
    if (a.mapping == ArrayMapping::kMemory) {
      out.mem_bits += bits;
      out.mem_ports += a.mem_read_ports + a.mem_write_ports;
    } else {
      out.storage_bits += bits;
    }
  }

  // ---- Pipeline registers: results consumed in a later cycle. ----
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const Region& region = f.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const RegionSchedule& rs = s.regions[r];
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      bool crosses = false;
      for (std::size_t j = i + 1; j < b.ops.size() && !crosses; ++j)
        for (int arg : b.ops[j].args)
          if (arg == static_cast<int>(i) &&
              rs.body.place[j].cycle > rs.body.place[i].cycle)
            crosses = true;
      if (crosses) out.pipeline_bits += value_bits(b.ops[i].type);
    }
    // Values communicated between regions travel through vars/arrays,
    // already counted as architectural storage.
  }

  // ---- Register/array steering muxes. ----
  // Vars: one write mux with an input per distinct writing site.
  std::vector<int> var_writers(f.vars.size(), 0);
  // Arrays (register-mapped): per-element input counts.
  std::vector<std::vector<int>> elem_writers(f.arrays.size());
  for (std::size_t a = 0; a < f.arrays.size(); ++a)
    elem_writers[a].assign(static_cast<size_t>(f.arrays[a].length), 0);
  double read_mux_area = 0;

  for (const auto& region : f.regions) {
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const int trip = region.is_loop ? region.loop.trip : 1;
    for (const Op& op : b.ops) {
      if (op.kind == OpKind::kVarWrite) {
        ++var_writers[static_cast<size_t>(op.var)];
      } else if (op.kind == OpKind::kArrayWrite &&
                 f.arrays[static_cast<size_t>(op.array)].mapping ==
                     ArrayMapping::kRegisters) {
        const int g = op.guard_trip < 0 ? trip : op.guard_trip;
        for (int k = 0; k < g; ++k) {
          const int idx = op.idx.eval(k);
          if (idx >= 0 &&
              idx < f.arrays[static_cast<size_t>(op.array)].length)
            ++elem_writers[static_cast<size_t>(op.array)]
                          [static_cast<size_t>(idx)];
        }
      } else if (op.kind == OpKind::kArrayRead && op.idx.scale != 0 &&
                 f.arrays[static_cast<size_t>(op.array)].mapping ==
                     ArrayMapping::kRegisters) {
        // Variable-index read: a selector over the touched elements.
        const Array& arr = f.arrays[static_cast<size_t>(op.array)];
        const int g = op.guard_trip < 0 ? trip : op.guard_trip;
        std::set<int> touched;
        for (int k = 0; k < g; ++k) touched.insert(op.idx.eval(k));
        read_mux_area += tech.mux_area(static_cast<int>(touched.size()),
                                       value_bits(arr.elem));
      }
    }
  }
  for (std::size_t v = 0; v < f.vars.size(); ++v)
    out.mux_area += tech.mux_area(var_writers[v], value_bits(f.vars[v].type));
  for (std::size_t a = 0; a < f.arrays.size(); ++a)
    for (int w : elem_writers[a])
      out.mux_area += tech.mux_area(w, value_bits(f.arrays[a].elem));
  out.mux_area += read_mux_area;

  // ---- Control. ----
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    out.fsm_states += s.regions[r].body.cycles;
    if (f.regions[r].is_loop)
      out.counter_bits += fixpt::clog2(
          static_cast<unsigned long long>(f.regions[r].loop.trip) + 1);
  }
  if (dir.handshake) out.fsm_states += 1;  // idle/wait state

  // ---- Interface synthesis (paper section 2.1). ----
  auto iface_of = [&](const std::string& name) {
    auto it = dir.interfaces.find(name);
    return it == dir.interfaces.end() ? InterfaceKind::kWire : it->second;
  };
  for (const auto& v : f.vars) {
    if (v.port == PortDir::kNone) continue;
    const int bits = value_bits(v.type);
    switch (iface_of(v.name)) {
      case InterfaceKind::kRegistered:
        out.io_reg_bits += bits;
        out.io_bits += bits;
        break;
      case InterfaceKind::kHandshake:
        out.io_reg_bits += bits;
        out.io_bits += bits + 2;  // valid/ready pair
        break;
      default:
        out.io_bits += bits;
        break;
    }
  }
  for (const auto& a : f.arrays) {
    if (a.port == PortDir::kNone) continue;
    const long long full =
        static_cast<long long>(a.length) * value_bits(a.elem);
    switch (iface_of(a.name)) {
      case InterfaceKind::kStream:
        // One element-wide lane accessed over time (paper: "array accesses
        // over an index may be converted into accesses over time"), plus a
        // transfer counter. Transfer cycles are charged by the scheduler.
        out.io_bits += value_bits(a.elem) + 2;
        out.counter_bits += fixpt::clog2(
            static_cast<unsigned long long>(a.length) + 1);
        break;
      case InterfaceKind::kRegistered:
        out.io_reg_bits += full;
        out.io_bits += full;
        break;
      case InterfaceKind::kHandshake:
        out.io_reg_bits += full;
        out.io_bits += full + 2;
        break;
      default:
        out.io_bits += full;
        break;
    }
  }

  if (span.active()) {
    span.arg("function", f.name);
    span.arg("fus", out.fus.size());
    span.arg("reg_bits", out.storage_bits + out.pipeline_bits);
    span.arg("fsm_states", out.fsm_states);
    auto& m = obs::MetricsRegistry::instance();
    m.add("hls.bind.runs");
    m.add("hls.bind.fus", static_cast<double>(out.fus.size()));
    m.add("hls.bind.reg_bits",
          static_cast<double>(out.storage_bits + out.pipeline_bits));
  }
  return out;
}

AreaReport estimate_area(const BindResult& b, const TechLibrary& tech) {
  AreaReport r;
  r.fu = b.fu_area;
  r.reg = tech.reg_area(
      static_cast<int>(b.storage_bits + b.pipeline_bits + b.io_reg_bits));
  r.mux = b.mux_area;
  r.fsm = tech.fsm_area(b.fsm_states, b.counter_bits);
  r.mem = b.mem_bits > 0
              ? tech.mem_area(static_cast<int>(b.mem_bits), b.mem_ports)
              : 0;
  r.io = tech.io_area_per_bit * static_cast<double>(b.io_bits);
  r.total = r.fu + r.reg + r.mux + r.fsm + r.mem + r.io;
  return r;
}

}  // namespace hlsw::hls
