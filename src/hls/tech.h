// Technology library: per-operator delay and area models (paper section
// 2.5: "scheduling ... takes into account required synthesis directives
// such as the clock period and the target technologies").
//
// We cannot ship the paper's proprietary ASIC library; these synthetic
// models use standard gate-count scaling (ripple/carry-lookahead adders
// ~ O(W), array multipliers ~ O(Wa*Wb)) with delays representative of a
// 90nm-class ASIC process and a generic LUT4 FPGA. The paper reports only
// cycle counts and *normalized* area, so relative component costs are what
// matters; EXPERIMENTS.md discusses the calibration.
//
// Area unit: NAND2-equivalent gates. Delay unit: nanoseconds.
#pragma once

#include <string>

namespace hlsw::hls {

struct TechLibrary {
  std::string name;
  std::string description;

  // Delay model coefficients.
  double add_delay_base = 0.0;   // ns
  double add_delay_per_bit = 0.0;
  double mul_delay_base = 0.0;
  double mul_delay_per_bit = 0.0;  // times max(wa, wb)
  double mul_delay_per_min_bit = 0.0;  // times min(wa, wb)
  double mux_delay = 0.0;        // one 2:1 stage
  double wire_delay = 0.0;       // per-op routing allowance
  double reg_margin = 0.0;       // setup + clk->q, charged once per cycle
  double mem_access_delay = 0.0; // synchronous RAM access

  // Area model coefficients (NAND2 equivalents).
  double add_area_per_bit = 5.0;     // full adder cell
  double mul_area_per_bit2 = 5.0;    // array multiplier cell, times wa*wb
  double reg_area_per_bit = 4.0;     // DFF
  double mux_area_per_bit = 2.5;     // one 2:1 leg per extra input
  double fsm_area_per_state = 8.0;   // one-hot state flop + decode
  double counter_area_per_bit = 10.0;
  double mem_area_per_bit = 0.8;     // SRAM bit (denser than DFF)
  double mem_port_overhead = 200.0;  // decoder/sense amps per port
  double io_area_per_bit = 6.0;      // pad/register per interface bit

  // -- Derived queries --------------------------------------------------------
  double add_delay(int w) const { return add_delay_base + add_delay_per_bit * w; }
  double add_area(int w) const { return add_area_per_bit * w; }
  double mul_delay(int wa, int wb) const {
    const int mx = wa > wb ? wa : wb;
    const int mn = wa > wb ? wb : wa;
    return mul_delay_base + mul_delay_per_bit * mx + mul_delay_per_min_bit * mn;
  }
  double mul_area(int wa, int wb) const { return mul_area_per_bit2 * wa * wb; }
  double reg_area(int bits) const { return reg_area_per_bit * bits; }
  double mux_area(int inputs, int bits) const {
    return inputs <= 1 ? 0.0 : mux_area_per_bit * (inputs - 1) * bits;
  }
  double fsm_area(int states, int counter_bits) const {
    return fsm_area_per_state * states + counter_area_per_bit * counter_bits;
  }
  double mem_area(int bits, int ports) const {
    return mem_area_per_bit * bits + mem_port_overhead * ports;
  }

  // A representative 90nm-class ASIC library (the paper's 100 MHz target
  // leaves ~10 ns per cycle; a 10x10 multiply-accumulate chains comfortably).
  static TechLibrary asic90();
  // A generic LUT4 FPGA: ~3x slower cells, register-rich (experiment S5c).
  static TechLibrary fpga_lut4();
};

}  // namespace hlsw::hls
