#include "hls/bitwidth_pass.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

namespace hlsw::hls {

namespace {

// Raw-value interval at a binary scale. Covers both complex components.
struct Ival {
  __int128 lo = 0;
  __int128 hi = 0;
  int fw = 0;

  bool operator==(const Ival&) const = default;
};

Ival type_range(const FxType& t) {
  Ival r;
  r.fw = t.fw();
  r.hi = (static_cast<__int128>(1) << (t.sgn ? t.w - 1 : t.w)) - 1;
  r.lo = t.sgn ? -(static_cast<__int128>(1) << (t.w - 1)) : 0;
  return r;
}

void align_pair(Ival& a, Ival& b) {
  if (a.fw < b.fw) {
    a.lo <<= (b.fw - a.fw);
    a.hi <<= (b.fw - a.fw);
    a.fw = b.fw;
  } else if (b.fw < a.fw) {
    b.lo <<= (a.fw - b.fw);
    b.hi <<= (a.fw - b.fw);
    b.fw = a.fw;
  }
}

Ival unite(Ival a, Ival b) {
  align_pair(a, b);
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi), a.fw};
}

Ival iadd(Ival a, Ival b) {
  align_pair(a, b);
  return {a.lo + b.lo, a.hi + b.hi, a.fw};
}
Ival isub(Ival a, Ival b) {
  align_pair(a, b);
  return {a.lo - b.hi, a.hi - b.lo, a.fw};
}
Ival imul(const Ival& a, const Ival& b) {
  const __int128 p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  Ival r;
  r.fw = a.fw + b.fw;
  r.lo = std::min(std::min(p[0], p[1]), std::min(p[2], p[3]));
  r.hi = std::max(std::max(p[0], p[1]), std::max(p[2], p[3]));
  return r;
}
Ival ineg(const Ival& a) { return {-a.hi, -a.lo, a.fw}; }

// Conservative conversion into a destination type: if every value fits
// (with one ulp of rounding slack), the interval passes through rescaled;
// otherwise overflow handling makes the whole type range reachable.
Ival iconvert(const Ival& v, const FxType& dst) {
  const Ival full = type_range(dst);
  Ival r;
  r.fw = dst.fw();
  const int shift = dst.fw() - v.fw;
  if (shift >= 0) {
    r.lo = v.lo << shift;
    r.hi = v.hi << shift;
  } else {
    r.lo = v.lo >> (-shift);
    r.hi = (v.hi >> (-shift)) + 1;  // rounding may bump up one ulp
  }
  if (r.lo < full.lo || r.hi > full.hi) return full;
  return r;
}

// Minimum signed width holding raw interval [lo, hi].
int width_for(const Ival& v) {
  int w = 1;
  while (true) {
    const __int128 hi = (static_cast<__int128>(1) << (w - 1)) - 1;
    const __int128 lo = -(static_cast<__int128>(1) << (w - 1));
    if (v.lo >= lo && v.hi <= hi) return w;
    ++w;
    if (w >= 120) return 120;
  }
}

struct AnalysisState {
  std::vector<Ival> vars;
  std::vector<Ival> arrays;  // one interval per array (all elements)
  bool operator==(const AnalysisState&) const = default;
};

class Analyzer {
 public:
  explicit Analyzer(const Function& f) : f_(f) {
    // Start from initial state: zeros (locals and statics) except ports,
    // which can hold anything their type allows.
    for (const auto& v : f.vars) {
      Ival init{v.init.re, v.init.re, v.type.fw()};
      if (v.type.cplx) init = unite(init, {v.init.im, v.init.im, v.type.fw()});
      const bool externally_driven =
          v.port == PortDir::kIn || v.port == PortDir::kInOut;
      state_.vars.push_back(externally_driven ? type_range(v.type) : init);
    }
    for (const auto& a : f.arrays) {
      const bool externally_driven =
          a.port == PortDir::kIn || a.port == PortDir::kInOut;
      state_.arrays.push_back(externally_driven ? type_range(a.elem)
                                                : Ival{0, 0, a.elem.fw()});
    }
    op_ranges_.resize(f.regions.size());
    for (std::size_t r = 0; r < f.regions.size(); ++r) {
      const Block& b = f.regions[r].is_loop ? f.regions[r].loop.body
                                            : f.regions[r].straight;
      op_ranges_[r].assign(b.ops.size(), Ival{0, 0, 0});
      op_seen_[r] = std::vector<bool>(b.ops.size(), false);
    }
  }

  // Iterates whole-function evaluation (one pass = one invocation, with
  // state persisting like C statics) until the state reaches a fixpoint, or
  // a safety cap after which everything widens to declared type ranges.
  // Variable writes are strong updates (flow-sensitive); array writes are
  // weak (one summary interval per array). Op ranges are recorded in a
  // final pass under the fixpoint state only.
  void run() {
    bool converged = false;
    for (int iter = 0; iter < 16; ++iter) {
      AnalysisState before = state_;
      eval_function(/*record=*/false);
      if (state_ == before) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      // No fixpoint within the cap (e.g. slowly-adapting statics): fall
      // back to declared ranges, which are trivially invariant.
      for (std::size_t i = 0; i < state_.vars.size(); ++i)
        state_.vars[i] = type_range(f_.vars[i].type);
      for (std::size_t i = 0; i < state_.arrays.size(); ++i)
        state_.arrays[i] = type_range(f_.arrays[i].elem);
    }
    eval_function(/*record=*/true);
  }

  const Ival& op_range(std::size_t region, std::size_t op) const {
    return op_ranges_[region][op];
  }
  bool op_seen(std::size_t region, std::size_t op) const {
    return op_seen_.at(region)[op];
  }
  const Ival& var_range(std::size_t v) const { return state_.vars[v]; }

 private:
  void eval_function(bool record) {
    for (std::size_t r = 0; r < f_.regions.size(); ++r) {
      const Region& region = f_.regions[r];
      if (region.is_loop) {
        const int trip = std::min(region.loop.trip, 4096);
        for (int k = 0; k < trip; ++k)
          eval_block(r, region.loop.body, k, record);
      } else {
        eval_block(r, region.straight, 0, record);
      }
    }
  }

  void eval_block(std::size_t rid, const Block& b, int k, bool record) {
    std::vector<Ival> vals(b.ops.size());
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      const Op& op = b.ops[i];
      if (op.guard_trip >= 0 && k >= op.guard_trip) continue;
      Ival v;
      switch (op.kind) {
        case OpKind::kConst: {
          v = {op.cval.re, op.cval.re, op.cval.fw};
          if (op.cval.cplx) v = unite(v, {op.cval.im, op.cval.im, op.cval.fw});
          break;
        }
        case OpKind::kVarRead:
          v = state_.vars[static_cast<size_t>(op.var)];
          break;
        case OpKind::kVarWrite: {
          const Ival w = iconvert(vals[static_cast<size_t>(op.args[0])],
                                  f_.vars[static_cast<size_t>(op.var)].type);
          Ival& st = state_.vars[static_cast<size_t>(op.var)];
          // Strong update when the write executes unconditionally; guarded
          // writes (merged/unrolled tails) may be skipped, so union.
          st = op.guard_trip >= 0 ? unite(st, w) : w;
          v = w;
          break;
        }
        case OpKind::kArrayRead:
          v = state_.arrays[static_cast<size_t>(op.array)];
          break;
        case OpKind::kArrayWrite: {
          const Ival w =
              iconvert(vals[static_cast<size_t>(op.args[0])],
                       f_.arrays[static_cast<size_t>(op.array)].elem);
          state_.arrays[static_cast<size_t>(op.array)] =
              unite(state_.arrays[static_cast<size_t>(op.array)], w);
          v = w;
          break;
        }
        case OpKind::kAdd:
          v = iconvert(iadd(vals[static_cast<size_t>(op.args[0])],
                            vals[static_cast<size_t>(op.args[1])]),
                       op.type);
          break;
        case OpKind::kSub:
          v = iconvert(isub(vals[static_cast<size_t>(op.args[0])],
                            vals[static_cast<size_t>(op.args[1])]),
                       op.type);
          break;
        case OpKind::kMul:
          v = iconvert(imul(vals[static_cast<size_t>(op.args[0])],
                            vals[static_cast<size_t>(op.args[1])]),
                       op.type);
          break;
        case OpKind::kNeg:
          v = iconvert(ineg(vals[static_cast<size_t>(op.args[0])]), op.type);
          break;
        case OpKind::kSignConj:
          v = {-1, 1, 0};
          break;
        case OpKind::kCast:
          v = iconvert(vals[static_cast<size_t>(op.args[0])], op.type);
          break;
        case OpKind::kReal:
        case OpKind::kImag:
          v = vals[static_cast<size_t>(op.args[0])];
          break;
        case OpKind::kMakeComplex:
          v = iconvert(unite(vals[static_cast<size_t>(op.args[0])],
                             vals[static_cast<size_t>(op.args[1])]),
                       op.type);
          break;
      }
      vals[i] = v;
      if (record) {
        op_ranges_[rid][i] =
            op_seen_[rid][i] ? unite(op_ranges_[rid][i], v) : v;
        op_seen_[rid][i] = true;
      }
    }
  }

  const Function& f_;
  AnalysisState state_;
  std::vector<std::vector<Ival>> op_ranges_;
  std::map<std::size_t, std::vector<bool>> op_seen_;
};

}  // namespace

BitwidthResult reduce_bitwidths(Function* f) {
  BitwidthResult out;
  Analyzer an(*f);
  an.run();

  // Narrow arithmetic result widths where the observed range fits. The iw
  // shrinks with w so the fractional scale (and thus every bit pattern) is
  // unchanged — only the unused sign-extension bits are dropped.
  for (std::size_t r = 0; r < f->regions.size(); ++r) {
    Region& region = f->regions[r];
    Block& b = region.is_loop ? region.loop.body : region.straight;
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      Op& op = b.ops[i];
      const bool arith = op.kind == OpKind::kAdd || op.kind == OpKind::kSub ||
                         op.kind == OpKind::kMul || op.kind == OpKind::kNeg;
      if (!arith || !an.op_seen(r, i)) continue;
      const int need = width_for(an.op_range(r, i));
      if (need < op.type.w) {
        out.reductions.push_back({"region '" + region.name + "' op %" +
                                      std::to_string(i) + " (" +
                                      to_string(op.kind) + ")",
                                  op.type.w, need});
        out.bits_saved +=
            (op.type.w - need) * (op.type.cplx ? 2 : 1);
        op.type.iw -= (op.type.w - need);
        op.type.w = need;
      }
    }
  }

  // Narrow non-port variables the same way.
  for (std::size_t v = 0; v < f->vars.size(); ++v) {
    Var& var = f->vars[v];
    if (var.port != PortDir::kNone || !var.type.sgn) continue;
    const int need = width_for(an.var_range(v));
    if (need < var.type.w) {
      out.reductions.push_back({"var '" + var.name + "'", var.type.w, need});
      out.bits_saved += (var.type.w - need) * (var.type.cplx ? 2 : 1);
      var.type.iw -= (var.type.w - need);
      var.type.w = need;
    }
  }
  return out;
}

}  // namespace hlsw::hls
