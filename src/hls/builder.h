// Fluent construction API for the HLS IR — the stand-in for "writing the
// algorithm in C" (paper section 3). Each BlockBuilder method appends one op
// and returns its value id; arithmetic ops compute the same full-precision
// result types as the fixpt::fixed / complex_fixed operator templates, so a
// model written with the builder is bit-exact with the same model written
// against the datatype library (tests/qam enforce this for the decoder).
#pragma once

#include <string>
#include <utility>

#include "hls/ir.h"

namespace hlsw::hls {

// Result-type promotion mirroring fixpt::fixed's operator rules. Signedness
// is promoted like the datatype library: unsigned operands gain one integer
// bit when combined with signed ones.
FxType promote_add(const FxType& a, const FxType& b);
FxType promote_mul(const FxType& a, const FxType& b);
FxType promote_neg(const FxType& a);

class FunctionBuilder;

class BlockBuilder {
 public:
  // Value ids index ops within this block.
  int cnst(const FxType& t, double value, const std::string& name = "");
  int cnst_raw(const FxType& t, long long re_raw, long long im_raw = 0,
               const std::string& name = "");
  int var_read(int var);
  int var_write(int var, int value);
  int array_read(int array, AffineIdx idx);
  int array_write(int array, AffineIdx idx, int value);
  int add(int a, int b, const std::string& name = "");
  int sub(int a, int b, const std::string& name = "");
  int mul(int a, int b, const std::string& name = "");
  int neg(int a);
  int sign_conj(int a);
  int cast(const FxType& t, int a, const std::string& name = "");
  int real(int a);
  int imag(int a);
  int make_complex(int a, int b);

  const Op& op(int id) const { return block().ops[static_cast<size_t>(id)]; }

 private:
  friend class FunctionBuilder;
  // Stores the region index, not a pointer: the regions vector may
  // reallocate as further regions are added, so builders stay valid even
  // if used interleaved.
  BlockBuilder(Function* f, int region) : func_(f), region_(region) {}
  int push(Op op);
  Block& block() {
    Region& r = func_->regions[static_cast<size_t>(region_)];
    return r.is_loop ? r.loop.body : r.straight;
  }
  const Block& block() const {
    const Region& r = func_->regions[static_cast<size_t>(region_)];
    return r.is_loop ? r.loop.body : r.straight;
  }
  const FxType& type_of(int id) const {
    return block().ops[static_cast<size_t>(id)].type;
  }

  Function* func_;
  int region_;
};

class FunctionBuilder {
 public:
  explicit FunctionBuilder(std::string name) { f_.name = std::move(name); }

  int add_var(const std::string& name, const FxType& t, bool is_static = false,
              PortDir port = PortDir::kNone, FxValue init = {});
  int add_array(const std::string& name, int length, const FxType& elem,
                bool is_static = false, PortDir port = PortDir::kNone);

  // Starts a new straight-line region; the returned builder appends to it.
  BlockBuilder block(const std::string& name);
  // Starts a new loop region with canonical induction k = 0 .. trip-1.
  BlockBuilder loop(const std::string& label, int trip);

  Function build() { return std::move(f_); }
  const Function& peek() const { return f_; }

 private:
  Function f_;
};

// Convenience FxType factories.
inline FxType fx(int w, int iw, bool cplx = false,
                 fixpt::Quant q = fixpt::Quant::kTrn,
                 fixpt::Ovf o = fixpt::Ovf::kWrap, bool sgn = true) {
  return FxType{w, iw, sgn, cplx, q, o};
}
inline FxType cfx(int w, int iw, fixpt::Quant q = fixpt::Quant::kTrn,
                  fixpt::Ovf o = fixpt::Ovf::kWrap) {
  return FxType{w, iw, true, true, q, o};
}

}  // namespace hlsw::hls
