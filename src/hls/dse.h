// Automated design-space exploration: the paper's workflow — try merge and
// unroll combinations, synthesize each, keep the Pareto-optimal
// latency/area points — packaged as an API. Section 5's Table 1 is four
// hand-picked points from exactly this space; explore() enumerates it
// systematically.
#pragma once

#include <string>
#include <vector>

#include "hls/report.h"

namespace hlsw::hls {

struct DsePoint {
  std::string name;
  Directives dir;
  int latency_cycles = 0;
  double latency_ns = 0;
  double area = 0;
  bool pareto = false;  // not dominated in (latency_cycles, area)
};

struct DseOptions {
  double clock_period_ns = 10.0;
  // Unroll factors tried on every loop whose trip count they divide
  // usefully (factor < trip). 1 = no unrolling.
  std::vector<int> unroll_factors = {1, 2, 4};
  // Explore with and without auto-merging.
  bool try_merge = true;
  bool try_no_merge = true;
  // Cap on the number of synthesized configurations (the sweep is
  // exponential in principle; we sweep a common factor across all loops
  // plus per-loop refinements of the best point).
  int max_configs = 64;
};

struct DseResult {
  std::vector<DsePoint> points;  // every synthesized configuration
  // Convenience views.
  std::vector<const DsePoint*> pareto_front() const;
  const DsePoint* fastest() const;
  const DsePoint* smallest() const;
  // The smallest point meeting a latency bound, or nullptr.
  const DsePoint* smallest_within(int max_cycles) const;
};

DseResult explore(const Function& f, const DseOptions& opts,
                  const TechLibrary& tech);

}  // namespace hlsw::hls
