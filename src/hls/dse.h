// Automated design-space exploration: the paper's workflow — try merge and
// unroll combinations, synthesize each, keep the Pareto-optimal
// latency/area points — packaged as an API. Section 5's Table 1 is four
// hand-picked points from exactly this space; explore() enumerates it
// systematically.
//
// The sweep is embarrassingly parallel (every configuration synthesizes
// independently) and highly redundant (the refinement phase re-derives
// configurations the common-factor sweep already visited). explore()
// therefore runs candidates across a util::ThreadPool and memoizes
// synthesis results in a SynthesisCache keyed by (IR fingerprint,
// directives, clock, tech library). Results are bit-identical to the
// serial path regardless of thread count: candidates are enumerated, named
// and collected on the calling thread in a deterministic order, and worker
// threads only evaluate the pure run_synthesis() function.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hls/report.h"
#include "hls/synth_cache.h"
#include "obs/json.h"

namespace hlsw::util {
class ThreadPool;
}

namespace hlsw::hls {

struct DsePoint {
  std::string name;
  Directives dir;
  int latency_cycles = 0;
  double latency_ns = 0;
  double area = 0;
  bool pareto = false;  // not dominated in (latency_cycles, area)
};

// Passed to DseOptions::progress after each configuration resolves.
//
// Ordering guarantee: progress fires on the thread that called explore()
// (never on a worker), once per resolved point, in candidate enumeration
// order — which is exactly the order of DseResult::points. `index` is the
// point's position in that vector and increases strictly by one; the whole
// event sequence is therefore deterministic and identical for any thread
// count (only wall_ms varies run to run).
struct DseProgress {
  std::size_t index = 0;    // position of this point in DseResult::points
  std::size_t done = 0;     // configurations resolved so far (== index + 1)
  std::size_t planned = 0;  // configurations planned so far (grows per phase)
  bool from_cache = false;  // this point came from the memoization cache
  double wall_ms = 0;       // elapsed wall time since explore() started
  // Cumulative prune counters at the time this point resolved (see the
  // DseResult fields of the same names). Prune decisions happen during
  // enumeration on the calling thread, so these are deterministic too.
  std::size_t pruned_infeasible = 0;
  std::size_t pruned_dominated = 0;
};

struct DseOptions {
  double clock_period_ns = 10.0;
  // Unroll factors tried on every loop whose trip count they divide
  // usefully (factor < trip). 1 = no unrolling. Must be non-empty,
  // positive and duplicate-free (explore() throws std::invalid_argument
  // otherwise — a degenerate axis silently sweeps nothing).
  std::vector<int> unroll_factors = {1, 2, 4};
  // Pipeline initiation intervals tried on the innermost sweep axis:
  // 0 = no pipelining, k >= 1 requests II = k on every surviving loop.
  // Same validity rules as unroll_factors (entries must be >= 0).
  std::vector<int> pipeline_iis = {0, 1};
  // Explore with and without auto-merging. At least one must be true.
  bool try_merge = true;
  bool try_no_merge = true;
  // Static feasibility pruning (hls/feasibility.h): candidates whose
  // directives provably synthesize identically to an already-planned
  // canonical form are redirected to it (served from the cache, no extra
  // schedule), and candidates provably dominated by an already-resolved
  // point are skipped outright. Pruning never changes the Pareto front —
  // the soundness oracle in tests/hls/feasibility_test.cpp enforces this —
  // it only removes redundant scheduler work. Off = schedule everything.
  bool prune = true;
  // Cap on the number of synthesized configurations (the sweep is
  // exponential in principle; we sweep a common factor across all loops
  // plus per-loop refinements of the best points). Raised from the
  // historical 256 now that feasibility pruning makes the II axis and
  // deeper refinement nearly free (see bench_exploration's prune legs).
  int max_configs = 1024;
  // Worker threads for the synthesis batch. 0 = hardware concurrency;
  // 1 = legacy serial path (no pool is created). Any value produces
  // bit-identical points in identical order.
  unsigned threads = 0;
  // Seed for the deterministic tie-break applied when ranking points with
  // equal (latency, area) — see DseResult::pareto_front().
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  // Optional shared memoization cache. When set, it persists across
  // explore() calls: a cache-warm re-exploration performs zero new
  // schedules. When null, explore() uses a private per-call cache (the
  // refinement phase still benefits).
  std::shared_ptr<SynthesisCache> cache;
  // Optional shared worker pool, reused across explore() calls. When null
  // and threads != 1, explore() creates a pool for the call.
  std::shared_ptr<util::ThreadPool> pool;
  // External executor for candidate-synthesis work units. When set, it
  // replaces the pool/threads machinery entirely: explore() hands each
  // batched synthesis closure to the hook, which must run it exactly once
  // on some thread (inline is legal). Enumeration, accounting and
  // collection stay on the calling thread in candidate order, so results
  // remain bit-identical to the serial path no matter where or in what
  // order the closures execute. This is how hlsw::serve shards one DSE job
  // into fair-scheduled work units competing with other tenants' jobs.
  std::function<void(std::function<void()>)> executor;
  // Observability hook — see the DseProgress ordering guarantee above.
  std::function<void(const DsePoint&, const DseProgress&)> progress;
  // When non-empty, explore() writes a run-level structured JSON artifact
  // (every point, the Pareto front, cache counters, wall time) to this
  // path on return — the machine-readable counterpart of `progress`. See
  // dse_run_json() for the document layout.
  std::string report_path;
};

// One prune decision made during enumeration (DseResult::pruned). A
// "dominated" record is a candidate skipped outright (it has no DsePoint
// row); every other kind is an infeasible candidate redirected to its
// metrics-equivalent clamped form (its row exists under the same name and
// usually resolves as a cache hit).
struct DsePruned {
  std::string name;
  std::string kind;    // to_string(InfeasibleKind) or "dominated"
  std::string reason;  // human-readable explanation
};

struct DseResult {
  std::vector<DsePoint> points;  // every synthesized configuration
  // Memoization counters: hits = configurations served without a schedule
  // (refinement revisits + warm-cache lookups), misses = schedules run.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  // Feasibility-prune counters (hls/feasibility.h). pruned_infeasible =
  // candidates redirected to a clamped canonical form (row kept, schedule
  // usually saved); pruned_dominated = candidates skipped because a
  // resolved point provably dominates their metric lower bounds (no row);
  // scheduled = candidate rows actually evaluated (== points.size()).
  std::size_t pruned_infeasible = 0;
  std::size_t pruned_dominated = 0;
  std::size_t scheduled = 0;
  std::vector<DsePruned> pruned;  // one record per prune decision
  // Tie-break seed the points were ranked with (copied from DseOptions).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  // Convenience views.
  std::vector<const DsePoint*> pareto_front() const;
  const DsePoint* fastest() const;
  const DsePoint* smallest() const;
  // The smallest point meeting a latency bound, or nullptr.
  const DsePoint* smallest_within(int max_cycles) const;
};

// Marks each point's `pareto` flag: true iff no other point dominates it
// in (latency_cycles, area). Pure dominance predicate — exact-tie groups
// all keep the flag here; explore() additionally demotes all but the
// first-enumerated member of each tie group in its result (the II axis
// and feasibility redirects produce metrics-identical rows for distinct
// directive spellings). Exposed for property tests and custom sweeps.
void mark_pareto(std::vector<DsePoint>& points);

// Throws std::invalid_argument on degenerate options: max_configs <= 0,
// non-positive clock, empty / non-positive / duplicate unroll_factors,
// empty / negative / duplicate pipeline_iis, or both merge modes false.
DseResult explore(const Function& f, const DseOptions& opts,
                  const TechLibrary& tech);

// The dse_run.json document explore() writes for DseOptions::report_path:
// {"tool":"hlsw.dse", "schema_version":2, "wall_ms":..., "threads":...,
//  "cache_hits":..., "cache_misses":..., "seed":"0x...",
//  "pruned_infeasible":..., "pruned_dominated":..., "scheduled":...,
//  "points":[{"name","latency_cycles","latency_ns","area","pareto"}...],
//  "pruned":[{"name","kind","reason"}...], "pareto_front":["name"...]}.
// Schema history: v2 added the three prune counters and the "pruned"
// array (PR 6); v1 had neither. Exposed so tools and tests can build the
// same artifact from an in-memory result.
obs::Json dse_run_json(const DseResult& r, const DseOptions& opts,
                       double wall_ms);

}  // namespace hlsw::hls
