// Automated design-space exploration: the paper's workflow — try merge and
// unroll combinations, synthesize each, keep the Pareto-optimal
// latency/area points — packaged as an API. Section 5's Table 1 is four
// hand-picked points from exactly this space; explore() enumerates it
// systematically.
//
// The sweep is embarrassingly parallel (every configuration synthesizes
// independently) and highly redundant (the refinement phase re-derives
// configurations the common-factor sweep already visited). explore()
// therefore runs candidates across a util::ThreadPool and memoizes
// synthesis results in a SynthesisCache keyed by (IR fingerprint,
// directives, clock, tech library). Results are bit-identical to the
// serial path regardless of thread count: candidates are enumerated, named
// and collected on the calling thread in a deterministic order, and worker
// threads only evaluate the pure run_synthesis() function.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hls/report.h"
#include "hls/synth_cache.h"
#include "obs/json.h"

namespace hlsw::util {
class ThreadPool;
}

namespace hlsw::hls {

struct DsePoint {
  std::string name;
  Directives dir;
  int latency_cycles = 0;
  double latency_ns = 0;
  double area = 0;
  bool pareto = false;  // not dominated in (latency_cycles, area)
};

// Passed to DseOptions::progress after each configuration resolves.
//
// Ordering guarantee: progress fires on the thread that called explore()
// (never on a worker), once per resolved point, in candidate enumeration
// order — which is exactly the order of DseResult::points. `index` is the
// point's position in that vector and increases strictly by one; the whole
// event sequence is therefore deterministic and identical for any thread
// count (only wall_ms varies run to run).
struct DseProgress {
  std::size_t index = 0;    // position of this point in DseResult::points
  std::size_t done = 0;     // configurations resolved so far (== index + 1)
  std::size_t planned = 0;  // configurations planned so far (grows per phase)
  bool from_cache = false;  // this point came from the memoization cache
  double wall_ms = 0;       // elapsed wall time since explore() started
};

struct DseOptions {
  double clock_period_ns = 10.0;
  // Unroll factors tried on every loop whose trip count they divide
  // usefully (factor < trip). 1 = no unrolling.
  std::vector<int> unroll_factors = {1, 2, 4};
  // Explore with and without auto-merging.
  bool try_merge = true;
  bool try_no_merge = true;
  // Cap on the number of synthesized configurations (the sweep is
  // exponential in principle; we sweep a common factor across all loops
  // plus per-loop refinements of the best points). Raised from the
  // historical 64 now that the pool + cache make wide sweeps affordable.
  int max_configs = 256;
  // Worker threads for the synthesis batch. 0 = hardware concurrency;
  // 1 = legacy serial path (no pool is created). Any value produces
  // bit-identical points in identical order.
  unsigned threads = 0;
  // Seed for the deterministic tie-break applied when ranking points with
  // equal (latency, area) — see DseResult::pareto_front().
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  // Optional shared memoization cache. When set, it persists across
  // explore() calls: a cache-warm re-exploration performs zero new
  // schedules. When null, explore() uses a private per-call cache (the
  // refinement phase still benefits).
  std::shared_ptr<SynthesisCache> cache;
  // Optional shared worker pool, reused across explore() calls. When null
  // and threads != 1, explore() creates a pool for the call.
  std::shared_ptr<util::ThreadPool> pool;
  // Observability hook — see the DseProgress ordering guarantee above.
  std::function<void(const DsePoint&, const DseProgress&)> progress;
  // When non-empty, explore() writes a run-level structured JSON artifact
  // (every point, the Pareto front, cache counters, wall time) to this
  // path on return — the machine-readable counterpart of `progress`. See
  // dse_run_json() for the document layout.
  std::string report_path;
};

struct DseResult {
  std::vector<DsePoint> points;  // every synthesized configuration
  // Memoization counters: hits = configurations served without a schedule
  // (refinement revisits + warm-cache lookups), misses = schedules run.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  // Tie-break seed the points were ranked with (copied from DseOptions).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  // Convenience views.
  std::vector<const DsePoint*> pareto_front() const;
  const DsePoint* fastest() const;
  const DsePoint* smallest() const;
  // The smallest point meeting a latency bound, or nullptr.
  const DsePoint* smallest_within(int max_cycles) const;
};

// Marks each point's `pareto` flag: true iff no other point dominates it
// in (latency_cycles, area). Exposed for property tests and custom sweeps.
void mark_pareto(std::vector<DsePoint>& points);

DseResult explore(const Function& f, const DseOptions& opts,
                  const TechLibrary& tech);

// The dse_run.json document explore() writes for DseOptions::report_path:
// {"tool":"hlsw.dse", "schema_version":1, "wall_ms":..., "threads":...,
//  "cache_hits":..., "cache_misses":..., "seed":"0x...", "points":[
//  {"name","latency_cycles","latency_ns","area","pareto"}...],
//  "pareto_front":["name"...]}. Exposed so tools and tests can build the
// same artifact from an in-memory result.
obs::Json dse_run_json(const DseResult& r, const DseOptions& opts,
                       double wall_ms);

}  // namespace hlsw::hls
