#include "hls/synth_cache.h"

#include <sstream>

namespace hlsw::hls {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t function_fingerprint(const Function& f) {
  return fnv1a64(f.dump());
}

std::uint64_t tech_fingerprint(const TechLibrary& tech) {
  std::ostringstream os;
  os.precision(17);
  os << tech.name << '|' << tech.add_delay_base << '|' << tech.add_delay_per_bit
     << '|' << tech.mul_delay_base << '|' << tech.mul_delay_per_bit << '|'
     << tech.mul_delay_per_min_bit << '|' << tech.mux_delay << '|'
     << tech.wire_delay << '|' << tech.reg_margin << '|'
     << tech.mem_access_delay << '|' << tech.add_area_per_bit << '|'
     << tech.mul_area_per_bit2 << '|' << tech.reg_area_per_bit << '|'
     << tech.mux_area_per_bit << '|' << tech.fsm_area_per_state << '|'
     << tech.counter_area_per_bit << '|' << tech.mem_area_per_bit << '|'
     << tech.mem_port_overhead << '|' << tech.io_area_per_bit;
  return fnv1a64(os.str());
}

std::string dse_cache_key(std::uint64_t func_fingerprint, const Directives& dir,
                          const TechLibrary& tech) {
  std::ostringstream os;
  os.precision(17);
  os << std::hex << func_fingerprint << '/' << tech_fingerprint(tech)
     << std::dec;
  os << ";clk=" << dir.clock_period_ns;
  os << ";am=" << dir.auto_merge << ";hs=" << dir.handshake
     << ";mrm=" << dir.max_real_multipliers;
  os << ";loops=";
  for (const auto& [label, ld] : dir.loops) {  // std::map: sorted order
    const int u = ld.unroll <= 1 ? 1 : ld.unroll;
    if (u == 1 && ld.pipeline_ii == 0) continue;  // default: omit
    os << label << ":u" << u << ":p" << ld.pipeline_ii << ',';
  }
  os << ";mg=";
  for (const auto& group : dir.merge_groups) {
    for (const auto& label : group) os << label << '.';
    os << '|';
  }
  os << ";arr=";
  for (const auto& [name, ad] : dir.arrays) {
    if (ad.mapping == ArrayMapping::kRegisters && ad.mem_read_ports == 1 &&
        ad.mem_write_ports == 1)
      continue;  // default: omit
    os << name << ':' << static_cast<int>(ad.mapping) << ':'
       << ad.mem_read_ports << ':' << ad.mem_write_ports << ',';
  }
  os << ";if=";
  for (const auto& [name, kind] : dir.interfaces)
    os << name << ':' << static_cast<int>(kind) << ',';
  return os.str();
}

bool SynthesisCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.find(key) != map_.end();
}

SynthesisCache::Metrics SynthesisCache::get_or_compute(
    const std::string& key, const std::function<Metrics()>& compute,
    bool* hit) {
  std::shared_future<Metrics> fut;
  std::promise<Metrics> prom;
  bool claimed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      fut = it->second;
    } else {
      fut = prom.get_future().share();
      map_.emplace(key, fut);
      claimed = true;
    }
  }
  if (hit) *hit = !claimed;
  if (!claimed) return fut.get();  // blocks if another thread is computing
  try {
    Metrics m = compute();
    prom.set_value(m);
    return m;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      map_.erase(key);  // allow a later call to retry
    }
    prom.set_exception(std::current_exception());
    throw;
  }
}

std::size_t SynthesisCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void SynthesisCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

}  // namespace hlsw::hls
