#include "hls/synth_cache.h"

#include <cstdio>
#include <cstring>

namespace hlsw::hls {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t function_fingerprint(const Function& f) {
  return fnv1a64(f.dump());
}

std::uint64_t tech_fingerprint(const TechLibrary& tech) {
  // Hashed from the raw value bits: every field participates, no
  // formatting round-trip. Keys are in-memory only, so the scheme is free
  // to change between builds — only injectivity per process matters.
  std::uint64_t h = fnv1a64(tech.name);
  const double vals[] = {tech.add_delay_base,      tech.add_delay_per_bit,
                         tech.mul_delay_base,      tech.mul_delay_per_bit,
                         tech.mul_delay_per_min_bit, tech.mux_delay,
                         tech.wire_delay,          tech.reg_margin,
                         tech.mem_access_delay,    tech.add_area_per_bit,
                         tech.mul_area_per_bit2,   tech.reg_area_per_bit,
                         tech.mux_area_per_bit,    tech.fsm_area_per_state,
                         tech.counter_area_per_bit, tech.mem_area_per_bit,
                         tech.mem_port_overhead,   tech.io_area_per_bit};
  for (const double v : vals) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

std::string dse_cache_key(std::uint64_t func_fingerprint, const Directives& dir,
                          const TechLibrary& tech) {
  // Hot path: explore() builds two keys per candidate (three with pruning
  // on), so this avoids ostringstream in favor of direct appends.
  std::string key;
  key.reserve(160);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llx/%llx;clk=%.17g",
                static_cast<unsigned long long>(func_fingerprint),
                static_cast<unsigned long long>(tech_fingerprint(tech)),
                dir.clock_period_ns);
  key += buf;
  std::snprintf(buf, sizeof buf, ";am=%d;hs=%d;mrm=%d", dir.auto_merge ? 1 : 0,
                dir.handshake ? 1 : 0, dir.max_real_multipliers);
  key += buf;
  key += ";loops=";
  for (const auto& [label, ld] : dir.loops) {  // std::map: sorted order
    const int u = ld.unroll <= 1 ? 1 : ld.unroll;
    if (u == 1 && ld.pipeline_ii == 0) continue;  // default: omit
    key += label;
    std::snprintf(buf, sizeof buf, ":u%d:p%d,", u, ld.pipeline_ii);
    key += buf;
  }
  key += ";mg=";
  for (const auto& group : dir.merge_groups) {
    for (const auto& label : group) {
      key += label;
      key += '.';
    }
    key += '|';
  }
  key += ";arr=";
  for (const auto& [name, ad] : dir.arrays) {
    if (ad.mapping == ArrayMapping::kRegisters && ad.mem_read_ports == 1 &&
        ad.mem_write_ports == 1)
      continue;  // default: omit
    key += name;
    std::snprintf(buf, sizeof buf, ":%d:%d:%d,", static_cast<int>(ad.mapping),
                  ad.mem_read_ports, ad.mem_write_ports);
    key += buf;
  }
  key += ";if=";
  for (const auto& [name, kind] : dir.interfaces) {
    key += name;
    std::snprintf(buf, sizeof buf, ":%d,", static_cast<int>(kind));
    key += buf;
  }
  return key;
}

bool SynthesisCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.find(key) != map_.end();
}

SynthesisCache::Metrics SynthesisCache::get_or_compute(
    const std::string& key, const std::function<Metrics()>& compute,
    bool* hit) {
  std::shared_future<Metrics> fut;
  std::promise<Metrics> prom;
  bool claimed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      fut = it->second;
    } else {
      fut = prom.get_future().share();
      map_.emplace(key, fut);
      claimed = true;
    }
  }
  if (hit) *hit = !claimed;
  if (!claimed) return fut.get();  // blocks if another thread is computing
  try {
    Metrics m = compute();
    prom.set_value(m);
    return m;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      map_.erase(key);  // allow a later call to retry
    }
    prom.set_exception(std::current_exception());
    throw;
  }
}

std::size_t SynthesisCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void SynthesisCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

}  // namespace hlsw::hls
