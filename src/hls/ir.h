// Intermediate representation for algorithmic C synthesis (paper section 2).
//
// Catapult consumes untimed C++ directly; we capture the same algorithm as
// a loop-structured dataflow IR built through hls/builder.h (see DESIGN.md
// section 5 for why a C frontend is out of scope and why this preserves
// every measured quantity). The IR is:
//
//  * Executable — hls/interp.* runs it bit-accurately ("the original C
//    model" role in the paper's verification story).
//  * Transformable — loop merging / unrolling / pipelining rewrite it
//    (hls/transforms.*).
//  * Schedulable — hls/schedule.* assigns every op a cycle under a clock
//    period and technology library, producing the micro-architecture.
//
// Structure: a Function is an ordered list of Regions; a Region is either a
// straight-line Block or a Loop with a trip count and a Block body. Regions
// communicate only through Vars and Arrays (exactly how Figure 4's loops
// communicate through `yffe`, `e`, `x[]`, `SV[]`, ...). Within a Block, op
// operands reference earlier ops by index (SSA-style), and reads/writes of
// Vars/Arrays carry the memory side effects, in program order.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "fixpt/quantization.h"

namespace hlsw::hls {

// Dynamic fixed-point type descriptor: the runtime mirror of
// fixpt::fixed<W,IW,Q,O,S> / fixpt::complex_fixed, limited to W <= 64
// (design signals; the QAM decoder never exceeds ~26 bits).
struct FxType {
  int w = 32;
  int iw = 32;
  bool sgn = true;
  bool cplx = false;
  fixpt::Quant q = fixpt::Quant::kTrn;
  fixpt::Ovf o = fixpt::Ovf::kWrap;

  int fw() const { return w - iw; }
  bool operator==(const FxType&) const = default;
  std::string to_string() const;
};

// Runtime value: raw integers scaled by 2^-fw. __int128 intermediates keep
// every product of two <=64-bit signals exact.
struct FxValue {
  __int128 re = 0;
  __int128 im = 0;
  int fw = 0;
  bool cplx = false;

  double re_double() const;
  double im_double() const;
  bool operator==(const FxValue&) const = default;
};

// Converts one raw component from src_fw scale into dst, applying dst's
// quantization and overflow modes. Single runtime source of truth shared by
// the interpreter and the RTL simulator; cross-checked against the static
// fixpt::fixed datatype in tests (they must agree bit for bit).
__int128 fx_convert_component(__int128 raw, int src_fw, const FxType& dst);

// Converts a full value (both components if complex) into type dst.
FxValue fx_convert(const FxValue& v, const FxType& dst);

enum class OpKind {
  kConst,        // literal (cval)
  kVarRead,      // read scalar variable `var`
  kVarWrite,     // write args[0] into variable `var` (converting to its type)
  kArrayRead,    // read array[idx(k)]
  kArrayWrite,   // write args[0] into array[idx(k)] (converting)
  kAdd,          // args[0] + args[1], full precision into op type
  kSub,          // args[0] - args[1]
  kMul,          // args[0] * args[1] (complex multiply when operands are)
  kNeg,          // -args[0]
  kSignConj,     // sign(re) - j*sign(im) of args[0], the sign-LMS regressor
  kCast,         // convert args[0] into op type (quantize/saturate)
  kReal,         // Re(args[0])
  kImag,         // Im(args[0])
  kMakeComplex,  // args[0] + j*args[1]
};

const char* to_string(OpKind k);

// Array index as an affine function of the canonical loop induction
// variable k: idx = scale*k + offset. Straight-line code uses scale = 0.
struct AffineIdx {
  int scale = 0;
  int offset = 0;
  int eval(int k) const { return scale * k + offset; }
  bool operator==(const AffineIdx&) const = default;
};

struct Op {
  OpKind kind = OpKind::kConst;
  FxType type;            // result type (and write-conversion target)
  std::vector<int> args;  // indices of earlier ops in the same block
  int var = -1;           // kVarRead/kVarWrite
  int array = -1;         // kArrayRead/kArrayWrite
  AffineIdx idx;          // kArrayRead/kArrayWrite
  FxValue cval;           // kConst
  // Guard for merged/unrolled loops: execute only when k < guard_trip.
  // Negative means unguarded (always execute).
  int guard_trip = -1;
  // The source loop this op originated from (report/diagnostic use).
  int src_loop = -1;
  std::string name;

  bool is_write() const {
    return kind == OpKind::kVarWrite || kind == OpKind::kArrayWrite;
  }
  bool is_mem_access() const {
    return kind == OpKind::kArrayRead || kind == OpKind::kArrayWrite;
  }
};

struct Block {
  std::vector<Op> ops;
};

struct Loop {
  std::string label;
  int trip = 0;  // canonical: k = 0 .. trip-1
  Block body;
  // Labels of source loops folded into this one by merging (reports).
  std::vector<std::string> merged_labels;
  // Unroll factor already applied (reports).
  int unroll_applied = 1;
};

struct Region {
  bool is_loop = false;
  std::string name;
  Block straight;  // valid when !is_loop
  Loop loop;       // valid when is_loop
};

enum class PortDir { kNone, kIn, kOut, kInOut };

struct Var {
  std::string name;
  FxType type;
  bool is_static = false;  // persists across invocations (Figure 4 statics)
  PortDir port = PortDir::kNone;
  FxValue init;  // initial value for statics
};

// How an array is realized in hardware (paper section 2.2).
enum class ArrayMapping { kRegisters, kMemory };

struct Array {
  std::string name;
  int length = 0;
  FxType elem;
  bool is_static = false;
  PortDir port = PortDir::kNone;
  ArrayMapping mapping = ArrayMapping::kRegisters;
  int mem_read_ports = 1;   // used when mapping == kMemory
  int mem_write_ports = 1;
};

struct Function {
  std::string name;
  std::vector<Var> vars;
  std::vector<Array> arrays;
  std::vector<Region> regions;

  int var_index(const std::string& name) const;
  int array_index(const std::string& name) const;
  const Region* find_loop(const std::string& label) const;
  Region* find_loop(const std::string& label);

  // Human-readable dump (debugging and golden tests).
  std::string dump() const;
};

}  // namespace hlsw::hls
