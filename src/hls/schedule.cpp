#include "hls/schedule.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "fixpt/bitwidth.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hlsw::hls {

namespace {

bool is_pow2_const(const Block& b, int opIdx) {
  const Op& op = b.ops[static_cast<size_t>(opIdx)];
  if (op.kind != OpKind::kConst) return false;
  if (op.cval.cplx && op.cval.im != 0) return false;
  __int128 v = op.cval.re;
  if (v < 0) v = -v;
  return v != 0 && (v & (v - 1)) == 0;
}

bool is_sign_value(const Block& b, int opIdx) {
  return b.ops[static_cast<size_t>(opIdx)].kind == OpKind::kSignConj;
}

}  // namespace

OpCost op_cost(const Function& f, const Block& b, int opIdx,
               const TechLibrary& tech) {
  const Op& op = b.ops[static_cast<size_t>(opIdx)];
  OpCost c;
  switch (op.kind) {
    case OpKind::kConst:
    case OpKind::kVarRead:
    case OpKind::kVarWrite:
    case OpKind::kReal:
    case OpKind::kImag:
    case OpKind::kMakeComplex:
    case OpKind::kSignConj:
      return c;  // wiring / register IO, covered by reg_margin

    case OpKind::kArrayRead: {
      const Array& arr = f.arrays[static_cast<size_t>(op.array)];
      if (arr.mapping == ArrayMapping::kMemory) {
        c.delay = tech.mem_access_delay;
        c.fu = "mem_read";
      } else if (op.idx.scale != 0) {
        // Variable index over a register bank: a read multiplexer tree.
        c.delay = tech.mux_delay * fixpt::clog2(
                      static_cast<unsigned long long>(arr.length));
      }
      return c;
    }
    case OpKind::kArrayWrite: {
      const Array& arr = f.arrays[static_cast<size_t>(op.array)];
      c.delay = arr.mapping == ArrayMapping::kMemory ? tech.mux_delay
                                                     : tech.mux_delay;
      if (arr.mapping == ArrayMapping::kMemory) c.fu = "mem_write";
      return c;
    }

    case OpKind::kAdd:
    case OpKind::kSub: {
      c.delay = tech.add_delay(op.type.w) + tech.wire_delay;
      c.real_adds = op.type.cplx ? 2 : 1;
      c.add_w = op.type.w;
      c.fu = "add";
      return c;
    }
    case OpKind::kNeg: {
      c.delay = tech.add_delay(op.type.w) + tech.wire_delay;
      c.real_adds = op.type.cplx ? 2 : 1;
      c.add_w = op.type.w;
      c.fu = "add";
      return c;
    }
    case OpKind::kMul: {
      const int a0 = op.args[0], a1 = op.args[1];
      const FxType& ta = b.ops[static_cast<size_t>(a0)].type;
      const FxType& tb = b.ops[static_cast<size_t>(a1)].type;
      if (is_pow2_const(b, a0) || is_pow2_const(b, a1)) {
        // Multiplication by 2^n is pure wiring.
        c.delay = tech.wire_delay;
        return c;
      }
      if (is_sign_value(b, a0) || is_sign_value(b, a1)) {
        // Multiply by (+-1 -+ j): conditional negate + add per component.
        const FxType& data = is_sign_value(b, a0) ? tb : ta;
        c.delay = tech.add_delay(data.w) + tech.mux_delay + tech.wire_delay;
        c.real_adds = data.cplx ? 4 : 2;
        c.add_w = data.w;
        c.fu = "sign_mul";
        return c;
      }
      if (ta.cplx && tb.cplx) {
        // 4 multipliers + cross add/sub.
        c.delay = tech.mul_delay(ta.w, tb.w) + tech.add_delay(op.type.w) +
                  tech.wire_delay;
        c.real_mults = 4;
        c.real_adds = 2;
        c.wa = ta.w;
        c.wb = tb.w;
        c.add_w = op.type.w;
        c.fu = "cmul";
        return c;
      }
      if (ta.cplx || tb.cplx) {
        c.delay = tech.mul_delay(ta.w, tb.w) + tech.wire_delay;
        c.real_mults = 2;
        c.wa = ta.w;
        c.wb = tb.w;
        c.fu = "mul";
        return c;
      }
      c.delay = tech.mul_delay(ta.w, tb.w) + tech.wire_delay;
      c.real_mults = 1;
      c.wa = ta.w;
      c.wb = tb.w;
      c.fu = "mul";
      return c;
    }
    case OpKind::kCast: {
      // Pure truncation/wrap is a bit-select (wiring). Rounding needs an
      // increment adder; saturation needs a compare + mux.
      const bool rounds = op.type.q != fixpt::Quant::kTrn;
      const bool sats = op.type.o != fixpt::Ovf::kWrap;
      if (!rounds && !sats) return c;
      c.delay = (rounds ? tech.add_delay(op.type.w) : 0) +
                (sats ? tech.mux_delay * 2 : 0) + tech.wire_delay;
      c.real_adds = (rounds ? 1 : 0) * (op.type.cplx ? 2 : 1);
      c.add_w = op.type.w;
      c.fu = "cast";
      return c;
    }
  }
  return c;
}

bool may_alias(const Op& a, const Op& b, int distance, int trip) {
  for (int k = 0; k < trip; ++k) {
    const int kb = k + distance;
    if (kb < 0 || kb >= trip) continue;
    if (a.idx.eval(k) == b.idx.eval(kb)) return true;
  }
  return false;
}

std::vector<std::vector<BlockDep>> build_block_deps(const Function& f,
                                                    const Block& b, int trip) {
  (void)f;
  const int n = static_cast<int>(b.ops.size());
  std::vector<std::vector<BlockDep>> deps(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Op& op = b.ops[static_cast<size_t>(i)];
    for (int a : op.args) {
      assert(a >= 0 && a < i && "operand must reference an earlier op");
      deps[static_cast<size_t>(i)].push_back({a, BlockDepKind::kData});
    }
    // Memory dependencies against every earlier op (blocks are small).
    for (int e = 0; e < i; ++e) {
      const Op& prev = b.ops[static_cast<size_t>(e)];
      // Scalar variables.
      if (op.var >= 0 && prev.var == op.var) {
        if (prev.kind == OpKind::kVarWrite && op.kind == OpKind::kVarRead)
          deps[static_cast<size_t>(i)].push_back({e, BlockDepKind::kVarFwd});
        else if (prev.kind == OpKind::kVarRead && op.kind == OpKind::kVarWrite)
          deps[static_cast<size_t>(i)].push_back({e, BlockDepKind::kOrder});
        else if (prev.kind == OpKind::kVarWrite && op.kind == OpKind::kVarWrite)
          // Scalar WAW may share a cycle: intermediate values are wires and
          // only the last write (program order) commits to the register.
          deps[static_cast<size_t>(i)].push_back({e, BlockDepKind::kOrder});
      }
      // Array elements (same-iteration aliasing; cross-iteration ordering
      // is guaranteed by non-overlapped iterations or checked by the
      // pipelining feasibility pass).
      if (op.array >= 0 && prev.array == op.array &&
          may_alias(prev, op, 0, trip)) {
        if (prev.kind == OpKind::kArrayWrite && op.kind == OpKind::kArrayRead)
          deps[static_cast<size_t>(i)].push_back(
              {e, BlockDepKind::kNextCycle});
        else if (prev.kind == OpKind::kArrayRead &&
                 op.kind == OpKind::kArrayWrite)
          deps[static_cast<size_t>(i)].push_back({e, BlockDepKind::kOrder});
        else if (prev.kind == OpKind::kArrayWrite &&
                 op.kind == OpKind::kArrayWrite)
          deps[static_cast<size_t>(i)].push_back({e, BlockDepKind::kWaw});
      }
    }
  }
  return deps;
}

int bandwidth_min_ii(const Function& f, const Block& b, const Directives& dir,
                     const TechLibrary& tech) {
  int min_ii = 1;
  // Per-array memory traffic of one iteration vs the ports available per
  // cycle. Guarded ops (partial unroll tails) still count once: iteration 0
  // executes every copy, and the II must admit the widest iteration.
  std::vector<int> reads(f.arrays.size(), 0), writes(f.arrays.size(), 0);
  int mults = 0;
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const Op& op = b.ops[i];
    if (op.array >= 0 &&
        f.arrays[static_cast<size_t>(op.array)].mapping ==
            ArrayMapping::kMemory) {
      if (op.kind == OpKind::kArrayRead) ++reads[static_cast<size_t>(op.array)];
      if (op.kind == OpKind::kArrayWrite)
        ++writes[static_cast<size_t>(op.array)];
    }
    mults += op_cost(f, b, static_cast<int>(i), tech).real_mults;
  }
  const auto ceil_div = [](int a, int d) { return (a + d - 1) / d; };
  for (std::size_t a = 0; a < f.arrays.size(); ++a) {
    const Array& arr = f.arrays[a];
    if (reads[a] > 0)
      min_ii = std::max(min_ii, ceil_div(reads[a],
                                         std::max(1, arr.mem_read_ports)));
    if (writes[a] > 0)
      min_ii = std::max(min_ii, ceil_div(writes[a],
                                         std::max(1, arr.mem_write_ports)));
  }
  if (dir.max_real_multipliers > 0 && mults > 0)
    min_ii = std::max(min_ii, ceil_div(mults, dir.max_real_multipliers));
  return min_ii;
}

namespace {

// Real-multiplier usage of an op (for the resource constraint).
int mult_usage(const OpCost& c) { return c.real_mults; }

struct BlockContext {
  const Function* f;
  const Block* b;
  const Directives* dir;
  const TechLibrary* tech;
  int trip;  // 1 for straight blocks
};

std::vector<std::vector<BlockDep>> build_deps(const BlockContext& ctx) {
  return build_block_deps(*ctx.f, *ctx.b, ctx.trip);
}

BlockSchedule schedule_block(const BlockContext& ctx,
                             std::vector<std::string>* notes) {
  const Block& b = *ctx.b;
  const int n = static_cast<int>(b.ops.size());
  BlockSchedule out;
  out.place.resize(static_cast<size_t>(n));
  if (n == 0) {
    out.cycles = 1;
    return out;
  }

  const double budget = ctx.dir->clock_period_ns - ctx.tech->reg_margin;
  const auto deps = build_deps(ctx);

  // Per-cycle resource usage.
  std::vector<int> mults_in_cycle;
  // Per-cycle, per-array port usage (memory-mapped arrays only).
  struct PortUse {
    std::vector<int> reads, writes;  // indexed by cycle
  };
  std::vector<PortUse> ports(ctx.f->arrays.size());

  auto mem_ports_ok = [&](const Op& op, int cycle) {
    if (op.array < 0) return true;
    const Array& arr = ctx.f->arrays[static_cast<size_t>(op.array)];
    if (arr.mapping != ArrayMapping::kMemory) return true;
    auto& pu = ports[static_cast<size_t>(op.array)];
    if (static_cast<int>(pu.reads.size()) <= cycle) {
      pu.reads.resize(static_cast<size_t>(cycle) + 1, 0);
      pu.writes.resize(static_cast<size_t>(cycle) + 1, 0);
    }
    if (op.kind == OpKind::kArrayRead)
      return pu.reads[static_cast<size_t>(cycle)] < arr.mem_read_ports;
    return pu.writes[static_cast<size_t>(cycle)] < arr.mem_write_ports;
  };
  auto commit_mem_port = [&](const Op& op, int cycle) {
    if (op.array < 0) return;
    const Array& arr = ctx.f->arrays[static_cast<size_t>(op.array)];
    if (arr.mapping != ArrayMapping::kMemory) return;
    auto& pu = ports[static_cast<size_t>(op.array)];
    if (op.kind == OpKind::kArrayRead)
      pu.reads[static_cast<size_t>(cycle)]++;
    else
      pu.writes[static_cast<size_t>(cycle)]++;
  };

  for (int i = 0; i < n; ++i) {
    const OpCost cost = op_cost(*ctx.f, b, i, *ctx.tech);
    if (cost.delay > budget && notes) {
      std::ostringstream os;
      os << "op %" << i << " (" << to_string(b.ops[static_cast<size_t>(i)].kind)
         << ") delay " << cost.delay << " ns exceeds the cycle budget "
         << budget << " ns; clock constraint unachievable";
      notes->push_back(os.str());
    }
    if (ctx.dir->max_real_multipliers > 0 &&
        mult_usage(cost) > ctx.dir->max_real_multipliers && notes) {
      std::ostringstream os;
      os << "op %" << i << " (" << to_string(b.ops[static_cast<size_t>(i)].kind)
         << ") needs " << mult_usage(cost) << " real multipliers, above the "
         << "cap of " << ctx.dir->max_real_multipliers
         << "; scheduled alone in its cycle";
      notes->push_back(os.str());
    }

    int earliest = 0;
    for (const BlockDep& d : deps[static_cast<size_t>(i)]) {
      const OpPlacement& p = out.place[static_cast<size_t>(d.from)];
      switch (d.kind) {
        case BlockDepKind::kData:
        case BlockDepKind::kVarFwd:
          earliest = std::max(earliest, p.cycle);
          break;
        case BlockDepKind::kOrder:
          earliest = std::max(earliest, p.cycle);
          break;
        case BlockDepKind::kNextCycle:
        case BlockDepKind::kWaw:
          earliest = std::max(earliest, p.cycle + 1);
          break;
      }
    }

    for (int cycle = earliest;; ++cycle) {
      // Chaining: start after every same-cycle producer finishes.
      double start = 0;
      for (const BlockDep& d : deps[static_cast<size_t>(i)]) {
        if (d.kind != BlockDepKind::kData && d.kind != BlockDepKind::kVarFwd)
          continue;
        const OpPlacement& p = out.place[static_cast<size_t>(d.from)];
        if (p.cycle == cycle) start = std::max(start, p.end);
      }
      const bool fits = start + cost.delay <= budget || cost.delay > budget;
      // Resource checks.
      if (static_cast<int>(mults_in_cycle.size()) <= cycle)
        mults_in_cycle.resize(static_cast<size_t>(cycle) + 1, 0);
      // An op whose own usage exceeds the cap can never satisfy it — give
      // it a cycle of its own (the resource analog of the delay > budget
      // escape above) instead of searching forever.
      const bool mults_ok =
          ctx.dir->max_real_multipliers <= 0 ||
          (mult_usage(cost) > ctx.dir->max_real_multipliers
               ? mults_in_cycle[static_cast<size_t>(cycle)] == 0
               : mults_in_cycle[static_cast<size_t>(cycle)] + mult_usage(cost) <=
                     ctx.dir->max_real_multipliers);
      if (fits && mults_ok && mem_ports_ok(b.ops[static_cast<size_t>(i)], cycle)) {
        out.place[static_cast<size_t>(i)] = {cycle, start, start + cost.delay};
        mults_in_cycle[static_cast<size_t>(cycle)] += mult_usage(cost);
        commit_mem_port(b.ops[static_cast<size_t>(i)], cycle);
        break;
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    const auto& p = out.place[static_cast<size_t>(i)];
    out.cycles = std::max(out.cycles, p.cycle + 1);
    if (p.end > out.critical_path_ns) {
      out.critical_path_ns = p.end;
      out.critical_op = i;
    }
  }
  return out;
}

// Minimum initiation interval imposed by loop-carried dependencies: a value
// written at body cycle cw and read `d` iterations later at body cycle cr
// requires cw - cr < d * II.
int recurrence_min_ii(const BlockContext& ctx, const BlockSchedule& sched) {
  const Block& b = *ctx.b;
  const int n = static_cast<int>(b.ops.size());
  int min_ii = 1;
  for (int w = 0; w < n; ++w) {
    const Op& wop = b.ops[static_cast<size_t>(w)];
    if (!wop.is_write()) continue;
    for (int r = 0; r < n; ++r) {
      const Op& rop = b.ops[static_cast<size_t>(r)];
      const bool var_pair = wop.kind == OpKind::kVarWrite &&
                            rop.kind == OpKind::kVarRead && rop.var == wop.var;
      const bool arr_pair = wop.kind == OpKind::kArrayWrite &&
                            rop.kind == OpKind::kArrayRead &&
                            rop.array == wop.array;
      if (!var_pair && !arr_pair) continue;
      const int cw = sched.place[static_cast<size_t>(w)].cycle;
      const int cr = sched.place[static_cast<size_t>(r)].cycle;
      for (int d = 1; d < ctx.trip; ++d) {
        if (arr_pair && !may_alias(wop, rop, d, ctx.trip)) continue;
        // Need cw + 1 <= cr + d*II  (write commits at end of its cycle).
        const int need = (cw + 1 - cr + d - 1) / d;  // ceil((cw+1-cr)/d)
        min_ii = std::max(min_ii, need);
        break;  // the smallest distance dominates
      }
    }
  }
  return min_ii;
}

}  // namespace

Schedule schedule_function(const Function& f, const Directives& dir,
                           const TechLibrary& tech) {
  obs::ScopedSpan span("schedule", "hls");
  Schedule out;
  out.clock_ns = dir.clock_period_ns;
  for (const auto& region : f.regions) {
    RegionSchedule rs;
    rs.label = region.is_loop ? region.loop.label : region.name;
    rs.is_loop = region.is_loop;
    BlockContext ctx{&f, region.is_loop ? &region.loop.body : &region.straight,
                     &dir, &tech, region.is_loop ? region.loop.trip : 1};
    rs.body = schedule_block(ctx, &out.notes);
    if (region.is_loop) {
      rs.trip = region.loop.trip;
      const LoopDirective ld = dir.loop_directive(region.loop.label);
      if (ld.pipeline_ii >= 1) {
        const int rec_ii = recurrence_min_ii(ctx, rs.body);
        const int bw_ii =
            bandwidth_min_ii(f, region.loop.body, dir, tech);
        rs.ii = std::max(ld.pipeline_ii, std::max(rec_ii, bw_ii));
        if (rs.ii > ld.pipeline_ii) {
          std::ostringstream os;
          os << "loop '" << region.loop.label << "': requested II="
             << ld.pipeline_ii << " raised to " << rs.ii
             << (rec_ii >= bw_ii
                     ? " by a loop-carried recurrence"
                     : " by memory-port/multiplier bandwidth");
          out.notes.push_back(os.str());
        }
        rs.total_cycles = rs.body.cycles + (rs.trip - 1) * rs.ii;
      } else {
        rs.total_cycles = rs.trip * rs.body.cycles;
      }
    } else {
      rs.trip = 1;
      rs.total_cycles = rs.body.cycles;
    }
    out.latency_cycles += rs.total_cycles;
    out.regions.push_back(std::move(rs));
  }
  // Streamed array ports transfer one element per cycle (interface
  // synthesis, paper section 2.1): input streams fill before the block
  // starts, output streams drain after it finishes.
  for (const auto& a : f.arrays) {
    if (a.port == PortDir::kNone) continue;
    auto it = dir.interfaces.find(a.name);
    if (it == dir.interfaces.end() || it->second != InterfaceKind::kStream)
      continue;
    out.latency_cycles += a.length;
    std::ostringstream os;
    os << "streamed port '" << a.name << "' adds " << a.length
       << " transfer cycles";
    out.notes.push_back(os.str());
  }
  out.latency_ns = out.latency_cycles * out.clock_ns;
  if (span.active()) {
    std::size_t ops = 0;
    for (const auto& region : f.regions)
      ops += (region.is_loop ? region.loop.body : region.straight).ops.size();
    span.arg("function", f.name);
    span.arg("ops", ops);
    span.arg("latency_cycles", out.latency_cycles);
    auto& m = obs::MetricsRegistry::instance();
    m.add("hls.schedule.runs");
    m.add("hls.schedule.ops", static_cast<double>(ops));
    m.observe("hls.schedule.latency_cycles", out.latency_cycles);
  }
  return out;
}

}  // namespace hlsw::hls
