// Independent schedule verifier: re-derives every constraint the scheduler
// must satisfy — dependence ordering, register-commit boundaries, operator
// chaining within the clock budget, and resource caps — directly from the
// IR and reports violations. Used as a property check in tests (every
// architecture's schedule must verify clean) and available to users as a
// sanity gate before trusting generated RTL.
//
// The verifier shares no code with the scheduler's placement loop: it
// re-implements the rules from the definitions in schedule.h, so a bug in
// the scheduler cannot hide itself.
#pragma once

#include <string>
#include <vector>

#include "hls/directives.h"
#include "hls/ir.h"
#include "hls/schedule.h"
#include "hls/tech.h"

namespace hlsw::hls {

// Returns a list of human-readable violations; empty means the schedule
// satisfies every rule.
std::vector<std::string> verify_schedule(const Function& f,
                                         const Directives& dir,
                                         const TechLibrary& tech,
                                         const Schedule& s);

}  // namespace hlsw::hls
