// Independent schedule verifier: re-derives every constraint the scheduler
// must satisfy — dependence ordering, register-commit boundaries, operator
// chaining within the clock budget, and resource caps — directly from the
// IR and reports violations. Used as a property check in tests (every
// architecture's schedule must verify clean) and available to users as a
// sanity gate before trusting generated RTL.
//
// The verifier shares no code with the scheduler's placement loop: it
// re-implements the rules from the definitions in schedule.h, so a bug in
// the scheduler cannot hide itself.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "hls/directives.h"
#include "hls/interp.h"
#include "hls/ir.h"
#include "hls/schedule.h"
#include "hls/tech.h"
#include "util/thread_pool.h"

namespace hlsw::hls {

// Returns a list of human-readable violations; empty means the schedule
// satisfies every rule.
std::vector<std::string> verify_schedule(const Function& f,
                                         const Directives& dir,
                                         const TechLibrary& tech,
                                         const Schedule& s);

// ---- Parallel co-simulation sweep ----
//
// Replays a test-vector sequence through two models (golden reference vs
// device under test) and reports every output mismatch. Vectors are
// sharded into contiguous blocks; each block is replayed FROM RESET by
// fresh model instances, so blocks are independent by construction and can
// run on worker threads. (Designs with cross-symbol state therefore need
// the blocks to be independent stimuli — e.g. each block its own burst —
// or block_size >= vectors.size() for one sequential replay.)
//
// Models are type-erased batch functions so this layer stays independent
// of rtl::Simulator (rtl links hls, not vice versa): a factory returns a
// fresh model per block, typically wrapping Interpreter::run_stream or
// rtl::Simulator::run_stream.
using CosimModel = std::function<std::vector<PortIo>(const std::vector<PortIo>&)>;
using CosimFactory = std::function<CosimModel()>;

struct CosimOptions {
  // Worker threads for the sweep. 0 = run inline on the caller's thread.
  // Ignored when `pool` is provided.
  unsigned threads = 0;
  // Vectors per block (>= 1); the unit of parallelism and of replay.
  std::size_t block_size = 256;
  // Optional externally owned pool to share across sweeps.
  util::ThreadPool* pool = nullptr;
  // Cap on retained mismatch reports (0 = keep all). A diverging
  // multi-hundred-vector sweep otherwise drowns the first — usually root —
  // failure in repetition; `total_mismatches` still counts everything.
  std::size_t mismatch_limit = 0;
  // Independent stimulus streams executed per model instance (clamped to
  // [1, 64]). Only honored by backends that support multi-lane execution
  // (vsim::vsim_sweep's bit-packed compiled path); everything else treats
  // any value as 1. With lanes = N, N consecutive blocks share one
  // multi-lane DUT — block independence (replay from reset) is unchanged.
  int lanes = 1;
};

struct CosimResult {
  std::size_t vectors = 0;
  std::size_t blocks = 0;
  // True mismatch count before any mismatch_limit truncation.
  std::size_t total_mismatches = 0;
  // Human-readable mismatch reports in deterministic (vector) order,
  // independent of worker scheduling. Empty means the models agree. When
  // truncated, the last entry says how many reports were suppressed.
  std::vector<std::string> mismatches;
  bool ok() const { return total_mismatches == 0; }
};

// Runs the sweep and merges per-block mismatch lists in block order.
CosimResult cosim_sweep(const CosimFactory& golden, const CosimFactory& dut,
                        const std::vector<PortIo>& vectors,
                        const CosimOptions& opts = {});

// ---- N-way differential sweep ----
//
// Generalizes cosim_sweep to any number of models: legs[0] is the
// reference, and every other leg is compared against it vector by vector.
// Mismatch reports are prefixed with "<leg> vs <reference>: " so a three-way
// run (untimed golden vs rtl::Simulator vs vsim-executed Verilog text)
// identifies which implementation diverged. Sharding, replay-from-reset and
// the deterministic block-order merge match cosim_sweep exactly.
struct CosimLeg {
  std::string name;
  CosimFactory factory;
};

CosimResult cosim_sweep_nway(const std::vector<CosimLeg>& legs,
                             const std::vector<PortIo>& vectors,
                             const CosimOptions& opts = {});

// ---- Sweep report plumbing (shared with external sweep drivers) ----
//
// vsim::vsim_sweep's packed multi-lane path reimplements the block loop
// (one multi-lane DUT covers many blocks) but must emit byte-identical
// mismatch reports; it reuses these instead of duplicating the format.

// Compares one vector's outputs; appends reports tagged with the global
// vector index so merged lists read in stimulus order.
void compare_outputs(std::size_t vec, const PortIo& want, const PortIo& got,
                     std::vector<std::string>* out);

// Applies CosimOptions::mismatch_limit after the deterministic merge so
// truncation never depends on worker scheduling.
void cap_mismatches(std::size_t limit, CosimResult* result);

}  // namespace hlsw::hls
