#include "hls/interp.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <stdexcept>

namespace hlsw::hls {

namespace {
// Aligns two raw components to a common fractional width.
void align(__int128& ar, __int128& ai, int fa, __int128& br, __int128& bi,
           int fb, int* fr) {
  if (fa >= fb) {
    br <<= (fa - fb);
    bi <<= (fa - fb);
    *fr = fa;
  } else {
    ar <<= (fb - fa);
    ai <<= (fb - fa);
    *fr = fb;
  }
}
}  // namespace

FxValue fx_add(const FxValue& a, const FxValue& b) {
  __int128 ar = a.re, ai = a.im, br = b.re, bi = b.im;
  FxValue r;
  align(ar, ai, a.fw, br, bi, b.fw, &r.fw);
  r.re = ar + br;
  r.im = ai + bi;
  r.cplx = a.cplx || b.cplx;
  return r;
}

FxValue fx_sub(const FxValue& a, const FxValue& b) {
  __int128 ar = a.re, ai = a.im, br = b.re, bi = b.im;
  FxValue r;
  align(ar, ai, a.fw, br, bi, b.fw, &r.fw);
  r.re = ar - br;
  r.im = ai - bi;
  r.cplx = a.cplx || b.cplx;
  return r;
}

FxValue fx_mul(const FxValue& a, const FxValue& b) {
  FxValue r;
  r.fw = a.fw + b.fw;
  r.cplx = a.cplx || b.cplx;
  // Uniform complex formula; scalars have im == 0 so it degenerates
  // correctly to scalar or scalar-by-complex multiplication.
  r.re = a.re * b.re - a.im * b.im;
  r.im = a.re * b.im + a.im * b.re;
  return r;
}

FxValue fx_neg(const FxValue& a) {
  FxValue r = a;
  r.re = -a.re;
  r.im = -a.im;
  return r;
}

FxValue fx_sign_conj(const FxValue& a) {
  FxValue r;
  r.fw = 0;
  r.cplx = true;
  r.re = a.re >= 0 ? 1 : -1;
  r.im = a.im >= 0 ? -1 : 1;
  return r;
}

FxValue exec_op(const Op& op, const FxValue* a0, const FxValue* a1) {
  switch (op.kind) {
    case OpKind::kConst:
      return op.cval;
    case OpKind::kAdd:
      return fx_convert(fx_add(*a0, *a1), op.type);
    case OpKind::kSub:
      return fx_convert(fx_sub(*a0, *a1), op.type);
    case OpKind::kMul:
      return fx_convert(fx_mul(*a0, *a1), op.type);
    case OpKind::kNeg:
      return fx_convert(fx_neg(*a0), op.type);
    case OpKind::kSignConj:
      return fx_sign_conj(*a0);
    case OpKind::kCast:
      return fx_convert(*a0, op.type);
    case OpKind::kReal: {
      FxValue r = *a0;
      r.im = 0;
      r.cplx = false;
      return r;
    }
    case OpKind::kImag: {
      FxValue r;
      r.fw = a0->fw;
      r.re = a0->im;
      r.cplx = false;
      return r;
    }
    case OpKind::kMakeComplex: {
      FxValue a = *a0, b = *a1;
      FxValue r;
      __int128 ai = 0, bi = 0;
      align(a.re, ai, a.fw, b.re, bi, b.fw, &r.fw);
      r.re = a.re;
      r.im = b.re;
      r.cplx = true;
      return fx_convert(r, op.type);
    }
    default:
      throw std::logic_error("exec_op: memory op passed to pure evaluator");
  }
}

Interpreter::Interpreter(Function f) : f_(std::move(f)) {
  for (std::size_t i = 0; i < f_.vars.size(); ++i)
    var_index_.emplace(f_.vars[i].name, static_cast<int>(i));
  for (std::size_t i = 0; i < f_.arrays.size(); ++i)
    array_index_.emplace(f_.arrays[i].name, static_cast<int>(i));
  std::size_t max_ops = 0;
  for (const auto& region : f_.regions) {
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    max_ops = std::max(max_ops, b.ops.size());
  }
  vals_.reserve(max_ops);
  reset();
}

int Interpreter::cached_var_index(const std::string& name) const {
  const auto it = var_index_.find(name);
  return it == var_index_.end() ? -1 : it->second;
}

int Interpreter::cached_array_index(const std::string& name) const {
  const auto it = array_index_.find(name);
  return it == array_index_.end() ? -1 : it->second;
}

void Interpreter::reset() {
  var_state_.clear();
  array_state_.clear();
  for (const auto& v : f_.vars) {
    FxValue init = v.init;
    init.fw = v.type.fw();
    init.cplx = v.type.cplx;
    var_state_.push_back(init);
  }
  for (const auto& a : f_.arrays) {
    FxValue zero;
    zero.fw = a.elem.fw();
    zero.cplx = a.elem.cplx;
    array_state_.emplace_back(static_cast<size_t>(a.length), zero);
  }
}

const std::vector<FxValue>& Interpreter::array_state(
    const std::string& name) const {
  const int i = cached_array_index(name);
  assert(i >= 0);
  return array_state_[static_cast<size_t>(i)];
}

const FxValue& Interpreter::var_state(const std::string& name) const {
  const int i = cached_var_index(name);
  assert(i >= 0);
  return var_state_[static_cast<size_t>(i)];
}

void Interpreter::set_array_state(const std::string& name,
                                  const std::vector<FxValue>& values) {
  const int i = cached_array_index(name);
  assert(i >= 0);
  const Array& a = f_.arrays[static_cast<size_t>(i)];
  assert(static_cast<int>(values.size()) == a.length);
  for (int j = 0; j < a.length; ++j)
    array_state_[static_cast<size_t>(i)][static_cast<size_t>(j)] =
        fx_convert(values[static_cast<size_t>(j)], a.elem);
}

void Interpreter::set_var_state(const std::string& name, const FxValue& value) {
  const int i = cached_var_index(name);
  assert(i >= 0);
  var_state_[static_cast<size_t>(i)] =
      fx_convert(value, f_.vars[static_cast<size_t>(i)].type);
}

void Interpreter::exec_block(const Block& b, int k) {
  // Fresh zero values per call (guard-skipped producers must read as zero,
  // exactly like the old per-call vector), but no reallocation: assign()
  // reuses the buffer's capacity established at construction.
  vals_.assign(b.ops.size(), FxValue{});
  std::vector<FxValue>& vals = vals_;
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const Op& op = b.ops[i];
    if (op.guard_trip >= 0 && k >= op.guard_trip) continue;
    ++ops_executed_;
    switch (op.kind) {
      case OpKind::kVarRead:
        vals[i] = var_state_[static_cast<size_t>(op.var)];
        break;
      case OpKind::kVarWrite: {
        const Var& v = f_.vars[static_cast<size_t>(op.var)];
        var_state_[static_cast<size_t>(op.var)] =
            fx_convert(vals[static_cast<size_t>(op.args[0])], v.type);
        break;
      }
      case OpKind::kArrayRead: {
        const int idx = op.idx.eval(k);
        const auto& arr = array_state_[static_cast<size_t>(op.array)];
        if (idx < 0 || idx >= static_cast<int>(arr.size()))
          throw std::out_of_range("array read out of bounds: " +
                                  f_.arrays[static_cast<size_t>(op.array)].name);
        vals[i] = arr[static_cast<size_t>(idx)];
        break;
      }
      case OpKind::kArrayWrite: {
        const int idx = op.idx.eval(k);
        auto& arr = array_state_[static_cast<size_t>(op.array)];
        if (idx < 0 || idx >= static_cast<int>(arr.size()))
          throw std::out_of_range("array write out of bounds: " +
                                  f_.arrays[static_cast<size_t>(op.array)].name);
        const Array& a = f_.arrays[static_cast<size_t>(op.array)];
        arr[static_cast<size_t>(idx)] =
            fx_convert(vals[static_cast<size_t>(op.args[0])], a.elem);
        break;
      }
      default: {
        const FxValue* a0 =
            op.args.size() > 0 ? &vals[static_cast<size_t>(op.args[0])]
                               : nullptr;
        const FxValue* a1 =
            op.args.size() > 1 ? &vals[static_cast<size_t>(op.args[1])]
                               : nullptr;
        vals[i] = exec_op(op, a0, a1);
        break;
      }
    }
  }
}

PortIo Interpreter::run(const PortIo& in) {
  // Load input ports.
  for (std::size_t i = 0; i < f_.arrays.size(); ++i) {
    const Array& a = f_.arrays[i];
    if (a.port != PortDir::kIn && a.port != PortDir::kInOut) continue;
    auto it = in.arrays.find(a.name);
    if (it == in.arrays.end())
      throw std::invalid_argument("missing input array port: " + a.name);
    if (static_cast<int>(it->second.size()) != a.length)
      throw std::invalid_argument("input array port size mismatch: " + a.name);
    for (int j = 0; j < a.length; ++j)
      array_state_[i][static_cast<size_t>(j)] =
          fx_convert(it->second[static_cast<size_t>(j)], a.elem);
  }
  for (std::size_t i = 0; i < f_.vars.size(); ++i) {
    const Var& v = f_.vars[i];
    if (v.port != PortDir::kIn && v.port != PortDir::kInOut) continue;
    auto it = in.vars.find(v.name);
    if (it == in.vars.end())
      throw std::invalid_argument("missing input var port: " + v.name);
    var_state_[i] = fx_convert(it->second, v.type);
  }

  // Execute.
  for (const auto& region : f_.regions) {
    if (region.is_loop) {
      for (int k = 0; k < region.loop.trip; ++k) exec_block(region.loop.body, k);
    } else {
      exec_block(region.straight, 0);
    }
  }

  // Collect output ports.
  PortIo out;
  for (std::size_t i = 0; i < f_.arrays.size(); ++i) {
    const Array& a = f_.arrays[i];
    if (a.port == PortDir::kOut || a.port == PortDir::kInOut)
      out.arrays[a.name] = array_state_[i];
  }
  for (std::size_t i = 0; i < f_.vars.size(); ++i) {
    const Var& v = f_.vars[i];
    if (v.port == PortDir::kOut || v.port == PortDir::kInOut)
      out.vars[v.name] = var_state_[i];
  }
  return out;
}

std::vector<PortIo> Interpreter::run_stream(const std::vector<PortIo>& ins) {
  std::vector<PortIo> outs;
  outs.reserve(ins.size());
  for (const auto& in : ins) outs.push_back(run(in));
  return outs;
}

}  // namespace hlsw::hls
