// One-stop synthesis driver and reporting: runs transforms, scheduling,
// binding and area estimation, and renders the reports the paper's flow
// exposes to the designer — the synthesis summary, the bill of materials,
// the Gantt chart (schedule view), and the critical-path report
// (paper section 3.2: "found by examining the bill-of-materials report,
// the critical-path report, or ... the schedule (Gantt chart)").
#pragma once

#include <string>
#include <vector>

#include "hls/bind.h"
#include "hls/directives.h"
#include "hls/ir.h"
#include "hls/schedule.h"
#include "hls/tech.h"
#include "hls/transforms.h"
#include "obs/json.h"

namespace hlsw::hls {

struct SynthesisResult {
  Function transformed;  // post-unroll/merge IR (what hardware implements)
  Schedule schedule;
  BindResult bind;
  AreaReport area;
  std::vector<std::string> warnings;  // transform legality + schedule notes

  int latency_cycles() const { return schedule.latency_cycles; }
  double latency_ns() const { return schedule.latency_ns; }
  // Throughput in Mbps given the number of payload bits produced per
  // invocation (6 for the 64-QAM decoder: one symbol per call).
  double data_rate_mbps(int bits_per_invocation) const {
    return bits_per_invocation * 1000.0 / latency_ns();
  }
  double msymbols_per_s() const { return 1000.0 / latency_ns(); }
};

// The full flow: transforms -> schedule -> bind -> area.
SynthesisResult run_synthesis(const Function& f, const Directives& dir,
                              const TechLibrary& tech);

// -- Text reports -------------------------------------------------------------

std::string synthesis_summary(const SynthesisResult& r, const TechLibrary& tech);
std::string bill_of_materials(const SynthesisResult& r);
std::string gantt_chart(const SynthesisResult& r);
std::string critical_path_report(const SynthesisResult& r,
                                 const TechLibrary& tech);

// Machine-readable result record (latency, per-region schedule, area
// breakdown, FU inventory, warnings) for scripting exploration flows.
// to_json_value returns the structured document; to_json its compact dump.
obs::Json to_json_value(const SynthesisResult& r, const TechLibrary& tech);
std::string to_json(const SynthesisResult& r, const TechLibrary& tech);
obs::Json to_json_value(const AreaReport& a);

}  // namespace hlsw::hls
