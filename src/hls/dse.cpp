#include "hls/dse.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace hlsw::hls {

namespace {

// One enumerated configuration, fully determined before any synthesis
// runs: enumeration happens on the calling thread, so names, order and
// duplicate detection are identical no matter how many workers execute
// the batch.
struct Candidate {
  std::string name;
  Directives dir;
  std::string key;
  // True when this explore() call already planned the same canonical
  // configuration (the refinement phase re-deriving a sweep point): it is
  // counted as a cache hit and produces no duplicate row.
  bool revisit = false;
};

SynthesisCache::Metrics measure(const Function& f, const Directives& dir,
                                const TechLibrary& tech) {
  const SynthesisResult r = run_synthesis(f, dir, tech);
  return SynthesisCache::Metrics{r.latency_cycles(), r.latency_ns(),
                                 r.area.total};
}

// The cache-miss path, traced: one "dse.synth" span per schedule actually
// run, recorded on whichever worker executes it (the span's tid is the
// worker id in the merged trace).
SynthesisCache::Metrics measure_traced(const Candidate& c, const Function& f,
                                       const TechLibrary& tech) {
  obs::ScopedSpan span(c.name, "dse.synth");
  const double t0 = span.active() ? obs::TraceSession::instance().now_us() : 0;
  const SynthesisCache::Metrics m = measure(f, c.dir, tech);
  if (span.active()) {
    span.arg("latency_cycles", m.latency_cycles);
    span.arg("area", m.area);
    obs::MetricsRegistry::instance().observe(
        "dse.synth_us", obs::TraceSession::instance().now_us() - t0);
  }
  return m;
}

// Runs one batch of candidates: submission (and hit/miss accounting) in
// candidate order on the calling thread, execution on the pool (or inline
// when pool is null — the legacy serial path), collection in candidate
// order again. The three orders being caller-side is what makes the
// parallel result bit-identical to the serial one.
void run_batch(const std::vector<Candidate>& cands, const Function& f,
               const TechLibrary& tech, SynthesisCache& cache,
               util::ThreadPool* pool, std::size_t planned_total,
               const DseOptions& opts,
               std::chrono::steady_clock::time_point t_start, DseResult* out) {
  const auto wall_ms = [t_start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t_start)
        .count();
  };
  struct Pending {
    const Candidate* cand;
    bool hit;
    std::future<SynthesisCache::Metrics> fut;  // valid only when pool != null
  };
  std::vector<Pending> pending;
  pending.reserve(cands.size());
  for (const auto& c : cands) {
    if (c.revisit) {  // already scheduled earlier in this call
      ++out->cache_hits;
      // One "dse.candidate" event per candidate resolution (revisits
      // included), so the trace's candidate count always equals
      // cache_hits + cache_misses.
      if (obs::enabled())
        obs::TraceSession::instance().instant(
            c.name, "dse.candidate",
            obs::Json::object().set("hit", true).set("revisit", true));
      continue;
    }
    // Batches never contain duplicate keys and previous batches are fully
    // settled, so presence here is a deterministic warm-cache hit.
    const bool hit = cache.contains(c.key);
    if (hit)
      ++out->cache_hits;
    else
      ++out->cache_misses;
    Pending p{&c, hit, {}};
    if (pool)
      p.fut = pool->submit([&cache, &c, &f, &tech] {
        return cache.get_or_compute(c.key,
                                    [&] { return measure_traced(c, f, tech); });
      });
    pending.push_back(std::move(p));
  }
  for (auto& p : pending) {
    const Candidate& c = *p.cand;
    const SynthesisCache::Metrics m =
        pool ? p.fut.get()
             : cache.get_or_compute(c.key,
                                    [&] { return measure_traced(c, f, tech); });
    DsePoint point;
    point.name = c.name;
    point.dir = c.dir;
    point.latency_cycles = m.latency_cycles;
    point.latency_ns = m.latency_ns;
    point.area = m.area;
    out->points.push_back(std::move(point));
    const std::size_t index = out->points.size() - 1;
    if (obs::enabled())
      obs::TraceSession::instance().instant(c.name, "dse.candidate",
                                            obs::Json::object()
                                                .set("index", index)
                                                .set("hit", p.hit)
                                                .set("revisit", false));
    if (opts.progress)
      opts.progress(out->points.back(),
                    DseProgress{index, out->points.size(), planned_total,
                                p.hit, wall_ms()});
  }
}

}  // namespace

void mark_pareto(std::vector<DsePoint>& points) {
  for (auto& p : points) {
    p.pareto = true;
    for (const auto& q : points) {
      if (&p == &q) continue;
      const bool no_worse =
          q.latency_cycles <= p.latency_cycles && q.area <= p.area;
      const bool better =
          q.latency_cycles < p.latency_cycles || q.area < p.area;
      if (no_worse && better) {
        p.pareto = false;
        break;
      }
    }
  }
}

DseResult explore(const Function& f, const DseOptions& opts,
                  const TechLibrary& tech) {
  const auto t_start = std::chrono::steady_clock::now();
  obs::ScopedSpan span("explore", "dse");
  DseResult out;
  out.seed = opts.seed;
  std::vector<std::string> loop_labels;
  std::vector<int> trips;
  for (const auto& region : f.regions) {
    if (region.is_loop) {
      loop_labels.push_back(region.loop.label);
      trips.push_back(region.loop.trip);
    }
  }

  const std::shared_ptr<SynthesisCache> cache =
      opts.cache ? opts.cache : std::make_shared<SynthesisCache>();
  const unsigned nthreads = opts.threads == 0
                                ? util::ThreadPool::default_thread_count()
                                : opts.threads;
  std::shared_ptr<util::ThreadPool> pool;
  if (nthreads > 1)
    pool = opts.pool ? opts.pool : std::make_shared<util::ThreadPool>(nthreads);

  const std::uint64_t fp = function_fingerprint(f);
  std::set<std::string> seen;  // canonical keys planned by this call
  int planned = 0;             // rows planned (bounded by max_configs)

  // Appends a candidate unless the cap forbids a new row; revisits of a
  // configuration this call already planned bypass the cap (they cost no
  // schedule and add no row).
  const auto plan = [&](std::vector<Candidate>* batch, std::string name,
                        Directives dir) {
    Candidate c;
    c.key = dse_cache_key(fp, dir, tech);
    c.revisit = !seen.insert(c.key).second;
    if (!c.revisit) {
      if (planned >= opts.max_configs) {
        seen.erase(c.key);  // not planned after all
        return;
      }
      ++planned;
    }
    c.name = std::move(name);
    c.dir = std::move(dir);
    batch->push_back(std::move(c));
  };

  std::vector<bool> merge_modes;
  if (opts.try_no_merge) merge_modes.push_back(false);
  if (opts.try_merge) merge_modes.push_back(true);

  // Stage 1: uniform unroll factor across all loops, with/without merging.
  std::vector<Candidate> sweep;
  for (bool merge : merge_modes) {
    for (int u : opts.unroll_factors) {
      Directives dir;
      dir.clock_period_ns = opts.clock_period_ns;
      dir.auto_merge = merge;
      for (std::size_t l = 0; l < loop_labels.size(); ++l)
        if (u > 1 && u < trips[l]) dir.loops[loop_labels[l]].unroll = u;
      std::ostringstream name;
      name << (merge ? "merge" : "flat") << "+U" << u;
      plan(&sweep, name.str(), std::move(dir));
    }
  }
  {
    obs::ScopedSpan sweep_span("sweep", "dse.phase");
    run_batch(sweep, f, tech, *cache, pool.get(),
              static_cast<std::size_t>(planned), opts, t_start, &out);
  }

  // Stage 2: refinement around the Pareto-optimal stage-1 points — double
  // each loop's unroll factor individually (the Table 1 row-4 move), and
  // flip the merge mode. Refinements frequently re-derive configurations
  // the sweep already visited (the merge flip of a swept point always
  // does when both modes were swept); those are memoization hits, never
  // re-schedules.
  mark_pareto(out.points);
  const std::vector<DsePoint> stage1 = out.points;
  std::vector<Candidate> refine;
  for (const auto& base : stage1) {
    if (!base.pareto) continue;
    for (std::size_t l = 0; l < loop_labels.size(); ++l) {
      Directives dir = base.dir;
      int u = dir.loop_directive(loop_labels[l]).unroll;
      if (u <= 0) u = 1;
      if (u * 2 >= trips[l]) continue;
      dir.loops[loop_labels[l]].unroll = u * 2;
      std::ostringstream name;
      name << base.name << "+" << loop_labels[l] << "xU" << u * 2;
      plan(&refine, name.str(), std::move(dir));
    }
    Directives flipped = base.dir;
    flipped.auto_merge = !flipped.auto_merge;
    plan(&refine, base.name + (flipped.auto_merge ? "+merge" : "+nomerge"),
         std::move(flipped));
  }
  {
    obs::ScopedSpan refine_span("refine", "dse.phase");
    run_batch(refine, f, tech, *cache, pool.get(),
              static_cast<std::size_t>(planned), opts, t_start, &out);
  }
  mark_pareto(out.points);

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t_start)
                             .count();
  if (obs::enabled()) {
    auto& session = obs::TraceSession::instance();
    session.counter("dse.cache_hits", static_cast<double>(out.cache_hits));
    session.counter("dse.cache_misses", static_cast<double>(out.cache_misses));
    span.arg("points", out.points.size());
    span.arg("cache_hits", out.cache_hits);
    span.arg("cache_misses", out.cache_misses);
    auto& m = obs::MetricsRegistry::instance();
    m.add("dse.explores");
    m.add("dse.points", static_cast<double>(out.points.size()));
    m.add("dse.cache_hits", static_cast<double>(out.cache_hits));
    m.add("dse.cache_misses", static_cast<double>(out.cache_misses));
  }
  if (!opts.report_path.empty())
    obs::StructuredReport::write_json_file(opts.report_path,
                                           dse_run_json(out, opts, wall_ms));
  return out;
}

obs::Json dse_run_json(const DseResult& r, const DseOptions& opts,
                       double wall_ms) {
  std::ostringstream seed_hex;
  seed_hex << "0x" << std::hex << r.seed;
  obs::Json doc = obs::Json::object()
                      .set("tool", "hlsw.dse")
                      .set("schema_version", 1)
                      .set("wall_ms", wall_ms)
                      .set("clock_period_ns", opts.clock_period_ns)
                      .set("threads", opts.threads)
                      .set("max_configs", opts.max_configs)
                      .set("cache_hits", r.cache_hits)
                      .set("cache_misses", r.cache_misses)
                      .set("seed", seed_hex.str());
  obs::Json points = obs::Json::array();
  for (const auto& p : r.points)
    points.push(obs::Json::object()
                    .set("name", p.name)
                    .set("latency_cycles", p.latency_cycles)
                    .set("latency_ns", p.latency_ns)
                    .set("area", p.area)
                    .set("pareto", p.pareto));
  doc.set("points", std::move(points));
  obs::Json front = obs::Json::array();
  for (const DsePoint* p : r.pareto_front()) front.push(p->name);
  doc.set("pareto_front", std::move(front));
  return doc;
}

namespace {

// Deterministic seeded rank for breaking exact (latency, area) ties.
std::uint64_t tie_rank(std::uint64_t seed, const DsePoint& p) {
  return fnv1a64(p.name) ^ (seed * 0x100000001b3ull);
}

}  // namespace

std::vector<const DsePoint*> DseResult::pareto_front() const {
  std::vector<const DsePoint*> front;
  for (const auto& p : points)
    if (p.pareto) front.push_back(&p);
  std::sort(front.begin(), front.end(),
            [this](const DsePoint* a, const DsePoint* b) {
              if (a->latency_cycles != b->latency_cycles)
                return a->latency_cycles < b->latency_cycles;
              if (a->area != b->area) return a->area < b->area;
              return tie_rank(seed, *a) < tie_rank(seed, *b);
            });
  return front;
}

const DsePoint* DseResult::fastest() const {
  const DsePoint* best = nullptr;
  for (const auto& p : points)
    if (!best || p.latency_cycles < best->latency_cycles ||
        (p.latency_cycles == best->latency_cycles && p.area < best->area))
      best = &p;
  return best;
}

const DsePoint* DseResult::smallest() const {
  const DsePoint* best = nullptr;
  for (const auto& p : points)
    if (!best || p.area < best->area) best = &p;
  return best;
}

const DsePoint* DseResult::smallest_within(int max_cycles) const {
  const DsePoint* best = nullptr;
  for (const auto& p : points) {
    if (p.latency_cycles > max_cycles) continue;
    if (!best || p.area < best->area) best = &p;
  }
  return best;
}

}  // namespace hlsw::hls
