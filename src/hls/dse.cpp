#include "hls/dse.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "hls/feasibility.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace hlsw::hls {

namespace {

// One enumerated configuration, fully determined before any synthesis
// runs: enumeration happens on the calling thread, so names, order and
// duplicate detection are identical no matter how many workers execute
// the batch.
struct Candidate {
  std::string name;
  Directives dir;
  std::string key;
  // True when this explore() call already planned the same original
  // configuration (the refinement phase re-deriving a sweep point): it is
  // counted as a cache hit and produces no duplicate row.
  bool revisit = false;
};

SynthesisCache::Metrics measure(const Function& f, const Directives& dir,
                                const TechLibrary& tech) {
  const SynthesisResult r = run_synthesis(f, dir, tech);
  return SynthesisCache::Metrics{r.latency_cycles(), r.latency_ns(),
                                 r.area.total};
}

// The cache-miss path, traced: one "dse.synth" span per schedule actually
// run, recorded on whichever worker executes it (the span's tid is the
// worker id in the merged trace).
SynthesisCache::Metrics measure_traced(const Candidate& c, const Function& f,
                                       const TechLibrary& tech) {
  obs::ScopedSpan span(c.name, "dse.synth");
  const double t0 = span.active() ? obs::TraceSession::instance().now_us() : 0;
  const SynthesisCache::Metrics m = measure(f, c.dir, tech);
  if (span.active()) {
    span.arg("latency_cycles", m.latency_cycles);
    span.arg("area", m.area);
    obs::MetricsRegistry::instance().observe(
        "dse.synth_us", obs::TraceSession::instance().now_us() - t0);
  }
  return m;
}

// Runs one batch of candidates: submission (and hit/miss accounting) in
// candidate order on the calling thread, execution on the pool (or inline
// when pool is null — the legacy serial path), collection in candidate
// order again. The three orders being caller-side is what makes the
// parallel result bit-identical to the serial one.
//
// Feasibility redirects can put the same canonical key in one batch more
// than once (two original configurations clamping to one form): the first
// occurrence is accounted against the cache, later ones are hits by
// construction — the check never consults the cache for a key a worker
// may be inserting concurrently, keeping the counters deterministic.
// SynthesisCache::get_or_compute already computes each key exactly once.
void run_batch(const std::vector<Candidate>& cands, const Function& f,
               const TechLibrary& tech, SynthesisCache& cache,
               util::ThreadPool* pool, std::size_t planned_total,
               const DseOptions& opts,
               std::chrono::steady_clock::time_point t_start, DseResult* out) {
  const auto wall_ms = [t_start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t_start)
        .count();
  };
  struct Pending {
    const Candidate* cand;
    bool hit;
    std::future<SynthesisCache::Metrics> fut;  // valid only when pool != null
  };
  std::vector<Pending> pending;
  pending.reserve(cands.size());
  std::set<std::string> batch_keys;
  for (const auto& c : cands) {
    if (c.revisit) {  // already planned earlier in this call
      ++out->cache_hits;
      // One "dse.candidate" event per candidate resolution (revisits
      // included), so the trace's candidate count always equals
      // cache_hits + cache_misses.
      if (obs::enabled())
        obs::TraceSession::instance().instant(
            c.name, "dse.candidate",
            obs::Json::object().set("hit", true).set("revisit", true));
      continue;
    }
    const bool hit = batch_keys.count(c.key) > 0 || cache.contains(c.key);
    batch_keys.insert(c.key);
    if (hit)
      ++out->cache_hits;
    else
      ++out->cache_misses;
    Pending p{&c, hit, {}};
    if (opts.executor) {
      // External scheduling: wrap the same pure closure in a packaged_task
      // so the result (or exception) travels back through the future; the
      // hook owns where and when it runs.
      auto task = std::make_shared<std::packaged_task<SynthesisCache::Metrics()>>(
          [&cache, &c, &f, &tech] {
            return cache.get_or_compute(
                c.key, [&] { return measure_traced(c, f, tech); });
          });
      p.fut = task->get_future();
      opts.executor([task] { (*task)(); });
    } else if (pool) {
      p.fut = pool->submit([&cache, &c, &f, &tech] {
        return cache.get_or_compute(c.key,
                                    [&] { return measure_traced(c, f, tech); });
      });
    }
    pending.push_back(std::move(p));
  }
  for (auto& p : pending) {
    const Candidate& c = *p.cand;
    const SynthesisCache::Metrics m =
        (pool || opts.executor)
            ? p.fut.get()
            : cache.get_or_compute(c.key,
                                   [&] { return measure_traced(c, f, tech); });
    DsePoint point;
    point.name = c.name;
    point.dir = c.dir;
    point.latency_cycles = m.latency_cycles;
    point.latency_ns = m.latency_ns;
    point.area = m.area;
    out->points.push_back(std::move(point));
    const std::size_t index = out->points.size() - 1;
    if (obs::enabled())
      obs::TraceSession::instance().instant(c.name, "dse.candidate",
                                            obs::Json::object()
                                                .set("index", index)
                                                .set("hit", p.hit)
                                                .set("revisit", false));
    if (opts.progress)
      opts.progress(out->points.back(),
                    DseProgress{index, out->points.size(), planned_total,
                                p.hit, wall_ms(), out->pruned_infeasible,
                                out->pruned_dominated});
  }
}

void validate_options(const DseOptions& opts) {
  std::ostringstream os;
  if (opts.max_configs <= 0) {
    os << "DseOptions::max_configs must be >= 1 (got " << opts.max_configs
       << ")";
    throw std::invalid_argument(os.str());
  }
  if (!(opts.clock_period_ns > 0)) {
    os << "DseOptions::clock_period_ns must be positive (got "
       << opts.clock_period_ns << ")";
    throw std::invalid_argument(os.str());
  }
  if (opts.unroll_factors.empty())
    throw std::invalid_argument(
        "DseOptions::unroll_factors must not be empty (the sweep would "
        "visit nothing)");
  std::set<int> seen_u;
  for (int u : opts.unroll_factors) {
    if (u < 1) {
      os << "DseOptions::unroll_factors entries must be >= 1 (got " << u
         << ")";
      throw std::invalid_argument(os.str());
    }
    if (!seen_u.insert(u).second) {
      os << "DseOptions::unroll_factors contains duplicate factor " << u;
      throw std::invalid_argument(os.str());
    }
  }
  if (opts.pipeline_iis.empty())
    throw std::invalid_argument(
        "DseOptions::pipeline_iis must not be empty (use {0} to disable "
        "the pipelining axis)");
  std::set<int> seen_ii;
  for (int ii : opts.pipeline_iis) {
    if (ii < 0) {
      os << "DseOptions::pipeline_iis entries must be >= 0 (got " << ii
         << ")";
      throw std::invalid_argument(os.str());
    }
    if (!seen_ii.insert(ii).second) {
      os << "DseOptions::pipeline_iis contains duplicate interval " << ii;
      throw std::invalid_argument(os.str());
    }
  }
  if (!opts.try_merge && !opts.try_no_merge)
    throw std::invalid_argument(
        "DseOptions: at least one of try_merge/try_no_merge must be true "
        "(both false would silently sweep nothing)");
}

// Loop labels that survive merging under the given mode — the labels a
// pipeline directive can meaningfully target. Flat: every loop. Merged:
// the leading label of each maximal run of consecutive loops (what
// auto_merge folds the run into) plus loops adjacent to none.
std::vector<std::string> pipelined_labels(const Function& f, bool auto_merge) {
  std::vector<std::string> out;
  std::vector<std::string> run;
  const auto flush = [&] {
    if (auto_merge) {
      if (!run.empty()) out.push_back(run.front());
    } else {
      for (auto& l : run) out.push_back(std::move(l));
    }
    run.clear();
  };
  for (const auto& region : f.regions) {
    if (region.is_loop)
      run.push_back(region.loop.label);
    else
      flush();
  }
  flush();
  return out;
}

}  // namespace

void mark_pareto(std::vector<DsePoint>& points) {
  for (auto& p : points) {
    p.pareto = true;
    for (const auto& q : points) {
      if (&p == &q) continue;
      const bool no_worse =
          q.latency_cycles <= p.latency_cycles && q.area <= p.area;
      const bool better =
          q.latency_cycles < p.latency_cycles || q.area < p.area;
      if (no_worse && better) {
        p.pareto = false;
        break;
      }
    }
  }
}

namespace {

// Exploration-front canonicalization applied on top of mark_pareto: exact
// (latency, area) ties carry no information the front needs — the II axis
// and feasibility redirects deliberately produce metrics-identical rows
// for distinct directive spellings — so only the first-enumerated point of
// each tie group keeps the flag. First-by-index is deterministic and
// stable across thread counts, cache warmth and prune modes (row order
// never changes). mark_pareto itself stays a pure dominance predicate.
void demote_metric_ties(std::vector<DsePoint>& points) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].pareto) continue;
    for (std::size_t j = 0; j < i; ++j)
      if (points[j].pareto &&
          points[j].latency_cycles == points[i].latency_cycles &&
          points[j].area == points[i].area) {
        points[i].pareto = false;
        break;
      }
  }
}

}  // namespace

DseResult explore(const Function& f, const DseOptions& opts,
                  const TechLibrary& tech) {
  validate_options(opts);
  const auto t_start = std::chrono::steady_clock::now();
  obs::ScopedSpan span("explore", "dse");
  DseResult out;
  out.seed = opts.seed;
  std::vector<std::string> loop_labels;
  std::vector<int> trips;
  for (const auto& region : f.regions) {
    if (region.is_loop) {
      loop_labels.push_back(region.loop.label);
      trips.push_back(region.loop.trip);
    }
  }

  const std::shared_ptr<SynthesisCache> cache =
      opts.cache ? opts.cache : std::make_shared<SynthesisCache>();
  const unsigned nthreads = opts.threads == 0
                                ? util::ThreadPool::default_thread_count()
                                : opts.threads;
  std::shared_ptr<util::ThreadPool> pool;
  if (nthreads > 1 && !opts.executor)
    pool = opts.pool ? opts.pool : std::make_shared<util::ThreadPool>(nthreads);

  const std::uint64_t fp = function_fingerprint(f);
  std::set<std::string> seen;  // original (pre-redirect) keys planned
  int planned = 0;             // rows planned (bounded by max_configs)
  // Per-call memo for the feasibility analysis: candidates that differ
  // only in requested IIs (the densest sweep axis) share one transform-
  // shape entry, so a prune decision costs little more than a map lookup.
  FeasibilityCache fcache;

  // Already-resolved points the feasibility analysis may cite for
  // domination. Rebuilt between batches (points only settle batch-wise),
  // so every prune decision is made against fully-deterministic data on
  // the calling thread.
  std::vector<ResolvedPoint> resolved;
  const auto snapshot_resolved = [&] {
    resolved.clear();
    resolved.reserve(out.points.size());
    for (const auto& p : out.points)
      resolved.push_back({p.latency_cycles, p.area});
  };

  // Appends a candidate unless pruning or the row cap rejects it.
  // Revisits of an original configuration this call already planned
  // bypass the cap (they cost no schedule and add no row). An infeasible
  // candidate is redirected: it keeps its row and name but synthesizes
  // under its clamped directives' canonical key, so metrics-identical
  // twins collapse onto one schedule. A dominated candidate is skipped
  // outright — it can never join the Pareto front, so dropping its row
  // changes nothing the front reports.
  const auto plan = [&](std::vector<Candidate>* batch, std::string name,
                        Directives dir) {
    const std::string orig_key = dse_cache_key(fp, dir, tech);
    if (seen.count(orig_key)) {
      Candidate c;
      c.revisit = true;
      c.name = std::move(name);
      batch->push_back(std::move(c));
      return;
    }
    if (opts.prune) {
      const FeasibilityVerdict fv =
          check_feasibility(f, dir, tech, resolved, &fcache);
      if (fv.status == FeasibilityStatus::kBounded) {
        ++out.pruned_dominated;
        std::ostringstream os;
        os << "bounds (latency >= " << fv.bounds.min_latency_cycles
           << ", area >= " << fv.bounds.min_area << ") dominated by '"
           << out.points[static_cast<size_t>(fv.dominated_by)].name << "'";
        if (obs::enabled())
          obs::TraceSession::instance().instant(
              name, "dse.prune",
              obs::Json::object().set("kind", "dominated").set("row", false));
        out.pruned.push_back({std::move(name), "dominated", os.str()});
        return;
      }
      if (fv.status == FeasibilityStatus::kInfeasible) {
        ++out.pruned_infeasible;
        if (obs::enabled())
          obs::TraceSession::instance().instant(
              name, "dse.prune",
              obs::Json::object()
                  .set("kind", to_string(fv.kind))
                  .set("row", true));
        out.pruned.push_back({name, to_string(fv.kind), fv.reason});
        dir = fv.clamped;  // metrics-identical; the row and name survive
      }
    }
    if (planned >= opts.max_configs) return;
    ++planned;
    seen.insert(orig_key);
    Candidate c;
    c.key = dse_cache_key(fp, dir, tech);
    c.name = std::move(name);
    c.dir = std::move(dir);
    batch->push_back(std::move(c));
  };

  std::vector<bool> merge_modes;
  if (opts.try_no_merge) merge_modes.push_back(false);
  if (opts.try_merge) merge_modes.push_back(true);
  // First nonzero initiation interval, for the refinement phase's
  // pipelining flip (0 = the II axis is disabled).
  int ii_on = 0;
  for (int ii : opts.pipeline_iis)
    if (ii >= 1) {
      ii_on = ii;
      break;
    }

  // Stage 1: uniform unroll factor across all loops, with/without merging,
  // with/without pipelining the surviving loops at each requested II.
  std::vector<Candidate> sweep;
  for (bool merge : merge_modes) {
    const std::vector<std::string> plabels = pipelined_labels(f, merge);
    for (int u : opts.unroll_factors) {
      for (int ii : opts.pipeline_iis) {
        Directives dir;
        dir.clock_period_ns = opts.clock_period_ns;
        dir.auto_merge = merge;
        for (std::size_t l = 0; l < loop_labels.size(); ++l)
          if (u > 1 && u < trips[l]) dir.loops[loop_labels[l]].unroll = u;
        if (ii >= 1)
          for (const auto& label : plabels)
            dir.loops[label].pipeline_ii = ii;
        std::ostringstream name;
        name << (merge ? "merge" : "flat") << "+U" << u;
        if (ii >= 1) name << "+II" << ii;
        plan(&sweep, name.str(), std::move(dir));
      }
    }
  }
  {
    obs::ScopedSpan sweep_span("sweep", "dse.phase");
    run_batch(sweep, f, tech, *cache, pool.get(),
              static_cast<std::size_t>(planned), opts, t_start, &out);
  }

  // Stage 2: iterated refinement around the Pareto-optimal points — double
  // each loop's unroll factor individually (the Table 1 row-4 move), flip
  // the merge mode, and flip pipelining. Each round expands the points
  // currently on the front that no earlier round expanded, until a round
  // adds nothing (monotone: adding points never promotes an old point onto
  // the front, so unexpanded fronts only shrink). Refinements frequently
  // re-derive configurations already visited; those are memoization hits,
  // never re-schedules.
  mark_pareto(out.points);
  demote_metric_ties(out.points);
  std::vector<char> refined;
  for (int round = 0; round < 64; ++round) {
    refined.resize(out.points.size(), 0);
    snapshot_resolved();
    const std::size_t rows_before = out.points.size();
    std::vector<Candidate> refine;
    for (std::size_t i = 0; i < rows_before; ++i) {
      if (refined[i] || !out.points[i].pareto) continue;
      refined[i] = 1;
      const DsePoint& base = out.points[i];
      for (std::size_t l = 0; l < loop_labels.size(); ++l) {
        Directives dir = base.dir;
        int u = dir.loop_directive(loop_labels[l]).unroll;
        if (u <= 0) u = 1;
        if (u * 2 >= trips[l]) continue;
        dir.loops[loop_labels[l]].unroll = u * 2;
        std::ostringstream name;
        name << base.name << "+" << loop_labels[l] << "xU" << u * 2;
        plan(&refine, name.str(), std::move(dir));
      }
      Directives flipped = base.dir;
      flipped.auto_merge = !flipped.auto_merge;
      plan(&refine, base.name + (flipped.auto_merge ? "+merge" : "+nomerge"),
           std::move(flipped));
      bool pipelined = false;
      for (const auto& [label, ld] : base.dir.loops)
        if (ld.pipeline_ii >= 1) pipelined = true;
      if (pipelined) {
        Directives dir = base.dir;
        for (auto& [label, ld] : dir.loops) ld.pipeline_ii = 0;
        plan(&refine, base.name + "+noII", std::move(dir));
      } else if (ii_on >= 1) {
        Directives dir = base.dir;
        for (const auto& label : pipelined_labels(f, dir.auto_merge))
          dir.loops[label].pipeline_ii = ii_on;
        std::ostringstream name;
        name << base.name << "+II" << ii_on;
        plan(&refine, name.str(), std::move(dir));
      }
    }
    if (refine.empty()) break;
    obs::ScopedSpan refine_span("refine", "dse.phase");
    run_batch(refine, f, tech, *cache, pool.get(),
              static_cast<std::size_t>(planned), opts, t_start, &out);
    mark_pareto(out.points);
    demote_metric_ties(out.points);
    if (out.points.size() == rows_before) break;  // all revisits: settled
  }
  mark_pareto(out.points);
  demote_metric_ties(out.points);
  out.scheduled = out.points.size();

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t_start)
                             .count();
  if (obs::enabled()) {
    auto& session = obs::TraceSession::instance();
    session.counter("dse.cache_hits", static_cast<double>(out.cache_hits));
    session.counter("dse.cache_misses", static_cast<double>(out.cache_misses));
    span.arg("points", out.points.size());
    span.arg("cache_hits", out.cache_hits);
    span.arg("cache_misses", out.cache_misses);
    span.arg("pruned_infeasible", out.pruned_infeasible);
    span.arg("pruned_dominated", out.pruned_dominated);
    auto& m = obs::MetricsRegistry::instance();
    m.add("dse.explores");
    m.add("dse.points", static_cast<double>(out.points.size()));
    m.add("dse.cache_hits", static_cast<double>(out.cache_hits));
    m.add("dse.cache_misses", static_cast<double>(out.cache_misses));
    m.add("dse.prune.infeasible", static_cast<double>(out.pruned_infeasible));
    m.add("dse.prune.dominated", static_cast<double>(out.pruned_dominated));
  }
  if (!opts.report_path.empty())
    obs::StructuredReport::write_json_file(opts.report_path,
                                           dse_run_json(out, opts, wall_ms));
  return out;
}

obs::Json dse_run_json(const DseResult& r, const DseOptions& opts,
                       double wall_ms) {
  std::ostringstream seed_hex;
  seed_hex << "0x" << std::hex << r.seed;
  obs::Json doc = obs::Json::object()
                      .set("tool", "hlsw.dse")
                      .set("schema_version", 2)
                      .set("wall_ms", wall_ms)
                      .set("clock_period_ns", opts.clock_period_ns)
                      .set("threads", opts.threads)
                      .set("max_configs", opts.max_configs)
                      .set("cache_hits", r.cache_hits)
                      .set("cache_misses", r.cache_misses)
                      .set("pruned_infeasible", r.pruned_infeasible)
                      .set("pruned_dominated", r.pruned_dominated)
                      .set("scheduled", r.scheduled)
                      .set("seed", seed_hex.str());
  obs::Json points = obs::Json::array();
  for (const auto& p : r.points)
    points.push(obs::Json::object()
                    .set("name", p.name)
                    .set("latency_cycles", p.latency_cycles)
                    .set("latency_ns", p.latency_ns)
                    .set("area", p.area)
                    .set("pareto", p.pareto));
  doc.set("points", std::move(points));
  obs::Json pruned = obs::Json::array();
  for (const auto& p : r.pruned)
    pruned.push(obs::Json::object()
                    .set("name", p.name)
                    .set("kind", p.kind)
                    .set("reason", p.reason));
  doc.set("pruned", std::move(pruned));
  obs::Json front = obs::Json::array();
  for (const DsePoint* p : r.pareto_front()) front.push(p->name);
  doc.set("pareto_front", std::move(front));
  return doc;
}

namespace {

// Deterministic seeded rank for breaking exact (latency, area) ties.
std::uint64_t tie_rank(std::uint64_t seed, const DsePoint& p) {
  return fnv1a64(p.name) ^ (seed * 0x100000001b3ull);
}

}  // namespace

std::vector<const DsePoint*> DseResult::pareto_front() const {
  std::vector<const DsePoint*> front;
  for (const auto& p : points)
    if (p.pareto) front.push_back(&p);
  std::sort(front.begin(), front.end(),
            [this](const DsePoint* a, const DsePoint* b) {
              if (a->latency_cycles != b->latency_cycles)
                return a->latency_cycles < b->latency_cycles;
              if (a->area != b->area) return a->area < b->area;
              return tie_rank(seed, *a) < tie_rank(seed, *b);
            });
  return front;
}

const DsePoint* DseResult::fastest() const {
  const DsePoint* best = nullptr;
  for (const auto& p : points)
    if (!best || p.latency_cycles < best->latency_cycles ||
        (p.latency_cycles == best->latency_cycles && p.area < best->area))
      best = &p;
  return best;
}

const DsePoint* DseResult::smallest() const {
  const DsePoint* best = nullptr;
  for (const auto& p : points)
    if (!best || p.area < best->area) best = &p;
  return best;
}

const DsePoint* DseResult::smallest_within(int max_cycles) const {
  const DsePoint* best = nullptr;
  for (const auto& p : points) {
    if (p.latency_cycles > max_cycles) continue;
    if (!best || p.area < best->area) best = &p;
  }
  return best;
}

}  // namespace hlsw::hls
