#include "hls/dse.h"

#include <algorithm>
#include <sstream>

namespace hlsw::hls {

namespace {

DsePoint synthesize_point(const Function& f, std::string name,
                          Directives dir, const TechLibrary& tech) {
  DsePoint p;
  p.name = std::move(name);
  const SynthesisResult r = run_synthesis(f, dir, tech);
  p.dir = std::move(dir);
  p.latency_cycles = r.latency_cycles();
  p.latency_ns = r.latency_ns();
  p.area = r.area.total;
  return p;
}

void mark_pareto(std::vector<DsePoint>* points) {
  for (auto& p : *points) {
    p.pareto = true;
    for (const auto& q : *points) {
      if (&p == &q) continue;
      const bool no_worse =
          q.latency_cycles <= p.latency_cycles && q.area <= p.area;
      const bool better =
          q.latency_cycles < p.latency_cycles || q.area < p.area;
      if (no_worse && better) {
        p.pareto = false;
        break;
      }
    }
  }
}

}  // namespace

DseResult explore(const Function& f, const DseOptions& opts,
                  const TechLibrary& tech) {
  DseResult out;
  std::vector<std::string> loop_labels;
  std::vector<int> trips;
  for (const auto& region : f.regions) {
    if (region.is_loop) {
      loop_labels.push_back(region.loop.label);
      trips.push_back(region.loop.trip);
    }
  }

  std::vector<bool> merge_modes;
  if (opts.try_no_merge) merge_modes.push_back(false);
  if (opts.try_merge) merge_modes.push_back(true);

  // Stage 1: uniform unroll factor across all loops, with/without merging.
  for (bool merge : merge_modes) {
    for (int u : opts.unroll_factors) {
      if (static_cast<int>(out.points.size()) >= opts.max_configs) break;
      Directives dir;
      dir.clock_period_ns = opts.clock_period_ns;
      dir.auto_merge = merge;
      for (std::size_t l = 0; l < loop_labels.size(); ++l)
        if (u > 1 && u < trips[l]) dir.loops[loop_labels[l]].unroll = u;
      std::ostringstream name;
      name << (merge ? "merge" : "flat") << "+U" << u;
      out.points.push_back(
          synthesize_point(f, name.str(), std::move(dir), tech));
    }
  }

  // Stage 2: per-loop refinement around the best stage-1 point — double
  // each loop's unroll factor individually (the Table 1 row-4 move).
  mark_pareto(&out.points);
  std::vector<DsePoint> stage1 = out.points;
  for (const auto& base : stage1) {
    if (!base.pareto) continue;
    for (std::size_t l = 0; l < loop_labels.size(); ++l) {
      if (static_cast<int>(out.points.size()) >= opts.max_configs) break;
      Directives dir = base.dir;
      int& u = dir.loops[loop_labels[l]].unroll;
      if (u == 0) u = 1;
      if (u * 2 >= trips[l]) continue;
      u *= 2;
      std::ostringstream name;
      name << base.name << "+" << loop_labels[l] << "xU" << u;
      out.points.push_back(
          synthesize_point(f, name.str(), std::move(dir), tech));
    }
  }
  mark_pareto(&out.points);
  return out;
}

std::vector<const DsePoint*> DseResult::pareto_front() const {
  std::vector<const DsePoint*> front;
  for (const auto& p : points)
    if (p.pareto) front.push_back(&p);
  std::sort(front.begin(), front.end(),
            [](const DsePoint* a, const DsePoint* b) {
              return a->latency_cycles < b->latency_cycles;
            });
  return front;
}

const DsePoint* DseResult::fastest() const {
  const DsePoint* best = nullptr;
  for (const auto& p : points)
    if (!best || p.latency_cycles < best->latency_cycles ||
        (p.latency_cycles == best->latency_cycles && p.area < best->area))
      best = &p;
  return best;
}

const DsePoint* DseResult::smallest() const {
  const DsePoint* best = nullptr;
  for (const auto& p : points)
    if (!best || p.area < best->area) best = &p;
  return best;
}

const DsePoint* DseResult::smallest_within(int max_cycles) const {
  const DsePoint* best = nullptr;
  for (const auto& p : points) {
    if (p.latency_cycles > max_cycles) continue;
    if (!best || p.area < best->area) best = &p;
  }
  return best;
}

}  // namespace hlsw::hls
