#include "hls/tech.h"

namespace hlsw::hls {

TechLibrary TechLibrary::asic90() {
  TechLibrary t;
  t.name = "asic90";
  t.description =
      "Synthetic 90nm-class ASIC standard-cell library (carry-lookahead "
      "adders, array multipliers). Calibrated so a complex 10x10 MAC chains "
      "within one 10 ns cycle, matching the paper's observation that every "
      "loop body executes in a single cycle at 100 MHz.";
  t.add_delay_base = 0.35;
  t.add_delay_per_bit = 0.045;
  t.mul_delay_base = 1.00;
  t.mul_delay_per_bit = 0.10;
  t.mul_delay_per_min_bit = 0.05;
  t.mux_delay = 0.15;
  t.wire_delay = 0.05;
  t.reg_margin = 0.30;
  t.mem_access_delay = 2.2;

  t.add_area_per_bit = 8.0;
  t.mul_area_per_bit2 = 9.0;
  t.reg_area_per_bit = 4.0;
  t.mux_area_per_bit = 2.5;
  t.fsm_area_per_state = 8.0;
  t.counter_area_per_bit = 10.0;
  t.mem_area_per_bit = 0.8;
  t.mem_port_overhead = 200.0;
  t.io_area_per_bit = 6.0;
  return t;
}

TechLibrary TechLibrary::fpga_lut4() {
  TechLibrary t;
  t.name = "fpga_lut4";
  t.description =
      "Generic LUT4 FPGA fabric: ~3x slower combinational paths, cheap "
      "registers (one per LUT), no hard multipliers. Used for the paper's "
      "FPGA prototyping flow (experiment S5c): the same source retargets by "
      "swapping this library and relaxing the clock.";
  t.add_delay_base = 1.0;
  t.add_delay_per_bit = 0.14;
  t.mul_delay_base = 3.0;
  t.mul_delay_per_bit = 0.30;
  t.mul_delay_per_min_bit = 0.15;
  t.mux_delay = 0.45;
  t.wire_delay = 0.25;
  t.reg_margin = 0.60;
  t.mem_access_delay = 4.5;

  // FPGA "area" counted in LUT-equivalents scaled to the same unit: logic
  // is costlier, registers are effectively free relative to logic.
  t.add_area_per_bit = 6.0;
  t.mul_area_per_bit2 = 7.0;
  t.reg_area_per_bit = 1.0;
  t.mux_area_per_bit = 3.0;
  t.fsm_area_per_state = 6.0;
  t.counter_area_per_bit = 6.0;
  t.mem_area_per_bit = 0.3;  // block RAM
  t.mem_port_overhead = 100.0;
  t.io_area_per_bit = 4.0;
  return t;
}

}  // namespace hlsw::hls
