// Static feasibility analysis for design-space exploration: a Dahlia-style
// check of a candidate Directives set against the IR that, WITHOUT running
// the scheduler, either
//
//   * proves the candidate cannot be honored as stated (kInfeasible) — a
//     requested pipeline II below the loop-carried recurrence or the
//     memory-port/multiplier bandwidth floor, an unroll factor beyond the
//     trip count, a merge group the engine will refuse, or a pipeline
//     directive targeting a loop that is merged away — together with a
//     `clamped` Directives value the engine provably synthesizes to
//     IDENTICAL metrics (so explorers can serve the candidate from the
//     clamped configuration's schedule instead of running a redundant one);
//
//   * certifies lower bounds on the candidate's metrics (min_latency_cycles,
//     min_area) and, when a caller-supplied already-resolved point strictly
//     dominates those bounds, returns kBounded — the candidate provably
//     cannot join the Pareto front and may be skipped outright;
//
//   * or makes no claim (kFeasible, bounds still populated).
//
// Soundness contract (enforced by tests/hls/feasibility_test.cpp, which
// force-schedules every non-kFeasible verdict): a kInfeasible candidate's
// true metrics equal its `clamped` metrics and the stated violation holds
// on the real schedule; a kBounded/kFeasible candidate's true latency and
// area are never below `bounds`. The bounds come from a relaxed replay of
// the scheduler's own greedy placement (dependences + operator chaining,
// resource checks dropped — a component-wise lower bound on every op's
// cycle) and from the schedule-independent terms of the area model.
// Direct calls always report these tight bounds. Calls through a
// FeasibilityCache may report a weaker tier (one cycle per region body,
// the schedule-independent area floor) — still certified lower bounds —
// and escalate to the tight tier only when a resolved point dominates the
// weak bounds, so a kBounded verdict is always proved against the tight
// ones and the prune decisions are identical either way.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hls/directives.h"
#include "hls/ir.h"
#include "hls/tech.h"

namespace hlsw::hls {

struct FeasibilityVerdict;

// Memoizes the transform-shape analysis (loop transforms, relaxed
// schedule, area bound, per-loop II floors) across check_feasibility()
// calls. Everything expensive in a verdict depends only on the directives
// with the pipeline-II axis erased, so candidates in a sweep that differ
// only in requested IIs share one cache entry and cost little more than
// canonicalization. The cache is keyed on directives alone: use one
// instance per (Function, TechLibrary) pair, from one thread at a time
// (explore() owns one per call on the enumeration thread).
class FeasibilityCache {
 public:
  FeasibilityCache();
  ~FeasibilityCache();
  FeasibilityCache(const FeasibilityCache&) = delete;
  FeasibilityCache& operator=(const FeasibilityCache&) = delete;

  // Distinct transform shapes analyzed so far (exposed for tests/benches).
  std::size_t size() const;

 private:
  friend FeasibilityVerdict check_feasibility(
      const Function&, const Directives&, const TechLibrary&,
      const std::vector<struct ResolvedPoint>&, FeasibilityCache*);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

enum class FeasibilityStatus {
  kFeasible,    // no claim; bounds are valid but no resolved point covers them
  kInfeasible,  // directives cannot be honored as stated; see kind/clamped
  kBounded,     // provably dominated by resolved_points[dominated_by]
};

enum class InfeasibleKind {
  kNone,
  kUnrollOverTrip,       // unroll factor exceeds the loop trip count
  kMergeConflict,        // merge group unresolvable, or a pipeline directive
                         // targets a loop that is merged away / unknown
  kDegenerateDirective,  // values outside the representable range: memory
                         // port counts < 1, unroll < 1, pipeline_ii < 0
  kIiBelowRecurrence,    // pipeline II below the carried-dependence bound
  kIiBelowBandwidth,     // pipeline II below the memory-port/multiplier floor
};

const char* to_string(InfeasibleKind k);

// Certified lower bounds on a candidate's synthesis metrics.
struct DesignBounds {
  int min_latency_cycles = 0;
  double min_area = 0;
};

// An already-synthesized (latency, area) point the analysis may use to
// prove a candidate non-Pareto.
struct ResolvedPoint {
  int latency_cycles = 0;
  double area = 0;
};

struct FeasibilityVerdict {
  FeasibilityStatus status = FeasibilityStatus::kFeasible;
  InfeasibleKind kind = InfeasibleKind::kNone;
  std::string reason;     // human-readable; non-empty iff kInfeasible
  Directives clamped;     // metrics-equivalent canonical form (kInfeasible)
  DesignBounds bounds;    // valid for every status
  int dominated_by = -1;  // index into resolved_points (kBounded only)
};

// Analyzes `dir` against `f` (the pre-transform IR) without scheduling.
// `resolved_points` is the set of already-synthesized points a kBounded
// verdict may cite; pass an empty vector to disable domination claims.
// `cache` (optional) memoizes the transform-shape analysis across calls —
// verdicts are identical with or without it.
FeasibilityVerdict check_feasibility(
    const Function& f, const Directives& dir, const TechLibrary& tech,
    const std::vector<ResolvedPoint>& resolved_points = {},
    FeasibilityCache* cache = nullptr);

}  // namespace hlsw::hls
