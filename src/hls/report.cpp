#include "hls/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hlsw::hls {

SynthesisResult run_synthesis(const Function& f, const Directives& dir,
                              const TechLibrary& tech) {
  obs::ScopedSpan span("synthesis", "hls");
  SynthesisResult r;
  TransformResult t = apply_transforms(f, dir);
  r.transformed = std::move(t.func);
  r.warnings = std::move(t.warnings);
  r.schedule = schedule_function(r.transformed, dir, tech);
  for (const auto& n : r.schedule.notes) r.warnings.push_back(n);
  r.bind = bind_design(r.transformed, r.schedule, dir, tech);
  r.area = estimate_area(r.bind, tech);
  if (span.active()) {
    span.arg("function", f.name);
    span.arg("latency_cycles", r.latency_cycles());
    span.arg("area", r.area.total);
    auto& m = obs::MetricsRegistry::instance();
    m.add("hls.synthesis.runs");
    m.observe("hls.synthesis.area", r.area.total);
  }
  return r;
}

std::string synthesis_summary(const SynthesisResult& r,
                              const TechLibrary& tech) {
  std::ostringstream os;
  os << std::fixed;
  os << "== Synthesis summary: " << r.transformed.name << " ==\n";
  os << "technology:        " << tech.name << "\n";
  os << "clock period:      " << std::setprecision(2) << r.schedule.clock_ns
     << " ns\n";
  os << "latency:           " << r.schedule.latency_cycles << " cycles ("
     << std::setprecision(0) << r.schedule.latency_ns << " ns)\n";
  os << "throughput:        " << std::setprecision(3) << r.msymbols_per_s()
     << " Msymbol/s\n";
  os << "area (gates):      " << std::setprecision(0) << r.area.total
     << "  [fu " << r.area.fu << ", reg " << r.area.reg << ", mux "
     << r.area.mux << ", fsm " << r.area.fsm << ", mem " << r.area.mem
     << ", io " << r.area.io << "]\n";
  os << "region latencies:\n";
  for (const auto& rs : r.schedule.regions) {
    os << "  " << std::setw(16) << std::left << rs.label << std::right
       << (rs.is_loop ? " loop " : " block") << "  cycles/iter="
       << rs.body.cycles << "  trip=" << rs.trip;
    if (rs.ii > 0) os << "  II=" << rs.ii;
    os << "  total=" << rs.total_cycles << "\n";
  }
  if (!r.warnings.empty()) {
    os << "warnings:\n";
    for (const auto& w : r.warnings) os << "  ! " << w << "\n";
  }
  return os.str();
}

std::string bill_of_materials(const SynthesisResult& r) {
  std::ostringstream os;
  os << "== Bill of materials ==\n";
  os << std::left << std::setw(10) << "unit" << std::setw(12) << "widths"
     << std::setw(8) << "ops" << std::setw(12) << "area" << "\n";
  for (const auto& fu : r.bind.fus) {
    std::ostringstream w;
    w << fu.wa;
    if (fu.wb > 0) w << "x" << fu.wb;
    os << std::left << std::setw(10) << fu.kind << std::setw(12) << w.str()
       << std::setw(8) << fu.n_ops << std::setw(12) << std::fixed
       << std::setprecision(0) << fu.area << "\n";
  }
  os << "storage bits:  " << r.bind.storage_bits << " architectural + "
     << r.bind.pipeline_bits << " pipeline\n";
  if (r.bind.mem_bits > 0)
    os << "memory bits:   " << r.bind.mem_bits << " (" << r.bind.mem_ports
       << " ports)\n";
  os << "fsm:           " << r.bind.fsm_states << " states, "
     << r.bind.counter_bits << " counter bits\n";
  os << "interface:     " << r.bind.io_bits << " bits\n";
  return os.str();
}

std::string gantt_chart(const SynthesisResult& r) {
  std::ostringstream os;
  os << "== Schedule (Gantt) ==\n";
  for (std::size_t ri = 0; ri < r.transformed.regions.size(); ++ri) {
    const Region& region = r.transformed.regions[ri];
    const RegionSchedule& rs = r.schedule.regions[ri];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    os << (region.is_loop ? "loop " : "block ") << rs.label;
    if (region.is_loop) os << "  (trip " << rs.trip << ")";
    os << "  cycles/iter=" << rs.body.cycles << "\n";
    for (int cyc = 0; cyc < rs.body.cycles; ++cyc) {
      os << "  c" << cyc << ": ";
      bool first = true;
      for (std::size_t i = 0; i < b.ops.size(); ++i) {
        if (rs.body.place[i].cycle != cyc) continue;
        if (!first) os << ", ";
        first = false;
        os << "%" << i << ":" << to_string(b.ops[i].kind);
        if (!b.ops[i].name.empty()) os << "(" << b.ops[i].name << ")";
        os << "[" << std::fixed << std::setprecision(1)
           << rs.body.place[i].start << ".." << rs.body.place[i].end << "]";
      }
      os << "\n";
    }
  }
  return os.str();
}

obs::Json to_json_value(const AreaReport& a) {
  return obs::Json::object()
      .set("total", a.total)
      .set("fu", a.fu)
      .set("reg", a.reg)
      .set("mux", a.mux)
      .set("fsm", a.fsm)
      .set("mem", a.mem)
      .set("io", a.io);
}

obs::Json to_json_value(const SynthesisResult& r, const TechLibrary& tech) {
  obs::Json doc = obs::Json::object();
  doc.set("function", r.transformed.name);
  doc.set("technology", tech.name);
  doc.set("clock_ns", r.schedule.clock_ns);
  doc.set("latency_cycles", r.latency_cycles());
  doc.set("latency_ns", r.latency_ns());
  doc.set("area", to_json_value(r.area));
  obs::Json regions = obs::Json::array();
  for (const auto& rs : r.schedule.regions)
    regions.push(obs::Json::object()
                     .set("label", rs.label)
                     .set("loop", rs.is_loop)
                     .set("trip", rs.trip)
                     .set("cycles_per_iter", rs.body.cycles)
                     .set("ii", rs.ii)
                     .set("total_cycles", rs.total_cycles));
  doc.set("regions", std::move(regions));
  obs::Json fus = obs::Json::array();
  for (const auto& fu : r.bind.fus)
    fus.push(obs::Json::object()
                 .set("kind", fu.kind)
                 .set("wa", fu.wa)
                 .set("wb", fu.wb)
                 .set("ops", fu.n_ops)
                 .set("area", fu.area));
  doc.set("functional_units", std::move(fus));
  doc.set("storage_bits", r.bind.storage_bits);
  doc.set("fsm_states", r.bind.fsm_states);
  obs::Json warnings = obs::Json::array();
  for (const auto& w : r.warnings) warnings.push(w);
  doc.set("warnings", std::move(warnings));
  return doc;
}

std::string to_json(const SynthesisResult& r, const TechLibrary& tech) {
  return to_json_value(r, tech).dump();
}

std::string critical_path_report(const SynthesisResult& r,
                                 const TechLibrary& tech) {
  std::ostringstream os;
  os << "== Critical path ==\n";
  double worst = 0;
  std::size_t worst_region = 0;
  for (std::size_t ri = 0; ri < r.schedule.regions.size(); ++ri) {
    if (r.schedule.regions[ri].body.critical_path_ns > worst) {
      worst = r.schedule.regions[ri].body.critical_path_ns;
      worst_region = ri;
    }
  }
  const RegionSchedule& rs = r.schedule.regions[worst_region];
  const Region& region = r.transformed.regions[worst_region];
  const Block& b = region.is_loop ? region.loop.body : region.straight;
  os << "region '" << rs.label << "', " << std::fixed << std::setprecision(2)
     << worst << " ns of " << r.schedule.clock_ns << " ns (slack "
     << r.schedule.clock_ns - tech.reg_margin - worst << " ns before "
     << "register margin)\n";
  // Walk the chain backwards from the critical op through same-cycle
  // operands with the latest end times.
  int cur = rs.body.critical_op;
  std::vector<int> chain;
  while (cur >= 0) {
    chain.push_back(cur);
    const Op& op = b.ops[static_cast<size_t>(cur)];
    int next = -1;
    double best = -1;
    for (int a : op.args) {
      const auto& p = rs.body.place[static_cast<size_t>(a)];
      if (p.cycle == rs.body.place[static_cast<size_t>(cur)].cycle &&
          p.end > best) {
        best = p.end;
        next = a;
      }
    }
    cur = next;
  }
  std::reverse(chain.begin(), chain.end());
  for (int id : chain) {
    const auto& p = rs.body.place[static_cast<size_t>(id)];
    os << "  %" << id << " " << to_string(b.ops[static_cast<size_t>(id)].kind)
       << (b.ops[static_cast<size_t>(id)].name.empty()
               ? ""
               : " (" + b.ops[static_cast<size_t>(id)].name + ")")
       << "  " << std::setprecision(2) << p.start << " -> " << p.end
       << " ns\n";
  }
  return os.str();
}

}  // namespace hlsw::hls
