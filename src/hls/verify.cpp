#include "hls/verify.h"

#include <map>
#include <sstream>

namespace hlsw::hls {

namespace {

void violation(std::vector<std::string>* out, const std::string& region,
               const std::string& what) {
  out->push_back("region '" + region + "': " + what);
}

void verify_block(const Function& f, const Directives& dir,
                  const TechLibrary& tech, const std::string& label,
                  const Block& b, const BlockSchedule& bs, int trip,
                  std::vector<std::string>* out) {
  const double budget = dir.clock_period_ns - tech.reg_margin;
  if (bs.place.size() != b.ops.size()) {
    violation(out, label, "placement count mismatch");
    return;
  }

  // Rule 1: data operands available — producer cycle <= consumer cycle,
  // and same-cycle producers finish before the consumer starts.
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const Op& op = b.ops[i];
    for (int a : op.args) {
      const auto& pp = bs.place[static_cast<size_t>(a)];
      const auto& pc = bs.place[i];
      if (pp.cycle > pc.cycle) {
        std::ostringstream os;
        os << "op %" << i << " consumes %" << a
           << " scheduled in a later cycle";
        violation(out, label, os.str());
      } else if (pp.cycle == pc.cycle && pp.end > pc.start + 1e-9) {
        std::ostringstream os;
        os << "op %" << i << " starts at " << pc.start
           << " ns before same-cycle producer %" << a << " ends at "
           << pp.end << " ns";
        violation(out, label, os.str());
      }
    }
  }

  // Rule 2: memory ordering.
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const Op& op = b.ops[i];
    for (std::size_t e = 0; e < i; ++e) {
      const Op& prev = b.ops[e];
      // Scalars: read-after-write may share a cycle (forwarding); a write
      // must never be scheduled before a program-earlier read or write.
      if (op.var >= 0 && prev.var == op.var) {
        const bool later_write = op.kind == OpKind::kVarWrite;
        if (later_write && bs.place[i].cycle < bs.place[e].cycle) {
          std::ostringstream os;
          os << "var write %" << i << " precedes program-earlier access %"
             << e;
          violation(out, label, os.str());
        }
        if (op.kind == OpKind::kVarRead && prev.kind == OpKind::kVarWrite &&
            bs.place[i].cycle < bs.place[e].cycle) {
          std::ostringstream os;
          os << "var read %" << i << " precedes its writer %" << e;
          violation(out, label, os.str());
        }
      }
      // Arrays: committed at cycle edges.
      if (op.array >= 0 && prev.array == op.array &&
          may_alias(prev, op, 0, trip)) {
        if (prev.kind == OpKind::kArrayWrite &&
            op.kind == OpKind::kArrayRead &&
            bs.place[i].cycle <= bs.place[e].cycle) {
          std::ostringstream os;
          os << "array read %" << i << " in the same cycle as (or before) "
             << "its writer %" << e << " — registers cannot forward";
          violation(out, label, os.str());
        }
        if (prev.kind == OpKind::kArrayRead &&
            op.kind == OpKind::kArrayWrite &&
            bs.place[i].cycle < bs.place[e].cycle) {
          std::ostringstream os;
          os << "array write %" << i << " precedes program-earlier read %"
             << e;
          violation(out, label, os.str());
        }
        if (prev.kind == OpKind::kArrayWrite &&
            op.kind == OpKind::kArrayWrite &&
            bs.place[i].cycle <= bs.place[e].cycle) {
          std::ostringstream os;
          os << "conflicting array writes %" << e << " and %" << i
             << " share a cycle";
          violation(out, label, os.str());
        }
      }
    }
  }

  // Rule 3: chaining budget — end = start + delay within the cycle, and
  // within the budget unless the op alone exceeds it (reported already by
  // the scheduler as unachievable; here it is a violation).
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const OpCost cost = op_cost(f, b, static_cast<int>(i), tech);
    const auto& p = bs.place[i];
    if (p.end < p.start + cost.delay - 1e-9) {
      std::ostringstream os;
      os << "op %" << i << " end time underestimates its delay";
      violation(out, label, os.str());
    }
    if (cost.delay <= budget && p.end > budget + 1e-9) {
      std::ostringstream os;
      os << "op %" << i << " chain exceeds the cycle budget (" << p.end
         << " > " << budget << " ns)";
      violation(out, label, os.str());
    }
  }

  // Rule 4: resource caps per cycle.
  std::map<int, int> mults;
  std::map<std::pair<int, int>, std::pair<int, int>> mem_use;  // (arr,cyc)->(r,w)
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const OpCost cost = op_cost(f, b, static_cast<int>(i), tech);
    mults[bs.place[i].cycle] += cost.real_mults;
    const Op& op = b.ops[i];
    if (op.array >= 0 &&
        f.arrays[static_cast<size_t>(op.array)].mapping ==
            ArrayMapping::kMemory) {
      auto& use = mem_use[{op.array, bs.place[i].cycle}];
      if (op.kind == OpKind::kArrayRead) ++use.first;
      if (op.kind == OpKind::kArrayWrite) ++use.second;
    }
  }
  if (dir.max_real_multipliers > 0)
    for (const auto& [cycle, n] : mults)
      if (n > dir.max_real_multipliers) {
        std::ostringstream os;
        os << "cycle " << cycle << " uses " << n << " multipliers (cap "
           << dir.max_real_multipliers << ")";
        violation(out, label, os.str());
      }
  for (const auto& [key, use] : mem_use) {
    const Array& arr = f.arrays[static_cast<size_t>(key.first)];
    if (use.first > arr.mem_read_ports || use.second > arr.mem_write_ports) {
      std::ostringstream os;
      os << "memory '" << arr.name << "' over-subscribed in cycle "
         << key.second;
      violation(out, label, os.str());
    }
  }
}

}  // namespace

std::vector<std::string> verify_schedule(const Function& f,
                                         const Directives& dir,
                                         const TechLibrary& tech,
                                         const Schedule& s) {
  std::vector<std::string> out;
  if (f.regions.size() != s.regions.size()) {
    out.push_back("region count mismatch between function and schedule");
    return out;
  }
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const Region& region = f.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    verify_block(f, dir, tech, s.regions[r].label, b, s.regions[r].body,
                 region.is_loop ? region.loop.trip : 1, &out);
    // Loop accounting.
    const auto& rs = s.regions[r];
    if (region.is_loop) {
      const int expect = rs.ii > 0 ? rs.body.cycles + (rs.trip - 1) * rs.ii
                                   : rs.trip * rs.body.cycles;
      if (rs.total_cycles != expect)
        out.push_back("loop '" + rs.label + "' total_cycles inconsistent");
    }
  }
  return out;
}

}  // namespace hlsw::hls
