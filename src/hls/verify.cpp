#include "hls/verify.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "obs/trace.h"

namespace hlsw::hls {

namespace {

void violation(std::vector<std::string>* out, const std::string& region,
               const std::string& what) {
  out->push_back("region '" + region + "': " + what);
}

void verify_block(const Function& f, const Directives& dir,
                  const TechLibrary& tech, const std::string& label,
                  const Block& b, const BlockSchedule& bs, int trip,
                  std::vector<std::string>* out) {
  const double budget = dir.clock_period_ns - tech.reg_margin;
  if (bs.place.size() != b.ops.size()) {
    violation(out, label, "placement count mismatch");
    return;
  }

  // Rule 1: data operands available — producer cycle <= consumer cycle,
  // and same-cycle producers finish before the consumer starts.
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const Op& op = b.ops[i];
    for (int a : op.args) {
      const auto& pp = bs.place[static_cast<size_t>(a)];
      const auto& pc = bs.place[i];
      if (pp.cycle > pc.cycle) {
        std::ostringstream os;
        os << "op %" << i << " consumes %" << a
           << " scheduled in a later cycle";
        violation(out, label, os.str());
      } else if (pp.cycle == pc.cycle && pp.end > pc.start + 1e-9) {
        std::ostringstream os;
        os << "op %" << i << " starts at " << pc.start
           << " ns before same-cycle producer %" << a << " ends at "
           << pp.end << " ns";
        violation(out, label, os.str());
      }
    }
  }

  // Rule 2: memory ordering.
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const Op& op = b.ops[i];
    for (std::size_t e = 0; e < i; ++e) {
      const Op& prev = b.ops[e];
      // Scalars: read-after-write may share a cycle (forwarding); a write
      // must never be scheduled before a program-earlier read or write.
      if (op.var >= 0 && prev.var == op.var) {
        const bool later_write = op.kind == OpKind::kVarWrite;
        if (later_write && bs.place[i].cycle < bs.place[e].cycle) {
          std::ostringstream os;
          os << "var write %" << i << " precedes program-earlier access %"
             << e;
          violation(out, label, os.str());
        }
        if (op.kind == OpKind::kVarRead && prev.kind == OpKind::kVarWrite &&
            bs.place[i].cycle < bs.place[e].cycle) {
          std::ostringstream os;
          os << "var read %" << i << " precedes its writer %" << e;
          violation(out, label, os.str());
        }
      }
      // Arrays: committed at cycle edges.
      if (op.array >= 0 && prev.array == op.array &&
          may_alias(prev, op, 0, trip)) {
        if (prev.kind == OpKind::kArrayWrite &&
            op.kind == OpKind::kArrayRead &&
            bs.place[i].cycle <= bs.place[e].cycle) {
          std::ostringstream os;
          os << "array read %" << i << " in the same cycle as (or before) "
             << "its writer %" << e << " — registers cannot forward";
          violation(out, label, os.str());
        }
        if (prev.kind == OpKind::kArrayRead &&
            op.kind == OpKind::kArrayWrite &&
            bs.place[i].cycle < bs.place[e].cycle) {
          std::ostringstream os;
          os << "array write %" << i << " precedes program-earlier read %"
             << e;
          violation(out, label, os.str());
        }
        if (prev.kind == OpKind::kArrayWrite &&
            op.kind == OpKind::kArrayWrite &&
            bs.place[i].cycle <= bs.place[e].cycle) {
          std::ostringstream os;
          os << "conflicting array writes %" << e << " and %" << i
             << " share a cycle";
          violation(out, label, os.str());
        }
      }
    }
  }

  // Rule 3: chaining budget — end = start + delay within the cycle, and
  // within the budget unless the op alone exceeds it (reported already by
  // the scheduler as unachievable; here it is a violation).
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const OpCost cost = op_cost(f, b, static_cast<int>(i), tech);
    const auto& p = bs.place[i];
    if (p.end < p.start + cost.delay - 1e-9) {
      std::ostringstream os;
      os << "op %" << i << " end time underestimates its delay";
      violation(out, label, os.str());
    }
    if (cost.delay <= budget && p.end > budget + 1e-9) {
      std::ostringstream os;
      os << "op %" << i << " chain exceeds the cycle budget (" << p.end
         << " > " << budget << " ns)";
      violation(out, label, os.str());
    }
  }

  // Rule 4: resource caps per cycle. A cycle may exceed the multiplier cap
  // only when it holds a single op whose own usage is above the cap — the
  // scheduler places such ops alone (they could never fit otherwise).
  std::map<int, int> mults;
  std::map<int, int> mults_biggest;
  std::map<std::pair<int, int>, std::pair<int, int>> mem_use;  // (arr,cyc)->(r,w)
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const OpCost cost = op_cost(f, b, static_cast<int>(i), tech);
    mults[bs.place[i].cycle] += cost.real_mults;
    mults_biggest[bs.place[i].cycle] =
        std::max(mults_biggest[bs.place[i].cycle], cost.real_mults);
    const Op& op = b.ops[i];
    if (op.array >= 0 &&
        f.arrays[static_cast<size_t>(op.array)].mapping ==
            ArrayMapping::kMemory) {
      auto& use = mem_use[{op.array, bs.place[i].cycle}];
      if (op.kind == OpKind::kArrayRead) ++use.first;
      if (op.kind == OpKind::kArrayWrite) ++use.second;
    }
  }
  if (dir.max_real_multipliers > 0)
    for (const auto& [cycle, n] : mults)
      if (n > dir.max_real_multipliers &&
          !(n == mults_biggest[cycle] &&
            mults_biggest[cycle] > dir.max_real_multipliers)) {
        std::ostringstream os;
        os << "cycle " << cycle << " uses " << n << " multipliers (cap "
           << dir.max_real_multipliers << ")";
        violation(out, label, os.str());
      }
  for (const auto& [key, use] : mem_use) {
    const Array& arr = f.arrays[static_cast<size_t>(key.first)];
    if (use.first > arr.mem_read_ports || use.second > arr.mem_write_ports) {
      std::ostringstream os;
      os << "memory '" << arr.name << "' over-subscribed in cycle "
         << key.second;
      violation(out, label, os.str());
    }
  }
}

}  // namespace

std::vector<std::string> verify_schedule(const Function& f,
                                         const Directives& dir,
                                         const TechLibrary& tech,
                                         const Schedule& s) {
  std::vector<std::string> out;
  if (f.regions.size() != s.regions.size()) {
    out.push_back("region count mismatch between function and schedule");
    return out;
  }
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const Region& region = f.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    verify_block(f, dir, tech, s.regions[r].label, b, s.regions[r].body,
                 region.is_loop ? region.loop.trip : 1, &out);
    // Loop accounting.
    const auto& rs = s.regions[r];
    if (region.is_loop) {
      const int expect = rs.ii > 0 ? rs.body.cycles + (rs.trip - 1) * rs.ii
                                   : rs.trip * rs.body.cycles;
      if (rs.total_cycles != expect)
        out.push_back("loop '" + rs.label + "' total_cycles inconsistent");
    }
  }
  return out;
}

namespace {

std::string fx_repr(const FxValue& v) {
  std::ostringstream os;
  os << v.re_double();
  if (v.cplx) os << (v.im_double() < 0 ? "" : "+") << v.im_double() << "j";
  os << " (fw=" << v.fw << ")";
  return os.str();
}

}  // namespace

void compare_outputs(std::size_t vec, const PortIo& want, const PortIo& got,
                     std::vector<std::string>* out) {
  const auto mismatch = [&](const std::string& what) {
    std::ostringstream os;
    os << "vector " << vec << ": " << what;
    out->push_back(os.str());
  };
  for (const auto& [name, wv] : want.arrays) {
    const auto it = got.arrays.find(name);
    if (it == got.arrays.end()) {
      mismatch("dut missing output array '" + name + "'");
      continue;
    }
    if (it->second.size() != wv.size()) {
      mismatch("output array '" + name + "' length differs");
      continue;
    }
    for (std::size_t j = 0; j < wv.size(); ++j)
      if (!(it->second[j] == wv[j])) {
        std::ostringstream os;
        os << "output array '" << name << "'[" << j
           << "]: golden=" << fx_repr(wv[j])
           << " dut=" << fx_repr(it->second[j]);
        mismatch(os.str());
      }
  }
  for (const auto& [name, wv] : want.vars) {
    const auto it = got.vars.find(name);
    if (it == got.vars.end()) {
      mismatch("dut missing output var '" + name + "'");
      continue;
    }
    if (!(it->second == wv))
      mismatch("output var '" + name + "': golden=" + fx_repr(wv) +
               " dut=" + fx_repr(it->second));
  }
  for (const auto& [name, gv] : got.arrays)
    if (!want.arrays.count(name))
      mismatch("dut has extra output array '" + name + "'");
  for (const auto& [name, gv] : got.vars)
    if (!want.vars.count(name))
      mismatch("dut has extra output var '" + name + "'");
}

void cap_mismatches(std::size_t limit, CosimResult* result) {
  result->total_mismatches = result->mismatches.size();
  if (limit == 0 || result->mismatches.size() <= limit) return;
  const std::size_t suppressed = result->mismatches.size() - limit;
  result->mismatches.resize(limit);
  result->mismatches.push_back("... " + std::to_string(suppressed) +
                               " more mismatches suppressed");
}

CosimResult cosim_sweep(const CosimFactory& golden, const CosimFactory& dut,
                        const std::vector<PortIo>& vectors,
                        const CosimOptions& opts) {
  obs::ScopedSpan span("cosim_sweep", "hls.verify");
  CosimResult result;
  result.vectors = vectors.size();
  if (vectors.empty()) return result;

  const std::size_t bs = std::max<std::size_t>(1, opts.block_size);
  const std::size_t nblocks = (vectors.size() + bs - 1) / bs;
  result.blocks = nblocks;

  // Each block is replayed from reset by models the task itself creates,
  // so no simulator state is shared across threads.
  const auto run_block = [&](std::size_t blk) -> std::vector<std::string> {
    const std::size_t begin = blk * bs;
    const std::size_t end = std::min(begin + bs, vectors.size());
    const std::vector<PortIo> block(vectors.begin() + static_cast<long>(begin),
                                    vectors.begin() + static_cast<long>(end));
    const std::vector<PortIo> want = golden()(block);
    const std::vector<PortIo> got = dut()(block);
    std::vector<std::string> mism;
    if (want.size() != block.size() || got.size() != block.size()) {
      mism.push_back("block " + std::to_string(blk) +
                     ": model returned wrong vector count");
      return mism;
    }
    for (std::size_t i = 0; i < block.size(); ++i)
      compare_outputs(begin + i, want[i], got[i], &mism);
    return mism;
  };

  // Deterministic merge: map_ordered returns block results in block order
  // no matter which worker finished first.
  std::unique_ptr<util::ThreadPool> owned;
  util::ThreadPool* pool = opts.pool;
  if (pool == nullptr && opts.threads > 0) {
    owned = std::make_unique<util::ThreadPool>(opts.threads);
    pool = owned.get();
  }
  const auto per_block = util::map_ordered(pool, nblocks, run_block);
  for (const auto& mism : per_block)
    result.mismatches.insert(result.mismatches.end(), mism.begin(),
                             mism.end());
  cap_mismatches(opts.mismatch_limit, &result);

  if (span.active()) {
    span.arg("vectors", static_cast<long long>(result.vectors));
    span.arg("blocks", static_cast<long long>(result.blocks));
    span.arg("mismatches", static_cast<long long>(result.total_mismatches));
  }
  return result;
}

CosimResult cosim_sweep_nway(const std::vector<CosimLeg>& legs,
                             const std::vector<PortIo>& vectors,
                             const CosimOptions& opts) {
  obs::ScopedSpan span("cosim_sweep_nway", "hls.verify");
  CosimResult result;
  result.vectors = vectors.size();
  if (legs.size() < 2) {
    // A one-leg call is a usage error even with nothing to sweep.
    result.mismatches.push_back(
        "cosim_sweep_nway needs a reference and at least one other leg");
    result.total_mismatches = 1;
    return result;
  }
  if (vectors.empty()) return result;

  const std::size_t bs = std::max<std::size_t>(1, opts.block_size);
  const std::size_t nblocks = (vectors.size() + bs - 1) / bs;
  result.blocks = nblocks;

  const auto run_block = [&](std::size_t blk) -> std::vector<std::string> {
    const std::size_t begin = blk * bs;
    const std::size_t end = std::min(begin + bs, vectors.size());
    const std::vector<PortIo> block(vectors.begin() + static_cast<long>(begin),
                                    vectors.begin() + static_cast<long>(end));
    std::vector<std::string> mism;
    const std::vector<PortIo> want = legs[0].factory()(block);
    if (want.size() != block.size()) {
      mism.push_back("block " + std::to_string(blk) + ": reference leg '" +
                     legs[0].name + "' returned wrong vector count");
      return mism;
    }
    for (std::size_t l = 1; l < legs.size(); ++l) {
      const std::vector<PortIo> got = legs[l].factory()(block);
      if (got.size() != block.size()) {
        mism.push_back("block " + std::to_string(blk) + ": leg '" +
                       legs[l].name + "' returned wrong vector count");
        continue;
      }
      std::vector<std::string> leg_mism;
      for (std::size_t i = 0; i < block.size(); ++i)
        compare_outputs(begin + i, want[i], got[i], &leg_mism);
      for (auto& m : leg_mism)
        mism.push_back(legs[l].name + " vs " + legs[0].name + ": " +
                       std::move(m));
    }
    return mism;
  };

  std::unique_ptr<util::ThreadPool> owned;
  util::ThreadPool* pool = opts.pool;
  if (pool == nullptr && opts.threads > 0) {
    owned = std::make_unique<util::ThreadPool>(opts.threads);
    pool = owned.get();
  }
  const auto per_block = util::map_ordered(pool, nblocks, run_block);
  for (const auto& mism : per_block)
    result.mismatches.insert(result.mismatches.end(), mism.begin(),
                             mism.end());
  cap_mismatches(opts.mismatch_limit, &result);

  if (span.active()) {
    span.arg("legs", static_cast<long long>(legs.size()));
    span.arg("vectors", static_cast<long long>(result.vectors));
    span.arg("mismatches", static_cast<long long>(result.total_mismatches));
  }
  return result;
}

}  // namespace hlsw::hls
