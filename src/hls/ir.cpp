#include "hls/ir.h"

#include <cmath>
#include <sstream>

namespace hlsw::hls {

std::string FxType::to_string() const {
  std::ostringstream os;
  os << (cplx ? "c" : "") << (sgn ? "fx<" : "ufx<") << w << "," << iw;
  if (q != fixpt::Quant::kTrn || o != fixpt::Ovf::kWrap)
    os << "," << fixpt::to_string(q) << "," << fixpt::to_string(o);
  os << ">";
  return os.str();
}

double FxValue::re_double() const {
  return std::ldexp(static_cast<double>(re), -fw);
}
double FxValue::im_double() const {
  return std::ldexp(static_cast<double>(im), -fw);
}

namespace {

// Saturation bounds as __int128 for a (w, sgn) format.
__int128 max_raw(int w, bool sgn) {
  return (static_cast<__int128>(1) << (sgn ? w - 1 : w)) - 1;
}
__int128 min_raw(int w, bool sgn) {
  return sgn ? -(static_cast<__int128>(1) << (w - 1)) : 0;
}

}  // namespace

__int128 fx_convert_component(__int128 raw, int src_fw, const FxType& dst) {
  const int shift = dst.fw() - src_fw;
  __int128 v = raw;
  if (shift >= 0) {
    v = raw << shift;
  } else {
    const int d = -shift;
    const __int128 base = raw >> d;  // arithmetic shift: floor
    const bool msb = d >= 1 && ((raw >> (d - 1)) & 1) != 0;
    const bool rest =
        d >= 2 && (raw & (((static_cast<__int128>(1) << (d - 1)) - 1))) != 0;
    const bool neg = raw < 0;
    const bool lsb_kept = (base & 1) != 0;
    v = base + (fixpt::round_increment(dst.q, msb, rest, neg, lsb_kept) ? 1 : 0);
  }
  // Overflow handling into dst.w bits.
  const __int128 hi = max_raw(dst.w, dst.sgn);
  const __int128 lo = (dst.o == fixpt::Ovf::kSatSym && dst.sgn)
                          ? -hi
                          : min_raw(dst.w, dst.sgn);
  if (v > hi || v < lo) {
    switch (dst.o) {
      case fixpt::Ovf::kSat:
      case fixpt::Ovf::kSatSym:
        return v > hi ? hi : lo;
      case fixpt::Ovf::kSatZero:
        return 0;
      case fixpt::Ovf::kWrap: {
        const unsigned __int128 mask =
            (static_cast<unsigned __int128>(1) << dst.w) - 1;
        unsigned __int128 u = static_cast<unsigned __int128>(v) & mask;
        if (dst.sgn && (u >> (dst.w - 1)) & 1) u |= ~mask;  // sign extend
        return static_cast<__int128>(u);
      }
    }
  }
  return v;
}

FxValue fx_convert(const FxValue& v, const FxType& dst) {
  FxValue out;
  out.fw = dst.fw();
  out.cplx = dst.cplx;
  out.re = fx_convert_component(v.re, v.fw, dst);
  out.im = dst.cplx ? fx_convert_component(v.im, v.fw, dst) : 0;
  return out;
}

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kConst: return "const";
    case OpKind::kVarRead: return "var_read";
    case OpKind::kVarWrite: return "var_write";
    case OpKind::kArrayRead: return "array_read";
    case OpKind::kArrayWrite: return "array_write";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kNeg: return "neg";
    case OpKind::kSignConj: return "sign_conj";
    case OpKind::kCast: return "cast";
    case OpKind::kReal: return "real";
    case OpKind::kImag: return "imag";
    case OpKind::kMakeComplex: return "make_complex";
  }
  return "?";
}

int Function::var_index(const std::string& n) const {
  for (std::size_t i = 0; i < vars.size(); ++i)
    if (vars[i].name == n) return static_cast<int>(i);
  return -1;
}

int Function::array_index(const std::string& n) const {
  for (std::size_t i = 0; i < arrays.size(); ++i)
    if (arrays[i].name == n) return static_cast<int>(i);
  return -1;
}

const Region* Function::find_loop(const std::string& label) const {
  for (const auto& r : regions)
    if (r.is_loop && r.loop.label == label) return &r;
  return nullptr;
}
Region* Function::find_loop(const std::string& label) {
  for (auto& r : regions)
    if (r.is_loop && r.loop.label == label) return &r;
  return nullptr;
}

namespace {
void dump_block(std::ostringstream& os, const Function& f, const Block& b,
                const std::string& indent) {
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const Op& op = b.ops[i];
    os << indent << "%" << i << " = " << to_string(op.kind);
    os << " : " << op.type.to_string();
    if (op.var >= 0) os << " " << f.vars[static_cast<std::size_t>(op.var)].name;
    if (op.array >= 0) {
      os << " " << f.arrays[static_cast<std::size_t>(op.array)].name << "[";
      if (op.idx.scale != 0) os << op.idx.scale << "k";
      if (op.idx.offset != 0 || op.idx.scale == 0)
        os << (op.idx.scale != 0 && op.idx.offset >= 0 ? "+" : "")
           << op.idx.offset;
      os << "]";
    }
    for (int a : op.args) os << " %" << a;
    if (op.kind == OpKind::kConst)
      os << " value=" << op.cval.re_double()
         << (op.cval.cplx ? ("+j" + std::to_string(op.cval.im_double())) : "");
    if (op.guard_trip >= 0) os << " guard(k<" << op.guard_trip << ")";
    if (!op.name.empty()) os << " ; " << op.name;
    os << "\n";
  }
}
}  // namespace

std::string Function::dump() const {
  std::ostringstream os;
  os << "function " << name << "\n";
  for (const auto& v : vars) {
    os << "  var " << v.name << " : " << v.type.to_string();
    if (v.is_static) os << " static";
    if (v.port == PortDir::kOut) os << " out";
    if (v.port == PortDir::kIn) os << " in";
    os << "\n";
  }
  for (const auto& a : arrays) {
    os << "  array " << a.name << "[" << a.length << "] : "
       << a.elem.to_string();
    if (a.is_static) os << " static";
    if (a.port == PortDir::kIn) os << " in";
    if (a.port == PortDir::kOut) os << " out";
    os << (a.mapping == ArrayMapping::kMemory ? " memory" : " registers");
    os << "\n";
  }
  for (const auto& r : regions) {
    if (r.is_loop) {
      os << "  loop " << r.loop.label << " trip=" << r.loop.trip;
      if (r.loop.unroll_applied > 1) os << " unroll=" << r.loop.unroll_applied;
      if (!r.loop.merged_labels.empty()) {
        os << " merged={";
        for (const auto& l : r.loop.merged_labels) os << l << " ";
        os << "}";
      }
      os << "\n";
      dump_block(os, *this, r.loop.body, "    ");
    } else {
      os << "  block " << r.name << "\n";
      dump_block(os, *this, r.straight, "    ");
    }
  }
  return os.str();
}

}  // namespace hlsw::hls
