// Allocation and binding: maps scheduled operations onto shared functional
// units, counts storage and steering logic, and produces the component
// inventory behind the paper's area numbers and bill-of-materials report.
//
// Sharing model: the design has a single global FSM (regions execute
// sequentially), so two operations can share a functional unit whenever
// they occupy different (region, body-cycle) slots. Within a slot they need
// distinct units. Pool size per FU class = max simultaneous use across all
// slots; unit widths follow the "i-th largest requirement" heuristic
// (sort each slot's requests descending; unit i must accommodate the
// largest i-th request it ever receives). Sharing is paid for with input
// multiplexers, which is why the paper's more-parallel architectures grow
// area superlinearly.
#pragma once

#include <string>
#include <vector>

#include "hls/schedule.h"

namespace hlsw::hls {

struct FuInstance {
  std::string kind;  // "mul", "add", "sign_mul", "cast", ...
  int wa = 0, wb = 0;
  int n_ops = 0;  // operations bound to this unit (mux inputs)
  double area = 0;
};

struct BindResult {
  std::vector<FuInstance> fus;
  double fu_area = 0;
  long long storage_bits = 0;   // architectural registers (vars + arrays)
  long long pipeline_bits = 0;  // inter-cycle temporaries
  long long mem_bits = 0;       // memory-mapped arrays
  int mem_ports = 0;
  double mux_area = 0;  // FU input muxes + register/array steering
  int fsm_states = 0;
  int counter_bits = 0;
  long long io_bits = 0;
  long long io_reg_bits = 0;  // interface registers (registered/handshake)
};

BindResult bind_design(const Function& f, const Schedule& s,
                       const Directives& dir, const TechLibrary& tech);

struct AreaReport {
  double fu = 0;
  double reg = 0;
  double mux = 0;
  double fsm = 0;
  double mem = 0;
  double io = 0;
  double total = 0;
};

AreaReport estimate_area(const BindResult& b, const TechLibrary& tech);

}  // namespace hlsw::hls
