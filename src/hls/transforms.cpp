#include "hls/transforms.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hlsw::hls {

void unroll_loop(Loop* loop, int u) {
  assert(u >= 1);
  if (u == 1) return;
  const Block old = loop->body;
  const int n = static_cast<int>(old.ops.size());
  Block nb;
  // Copy j of the body handles original iteration k_old = u*k_new + j.
  std::vector<int> remap(static_cast<size_t>(n));
  for (int j = 0; j < u; ++j) {
    for (int i = 0; i < n; ++i) {
      Op op = old.ops[static_cast<size_t>(i)];
      const int g = op.guard_trip < 0 ? loop->trip : op.guard_trip;
      const int new_guard = (g - j + u - 1) / u;  // ceil((g-j)/u)
      if (new_guard <= 0) {
        // This copy never executes (trip not divisible by u); drop it but
        // keep the remap slot pointing at the previous copy so later args
        // in this copy (which are equally dead) still resolve.
        remap[static_cast<size_t>(i)] = j > 0 ? remap[static_cast<size_t>(i)]
                                              : -1;
        continue;
      }
      for (int& a : op.args) a = remap[static_cast<size_t>(a)];
      if (op.is_mem_access()) {
        op.idx.offset = op.idx.scale * j + op.idx.offset;
        op.idx.scale = op.idx.scale * u;
      }
      op.guard_trip = new_guard;
      nb.ops.push_back(std::move(op));
      remap[static_cast<size_t>(i)] = static_cast<int>(nb.ops.size()) - 1;
    }
  }
  loop->body = std::move(nb);
  loop->trip = (loop->trip + u - 1) / u;
  loop->unroll_applied *= u;
  // Tighten guards that now equal the new trip (fully active copies).
  for (Op& op : loop->body.ops)
    if (op.guard_trip >= loop->trip) op.guard_trip = -1;
}

namespace {

// Whether accesses a (iteration ka) and b (iteration kb) touch the same
// array element.
bool same_location(const Op& a, int ka, const Op& b, int kb) {
  return a.idx.eval(ka) == b.idx.eval(kb);
}

// Detects sequential-order violations introduced by merging loop `li`
// (earlier in program order) with loop `lj`: in the original program every
// access of li happens before every access of lj; after an iteration-
// aligned merge, lj's iteration kj precedes li's iteration ki whenever
// kj < ki. A conflicting access pair (at least one write, same element,
// kj < ki) therefore changes the value observed.
void analyze_merge_pair(const Function& f, const Loop& li, const Loop& lj,
                        std::vector<std::string>* warnings) {
  for (const Op& a : li.body.ops) {
    if (!a.is_mem_access()) continue;
    const int ga = a.guard_trip < 0 ? li.trip : a.guard_trip;
    for (const Op& b : lj.body.ops) {
      if (!b.is_mem_access() || b.array != a.array) continue;
      if (!a.is_write() && !b.is_write()) continue;
      const int gb = b.guard_trip < 0 ? lj.trip : b.guard_trip;
      bool hazard = false;
      for (int ki = 0; ki < ga && !hazard; ++ki)
        for (int kj = 0; kj < ki && kj < gb && !hazard; ++kj)
          if (same_location(a, ki, b, kj)) hazard = true;
      if (hazard) {
        std::ostringstream os;
        os << "merge reorders accesses to array '"
           << f.arrays[static_cast<size_t>(a.array)].name << "' between loop '"
           << li.label << "' and loop '" << lj.label
           << "': semantics follow the merged schedule, not the sequential "
              "source order";
        // Deduplicate.
        if (std::find(warnings->begin(), warnings->end(), os.str()) ==
            warnings->end())
          warnings->push_back(os.str());
      }
    }
  }
}

}  // namespace

void merge_loops(Function* f, const std::vector<std::string>& labels,
                 std::vector<std::string>* warnings) {
  if (labels.size() < 2) return;
  // Locate the member regions; they must be consecutive loop regions.
  std::vector<int> idx;
  for (const auto& label : labels) {
    int found = -1;
    for (std::size_t r = 0; r < f->regions.size(); ++r)
      if (f->regions[r].is_loop && f->regions[r].loop.label == label)
        found = static_cast<int>(r);
    if (found < 0) {
      warnings->push_back("merge group references unknown loop '" + label +
                          "'");
      return;
    }
    idx.push_back(found);
  }
  for (std::size_t i = 1; i < idx.size(); ++i) {
    if (idx[i] != idx[i - 1] + 1) {
      warnings->push_back(
          "merge group loops are not consecutive regions; merge skipped");
      return;
    }
  }

  // Pairwise dependence legality analysis (program order i < j).
  for (std::size_t i = 0; i < idx.size(); ++i)
    for (std::size_t j = i + 1; j < idx.size(); ++j)
      analyze_merge_pair(*f, f->regions[static_cast<size_t>(idx[i])].loop,
                         f->regions[static_cast<size_t>(idx[j])].loop,
                         warnings);

  // Build the merged loop into the first member.
  Loop merged;
  merged.label = labels.front();
  merged.trip = 0;
  for (int r : idx)
    merged.trip =
        std::max(merged.trip, f->regions[static_cast<size_t>(r)].loop.trip);
  for (int r : idx) {
    const Loop& m = f->regions[static_cast<size_t>(r)].loop;
    merged.merged_labels.push_back(m.label);
    merged.unroll_applied = std::max(merged.unroll_applied, m.unroll_applied);
    const int base = static_cast<int>(merged.body.ops.size());
    for (Op op : m.body.ops) {
      for (int& a : op.args) a += base;
      if (op.guard_trip < 0 && m.trip < merged.trip) op.guard_trip = m.trip;
      op.src_loop = r;
      merged.body.ops.push_back(std::move(op));
    }
  }

  // Replace the first region, erase the rest.
  f->regions[static_cast<size_t>(idx.front())].loop = std::move(merged);
  f->regions[static_cast<size_t>(idx.front())].name = labels.front();
  f->regions.erase(f->regions.begin() + idx.front() + 1,
                   f->regions.begin() + idx.back() + 1);
}

TransformResult apply_transforms(const Function& input, const Directives& dir) {
  obs::ScopedSpan span("transforms", "hls");
  TransformResult out;
  out.func = input;

  // Array mapping directives. Port counts below 1 would leave the
  // scheduler with no cycle that can ever host an access (its placement
  // loop would search forever), so degenerate directives clamp to one
  // port with a warning.
  for (auto& arr : out.func.arrays) {
    const ArrayDirective ad = dir.array_directive(arr.name);
    arr.mapping = ad.mapping;
    arr.mem_read_ports = std::max(1, ad.mem_read_ports);
    arr.mem_write_ports = std::max(1, ad.mem_write_ports);
    if (arr.mapping == ArrayMapping::kMemory &&
        (ad.mem_read_ports < 1 || ad.mem_write_ports < 1)) {
      std::ostringstream os;
      os << "array '" << arr.name << "': memory port counts must be >= 1 "
         << "(got " << ad.mem_read_ports << "r/" << ad.mem_write_ports
         << "w); clamped to " << arr.mem_read_ports << "r/"
         << arr.mem_write_ports << "w";
      out.warnings.push_back(os.str());
    }
  }

  // Unroll first (Table 1 applies U to source loops, then merges).
  int loops_unrolled = 0;
  for (auto& region : out.func.regions) {
    if (!region.is_loop) continue;
    const LoopDirective ld = dir.loop_directive(region.loop.label);
    if (ld.unroll > 1) {
      unroll_loop(&region.loop, ld.unroll);
      ++loops_unrolled;
    }
  }

  // Then merge groups — explicit ones, or every maximal run of adjacent
  // loops when auto_merge is on (the paper's "default constraints").
  std::vector<std::vector<std::string>> groups = dir.merge_groups;
  if (groups.empty() && dir.auto_merge) {
    std::vector<std::string> run;
    for (const auto& region : out.func.regions) {
      if (region.is_loop) {
        run.push_back(region.loop.label);
      } else {
        if (run.size() > 1) groups.push_back(run);
        run.clear();
      }
    }
    if (run.size() > 1) groups.push_back(run);
  }
  for (const auto& group : groups) merge_loops(&out.func, group, &out.warnings);

  if (span.active()) {
    std::size_t ops = 0;
    for (const auto& region : out.func.regions)
      ops += (region.is_loop ? region.loop.body : region.straight).ops.size();
    span.arg("function", out.func.name);
    span.arg("loops_unrolled", loops_unrolled);
    span.arg("merge_groups", groups.size());
    span.arg("ops_out", ops);
    auto& m = obs::MetricsRegistry::instance();
    m.add("hls.transforms.runs");
    m.add("hls.transforms.loops_unrolled", loops_unrolled);
    m.add("hls.transforms.merge_groups", static_cast<double>(groups.size()));
    m.add("hls.transforms.ops_out", static_cast<double>(ops));
  }
  return out;
}

}  // namespace hlsw::hls
