#include "hls/feasibility.h"

#include <algorithm>
#include <climits>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "fixpt/bitwidth.h"
#include "hls/schedule.h"
#include "hls/synth_cache.h"
#include "hls/transforms.h"

namespace hlsw::hls {

const char* to_string(InfeasibleKind k) {
  switch (k) {
    case InfeasibleKind::kNone:
      return "none";
    case InfeasibleKind::kUnrollOverTrip:
      return "unroll_over_trip";
    case InfeasibleKind::kMergeConflict:
      return "merge_conflict";
    case InfeasibleKind::kDegenerateDirective:
      return "degenerate_directive";
    case InfeasibleKind::kIiBelowRecurrence:
      return "ii_below_recurrence";
    case InfeasibleKind::kIiBelowBandwidth:
      return "ii_below_bandwidth";
  }
  return "?";
}

namespace {

int value_bits(const FxType& t) { return t.w * (t.cplx ? 2 : 1); }

// One region of the transformed design, simulated from the directives
// without running apply_transforms: unroll divides the trip (ceil), a
// merge keeps the first member's label and the max member trip, in region
// order. `members` records the source loops folded in and their unroll
// factors — together with the clock/multiplier-cap environment they
// determine the merged body exactly, which is what lets floor results be
// shared across shapes that only differ in sibling directives.
struct SimRegion {
  bool is_loop;
  std::string label;
  int trip;
  std::vector<std::pair<std::string, int>> members;  // (source label, unroll)
};

// Canonicalization state: the directives being rewritten toward their
// metrics-equivalent normal form, plus the first violation found (the
// verdict reports the structurally most fundamental change), plus the
// simulated post-transform structure.
struct Canon {
  Directives dir;
  InfeasibleKind kind = InfeasibleKind::kNone;
  std::string reason;
  bool changed = false;
  std::vector<SimRegion> structure;
};

void flag(Canon* c, InfeasibleKind kind, const std::string& reason) {
  c->changed = true;
  if (c->kind == InfeasibleKind::kNone) {
    c->kind = kind;
    c->reason = reason;
  }
}

// Rewrites `c->dir` into the form apply_transforms + schedule_function
// provably treat identically, flagging every rewrite that alters the
// canonical cache key (= every rewrite a cache would otherwise miss on).
// Rewrites that the key canonicalization already absorbs (unroll <= 1
// entries, default array entries) stay silent.
void canonicalize_structure(const Function& f, Canon* c) {
  // Loop labels in region order (merge_loops resolves a label to its LAST
  // matching region, mirrored below via the map overwrite).
  std::vector<std::string> order;
  std::map<std::string, int> trips;
  for (const auto& region : f.regions) {
    if (!region.is_loop) continue;
    order.push_back(region.loop.label);
    trips[region.loop.label] = region.loop.trip;
  }

  // --- Per-loop entries: unknown labels, degenerate values, over-unroll.
  for (auto it = c->dir.loops.begin(); it != c->dir.loops.end();) {
    LoopDirective& ld = it->second;
    const bool key_visible = ld.unroll > 1 || ld.pipeline_ii != 0;
    auto t = trips.find(it->first);
    if (t == trips.end()) {
      // No region carries this label; the scheduler never looks it up.
      if (key_visible)
        flag(c, InfeasibleKind::kMergeConflict,
             "loop directive targets unknown loop '" + it->first + "'");
      it = c->dir.loops.erase(it);
      continue;
    }
    if (ld.unroll < 1) ld.unroll = 1;  // key-equivalent already
    if (ld.unroll > t->second) {
      std::ostringstream os;
      os << "loop '" << it->first << "': unroll " << ld.unroll
         << " exceeds trip count " << t->second;
      flag(c, InfeasibleKind::kUnrollOverTrip, os.str());
      ld.unroll = t->second;
    }
    if (ld.pipeline_ii < 0) {
      std::ostringstream os;
      os << "loop '" << it->first << "': pipeline_ii " << ld.pipeline_ii
         << " is negative; treated as not pipelined";
      flag(c, InfeasibleKind::kDegenerateDirective, os.str());
      ld.pipeline_ii = 0;
    }
    ++it;
  }

  // --- Array entries: port counts the transform engine clamps anyway.
  for (auto it = c->dir.arrays.begin(); it != c->dir.arrays.end();) {
    ArrayDirective& ad = it->second;
    if (f.array_index(it->first) < 0) {
      const bool key_visible = !(ad.mapping == ArrayMapping::kRegisters &&
                                 ad.mem_read_ports == 1 &&
                                 ad.mem_write_ports == 1);
      if (key_visible)
        flag(c, InfeasibleKind::kDegenerateDirective,
             "array directive targets unknown array '" + it->first + "'");
      it = c->dir.arrays.erase(it);
      continue;
    }
    if (ad.mem_read_ports < 1 || ad.mem_write_ports < 1) {
      std::ostringstream os;
      os << "array '" << it->first << "': memory port counts must be >= 1 "
         << "(got " << ad.mem_read_ports << "r/" << ad.mem_write_ports
         << "w)";
      flag(c, InfeasibleKind::kDegenerateDirective, os.str());
      ad.mem_read_ports = std::max(1, ad.mem_read_ports);
      ad.mem_write_ports = std::max(1, ad.mem_write_ports);
    }
    ++it;
  }

  // --- Merge groups: replay merge_loops' acceptance test on a simulated
  // region list (groups apply in order; earlier merges change what later
  // groups see) and drop every group the engine would refuse. The same
  // simulation yields the transformed structure: unroll first (trip
  // becomes ceil(trip/U), mirroring apply_transforms' order), merges take
  // the max member trip.
  std::vector<SimRegion> sim;
  for (const auto& region : f.regions) {
    if (!region.is_loop) {
      sim.push_back({false, region.name, 1, {}});
      continue;
    }
    const int u =
        std::max(1, c->dir.loop_directive(region.loop.label).unroll);
    sim.push_back({true,
                   region.loop.label,
                   (region.loop.trip + u - 1) / u,
                   {{region.loop.label, u}}});
  }

  const bool had_explicit = !c->dir.merge_groups.empty();
  std::vector<std::vector<std::string>> groups = c->dir.merge_groups;
  if (groups.empty() && c->dir.auto_merge) {
    // Auto-derived maximal runs are consecutive loops by construction:
    // they always apply, but we still need the merged-away labels below.
    std::vector<std::string> run;
    for (const auto& r : sim) {
      if (r.is_loop) {
        run.push_back(r.label);
      } else {
        if (run.size() > 1) groups.push_back(run);
        run.clear();
      }
    }
    if (run.size() > 1) groups.push_back(run);
  }

  std::set<std::string> merged_away;
  std::vector<std::vector<std::string>> kept;
  for (const auto& group : groups) {
    if (group.size() < 2) {
      if (had_explicit)
        flag(c, InfeasibleKind::kMergeConflict,
             "merge group needs at least two labels");
      continue;  // merge_loops ignores it
    }
    std::vector<int> idx;
    bool ok = true;
    for (const auto& label : group) {
      int found = -1;
      for (std::size_t r = 0; r < sim.size(); ++r)
        if (sim[r].is_loop && sim[r].label == label)
          found = static_cast<int>(r);
      if (found < 0) {
        if (had_explicit)
          flag(c, InfeasibleKind::kMergeConflict,
               "merge group references unknown loop '" + label + "'");
        ok = false;
        break;
      }
      idx.push_back(found);
    }
    if (ok)
      for (std::size_t i = 1; i < idx.size(); ++i)
        if (idx[i] != idx[i - 1] + 1) {
          if (had_explicit)
            flag(c, InfeasibleKind::kMergeConflict,
                 "merge group loops are not consecutive regions");
          ok = false;
          break;
        }
    if (!ok) continue;
    kept.push_back(group);
    for (std::size_t i = 1; i < group.size(); ++i)
      merged_away.insert(group[i]);
    SimRegion& front_region = sim[static_cast<size_t>(idx.front())];
    for (int r = idx.front() + 1; r <= idx.back(); ++r) {
      SimRegion& member = sim[static_cast<size_t>(r)];
      front_region.trip = std::max(front_region.trip, member.trip);
      front_region.members.insert(front_region.members.end(),
                                  member.members.begin(),
                                  member.members.end());
    }
    front_region.label = group.front();
    sim.erase(sim.begin() + idx.front() + 1, sim.begin() + idx.back() + 1);
  }
  if (had_explicit) {
    c->dir.merge_groups = kept;
    // Dropping every explicit group must not re-enable the auto-merge
    // fallback the original directives suppressed.
    if (kept.empty() && c->dir.auto_merge) c->dir.auto_merge = false;
  }

  // --- Pipeline directives on loops that no longer exist after merging:
  // schedule_function only looks up surviving labels, so the request is
  // silently dead — canonicalize it away (unroll still applies pre-merge).
  for (auto& [label, ld] : c->dir.loops) {
    if (ld.pipeline_ii < 1 || !merged_away.count(label)) continue;
    std::ostringstream os;
    os << "loop '" << label
       << "': pipeline directive targets a loop merged away";
    flag(c, InfeasibleKind::kMergeConflict, os.str());
    ld.pipeline_ii = 0;
  }

  c->structure = std::move(sim);
}

// ---------------------------------------------------------------------------
// Relaxed schedule: the scheduler's greedy placement with every resource
// check dropped (memory ports, multiplier cap). Resources only ever push
// ops to later cycles, so each op's relaxed (cycle, end) is a
// component-wise lex lower bound on its true placement, and the relaxed
// block cycle count lower-bounds the true one.
int relaxed_block_cycles(const Function& f, const Block& b, int trip,
                         const Directives& dir, const TechLibrary& tech) {
  const int n = static_cast<int>(b.ops.size());
  if (n == 0) return 1;
  const double budget = dir.clock_period_ns - tech.reg_margin;
  const auto deps = build_block_deps(f, b, trip);
  std::vector<int> cyc(static_cast<size_t>(n), 0);
  std::vector<double> end(static_cast<size_t>(n), 0);
  int cycles = 0;
  for (int i = 0; i < n; ++i) {
    const double delay = op_cost(f, b, i, tech).delay;
    int earliest = 0;
    for (const BlockDep& d : deps[static_cast<size_t>(i)]) {
      const int pc = cyc[static_cast<size_t>(d.from)];
      earliest = std::max(earliest,
                          d.kind == BlockDepKind::kNextCycle ||
                                  d.kind == BlockDepKind::kWaw
                              ? pc + 1
                              : pc);
    }
    for (int cycle = earliest;; ++cycle) {
      double start = 0;
      for (const BlockDep& d : deps[static_cast<size_t>(i)]) {
        if (d.kind != BlockDepKind::kData && d.kind != BlockDepKind::kVarFwd)
          continue;
        if (cyc[static_cast<size_t>(d.from)] == cycle)
          start = std::max(start, end[static_cast<size_t>(d.from)]);
      }
      if (start + delay <= budget || delay > budget) {
        cyc[static_cast<size_t>(i)] = cycle;
        end[static_cast<size_t>(i)] = start + delay;
        break;
      }
    }
    cycles = std::max(cycles, cyc[static_cast<size_t>(i)] + 1);
  }
  return cycles;
}

// DP cost cap: recurrence analysis is O(reads * ops * edges); beyond this
// block size it degrades to the trivial (still sound) bound of 1.
constexpr int kMaxRecurrenceOps = 512;

// Lower bound on the initiation interval the scheduler's recurrence check
// will impose, without the schedule. For each loop-carried write->read
// pair the scheduler needs ceil((cw + 1 - cr) / d) where cw/cr are the
// ops' true cycles and d the smallest aliasing distance. We lower-bound
// cw - cr by a forward DP from the read: Bound{c, t} on op u means "u's
// true cycle >= cr + c, and if equal, u's end time >= t". Chain steps
// mirror the scheduler's fits rule exactly; joins take the lex max.
// Writes not reachable from the read contribute nothing (sound: the
// result only ever under-approximates the scheduler's value).
int recurrence_lb(const Function& f, const Block& b, int trip,
                  const Directives& dir, const TechLibrary& tech) {
  const int n = static_cast<int>(b.ops.size());
  if (trip < 2 || n == 0 || n > kMaxRecurrenceOps) return 1;
  const double budget = dir.clock_period_ns - tech.reg_margin;
  const auto deps = build_block_deps(f, b, trip);
  std::vector<double> delay(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) delay[static_cast<size_t>(i)] = op_cost(f, b, i, tech).delay;

  // Carried pairs, keyed by read op: (write op, smallest aliasing distance).
  struct Pair {
    int w;
    int d;
  };
  std::map<int, std::vector<Pair>> pairs_by_read;
  for (int w = 0; w < n; ++w) {
    const Op& wop = b.ops[static_cast<size_t>(w)];
    if (!wop.is_write()) continue;
    for (int r = 0; r < n; ++r) {
      const Op& rop = b.ops[static_cast<size_t>(r)];
      const bool var_pair = wop.kind == OpKind::kVarWrite &&
                            rop.kind == OpKind::kVarRead && rop.var == wop.var;
      const bool arr_pair = wop.kind == OpKind::kArrayWrite &&
                            rop.kind == OpKind::kArrayRead &&
                            rop.array == wop.array;
      if (!var_pair && !arr_pair) continue;
      if (w <= r) continue;  // DP only reaches ops after the read
      int dist = -1;
      for (int d = 1; d < trip; ++d) {
        if (arr_pair && !may_alias(wop, rop, d, trip)) continue;
        dist = d;  // the smallest distance dominates (scheduler breaks here)
        break;
      }
      if (dist > 0) pairs_by_read[r].push_back({w, dist});
    }
  }

  int min_ii = 1;
  std::vector<int> c(static_cast<size_t>(n));
  std::vector<double> t(static_cast<size_t>(n));
  for (const auto& [r, pairs] : pairs_by_read) {
    std::fill(c.begin(), c.end(), INT_MIN);
    c[static_cast<size_t>(r)] = 0;
    t[static_cast<size_t>(r)] = delay[static_cast<size_t>(r)];
    for (int i = r + 1; i < n; ++i) {
      for (const BlockDep& d : deps[static_cast<size_t>(i)]) {
        if (c[static_cast<size_t>(d.from)] == INT_MIN) continue;
        const int cu = c[static_cast<size_t>(d.from)];
        const double tu = t[static_cast<size_t>(d.from)];
        int cc;
        double tt;
        switch (d.kind) {
          case BlockDepKind::kData:
          case BlockDepKind::kVarFwd:
            if (tu + delay[static_cast<size_t>(i)] <= budget ||
                delay[static_cast<size_t>(i)] > budget) {
              cc = cu;
              tt = tu + delay[static_cast<size_t>(i)];
            } else {
              cc = cu + 1;
              tt = delay[static_cast<size_t>(i)];
            }
            break;
          case BlockDepKind::kNextCycle:
          case BlockDepKind::kWaw:
            cc = cu + 1;
            tt = delay[static_cast<size_t>(i)];
            break;
          case BlockDepKind::kOrder:
          default:
            cc = cu;
            tt = delay[static_cast<size_t>(i)];
            break;
        }
        if (cc > c[static_cast<size_t>(i)] ||
            (cc == c[static_cast<size_t>(i)] && tt > t[static_cast<size_t>(i)]))
          c[static_cast<size_t>(i)] = cc, t[static_cast<size_t>(i)] = tt;
      }
    }
    for (const Pair& p : pairs) {
      if (c[static_cast<size_t>(p.w)] == INT_MIN) continue;
      const int cw_rel = c[static_cast<size_t>(p.w)];  // cw - cr >= cw_rel
      if (cw_rel + 1 <= 0) continue;
      min_ii = std::max(min_ii, (cw_rel + 1 + p.d - 1) / p.d);
    }
  }
  return min_ii;
}

// ---------------------------------------------------------------------------
// Area lower bound: the schedule-independent terms of bind_design /
// estimate_area computed exactly (storage, steering muxes, counters,
// interface bits, memories), plus provable floors for the schedule-
// dependent terms: per FU kind, the largest atomic demand any single op
// places on the pool in its cycle, and at least one FSM state per relaxed
// body cycle.
// Pipeline registers and FU-sharing muxes are >= 0 and omitted. Assumes
// the tech model's area queries are monotone with non-negative
// coefficients (true of asic90 and fpga_lut4).
double area_lb(const Function& f, const Directives& dir,
               const TechLibrary& tech, const std::vector<int>& relaxed) {
  double max_mul = 0, max_add = 0;
  long long storage_bits = 0, mem_bits = 0, io_bits = 0, io_reg_bits = 0;
  int mem_ports = 0, fsm_states = 0, counter_bits = 0;
  double mux = 0;

  for (const auto& region : f.regions) {
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      // A single op's primitive requests all land in one cycle, so the FU
      // pool must hold at least real_mults multipliers (each at least this
      // op's size) simultaneously — bind_design can never share below that.
      const OpCost cst = op_cost(f, b, static_cast<int>(i), tech);
      if (cst.real_mults > 0)
        max_mul = std::max(max_mul,
                           cst.real_mults * tech.mul_area(cst.wa, cst.wb));
      if (cst.real_adds > 0)
        max_add = std::max(max_add, cst.real_adds * tech.add_area(cst.add_w));
    }
  }

  for (const auto& v : f.vars) storage_bits += value_bits(v.type);
  for (const auto& a : f.arrays) {
    const long long bits = static_cast<long long>(a.length) * value_bits(a.elem);
    if (a.mapping == ArrayMapping::kMemory) {
      mem_bits += bits;
      mem_ports += a.mem_read_ports + a.mem_write_ports;
    } else {
      storage_bits += bits;
    }
  }

  // Steering muxes, mirroring bind_design's walk exactly (pure IR).
  std::vector<int> var_writers(f.vars.size(), 0);
  std::vector<std::vector<int>> elem_writers(f.arrays.size());
  for (std::size_t a = 0; a < f.arrays.size(); ++a)
    elem_writers[a].assign(static_cast<size_t>(f.arrays[a].length), 0);
  for (const auto& region : f.regions) {
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const int trip = region.is_loop ? region.loop.trip : 1;
    for (const Op& op : b.ops) {
      if (op.kind == OpKind::kVarWrite) {
        ++var_writers[static_cast<size_t>(op.var)];
      } else if (op.kind == OpKind::kArrayWrite &&
                 f.arrays[static_cast<size_t>(op.array)].mapping ==
                     ArrayMapping::kRegisters) {
        const int g = op.guard_trip < 0 ? trip : op.guard_trip;
        for (int k = 0; k < g; ++k) {
          const int idx = op.idx.eval(k);
          if (idx >= 0 && idx < f.arrays[static_cast<size_t>(op.array)].length)
            ++elem_writers[static_cast<size_t>(op.array)]
                          [static_cast<size_t>(idx)];
        }
      } else if (op.kind == OpKind::kArrayRead && op.idx.scale != 0 &&
                 f.arrays[static_cast<size_t>(op.array)].mapping ==
                     ArrayMapping::kRegisters) {
        const Array& arr = f.arrays[static_cast<size_t>(op.array)];
        const int g = op.guard_trip < 0 ? trip : op.guard_trip;
        std::set<int> touched;
        for (int k = 0; k < g; ++k) touched.insert(op.idx.eval(k));
        mux += tech.mux_area(static_cast<int>(touched.size()),
                             value_bits(arr.elem));
      }
    }
  }
  for (std::size_t v = 0; v < f.vars.size(); ++v)
    mux += tech.mux_area(var_writers[v], value_bits(f.vars[v].type));
  for (std::size_t a = 0; a < f.arrays.size(); ++a)
    for (int w : elem_writers[a])
      mux += tech.mux_area(w, value_bits(f.arrays[a].elem));

  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    fsm_states += relaxed[r];
    if (f.regions[r].is_loop)
      counter_bits += fixpt::clog2(
          static_cast<unsigned long long>(f.regions[r].loop.trip) + 1);
  }
  if (dir.handshake) fsm_states += 1;

  auto iface_of = [&](const std::string& name) {
    auto it = dir.interfaces.find(name);
    return it == dir.interfaces.end() ? InterfaceKind::kWire : it->second;
  };
  for (const auto& v : f.vars) {
    if (v.port == PortDir::kNone) continue;
    const int bits = value_bits(v.type);
    switch (iface_of(v.name)) {
      case InterfaceKind::kRegistered:
        io_reg_bits += bits;
        io_bits += bits;
        break;
      case InterfaceKind::kHandshake:
        io_reg_bits += bits;
        io_bits += bits + 2;
        break;
      default:
        io_bits += bits;
        break;
    }
  }
  for (const auto& a : f.arrays) {
    if (a.port == PortDir::kNone) continue;
    const long long full = static_cast<long long>(a.length) * value_bits(a.elem);
    switch (iface_of(a.name)) {
      case InterfaceKind::kStream:
        io_bits += value_bits(a.elem) + 2;
        counter_bits +=
            fixpt::clog2(static_cast<unsigned long long>(a.length) + 1);
        break;
      case InterfaceKind::kRegistered:
        io_reg_bits += full;
        io_bits += full;
        break;
      case InterfaceKind::kHandshake:
        io_reg_bits += full;
        io_bits += full + 2;
        break;
      default:
        io_bits += full;
        break;
    }
  }

  return max_mul + max_add +
         tech.reg_area(static_cast<int>(storage_bits + io_reg_bits)) + mux +
         tech.fsm_area(fsm_states, counter_bits) +
         (mem_bits > 0 ? tech.mem_area(static_cast<int>(mem_bits), mem_ports)
                       : 0) +
         tech.io_area_per_bit * static_cast<double>(io_bits);
}

// The subset of area_lb that does not depend on the loop transforms,
// evaluated on the ORIGINAL function with array mappings resolved from the
// directives. Every term kept here is transform-invariant or transform-
// monotone: unroll duplicates ops (same per-op FU demand), preserves
// per-element write counts, and only adds variable writers; merge
// concatenates bodies. Register-array READ steering muxes are the one term
// unrolling can shrink (a full partition leaves 1-input muxes), so like
// pipeline registers they are omitted here and return in the tight tier.
// The FSM/counter term depends on the transformed structure and is added
// by the caller.
double area_static_lb(const Function& f, const Directives& dir,
                      const TechLibrary& tech) {
  double max_mul = 0, max_add = 0;
  long long storage_bits = 0, mem_bits = 0, io_bits = 0, io_reg_bits = 0;
  int mem_ports = 0;
  double mux = 0;

  std::vector<ArrayMapping> mapping(f.arrays.size());
  for (std::size_t a = 0; a < f.arrays.size(); ++a)
    mapping[a] = dir.array_directive(f.arrays[a].name).mapping;

  for (const auto& region : f.regions) {
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    for (std::size_t i = 0; i < b.ops.size(); ++i) {
      const OpCost cst = op_cost(f, b, static_cast<int>(i), tech);
      if (cst.real_mults > 0)
        max_mul = std::max(max_mul,
                           cst.real_mults * tech.mul_area(cst.wa, cst.wb));
      if (cst.real_adds > 0)
        max_add = std::max(max_add, cst.real_adds * tech.add_area(cst.add_w));
    }
  }

  for (const auto& v : f.vars) storage_bits += value_bits(v.type);
  for (std::size_t a = 0; a < f.arrays.size(); ++a) {
    const Array& arr = f.arrays[a];
    const long long bits =
        static_cast<long long>(arr.length) * value_bits(arr.elem);
    if (mapping[a] == ArrayMapping::kMemory) {
      const ArrayDirective ad = dir.array_directive(arr.name);
      mem_bits += bits;
      mem_ports += std::max(1, ad.mem_read_ports) +
                   std::max(1, ad.mem_write_ports);
    } else {
      storage_bits += bits;
    }
  }

  std::vector<int> var_writers(f.vars.size(), 0);
  std::vector<std::vector<int>> elem_writers(f.arrays.size());
  for (std::size_t a = 0; a < f.arrays.size(); ++a)
    elem_writers[a].assign(static_cast<size_t>(f.arrays[a].length), 0);
  for (const auto& region : f.regions) {
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const int trip = region.is_loop ? region.loop.trip : 1;
    for (const Op& op : b.ops) {
      if (op.kind == OpKind::kVarWrite) {
        ++var_writers[static_cast<size_t>(op.var)];
      } else if (op.kind == OpKind::kArrayWrite &&
                 mapping[static_cast<size_t>(op.array)] ==
                     ArrayMapping::kRegisters) {
        const int g = op.guard_trip < 0 ? trip : op.guard_trip;
        for (int k = 0; k < g; ++k) {
          const int idx = op.idx.eval(k);
          if (idx >= 0 && idx < f.arrays[static_cast<size_t>(op.array)].length)
            ++elem_writers[static_cast<size_t>(op.array)]
                          [static_cast<size_t>(idx)];
        }
      }
    }
  }
  for (std::size_t v = 0; v < f.vars.size(); ++v)
    mux += tech.mux_area(var_writers[v], value_bits(f.vars[v].type));
  for (std::size_t a = 0; a < f.arrays.size(); ++a)
    for (int w : elem_writers[a])
      mux += tech.mux_area(w, value_bits(f.arrays[a].elem));

  auto iface_of = [&](const std::string& name) {
    auto it = dir.interfaces.find(name);
    return it == dir.interfaces.end() ? InterfaceKind::kWire : it->second;
  };
  for (const auto& v : f.vars) {
    if (v.port == PortDir::kNone) continue;
    const int bits = value_bits(v.type);
    switch (iface_of(v.name)) {
      case InterfaceKind::kRegistered:
        io_reg_bits += bits;
        io_bits += bits;
        break;
      case InterfaceKind::kHandshake:
        io_reg_bits += bits;
        io_bits += bits + 2;
        break;
      default:
        io_bits += bits;
        break;
    }
  }
  for (const auto& a : f.arrays) {
    if (a.port == PortDir::kNone) continue;
    const long long full =
        static_cast<long long>(a.length) * value_bits(a.elem);
    switch (iface_of(a.name)) {
      case InterfaceKind::kStream:
        io_bits += value_bits(a.elem) + 2;
        break;
      case InterfaceKind::kRegistered:
        io_reg_bits += full;
        io_bits += full;
        break;
      case InterfaceKind::kHandshake:
        io_reg_bits += full;
        io_bits += full + 2;
        break;
      default:
        io_bits += full;
        break;
    }
  }

  return max_mul + max_add +
         tech.reg_area(static_cast<int>(storage_bits + io_reg_bits)) + mux +
         (mem_bits > 0 ? tech.mem_area(static_cast<int>(mem_bits), mem_ports)
                       : 0) +
         tech.io_area_per_bit * static_cast<double>(io_bits);
}

// Serialized array-mapping + interface environment — the directive axes
// the cross-shape memos below additionally depend on.
std::string array_iface_key(const Directives& d) {
  std::string key;
  key.reserve(64);
  char buf[48];
  key += "arr=";
  for (const auto& [name, ad] : d.arrays) {
    if (ad.mapping == ArrayMapping::kRegisters && ad.mem_read_ports == 1 &&
        ad.mem_write_ports == 1)
      continue;
    key += name;
    std::snprintf(buf, sizeof buf, ":%d:%d:%d,", static_cast<int>(ad.mapping),
                  ad.mem_read_ports, ad.mem_write_ports);
    key += buf;
  }
  key += ";if=";
  for (const auto& [name, kind] : d.interfaces) {
    key += name;
    std::snprintf(buf, sizeof buf, ":%d,", static_cast<int>(kind));
    key += buf;
  }
  return key;
}

}  // namespace

// One analyzed transform shape: the expensive, pipeline-II-independent
// part of a verdict. Candidates differing only in requested IIs share an
// entry; their floors accumulate lazily per loop label.
//
// The bounds come in two tiers. The weak tier (populate) is near-free: one
// cycle per region body and the schedule-independent area floor. The tight
// tier (tighten: the relaxed schedule replay and the FSM-aware area bound)
// is computed only when something can use the extra precision — a direct
// caller, or a resolved point that dominates the weak bounds and needs the
// claim re-proved against the tight ones. Since weak <= tight
// component-wise, screening domination on weak bounds never misses a
// candidate the tight bounds would have pruned.
struct FeasibilityCache::Impl {
  struct Entry {
    TransformResult tf;   // materialized on demand (floor misses, tight tier)
    bool has_tf = false;
    struct RegionInfo {
      bool is_loop;
      std::string label;
      int trip;
      int rc = 1;  // relaxed cycle count of the region body (tight only)
    };
    std::vector<RegionInfo> regions;  // the simulated transformed structure
    int stream_lat = 0;               // latency addend from stream ports
    bool tight = false;               // relaxed schedule computed?
    double area = 0;                  // area bound at the current tier
    std::string env_key;  // array/interface fragment for cross-shape memos
    std::map<std::string, std::pair<int, int>> floors;  // label -> (bw, rec)
  };
  std::unordered_map<std::string, Entry> entries;
  // Cross-shape memos: the same merged/unrolled loop body recurs across
  // many shapes (a sibling loop's directives change the shape key but not
  // this body), and the schedule-independent area term depends only on the
  // array-mapping/interface environment. Hits on these avoid materializing
  // the transform at all.
  std::unordered_map<std::string, std::pair<int, int>> floor_memo;
  std::unordered_map<std::string, double> static_area_memo;

  void populate(const Function& f, const Directives& shape,
                const std::vector<SimRegion>& structure,
                const TechLibrary& tech, Entry* e);
  void materialize(const Function& f, const Directives& shape, Entry* e);
  void tighten(const Function& f, const Directives& shape,
               const TechLibrary& tech, Entry* e);
};

void FeasibilityCache::Impl::populate(const Function& f,
                                      const Directives& shape,
                                      const std::vector<SimRegion>& structure,
                                      const TechLibrary& tech, Entry* e) {
  // Weak tier, without running the transform engine: region list and trips
  // from the canonicalization's structure simulation, one FSM state per
  // region body, the memoized schedule-independent area term.
  int fsm_states = shape.handshake ? 1 : 0;
  int counter_bits = 0;
  e->regions.reserve(structure.size());
  for (const auto& s : structure) {
    e->regions.push_back({s.is_loop, s.label, s.trip});
    ++fsm_states;
    if (s.is_loop)
      counter_bits +=
          fixpt::clog2(static_cast<unsigned long long>(s.trip) + 1);
  }
  for (const auto& a : f.arrays) {
    if (a.port == PortDir::kNone) continue;
    auto it = shape.interfaces.find(a.name);
    if (it != shape.interfaces.end() &&
        it->second == InterfaceKind::kStream) {
      e->stream_lat += a.length;
      counter_bits +=
          fixpt::clog2(static_cast<unsigned long long>(a.length) + 1);
    }
  }
  e->env_key = array_iface_key(shape);
  auto [it, fresh] = static_area_memo.try_emplace(e->env_key, 0.0);
  if (fresh) it->second = area_static_lb(f, shape, tech);
  e->area = it->second + tech.fsm_area(fsm_states, counter_bits);
}

void FeasibilityCache::Impl::materialize(const Function& f,
                                         const Directives& shape, Entry* e) {
  if (e->has_tf) return;
  // The transformed design the scheduler would actually see. Canonical and
  // original directives transform to metrics-identical IR by construction.
  e->tf = apply_transforms(f, shape);
  e->has_tf = true;
  // Floors and bounds index into the simulated structure; it must mirror
  // the engine exactly. Fail loudly on any divergence.
  bool ok = e->tf.func.regions.size() == e->regions.size();
  for (std::size_t r = 0; ok && r < e->regions.size(); ++r) {
    const auto& region = e->tf.func.regions[r];
    ok = region.is_loop == e->regions[r].is_loop &&
         (!region.is_loop || (region.loop.label == e->regions[r].label &&
                              region.loop.trip == e->regions[r].trip));
  }
  if (!ok)
    throw std::logic_error(
        "check_feasibility: simulated transform structure diverged from "
        "apply_transforms");
}

void FeasibilityCache::Impl::tighten(const Function& f,
                                     const Directives& shape,
                                     const TechLibrary& tech, Entry* e) {
  if (e->tight) return;
  materialize(f, shape, e);
  std::vector<int> relaxed;
  relaxed.reserve(e->tf.func.regions.size());
  for (std::size_t r = 0; r < e->tf.func.regions.size(); ++r) {
    const auto& region = e->tf.func.regions[r];
    const Block& b = region.is_loop ? region.loop.body : region.straight;
    const int rc =
        relaxed_block_cycles(e->tf.func, b, e->regions[r].trip, shape, tech);
    relaxed.push_back(rc);
    e->regions[r].rc = rc;
  }
  e->area = area_lb(e->tf.func, shape, tech, relaxed);
  e->tight = true;
}

FeasibilityCache::FeasibilityCache() : impl_(std::make_unique<Impl>()) {}
FeasibilityCache::~FeasibilityCache() = default;
std::size_t FeasibilityCache::size() const { return impl_->entries.size(); }

FeasibilityVerdict check_feasibility(
    const Function& f, const Directives& dir, const TechLibrary& tech,
    const std::vector<ResolvedPoint>& resolved_points,
    FeasibilityCache* cache) {
  Canon canon;
  canon.dir = dir;
  canonicalize_structure(f, &canon);

  // The transform, the relaxed schedule and the area bound never read
  // pipeline_ii (transforms are unroll/merge/array-mapping only; the II
  // floors below are per-loop and cached separately), so the expensive
  // analysis is keyed on the canonical directives with the II axis erased.
  Directives shape = canon.dir;
  for (auto& [label, ld] : shape.loops) ld.pipeline_ii = 0;
  FeasibilityCache::Impl local_impl;
  FeasibilityCache::Impl* impl = cache ? cache->impl_.get() : &local_impl;
  auto [eit, fresh] =
      impl->entries.try_emplace(dse_cache_key(0, shape, tech));
  FeasibilityCache::Impl::Entry* e = &eit->second;
  if (fresh) impl->populate(f, shape, canon.structure, tech, e);
  // Direct callers get the tight bounds unconditionally — the documented
  // relaxed-schedule precision, at one-shot cost.
  if (!cache) impl->tighten(f, shape, tech, e);

  // Pipeline II floors on the transformed bodies: the scheduler raises a
  // requested II to at least max(recurrence, bandwidth); a request below
  // that floor synthesizes identically to the floor itself.
  for (std::size_t r = 0; r < e->regions.size(); ++r) {
    const auto& info = e->regions[r];
    if (!info.is_loop) continue;
    const LoopDirective ld = canon.dir.loop_directive(info.label);
    if (ld.pipeline_ii < 1) continue;
    auto fit = e->floors.find(info.label);
    if (fit == e->floors.end()) {
      // Cross-shape memo: the merged body is determined by the member
      // source loops and their unroll factors; the floor additionally
      // depends on the clock, the multiplier cap and the array/interface
      // environment — all part of the key. The transform is materialized
      // only when this memo misses too.
      std::string mkey;
      mkey.reserve(e->env_key.size() + 64);
      mkey += e->env_key;
      char buf[64];
      std::snprintf(buf, sizeof buf, ";clk=%.17g;mrm=%d;trip=%d;m=",
                    shape.clock_period_ns, shape.max_real_multipliers,
                    info.trip);
      mkey += buf;
      for (const auto& [src, u] : canon.structure[r].members) {
        mkey += src;
        std::snprintf(buf, sizeof buf, ":%d,", u);
        mkey += buf;
      }
      auto [mit, mfresh] = impl->floor_memo.try_emplace(mkey);
      if (mfresh) {
        impl->materialize(f, shape, e);
        const Block& body = e->tf.func.regions[r].loop.body;
        mit->second = {
            bandwidth_min_ii(e->tf.func, body, shape, tech),
            recurrence_lb(e->tf.func, body, info.trip, shape, tech)};
      }
      fit = e->floors.emplace(info.label, mit->second).first;
    }
    const int bw = fit->second.first;
    const int rec = fit->second.second;
    const int floor_ii = std::max(rec, bw);
    if (ld.pipeline_ii < floor_ii) {
      std::ostringstream os;
      os << "loop '" << info.label << "': pipeline_ii " << ld.pipeline_ii
         << " is below the "
         << (rec >= bw ? "loop-carried recurrence"
                       : "memory-port/multiplier bandwidth")
         << " floor of " << floor_ii;
      flag(&canon,
           rec >= bw ? InfeasibleKind::kIiBelowRecurrence
                     : InfeasibleKind::kIiBelowBandwidth,
           os.str());
      canon.dir.loops[info.label].pipeline_ii = floor_ii;
    }
  }

  // Bounds: cached per-region cycle counts (relaxed-schedule values at the
  // tight tier, 1 per body at the weak tier) recombined with the
  // candidate's (clamped) initiation intervals.
  const auto combined_lat = [&] {
    int min_lat = 0;
    for (const auto& info : e->regions) {
      if (!info.is_loop) {
        min_lat += info.rc;
        continue;
      }
      const LoopDirective ld = canon.dir.loop_directive(info.label);
      min_lat += ld.pipeline_ii >= 1
                     ? info.rc + (info.trip - 1) * ld.pipeline_ii
                     : info.trip * info.rc;
    }
    return min_lat + e->stream_lat;
  };
  // Domination: a resolved point at or inside the bounds, strictly better
  // in at least one axis, proves this candidate can never join the front.
  const auto dominated_by = [&](const DesignBounds& bounds) {
    for (std::size_t i = 0; i < resolved_points.size(); ++i) {
      const ResolvedPoint& q = resolved_points[i];
      if (q.latency_cycles <= bounds.min_latency_cycles &&
          q.area <= bounds.min_area &&
          (q.latency_cycles < bounds.min_latency_cycles ||
           q.area < bounds.min_area))
        return static_cast<int>(i);
    }
    return -1;
  };

  FeasibilityVerdict v;
  v.bounds.min_latency_cycles = combined_lat();
  v.bounds.min_area = e->area;

  if (canon.changed) {
    v.clamped = std::move(canon.dir);
    v.status = FeasibilityStatus::kInfeasible;
    v.kind = canon.kind;
    v.reason = std::move(canon.reason);
    return v;
  }
  int dom = dominated_by(v.bounds);
  if (dom >= 0 && !e->tight) {
    // A point dominates the weak bounds; re-prove the claim against the
    // tight ones before pruning (they can only move the bounds up, which
    // may clear the candidate — never condemn a cleared one).
    impl->tighten(f, shape, tech, e);
    v.bounds.min_latency_cycles = combined_lat();
    v.bounds.min_area = e->area;
    dom = dominated_by(v.bounds);
  }
  v.clamped = std::move(canon.dir);
  if (dom >= 0) {
    v.status = FeasibilityStatus::kBounded;
    v.dominated_by = dom;
  }
  return v;
}

}  // namespace hlsw::hls
