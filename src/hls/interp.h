// Untimed IR interpreter: executes a Function bit-accurately, in program
// order, exactly like the original C++ model would run. This is the golden
// reference of the verification chain (paper Figure 1): the RTL simulator
// (rtl/sim.h) must match it bit for bit on every invocation, and the
// native fixpt-based decoder model must match both.
//
// Statics (Figure 4's `static` arrays and vars) persist across run() calls,
// matching C function-static semantics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hls/ir.h"

namespace hlsw::hls {

// One invocation's port values, keyed by port name. Input arrays must carry
// `length` values; output scalars/arrays are filled by run().
struct PortIo {
  std::map<std::string, std::vector<FxValue>> arrays;
  std::map<std::string, FxValue> vars;
};

// Column-batched port values for N consecutive invocations ("symbols"):
// the flat fast-path currency of the batched stream APIs. Channels are
// bound to ports by name once per call instead of once per symbol, and the
// values of each port live in one contiguous vector (symbol-major for
// arrays: element j of symbol n sits at values[n * length + j]), so a
// 10k-symbol sweep performs zero per-symbol map construction.
struct PortStream {
  struct ArrayChannel {
    std::string name;
    int length = 0;
    std::vector<FxValue> values;  // symbols * length entries
  };
  struct VarChannel {
    std::string name;
    std::vector<FxValue> values;  // symbols entries
  };
  int symbols = 0;
  std::vector<ArrayChannel> arrays;
  std::vector<VarChannel> vars;

  ArrayChannel& add_array(const std::string& name, int length) {
    arrays.push_back({name, length, {}});
    return arrays.back();
  }
  VarChannel& add_var(const std::string& name) {
    vars.push_back({name, {}});
    return vars.back();
  }

  // Row view: symbol n as a per-invocation PortIo (interop and tests).
  PortIo symbol(int n) const {
    PortIo io;
    for (const auto& c : arrays) {
      const std::size_t base = static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(c.length);
      io.arrays[c.name].assign(c.values.begin() + static_cast<long>(base),
                               c.values.begin() +
                                   static_cast<long>(base + c.length));
    }
    for (const auto& c : vars) io.vars[c.name] = c.values[static_cast<size_t>(n)];
    return io;
  }
};

class Interpreter {
 public:
  // Takes its own copy of the function so callers may pass temporaries
  // (e.g. Interpreter(build_qam_decoder_ir())).
  explicit Interpreter(Function f);

  // Executes one invocation: loads input ports, runs all regions in program
  // order, returns output ports.
  PortIo run(const PortIo& in);

  // Batched form: pushes every input through the design in order (static
  // state carries across symbols exactly as repeated run() calls would).
  std::vector<PortIo> run_stream(const std::vector<PortIo>& ins);

  // Clears all static state back to initial values.
  void reset();

  // State inspection for tests.
  const std::vector<FxValue>& array_state(const std::string& name) const;
  const FxValue& var_state(const std::string& name) const;

  // State preload (coefficient download before decision-directed runs).
  // Values are converted into the storage element type.
  void set_array_state(const std::string& name,
                       const std::vector<FxValue>& values);
  void set_var_state(const std::string& name, const FxValue& value);

  // Number of op executions performed so far (profiling/complexity tests).
  long long ops_executed() const { return ops_executed_; }

 private:
  void exec_block(const Block& b, int k);
  FxValue eval(const Block& b, const std::vector<FxValue>& vals, const Op& op,
               int k) const;
  int cached_var_index(const std::string& name) const;
  int cached_array_index(const std::string& name) const;

  const Function f_;
  std::vector<FxValue> var_state_;
  std::vector<std::vector<FxValue>> array_state_;
  // Name -> state index, resolved once at construction so the accessors do
  // not rescan Function::vars/arrays on every call (link sweeps hit
  // array_state()/set_array_state() per symbol).
  std::map<std::string, int> var_index_;
  std::map<std::string, int> array_index_;
  // Evaluation buffer reused across exec_block calls: assign() refreshes
  // the values without reallocating once capacity is established.
  std::vector<FxValue> vals_;
  long long ops_executed_ = 0;
};

// Exact full-precision arithmetic on FxValues (shared with rtl::Simulator).
// Results carry the natural fw; callers convert into the op's result type
// with fx_convert.
FxValue fx_add(const FxValue& a, const FxValue& b);
FxValue fx_sub(const FxValue& a, const FxValue& b);
FxValue fx_mul(const FxValue& a, const FxValue& b);
FxValue fx_neg(const FxValue& a);
FxValue fx_sign_conj(const FxValue& a);

// Executes a single op given resolved operand values; used by both the
// interpreter and the RTL simulator so their arithmetic cannot diverge.
FxValue exec_op(const Op& op, const FxValue* a0, const FxValue* a1);

}  // namespace hlsw::hls
