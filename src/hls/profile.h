// On-chip performance counters and the predicted-vs-measured reconciler.
//
// PR 6 made the flow *predict* hardware timing statically (schedule II and
// latency, certified feasibility lower bounds); this layer closes the loop
// by *measuring* the emitted hardware. An InstrumentOptions value asks
// rtl::emit_verilog to synthesize real counters into the generated module —
// per-loop iteration and cycle-occupancy counters, pipeline-serialization
// stall counters, per-array memory-port activity, invocation and active-
// cycle totals — all in the reserved `perf_` signal namespace, readable
// either by peeking the simulated design (vsim::DutHarness::read_counters)
// or through an optional perf_sel/perf_rdata readback mux for real
// hardware.
//
// instrument_map() is the counter map: the deterministic list of counters
// a (function, schedule, options) triple synthesizes, shared by the
// emitter, both simulators' readback paths and the reconciler, so they can
// never disagree about what exists. It is schedule metadata in the same
// sense the emitted FSM is: a pure function of the schedule, recorded
// verbatim in profile_run.json.
//
// reconcile_profile() joins one measured CounterValues set against the
// schedule's predictions and the feasibility lower bounds. Two timing
// models are reconciled, because the flow has two:
//   * the SCHEDULE model — loops overlap iterations at the achieved II
//     (what rtl::Simulator executes; per-loop cycles = (trip-1)*ii+depth);
//   * the EMITTED model — the Verilog emitter initiates iterations
//     sequentially (per-loop cycles = trip*depth), a documented
//     serialization of pipelined schedules.
// A measurement matching the schedule model is a match; one matching the
// emitted model is an *explained* deviation (flagged, never dropped); one
// matching neither — or violating a feasibility lower bound — is a hard
// deviation and fails the report. See docs/OBSERVABILITY.md.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hls/feasibility.h"
#include "hls/ir.h"
#include "hls/schedule.h"
#include "obs/json.h"

namespace hlsw::hls {

// What to synthesize. Counters live in the reserved `perf_` namespace of
// the emitted module; with everything off (enabled = false, the default)
// emission is byte-identical to an uninstrumented module.
struct InstrumentOptions {
  bool enabled = false;
  bool loop_counters = true;   // per-region cycles, per-loop iterations
  bool stall_counters = true;  // serialization bubbles on pipelined loops
  bool mem_counters = true;    // per-array read/write port activity
  // Readback mux: adds `input [15:0] perf_sel` / `output [w-1:0]
  // perf_rdata` ports returning the counter at the map index, so real
  // hardware can sample the counters without a logic analyzer. Off by
  // default: simulators read the registers directly by name.
  bool readback_mux = false;
  int counter_width = 32;  // bits per counter (8..64), wrapping
};

enum class CounterKind {
  kInvocations,   // start handshakes accepted
  kActiveCycles,  // cycles spent in any non-idle FSM state
  kRegionCycles,  // cycles spent in the states of one region
  kLoopIters,     // loop iterations completed
  kLoopStall,     // serialization bubble cycles vs the scheduled II
  kMemReads,      // array element reads serviced (guard-qualified)
  kMemWrites,     // array element writes committed (guard-qualified)
};

const char* to_string(CounterKind k);

// One synthesized counter. `index` is both the position in the map and the
// perf_sel address of the readback mux.
struct PerfCounter {
  std::string name;  // Verilog reg name, e.g. "perf_r1_ffe_iters"
  CounterKind kind = CounterKind::kInvocations;
  int index = 0;
  int width = 32;
  int region = -1;         // kRegionCycles/kLoopIters/kLoopStall
  std::string label;       // region label ("" otherwise)
  int array = -1;          // kMemReads/kMemWrites
  std::string array_name;  // array name ("" otherwise)
};

// The deterministic counter list for (f, s, opts): empty when disabled.
// Order: invocations, active cycles, then per-region (cycles, iters,
// stall), then per-array (reads, writes).
std::vector<PerfCounter> instrument_map(const Function& f, const Schedule& s,
                                        const InstrumentOptions& opts);

// Machine-readable counter map (array of objects, map order).
obs::Json instrument_map_json(const std::vector<PerfCounter>& map);

// Executions of `op` across one full traversal of a region with the given
// trip count, honoring the guard (k < guard_trip). The static ground truth
// the emitted increments, both simulators and the reconciler's predictions
// all reduce to.
long long guarded_executions(const Op& op, int trip);

// One measurement: counter name -> value, cumulative since reset, as read
// back from one execution leg.
struct CounterValues {
  std::string source;  // "rtl_sim" | "vsim_event" | "vsim_compiled" | ...
  std::map<std::string, long long> values;
};

struct ProfileDeviation {
  std::string what;
  // True when the mismatch is fully accounted for by the emitter's
  // documented serialization of pipelined loops; false = unexplained (or a
  // violated lower bound) and the report fails.
  bool explained = false;
};

// Predicted-vs-measured join for one loop (or straight) region.
struct LoopProfile {
  int region = -1;
  std::string label;
  bool is_loop = false;
  int trip = 1;
  int body_cycles = 0;            // schedule depth of one iteration
  int scheduled_ii = 0;           // achieved II (0 = not pipelined)
  long long predicted_cycles = 0; // per invocation, schedule model
  long long emitted_cycles = 0;   // per invocation, serialized emission
  double predicted_ii = 0;        // predicted_cycles / trip
  long long measured_cycles = -1; // per invocation (-1 = not measured)
  long long measured_iters = -1;  // per invocation
  long long measured_stall = -1;  // per invocation
  double measured_ii = 0;         // measured_cycles / trip
};

struct MemProfile {
  int array = -1;
  std::string name;
  long long predicted_reads = 0;  // per invocation
  long long predicted_writes = 0;
  long long measured_reads = -1;  // per invocation
  long long measured_writes = -1;
};

struct ProfileReport {
  std::string function;
  std::string source;  // which leg produced the measurement
  long long invocations = 0;
  long long predicted_latency_cycles = 0;  // schedule model, per invocation
  long long emitted_latency_cycles = 0;    // serialized model
  long long measured_active_cycles = -1;   // per invocation
  DesignBounds bounds;      // feasibility lower bounds (PR 6)
  bool bounds_checked = false;
  bool bounds_respected = true;
  std::vector<LoopProfile> loops;  // one per region, schedule order
  std::vector<MemProfile> mem;     // one per array with counters
  std::vector<ProfileDeviation> deviations;
  // True iff every deviation is explained and every checked bound holds.
  bool ok = true;

  obs::Json to_json() const;
};

// Joins one leg's measured counters against the schedule's predictions and
// (when non-null) the feasibility lower bounds. Emits obs metrics
// (hw.loop.ii_measured, hw.stall_cycles, hw.profile.deviations, ...) when
// tracing is enabled. Counters absent from `measured.values` leave their
// measured fields at -1 and are not compared.
ProfileReport reconcile_profile(const Function& f, const Schedule& s,
                                const std::vector<PerfCounter>& map,
                                const CounterValues& measured,
                                const DesignBounds* bounds = nullptr);

}  // namespace hlsw::hls
