#include "hls/builder.h"

#include <cassert>
#include <cmath>

namespace hlsw::hls {

namespace {
int max_i(int a, int b) { return a > b ? a : b; }
}  // namespace

FxType promote_add(const FxType& a, const FxType& b) {
  const bool sr = a.sgn || b.sgn;
  const int iw =
      max_i(a.iw + ((sr && !a.sgn) ? 1 : 0), b.iw + ((sr && !b.sgn) ? 1 : 0)) +
      1;
  const int fw = max_i(a.fw(), b.fw());
  FxType r;
  r.w = iw + fw;
  r.iw = iw;
  r.sgn = sr;
  r.cplx = a.cplx || b.cplx;
  return r;
}

FxType promote_mul(const FxType& a, const FxType& b) {
  const bool sr = a.sgn || b.sgn;
  const int e1 = (sr && !a.sgn) ? 1 : 0;
  const int e2 = (sr && !b.sgn) ? 1 : 0;
  FxType r;
  r.w = a.w + e1 + b.w + e2;
  r.iw = a.iw + e1 + b.iw + e2;
  r.sgn = sr;
  r.cplx = a.cplx || b.cplx;
  if (a.cplx && b.cplx) {
    // Complex multiply ends in a cross add/sub: one more bit, exactly like
    // complex_fixed's operator* (make_complex of fixed sub/add results).
    r.w += 1;
    r.iw += 1;
  }
  return r;
}

FxType promote_neg(const FxType& a) {
  FxType r = a;
  r.w += 1;
  r.iw += 1;
  r.sgn = true;
  return r;
}

int BlockBuilder::push(Op op) {
  block().ops.push_back(std::move(op));
  return static_cast<int>(block().ops.size()) - 1;
}

int BlockBuilder::cnst(const FxType& t, double value, const std::string& name) {
  Op op;
  op.kind = OpKind::kConst;
  op.type = t;
  op.name = name;
  op.cval.fw = t.fw();
  op.cval.cplx = t.cplx;
  op.cval.re = static_cast<__int128>(std::llround(std::ldexp(value, t.fw())));
  op.cval.im = 0;
  return push(std::move(op));
}

int BlockBuilder::cnst_raw(const FxType& t, long long re_raw, long long im_raw,
                           const std::string& name) {
  Op op;
  op.kind = OpKind::kConst;
  op.type = t;
  op.name = name;
  op.cval.fw = t.fw();
  op.cval.cplx = t.cplx;
  op.cval.re = re_raw;
  op.cval.im = im_raw;
  return push(std::move(op));
}

int BlockBuilder::var_read(int var) {
  assert(var >= 0 && var < static_cast<int>(func_->vars.size()));
  Op op;
  op.kind = OpKind::kVarRead;
  op.var = var;
  op.type = func_->vars[static_cast<size_t>(var)].type;
  return push(std::move(op));
}

int BlockBuilder::var_write(int var, int value) {
  assert(var >= 0 && var < static_cast<int>(func_->vars.size()));
  Op op;
  op.kind = OpKind::kVarWrite;
  op.var = var;
  op.args = {value};
  op.type = func_->vars[static_cast<size_t>(var)].type;
  return push(std::move(op));
}

int BlockBuilder::array_read(int array, AffineIdx idx) {
  assert(array >= 0 && array < static_cast<int>(func_->arrays.size()));
  Op op;
  op.kind = OpKind::kArrayRead;
  op.array = array;
  op.idx = idx;
  op.type = func_->arrays[static_cast<size_t>(array)].elem;
  return push(std::move(op));
}

int BlockBuilder::array_write(int array, AffineIdx idx, int value) {
  assert(array >= 0 && array < static_cast<int>(func_->arrays.size()));
  Op op;
  op.kind = OpKind::kArrayWrite;
  op.array = array;
  op.idx = idx;
  op.args = {value};
  op.type = func_->arrays[static_cast<size_t>(array)].elem;
  return push(std::move(op));
}

int BlockBuilder::add(int a, int b, const std::string& name) {
  Op op;
  op.kind = OpKind::kAdd;
  op.args = {a, b};
  op.type = promote_add(type_of(a), type_of(b));
  op.name = name;
  return push(std::move(op));
}

int BlockBuilder::sub(int a, int b, const std::string& name) {
  Op op;
  op.kind = OpKind::kSub;
  op.args = {a, b};
  FxType t = promote_add(type_of(a), type_of(b));
  t.sgn = true;
  op.type = t;
  op.name = name;
  return push(std::move(op));
}

int BlockBuilder::mul(int a, int b, const std::string& name) {
  Op op;
  op.kind = OpKind::kMul;
  op.args = {a, b};
  op.type = promote_mul(type_of(a), type_of(b));
  op.name = name;
  return push(std::move(op));
}

int BlockBuilder::neg(int a) {
  Op op;
  op.kind = OpKind::kNeg;
  op.args = {a};
  op.type = promote_neg(type_of(a));
  return push(std::move(op));
}

int BlockBuilder::sign_conj(int a) {
  assert(type_of(a).cplx);
  Op op;
  op.kind = OpKind::kSignConj;
  op.args = {a};
  op.type = FxType{2, 2, true, true, fixpt::Quant::kTrn, fixpt::Ovf::kWrap};
  return push(std::move(op));
}

int BlockBuilder::cast(const FxType& t, int a, const std::string& name) {
  Op op;
  op.kind = OpKind::kCast;
  op.args = {a};
  op.type = t;
  op.name = name;
  return push(std::move(op));
}

int BlockBuilder::real(int a) {
  Op op;
  op.kind = OpKind::kReal;
  op.args = {a};
  op.type = type_of(a);
  op.type.cplx = false;
  return push(std::move(op));
}

int BlockBuilder::imag(int a) {
  assert(type_of(a).cplx);
  Op op;
  op.kind = OpKind::kImag;
  op.args = {a};
  op.type = type_of(a);
  op.type.cplx = false;
  return push(std::move(op));
}

int BlockBuilder::make_complex(int a, int b) {
  Op op;
  op.kind = OpKind::kMakeComplex;
  op.args = {a, b};
  FxType t = promote_add(type_of(a), type_of(b));
  // make_complex performs no arithmetic: undo promote_add's +1 growth and
  // keep the aligned common format.
  t.w -= 1;
  t.iw -= 1;
  t.cplx = true;
  op.type = t;
  return push(std::move(op));
}

int FunctionBuilder::add_var(const std::string& name, const FxType& t,
                             bool is_static, PortDir port, FxValue init) {
  Var v;
  v.name = name;
  v.type = t;
  v.is_static = is_static;
  v.port = port;
  v.init = init;
  v.init.fw = t.fw();
  v.init.cplx = t.cplx;
  f_.vars.push_back(std::move(v));
  return static_cast<int>(f_.vars.size()) - 1;
}

int FunctionBuilder::add_array(const std::string& name, int length,
                               const FxType& elem, bool is_static,
                               PortDir port) {
  Array a;
  a.name = name;
  a.length = length;
  a.elem = elem;
  a.is_static = is_static;
  a.port = port;
  f_.arrays.push_back(std::move(a));
  return static_cast<int>(f_.arrays.size()) - 1;
}

BlockBuilder FunctionBuilder::block(const std::string& name) {
  Region r;
  r.is_loop = false;
  r.name = name;
  f_.regions.push_back(std::move(r));
  return BlockBuilder(&f_, static_cast<int>(f_.regions.size()) - 1);
}

BlockBuilder FunctionBuilder::loop(const std::string& label, int trip) {
  assert(trip >= 1);
  Region r;
  r.is_loop = true;
  r.name = label;
  r.loop.label = label;
  r.loop.trip = trip;
  f_.regions.push_back(std::move(r));
  return BlockBuilder(&f_, static_cast<int>(f_.regions.size()) - 1);
}

}  // namespace hlsw::hls
