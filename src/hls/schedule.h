// Scheduling: "the focal point of architectural exploration" (paper section
// 2.5). Transforms the sequential IR into a cycle-by-cycle schedule under a
// clock period and technology library, honoring data dependencies with
// operator chaining, memory-port and multiplier resource constraints, and
// loop pipelining directives.
//
// Chaining model: every op gets a combinational delay from the technology
// library; ops chain within a cycle until the accumulated delay would
// exceed clock_period - register_margin, then spill to the next cycle.
//
// Memory ordering rules (these produce the paper's "3 cycles for behavior
// between loops"):
//  * scalar variables forward combinationally: a read chains off a write in
//    the same cycle (wires, not storage);
//  * array element writes commit at the clock edge: a read of an element
//    written in the same cycle must wait for the next cycle (registers and
//    RAMs cannot forward);
//  * write-after-read of the same element may share a cycle (the register
//    still holds the old value until the edge);
//  * write-after-write of the same element must take distinct cycles.
#pragma once

#include <string>
#include <vector>

#include "hls/directives.h"
#include "hls/ir.h"
#include "hls/tech.h"

namespace hlsw::hls {

// Classification + cost of one op in context (shared by the scheduler, the
// binder and the area model so they always agree on what hardware an op
// needs). Multiplications by a power-of-two constant are shifts (wiring);
// multiplications by a sign_conj result are conditional add/negate networks
// — the two properties the paper's sign-LMS design exploits.
struct OpCost {
  double delay = 0;      // combinational delay, ns
  int real_mults = 0;    // array multipliers consumed
  int real_adds = 0;     // adder cells consumed
  int wa = 0, wb = 0;    // multiplier operand widths (when real_mults > 0)
  int add_w = 0;         // adder width (when real_adds > 0)
  std::string fu;        // functional-unit class name ("" = free/wiring)
};

OpCost op_cost(const Function& f, const Block& b, int op,
               const TechLibrary& tech);

struct OpPlacement {
  int cycle = 0;
  double start = 0;  // ns within the cycle
  double end = 0;
};

struct BlockSchedule {
  std::vector<OpPlacement> place;
  int cycles = 0;
  double critical_path_ns = 0;  // longest chained path in any cycle
  int critical_op = -1;
};

struct RegionSchedule {
  std::string label;
  bool is_loop = false;
  int trip = 1;
  int ii = 0;  // achieved initiation interval; 0 = not pipelined
  BlockSchedule body;
  int total_cycles = 0;
};

struct Schedule {
  double clock_ns = 0;
  std::vector<RegionSchedule> regions;
  int latency_cycles = 0;
  double latency_ns = 0;
  std::vector<std::string> notes;
};

Schedule schedule_function(const Function& f, const Directives& dir,
                           const TechLibrary& tech);

// True when two accesses (same array) can touch the same element at the
// given iteration distance d (b's iteration = a's iteration + d), for some
// iteration in [0, trip).
bool may_alias(const Op& a, const Op& b, int distance, int trip);

// The intra-block dependence graph the scheduler places against, exposed
// so static analyses (hls/feasibility) reason about exactly the edges the
// scheduler honors rather than re-deriving their own approximation.
enum class BlockDepKind {
  kData,       // SSA operand: chain within a cycle
  kVarFwd,     // var write -> read: forwards combinationally, same cycle ok
  kNextCycle,  // array write -> read of same element: must cross a cycle
  kOrder,      // read -> write (WAR): write's cycle >= read's cycle
  kWaw,        // write -> write same element: distinct cycles
};

struct BlockDep {
  int from;
  BlockDepKind kind;
};

// deps[i] lists op i's incoming dependence edges (from < i always). `trip`
// is the loop trip count (1 for straight blocks), used for same-iteration
// aliasing of affine array accesses.
std::vector<std::vector<BlockDep>> build_block_deps(const Function& f,
                                                    const Block& b, int trip);

// Bandwidth floor on a pipelined loop's initiation interval: with
// iterations overlapped every II cycles, each window of II cycles must
// carry one full iteration's memory traffic (per-array reads/writes vs
// mem_read_ports/mem_write_ports) and real-multiplier work (vs
// max_real_multipliers). The classic ResMII bound; schedule_function
// raises a requested pipeline_ii to at least this value.
int bandwidth_min_ii(const Function& f, const Block& b, const Directives& dir,
                     const TechLibrary& tech);

}  // namespace hlsw::hls
