// Automatic bit reduction (paper section 3.2, Figure 2): value-range
// analysis over the IR that narrows operation and variable widths to the
// minimum that can represent every reachable value — how Catapult turns the
// 32-bit `int` accumulator of Figure 2 into a 10+clog2(N)-bit adder.
//
// Ranges are tracked as raw-integer intervals at each signal's binary
// scale. Loops are handled by propagating the body `trip` times (trip
// counts in this domain are small constants), which is exact rather than
// widened.
#pragma once

#include <string>
#include <vector>

#include "hls/ir.h"

namespace hlsw::hls {

struct WidthReduction {
  std::string where;  // region/op or var name
  int old_width = 0;
  int new_width = 0;
};

struct BitwidthResult {
  std::vector<WidthReduction> reductions;
  long long bits_saved = 0;
};

// Analyzes `f` and narrows arithmetic op result widths and non-port var
// widths in place where the value range proves fewer bits suffice.
// Conversion semantics are preserved: a width is only narrowed when every
// reachable value is representable, so no quantization/overflow behaviour
// changes (verified by tests running the interpreter before and after).
BitwidthResult reduce_bitwidths(Function* f);

}  // namespace hlsw::hls
