// Synthesis memoization for design-space exploration.
//
// explore() visits configurations that can coincide — the per-loop
// refinement phase re-derives points the common-factor sweep already
// synthesized, and repeated explore() calls (benchmark loops, incremental
// sweeps) revisit the whole space. A configuration is identified by a
// canonical key built from (function IR fingerprint, effective Directives,
// clock period, technology library); semantically identical directive sets
// (e.g. an explicit `unroll = 1` entry vs. no entry at all) canonicalize to
// the same key, so a revisit is always a cache hit, never a re-schedule.
//
// SynthesisCache is thread-safe: concurrent get_or_compute() calls for the
// same key compute the value exactly once (losers block on a shared
// future). It stores only the scalar metrics a DsePoint needs, not the full
// SynthesisResult, so a warm cache over hundreds of points stays small.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "hls/directives.h"
#include "hls/ir.h"
#include "hls/tech.h"

namespace hlsw::hls {

// 64-bit FNV-1a over a byte string (stable across runs and platforms).
std::uint64_t fnv1a64(std::string_view s);

// Fingerprint of a function's observable IR: hashes the full dump (vars,
// arrays, region structure, every op) so any semantic change to the input
// design invalidates its cached points.
std::uint64_t function_fingerprint(const Function& f);

// Fingerprint of a technology library: name plus every delay/area
// coefficient, so retargeting (asic90 vs fpga_lut4, or a tweaked model)
// never aliases.
std::uint64_t tech_fingerprint(const TechLibrary& tech);

// Canonical cache key for one synthesis run. Directive entries that equal
// their defaults (unroll <= 1 with no pipelining, default array mapping)
// are omitted, maps render in sorted key order, and doubles render with
// round-trip precision — equal semantics implies equal key.
std::string dse_cache_key(std::uint64_t func_fingerprint,
                          const Directives& dir, const TechLibrary& tech);

class SynthesisCache {
 public:
  // What a DsePoint needs from a synthesis run.
  struct Metrics {
    int latency_cycles = 0;
    double latency_ns = 0;
    double area = 0;
  };

  // True if the key is cached or currently being computed.
  bool contains(const std::string& key) const;

  // Returns the cached metrics for `key`, computing them via `compute`
  // exactly once across all threads. `hit` (if non-null) reports whether
  // the value pre-existed this call. If `compute` throws, the entry is
  // removed so a later call can retry, and the exception propagates to
  // every waiter.
  Metrics get_or_compute(const std::string& key,
                         const std::function<Metrics()>& compute,
                         bool* hit = nullptr);

  // Number of cached (or in-flight) configurations.
  std::size_t size() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_future<Metrics>> map_;
};

}  // namespace hlsw::hls
