#include "hls/profile.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hlsw::hls {

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
    out.insert(out.begin(), '_');
  return out;
}

int clamp_width(int w) { return std::max(8, std::min(64, w)); }

const Block& region_block(const Region& r) {
  return r.is_loop ? r.loop.body : r.straight;
}

std::string region_label(const Region& r) {
  return r.is_loop ? r.loop.label : r.name;
}

}  // namespace

const char* to_string(CounterKind k) {
  switch (k) {
    case CounterKind::kInvocations: return "invocations";
    case CounterKind::kActiveCycles: return "active_cycles";
    case CounterKind::kRegionCycles: return "region_cycles";
    case CounterKind::kLoopIters: return "loop_iters";
    case CounterKind::kLoopStall: return "loop_stall";
    case CounterKind::kMemReads: return "mem_reads";
    case CounterKind::kMemWrites: return "mem_writes";
  }
  return "?";
}

long long guarded_executions(const Op& op, int trip) {
  if (op.guard_trip < 0) return trip;
  return std::min<long long>(trip, std::max(0, op.guard_trip));
}

std::vector<PerfCounter> instrument_map(const Function& f, const Schedule& s,
                                        const InstrumentOptions& opts) {
  std::vector<PerfCounter> map;
  if (!opts.enabled) return map;
  const int w = clamp_width(opts.counter_width);
  auto add = [&](PerfCounter c) {
    c.index = static_cast<int>(map.size());
    c.width = w;
    map.push_back(std::move(c));
  };

  add({.name = "perf_invocations", .kind = CounterKind::kInvocations});
  add({.name = "perf_active_cycles", .kind = CounterKind::kActiveCycles});

  if (opts.loop_counters || opts.stall_counters) {
    for (std::size_t r = 0; r < f.regions.size(); ++r) {
      const Region& region = f.regions[r];
      const auto& rs = s.regions[r];
      const std::string label = sanitize(region_label(region));
      const std::string base = "perf_r" + std::to_string(r) + "_" + label;
      if (opts.loop_counters) {
        add({.name = base + "_cycles",
             .kind = CounterKind::kRegionCycles,
             .region = static_cast<int>(r),
             .label = region_label(region)});
        if (region.is_loop)
          add({.name = base + "_iters",
               .kind = CounterKind::kLoopIters,
               .region = static_cast<int>(r),
               .label = region_label(region)});
      }
      if (opts.stall_counters && region.is_loop && rs.ii > 0)
        add({.name = base + "_stall",
             .kind = CounterKind::kLoopStall,
             .region = static_cast<int>(r),
             .label = region_label(region)});
    }
  }

  if (opts.mem_counters) {
    for (std::size_t a = 0; a < f.arrays.size(); ++a) {
      const std::string base = "perf_mem_" + sanitize(f.arrays[a].name);
      add({.name = base + "_reads",
           .kind = CounterKind::kMemReads,
           .array = static_cast<int>(a),
           .array_name = f.arrays[a].name});
      add({.name = base + "_writes",
           .kind = CounterKind::kMemWrites,
           .array = static_cast<int>(a),
           .array_name = f.arrays[a].name});
    }
  }
  return map;
}

obs::Json instrument_map_json(const std::vector<PerfCounter>& map) {
  obs::Json out = obs::Json::array();
  for (const PerfCounter& c : map) {
    obs::Json o = obs::Json::object()
                      .set("name", c.name)
                      .set("kind", to_string(c.kind))
                      .set("index", c.index)
                      .set("width", c.width);
    if (c.region >= 0) o.set("region", c.region).set("label", c.label);
    if (c.array >= 0) o.set("array", c.array_name);
    out.push(std::move(o));
  }
  return out;
}

// ---- Reconciler -------------------------------------------------------------

namespace {

struct Measured {
  const CounterValues& m;
  std::vector<ProfileDeviation>* devs;
  // Total value of `name`, or -1 when the leg did not report it (missing
  // counters that the map promises are a hard deviation, recorded once).
  long long total(const std::string& name) const {
    auto it = m.values.find(name);
    if (it != m.values.end()) return it->second;
    devs->push_back({"counter '" + name + "' missing from " + m.source +
                         " measurement",
                     false});
    return -1;
  }
};

}  // namespace

obs::Json ProfileReport::to_json() const {
  obs::Json loops_j = obs::Json::array();
  for (const LoopProfile& l : loops) {
    obs::Json o = obs::Json::object()
                      .set("region", l.region)
                      .set("label", l.label)
                      .set("is_loop", l.is_loop)
                      .set("trip", l.trip)
                      .set("body_cycles", l.body_cycles)
                      .set("scheduled_ii", l.scheduled_ii)
                      .set("predicted_ii", l.predicted_ii)
                      .set("predicted_cycles", l.predicted_cycles)
                      .set("emitted_cycles", l.emitted_cycles);
    if (l.measured_cycles >= 0)
      o.set("measured_cycles", l.measured_cycles)
          .set("measured_ii", l.measured_ii);
    if (l.measured_iters >= 0) o.set("measured_iters", l.measured_iters);
    if (l.measured_stall >= 0) o.set("measured_stall", l.measured_stall);
    loops_j.push(std::move(o));
  }
  obs::Json mem_j = obs::Json::array();
  for (const MemProfile& a : mem) {
    obs::Json o = obs::Json::object()
                      .set("array", a.name)
                      .set("predicted_reads", a.predicted_reads)
                      .set("predicted_writes", a.predicted_writes);
    if (a.measured_reads >= 0) o.set("measured_reads", a.measured_reads);
    if (a.measured_writes >= 0) o.set("measured_writes", a.measured_writes);
    mem_j.push(std::move(o));
  }
  obs::Json devs_j = obs::Json::array();
  for (const ProfileDeviation& d : deviations)
    devs_j.push(obs::Json::object()
                    .set("what", d.what)
                    .set("explained", d.explained));
  obs::Json out = obs::Json::object()
                      .set("function", function)
                      .set("source", source)
                      .set("invocations", invocations)
                      .set("predicted_latency_cycles", predicted_latency_cycles)
                      .set("emitted_latency_cycles", emitted_latency_cycles);
  if (measured_active_cycles >= 0)
    out.set("measured_active_cycles", measured_active_cycles);
  if (bounds_checked)
    out.set("feasibility",
            obs::Json::object()
                .set("min_latency_cycles", bounds.min_latency_cycles)
                .set("min_area", bounds.min_area)
                .set("respected", bounds_respected));
  out.set("loops", std::move(loops_j))
      .set("mem", std::move(mem_j))
      .set("deviations", std::move(devs_j))
      .set("ok", ok);
  return out;
}

ProfileReport reconcile_profile(const Function& f, const Schedule& s,
                                const std::vector<PerfCounter>& map,
                                const CounterValues& measured,
                                const DesignBounds* bounds) {
  ProfileReport rep;
  rep.function = f.name;
  rep.source = measured.source;

  const Measured m{measured, &rep.deviations};

  // Divides a cumulative counter into a per-invocation value; a total that
  // does not divide evenly cannot come from the deterministic FSM and is a
  // hard deviation.
  auto per_inv = [&](const std::string& name, long long total) -> long long {
    if (total < 0 || rep.invocations <= 0) return -1;
    if (total % rep.invocations != 0) {
      rep.deviations.push_back(
          {"counter '" + name + "' total " + std::to_string(total) +
               " is not a multiple of " + std::to_string(rep.invocations) +
               " invocations",
           false});
      return -1;
    }
    return total / rep.invocations;
  };

  // Locate counters by (kind, region/array) through the map.
  auto find = [&](CounterKind k, int region, int array) -> const PerfCounter* {
    for (const PerfCounter& c : map)
      if (c.kind == k && c.region == region && c.array == array) return &c;
    return nullptr;
  };

  if (const PerfCounter* c = find(CounterKind::kInvocations, -1, -1))
    rep.invocations = m.total(c->name);

  // ---- Per-region predictions + joins ----
  rep.predicted_latency_cycles = s.latency_cycles;
  for (std::size_t r = 0; r < f.regions.size(); ++r) {
    const Region& region = f.regions[r];
    const auto& rs = s.regions[r];
    LoopProfile lp;
    lp.region = static_cast<int>(r);
    lp.label = region_label(region);
    lp.is_loop = region.is_loop;
    lp.trip = region.is_loop ? rs.trip : 1;
    lp.body_cycles = rs.body.cycles;
    lp.scheduled_ii = rs.ii;
    lp.predicted_cycles = rs.total_cycles;
    lp.emitted_cycles =
        static_cast<long long>(lp.trip) * lp.body_cycles;
    lp.predicted_ii =
        lp.trip > 0 ? static_cast<double>(lp.predicted_cycles) / lp.trip : 0;
    rep.emitted_latency_cycles += lp.emitted_cycles;

    const long long expected_stall =
        rs.ii > 0 ? static_cast<long long>(lp.trip - 1) *
                        std::max(0, lp.body_cycles - rs.ii)
                  : 0;

    if (const PerfCounter* c = find(CounterKind::kRegionCycles,
                                    static_cast<int>(r), -1)) {
      lp.measured_cycles = per_inv(c->name, m.total(c->name));
      if (lp.measured_cycles >= 0) {
        lp.measured_ii = lp.trip > 0
                             ? static_cast<double>(lp.measured_cycles) / lp.trip
                             : 0;
        if (lp.measured_cycles == lp.predicted_cycles) {
          // schedule model holds — nothing to flag
        } else if (lp.measured_cycles == lp.emitted_cycles) {
          std::ostringstream os;
          os << "loop '" << lp.label << "': measured II " << lp.measured_ii
             << " vs scheduled II " << rs.ii
             << " — emitter initiates pipelined iterations sequentially ("
             << lp.measured_cycles << " vs " << lp.predicted_cycles
             << " cycles/invocation)";
          rep.deviations.push_back({os.str(), true});
        } else {
          std::ostringstream os;
          os << "loop '" << lp.label << "': measured " << lp.measured_cycles
             << " cycles/invocation matches neither the schedule model ("
             << lp.predicted_cycles << ") nor the serialized emission model ("
             << lp.emitted_cycles << ")";
          rep.deviations.push_back({os.str(), false});
        }
      }
    }
    if (const PerfCounter* c =
            find(CounterKind::kLoopIters, static_cast<int>(r), -1)) {
      lp.measured_iters = per_inv(c->name, m.total(c->name));
      if (lp.measured_iters >= 0 && lp.measured_iters != lp.trip)
        rep.deviations.push_back(
            {"loop '" + lp.label + "': measured " +
                 std::to_string(lp.measured_iters) +
                 " iterations/invocation, schedule trip is " +
                 std::to_string(lp.trip),
             false});
    }
    if (const PerfCounter* c =
            find(CounterKind::kLoopStall, static_cast<int>(r), -1)) {
      lp.measured_stall = per_inv(c->name, m.total(c->name));
      if (lp.measured_stall >= 0 && lp.measured_stall != 0 &&
          lp.measured_stall != expected_stall)
        rep.deviations.push_back(
            {"loop '" + lp.label + "': measured " +
                 std::to_string(lp.measured_stall) +
                 " stall cycles/invocation; expected 0 (schedule model) or " +
                 std::to_string(expected_stall) + " (serialized emission)",
             false});
      // Cross-check: a leg that timed the serialized emission must also
      // show the serialization stalls, and vice versa.
      if (lp.measured_stall >= 0 && lp.measured_cycles >= 0 &&
          lp.measured_cycles == lp.emitted_cycles &&
          lp.emitted_cycles != lp.predicted_cycles &&
          lp.measured_stall != expected_stall)
        rep.deviations.push_back(
            {"loop '" + lp.label +
                 "': serialized timing without matching stall count",
             false});
    }
    rep.loops.push_back(std::move(lp));
  }

  // ---- Whole-design active cycles ----
  if (const PerfCounter* c = find(CounterKind::kActiveCycles, -1, -1)) {
    rep.measured_active_cycles = per_inv(c->name, m.total(c->name));
    if (rep.measured_active_cycles >= 0 &&
        rep.measured_active_cycles != rep.predicted_latency_cycles &&
        rep.measured_active_cycles != rep.emitted_latency_cycles) {
      std::ostringstream os;
      os << "total: measured " << rep.measured_active_cycles
         << " active cycles/invocation matches neither the schedule latency ("
         << rep.predicted_latency_cycles << ") nor the serialized emission ("
         << rep.emitted_latency_cycles << ")";
      rep.deviations.push_back({os.str(), false});
    } else if (rep.measured_active_cycles ==
                   rep.emitted_latency_cycles &&
               rep.emitted_latency_cycles != rep.predicted_latency_cycles) {
      std::ostringstream os;
      os << "total: measured latency " << rep.measured_active_cycles
         << " cycles/invocation vs scheduled " << rep.predicted_latency_cycles
         << " — emitter serialization (explained)";
      rep.deviations.push_back({os.str(), true});
    }
  }

  // ---- Memory-port activity ----
  for (std::size_t a = 0; a < f.arrays.size(); ++a) {
    const PerfCounter* cr =
        find(CounterKind::kMemReads, -1, static_cast<int>(a));
    const PerfCounter* cw =
        find(CounterKind::kMemWrites, -1, static_cast<int>(a));
    if (cr == nullptr && cw == nullptr) continue;
    MemProfile mp;
    mp.array = static_cast<int>(a);
    mp.name = f.arrays[a].name;
    for (std::size_t r = 0; r < f.regions.size(); ++r) {
      const Region& region = f.regions[r];
      const int trip = region.is_loop ? s.regions[r].trip : 1;
      for (const Op& op : region_block(region).ops) {
        if (op.array != static_cast<int>(a)) continue;
        if (op.kind == OpKind::kArrayRead)
          mp.predicted_reads += guarded_executions(op, trip);
        else if (op.kind == OpKind::kArrayWrite)
          mp.predicted_writes += guarded_executions(op, trip);
      }
    }
    auto join = [&](const PerfCounter* c, long long predicted,
                    long long* slot, const char* what) {
      if (c == nullptr) return;
      *slot = per_inv(c->name, m.total(c->name));
      if (*slot >= 0 && *slot != predicted)
        rep.deviations.push_back(
            {"array '" + mp.name + "': measured " + std::to_string(*slot) +
                 " " + what + "/invocation, schedule predicts " +
                 std::to_string(predicted),
             false});
    };
    join(cr, mp.predicted_reads, &mp.measured_reads, "reads");
    join(cw, mp.predicted_writes, &mp.measured_writes, "writes");
    rep.mem.push_back(std::move(mp));
  }

  // ---- Feasibility lower bounds (PR 6) ----
  if (bounds != nullptr) {
    rep.bounds = *bounds;
    rep.bounds_checked = true;
    if (rep.measured_active_cycles >= 0 &&
        rep.measured_active_cycles < bounds->min_latency_cycles) {
      rep.bounds_respected = false;
      rep.deviations.push_back(
          {"measured latency " + std::to_string(rep.measured_active_cycles) +
               " cycles/invocation is below the certified feasibility floor " +
               std::to_string(bounds->min_latency_cycles),
           false});
    }
  }

  std::size_t hard = 0, soft = 0;
  for (const ProfileDeviation& d : rep.deviations)
    (d.explained ? soft : hard)++;
  rep.ok = hard == 0 && rep.bounds_respected;

  if (obs::enabled()) {
    auto& mm = obs::MetricsRegistry::instance();
    mm.add("hw.profile.runs");
    mm.add("hw.profile.deviations", static_cast<double>(hard));
    mm.add("hw.profile.deviations_explained", static_cast<double>(soft));
    for (const LoopProfile& l : rep.loops) {
      if (!l.is_loop) continue;
      if (l.measured_cycles >= 0)
        mm.observe("hw.loop.ii_measured", l.measured_ii);
      if (l.measured_stall > 0)
        mm.add("hw.stall_cycles",
               static_cast<double>(l.measured_stall * rep.invocations));
    }
    if (rep.measured_active_cycles >= 0)
      mm.observe("hw.latency.measured_cycles",
                 static_cast<double>(rep.measured_active_cycles));
  }
  return rep;
}

}  // namespace hlsw::hls
