// Architectural loop transformations (paper sections 2.3-2.4): partial and
// full loop unrolling, and loop merging. Pipelining is a scheduling-time
// decision (hls/schedule.h) because it does not rewrite the IR.
//
// Transform pipeline: unroll each loop per its directive first, then merge
// groups — matching Table 1, where e.g. the 16-iteration dfe loop is
// unrolled by 2 to 8 iterations and then merged with the 8-iteration ffe
// loop.
//
// Merging semantics: member loops run iteration-aligned from k = 0, each
// member's body guarded by its own (post-unroll) trip count; the merged
// trip is the max. A dependence analysis compares the merged memory order
// against the original sequential order and emits a warning for every
// array whose read/write interleaving changes (the paper's adapt+shift
// merge genuinely reorders accesses to x[] and SV[]; see EXPERIMENTS.md,
// finding S5a-h). Execution semantics of the transformed IR are always
// exactly what the interpreter and RTL simulator implement, so the
// verification chain stays bit-exact.
#pragma once

#include <string>
#include <vector>

#include "hls/directives.h"
#include "hls/ir.h"

namespace hlsw::hls {

struct TransformResult {
  Function func;
  std::vector<std::string> warnings;
};

// Applies unrolling, merging and array-mapping directives; returns the
// transformed function plus legality warnings.
TransformResult apply_transforms(const Function& input, const Directives& dir);

// Unrolls a single loop in place by factor u (trip becomes ceil(trip/u)).
// Exposed for unit tests; apply_transforms calls it per directive.
void unroll_loop(Loop* loop, int u);

// Merges the listed loops (must be consecutive loop regions, in program
// order) into the first; appends hazard warnings. Exposed for tests.
void merge_loops(Function* f, const std::vector<std::string>& labels,
                 std::vector<std::string>* warnings);

}  // namespace hlsw::hls
