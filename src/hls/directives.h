// Architectural directives (paper section 2): the designer's knobs that
// guide synthesis without touching the source — interface synthesis,
// variable/array mapping, loop merging, loop unrolling, loop pipelining,
// and the clock constraint that drives scheduling.
//
// A Directives value is exactly one row of the paper's Table 1: e.g. the
// third architecture is {merge everything, unroll dfe/dfe_adapt/dfe_shift
// by 2, 10 ns clock}.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hls/ir.h"

namespace hlsw::hls {

struct LoopDirective {
  int unroll = 1;       // partial unroll factor (trip becomes ceil(trip/U))
  int pipeline_ii = 0;  // 0 = no pipelining; >=1 requests that initiation
                        // interval (raised if a recurrence forbids it)
};

// Interface synthesis choices for a port (paper section 2.1).
enum class InterfaceKind {
  kWire,        // plain combinational port
  kRegistered,  // registered port (adds I/O register area)
  kHandshake,   // start/done or valid/ready pair (registers + control)
  kMemory,      // array port accessed through a memory interface
  kStream,      // array accessed over time, one element per transfer
};

struct ArrayDirective {
  ArrayMapping mapping = ArrayMapping::kRegisters;
  int mem_read_ports = 1;
  int mem_write_ports = 1;
};

struct Directives {
  double clock_period_ns = 10.0;  // the paper's 100 MHz target

  // Per-loop directives, keyed by source loop label.
  std::map<std::string, LoopDirective> loops;

  // Loop merge groups: each group lists source labels, in program order.
  // An empty list means no merging. The paper's "M" column corresponds to
  // the two groups {ffe, dfe} and {ffe_adapt, dfe_adapt, ffe_shift,
  // dfe_shift}.
  std::vector<std::vector<std::string>> merge_groups;

  // Catapult's "default architectural constraints (loop merging enabled)":
  // when true and merge_groups is empty, every maximal run of consecutive
  // loop regions is merged automatically. On the paper's decoder this
  // derives exactly the two groups above (verified in tests).
  bool auto_merge = false;

  // Per-array mapping directives, keyed by array name.
  std::map<std::string, ArrayDirective> arrays;

  // Per-port interface synthesis, keyed by port (var or array) name.
  std::map<std::string, InterfaceKind> interfaces;

  // Optional global handshake (start/done) around the whole block.
  bool handshake = false;

  // Optional resource constraints: cap on concurrently-active real
  // multipliers per cycle (0 = unconstrained; the scheduler serializes ops
  // above the cap).
  int max_real_multipliers = 0;

  LoopDirective loop_directive(const std::string& label) const {
    auto it = loops.find(label);
    return it == loops.end() ? LoopDirective{} : it->second;
  }
  ArrayDirective array_directive(const std::string& name) const {
    auto it = arrays.find(name);
    return it == arrays.end() ? ArrayDirective{} : it->second;
  }
};

}  // namespace hlsw::hls
