#include "rtl/testbench.h"

#include <sstream>

#include "rtl/sim.h"

namespace hlsw::rtl {

using hls::Array;
using hls::Function;
using hls::FxValue;
using hls::PortDir;
using hls::PortIo;
using hls::Var;

std::vector<TestVector> capture_vectors(const Function& f,
                                        const hls::Schedule& s,
                                        const std::vector<PortIo>& inputs) {
  Simulator sim(f, s);
  // One batched pass through the design: state carries across vectors
  // exactly as the old per-vector run() loop did.
  std::vector<PortIo> outputs = sim.run_stream(inputs);
  std::vector<TestVector> out;
  out.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    TestVector tv;
    tv.inputs = inputs[i];
    tv.outputs = std::move(outputs[i]);
    out.push_back(std::move(tv));
  }
  return out;
}

namespace {

long long component(const FxValue& v, bool re) {
  return static_cast<long long>(re ? v.re : v.im);
}

}  // namespace

std::vector<PortPin> flatten_port_pins(const Function& f) {
  std::vector<PortPin> pins;
  for (const auto& v : f.vars) {
    if (v.port == PortDir::kNone) continue;
    const bool in = v.port == PortDir::kIn;
    const int fw = v.type.fw();
    if (v.type.cplx) {
      pins.push_back({v.name + "_re", v.type.w, in, false, v.name, 0, true, fw,
                      true, v.type.sgn});
      pins.push_back({v.name + "_im", v.type.w, in, false, v.name, 0, false,
                      fw, true, v.type.sgn});
    } else {
      pins.push_back({v.name, v.type.w, in, false, v.name, 0, true, fw, false,
                      v.type.sgn});
    }
  }
  for (const auto& a : f.arrays) {
    if (a.port == PortDir::kNone) continue;
    const bool in = a.port == PortDir::kIn;
    const int fw = a.elem.fw();
    for (int j = 0; j < a.length; ++j) {
      const std::string base = a.name + "_" + std::to_string(j);
      if (a.elem.cplx) {
        pins.push_back({base + "_re", a.elem.w, in, true, a.name, j, true, fw,
                        true, a.elem.sgn});
        pins.push_back({base + "_im", a.elem.w, in, true, a.name, j, false, fw,
                        true, a.elem.sgn});
      } else {
        pins.push_back({base, a.elem.w, in, true, a.name, j, true, fw, false,
                        a.elem.sgn});
      }
    }
  }
  return pins;
}

long long pin_value(const PortPin& p, const PortIo& io) {
  if (p.from_array) {
    auto it = io.arrays.find(p.port);
    if (it == io.arrays.end()) return 0;
    return component(it->second[static_cast<size_t>(p.index)], p.re);
  }
  auto it = io.vars.find(p.port);
  if (it == io.vars.end()) return 0;
  return component(it->second, p.re);
}

namespace {

std::string vlit(int width, long long v) {
  std::ostringstream os;
  // Two's-complement literal of the pin width.
  const unsigned long long mask =
      width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  os << width << "'h" << std::hex
     << (static_cast<unsigned long long>(v) & mask);
  return os.str();
}

}  // namespace

std::string emit_testbench(const Function& f,
                           const std::vector<TestVector>& vectors,
                           const std::string& module_name,
                           const TestbenchOptions& opts) {
  const auto pins = flatten_port_pins(f);
  std::ostringstream os;
  os << "// Self-checking testbench for " << module_name << " ("
     << vectors.size() << " vectors captured from the hlsw RTL simulator)\n";
  os << "`timescale 1ns/1ps\n";
  os << "module " << module_name << "_tb;\n";
  os << "  reg clk = 0, rst = 1, start = 0;\n  wire done;\n";
  for (const auto& p : pins) {
    os << "  " << (p.is_input ? "reg" : "wire") << " signed [" << p.width - 1
       << ":0] " << p.name << ";\n";
  }
  os << "  integer errors = 0;\n\n";
  os << "  " << module_name << " dut (.clk(clk), .rst(rst), .start(start), "
     << ".done(done)";
  for (const auto& p : pins) os << ", ." << p.name << "(" << p.name << ")";
  os << ");\n\n";
  os << "  always #5 clk = ~clk;\n\n";
  os << "  task run_vector(input integer idx);\n"
     << "    begin\n"
     << "      @(negedge clk); start = 1;\n"
     << "      @(negedge clk); start = 0;\n"
     << "      @(posedge done);\n"
     << "      @(negedge clk);\n"
     << "    end\n"
     << "  endtask\n\n";
  os << "  initial begin\n";
  if (!opts.dumpfile.empty())
    os << "    $dumpfile(\"" << opts.dumpfile << "\");\n    $dumpvars;\n";
  os << "    repeat (3) @(negedge clk); rst = 0;\n";
  int idx = 0;
  for (const auto& tv : vectors) {
    os << "    // vector " << idx << "\n";
    for (const auto& p : pins) {
      if (!p.is_input) continue;
      os << "    " << p.name << " = " << vlit(p.width, pin_value(p, tv.inputs))
         << ";\n";
    }
    os << "    run_vector(" << idx << ");\n";
    for (const auto& p : pins) {
      if (p.is_input) continue;
      const long long expect = pin_value(p, tv.outputs);
      os << "    if (" << p.name << " !== " << vlit(p.width, expect)
         << ") begin errors = errors + 1; $display(\"FAIL v" << idx << " "
         << p.name << ": got %0d expected " << expect << "\", " << p.name
         << "); end\n";
    }
    ++idx;
  }
  os << "    if (errors == 0) $display(\"PASS: all " << vectors.size()
     << " vectors matched\");\n"
     << "    else $display(\"FAIL: %0d mismatches\", errors);\n"
     << "    $finish;\n  end\nendmodule\n";
  return os.str();
}

}  // namespace hlsw::rtl
