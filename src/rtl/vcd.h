// VCD (Value Change Dump) waveform writer: records the architectural state
// (vars and array elements) of an rtl::Simulator run cycle by cycle in the
// standard IEEE 1364 VCD format, viewable in GTKWave or any waveform
// viewer — the debugging artifact every RTL flow hands its users.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hls/ir.h"

namespace hlsw::rtl {

class VcdWriter {
 public:
  // Declares one scalar signal per (var component) and per (array element
  // component). `timescale_ns` is the clock period used for timestamps.
  VcdWriter(const hls::Function& f, double timescale_ns);

  // Records the state at the given cycle; emits change records only for
  // signals that differ from the previous sample.
  void sample(long long cycle, const std::vector<hls::FxValue>& vars,
              const std::vector<std::vector<hls::FxValue>>& arrays);

  // Full VCD text (header + all recorded changes).
  std::string str() const;

  int signal_count() const { return static_cast<int>(signals_.size()); }

 private:
  struct Signal {
    std::string name;
    int width;
    // Locator into the state snapshot.
    bool is_array;
    int index;    // var index or array index
    int element;  // array element (unused for vars)
    bool imag;
    std::string id;  // VCD short identifier
    long long last = 0;
    bool has_last = false;
  };

  static std::string make_id(int n);
  static long long fetch(const Signal& s,
                         const std::vector<hls::FxValue>& vars,
                         const std::vector<std::vector<hls::FxValue>>& arrays);

  double timescale_ns_;
  std::vector<Signal> signals_;
  std::string body_;
  long long last_cycle_ = -1;
};

}  // namespace hlsw::rtl
