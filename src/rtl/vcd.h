// VCD (Value Change Dump) waveform writing in the standard IEEE 1364 VCD
// format, viewable in GTKWave or any waveform viewer — the debugging
// artifact every RTL flow hands its users.
//
// Two layers:
//  - VcdCore: generic signal registry + change recorder (header, base-94
//    identifiers, change dedup, timestamps). Also used by vsim's
//    $dumpfile/$dumpvars implementation, so emitted-RTL runs produce the
//    same artifact format as rtl::Simulator runs.
//  - VcdWriter: records the architectural state (vars and array elements)
//    of an rtl::Simulator run cycle by cycle on top of VcdCore.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hls/ir.h"

namespace hlsw::rtl {

class VcdCore {
 public:
  // `timescale_ns` is the duration of one timestamp unit.
  explicit VcdCore(double timescale_ns, std::string scope = "dut",
                   std::string version = "hlsw rtl simulator");

  // Declares a signal; returns its handle for change().
  int add_signal(const std::string& name, int width);

  // Records a change at `time` if the value differs from the last recorded
  // value of that signal (the first change is always recorded).
  void change(long long time, int handle, long long value);

  // Full VCD text (header + all recorded changes). If end_time >= 0, a
  // final bare timestamp is appended so viewers show the run's extent.
  std::string str(long long end_time = -1) const;

  int signal_count() const { return static_cast<int>(signals_.size()); }

 private:
  struct Entry {
    std::string name;
    int width;
    std::string id;
    long long last = 0;
    bool has_last = false;
  };
  static std::string make_id(int n);

  double timescale_ns_;
  std::string scope_;
  std::string version_;
  std::vector<Entry> signals_;
  std::string body_;
  long long stamped_time_ = -1;
};

class VcdWriter {
 public:
  // Declares one scalar signal per (var component) and per (array element
  // component). `timescale_ns` is the clock period used for timestamps.
  VcdWriter(const hls::Function& f, double timescale_ns);

  // Records the state at the given cycle; emits change records only for
  // signals that differ from the previous sample.
  void sample(long long cycle, const std::vector<hls::FxValue>& vars,
              const std::vector<std::vector<hls::FxValue>>& arrays);

  // Full VCD text (header + all recorded changes).
  std::string str() const;

  int signal_count() const { return core_.signal_count(); }

 private:
  struct Signal {
    // Locator into the state snapshot.
    bool is_array;
    int index;    // var index or array index
    int element;  // array element (unused for vars)
    bool imag;
    int handle;   // VcdCore signal handle
  };

  static long long fetch(const Signal& s,
                         const std::vector<hls::FxValue>& vars,
                         const std::vector<std::vector<hls::FxValue>>& arrays);

  VcdCore core_;
  std::vector<Signal> signals_;
  long long last_cycle_ = -1;
};

}  // namespace hlsw::rtl
