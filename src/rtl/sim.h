// Cycle-accurate simulator of a scheduled design: executes the generated
// micro-architecture (FSM + datapath) with hardware register semantics and
// plays the role of the paper's RTL/FPGA verification stage (Figure 1:
// "the generated RTL ... used for functional verification").
//
// Register semantics:
//  * scalar variables update as they execute (wires forward within a
//    cycle; the register commit at the edge holds the final value);
//  * array elements (register files / RAMs) commit at the END of each
//    cycle: reads always observe start-of-cycle state — which is exactly
//    why the scheduler's write->read next-cycle rule exists;
//  * within a cycle, operations execute in program order (earlier loop
//    iterations first when pipelining overlaps them).
//
// Because the simulator consumes the *transformed* function and its
// schedule, comparing it against hls::Interpreter on the same transformed
// IR verifies the scheduler (every dependence honored); comparing against
// the interpreter on the ORIGINAL IR verifies the whole flow end to end.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/ir.h"
#include "hls/schedule.h"
#include "obs/json.h"

namespace hlsw::rtl {

// Activity counters accumulated across run() invocations (reset() zeroes
// them). Cheap enough to keep always-on: a handful of integer increments
// per simulated cycle, dwarfed by the datapath evaluation itself.
struct SimStats {
  long long invocations = 0;     // run() calls
  long long cycles = 0;          // clock edges committed
  long long ops_executed = 0;    // datapath/memory ops evaluated
  long long array_commits = 0;   // array element writes committed at edges
  long long max_commit_queue = 0;  // peak pending write-queue depth
  std::vector<std::string> region_labels;  // per-region activity, aligned
  std::vector<long long> region_ops;       // with the transformed regions
};

class Simulator {
 public:
  // Takes the post-transform function and the schedule produced for it.
  Simulator(hls::Function f, hls::Schedule s);

  // One invocation (one "start" of the block). Advances the cycle counter
  // by exactly the schedule's latency.
  hls::PortIo run(const hls::PortIo& in);

  long long cycles() const { return cycles_; }
  void reset();

  // Cumulative activity counters (cycles, op/commit counts, per-region
  // activity) — the simulator's instrument panel, exported alongside the
  // VCD by sim_stats_json()/write_sim_stats_json().
  const SimStats& stats() const { return stats_; }

  const hls::Function& function() const { return f_; }

  const std::vector<hls::FxValue>& array_state(const std::string& name) const;
  void set_array_state(const std::string& name,
                       const std::vector<hls::FxValue>& values);

  // Optional per-cycle observer, invoked after every clock-edge commit
  // with the cycle index and full architectural state — the hook the VCD
  // waveform writer (rtl/vcd.h) attaches to.
  using TraceFn =
      std::function<void(long long cycle, const std::vector<hls::FxValue>&,
                         const std::vector<std::vector<hls::FxValue>>&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

 private:
  struct IterationCtx {
    int k = 0;
    std::vector<hls::FxValue> vals;
  };

  // Executes ops of `body_cycle` for iteration ctx, in program order.
  void exec_cycle(const hls::Block& b, const hls::BlockSchedule& sched,
                  IterationCtx* ctx, int body_cycle, std::size_t region);
  void commit_pending();

  const hls::Function f_;
  const hls::Schedule s_;
  std::vector<hls::FxValue> var_state_;
  std::vector<std::vector<hls::FxValue>> array_state_;
  // Pending array writes for the current cycle: (array, index) -> value.
  std::vector<std::pair<std::pair<int, int>, hls::FxValue>> pending_;
  long long cycles_ = 0;
  TraceFn trace_;
  SimStats stats_;
};

// Structured view of a simulator's activity counters:
// {"tool":"hlsw.rtl_sim","function":...,"cycles":...,"ops_executed":...,
//  "array_commits":...,"max_commit_queue":...,"regions":[{"label","ops"}]}.
obs::Json sim_stats_json(const Simulator& sim);
bool write_sim_stats_json(const Simulator& sim, const std::string& path);

}  // namespace hlsw::rtl
