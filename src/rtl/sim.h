// Cycle-accurate simulator of a scheduled design: executes the generated
// micro-architecture (FSM + datapath) with hardware register semantics and
// plays the role of the paper's RTL/FPGA verification stage (Figure 1:
// "the generated RTL ... used for functional verification").
//
// Register semantics:
//  * scalar variables update as they execute (wires forward within a
//    cycle; the register commit at the edge holds the final value);
//  * array elements (register files / RAMs) commit at the END of each
//    cycle: reads always observe start-of-cycle state — which is exactly
//    why the scheduler's write->read next-cycle rule exists;
//  * within a cycle, operations execute in program order (earlier loop
//    iterations first when pipelining overlaps them).
//
// Because the simulator consumes the *transformed* function and its
// schedule, comparing it against hls::Interpreter on the same transformed
// IR verifies the scheduler (every dependence honored); comparing against
// the interpreter on the ORIGINAL IR verifies the whole flow end to end.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hls/interp.h"
#include "hls/ir.h"
#include "hls/schedule.h"

namespace hlsw::rtl {

class Simulator {
 public:
  // Takes the post-transform function and the schedule produced for it.
  Simulator(hls::Function f, hls::Schedule s);

  // One invocation (one "start" of the block). Advances the cycle counter
  // by exactly the schedule's latency.
  hls::PortIo run(const hls::PortIo& in);

  long long cycles() const { return cycles_; }
  void reset();

  const std::vector<hls::FxValue>& array_state(const std::string& name) const;
  void set_array_state(const std::string& name,
                       const std::vector<hls::FxValue>& values);

  // Optional per-cycle observer, invoked after every clock-edge commit
  // with the cycle index and full architectural state — the hook the VCD
  // waveform writer (rtl/vcd.h) attaches to.
  using TraceFn =
      std::function<void(long long cycle, const std::vector<hls::FxValue>&,
                         const std::vector<std::vector<hls::FxValue>>&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

 private:
  struct IterationCtx {
    int k = 0;
    std::vector<hls::FxValue> vals;
  };

  // Executes ops of `body_cycle` for iteration ctx, in program order.
  void exec_cycle(const hls::Block& b, const hls::BlockSchedule& sched,
                  IterationCtx* ctx, int body_cycle);
  void commit_pending();

  const hls::Function f_;
  const hls::Schedule s_;
  std::vector<hls::FxValue> var_state_;
  std::vector<std::vector<hls::FxValue>> array_state_;
  // Pending array writes for the current cycle: (array, index) -> value.
  std::vector<std::pair<std::pair<int, int>, hls::FxValue>> pending_;
  long long cycles_ = 0;
  TraceFn trace_;
};

}  // namespace hlsw::rtl
